package ios

import (
	"time"

	"ios/internal/batching"
	"ios/internal/serve"
)

// Auto-batching layer: re-exports of internal/batching so applications
// can run the traffic-adaptive front end against their own executors
// without touching internal packages. A Batcher coalesces concurrent
// single-image requests into batches chosen from a BatchPlan's measured
// latency matrix under a latency SLO: it waits for more arrivals only
// when the plan's own measurements say a bigger planned batch amortizes
// better AND the observed arrival rate says the wait still meets the
// oldest request's deadline. The serving tier exposes the same machinery
// over HTTP as POST /infer (ServerConfig.Batching, iosserve -auto-batch).

type (
	// Batcher is the concurrent auto-batching queue: Submit blocks until
	// the request's coalesced dispatch has executed.
	Batcher = batching.Batcher
	// BatcherConfig configures NewBatcher: the measured model driving
	// decisions (a *BatchPlan satisfies it) and the per-request SLO.
	BatcherConfig = batching.Config
	// BatcherModel is the measured performance model a Batcher consults:
	// the planned batch sizes and the measured latency estimate at each.
	BatcherModel = batching.Model
	// BatchDispatch is one coalesced batch handed to the executor.
	BatchDispatch = batching.Dispatch
	// BatchResult is Submit's per-request outcome: timing split into
	// queue wait and service plus the dispatch it rode in.
	BatchResult = batching.Result
	// BatcherStats is a Batcher state snapshot (queue depth, arrival
	// rate, dispatch-size histogram, SLO violations).
	BatcherStats = batching.Stats
	// ServerBatchingConfig enables the auto-batching front end on a
	// Server (POST /infer); nil disables it.
	ServerBatchingConfig = serve.BatchingConfig
)

// NewBatcher starts an auto-batcher that hands coalesced dispatches to
// exec. Close it to release its goroutine.
func NewBatcher(cfg BatcherConfig, exec batching.Exec) (*Batcher, error) {
	return batching.NewBatcher(cfg, exec)
}

// PoissonArrivals generates a seeded memoryless arrival trace (offsets
// from a zero origin) at rate images per second — the synthetic traffic
// the benchmark suite drives batchers with.
func PoissonArrivals(n int, rate float64, seed int64) []time.Duration {
	return batching.PoissonArrivals(n, rate, seed)
}
