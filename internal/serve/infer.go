package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"ios/internal/batching"
	"ios/internal/gpusim"
	"ios/internal/plan"
)

// This file is the serving tier's traffic-adaptive auto-batching front
// end: POST /infer accepts single-image (or small-batch) inference
// requests and coalesces them into batches before answering from the
// matching registered batch-specialization plan. Dispatch sizes are
// chosen by internal/batching from the plan's measured performance
// model under the configured SLO — the server holds a request only when
// the plan's own matrix says a bigger batch amortizes better AND the
// observed arrival rate says the wait still meets the oldest request's
// deadline. One Batcher exists per registered plan, created lazily on
// the plan's first /infer request.

// BatchingConfig enables and tunes the auto-batching front end.
type BatchingConfig struct {
	// SLO is the per-request latency target the dispatch decisions
	// respect (required, > 0). Violations are counted in /stats, not
	// masked.
	SLO time.Duration
	// MaxBatch caps dispatch sizes; 0 means each plan's largest planned
	// batch (beyond it the measured model extrapolates).
	MaxBatch int
	// RateAlpha is the arrival-rate EWMA weight (0 = the batching
	// package default).
	RateAlpha float64
}

// InferRequest is the body of POST /infer. Model names a zoo network
// with a registered batch-specialization plan; Images is the request's
// own batch contribution (default 1 — a plain single-image request).
// Device, Strategy, R and S select the plan the same way /optimize
// resolves its key.
type InferRequest struct {
	Model    string `json:"model"`
	Images   int    `json:"images,omitempty"`
	Device   string `json:"device,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	R        int    `json:"r,omitempty"`
	S        int    `json:"s,omitempty"`
}

// InferResponse is the body of a successful POST /infer: how the
// request's dispatch was routed and timed. Latency figures are the
// plan's measured values for the dispatched batch — the same numbers
// the dispatch decision compared.
type InferResponse struct {
	Model   string `json:"model"`
	Device  string `json:"device"`
	Options string `json:"options"`
	// Images is the request's own contribution; DispatchImages and
	// DispatchRequests describe the coalesced batch it rode in.
	Images           int `json:"images"`
	DispatchImages   int `json:"dispatch_images"`
	DispatchRequests int `json:"dispatch_requests"`
	// Plan reports the routing of the dispatched batch (its planned
	// batch, exactness, and reuse penalty).
	Plan PlanRoute `json:"plan"`
	// LatencyMS is the dispatched batch's measured service latency;
	// QueueWaitMS is time spent queued before dispatch; TotalMS adds any
	// device backlog and is the figure compared against SLOMS.
	LatencyMS   float64 `json:"latency_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	TotalMS     float64 `json:"total_ms"`
	SLOMS       float64 `json:"slo_ms"`
	Violated    bool    `json:"violated"`
}

// BatcherStats is one plan's auto-batcher in GET /stats.
type BatcherStats struct {
	Model   string `json:"model"`
	Device  string `json:"device"`
	Options string `json:"options"`
	// QueueDepth and InFlight describe the instantaneous state;
	// ArrivalRate is the observed arrival-rate estimate in images/sec.
	QueueDepth  int     `json:"queue_depth"`
	InFlight    int     `json:"in_flight"`
	ArrivalRate float64 `json:"arrival_rate"`
	// Dispatches/Images/Violations are lifetime counters; DispatchHist
	// maps dispatch size to count.
	Dispatches   int64         `json:"dispatches"`
	Images       int64         `json:"images"`
	Violations   int64         `json:"violations"`
	DispatchHist map[int]int64 `json:"dispatch_hist"`
	// SuggestedBatches are the sweep points plan.SuggestBatches picks
	// from the observed dispatch histogram — the batches a plan rebuild
	// should specialize for this traffic (empty until traffic arrives).
	SuggestedBatches []int `json:"suggested_batches,omitempty"`
}

// BatchStats reports the auto-batching front end in GET /stats.
type BatchStats struct {
	// Enabled reports whether the server was configured with a
	// BatchingConfig (POST /infer answers 404 otherwise).
	Enabled bool    `json:"enabled"`
	SLOMS   float64 `json:"slo_ms,omitempty"`
	// Batchers lists the per-plan batchers created so far, sorted by
	// (model, device, options).
	Batchers []BatcherStats `json:"batchers,omitempty"`
}

// inferServed is the Exec payload shared by every request of one
// dispatch: the memoized plan answer plus its routing.
type inferServed struct {
	entry   *planServed
	pt      *plan.Point
	penalty float64
	exact   bool
}

// batcherFor returns the plan's auto-batcher, creating it on first use.
// The batcher's executor routes each dispatched batch through the plan
// exactly like /optimize would (memoized via plannedEntry) and reports
// the plan's measured latency for the batch as the service time, so the
// virtual device timeline and the /stats plan counters see the same
// numbers a sequence of individual requests would have produced.
func (s *Server) batcherFor(p *plan.Plan, spec gpusim.Spec) (*batching.Batcher, error) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if b, ok := s.batchers[p]; ok {
		return b, nil
	}
	bc := s.cfg.Batching
	exec := func(d batching.Dispatch) (time.Duration, any, error) {
		pt, penalty, exact := p.Route(d.Images)
		e, err := s.plannedEntry(spec, p, pt, d.Images, exact)
		if err != nil {
			return 0, nil, err
		}
		s.recordRoute(penalty, exact)
		return time.Duration(e.lat * float64(time.Second)),
			&inferServed{entry: e, pt: pt, penalty: penalty, exact: exact}, nil
	}
	b, err := batching.NewBatcher(batching.Config{
		Model:     p,
		SLO:       bc.SLO,
		MaxBatch:  bc.MaxBatch,
		RateAlpha: bc.RateAlpha,
	}, exec)
	if err != nil {
		return nil, fmt.Errorf("serve: batcher for plan %s/%s/%s: %w", p.Model, p.Device, p.Opts, err)
	}
	s.batchers[p] = b
	return b, nil
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt64(&s.inferReqs, 1)
	if s.cfg.Batching == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("auto-batching is disabled (start the server with a Batching config, e.g. iosserve -auto-batch)"))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req InferRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Model == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("\"model\" is required (/infer serves zoo models with registered plans)"))
		return
	}
	if req.Images == 0 {
		req.Images = 1
	}
	res, err := s.resolve(req.Model, nil, req.Images, req.Device, req.Strategy, req.R, req.S)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	p := s.planFor(res.key)
	if p == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("no registered plan for %s/%s/%s (warm one with -warm + -plan-batches, or POST /optimize for unplanned serving)",
			res.key.Model, res.key.Device, res.key.Opts))
		return
	}
	b, err := s.batcherFor(p, res.spec)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	result, err := b.Submit(ctx, res.batch)
	if err != nil {
		if ctx.Err() != nil {
			s.failCompute(w, ctx, err)
			return
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	served := result.Payload.(*inferServed)
	resp := InferResponse{
		Model:            res.key.Model,
		Device:           res.spec.Name,
		Options:          res.key.Opts,
		Images:           res.batch,
		DispatchImages:   result.Batch,
		DispatchRequests: result.Requests,
		Plan: PlanRoute{
			PlannedBatch: served.pt.Batch,
			Exact:        served.exact,
			Penalty:      served.penalty,
		},
		LatencyMS:   float64(result.Service) / float64(time.Millisecond),
		QueueWaitMS: float64(result.QueueWait) / float64(time.Millisecond),
		TotalMS:     float64(result.Total) / float64(time.Millisecond),
		SLOMS:       float64(s.cfg.Batching.SLO) / float64(time.Millisecond),
		Violated:    result.Violated,
	}
	s.logf("infer %s images=%d dispatch=%d planned=%d exact=%v penalty=%.3f total=%.3fms",
		res.key.Model, res.batch, result.Batch, served.pt.Batch, served.exact, served.penalty, resp.TotalMS)
	s.writeJSON(w, resp)
}

// batchStats snapshots the auto-batching front end for GET /stats.
func (s *Server) batchStats() BatchStats {
	st := BatchStats{Enabled: s.cfg.Batching != nil}
	if !st.Enabled {
		return st
	}
	st.SLOMS = float64(s.cfg.Batching.SLO) / float64(time.Millisecond)
	s.batchMu.Lock()
	type pair struct {
		p *plan.Plan
		b *batching.Batcher
	}
	pairs := make([]pair, 0, len(s.batchers))
	for p, b := range s.batchers {
		pairs = append(pairs, pair{p, b})
	}
	s.batchMu.Unlock()
	for _, pb := range pairs {
		bs := pb.b.Stats()
		row := BatcherStats{
			Model:        pb.p.Model,
			Device:       pb.p.Device,
			Options:      pb.p.Opts,
			QueueDepth:   bs.QueueDepth,
			InFlight:     bs.InFlight,
			ArrivalRate:  bs.ArrivalRate,
			Dispatches:   bs.Dispatches,
			Images:       bs.Images,
			Violations:   bs.Violations,
			DispatchHist: bs.DispatchHist,
		}
		if len(bs.DispatchHist) > 0 {
			weights := make(map[int]float64, len(bs.DispatchHist))
			for b, c := range bs.DispatchHist {
				weights[b] = float64(c)
			}
			row.SuggestedBatches = pb.p.SuggestBatches(weights, len(pb.p.Points))
		}
		st.Batchers = append(st.Batchers, row)
	}
	sort.Slice(st.Batchers, func(i, j int) bool {
		a, b := st.Batchers[i], st.Batchers[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Options < b.Options
	})
	return st
}

// DrainBatchers flushes every auto-batcher's queue into immediate
// dispatches and waits for the in-flight work to execute (or ctx to
// end). Call it on shutdown BEFORE stopping the HTTP server: queued
// /infer requests complete immediately instead of waiting out their SLO
// headroom inside the server's drain window.
func (s *Server) DrainBatchers(ctx context.Context) error {
	s.batchMu.Lock()
	bs := make([]*batching.Batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.batchMu.Unlock()
	for _, b := range bs {
		if err := b.Drain(ctx); err != nil {
			return err
		}
	}
	return nil
}

// CloseBatchers drains and permanently stops every auto-batcher
// (subsequent /infer submits to them fail). The server remains usable
// for every other endpoint.
func (s *Server) CloseBatchers() error {
	s.batchMu.Lock()
	bs := make([]*batching.Batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.batchMu.Unlock()
	var first error
	for _, b := range bs {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
