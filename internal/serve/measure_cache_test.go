package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ios/internal/measure"
)

// TestServerMeasureCacheSharedAcrossRequests: the structural measurement
// cache deduplicates simulator work across endpoints — after /optimize
// fills it, a /measure of the sequential baseline for the same model
// reuses the search's stage simulations — and its counters surface in
// /stats.
func TestServerMeasureCacheSharedAcrossRequests(t *testing.T) {
	mc := measure.NewCache()
	s := NewServer(Config{Logf: t.Logf, MeasureCache: mc})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/optimize", map[string]any{"model": "squeezenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/optimize status %d", resp.StatusCode)
	}
	afterOptimize := mc.Stats()
	if afterOptimize.Misses == 0 {
		t.Fatal("optimize filled nothing into the measurement cache")
	}

	// The sequential baseline's stages are single-operator chains whose
	// stream programs the search already simulated: all hits, no misses.
	resp, _ = postJSON(t, ts.URL+"/measure", map[string]any{"model": "squeezenet", "baseline": "sequential"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/measure status %d", resp.StatusCode)
	}
	afterMeasure := mc.Stats()
	if afterMeasure.Misses != afterOptimize.Misses {
		t.Errorf("baseline measurement re-simulated %d fingerprints the search already measured",
			afterMeasure.Misses-afterOptimize.Misses)
	}
	if afterMeasure.Hits <= afterOptimize.Hits {
		t.Error("baseline measurement produced no cache hits")
	}

	// /stats reports the same counters.
	res, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.MeasureCache.Misses != afterMeasure.Misses || stats.MeasureCache.Hits < afterMeasure.Hits {
		t.Errorf("/stats measure_cache %+v inconsistent with cache %+v", stats.MeasureCache, afterMeasure)
	}
	if stats.MeasureCache.Size == 0 {
		t.Error("/stats reports an empty measurement cache after a search")
	}
}

// TestServerMeasureCacheDefaultsToShared: servers without an explicit
// cache share the process-wide instance.
func TestServerMeasureCacheDefaultsToShared(t *testing.T) {
	a, b := NewServer(Config{}), NewServer(Config{})
	if a.MeasureCache() != b.MeasureCache() {
		t.Fatal("two default servers use different measurement caches")
	}
	if a.MeasureCache() != SharedMeasureCache() {
		t.Fatal("default server does not use the shared process-wide cache")
	}
	own := measure.NewCache()
	c := NewServer(Config{MeasureCache: own})
	if c.MeasureCache() != own {
		t.Fatal("explicit Config.MeasureCache ignored")
	}
}

// TestServerWarmRestartFromFile: a server loading a persisted cache
// re-optimizes a model the previous process served without a single
// simulator invocation — the warm-restart path of iosserve -measure-cache.
func TestServerWarmRestartFromFile(t *testing.T) {
	path := t.TempDir() + "/measure.json"

	first := measure.NewCache()
	s1 := NewServer(Config{MeasureCache: first})
	ts1 := httptest.NewServer(s1)
	resp, _ := postJSON(t, ts1.URL+"/optimize", map[string]any{"model": "fig2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/optimize status %d", resp.StatusCode)
	}
	ts1.Close()
	if err := first.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	second := measure.NewCache()
	if n, err := second.LoadFile(path); err != nil || n == 0 {
		t.Fatalf("LoadFile: n=%d err=%v", n, err)
	}
	s2 := NewServer(Config{MeasureCache: second})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp, body := postJSON(t, ts2.URL+"/optimize", map[string]any{"model": "fig2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted /optimize status %d", resp.StatusCode)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Search.Measurements != 0 {
		t.Errorf("warm restart still ran %d simulator measurements", out.Search.Measurements)
	}
	if st := second.Stats(); st.Misses != 0 {
		t.Errorf("warm restart missed the loaded cache %d times", st.Misses)
	}
}
