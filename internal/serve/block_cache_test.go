package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ios/internal/blockcache"
)

// TestServerBlockCacheSharedAcrossServers: the whole-block schedule cache
// deduplicates block DP searches across servers sharing it — a second
// server (own schedule cache, so its search actually runs) optimizing the
// same model claims no new fingerprints — and its counters surface in
// /stats.
func TestServerBlockCacheSharedAcrossServers(t *testing.T) {
	bc := blockcache.NewCache()
	// Each server gets its own fresh schedule cache (Config.Cache nil), so
	// the second request reaches the search layer instead of being served
	// whole; only the block cache is shared.
	s1 := NewServer(Config{Logf: t.Logf, BlockCache: bc})
	ts1 := httptest.NewServer(s1)
	defer ts1.Close()

	resp, _ := postJSON(t, ts1.URL+"/optimize", map[string]any{"model": "squeezenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/optimize status %d", resp.StatusCode)
	}
	cold := bc.Stats()
	if cold.Misses == 0 {
		t.Fatal("optimize filled nothing into the block cache")
	}

	s2 := NewServer(Config{Logf: t.Logf, BlockCache: bc})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp, _ = postJSON(t, ts2.URL+"/optimize", map[string]any{"model": "squeezenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second server /optimize status %d", resp.StatusCode)
	}
	warm := bc.Stats()
	if warm.Misses != cold.Misses {
		t.Errorf("second server re-searched %d blocks the first already solved", warm.Misses-cold.Misses)
	}
	if warm.Hits <= cold.Hits {
		t.Error("second server's optimize produced no block-cache hits")
	}

	// /stats reports the same counters.
	res, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.BlockCache.Misses != warm.Misses || stats.BlockCache.Hits < warm.Hits {
		t.Errorf("/stats block_cache %+v inconsistent with cache %+v", stats.BlockCache, warm)
	}
	if stats.BlockCache.Size == 0 {
		t.Error("/stats reports an empty block cache after a search")
	}
}

// TestServerBlockCacheDefaultsToShared: servers without an explicit cache
// share the bounded process-wide instance.
func TestServerBlockCacheDefaultsToShared(t *testing.T) {
	a, b := NewServer(Config{}), NewServer(Config{})
	if a.BlockCache() != b.BlockCache() {
		t.Fatal("two default servers use different block caches")
	}
	if a.BlockCache() != SharedBlockCache() {
		t.Fatal("default server does not use the shared process-wide cache")
	}
	own := blockcache.NewCache()
	c := NewServer(Config{BlockCache: own})
	if c.BlockCache() != own {
		t.Fatal("explicit Config.BlockCache ignored")
	}
}

// TestServerBlockCacheWarmRestart: a server loading a persisted block cache
// re-optimizes a model the previous process served without a single block
// DP search — the warm-restart path of iosserve -block-cache.
func TestServerBlockCacheWarmRestart(t *testing.T) {
	path := t.TempDir() + "/blocks.json"

	first := blockcache.NewCache()
	s1 := NewServer(Config{BlockCache: first})
	ts1 := httptest.NewServer(s1)
	resp, _ := postJSON(t, ts1.URL+"/optimize", map[string]any{"model": "fig2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/optimize status %d", resp.StatusCode)
	}
	ts1.Close()
	if err := first.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	second := blockcache.NewCache()
	if n, err := second.LoadFile(path); err != nil || n == 0 {
		t.Fatalf("LoadFile: n=%d err=%v", n, err)
	}
	s2 := NewServer(Config{BlockCache: second})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp, _ = postJSON(t, ts2.URL+"/optimize", map[string]any{"model": "fig2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted /optimize status %d", resp.StatusCode)
	}
	if st := second.Stats(); st.Misses != 0 {
		t.Errorf("warm restart still ran %d block searches", st.Misses)
	}
}
