package serve

import (
	"context"
	"time"
)

// Checkpointer periodically runs a save function — atomically persisting
// caches and plans on a ticker, not only at exit, so a crashed node loses
// at most one interval of warm state instead of all of it. The save
// function is the embedder's (iosserve wires the same SaveFile closure it
// runs at shutdown); both caches' SaveFile are safe to call while fills
// are in flight, so checkpointing never pauses serving.
type Checkpointer struct {
	// Interval is the wall-clock save period (used only when Ticks is
	// nil). Zero or negative disables Run entirely.
	Interval time.Duration
	// Save persists the state; it is called once per tick, never
	// concurrently with itself.
	Save func()
	// Ticks, when non-nil, replaces the wall-clock ticker — the
	// injectable clock for tests.
	Ticks <-chan time.Time
}

// Run saves on every tick until ctx ends. It never returns early on a
// Save failure — the save function owns its error reporting (a full disk
// now should not end checkpointing forever).
func (cp *Checkpointer) Run(ctx context.Context) {
	if cp.Save == nil {
		return
	}
	ticks := cp.Ticks
	if ticks == nil {
		if cp.Interval <= 0 {
			return
		}
		t := time.NewTicker(cp.Interval)
		defer t.Stop()
		ticks = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticks:
			cp.Save()
		}
	}
}
