package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ios/internal/models"
	"ios/internal/schedule"
)

// planTestBatches keeps the warm sweep cheap: SqueezeNet searches in
// well under a millisecond per batch.
var planTestBatches = []int{1, 4, 16}

// newPlannedServer warms a SqueezeNet batch plan into a fresh server.
func newPlannedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{Logf: t.Logf})
	if err := s.WarmPlans(context.Background(), []string{"squeezenet"}, planTestBatches); err != nil {
		t.Fatalf("WarmPlans: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func TestPlanExactHit(t *testing.T) {
	s, ts := newPlannedServer(t)

	resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "squeezenet", Batch: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan == nil {
		t.Fatal("planned batch not served from the plan")
	}
	if !out.Plan.Exact || out.Plan.PlannedBatch != 4 || out.Plan.Penalty != 1 {
		t.Fatalf("plan route = %+v, want exact batch 4 penalty 1", out.Plan)
	}
	if !out.Cached {
		t.Error("plan-served response should report cached=true (no search ran)")
	}
	if out.LatencyMS <= 0 || out.Throughput <= 0 {
		t.Fatalf("latency %.3f, throughput %.3f", out.LatencyMS, out.Throughput)
	}
	// The schedule is the plan's specialized one: it must reconstruct and
	// validate against the batch-4 graph.
	g := models.SqueezeNet(4)
	sched, err := schedule.FromJSON(out.Schedule, g)
	if err != nil {
		t.Fatalf("returned schedule does not bind to squeezenet b4: %v", err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatalf("returned schedule invalid: %v", err)
	}
	// No optimizer ran: the schedule cache saw no traffic for this key.
	if st := s.Cache().Stats(); st.Misses != 0 {
		t.Errorf("schedule cache misses = %d, want 0 (plan bypasses the search)", st.Misses)
	}
}

func TestPlanNearestRouting(t *testing.T) {
	s, ts := newPlannedServer(t)

	// Batch 13 is unplanned; nearest planned batch is 16.
	resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "squeezenet", Batch: 13})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan == nil {
		t.Fatal("unplanned batch not routed through the plan")
	}
	if out.Plan.Exact || out.Plan.PlannedBatch != 16 {
		t.Fatalf("plan route = %+v, want nearest batch 16", out.Plan)
	}
	wantPen := s.planFor(Key{Model: "squeezenet", Device: out.Device, Opts: out.Options}).EstimatePenalty(2, 13)
	if out.Plan.Penalty != wantPen {
		t.Errorf("penalty = %v, want the plan's estimate %v", out.Plan.Penalty, wantPen)
	}
	if out.Batch != 13 {
		t.Errorf("response batch = %d, want the requested 13", out.Batch)
	}
	// The served schedule must be feasible at the REQUESTED batch.
	g := models.SqueezeNet(13)
	sched, err := schedule.FromJSON(out.Schedule, g)
	if err != nil {
		t.Fatalf("routed schedule does not bind at batch 13: %v", err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatalf("routed schedule invalid: %v", err)
	}

	// The routing and its penalty are recorded in /stats.
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Plan.Plans != 1 || st.Plan.Routed != 1 {
		t.Fatalf("plan stats = %+v, want 1 plan, 1 routed", st.Plan)
	}
	if st.Plan.LastPenalty != wantPen || st.Plan.PenaltySum != wantPen {
		t.Errorf("recorded penalty = %v (sum %v), want %v", st.Plan.LastPenalty, st.Plan.PenaltySum, wantPen)
	}
	if st.Plan.MaxPenalty < 1 {
		t.Errorf("max penalty = %v, want >= 1", st.Plan.MaxPenalty)
	}
}

func TestPlansEndpoint(t *testing.T) {
	_, ts := newPlannedServer(t)
	var infos []PlanInfo
	getJSON(t, ts.URL+"/plans", &infos)
	if len(infos) != 1 {
		t.Fatalf("GET /plans returned %d plans, want 1", len(infos))
	}
	info := infos[0]
	if info.Model != "squeezenet" || len(info.Batches) != len(planTestBatches) {
		t.Fatalf("plan info = %+v", info)
	}
	for i := range info.Batches {
		if info.Penalty[i][i] != 1 {
			t.Errorf("penalty diagonal [%d][%d] = %v, want 1", i, i, info.Penalty[i][i])
		}
		for j := range info.Batches {
			if info.LatencyMS[i][j] <= 0 {
				t.Errorf("latency_ms[%d][%d] = %v", i, j, info.LatencyMS[i][j])
			}
			// Column minimum on the diagonal: specialization wins.
			if info.LatencyMS[j][j] > info.LatencyMS[i][j]*(1+1e-9) {
				t.Errorf("diagonal loses: lat[%d][%d]=%v > lat[%d][%d]=%v",
					j, j, info.LatencyMS[j][j], i, j, info.LatencyMS[i][j])
			}
		}
	}
}

func TestPlanRoutingConcurrent(t *testing.T) {
	s, ts := newPlannedServer(t)
	batches := []int{1, 2, 4, 8, 13, 16, 32}
	const perBatch = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(batches)*perBatch)
	for _, b := range batches {
		for k := 0; k < perBatch; k++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "squeezenet", Batch: b})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch %d: status %d: %s", b, resp.StatusCode, body)
					return
				}
				var out OptimizeResponse
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- fmt.Errorf("batch %d: %v", b, err)
					return
				}
				if out.Plan == nil {
					errs <- fmt.Errorf("batch %d: not plan-served", b)
				}
			}(b)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	total := st.Plan.Exact + st.Plan.Routed
	if want := int64(len(batches) * perBatch); total != want {
		t.Errorf("plan-served count = %d, want %d", total, want)
	}
	if st.Plan.Exact != int64(3*perBatch) {
		t.Errorf("exact = %d, want %d (batches 1, 4, 16)", st.Plan.Exact, 3*perBatch)
	}
	// PenaltySum covers routed answers only (exact hits are excluded, see
	// recordRoute): each routed penalty is >= 1, and the exact traffic
	// must not inflate the sum.
	if math.IsNaN(st.Plan.PenaltySum) || st.Plan.PenaltySum < float64(st.Plan.Routed)-1e-9 {
		t.Errorf("penalty sum = %v, want >= routed count %d", st.Plan.PenaltySum, st.Plan.Routed)
	}
	if st.Plan.PenaltySum >= float64(total) {
		t.Errorf("penalty sum = %v includes exact traffic (total served %d, routed %d)",
			st.Plan.PenaltySum, total, st.Plan.Routed)
	}
	_ = s
}

// TestPlanExactHitsExcludedFromPenaltySum pins the /stats penalty
// semantics: exact planned-batch hits record no penalty into the
// aggregates (their penalty is 1.0 by construction and would drag the
// mean routed penalty toward 1), while LastPenalty still reflects them.
func TestPlanExactHitsExcludedFromPenaltySum(t *testing.T) {
	_, ts := newPlannedServer(t)
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "squeezenet", Batch: 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Plan.Exact != 3 || st.Plan.Routed != 0 {
		t.Fatalf("plan stats = %+v, want 3 exact, 0 routed", st.Plan)
	}
	if st.Plan.PenaltySum != 0 || st.Plan.MaxPenalty != 0 {
		t.Errorf("exact-only traffic recorded penalty sum %v max %v, want 0/0",
			st.Plan.PenaltySum, st.Plan.MaxPenalty)
	}
	if st.Plan.LastPenalty != 1 {
		t.Errorf("last penalty = %v, want the exact hit's 1.0", st.Plan.LastPenalty)
	}
}

// TestPlanDoesNotHijackOtherConfigs pins the routing key: a request whose
// options fingerprint differs from the plan's must fall through to the
// normal optimize path.
func TestPlanDoesNotHijackOtherConfigs(t *testing.T) {
	_, ts := newPlannedServer(t)
	resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "squeezenet", Batch: 4, R: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan != nil {
		t.Fatalf("request with r=2 served from the r=3 plan (options %s)", out.Options)
	}
	// States (unlike Measurements) cannot be absorbed by the process-wide
	// structural measurement cache, so it proves a real search ran.
	if out.Search.States == 0 {
		t.Error("fall-through request should have run a real search")
	}
}

// TestOptimizeRejectsInconsistentInputBatches covers the serving side of
// the Graph.Batch bugfix: a multi-input graph whose inputs disagree on
// the batch dimension must be a 400, not a cache entry under the first
// input's batch.
func TestOptimizeRejectsInconsistentInputBatches(t *testing.T) {
	s, ts := newTestServer(t)
	graphJSON := `{
	  "name": "twin",
	  "nodes": [
	    {"name": "a", "op": "input", "shape": [2, 3, 8, 8]},
	    {"name": "b", "op": "input", "shape": [4, 3, 8, 8]},
	    {"name": "ca", "op": "conv", "inputs": ["a"], "out": 3, "act": "relu"},
	    {"name": "cb", "op": "conv", "inputs": ["b"], "out": 3, "act": "relu"}
	  ]
	}`
	resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Graph: json.RawMessage(graphJSON)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "batch") {
		t.Errorf("error does not mention the batch conflict: %s", body)
	}
	if got := s.Cache().Len(); got != 0 {
		t.Errorf("inconsistent graph left %d cache slots behind", got)
	}
}
