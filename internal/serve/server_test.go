package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/schedule"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{Logf: t.Logf})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestOptimizeInceptionEndToEnd is the acceptance scenario: POST /optimize
// for "inception_v3" answers with a schedule JSON that reconstructs and
// validates against the real Inception V3 graph.
func TestOptimizeInceptionEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "inception_v3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if out.Model != "inception" || out.Batch != 1 || out.Device != "Tesla V100" {
		t.Fatalf("resolved %s/b%d/%s, want inception/b1/Tesla V100", out.Model, out.Batch, out.Device)
	}
	if out.Cached {
		t.Fatal("first request reported cached=true")
	}
	if out.LatencyMS <= 0 || out.SequentialMS < out.LatencyMS {
		t.Fatalf("latencies: ios=%.3f seq=%.3f; IOS must win", out.LatencyMS, out.SequentialMS)
	}
	if out.Speedup < 1 {
		t.Fatalf("speedup = %.2f, want >= 1", out.Speedup)
	}
	if out.Search.Measurements == 0 || out.Search.States == 0 {
		t.Fatalf("search stats empty: %+v", out.Search)
	}

	// The returned schedule JSON must reconstruct against the real graph
	// and validate as a feasible schedule covering every operator.
	g := models.InceptionV3(1)
	sched, err := schedule.FromJSON(out.Schedule, g)
	if err != nil {
		t.Fatalf("returned schedule does not parse: %v", err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatalf("returned schedule is infeasible: %v", err)
	}
	if got := sched.Summarize(); got != out.Summary {
		t.Fatalf("summary mismatch: response %+v vs reconstructed %+v", out.Summary, got)
	}

	// The same request again is a cache hit with the identical schedule.
	resp2, body2 := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "inception"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status %d", resp2.StatusCode)
	}
	var out2 OptimizeResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.Cached {
		t.Fatal("second request missed the cache")
	}
	if !bytes.Equal(out.Schedule, out2.Schedule) {
		t.Fatal("cache returned a different schedule")
	}
}

func TestOptimizeConcurrentRequestsShareOneSearch(t *testing.T) {
	const N = 16
	s, ts := newTestServer(t)

	// postJSON is t.Fatal-based and therefore off-limits inside spawned
	// goroutines; collect errors on a channel instead.
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/optimize", "application/json",
				strings.NewReader(`{"model": "fig2"}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Cache().Stats()
	if st.Misses != 1 {
		t.Fatalf("%d concurrent requests caused %d optimizer runs, want 1", N, st.Misses)
	}
	if st.Hits+st.Coalesced != N-1 {
		t.Fatalf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, N-1)
	}
}

func TestOptimizeSubmittedGraph(t *testing.T) {
	_, ts := newTestServer(t)
	g := models.Figure2Block(2)
	raw, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Graph: raw})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.Model, "graph:") {
		t.Fatalf("model = %q, want graph:<fingerprint>", out.Model)
	}
	if out.Batch != 2 {
		t.Fatalf("batch = %d, want 2 (from the graph's input shape)", out.Batch)
	}

	// Submitting the identical graph again hits the fingerprint key.
	_, body2 := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Graph: raw})
	var out2 OptimizeResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.Cached || out2.Model != out.Model {
		t.Fatalf("identical graph resubmission: cached=%v model=%q, want hit on %q", out2.Cached, out2.Model, out.Model)
	}
}

func TestMeasureBaselinesAndSchedules(t *testing.T) {
	_, ts := newTestServer(t)
	lat := map[string]float64{}
	for _, baseline := range []string{"ios", "sequential", "greedy"} {
		resp, body := postJSON(t, ts.URL+"/measure", MeasureRequest{Model: "squeezenet", Baseline: baseline})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", baseline, resp.StatusCode, body)
		}
		var out MeasureResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Source != baseline || out.LatencyMS <= 0 || out.Throughput <= 0 {
			t.Fatalf("%s: %+v", baseline, out)
		}
		lat[baseline] = out.LatencyMS
	}
	if lat["ios"] > lat["sequential"] {
		t.Fatalf("IOS (%.3f ms) slower than sequential (%.3f ms)", lat["ios"], lat["sequential"])
	}

	// Round-trip: measure a schedule produced by /optimize.
	_, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "squeezenet"})
	var opt OptimizeResponse
	if err := json.Unmarshal(body, &opt); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/measure", MeasureRequest{Model: "squeezenet", Schedule: opt.Schedule})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure schedule: status %d: %s", resp.StatusCode, body)
	}
	var out MeasureResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Source != "schedule" {
		t.Fatalf("source = %q, want schedule", out.Source)
	}
	if out.LatencyMS != opt.LatencyMS {
		t.Fatalf("re-measured latency %.6f ms != optimize's %.6f ms", out.LatencyMS, opt.LatencyMS)
	}
}

func TestModelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(models.Zoo()) {
		t.Fatalf("%d models listed, want %d", len(infos), len(models.Zoo()))
	}
	byName := map[string]ModelInfo{}
	for _, m := range infos {
		byName[m.Name] = m
	}
	inc, ok := byName["inception"]
	if !ok || inc.Ops == 0 || inc.Width == 0 {
		t.Fatalf("inception entry missing or empty: %+v", inc)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "fig2"})
	postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "fig2"})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests["optimize"] != 2 {
		t.Fatalf("optimize requests = %d, want 2", st.Requests["optimize"])
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss + 1 hit", st.Cache)
	}
	if st.Device != "Tesla V100" || st.Options == "" {
		t.Fatalf("stats identity: %+v", st)
	}
}

func TestWarm(t *testing.T) {
	s := NewServer(Config{})
	if err := s.Warm(context.Background(), []string{"fig2", "squeezenet"}, []int{1, 4}); err != nil {
		t.Fatal(err)
	}
	if got := s.Cache().Len(); got != 4 {
		t.Fatalf("cache holds %d entries after warming 2 models x 2 batches, want 4", got)
	}
	st := s.Cache().Stats()
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("warm stats = %+v, want 4 misses", st)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	g := models.Figure2Block(1)
	raw, _ := g.MarshalJSON()

	cases := []struct {
		name string
		req  OptimizeRequest
	}{
		{"neither model nor graph", OptimizeRequest{}},
		{"both model and graph", OptimizeRequest{Model: "fig2", Graph: raw}},
		{"unknown model", OptimizeRequest{Model: "alexnet"}},
		{"unknown device", OptimizeRequest{Model: "fig2", Device: "tpu"}},
		{"unknown strategy", OptimizeRequest{Model: "fig2", Strategy: "quantum"}},
		{"negative batch", OptimizeRequest{Model: "fig2", Batch: -3}},
		{"batch conflicts with graph", OptimizeRequest{Graph: raw, Batch: 7}},
		{"malformed graph", OptimizeRequest{Graph: json.RawMessage(`{"nodes": [{"name": "x", "op": "conv"}]}`)}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/optimize", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, body)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q is not {\"error\": ...}", tc.name, body)
		}
	}

	// Method checks.
	if resp, err := http.Get(ts.URL + "/optimize"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /optimize: status %d, want 405", resp.StatusCode)
	}
	if resp, body := postJSON(t, ts.URL+"/stats", struct{}{}); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats: status %d (%s), want 405", resp.StatusCode, body)
	}
}

// TestOptimizeUnboundedPruningIsHonored is a regression test: an explicit
// r=-1,s=-1 request must run the genuinely exhaustive search (and be
// cached under the "none" fingerprint), not silently fall back to the
// default r=3,s=8 pruning via double default-filling.
func TestOptimizeUnboundedPruningIsHonored(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "fig2", R: -1, S: -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Options != "IOS-Both/none" {
		t.Fatalf("options = %q, want IOS-Both/none", out.Options)
	}
	// The search must match a direct unpruned run, transition for
	// transition.
	direct, err := core.Optimize(models.Figure2Block(1), profile.New(gpusim.TeslaV100), core.Unpruned)
	if err != nil {
		t.Fatal(err)
	}
	if out.Search.Transitions != direct.Stats.Transitions || out.Search.States != direct.Stats.States {
		t.Fatalf("served search (%d states, %d transitions) != direct unpruned search (%d states, %d transitions)",
			out.Search.States, out.Search.Transitions, direct.Stats.States, direct.Stats.Transitions)
	}
	// And it must differ from the default-pruned search on a graph where
	// the r=3 bound binds (fig2's 4-conv block admits 4-op endings).
	pruned, err := core.Optimize(models.Figure2Block(1), profile.New(gpusim.TeslaV100), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Search.Transitions == pruned.Stats.Transitions {
		t.Fatalf("unpruned request examined the same %d transitions as the pruned search — pruning was silently applied", pruned.Stats.Transitions)
	}
}

// TestDegenerateGraphResponsesStayJSON guards the NaN/Inf hole: a graph
// with no schedulable operators measures a latency of 0, and the response
// must still be valid JSON (Speedup/Throughput reported as 0) rather than
// a 200 with an empty body from a failed NaN encode.
func TestDegenerateGraphResponsesStayJSON(t *testing.T) {
	_, ts := newTestServer(t)
	inputOnly := json.RawMessage(`{"name":"empty","nodes":[{"name":"in","op":"input","shape":[1,3,8,8]}]}`)

	resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Graph: inputOnly})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %s", resp.StatusCode, body)
	}
	if len(body) == 0 {
		t.Fatal("optimize returned 200 with an empty body")
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("optimize response is not JSON: %v (%s)", err, body)
	}
	if out.Speedup != 0 || out.Throughput != 0 || out.LatencyMS != 0 {
		t.Fatalf("degenerate graph: speedup=%v throughput=%v latency=%v, want all 0", out.Speedup, out.Throughput, out.LatencyMS)
	}

	resp, body = postJSON(t, ts.URL+"/measure", MeasureRequest{Graph: inputOnly, Baseline: "sequential"})
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("measure status %d, body %q", resp.StatusCode, body)
	}
	var m MeasureResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("measure response is not JSON: %v", err)
	}
	if m.Throughput != 0 {
		t.Fatalf("throughput = %v, want 0", m.Throughput)
	}
}

// TestMeasureIOSAnswersFromCacheEntry checks that baseline "ios" reuses
// the cached entry's stored latency instead of re-simulating, by pointing
// both endpoints at one key and comparing latencies exactly.
func TestMeasureIOSAnswersFromCacheEntry(t *testing.T) {
	s, ts := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "fig2"})
	var opt OptimizeResponse
	if err := json.Unmarshal(body, &opt); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/measure", MeasureRequest{Model: "fig2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var m MeasureResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Cached || m.Source != "ios" || m.LatencyMS != opt.LatencyMS {
		t.Fatalf("measure ios = %+v, want cached entry latency %.6f", m, opt.LatencyMS)
	}
	if st := s.Cache().Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (measure must not re-optimize)", st.Misses)
	}
}

// TestOversizedBodyIs413 checks that a request body over the limit gets
// 413, distinguishable from a malformed-JSON 400.
func TestOversizedBodyIs413(t *testing.T) {
	_, ts := newTestServer(t)
	big := bytes.Repeat([]byte("x"), maxBodyBytes+1)
	resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("413 body not an error JSON: %v", err)
	}
}
