package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ios/internal/baseline"
	"ios/internal/batching"
	"ios/internal/blockcache"
	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/measure"
	"ios/internal/models"
	"ios/internal/plan"
	"ios/internal/profile"
	"ios/internal/schedule"
)

// DefaultMeasureCacheSize bounds the process-wide default measurement
// cache. The serving tier measures arbitrary client-supplied graphs, so
// an unbounded cache would grow monotonically for the life of the
// daemon; this cap comfortably holds the full model zoo (a complete
// NasNet-A search resides in ~117k fingerprints) while bounding memory.
// Entries over capacity are shed and simply re-simulated on next use.
const DefaultMeasureCacheSize = 1 << 18

// sharedMeasureCache is the process-wide default structural measurement
// cache: servers whose Config does not name one all share it, so every
// optimization and measurement in the process — across servers, devices
// (the fingerprint embeds the device model), and models — deduplicates
// simulator work against a single table. Lazily built: a process that
// configures explicit caches never allocates it.
var (
	sharedMeasureOnce  sync.Once
	sharedMeasureCache *measure.Cache
)

// SharedMeasureCache returns the process-wide structural measurement
// cache (bounded at DefaultMeasureCacheSize entries) used by servers
// with no explicit Config.MeasureCache.
func SharedMeasureCache() *measure.Cache {
	sharedMeasureOnce.Do(func() { sharedMeasureCache = measure.NewCacheSize(DefaultMeasureCacheSize) })
	return sharedMeasureCache
}

// DefaultBlockCacheSize bounds the process-wide default whole-block
// schedule cache. One entry is a complete block schedule (a few stages of
// small index lists), and real networks contribute a handful of distinct
// block structures each, so this cap holds the zoo many times over while
// bounding a daemon optimizing arbitrary client graphs. Entries over
// capacity are shed and simply re-searched on next use.
const DefaultBlockCacheSize = 1 << 14

// sharedBlockCache is the process-wide default whole-block schedule
// cache: servers whose Config does not name one all share it, so every
// block DP search in the process — across servers, models, and requests —
// deduplicates against a single table, and a cold /optimize for a deep
// network pays one search per distinct block structure instead of one per
// block. Lazily built, like sharedMeasureCache.
var (
	sharedBlockOnce  sync.Once
	sharedBlockCache *blockcache.Cache
)

// SharedBlockCache returns the process-wide whole-block schedule cache
// (bounded at DefaultBlockCacheSize entries) used by servers with no
// explicit Config.BlockCache.
func SharedBlockCache() *blockcache.Cache {
	sharedBlockOnce.Do(func() { sharedBlockCache = blockcache.NewCacheSize(DefaultBlockCacheSize) })
	return sharedBlockCache
}

// DefaultCacheSize is the schedule-cache capacity a zero Config gets: big
// enough for every zoo model at several batch sizes on several devices.
const DefaultCacheSize = 256

// maxBodyBytes bounds request bodies (graph JSONs are well under this).
const maxBodyBytes = 16 << 20

// Config configures a Server. The zero value serves the V100 with paper
// defaults and a DefaultCacheSize cache.
type Config struct {
	// Device is the default device for requests that do not name one.
	// Zero value: the Tesla V100 (the paper's primary GPU).
	Device gpusim.Spec
	// Options is the default search configuration (zero value: IOS-Both,
	// r=3, s=8).
	Options core.Options
	// Cache holds optimized schedules; nil allocates a fresh
	// NewScheduleCache(DefaultCacheSize). Sharing one cache between
	// servers shares their schedules.
	Cache *ScheduleCache
	// MeasureCache deduplicates simulator stage measurements by
	// structural fingerprint across every request this server runs
	// (searches on schedule-cache misses, baseline measurements, warm
	// precomputation). nil selects the process-wide SharedMeasureCache,
	// so all servers in a process amortize each other's work; results
	// are bit-identical with or without it.
	MeasureCache *measure.Cache
	// BlockCache deduplicates whole-block DP searches by canonical
	// structural fingerprint across every optimization this server runs.
	// nil selects the process-wide SharedBlockCache; results are
	// bit-identical with or without it — only the number of block
	// searches drops.
	BlockCache *blockcache.Cache
	// Plans are batch-specialization plans registered at construction:
	// /optimize requests matching a plan's (model, device, options) are
	// served from its specialized schedules, with nearest-batch routing
	// for unplanned batch sizes. Invalid plans are skipped (and logged).
	// More plans can be added later with RegisterPlan / WarmPlans.
	Plans []*plan.Plan
	// Batching, when non-nil, enables the traffic-adaptive auto-batching
	// front end: POST /infer coalesces single-image (or small-batch)
	// inference requests into batches chosen from each registered plan's
	// measured performance model under the configured SLO. nil disables
	// /infer (requests get 404).
	Batching *BatchingConfig
	// Deadline, when positive, bounds each request's server-side
	// processing time: the request context gets this timeout, an
	// optimization that outlives it is cancelled (unless other live
	// requests coalesced onto the same search), and the requester
	// receives 503 + a JSON error. Zero means no server-side deadline —
	// requests are still cancelled when their client disconnects.
	Deadline time.Duration
	// Logf, when set, receives one line per served request.
	Logf func(format string, args ...any)
}

// Server serves IOS schedules over HTTP. Endpoints:
//
//	POST /optimize  optimize a zoo model or submitted graph (cached)
//	POST /measure   measure a schedule or baseline on a device
//	GET  /models    list the model zoo
//	GET  /stats     cache and traffic counters
//
// Every response is JSON; errors use {"error": "..."} with a 4xx/5xx
// status. Server implements http.Handler and is safe for concurrent use.
type Server struct {
	cfg     Config
	cache   *ScheduleCache
	measure *measure.Cache
	blocks  *blockcache.Cache
	mux     *http.ServeMux
	start   time.Time

	optimizeReqs  int64
	measureReqs   int64
	modelsReqs    int64
	statsReqs     int64
	plansReqs     int64
	cancelledReqs int64
	inferReqs     int64
	healthzReqs   int64

	// ready gates GET /healthz: true once start-up work (cache loads,
	// warm precompute) is done. NewServer starts ready — embedders that
	// warm flip it off first (see SetReady) — so the zero config needs
	// no extra call.
	ready atomic.Bool

	// Batch-specialization plans, keyed by the specialization axes minus
	// batch (which plans span). planMu also guards the float penalty
	// counters, which atomics cannot cover, and the routing memo.
	planMu      sync.Mutex
	plans       map[planKey]*plan.Plan      // guarded by planMu
	planMemo    map[planMemoKey]*planServed // guarded by planMu
	planExact   int64                       // guarded by planMu
	planRouted  int64                       // guarded by planMu
	penaltySum  float64                     // guarded by planMu
	lastPenalty float64                     // guarded by planMu
	maxPenalty  float64                     // guarded by planMu

	// Auto-batching front end: one lazily created Batcher per registered
	// plan (keyed by plan pointer, so re-registering a plan retires the
	// old batcher's key on its next lookup).
	batchMu  sync.Mutex
	batchers map[*plan.Plan]*batching.Batcher // guarded by batchMu

	zooOnce sync.Once
	zooInfo []ModelInfo
}

// planKey addresses a registered plan: a serving Key minus the batch.
type planKey struct {
	model, device, opts string
}

// planMemoKey addresses one memoized (plan, requested batch) routing; the
// plan pointer keys it so re-registering a plan naturally invalidates the
// old entries.
type planMemoKey struct {
	p     *plan.Plan
	batch int
}

// planServed is the rendered answer for one (plan, requested batch):
// every field is a pure function of the plan point and the batch, so it
// is computed once and served to every subsequent request.
type planServed struct {
	schedJSON []byte
	summary   schedule.Summary
	lat       float64 // schedule latency at the requested batch, seconds
	seqLat    float64 // sequential baseline at the requested batch, seconds
}

// planMemoCap bounds the routing memo: requests choose the batch, so an
// adversarial client could otherwise grow it without limit. Entries over
// capacity are simply recomputed per request (deterministic values —
// correctness is unaffected).
const planMemoCap = 4096

// NewServer returns a ready-to-mount server.
func NewServer(cfg Config) *Server {
	if cfg.Device.Name == "" {
		cfg.Device = gpusim.TeslaV100
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewScheduleCache(DefaultCacheSize)
	}
	mc := cfg.MeasureCache
	if mc == nil {
		mc = SharedMeasureCache()
	}
	bc := cfg.BlockCache
	if bc == nil {
		bc = SharedBlockCache()
	}
	s := &Server{cfg: cfg, cache: cache, measure: mc, blocks: bc, mux: http.NewServeMux(), start: time.Now(),
		plans: make(map[planKey]*plan.Plan), planMemo: make(map[planMemoKey]*planServed),
		batchers: make(map[*plan.Plan]*batching.Batcher)}
	for _, p := range cfg.Plans {
		if err := s.RegisterPlan(p); err != nil {
			s.logf("skipping invalid plan: %v", err)
		}
	}
	s.mux.HandleFunc("/optimize", s.handleOptimize)
	s.mux.HandleFunc("/measure", s.handleMeasure)
	s.mux.HandleFunc("/models", s.handleModels)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/plans", s.handlePlans)
	s.mux.HandleFunc("/plans/", s.handlePlanGet)
	s.mux.HandleFunc("/infer", s.handleInfer)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.ready.Store(true)
	return s
}

// SetReady flips the GET /healthz readiness gate. A server is born ready;
// embedders doing start-up work (loading persisted caches, warm
// precompute, plan sweeps) flip it off before and on after, so cluster
// membership and load balancers only route to nodes whose warm state is
// actually in place.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current GET /healthz readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

// RegisterPlan validates and registers a batch-specialization plan for
// routing. A plan replaces any earlier plan with the same (model, device,
// options) key. Plans for zoo models must use the canonical zoo name
// (models.ZooEntry.Name) as their Model to match request resolution.
func (s *Server) RegisterPlan(p *plan.Plan) error {
	if p == nil {
		return fmt.Errorf("serve: nil plan")
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("serve: register plan: %w", err)
	}
	key := planKey{p.Model, p.Device, p.Opts}
	s.planMu.Lock()
	if old := s.plans[key]; old != nil && old != p {
		for mk := range s.planMemo {
			if mk.p == old {
				delete(s.planMemo, mk)
			}
		}
	}
	s.plans[key] = p
	s.planMu.Unlock()
	return nil
}

// Plans returns the registered batch-specialization plans, sorted by
// (model, device, options) — e.g. for persisting them at shutdown.
func (s *Server) Plans() []*plan.Plan {
	s.planMu.Lock()
	out := make([]*plan.Plan, 0, len(s.plans))
	for _, p := range s.plans {
		out = append(out, p)
	}
	s.planMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Opts < b.Opts
	})
	return out
}

// planFor returns the registered plan matching a request key, or nil.
func (s *Server) planFor(key Key) *plan.Plan {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	return s.plans[planKey{key.Model, key.Device, key.Opts}]
}

// recordRoute counts one plan-served answer in the /stats counters.
// Only routed (non-exact) answers feed the penalty aggregates: an exact
// hit's penalty is 1.0 by construction, so folding exact traffic into
// PenaltySum would drag the mean toward 1 and hide how costly the
// actual routing is. LastPenalty still tracks every answer.
func (s *Server) recordRoute(penalty float64, exact bool) {
	s.planMu.Lock()
	if exact {
		s.planExact++
	} else {
		s.planRouted++
		s.penaltySum += penalty
		if penalty > s.maxPenalty {
			s.maxPenalty = penalty
		}
	}
	s.lastPenalty = penalty
	s.planMu.Unlock()
}

// Cache returns the server's schedule cache.
func (s *Server) Cache() *ScheduleCache { return s.cache }

// MeasureCache returns the server's structural measurement cache (the
// process-wide shared instance unless Config named one).
func (s *Server) MeasureCache() *measure.Cache { return s.measure }

// BlockCache returns the server's whole-block schedule cache (the
// process-wide shared instance unless Config named one).
func (s *Server) BlockCache() *blockcache.Cache { return s.blocks }

// newProfiler builds a profiler for a device with the server's shared
// measurement cache attached, so every request's simulator work feeds and
// draws from one process-wide table.
func (s *Server) newProfiler(spec gpusim.Spec) *profile.Profiler {
	p := profile.New(spec)
	p.SetMeasureCache(s.measure)
	return p
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// OptimizeRequest is the body of POST /optimize. Exactly one of Model and
// Graph must be set: Model names a zoo network (see GET /models for the
// accepted names) built at Batch, while Graph carries a full computation
// graph in the internal/graph JSON schema (whose input shapes fix the
// batch). Device, Strategy, R and S override the server defaults; R or S
// of -1 means unbounded (exhaustive in that dimension).
type OptimizeRequest struct {
	Model    string          `json:"model,omitempty"`
	Graph    json.RawMessage `json:"graph,omitempty"`
	Batch    int             `json:"batch,omitempty"`
	Device   string          `json:"device,omitempty"`
	Strategy string          `json:"strategy,omitempty"`
	R        int             `json:"r,omitempty"`
	S        int             `json:"s,omitempty"`
}

// SearchInfo reports the search cost of the optimization that produced a
// response (zeroed identically for every requester that was served from
// cache — the search ran once).
type SearchInfo struct {
	Blocks       int     `json:"blocks"`
	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	Measurements int     `json:"measurements"`
	WallMS       float64 `json:"wall_ms"`
}

// PlanRoute reports how a request was served from a registered
// batch-specialization plan: the planned batch whose specialized schedule
// answered it, whether the requested batch was planned exactly, and the
// recorded reuse penalty (1 for an exact hit; for nearest-batch routing,
// the plan's matrix-derived estimate of reused-schedule latency over
// specialized latency at the requested batch).
type PlanRoute struct {
	PlannedBatch int     `json:"planned_batch"`
	Exact        bool    `json:"exact"`
	Penalty      float64 `json:"penalty"`
}

// OptimizeResponse is the body of a successful POST /optimize.
type OptimizeResponse struct {
	Model        string           `json:"model"`
	Device       string           `json:"device"`
	Batch        int              `json:"batch"`
	Options      string           `json:"options"`
	Cached       bool             `json:"cached"`
	LatencyMS    float64          `json:"latency_ms"`
	SequentialMS float64          `json:"sequential_ms"`
	Speedup      float64          `json:"speedup"`
	Throughput   float64          `json:"throughput"`
	Summary      schedule.Summary `json:"summary"`
	Schedule     json.RawMessage  `json:"schedule"`
	Search       SearchInfo       `json:"search"`
	// Plan is set when the request was served from a registered
	// batch-specialization plan instead of the schedule cache.
	Plan *PlanRoute `json:"plan,omitempty"`
}

// MeasureRequest is the body of POST /measure. The graph is named or
// submitted exactly as in OptimizeRequest. Schedule, when set, is a
// schedule JSON (as emitted by /optimize or cmd/iosopt) to measure
// against the graph; otherwise Baseline selects what to measure: "ios"
// (default — optimize through the cache), "sequential", or "greedy".
type MeasureRequest struct {
	Model    string          `json:"model,omitempty"`
	Graph    json.RawMessage `json:"graph,omitempty"`
	Batch    int             `json:"batch,omitempty"`
	Device   string          `json:"device,omitempty"`
	Schedule json.RawMessage `json:"schedule,omitempty"`
	Baseline string          `json:"baseline,omitempty"`
}

// MeasureResponse is the body of a successful POST /measure.
type MeasureResponse struct {
	Model      string           `json:"model"`
	Device     string           `json:"device"`
	Batch      int              `json:"batch"`
	Source     string           `json:"source"` // "schedule", "ios", "sequential", "greedy"
	Cached     bool             `json:"cached"`
	LatencyMS  float64          `json:"latency_ms"`
	Throughput float64          `json:"throughput"`
	Summary    schedule.Summary `json:"summary"`
}

// ModelInfo is one GET /models row.
type ModelInfo struct {
	Name    string   `json:"name"`
	Display string   `json:"display"`
	Aliases []string `json:"aliases,omitempty"`
	Ops     int      `json:"ops"`
	Width   int      `json:"width"`
}

// PlanStats counts batch-plan routing traffic for GET /stats.
type PlanStats struct {
	// Plans is the number of registered batch-specialization plans.
	Plans int `json:"plans"`
	// Exact counts requests served at an exactly planned batch size;
	// Routed counts requests at unplanned batches served by the nearest
	// specialized schedule.
	Exact  int64 `json:"exact"`
	Routed int64 `json:"routed"`
	// LastPenalty is the most recent plan-served answer's recorded reuse
	// penalty (1.0 for an exact hit). PenaltySum and MaxPenalty cover
	// ROUTED answers only — exact hits are 1.0 by construction and would
	// skew the aggregate toward 1 — so the mean routed penalty is
	// PenaltySum / Routed and MaxPenalty is the worst routing so far.
	LastPenalty float64 `json:"last_penalty"`
	PenaltySum  float64 `json:"penalty_sum"`
	MaxPenalty  float64 `json:"max_penalty"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Device   string           `json:"device"`
	Options  string           `json:"options"`
	UptimeS  float64          `json:"uptime_s"`
	Requests map[string]int64 `json:"requests"`
	Cache    CacheStats       `json:"cache"`
	// MeasureCache reports the structural measurement cache: simulator
	// invocations deduplicated across every request in the process.
	MeasureCache measure.Stats `json:"measure_cache"`
	// BlockCache reports the whole-block schedule cache: block DP
	// searches deduplicated by structural fingerprint across every
	// optimization in the process.
	BlockCache blockcache.Stats `json:"block_cache"`
	// Plan reports batch-specialization routing: how many requests were
	// served from registered plans and at what recorded penalty.
	Plan PlanStats `json:"plan"`
	// Batch reports the auto-batching front end (POST /infer): per-plan
	// queue depth, dispatch histogram, SLO violations, and the sweep
	// batches the observed traffic suggests for a plan rebuild.
	Batch BatchStats `json:"batch"`
}

// PlanInfo is one GET /plans row: a registered plan's identity plus its
// measured cross-batch matrices (latency in milliseconds; penalty =
// row-schedule-at-column-batch over the column's specialized schedule).
type PlanInfo struct {
	Model     string      `json:"model"`
	Device    string      `json:"device"`
	Options   string      `json:"options"`
	Batches   []int       `json:"batches"`
	LatencyMS [][]float64 `json:"latency_ms"`
	Penalty   [][]float64 `json:"penalty"`
}

// request resolution ---------------------------------------------------

// resolved carries everything the handlers need about one request target.
type resolved struct {
	key   Key
	spec  gpusim.Spec
	opts  core.Options
	batch int
	// build constructs the graph (deferred so cache hits skip it; for
	// submitted graphs it returns the already-parsed value).
	build func() (*graph.Graph, error)
}

// resolve validates the model/graph/device/options fields shared by
// /optimize and /measure and produces the cache key.
func (s *Server) resolve(model string, rawGraph json.RawMessage, batch int, device, strategy string, r, sBound int) (*resolved, error) {
	if (model == "") == (len(rawGraph) == 0) {
		return nil, fmt.Errorf("pass exactly one of \"model\" and \"graph\"")
	}
	spec := s.cfg.Device
	if device != "" {
		var ok bool
		if spec, ok = gpusim.SpecByName(device); !ok {
			return nil, fmt.Errorf("unknown device %q", device)
		}
	}
	// Canonicalize the defaults first so a request overriding only R
	// keeps the default S (rather than silently unbounding it).
	opts := s.cfg.Options.Canonical()
	if strategy != "" {
		set, err := core.ParseStrategySet(strategy)
		if err != nil {
			return nil, err
		}
		opts.Strategies = set
	}
	if r != 0 {
		opts.Pruning.R = r
	}
	if sBound != 0 {
		opts.Pruning.S = sBound
	}
	opts = opts.Canonical()
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	res := &resolved{spec: spec, opts: opts}
	if model != "" {
		entry, ok := models.EntryByName(model)
		if !ok {
			return nil, fmt.Errorf("unknown model %q (GET /models lists the zoo)", model)
		}
		if batch == 0 {
			batch = 1
		}
		if batch < 1 {
			return nil, fmt.Errorf("batch must be >= 1, got %d", batch)
		}
		res.batch = batch
		res.key = Key{Model: entry.Name, Batch: batch, Device: spec.Name, Opts: opts.Fingerprint()}
		res.build = func() (*graph.Graph, error) { return entry.Build(batch), nil }
		return res, nil
	}

	g, err := graph.FromJSON(rawGraph)
	if err != nil {
		return nil, err
	}
	// Surface block-partition errors here, where they map to a 400: past
	// this point optimizer failures are reported as server errors.
	if _, err := g.Partition(opts.MaxBlockOps); err != nil {
		return nil, err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, err
	}
	res.batch = g.Batch()
	if batch != 0 && batch != res.batch {
		return nil, fmt.Errorf("batch %d conflicts with the submitted graph's input batch %d (the graph's shapes win; omit \"batch\")", batch, res.batch)
	}
	res.key = Key{Model: "graph:" + fp, Batch: res.batch, Device: spec.Name, Opts: opts.Fingerprint()}
	res.build = func() (*graph.Graph, error) { return g, nil }
	return res, nil
}

// entry runs the cached optimization for a resolved request under the
// request's context: the search is cancelled (and its singleflight slot
// freed for retries) once every request interested in this key is gone.
func (s *Server) entry(ctx context.Context, res *resolved) (*Entry, bool, error) {
	return s.cache.GetOrCompute(ctx, res.key, func(ctx context.Context) (*Entry, error) {
		g, err := res.build()
		if err != nil {
			return nil, err
		}
		prof := s.newProfiler(res.spec)
		out, err := core.OptimizeContext(ctx, g, prof, res.opts.WithBlockCache(s.blocks))
		if err != nil {
			return nil, err
		}
		lat, err := prof.MeasureSchedule(out.Schedule)
		if err != nil {
			return nil, err
		}
		seq, err := baseline.Sequential(g)
		if err != nil {
			return nil, err
		}
		seqLat, err := prof.MeasureSchedule(seq)
		if err != nil {
			return nil, err
		}
		schedJSON, err := out.Schedule.MarshalJSON()
		if err != nil {
			return nil, err
		}
		return &Entry{
			Graph:             g,
			Schedule:          out.Schedule,
			Stats:             out.Stats,
			Latency:           lat,
			SequentialLatency: seqLat,
			ScheduleJSON:      schedJSON,
			Summary:           out.Schedule.Summarize(),
			ComputedAt:        time.Now(),
		}, nil
	})
}

// Warm precomputes schedules for the named zoo models (nil = the paper's
// four benchmarks) at the given batch sizes (nil = batch 1) on the
// server's default device, so the first user request hits a warm cache.
// Cancelling ctx aborts the remaining precomputations (e.g. on SIGINT
// during daemon start-up).
func (s *Server) Warm(ctx context.Context, names []string, batches []int) error {
	if names == nil {
		names = []string{"inception", "randwire", "nasnet", "squeezenet"}
	}
	if len(batches) == 0 {
		batches = []int{1}
	}
	for _, name := range names {
		for _, b := range batches {
			res, err := s.resolve(name, nil, b, "", "", 0, 0)
			if err != nil {
				return fmt.Errorf("serve: warm %s: %w", name, err)
			}
			if _, _, err := s.entry(ctx, res); err != nil {
				return fmt.Errorf("serve: warm %s/b%d: %w", name, b, err)
			}
			s.logf("warm %s", res.key)
		}
	}
	return nil
}

// WarmPlans builds and registers a batch-specialization plan for each
// named zoo model (nil = the paper's four benchmarks) over the given
// batch sizes, on the server's default device and options: one
// specialized search per (model, batch) — concurrently per model, under
// the server's worker budget — plus the measured cross-batch penalty
// matrix, all feeding the server's shared structural measurement cache.
// Subsequent /optimize requests for these models are answered from the
// plan: exactly planned batches with their specialized schedule,
// unplanned batches by nearest-batch routing with a recorded penalty.
// Cancelling ctx aborts the remaining sweeps.
func (s *Server) WarmPlans(ctx context.Context, names []string, batches []int) error {
	if names == nil {
		names = []string{"inception", "randwire", "nasnet", "squeezenet"}
	}
	if len(batches) == 0 {
		return fmt.Errorf("serve: WarmPlans needs at least one batch size")
	}
	opts := s.cfg.Options.Canonical()
	for _, name := range names {
		entry, ok := models.EntryByName(name)
		if !ok {
			return fmt.Errorf("serve: warm plan: unknown model %q (GET /models lists the zoo)", name)
		}
		p, err := plan.Build(ctx, plan.BuildConfig{
			Graph:       entry.Build(1),
			Batches:     batches,
			Device:      s.cfg.Device.Name,
			Opts:        opts.WithBlockCache(s.blocks),
			Workers:     opts.Workers,
			NewProfiler: func() *profile.Profiler { return s.newProfiler(s.cfg.Device) },
		})
		if err != nil {
			return fmt.Errorf("serve: warm plan %s: %w", entry.Name, err)
		}
		// Key the plan by the canonical zoo name so request resolution
		// (which canonicalizes model names) finds it.
		p.Model = entry.Name
		if err := s.RegisterPlan(p); err != nil {
			return err
		}
		s.logf("plan %s/%s/%s batches=%v", p.Model, p.Device, p.Opts, p.Batches())
	}
	return nil
}

// handlers --------------------------------------------------------------

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt64(&s.optimizeReqs, 1)
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req OptimizeRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	res, err := s.resolve(req.Model, req.Graph, req.Batch, req.Device, req.Strategy, req.R, req.S)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if p := s.planFor(res.key); p != nil {
		s.servePlanned(w, ctx, res, p)
		return
	}
	e, cached, err := s.entry(ctx, res)
	if err != nil {
		s.failCompute(w, ctx, err)
		return
	}
	// Entries computed by this server carry the serialized schedule and
	// summary; fall back for externally constructed cache entries.
	schedJSON, summary := e.ScheduleJSON, e.Summary
	if schedJSON == nil {
		schedJSON, err = e.Schedule.MarshalJSON()
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		summary = e.Schedule.Summarize()
	}
	resp := OptimizeResponse{
		Model:        res.key.Model,
		Device:       res.spec.Name,
		Batch:        res.batch,
		Options:      res.key.Opts,
		Cached:       cached,
		LatencyMS:    1e3 * e.Latency,
		SequentialMS: 1e3 * e.SequentialLatency,
		Speedup:      ratio(e.SequentialLatency, e.Latency),
		Throughput:   ratio(float64(res.batch), e.Latency),
		Summary:      summary,
		Schedule:     schedJSON,
		Search: SearchInfo{
			Blocks:       e.Stats.Blocks,
			States:       e.Stats.States,
			Transitions:  e.Stats.Transitions,
			Measurements: e.Stats.Measurements,
			WallMS:       float64(e.Stats.WallTime) / float64(time.Millisecond),
		},
	}
	s.logf("optimize %s cached=%v %.3fms", res.key, cached, resp.LatencyMS)
	s.writeJSON(w, resp)
}

// servePlanned answers an /optimize request from a registered
// batch-specialization plan: an exactly planned batch is served with its
// specialized schedule and stored latency; an unplanned batch is routed
// to the nearest planned batch, whose schedule is transferred onto the
// requested batch's graph and measured (warm structural-measurement-cache
// work — the optimizer never runs). The rendered answer for each (plan,
// batch) is memoized, so repeat requests pay no measurement or marshaling
// at all. Either way the routing is recorded in the /stats plan counters
// with its penalty.
func (s *Server) servePlanned(w http.ResponseWriter, ctx context.Context, res *resolved, p *plan.Plan) {
	pt, penalty, exact := p.Route(res.batch)
	if err := ctx.Err(); err != nil {
		s.failCompute(w, ctx, err)
		return
	}
	e, err := s.plannedEntry(res.spec, p, pt, res.batch, exact)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.recordRoute(penalty, exact)
	resp := OptimizeResponse{
		Model:        res.key.Model,
		Device:       res.spec.Name,
		Batch:        res.batch,
		Options:      res.key.Opts,
		Cached:       true, // no search ran; the plan precomputed it
		LatencyMS:    1e3 * e.lat,
		SequentialMS: 1e3 * e.seqLat,
		Speedup:      ratio(e.seqLat, e.lat),
		Throughput:   ratio(float64(res.batch), e.lat),
		Summary:      e.summary,
		Schedule:     e.schedJSON,
		Plan:         &PlanRoute{PlannedBatch: pt.Batch, Exact: exact, Penalty: penalty},
	}
	s.logf("optimize %s plan batch=%d->%d exact=%v penalty=%.3f %.3fms",
		res.key, res.batch, pt.Batch, exact, penalty, resp.LatencyMS)
	s.writeJSON(w, resp)
}

// plannedEntry resolves the memoized answer for one (plan, requested
// batch), computing it on the first request: bind the routed schedule at
// the requested batch (exact hits reuse the plan point verbatim), measure
// it and the sequential baseline, and pre-serialize the schedule JSON.
// The requested batch's graph comes from the plan point itself
// (pt.Graph.WithBatch), so the entry works for any registered plan —
// including ones loaded from disk — without zoo resolution. Every value
// is a deterministic function of the inputs, so concurrent first
// requests may compute duplicates, and last-write-wins is benign.
func (s *Server) plannedEntry(spec gpusim.Spec, p *plan.Plan, pt *plan.Point, batch int, exact bool) (*planServed, error) {
	key := planMemoKey{p: p, batch: batch}
	s.planMu.Lock()
	if e, ok := s.planMemo[key]; ok {
		s.planMu.Unlock()
		return e, nil
	}
	s.planMu.Unlock()

	g, sched, lat := pt.Graph, pt.Schedule, pt.Latency
	if !exact {
		var err error
		if g, err = pt.Graph.WithBatch(batch); err != nil {
			return nil, err
		}
		recipe, err := pt.Schedule.MarshalJSON()
		if err != nil {
			return nil, err
		}
		if sched, err = schedule.FromJSON(recipe, g); err == nil {
			err = sched.Validate()
		}
		if err != nil {
			return nil, fmt.Errorf("plan: route batch %d to planned batch %d: %w", batch, pt.Batch, err)
		}
		if lat, err = s.newProfiler(spec).MeasureSchedule(sched); err != nil {
			return nil, err
		}
	}
	seq, err := baseline.Sequential(g)
	if err != nil {
		return nil, err
	}
	seqLat, err := s.newProfiler(spec).MeasureSchedule(seq)
	if err != nil {
		return nil, err
	}
	schedJSON, err := sched.MarshalJSON()
	if err != nil {
		return nil, err
	}
	e := &planServed{schedJSON: schedJSON, summary: sched.Summarize(), lat: lat, seqLat: seqLat}
	s.planMu.Lock()
	if len(s.planMemo) < planMemoCap {
		s.planMemo[key] = e
	}
	s.planMu.Unlock()
	return e, nil
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt64(&s.measureReqs, 1)
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req MeasureRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	res, err := s.resolve(req.Model, req.Graph, req.Batch, req.Device, "", 0, 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	var (
		sched  *schedule.Schedule
		source string
	)
	switch {
	case len(req.Schedule) > 0:
		if req.Baseline != "" {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("pass at most one of \"schedule\" and \"baseline\""))
			return
		}
		g, err := res.build()
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		sched, err = schedule.FromJSON(req.Schedule, g)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		if err := sched.Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		source = "schedule"
	case req.Baseline == "" || req.Baseline == "ios":
		e, hit, err := s.entry(ctx, res)
		if err != nil {
			s.failCompute(w, ctx, err)
			return
		}
		// The entry already carries this schedule's measured latency;
		// answer from it instead of re-simulating the whole network.
		summary := e.Summary
		if e.ScheduleJSON == nil {
			summary = e.Schedule.Summarize()
		}
		resp := MeasureResponse{
			Model:      res.key.Model,
			Device:     res.spec.Name,
			Batch:      res.batch,
			Source:     "ios",
			Cached:     hit,
			LatencyMS:  1e3 * e.Latency,
			Throughput: ratio(float64(res.batch), e.Latency),
			Summary:    summary,
		}
		s.logf("measure %s source=ios %.3fms", res.key, resp.LatencyMS)
		s.writeJSON(w, resp)
		return
	case req.Baseline == "sequential" || req.Baseline == "greedy":
		g, err := res.build()
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		if req.Baseline == "sequential" {
			sched, err = baseline.Sequential(g)
		} else {
			sched, err = baseline.Greedy(g)
		}
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		source = req.Baseline
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown baseline %q (want ios, sequential, or greedy)", req.Baseline))
		return
	}

	lat, err := s.newProfiler(res.spec).MeasureSchedule(sched)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	resp := MeasureResponse{
		Model:      res.key.Model,
		Device:     res.spec.Name,
		Batch:      res.batch,
		Source:     source,
		LatencyMS:  1e3 * lat,
		Throughput: ratio(float64(res.batch), lat),
		Summary:    sched.Summarize(),
	}
	s.logf("measure %s source=%s %.3fms", res.key, source, resp.LatencyMS)
	s.writeJSON(w, resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt64(&s.modelsReqs, 1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.zooOnce.Do(func() {
		for _, e := range models.Zoo() {
			g := e.Build(1)
			s.zooInfo = append(s.zooInfo, ModelInfo{
				Name:    e.Name,
				Display: e.Display,
				Aliases: e.Aliases,
				Ops:     len(g.SchedulableNodes()),
				Width:   g.Width(),
			})
		}
	})
	s.writeJSON(w, s.zooInfo)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt64(&s.statsReqs, 1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.planMu.Lock()
	planStats := PlanStats{
		Plans:       len(s.plans),
		Exact:       s.planExact,
		Routed:      s.planRouted,
		LastPenalty: s.lastPenalty,
		PenaltySum:  s.penaltySum,
		MaxPenalty:  s.maxPenalty,
	}
	s.planMu.Unlock()
	s.writeJSON(w, StatsResponse{
		Device:  s.cfg.Device.Name,
		Options: s.cfg.Options.Fingerprint(),
		UptimeS: time.Since(s.start).Seconds(),
		Requests: map[string]int64{
			"optimize":  atomic.LoadInt64(&s.optimizeReqs),
			"measure":   atomic.LoadInt64(&s.measureReqs),
			"models":    atomic.LoadInt64(&s.modelsReqs),
			"stats":     atomic.LoadInt64(&s.statsReqs),
			"plans":     atomic.LoadInt64(&s.plansReqs),
			"infer":     atomic.LoadInt64(&s.inferReqs),
			"cancelled": atomic.LoadInt64(&s.cancelledReqs),
			"healthz":   atomic.LoadInt64(&s.healthzReqs),
		},
		Cache:        s.cache.Stats(),
		MeasureCache: s.measure.Stats(),
		BlockCache:   s.blocks.Stats(),
		Plan:         planStats,
		Batch:        s.batchStats(),
	})
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt64(&s.plansReqs, 1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.planMu.Lock()
	infos := make([]PlanInfo, 0, len(s.plans))
	for _, p := range s.plans {
		n := len(p.Points)
		info := PlanInfo{
			Model:     p.Model,
			Device:    p.Device,
			Options:   p.Opts,
			Batches:   p.Batches(),
			LatencyMS: make([][]float64, n),
			Penalty:   make([][]float64, n),
		}
		for i := 0; i < n; i++ {
			info.LatencyMS[i] = make([]float64, n)
			info.Penalty[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				info.LatencyMS[i][j] = 1e3 * p.Latency[i][j]
				info.Penalty[i][j] = p.Penalty(i, j)
			}
		}
		infos = append(infos, info)
	}
	s.planMu.Unlock()
	sort.Slice(infos, func(i, j int) bool {
		a, b := infos[i], infos[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Options < b.Options
	})
	s.writeJSON(w, infos)
}

// handlePlanGet serves the plan registry: GET /plans/<model>/<device>/<opts>
// returns the registered plan in its persisted JSON form (plan.Load reads
// it back losslessly), so stateless frontends and joining cluster nodes
// pull specialized batch plans instead of rebuilding them. Each path
// segment is URL-escaped by the client — device names carry spaces and
// options fingerprints carry slashes — so the split runs over the escaped
// path before unescaping the parts.
func (s *Server) handlePlanGet(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt64(&s.plansReqs, 1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/plans/")
	segs := strings.SplitN(rest, "/", 3)
	if len(segs) != 3 || segs[0] == "" || segs[1] == "" || segs[2] == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("use GET /plans/<model>/<device>/<options> (each segment URL-escaped)"))
		return
	}
	parts := make([]string, 3)
	for i, seg := range segs {
		p, err := url.PathUnescape(seg)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad path segment %q: %v", seg, err))
			return
		}
		parts[i] = p
	}
	p := s.LookupPlan(parts[0], parts[1], parts[2])
	if p == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("no plan for model %q device %q options %q", parts[0], parts[1], parts[2]))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := p.Save(w); err != nil {
		s.logf("plan registry: encode %s/%s/%s: %v", parts[0], parts[1], parts[2], err)
	}
}

// LookupPlan returns the registered plan for exactly (model, device,
// options fingerprint), or nil — the programmatic face of the plan
// registry endpoint.
func (s *Server) LookupPlan(model, device, opts string) *plan.Plan {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	return s.plans[planKey{model, device, opts}]
}

// HealthzResponse is the GET /healthz body.
type HealthzResponse struct {
	// Status is "ready" (HTTP 200) once start-up work — persisted cache
	// loads, warm precompute, plan sweeps — is done, else "starting"
	// (HTTP 503). See SetReady.
	Status string `json:"status"`
	// UptimeS is seconds since the server was constructed.
	UptimeS float64 `json:"uptime_s"`
}

// handleHealthz is the readiness probe: 200 {"status":"ready"} once
// start-up work is done, 503 {"status":"starting"} before. The cluster
// harness polls it for membership; load balancers should too.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt64(&s.healthzReqs, 1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	resp := HealthzResponse{Status: "ready", UptimeS: time.Since(s.start).Seconds()}
	if !s.ready.Load() {
		resp.Status = "starting"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	s.writeJSON(w, resp)
}

// plumbing --------------------------------------------------------------

// requestContext derives the per-request work context: the HTTP request's
// context (cancelled when the client disconnects) bounded by the
// configured server-side deadline, if any.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		return context.WithTimeout(ctx, s.cfg.Deadline)
	}
	return context.WithCancel(ctx)
}

// failCompute maps an optimization failure to a response: cancellations
// and deadline expiries — whether surfaced through the search or through
// the request context itself — are 503 Service Unavailable (the request
// was shed, not wrong) and are counted in /stats; everything else is a
// 500.
func (s *Server) failCompute(w http.ResponseWriter, ctx context.Context, err error) {
	if isCancelErr(err) || ctx.Err() != nil {
		atomic.AddInt64(&s.cancelledReqs, 1)
		// Prefer the request context's own error: a deadline expiry reads
		// better as "deadline exceeded" than as the search's generic
		// cancellation.
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("request cancelled: %w", cerr)
		}
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	s.fail(w, http.StatusInternalServerError, err)
}

// ratio divides, reporting 0 for a zero denominator: degenerate graphs
// (e.g. input-only) measure a latency of 0, and NaN/Inf are not
// JSON-encodable.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST with a JSON body"))
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parse body: %w", err))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("write response: %v", err)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.logf("error %d: %v", code, err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
