package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/models"
	"ios/internal/profile"
)

func testKey(model string, batch int) Key {
	return Key{Model: model, Batch: batch, Device: "Tesla V100", Opts: core.Options{}.Fingerprint()}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewScheduleCache(8)
	calls := 0
	compute := func(context.Context) (*Entry, error) { calls++; return &Entry{}, nil }

	if _, cached, err := c.GetOrCompute(context.Background(), testKey("a", 1), compute); err != nil || cached {
		t.Fatalf("first get: cached=%v err=%v, want miss", cached, err)
	}
	if _, cached, err := c.GetOrCompute(context.Background(), testKey("a", 1), compute); err != nil || !cached {
		t.Fatalf("second get: cached=%v err=%v, want hit", cached, err)
	}
	if _, cached, _ := c.GetOrCompute(context.Background(), testKey("a", 2), compute); cached {
		t.Fatal("different batch should miss")
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Size != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, size 2", st)
	}
}

// TestCacheDeduplicatesConcurrentRequests is the serving layer's core
// guarantee: N goroutines racing for the same (model, batch, device) key
// trigger exactly one optimization run. The run is a real core.Optimize of
// the paper's Figure-2 block, and the single-run assertion is made both on
// the compute-call count and on the profiler measurement count embedded in
// the shared entry's SearchStats (every caller sees the same stats because
// the search happened once).
func TestCacheDeduplicatesConcurrentRequests(t *testing.T) {
	const N = 32
	c := NewScheduleCache(8)
	key := testKey("fig2", 1)

	var computeCalls, totalMeasurements atomic.Int64
	compute := func(context.Context) (*Entry, error) {
		computeCalls.Add(1)
		g := models.Figure2Block(1)
		prof := profile.New(gpusim.TeslaV100)
		res, err := core.Optimize(g, prof, core.Options{})
		if err != nil {
			return nil, err
		}
		totalMeasurements.Add(int64(res.Stats.Measurements))
		return &Entry{Graph: g, Schedule: res.Schedule, Stats: res.Stats}, nil
	}

	// A start barrier maximizes the racing window.
	start := make(chan struct{})
	entries := make([]*Entry, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			e, _, err := c.GetOrCompute(context.Background(), key, compute)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			entries[i] = e
		}(i)
	}
	close(start)
	wg.Wait()

	if n := computeCalls.Load(); n != 1 {
		t.Fatalf("optimizer ran %d times for %d concurrent requests, want exactly 1", n, N)
	}
	for i, e := range entries {
		if e == nil || e != entries[0] {
			t.Fatalf("goroutine %d got a different entry", i)
		}
	}
	// All N requesters observe the one search's measurement count.
	if got, want := totalMeasurements.Load(), int64(entries[0].Stats.Measurements); got != want {
		t.Fatalf("profiler measurements across all requests = %d, want the single run's %d", got, want)
	}
	if entries[0].Stats.Measurements == 0 {
		t.Fatal("the one real search reported zero profiler measurements")
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Coalesced != N-1 {
		t.Fatalf("hits (%d) + coalesced (%d) = %d, want %d", st.Hits, st.Coalesced, st.Hits+st.Coalesced, N-1)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewScheduleCache(8)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.GetOrCompute(context.Background(), testKey("a", 1), func(context.Context) (*Entry, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, cached, err := c.GetOrCompute(context.Background(), testKey("a", 1), func(context.Context) (*Entry, error) { calls++; return &Entry{}, nil }); err != nil || cached {
		t.Fatalf("retry after error: cached=%v err=%v, want fresh compute", cached, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (failure must not be cached)", calls)
	}
	st := c.Stats()
	if st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewScheduleCache(2)
	get := func(model string) {
		t.Helper()
		if _, _, err := c.GetOrCompute(context.Background(), testKey(model, 1), func(context.Context) (*Entry, error) { return &Entry{}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now the LRU entry
	get("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Peek(testKey("b", 1)); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, m := range []string{"a", "c"} {
		if _, ok := c.Peek(testKey(m, 1)); !ok {
			t.Fatalf("%s should be resident", m)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCachePurgeAndKeys(t *testing.T) {
	c := NewScheduleCache(0)
	for i := 0; i < 5; i++ {
		model := fmt.Sprintf("m%d", i)
		c.GetOrCompute(context.Background(), testKey(model, 1), func(context.Context) (*Entry, error) { return &Entry{}, nil })
	}
	if len(c.Keys()) != 5 {
		t.Fatalf("keys = %d, want 5 (capacity 0 = unbounded)", len(c.Keys()))
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d, want 0", c.Len())
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Model: "inception", Batch: 16, Device: "Tesla V100", Opts: "IOS-Both/r=3,s=8"}
	want := "inception/b16/Tesla V100/IOS-Both/r=3,s=8"
	if got := k.String(); got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
}

// TestCachePanicInComputeDoesNotPoisonKey guards against a stuck slot: a
// panicking computation must unblock coalesced waiters with an error and
// leave the key retryable instead of deadlocking it forever.
func TestCachePanicInComputeDoesNotPoisonKey(t *testing.T) {
	c := NewScheduleCache(8)
	key := testKey("a", 1)

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	var panicErr, waiterErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, panicErr = c.GetOrCompute(context.Background(), key, func(context.Context) (*Entry, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	go func() {
		defer wg.Done()
		<-started // the slot is registered and compute is in flight
		_, _, waiterErr = c.GetOrCompute(context.Background(), key, func(context.Context) (*Entry, error) {
			t.Error("waiter ran its own compute while one was in flight")
			return &Entry{}, nil
		})
	}()
	<-started
	// Release the panic only once the waiter has provably coalesced onto
	// the in-flight slot (it bumps Coalesced under the lock before
	// blocking on the slot's done channel).
	for c.Stats().Coalesced == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for who, err := range map[string]error{"computer": panicErr, "waiter": waiterErr} {
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("%s error = %v, want computation-panicked error", who, err)
		}
	}
	// The key is retryable, not poisoned.
	if _, cached, err := c.GetOrCompute(context.Background(), key, func(context.Context) (*Entry, error) { return &Entry{}, nil }); err != nil || cached {
		t.Fatalf("retry after panic: cached=%v err=%v", cached, err)
	}
}
