package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// newBatchingServer warms a SqueezeNet plan into a server with the
// auto-batching front end enabled.
func newBatchingServer(t *testing.T, bc BatchingConfig) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{Logf: t.Logf, Batching: &bc})
	if err := s.WarmPlans(context.Background(), []string{"squeezenet"}, planTestBatches); err != nil {
		t.Fatalf("WarmPlans: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.CloseBatchers()
	})
	return s, ts
}

func TestInferDisabled(t *testing.T) {
	_, ts := newPlannedServer(t) // no Batching config
	resp, body := postJSON(t, ts.URL+"/infer", InferRequest{Model: "squeezenet"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when auto-batching is disabled: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "disabled") {
		t.Errorf("error should say auto-batching is disabled: %s", body)
	}
}

func TestInferNoPlan(t *testing.T) {
	s := NewServer(Config{Logf: t.Logf, Batching: &BatchingConfig{SLO: 50 * time.Millisecond}})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	resp, body := postJSON(t, ts.URL+"/infer", InferRequest{Model: "squeezenet"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 without a registered plan: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "no registered plan") {
		t.Errorf("error should point at the missing plan: %s", body)
	}
}

func TestInferSingleRequest(t *testing.T) {
	_, ts := newBatchingServer(t, BatchingConfig{SLO: 50 * time.Millisecond})
	resp, body := postJSON(t, ts.URL+"/infer", InferRequest{Model: "squeezenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out InferResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Images != 1 || out.DispatchImages < 1 || out.DispatchRequests < 1 {
		t.Errorf("response = %+v, want a served single-image request", out)
	}
	if out.Plan.PlannedBatch == 0 || out.Plan.Penalty < 1 {
		t.Errorf("plan route = %+v, want a valid routing", out.Plan)
	}
	if out.LatencyMS <= 0 || out.TotalMS < out.LatencyMS {
		t.Errorf("latency %.3fms total %.3fms implausible", out.LatencyMS, out.TotalMS)
	}
	if out.SLOMS != 50 {
		t.Errorf("slo_ms = %v, want 50", out.SLOMS)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if !st.Batch.Enabled || st.Batch.SLOMS != 50 {
		t.Fatalf("batch stats = %+v, want enabled with slo 50ms", st.Batch)
	}
	if len(st.Batch.Batchers) != 1 {
		t.Fatalf("batchers = %d, want 1 (squeezenet)", len(st.Batch.Batchers))
	}
	b := st.Batch.Batchers[0]
	if b.Model != "squeezenet" || b.Images < 1 || b.Dispatches < 1 {
		t.Errorf("batcher stats = %+v", b)
	}
	var histTotal int64
	for _, c := range b.DispatchHist {
		histTotal += c
	}
	if histTotal != b.Dispatches {
		t.Errorf("dispatch hist total %d != dispatches %d", histTotal, b.Dispatches)
	}
	if len(b.SuggestedBatches) == 0 {
		t.Error("suggested batches empty after served traffic")
	}
}

// TestInferConcurrent hammers /infer from many goroutines (exercised
// under -race in CI): every request is served, the per-plan counters
// add up, and routing stats flow into the plan counters.
func TestInferConcurrent(t *testing.T) {
	s, ts := newBatchingServer(t, BatchingConfig{SLO: 100 * time.Millisecond})
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/infer", InferRequest{Model: "squeezenet"})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var out InferResponse
			if err := json.Unmarshal(body, &out); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.batchStats()
	if len(st.Batchers) != 1 || st.Batchers[0].Images != n {
		t.Fatalf("batch stats = %+v, want %d images through one batcher", st, n)
	}
	if st.Batchers[0].QueueDepth != 0 || st.Batchers[0].InFlight != 0 {
		t.Errorf("batcher not idle after all requests returned: %+v", st.Batchers[0])
	}
}

// TestInferDrainWithQueuedRequest pins the shutdown path: a request
// queued (waiting for a bigger batch) when DrainBatchers runs completes
// immediately instead of waiting out its SLO headroom.
func TestInferDrainWithQueuedRequest(t *testing.T) {
	s, ts := newBatchingServer(t, BatchingConfig{SLO: 30 * time.Second})
	// First request: cold start, dispatches immediately, and establishes
	// an arrival timestamp.
	if resp, body := postJSON(t, ts.URL+"/infer", InferRequest{Model: "squeezenet"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming request: status %d: %s", resp.StatusCode, body)
	}
	// Second request: the observed arrival gap gives the queue a rate
	// estimate, and the enormous SLO lets it wait for a bigger planned
	// batch — it stays queued.
	done := make(chan InferResponse, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/infer", InferRequest{Model: "squeezenet"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("queued request: status %d: %s", resp.StatusCode, body)
			close(done)
			return
		}
		var out InferResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Error(err)
			close(done)
			return
		}
		done <- out
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.batchStats().Batchers[0].QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued (expected it to wait for a bigger batch)")
		}
		runtime.Gosched()
	}
	// Drain while the request is queued: it must complete promptly, long
	// before its 30s SLO headroom would have dispatched it.
	if err := s.DrainBatchers(context.Background()); err != nil {
		t.Fatalf("DrainBatchers: %v", err)
	}
	select {
	case out, ok := <-done:
		if ok && out.DispatchImages != 1 {
			t.Errorf("drained dispatch carried %d images, want the 1 queued", out.DispatchImages)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request did not complete after DrainBatchers")
	}
	if depth := s.batchStats().Batchers[0].QueueDepth; depth != 0 {
		t.Errorf("queue depth after drain = %d, want 0", depth)
	}
}

// TestRecordRouteConcurrent drives the plan counters from many
// goroutines directly (run under -race in CI): planMu must fully cover
// the float aggregates.
func TestRecordRouteConcurrent(t *testing.T) {
	s := NewServer(Config{})
	const per = 50
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				s.recordRoute(1.0+float64(i)/100, i%2 == 0)
			}
		}(i)
	}
	wg.Wait()
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if s.planExact != 4*per || s.planRouted != 4*per {
		t.Errorf("exact/routed = %d/%d, want %d/%d", s.planExact, s.planRouted, 4*per, 4*per)
	}
	// Routed goroutines are i ∈ {1,3,5,7}: sum = Σ per·(1 + i/100).
	want := per * (4 + (1+3+5+7)/100.0)
	if diff := s.penaltySum - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("penalty sum = %v, want %v", s.penaltySum, want)
	}
	if s.maxPenalty != 1.07 {
		t.Errorf("max penalty = %v, want 1.07", s.maxPenalty)
	}
}

// TestPlansEndpointEmpty pins the zero-plan encoding: GET /plans on a
// server with no registered plans must return an empty JSON array, not
// null.
func TestPlansEndpointEmpty(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Errorf("GET /plans with zero plans = %q, want []", got)
	}
	var infos []PlanInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Errorf("decoded %d plans, want 0", len(infos))
	}
}
