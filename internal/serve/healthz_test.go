package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestHealthzReadiness: /healthz is 200 "ready" on a fresh server, 503
// "starting" while an embedder holds readiness off (loading caches,
// warming), and 200 again once it flips back.
func TestHealthzReadiness(t *testing.T) {
	s, ts := newTestServer(t)

	check := func(wantCode int, wantStatus string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET /healthz = %d, want %d", resp.StatusCode, wantCode)
		}
		var hr HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		if hr.Status != wantStatus {
			t.Fatalf("status %q, want %q", hr.Status, wantStatus)
		}
		if hr.UptimeS < 0 {
			t.Fatalf("negative uptime %v", hr.UptimeS)
		}
	}

	if !s.Ready() {
		t.Fatal("fresh server not ready")
	}
	check(http.StatusOK, "ready")
	s.SetReady(false)
	check(http.StatusServiceUnavailable, "starting")
	s.SetReady(true)
	check(http.StatusOK, "ready")

	// Only GET is allowed.
	resp, err := http.Post(ts.URL+"/healthz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", resp.StatusCode)
	}
}

// TestCheckpointerTicks: the checkpointer saves once per injected tick
// and stops when the context ends.
func TestCheckpointerTicks(t *testing.T) {
	ticks := make(chan time.Time)
	saves := make(chan struct{}, 8)
	cp := &Checkpointer{
		Interval: time.Hour, // ignored: Ticks is set
		Save:     func() { saves <- struct{}{} },
		Ticks:    ticks,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); cp.Run(ctx) }()

	for i := 0; i < 3; i++ {
		ticks <- time.Time{}
		select {
		case <-saves:
		case <-time.After(5 * time.Second):
			t.Fatalf("tick %d: no save", i)
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
	if len(saves) != 0 {
		t.Fatalf("%d extra saves", len(saves))
	}

	// Degenerate configs return immediately instead of spinning.
	(&Checkpointer{}).Run(context.Background())
	(&Checkpointer{Save: func() {}, Interval: 0}).Run(context.Background())
}
