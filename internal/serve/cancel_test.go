package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCacheWaiterCancelUnblocksPromptly: a coalesced waiter whose context
// dies must return its own ctx.Err() immediately, while the computation —
// still wanted by the owner — runs to completion and is cached.
func TestCacheWaiterCancelUnblocksPromptly(t *testing.T) {
	c := NewScheduleCache(8)
	key := testKey("a", 1)
	started := make(chan struct{})
	release := make(chan struct{})

	var ownerEntry *Entry
	var ownerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ownerEntry, _, ownerErr = c.GetOrCompute(context.Background(), key, func(ctx context.Context) (*Entry, error) {
			close(started)
			<-release
			return &Entry{}, nil
		})
	}()
	<-started

	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(wctx, key, func(ctx context.Context) (*Entry, error) {
			t.Error("waiter ran its own compute while one was in flight")
			return &Entry{}, nil
		})
		waiterDone <- err
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	wcancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not unblock")
	}

	// The owner's run was NOT cancelled by the waiter's disconnect.
	close(release)
	wg.Wait()
	if ownerErr != nil || ownerEntry == nil {
		t.Fatalf("owner err = %v entry = %v, want completed entry", ownerErr, ownerEntry)
	}
	if _, ok := c.Peek(key); !ok {
		t.Fatal("completed entry was not cached")
	}
}

// TestCacheCancelFreesSlotAndRetrySucceeds: when every requester of an
// in-flight key is gone the run's context is cancelled; the failed run is
// not cached (no poisoned entry), its singleflight slot is freed, and a
// retry computes fresh and succeeds.
func TestCacheCancelFreesSlotAndRetrySucceeds(t *testing.T) {
	c := NewScheduleCache(8)
	key := testKey("a", 1)
	ctx, cancel := context.WithCancel(context.Background())

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, key, func(runCtx context.Context) (*Entry, error) {
			close(started)
			<-runCtx.Done() // a well-behaved compute observes its context
			return nil, runCtx.Err()
		})
		done <- err
	}()
	<-started
	cancel() // the only requester disconnects

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not unwind")
	}
	if _, ok := c.Peek(key); ok {
		t.Fatal("cancelled run left a poisoned cache entry")
	}
	if c.Len() != 0 {
		t.Fatalf("cancelled run left %d resident slots, want 0", c.Len())
	}
	st := c.Stats()
	if st.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", st.Cancelled)
	}

	// The retry owns a fresh slot and succeeds.
	e, cached, err := c.GetOrCompute(context.Background(), key, func(context.Context) (*Entry, error) {
		return &Entry{}, nil
	})
	if err != nil || cached || e == nil {
		t.Fatalf("retry: entry=%v cached=%v err=%v, want fresh successful compute", e, cached, err)
	}
}

// TestCachePreCancelledContextShortCircuits: a dead context never touches
// the compute path or the stats counters' miss/hit accounting.
func TestCachePreCancelledContextShortCircuits(t *testing.T) {
	c := NewScheduleCache(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, testKey("a", 1), func(context.Context) (*Entry, error) {
		t.Error("compute ran under a pre-cancelled context")
		return &Entry{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatal("pre-cancelled request left a slot behind")
	}
}

// TestServerDeadlineReturns503 configures a server-side deadline shorter
// than a RandWire search and checks the contract end to end: the slow
// request is shed with 503 + a JSON error and recorded in /stats, while a
// concurrent cheap request on the same server completes normally.
func TestServerDeadlineReturns503(t *testing.T) {
	s := NewServer(Config{Deadline: 250 * time.Millisecond, Logf: t.Logf})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	var slowStatus, fastStatus int
	var slowBody []byte
	wg.Add(2)
	go func() {
		defer wg.Done()
		resp, body := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "randwire"})
		slowStatus, slowBody = resp.StatusCode, body
	}()
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "fig2"})
		fastStatus = resp.StatusCode
	}()
	wg.Wait()

	if fastStatus != http.StatusOK {
		t.Fatalf("unaffected request returned %d, want 200", fastStatus)
	}
	if slowStatus != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request returned %d, want 503 (body %s)", slowStatus, slowBody)
	}
	var errResp map[string]string
	if err := json.Unmarshal(slowBody, &errResp); err != nil || errResp["error"] == "" {
		t.Fatalf("503 body is not a JSON error: %s", slowBody)
	}
	if !strings.Contains(errResp["error"], "deadline") && !strings.Contains(errResp["error"], "cancel") {
		t.Fatalf("error %q does not mention the deadline/cancellation", errResp["error"])
	}

	// /stats records the shed request and the cancelled search.
	resp, body := getBody(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats returned %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests["cancelled"] < 1 {
		t.Fatalf("stats cancelled requests = %d, want >= 1", st.Requests["cancelled"])
	}
	if st.Cache.Cancelled < 1 {
		t.Fatalf("stats cancelled searches = %d, want >= 1", st.Cache.Cancelled)
	}
	// The timed-out key is retryable: no poisoned or stuck slot remains.
	deadlineKey := Key{Model: "randwire", Batch: 1, Device: "Tesla V100", Opts: s.cfg.Options.Fingerprint()}
	if _, ok := s.Cache().Peek(deadlineKey); ok {
		t.Fatal("timed-out search left a cache entry")
	}
}

// TestServerClientDisconnectFreesSlot cancels the client side of an
// expensive request and verifies the server tears the search down and
// frees its singleflight slot, leaving the server fully responsive.
func TestServerClientDisconnectFreesSlot(t *testing.T) {
	s := NewServer(Config{Logf: t.Logf})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/optimize",
		strings.NewReader(`{"model": "randwire"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	// Wait for the search to be registered in flight, then disconnect.
	deadline := time.Now().Add(10 * time.Second)
	for s.Cache().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("client request unexpectedly completed")
	}
	// The server notices nobody is waiting, cancels the search, and frees
	// the slot — a retry would start fresh.
	deadline = time.Now().Add(30 * time.Second)
	for s.Cache().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled search still holds %d slots after 30s", s.Cache().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.Cache().Stats().Cancelled; n != 1 {
		t.Fatalf("cancelled searches = %d, want 1", n)
	}
	// The server still answers cheap requests promptly.
	resp, _ := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Model: "fig2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request returned %d, want 200", resp.StatusCode)
	}
}

// getBody GETs a URL and returns response + body (stats helper).
func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}
