// Package serve is the schedule-serving layer: it wraps the IOS optimizer
// (internal/core) behind a concurrent, deduplicating schedule cache and an
// HTTP JSON API, turning the one-shot "optimize a graph" library into a
// long-running service. The paper's workload shape motivates both pieces:
// a schedule is found once per (model, batch size, device) and then reused
// across millions of inferences, so a serving tier needs exactly one
// optimization run per distinct configuration no matter how many requests
// race for it, and a bounded memory of recipes after that. The layer is
// context-aware end to end: requests carry their HTTP context (plus an
// optional server-side deadline), and an in-flight optimization is
// cancelled once every request coalesced onto it has gone away.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ios/internal/core"
	"ios/internal/graph"
	"ios/internal/schedule"
)

// Key identifies one cached schedule: the paper's specialization axes
// (model identity, batch size, device) plus the search configuration.
type Key struct {
	// Model is the zoo model name, or "graph:<fingerprint>" for custom
	// graphs submitted by value.
	Model string
	// Batch is the input batch size.
	Batch int
	// Device is the canonical device name (gpusim.Spec.Name).
	Device string
	// Opts is the canonical options fingerprint (core.Options.Fingerprint).
	Opts string
}

// String renders the key for logs and stats.
func (k Key) String() string {
	return fmt.Sprintf("%s/b%d/%s/%s", k.Model, k.Batch, k.Device, k.Opts)
}

// Entry is one cached optimization result: the schedule recipe together
// with the measurements a serving response reports.
type Entry struct {
	// Key the entry was computed under.
	Key Key
	// Graph is the computation graph the schedule targets.
	Graph *graph.Graph
	// Schedule is the IOS-optimized execution plan.
	Schedule *schedule.Schedule
	// Stats is the search cost of producing it.
	Stats core.Stats
	// Latency is the schedule's simulated end-to-end latency (seconds).
	Latency float64
	// SequentialLatency is the sequential baseline's latency (seconds),
	// kept so responses can quote the speedup without re-measuring.
	SequentialLatency float64
	// ScheduleJSON is the schedule pre-serialized at compute time, so
	// cache hits on the serving hot path skip re-marshaling. Optional:
	// nil means serialize on demand.
	ScheduleJSON []byte
	// Summary is the schedule's precomputed shape summary (valid when
	// ScheduleJSON is set).
	Summary schedule.Summary
	// ComputedAt stamps when the optimization ran.
	ComputedAt time.Time
}

// CacheStats counts cache traffic. All counters are cumulative since the
// cache was created.
type CacheStats struct {
	// Size and Capacity describe the resident set (Capacity 0 =
	// unbounded).
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Hits served a completed entry without waiting.
	Hits int64 `json:"hits"`
	// Misses ran the optimizer.
	Misses int64 `json:"misses"`
	// Coalesced requests arrived while the same key was being computed
	// and waited for that in-flight run instead of starting their own —
	// the singleflight dedup count.
	Coalesced int64 `json:"coalesced"`
	// Evictions removed least-recently-used entries over capacity.
	Evictions int64 `json:"evictions"`
	// Errors counts failed computations (failures are not cached).
	Errors int64 `json:"errors"`
	// Cancelled counts computations aborted by context cancellation or
	// deadline expiry — a run is cancelled once every requester that was
	// waiting on it has gone away. Cancelled runs are a subset of Errors.
	Cancelled int64 `json:"cancelled"`
}

// slot is one cache cell. A slot is published to the map before its
// computation runs; done is closed when entry/err are final.
type slot struct {
	done     chan struct{}
	entry    *Entry
	err      error
	lastUsed int64 // LRU clock value, guarded by the cache mutex
	// interest counts requesters (the computing owner plus coalesced
	// waiters) whose contexts are still live; guarded by the cache
	// mutex. When it reaches zero before the computation completes, the
	// run's context is cancelled — nobody is left to receive the result,
	// so burning more CPU on it only delays other requests.
	interest int
	// cancelRun cancels the in-flight computation's context.
	cancelRun context.CancelFunc
}

// ScheduleCache is a concurrent schedule cache with request coalescing:
// any number of goroutines may ask for the same Key concurrently and
// exactly one of them runs the optimizer while the rest wait for its
// result (singleflight semantics). Completed entries are retained under an
// LRU policy up to the configured capacity. The zero value is not usable;
// call NewScheduleCache.
type ScheduleCache struct {
	mu        sync.Mutex
	cap       int           // immutable after construction
	slots     map[Key]*slot // guarded by mu
	clock     int64         // guarded by mu
	hits      int64         // guarded by mu
	misses    int64         // guarded by mu
	coal      int64         // guarded by mu
	evicted   int64         // guarded by mu
	errs      int64         // guarded by mu
	cancelled int64         // guarded by mu
}

// NewScheduleCache returns a cache holding up to capacity completed
// entries (capacity <= 0 means unbounded).
func NewScheduleCache(capacity int) *ScheduleCache {
	if capacity < 0 {
		capacity = 0
	}
	return &ScheduleCache{cap: capacity, slots: make(map[Key]*slot)}
}

// GetOrCompute returns the entry for key, running compute at most once per
// key no matter how many goroutines call concurrently: the first caller
// computes, every concurrent caller for the same key blocks until that
// single run finishes, and later callers hit the stored entry. cached
// reports whether this caller avoided running compute itself. A compute
// error is returned to every waiting caller but is not cached, so the next
// request retries.
//
// Cancellation semantics: compute receives a context that stays live as
// long as ANY requester coalesced onto the run still wants the result,
// and is cancelled once every such requester's own context is done — a
// popular in-flight optimization is never killed by one impatient client,
// while a run nobody is waiting for stops burning CPU. A waiter whose
// context is cancelled unblocks immediately with its ctx.Err(); a waiter
// that observes the run die of some OTHER requester's cancellation
// retries the key (becoming the new owner) instead of failing spuriously.
// Cancelled runs are counted in Stats().Cancelled, are not cached, and
// free their slot — a retry for the same key always starts fresh.
func (c *ScheduleCache) GetOrCompute(ctx context.Context, key Key, compute func(ctx context.Context) (*Entry, error)) (e *Entry, cached bool, err error) {
	c.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, false, err
		}
		s, ok := c.slots[key]
		if !ok {
			break
		}
		select {
		case <-s.done:
			if s.err != nil {
				// A failed run raced ahead of its own cleanup;
				// drop it and compute afresh.
				delete(c.slots, key)
				continue
			}
			// Completed entry: a plain hit.
			c.hits++
			c.clock++
			s.lastUsed = c.clock
			c.mu.Unlock()
			return s.entry, true, nil
		default:
			// In flight: coalesce onto the running computation,
			// registering our interest so the run outlives any single
			// requester's disconnect but not all of them.
			c.coal++
			s.interest++
			c.mu.Unlock()
			stop := context.AfterFunc(ctx, func() { c.release(s) })
			select {
			case <-s.done:
				stop()
				if s.err != nil && isCancelErr(s.err) && ctx.Err() == nil {
					// The run died of someone else's cancellation while
					// we still want the result: retry the key.
					c.mu.Lock()
					continue
				}
				return s.entry, true, s.err
			case <-ctx.Done():
				// Our interest unit is released by the AfterFunc.
				return nil, false, ctx.Err()
			}
		}
	}
	s := &slot{done: make(chan struct{}), interest: 1}
	c.misses++
	c.clock++
	s.lastUsed = c.clock
	// The run's context is detached from the owner's (so an owner
	// disconnect does not kill a run other requesters coalesced onto)
	// and cancelled by release once the last interested requester is
	// gone.
	runCtx, cancelRun := context.WithCancel(context.WithoutCancel(ctx))
	s.cancelRun = cancelRun
	c.slots[key] = s
	c.mu.Unlock()
	stop := context.AfterFunc(ctx, func() { c.release(s) })

	// A compute panic must not leave the slot's done channel open:
	// coalesced waiters block on it forever and — since the slot would
	// stay resident — so would every future request for the key. Convert
	// the panic to an error so waiters unblock and the key stays
	// retryable.
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.entry, s.err = nil, fmt.Errorf("serve: schedule computation panicked: %v", r)
			}
			if s.entry != nil {
				s.entry.Key = key
			}
			close(s.done)
		}()
		s.entry, s.err = compute(runCtx)
	}()
	stop()
	cancelRun() // the run is over; free the context's resources

	c.mu.Lock()
	if s.err != nil {
		c.errs++
		if isCancelErr(s.err) {
			c.cancelled++
		}
		// Delete only our own slot: between close(done) and here, a new
		// caller may have observed the failure, removed this slot, and
		// installed a fresh in-flight one — which must not be torn down.
		if c.slots[key] == s {
			delete(c.slots, key) // failures are retried, not cached
		}
	} else {
		c.evictOverCapLocked()
	}
	c.mu.Unlock()
	return s.entry, false, s.err
}

// release drops one requester's interest in an in-flight slot; the last
// release cancels the run. Runs from context.AfterFunc goroutines.
func (c *ScheduleCache) release(s *slot) {
	c.mu.Lock()
	s.interest--
	if s.interest == 0 && s.cancelRun != nil {
		s.cancelRun()
	}
	c.mu.Unlock()
}

// isCancelErr reports whether an error chain ends in a context
// cancellation or deadline expiry.
func isCancelErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Peek returns the completed entry for key without computing, and without
// touching LRU order or hit/miss counters. It reports false for absent and
// still-in-flight keys.
func (c *ScheduleCache) Peek(key Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.slots[key]
	if !ok {
		return nil, false
	}
	select {
	case <-s.done:
		if s.err != nil {
			return nil, false
		}
		return s.entry, true
	default:
		return nil, false
	}
}

// Len returns the number of resident slots (completed or in flight).
func (c *ScheduleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slots)
}

// Keys returns the resident keys in unspecified order.
func (c *ScheduleCache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]Key, 0, len(c.slots))
	for k := range c.slots {
		keys = append(keys, k)
	}
	return keys
}

// Purge drops every completed entry (in-flight computations are left to
// finish and remain cached).
func (c *ScheduleCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, s := range c.slots {
		select {
		case <-s.done:
			delete(c.slots, k)
		default:
		}
	}
}

// Stats returns a snapshot of the traffic counters.
func (c *ScheduleCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      len(c.slots),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coal,
		Evictions: c.evicted,
		Errors:    c.errs,
		Cancelled: c.cancelled,
	}
}

// evictOverCapLocked removes least-recently-used completed slots until the
// resident set fits the capacity. In-flight slots are never evicted (they
// have waiters). Caller holds c.mu.
func (c *ScheduleCache) evictOverCapLocked() {
	if c.cap <= 0 {
		return
	}
	for len(c.slots) > c.cap {
		var (
			oldestKey Key
			oldest    *slot
		)
		for k, s := range c.slots {
			select {
			case <-s.done:
			default:
				continue // in flight
			}
			if oldest == nil || s.lastUsed < oldest.lastUsed {
				oldestKey, oldest = k, s
			}
		}
		if oldest == nil {
			return // everything resident is in flight
		}
		delete(c.slots, oldestKey)
		c.evicted++
	}
}
