package profile

import (
	"ios/internal/graph"
)

// Service is a concurrent measurement service: a fixed pool of worker
// profilers that share one prepared set of lowered-kernel and
// solo-duration tables, so a parallel search can measure stages from many
// goroutines with zero cross-worker synchronization on the hot path (each
// worker owns a private simulator; the shared tables are immutable).
//
// Construct with NewService, hand Worker(i) to goroutine i (a worker
// profiler is NOT safe for concurrent use — one goroutine per worker),
// and call Close when the parallel section ends to fold the workers'
// measurement counts back into the root profiler.
type Service struct {
	root    *Profiler
	workers []*Profiler
	closed  bool
	// rootIsWorker marks the single-worker fast path: the root profiler
	// is driven directly instead of through a fork, so tiny blocks skip
	// the fork's backend construction and table setup entirely (the
	// SqueezeNet small-block overhead fix). Measurements then accrue on
	// the root as they happen; Close folds nothing.
	rootIsWorker bool
}

// NewService prepares the root profiler for the given nodes (lowering
// each and computing its solo duration, counted on the root exactly as
// lazy computation would have been) and forks `workers` worker profilers
// that share the resulting immutable tables. A single-worker service
// skips the fork and hands out the root itself: the caller's one
// goroutine drives it exactly as lazy sequential code would have.
func NewService(root *Profiler, nodes []*graph.Node, workers int) *Service {
	if workers < 1 {
		workers = 1
	}
	root.Prelower(nodes)
	s := &Service{root: root}
	if workers == 1 {
		s.workers = []*Profiler{root}
		s.rootIsWorker = true
		return s
	}
	s.workers = make([]*Profiler, workers)
	for i := range s.workers {
		s.workers[i] = root.Fork()
	}
	return s
}

// Workers returns the pool size.
func (s *Service) Workers() int { return len(s.workers) }

// Worker returns the i-th worker profiler. Each worker must be driven by
// at most one goroutine at a time.
func (s *Service) Worker(i int) *Profiler { return s.workers[i] }

// Root returns the profiler the service was built from.
func (s *Service) Root() *Profiler { return s.root }

// Close folds every worker's measurement count into the root profiler so
// callers that track search cost through the root (as core.Optimize does)
// observe the same totals a single-threaded search would have produced.
// Close is idempotent and must be called after all workers are quiescent.
func (s *Service) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.rootIsWorker {
		return // the root is the worker; its count is already in place
	}
	for _, w := range s.workers {
		s.root.Measurements += w.Measurements
	}
}
