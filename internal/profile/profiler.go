package profile

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/schedule"
)

// Profiler measures stage and schedule latencies on a measurement Backend
// (by default the calibrated GPU simulator). It memoizes stage
// measurements (the dynamic program queries the same stage under many
// states) and can optionally add seeded measurement noise with a
// median-of-k protocol, mimicking real profiling.
type Profiler struct {
	backend Backend
	opts    Options

	// Noise is the relative half-width of uniform measurement noise
	// (0 disables). Repeats > 1 takes the median of that many draws.
	Noise   float64
	Repeats int
	// rng is allocated lazily: seeding a rand source costs microseconds,
	// which a noise-free search pays once per profiler fork otherwise.
	rng *rand.Rand

	cache map[string]float64
	// Lowering and solo durations are pure per (node, options) — nodes are
	// immutable and options are fixed per profiler — so forks share them.
	// Each is split into an immutable shared base (published by Fork, read
	// without locking) and a private overlay for entries computed since.
	//
	// baseLowered/baseSolo are never mutated after publication; mu guards
	// only the freeze-and-publish step in Fork.
	mu          sync.Mutex
	baseLowered map[int][]gpusim.Kernel
	baseSolo    map[int]float64
	// lowered overlays baseLowered with each node's kernel sequence.
	lowered map[int][]gpusim.Kernel
	// solo overlays baseSolo with each node's single-stream duration (its
	// kernels run back-to-back, alone on the device), the building block of
	// serial chains: kernels on one stream do not interact in the
	// simulator, so a chain's latency is exactly the sum of its nodes'
	// solo durations.
	solo map[int]float64
	// Measurements counts simulator invocations (not cache hits), the
	// analogue of on-device measurements the paper's search cost tracks.
	Measurements int

	// Stream-building scratch for the uncached measurement path (the DP's
	// hot loop); see stageStreamsPooled.
	streamBuf     []gpusim.Stream
	streamKernels [][]gpusim.Kernel
}

// New returns a profiler for the given device with default (IOS engine)
// lowering options.
func New(spec gpusim.Spec) *Profiler {
	return NewWithOptions(spec, Options{})
}

// NewWithOptions returns a profiler with custom lowering options.
func NewWithOptions(spec gpusim.Spec, opts Options) *Profiler {
	if opts.LaunchOverheadScale > 0 {
		spec.KernelLaunch *= opts.LaunchOverheadScale
	}
	return NewWithBackend(SimBackend(spec), opts)
}

// NewWithBackend returns a profiler that measures on the given backend
// instead of constructing its own simulator. The backend's Spec is taken
// verbatim (Options.LaunchOverheadScale, which adjusts the spec before a
// simulator is built, does not apply — fold any such adjustment into the
// backend itself).
func NewWithBackend(b Backend, opts Options) *Profiler {
	return &Profiler{
		backend: b,
		opts:    opts,
		cache:   make(map[string]float64),
		lowered: make(map[int][]gpusim.Kernel),
		solo:    make(map[int]float64),
	}
}

// Spec returns the device spec being profiled.
func (p *Profiler) Spec() gpusim.Spec { return p.backend.Spec() }

// Backend returns the measurement backend in use.
func (p *Profiler) Backend() Backend { return p.backend }

// Options returns the lowering options in use.
func (p *Profiler) Options() Options { return p.opts }

// SetSeed reseeds the measurement-noise generator.
func (p *Profiler) SetSeed(seed int64) { p.rng = rand.New(rand.NewSource(seed)) }

// rand returns the noise generator, seeding it on first use.
func (p *Profiler) rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(1))
	}
	return p.rng
}

// Fork returns an independent profiler with the same device and options
// but its own simulator, stage cache, and noise stream, so searches can
// run on separate goroutines. The parent's lowered-kernel and solo
// -duration tables — pure, node-immutable data — are frozen and shared
// with the fork read-only, so forks never re-lower nodes the parent (or a
// Prelower call) has already processed. Measurement counts accumulate per
// fork; callers sum them.
//
// Fork synchronizes with concurrent Fork calls but not with in-flight
// measurements on the same profiler; quiesce the parent before forking.
func (p *Profiler) Fork() *Profiler {
	p.mu.Lock()
	p.freezeLocked()
	base, baseSolo := p.baseLowered, p.baseSolo
	// Fork the backend under the same lock: concurrent Profiler.Fork
	// calls are allowed, and serializing Backend.Fork here means backend
	// implementations only need Fork to be safe against the profiler's
	// documented discipline (no concurrent Run on the parent), not
	// against concurrent Fork calls.
	backend := p.backend.Fork()
	p.mu.Unlock()
	f := &Profiler{
		// The forked backend carries the parent's spec verbatim,
		// including any LaunchOverheadScale adjustment, which
		// NewWithOptions would wrongly apply a second time.
		backend:     backend,
		opts:        p.opts,
		cache:       make(map[string]float64),
		baseLowered: base,
		baseSolo:    baseSolo,
		lowered:     make(map[int][]gpusim.Kernel),
		solo:        make(map[int]float64),
		Noise:       p.Noise,
		Repeats:     p.Repeats,
	}
	return f
}

// freezeLocked merges the private overlays into fresh immutable base maps
// so they can be shared with forks. Caller holds p.mu.
func (p *Profiler) freezeLocked() {
	if len(p.lowered) == 0 && len(p.solo) == 0 {
		return // base already covers everything computed so far
	}
	lowered := make(map[int][]gpusim.Kernel, len(p.baseLowered)+len(p.lowered))
	for id, ks := range p.baseLowered {
		lowered[id] = ks
	}
	for id, ks := range p.lowered {
		lowered[id] = ks
	}
	solo := make(map[int]float64, len(p.baseSolo)+len(p.solo))
	for id, d := range p.baseSolo {
		solo[id] = d
	}
	for id, d := range p.solo {
		solo[id] = d
	}
	p.baseLowered, p.baseSolo = lowered, solo
	p.lowered = make(map[int][]gpusim.Kernel)
	p.solo = make(map[int]float64)
}

// Prelower computes the kernel sequence and solo duration of every given
// node, so subsequent forks share the full tables instead of re-lowering
// per goroutine. Solo durations that are not yet cached cost one simulator
// invocation each (counted in Measurements, exactly as lazy computation
// would have been).
func (p *Profiler) Prelower(nodes []*graph.Node) {
	for _, n := range nodes {
		p.SoloDuration(n) // lowers the node and caches both tables
	}
}

// stageKey builds a canonical cache key for a stage.
func stageKey(st schedule.Stage) string {
	var b strings.Builder
	if st.Strategy == schedule.Merge {
		b.WriteByte('M')
	} else {
		b.WriteByte('C')
	}
	ids := make([][]int, 0, len(st.Groups))
	for _, g := range st.Groups {
		gi := make([]int, len(g))
		for i, n := range g {
			gi[i] = n.ID
		}
		ids = append(ids, gi)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i][0] < ids[j][0] })
	for _, gi := range ids {
		b.WriteByte('|')
		for i, id := range gi {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", id)
		}
	}
	return b.String()
}

// lowerNode returns the node's kernels through the shared-base/overlay
// cache pair.
func (p *Profiler) lowerNode(n *graph.Node) []gpusim.Kernel {
	if ks, ok := p.baseLowered[n.ID]; ok {
		return ks
	}
	if ks, ok := p.lowered[n.ID]; ok {
		return ks
	}
	ks := LowerNode(n, p.opts)
	p.lowered[n.ID] = ks
	return ks
}

// stageStreamsPooled lowers a stage into the profiler's reusable stream
// scratch. The result is valid until the next pooled call; callers must
// not retain it. The Merge path still allocates (kernel fusion builds new
// kernels by nature).
func (p *Profiler) stageStreamsPooled(st schedule.Stage) ([]gpusim.Stream, error) {
	if st.Strategy == schedule.Merge {
		kernels, err := MergedKernels(st.Ops(), p.opts)
		if err != nil {
			return nil, err
		}
		p.streamBuf = append(p.streamBuf[:0], kernels)
		return p.streamBuf, nil
	}
	streams := p.streamBuf[:0]
	used := 0
	for _, grp := range st.Groups {
		if used == len(p.streamKernels) {
			p.streamKernels = append(p.streamKernels, nil)
		}
		s := p.streamKernels[used][:0]
		for _, n := range grp {
			s = append(s, p.lowerNode(n)...)
		}
		if len(s) > 0 {
			p.streamKernels[used] = s
			streams = append(streams, gpusim.Stream(s))
			used++
		}
	}
	p.streamBuf = streams
	if len(streams) == 0 {
		// A stage of only free ops (identities) still pays the barrier;
		// emit no streams.
		return nil, nil
	}
	return streams, nil
}

// StageStreams lowers a stage to per-stream kernel programs.
func (p *Profiler) StageStreams(st schedule.Stage) ([]gpusim.Stream, error) {
	if st.Strategy == schedule.Merge {
		kernels, err := MergedKernels(st.Ops(), p.opts)
		if err != nil {
			return nil, err
		}
		return []gpusim.Stream{kernels}, nil
	}
	streams := make([]gpusim.Stream, 0, len(st.Groups))
	for _, grp := range st.Groups {
		var s gpusim.Stream
		for _, n := range grp {
			s = append(s, p.lowerNode(n)...)
		}
		if len(s) > 0 {
			streams = append(streams, s)
		}
	}
	if len(streams) == 0 {
		// A stage of only free ops (identities) still pays the barrier;
		// emit no streams.
		return nil, nil
	}
	return streams, nil
}

// MeasureStage returns the latency of one stage in seconds, including the
// stage synchronization barrier. Results are memoized by stage content.
func (p *Profiler) MeasureStage(st schedule.Stage) (float64, error) {
	key := stageKey(st)
	if v, ok := p.cache[key]; ok {
		return v, nil
	}
	lat, err := p.MeasureStageUncached(st)
	if err != nil {
		return 0, err
	}
	p.cache[key] = lat
	return lat, nil
}

// MeasureStageUncached measures a stage without consulting or filling the
// content cache. The IOS dynamic program uses this path because it holds
// its own per-block memo keyed by operator bitmask, which makes the string
// cache pure overhead on the search's hot loop. Stream programs are built
// in per-profiler scratch (the simulator does not retain them), so the
// search's hundreds of thousands of measurements produce no stream
// garbage; use StageStreams to obtain streams a caller may keep.
func (p *Profiler) MeasureStageUncached(st schedule.Stage) (float64, error) {
	streams, err := p.stageStreamsPooled(st)
	if err != nil {
		return 0, err
	}
	lat := p.runOnce(streams)
	if p.Noise > 0 {
		n := p.Repeats
		if n < 1 {
			n = 1
		}
		rng := p.rand()
		draws := make([]float64, n)
		for i := range draws {
			eps := (rng.Float64()*2 - 1) * p.Noise
			draws[i] = lat * (1 + eps)
		}
		sort.Float64s(draws)
		lat = draws[n/2]
	}
	return lat, nil
}

func (p *Profiler) runOnce(streams []gpusim.Stream) float64 {
	p.Measurements++
	spec := p.backend.Spec()
	lat := spec.StageSync
	if len(streams) > 0 {
		res := p.backend.Run(p.applyExtraOverhead(streams))
		lat += res.Latency
	}
	return lat
}

// applyExtraOverhead folds framework dispatch overhead into kernels by
// prefixing each with an overhead-only kernel; the simulator serializes it
// on the stream like real dispatch.
func (p *Profiler) applyExtraOverhead(streams []gpusim.Stream) []gpusim.Stream {
	if p.opts.ExtraLaunchOverhead <= 0 {
		return streams
	}
	out := make([]gpusim.Stream, len(streams))
	for i, s := range streams {
		ns := make(gpusim.Stream, 0, len(s))
		for _, k := range s {
			// Model dispatch as extra bytes at full bandwidth? No:
			// dispatch is CPU-side serialized time. Encode it by
			// inflating the launch via a zero-work kernel pair is
			// wasteful; instead extend Bytes by overhead*bandwidth so
			// the duration grows by exactly the overhead while staying
			// on this stream.
			k.Bytes += p.opts.ExtraLaunchOverhead * p.backend.Spec().MemBandwidth
			ns = append(ns, k)
		}
		out[i] = ns
	}
	return out
}

// MeasureSerialChain returns the latency of executing the nodes
// back-to-back on a single stream plus the stage barrier — the latency of
// a one-group concurrent stage. Kernels on one stream never overlap in
// the simulator, so the chain's time decomposes into per-node solo
// durations, which are cached; this makes the scheduler's serial-tail
// candidate O(|S|) per state instead of a fresh multi-kernel simulation.
func (p *Profiler) MeasureSerialChain(nodes []*graph.Node) float64 {
	total := p.backend.Spec().StageSync
	for _, n := range nodes {
		total += p.SoloDuration(n)
	}
	if p.Noise > 0 {
		n := p.Repeats
		if n < 1 {
			n = 1
		}
		rng := p.rand()
		draws := make([]float64, n)
		for i := range draws {
			eps := (rng.Float64()*2 - 1) * p.Noise
			draws[i] = total * (1 + eps)
		}
		sort.Float64s(draws)
		total = draws[n/2]
	}
	return total
}

// SoloDuration returns (and caches) one node's single-stream duration:
// its kernels back-to-back, alone on the device, without the stage
// barrier. Serial chains decompose into these exactly, which is what lets
// the DP engine evaluate its serial-tail candidate per state without a
// simulator run.
func (p *Profiler) SoloDuration(n *graph.Node) float64 {
	if d, ok := p.baseSolo[n.ID]; ok {
		return d
	}
	if d, ok := p.solo[n.ID]; ok {
		return d
	}
	kernels := p.lowerNode(n)
	var d float64
	if len(kernels) > 0 {
		streams := p.applyExtraOverhead([]gpusim.Stream{gpusim.Stream(kernels)})
		p.Measurements++
		d = p.backend.Run(streams).Latency
	}
	p.solo[n.ID] = d
	return d
}

// MeasureSchedule returns the end-to-end latency of a schedule in seconds.
func (p *Profiler) MeasureSchedule(s *schedule.Schedule) (float64, error) {
	var total float64
	for _, st := range s.Stages {
		lat, err := p.MeasureStage(st)
		if err != nil {
			return 0, err
		}
		total += lat
	}
	return total, nil
}

// TraceSchedule executes the schedule once with warp-trace recording and
// returns the end-to-end latency and the concatenated trace (Figure 8).
// Trace recording is a simulator feature: the schedule runs on a fresh
// simulator for the profiled spec regardless of the configured Backend.
func (p *Profiler) TraceSchedule(s *schedule.Schedule) (float64, *gpusim.WarpTrace, error) {
	sim := gpusim.New(p.backend.Spec())
	sim.RecordTrace = true
	full := &gpusim.WarpTrace{}
	var total float64
	for _, st := range s.Stages {
		streams, err := p.StageStreams(st)
		if err != nil {
			return 0, nil, err
		}
		spec := sim.Spec()
		if len(streams) > 0 {
			res := sim.Run(p.applyExtraOverhead(streams))
			total += res.Latency
			full.Append(res.Trace)
		}
		total += spec.StageSync
		full.AppendIdle(spec.StageSync)
	}
	return total, full, nil
}

// TimelineSchedule executes the schedule once with kernel-span recording
// and returns the end-to-end latency plus the concatenated timeline
// (stages shifted by their start offsets, stream ids local to each stage).
// Like TraceSchedule, this always runs on a fresh simulator for the
// profiled spec (span recording is a simulator feature).
func (p *Profiler) TimelineSchedule(s *schedule.Schedule) (float64, gpusim.Timeline, error) {
	sim := gpusim.New(p.backend.Spec())
	sim.RecordTimeline = true
	var full gpusim.Timeline
	var total float64
	for _, st := range s.Stages {
		streams, err := p.StageStreams(st)
		if err != nil {
			return 0, nil, err
		}
		if len(streams) > 0 {
			res := sim.Run(p.applyExtraOverhead(streams))
			full = append(full, res.Timeline.Shift(total)...)
			total += res.Latency
		}
		total += sim.Spec().StageSync
	}
	return total, full, nil
}

// StageProfile describes a stage the way Figure 2 annotates one: its
// arithmetic work, achieved performance, and device utilization.
type StageProfile struct {
	// Latency is the measured stage time in seconds (incl. barrier).
	Latency float64
	// GFLOPs is the stage's arithmetic work in 1e9 FLOPs.
	GFLOPs float64
	// TFLOPSs is the achieved throughput in 1e12 FLOP/s.
	TFLOPSs float64
	// Utilization is achieved/peak throughput in [0, 1].
	Utilization float64
}

// ProfileStage measures a stage and derives its Figure 2-style profile.
func (p *Profiler) ProfileStage(st schedule.Stage) (StageProfile, error) {
	lat, err := p.MeasureStage(st)
	if err != nil {
		return StageProfile{}, err
	}
	streams, err := p.StageStreams(st)
	if err != nil {
		return StageProfile{}, err
	}
	var flops float64
	for _, s := range streams {
		flops += s.TotalFLOPs()
	}
	prof := StageProfile{Latency: lat, GFLOPs: flops / 1e9}
	if lat > 0 {
		prof.TFLOPSs = flops / lat / 1e12
		prof.Utilization = flops / lat / p.backend.Spec().PeakFLOPs
	}
	return prof, nil
}
