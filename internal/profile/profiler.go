package profile

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"sync"

	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/measure"
	"ios/internal/schedule"
)

// Profiler measures stage and schedule latencies on a measurement Backend
// (by default the calibrated GPU simulator). It memoizes stage
// measurements (the dynamic program queries the same stage under many
// states) and can optionally add seeded measurement noise with a
// median-of-k protocol, mimicking real profiling.
type Profiler struct {
	backend Backend
	opts    Options

	// Noise is the relative half-width of uniform measurement noise
	// (0 disables). Repeats > 1 takes the median of that many draws.
	Noise   float64
	Repeats int
	// rng is allocated lazily: seeding a rand source costs microseconds,
	// which a noise-free search pays once per profiler fork otherwise.
	rng *rand.Rand

	// cache memoizes MeasureStage by the stage's canonical binary
	// measurement key (see measure.AppendStreams): structurally identical
	// stages share one entry regardless of node identity or group order.
	cache map[string]float64
	// mcache, when non-nil, is a shared structural measurement cache
	// consulted by every simulator invocation (stage and solo-duration
	// measurements alike). Forks share the pointer, so all DP workers of
	// one search — and, via Engine/serve wiring, all searches in a
	// process — deduplicate against one table. Disabled while Noise > 0:
	// noisy draws are per-measurement random, not pure stage functions.
	mcache *measure.Cache
	// ctxKey is the lazily built measurement-context key prefix (device
	// model + dispatch overhead); keyBuf is reusable key scratch.
	ctxKey []byte
	keyBuf []byte
	// soloStreams is the single-stream scratch for SoloDuration.
	soloStreams [1]gpusim.Stream
	// Lowering and solo durations are pure per (node, options) — nodes are
	// immutable and options are fixed per profiler — so forks share them.
	// Each is split into an immutable shared base (published by Fork, read
	// without locking) and a private overlay for entries computed since.
	//
	// baseLowered/baseSolo are never mutated after publication; mu guards
	// only the freeze-and-publish step in Fork.
	mu          sync.Mutex
	baseLowered map[int][]gpusim.Kernel
	baseSolo    map[int]float64
	// lowered overlays baseLowered with each node's kernel sequence.
	lowered map[int][]gpusim.Kernel
	// solo overlays baseSolo with each node's single-stream duration (its
	// kernels run back-to-back, alone on the device), the building block of
	// serial chains: kernels on one stream do not interact in the
	// simulator, so a chain's latency is exactly the sum of its nodes'
	// solo durations.
	solo map[int]float64
	// Measurements counts simulator invocations (not cache hits), the
	// analogue of on-device measurements the paper's search cost tracks.
	Measurements int

	// Stream-building scratch for the uncached measurement path (the DP's
	// hot loop); see stageStreamsPooled.
	streamBuf     []gpusim.Stream
	streamKernels [][]gpusim.Kernel
}

// New returns a profiler for the given device with default (IOS engine)
// lowering options.
func New(spec gpusim.Spec) *Profiler {
	return NewWithOptions(spec, Options{})
}

// NewWithOptions returns a profiler with custom lowering options.
func NewWithOptions(spec gpusim.Spec, opts Options) *Profiler {
	if opts.LaunchOverheadScale > 0 {
		spec.KernelLaunch *= opts.LaunchOverheadScale
	}
	return NewWithBackend(SimBackend(spec), opts)
}

// NewWithBackend returns a profiler that measures on the given backend
// instead of constructing its own simulator. The backend's Spec is taken
// verbatim (Options.LaunchOverheadScale, which adjusts the spec before a
// simulator is built, does not apply — fold any such adjustment into the
// backend itself).
func NewWithBackend(b Backend, opts Options) *Profiler {
	return &Profiler{
		backend: b,
		opts:    opts,
		cache:   make(map[string]float64),
		lowered: make(map[int][]gpusim.Kernel),
		solo:    make(map[int]float64),
	}
}

// Spec returns the device spec being profiled.
func (p *Profiler) Spec() gpusim.Spec { return p.backend.Spec() }

// Backend returns the measurement backend in use.
func (p *Profiler) Backend() Backend { return p.backend }

// Options returns the lowering options in use.
func (p *Profiler) Options() Options { return p.opts }

// SetSeed reseeds the measurement-noise generator.
func (p *Profiler) SetSeed(seed int64) { p.rng = rand.New(rand.NewSource(seed)) }

// SetMeasureCache attaches a shared structural measurement cache: every
// simulator invocation first consults (and on a miss fills) c, keyed by
// the canonical fingerprint of the exact stream programs being executed
// on this profiler's device model. Cached values are exact simulator
// outputs, so results are bit-identical with or without the cache — only
// Measurements drops. The cache is concurrency-safe and survives this
// profiler: share one instance across profilers, searches, and servers to
// amortize repeated structure (nil detaches). Forks inherit the cache.
//
// The cache is bypassed while Noise > 0: noisy measurements draw from the
// profiler's RNG stream per invocation and are not pure stage functions.
func (p *Profiler) SetMeasureCache(c *measure.Cache) { p.mcache = c }

// MeasureCache returns the attached structural measurement cache (nil if
// none).
func (p *Profiler) MeasureCache() *measure.Cache { return p.mcache }

// contextKey returns the measurement-context key prefix, building it on
// first use (the backend spec and lowering options are fixed per
// profiler, so the prefix is immutable and shared with forks).
func (p *Profiler) contextKey() []byte {
	if p.ctxKey == nil {
		p.ctxKey = measure.Context(p.backend.Spec(), p.opts.ExtraLaunchOverhead)
	}
	return p.ctxKey
}

// rand returns the noise generator, seeding it on first use.
func (p *Profiler) rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(1))
	}
	return p.rng
}

// Fork returns an independent profiler with the same device and options
// but its own simulator, stage cache, and noise stream, so searches can
// run on separate goroutines. The parent's lowered-kernel and solo
// -duration tables — pure, node-immutable data — are frozen and shared
// with the fork read-only, so forks never re-lower nodes the parent (or a
// Prelower call) has already processed. Measurement counts accumulate per
// fork; callers sum them.
//
// Fork synchronizes with concurrent Fork calls but not with in-flight
// measurements on the same profiler; quiesce the parent before forking.
func (p *Profiler) Fork() *Profiler {
	p.mu.Lock()
	p.freezeLocked()
	base, baseSolo := p.baseLowered, p.baseSolo
	// Fork the backend under the same lock: concurrent Profiler.Fork
	// calls are allowed, and serializing Backend.Fork here means backend
	// implementations only need Fork to be safe against the profiler's
	// documented discipline (no concurrent Run on the parent), not
	// against concurrent Fork calls.
	backend := p.backend.Fork()
	p.mu.Unlock()
	f := &Profiler{
		// The forked backend carries the parent's spec verbatim,
		// including any LaunchOverheadScale adjustment, which
		// NewWithOptions would wrongly apply a second time.
		backend:     backend,
		opts:        p.opts,
		cache:       make(map[string]float64),
		mcache:      p.mcache,
		ctxKey:      p.ctxKey, // immutable once built; nil rebuilds lazily
		baseLowered: base,
		baseSolo:    baseSolo,
		lowered:     make(map[int][]gpusim.Kernel),
		solo:        make(map[int]float64),
		Noise:       p.Noise,
		Repeats:     p.Repeats,
	}
	return f
}

// freezeLocked merges the private overlays into fresh immutable base maps
// so they can be shared with forks. Caller holds p.mu.
func (p *Profiler) freezeLocked() {
	if len(p.lowered) == 0 && len(p.solo) == 0 {
		return // base already covers everything computed so far
	}
	lowered := make(map[int][]gpusim.Kernel, len(p.baseLowered)+len(p.lowered))
	for id, ks := range p.baseLowered {
		lowered[id] = ks
	}
	for id, ks := range p.lowered {
		lowered[id] = ks
	}
	solo := make(map[int]float64, len(p.baseSolo)+len(p.solo))
	for id, d := range p.baseSolo {
		solo[id] = d
	}
	for id, d := range p.solo {
		solo[id] = d
	}
	p.baseLowered, p.baseSolo = lowered, solo
	p.lowered = make(map[int][]gpusim.Kernel)
	p.solo = make(map[int]float64)
}

// Prelower computes the kernel sequence and solo duration of every given
// node, so subsequent forks share the full tables instead of re-lowering
// per goroutine. Solo durations that are not yet cached cost one simulator
// invocation each (counted in Measurements, exactly as lazy computation
// would have been).
func (p *Profiler) Prelower(nodes []*graph.Node) {
	for _, n := range nodes {
		p.SoloDuration(n) // lowers the node and caches both tables
	}
}

// canonicalStage returns the stage with its groups in canonical order —
// ascending first-node ID, the order the DP engine measures and emits
// stages in — so group order never affects a measurement key. The common
// already-ordered case is detected without allocating; otherwise the
// group slice (not the groups themselves) is copied, leaving the caller's
// stage untouched.
func canonicalStage(st schedule.Stage) schedule.Stage {
	ordered := true
	for i := 1; i < len(st.Groups); i++ {
		if groupLess(st.Groups[i], st.Groups[i-1]) {
			ordered = false
			break
		}
	}
	if ordered {
		return st
	}
	groups := append([][]*graph.Node(nil), st.Groups...)
	sort.Slice(groups, func(i, j int) bool { return groupLess(groups[i], groups[j]) })
	st.Groups = groups
	return st
}

// groupLess orders groups by their first node's ID (empty groups first).
func groupLess(a, b []*graph.Node) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) < len(b)
	}
	return a[0].ID < b[0].ID
}

// stageMeasureKey builds the canonical measurement key for already
// lowered stream programs into the profiler's reusable scratch; valid
// until the next call.
func (p *Profiler) stageMeasureKey(streams []gpusim.Stream) []byte {
	p.keyBuf = measure.AppendStreams(append(p.keyBuf[:0], p.contextKey()...), streams)
	return p.keyBuf
}

// StageFingerprint returns the stage's canonical measurement fingerprint:
// the exact cache key its simulator invocation would use (device-model
// context plus the lowered per-stream kernel signatures, group order
// normalized). Two stages with equal fingerprints have bit-identical
// measured latencies; node identity, names, and graph position do not
// enter. The returned slice is freshly allocated.
func (p *Profiler) StageFingerprint(st schedule.Stage) ([]byte, error) {
	streams, err := p.stageStreamsPooled(canonicalStage(st))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), p.stageMeasureKey(streams)...), nil
}

// lowerNode returns the node's kernels through the shared-base/overlay
// cache pair.
func (p *Profiler) lowerNode(n *graph.Node) []gpusim.Kernel {
	if ks, ok := p.baseLowered[n.ID]; ok {
		return ks
	}
	if ks, ok := p.lowered[n.ID]; ok {
		return ks
	}
	ks := LowerNode(n, p.opts)
	p.lowered[n.ID] = ks
	return ks
}

// stageStreamsPooled lowers a stage into the profiler's reusable stream
// scratch. The result is valid until the next pooled call; callers must
// not retain it. The Merge path still allocates (kernel fusion builds new
// kernels by nature).
func (p *Profiler) stageStreamsPooled(st schedule.Stage) ([]gpusim.Stream, error) {
	if st.Strategy == schedule.Merge {
		kernels, err := MergedKernels(st.Ops(), p.opts)
		if err != nil {
			return nil, err
		}
		p.streamBuf = append(p.streamBuf[:0], kernels)
		return p.streamBuf, nil
	}
	streams := p.streamBuf[:0]
	used := 0
	for _, grp := range st.Groups {
		if used == len(p.streamKernels) {
			p.streamKernels = append(p.streamKernels, nil)
		}
		s := p.streamKernels[used][:0]
		for _, n := range grp {
			s = append(s, p.lowerNode(n)...)
		}
		if len(s) > 0 {
			p.streamKernels[used] = s
			streams = append(streams, gpusim.Stream(s))
			used++
		}
	}
	p.streamBuf = streams
	if len(streams) == 0 {
		// A stage of only free ops (identities) still pays the barrier;
		// emit no streams.
		return nil, nil
	}
	return streams, nil
}

// StageStreams lowers a stage to per-stream kernel programs.
func (p *Profiler) StageStreams(st schedule.Stage) ([]gpusim.Stream, error) {
	if st.Strategy == schedule.Merge {
		kernels, err := MergedKernels(st.Ops(), p.opts)
		if err != nil {
			return nil, err
		}
		return []gpusim.Stream{kernels}, nil
	}
	streams := make([]gpusim.Stream, 0, len(st.Groups))
	for _, grp := range st.Groups {
		var s gpusim.Stream
		for _, n := range grp {
			s = append(s, p.lowerNode(n)...)
		}
		if len(s) > 0 {
			streams = append(streams, s)
		}
	}
	if len(streams) == 0 {
		// A stage of only free ops (identities) still pays the barrier;
		// emit no streams.
		return nil, nil
	}
	return streams, nil
}

// MeasureStage returns the latency of one stage in seconds, including the
// stage synchronization barrier. Results are memoized by the stage's
// canonical measurement key — the lowered per-stream kernel signatures
// with group order normalized — so structurally identical stages share
// one entry regardless of node identity, and the key costs a binary
// append into reusable scratch instead of the old per-call string build.
func (p *Profiler) MeasureStage(st schedule.Stage) (float64, error) {
	st = canonicalStage(st)
	streams, err := p.stageStreamsPooled(st)
	if err != nil {
		return 0, err
	}
	key := p.stageMeasureKey(streams)
	if p.Noise > 0 {
		// Noisy draws are per-measurement random, not pure stage
		// functions: keep the memo at its historical node-identity
		// granularity so structurally identical stages of different
		// nodes still draw independent noise (ablation experiments
		// depend on that variance).
		key = appendStageIdentity(key, st)
		p.keyBuf = key
	}
	if v, ok := p.cache[string(key)]; ok { // no-copy map lookup
		return v, nil
	}
	lat := p.applyNoise(p.runOnce(streams))
	p.cache[string(key)] = lat
	return lat, nil
}

// appendStageIdentity appends the stage's node-identity structure
// (strategy plus per-group node IDs) to a memo key; used only on the
// noisy path, where structural sharing would collapse independent noise
// draws.
func appendStageIdentity(key []byte, st schedule.Stage) []byte {
	key = append(key, byte(st.Strategy))
	key = binary.AppendUvarint(key, uint64(len(st.Groups)))
	for _, grp := range st.Groups {
		key = binary.AppendUvarint(key, uint64(len(grp)))
		for _, n := range grp {
			key = binary.AppendUvarint(key, uint64(n.ID))
		}
	}
	return key
}

// MeasureStageUncached measures a stage without consulting or filling the
// profiler's stage memo (the shared structural cache installed with
// SetMeasureCache, if any, still applies at the simulator-invocation
// level). The IOS dynamic program uses this path because it holds its own
// per-block memo keyed by operator bitmask, which makes the stage memo
// pure overhead on the search's hot loop. Stream programs are built in
// per-profiler scratch (the simulator does not retain them), so the
// search's hundreds of thousands of measurements produce no stream
// garbage; use StageStreams to obtain streams a caller may keep.
func (p *Profiler) MeasureStageUncached(st schedule.Stage) (float64, error) {
	streams, err := p.stageStreamsPooled(st)
	if err != nil {
		return 0, err
	}
	return p.applyNoise(p.runOnce(streams)), nil
}

// applyNoise runs the median-of-k measurement-noise protocol on a clean
// latency (identity when Noise is 0).
func (p *Profiler) applyNoise(lat float64) float64 {
	if p.Noise <= 0 {
		return lat
	}
	n := p.Repeats
	if n < 1 {
		n = 1
	}
	rng := p.rand()
	draws := make([]float64, n)
	for i := range draws {
		eps := (rng.Float64()*2 - 1) * p.Noise
		draws[i] = lat * (1 + eps)
	}
	sort.Float64s(draws)
	return draws[n/2]
}

// runOnce measures one stage execution: the stage barrier plus, for
// non-empty programs, a (possibly cache-served) simulator run. An all-free
// stage still counts as a measurement, as it always has.
func (p *Profiler) runOnce(streams []gpusim.Stream) float64 {
	lat := p.backend.Spec().StageSync
	if len(streams) == 0 {
		p.Measurements++
		return lat
	}
	return lat + p.runStreams(streams)
}

// runStreams executes stream programs on the backend (with framework
// dispatch overhead applied), consulting the shared structural
// measurement cache when one is attached: the canonical fingerprint of
// the exact programs is looked up first, and only a miss claims the key
// and invokes the simulator (counted in Measurements). Concurrent misses
// for one fingerprint — e.g. two DP workers reaching the same repeated
// cell structure — coalesce into a single simulation.
func (p *Profiler) runStreams(streams []gpusim.Stream) float64 {
	if p.mcache == nil || p.Noise > 0 {
		p.Measurements++
		return p.backend.Run(p.applyExtraOverhead(streams)).Latency
	}
	lat, claim := p.mcache.GetOrBegin(p.stageMeasureKey(streams))
	if claim != nil {
		// A panicking backend (gpusim rejects invalid kernels by panic)
		// must not leave the claimed fingerprint locked forever for
		// every future requester of a shared cache: abandon the claim so
		// waiters retry and the key stays measurable.
		committed := false
		defer func() {
			if !committed {
				claim.Abandon()
			}
		}()
		p.Measurements++
		lat = p.backend.Run(p.applyExtraOverhead(streams)).Latency
		claim.Commit(lat)
		committed = true
	}
	return lat
}

// applyExtraOverhead folds framework dispatch overhead into kernels by
// prefixing each with an overhead-only kernel; the simulator serializes it
// on the stream like real dispatch.
func (p *Profiler) applyExtraOverhead(streams []gpusim.Stream) []gpusim.Stream {
	if p.opts.ExtraLaunchOverhead <= 0 {
		return streams
	}
	out := make([]gpusim.Stream, len(streams))
	for i, s := range streams {
		ns := make(gpusim.Stream, 0, len(s))
		for _, k := range s {
			// Model dispatch as extra bytes at full bandwidth? No:
			// dispatch is CPU-side serialized time. Encode it by
			// inflating the launch via a zero-work kernel pair is
			// wasteful; instead extend Bytes by overhead*bandwidth so
			// the duration grows by exactly the overhead while staying
			// on this stream.
			k.Bytes += p.opts.ExtraLaunchOverhead * p.backend.Spec().MemBandwidth
			ns = append(ns, k)
		}
		out[i] = ns
	}
	return out
}

// MeasureSerialChain returns the latency of executing the nodes
// back-to-back on a single stream plus the stage barrier — the latency of
// a one-group concurrent stage. Kernels on one stream never overlap in
// the simulator, so the chain's time decomposes into per-node solo
// durations, which are cached; this makes the scheduler's serial-tail
// candidate O(|S|) per state instead of a fresh multi-kernel simulation.
func (p *Profiler) MeasureSerialChain(nodes []*graph.Node) float64 {
	total := p.backend.Spec().StageSync
	for _, n := range nodes {
		total += p.SoloDuration(n)
	}
	return p.applyNoise(total)
}

// SoloDuration returns (and caches) one node's single-stream duration:
// its kernels back-to-back, alone on the device, without the stage
// barrier. Serial chains decompose into these exactly, which is what lets
// the DP engine evaluate its serial-tail candidate per state without a
// simulator run.
func (p *Profiler) SoloDuration(n *graph.Node) float64 {
	if d, ok := p.baseSolo[n.ID]; ok {
		return d
	}
	if d, ok := p.solo[n.ID]; ok {
		return d
	}
	kernels := p.lowerNode(n)
	var d float64
	if len(kernels) > 0 {
		// Through runStreams so the shared structural cache dedups solo
		// simulations of structurally identical nodes (repeated cells)
		// across blocks, forks, and searches.
		p.soloStreams[0] = gpusim.Stream(kernels)
		d = p.runStreams(p.soloStreams[:])
	}
	p.solo[n.ID] = d
	return d
}

// MeasureSchedule returns the end-to-end latency of a schedule in seconds.
func (p *Profiler) MeasureSchedule(s *schedule.Schedule) (float64, error) {
	var total float64
	for _, st := range s.Stages {
		lat, err := p.MeasureStage(st)
		if err != nil {
			return 0, err
		}
		total += lat
	}
	return total, nil
}

// TraceSchedule executes the schedule once with warp-trace recording and
// returns the end-to-end latency and the concatenated trace (Figure 8).
// Trace recording is a simulator feature: the schedule runs on a fresh
// simulator for the profiled spec regardless of the configured Backend.
func (p *Profiler) TraceSchedule(s *schedule.Schedule) (float64, *gpusim.WarpTrace, error) {
	sim := gpusim.New(p.backend.Spec())
	sim.RecordTrace = true
	full := &gpusim.WarpTrace{}
	var total float64
	for _, st := range s.Stages {
		streams, err := p.StageStreams(st)
		if err != nil {
			return 0, nil, err
		}
		spec := sim.Spec()
		if len(streams) > 0 {
			res := sim.Run(p.applyExtraOverhead(streams))
			total += res.Latency
			full.Append(res.Trace)
		}
		total += spec.StageSync
		full.AppendIdle(spec.StageSync)
	}
	return total, full, nil
}

// TimelineSchedule executes the schedule once with kernel-span recording
// and returns the end-to-end latency plus the concatenated timeline
// (stages shifted by their start offsets, stream ids local to each stage).
// Like TraceSchedule, this always runs on a fresh simulator for the
// profiled spec (span recording is a simulator feature).
func (p *Profiler) TimelineSchedule(s *schedule.Schedule) (float64, gpusim.Timeline, error) {
	sim := gpusim.New(p.backend.Spec())
	sim.RecordTimeline = true
	var full gpusim.Timeline
	var total float64
	for _, st := range s.Stages {
		streams, err := p.StageStreams(st)
		if err != nil {
			return 0, nil, err
		}
		if len(streams) > 0 {
			res := sim.Run(p.applyExtraOverhead(streams))
			full = append(full, res.Timeline.Shift(total)...)
			total += res.Latency
		}
		total += sim.Spec().StageSync
	}
	return total, full, nil
}

// StageProfile describes a stage the way Figure 2 annotates one: its
// arithmetic work, achieved performance, and device utilization.
type StageProfile struct {
	// Latency is the measured stage time in seconds (incl. barrier).
	Latency float64
	// GFLOPs is the stage's arithmetic work in 1e9 FLOPs.
	GFLOPs float64
	// TFLOPSs is the achieved throughput in 1e12 FLOP/s.
	TFLOPSs float64
	// Utilization is achieved/peak throughput in [0, 1].
	Utilization float64
}

// ProfileStage measures a stage and derives its Figure 2-style profile.
func (p *Profiler) ProfileStage(st schedule.Stage) (StageProfile, error) {
	lat, err := p.MeasureStage(st)
	if err != nil {
		return StageProfile{}, err
	}
	streams, err := p.StageStreams(st)
	if err != nil {
		return StageProfile{}, err
	}
	var flops float64
	for _, s := range streams {
		flops += s.TotalFLOPs()
	}
	prof := StageProfile{Latency: lat, GFLOPs: flops / 1e9}
	if lat > 0 {
		prof.TFLOPSs = flops / lat / 1e12
		prof.Utilization = flops / lat / p.backend.Spec().PeakFLOPs
	}
	return prof, nil
}
