package profile

import (
	"testing"

	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/schedule"
)

// benchStage builds a representative multi-group concurrent stage from the
// Figure 2 block (three parallel convolutions).
func benchStage(b *testing.B) schedule.Stage {
	b.Helper()
	g := models.Figure2Block(1)
	m := map[string]*graph.Node{}
	for _, n := range g.Nodes {
		m[n.Name] = n
	}
	return schedule.Stage{Strategy: schedule.Concurrent,
		Groups: [][]*graph.Node{{m["a"]}, {m["c"]}, {m["d"]}}}
}

// BenchmarkMeasureStageMemoHit times MeasureStage's memo hit path — the
// per-stage cost MeasureSchedule pays on every stage after the first
// measurement. The satellite fix replaced the fmt-based string key with
// the canonical binary measurement key; this benchmark tracks the delta.
func BenchmarkMeasureStageMemoHit(b *testing.B) {
	st := benchStage(b)
	p := New(gpusim.TeslaV100)
	if _, err := p.MeasureStage(st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.MeasureStage(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureScheduleWarm times a full-network schedule measurement
// with every stage already memoized (the serving tier's per-request
// measurement cost on warm models).
func BenchmarkMeasureScheduleWarm(b *testing.B) {
	g := models.SqueezeNet(1)
	var stages []schedule.Stage
	for _, n := range g.SchedulableNodes() {
		stages = append(stages, schedule.Stage{Strategy: schedule.Concurrent,
			Groups: [][]*graph.Node{{n}}})
	}
	s := &schedule.Schedule{Graph: g, Stages: stages}
	p := New(gpusim.TeslaV100)
	if _, err := p.MeasureSchedule(s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.MeasureSchedule(s); err != nil {
			b.Fatal(err)
		}
	}
}
