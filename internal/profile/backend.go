package profile

import (
	"ios/internal/gpusim"
)

// Backend is the measurement substrate a Profiler executes stage programs
// on. The calibrated GPU simulator (internal/gpusim) is the reference
// implementation — see SimBackend — but anything that can run a set of
// stream programs from a common start and report the wall-clock latency
// qualifies: a different simulator fidelity level, a recorded-trace
// replayer, or (on real hardware) a cuDNN/CUDA-stream harness.
//
// A Backend instance is owned by exactly one Profiler and, like the
// profiler itself, is NOT safe for concurrent use: the search engine gives
// every worker goroutine its own profiler, and each profiler obtains its
// own backend via Fork.
type Backend interface {
	// Spec describes the device the backend models or drives. The
	// profiler reads StageSync, MemBandwidth, and PeakFLOPs from it, and
	// serving layers use Name as the cache-key device component.
	Spec() gpusim.Spec
	// Run executes the stream programs launched from a common start and
	// returns at least the end-to-end Latency (excluding the stage
	// barrier, which the profiler adds from Spec().StageSync).
	Run(streams []gpusim.Stream) gpusim.Result
	// Fork returns an independent backend with the same device model for
	// use by another goroutine. Forks may share immutable calibration
	// data but must not share mutable execution state. The profiler
	// serializes Fork calls on any one Backend instance (and callers
	// quiesce measurements before forking, see Profiler.Fork), so Fork
	// never runs concurrently with itself or with Run on the same
	// instance.
	Fork() Backend
}

// SimBackend returns the default measurement backend: a fresh calibrated
// GPU simulator for the given device.
func SimBackend(spec gpusim.Spec) Backend {
	return &simBackend{sim: gpusim.New(spec)}
}

// simBackend adapts *gpusim.Sim to the Backend interface. The adapter is
// trivial by design: the simulator already has Run/Spec; only Fork (a
// fresh Sim, since simulators reuse scratch buffers across runs) is new.
type simBackend struct {
	sim *gpusim.Sim
}

func (b *simBackend) Spec() gpusim.Spec                       { return b.sim.Spec() }
func (b *simBackend) Run(streams []gpusim.Stream) gpusim.Result { return b.sim.Run(streams) }
func (b *simBackend) Fork() Backend                           { return &simBackend{sim: gpusim.New(b.sim.Spec())} }
