package profile

import (
	"math"
	"testing"

	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/schedule"
)

func fig2Nodes(t *testing.T) (*graph.Graph, map[string]*graph.Node) {
	t.Helper()
	g := models.Figure2Block(1)
	m := map[string]*graph.Node{}
	for _, n := range g.Nodes {
		m[n.Name] = n
	}
	return g, m
}

func TestLowerConvKernel(t *testing.T) {
	g, n := fig2Nodes(t)
	_ = g
	ks := LowerNode(n["a"], Options{})
	if len(ks) != 1 {
		t.Fatalf("conv lowered to %d kernels", len(ks))
	}
	k := ks[0]
	if k.FLOPs != graph.FLOPs(n["a"]) {
		t.Errorf("kernel FLOPs = %g, want %g", k.FLOPs, graph.FLOPs(n["a"]))
	}
	if k.Bytes != graph.MemoryBytes(n["a"]) {
		t.Errorf("kernel bytes = %g", k.Bytes)
	}
	if k.Blocks != gpusim.GridFor(n["a"].Output.Elems()) {
		t.Errorf("kernel blocks = %d", k.Blocks)
	}
}

func TestLowerSepConvTwoKernels(t *testing.T) {
	g := graph.New("sep")
	in := g.Input("in", graph.Shape{N: 1, C: 8, H: 16, W: 16})
	sc := g.SepConv("sc", in, graph.ConvOpts{Out: 16, Kernel: 3})
	ks := LowerNode(sc, Options{})
	if len(ks) != 2 {
		t.Fatalf("sepconv lowered to %d kernels", len(ks))
	}
	total := ks[0].FLOPs + ks[1].FLOPs
	if math.Abs(total-graph.FLOPs(sc)) > 1 {
		t.Errorf("sepconv kernel FLOPs %g != op FLOPs %g", total, graph.FLOPs(sc))
	}
}

func TestLowerIdentityFree(t *testing.T) {
	g := graph.New("id")
	in := g.Input("in", graph.Shape{N: 1, C: 4, H: 4, W: 4})
	id := g.Identity("i", in)
	if ks := LowerNode(id, Options{}); len(ks) != 0 {
		t.Errorf("identity lowered to %d kernels", len(ks))
	}
}

func TestUnfusedActivationAddsKernel(t *testing.T) {
	g, n := fig2Nodes(t)
	_ = g
	ks := LowerNode(n["a"], Options{UnfuseActivations: true})
	if len(ks) != 2 || ks[1].FLOPs != float64(n["a"].Output.Elems()) {
		t.Errorf("unfused lowering = %+v", ks)
	}
}

func TestKernelQualityScalesWork(t *testing.T) {
	g, n := fig2Nodes(t)
	_ = g
	base := LowerNode(n["a"], Options{})[0]
	fast := LowerNode(n["a"], Options{KernelQuality: func(graph.Op) float64 { return 2 }})[0]
	if math.Abs(fast.FLOPs*2-base.FLOPs) > 1 {
		t.Errorf("quality 2 kernel FLOPs = %g, want %g", fast.FLOPs, base.FLOPs/2)
	}
}

func TestCanMerge(t *testing.T) {
	g, n := fig2Nodes(t)
	_ = g
	// a, c, d share the input; a and c have identical shapes, d differs
	// in channels only — all mergeable. b consumes a different tensor.
	if !CanMerge([]*graph.Node{n["a"], n["c"]}) {
		t.Error("a,c should merge")
	}
	if !CanMerge([]*graph.Node{n["a"], n["c"], n["d"]}) {
		t.Error("a,c,d should merge")
	}
	if CanMerge([]*graph.Node{n["a"], n["b"]}) {
		t.Error("a,b must not merge (different inputs)")
	}
	if CanMerge([]*graph.Node{n["a"]}) {
		t.Error("singleton merge is meaningless")
	}
	if CanMerge([]*graph.Node{n["a"], n["concat"]}) {
		t.Error("conv+concat must not merge")
	}
}

func TestCanMergeRejectsStrideMismatch(t *testing.T) {
	g := graph.New("strides")
	in := g.Input("in", graph.Shape{N: 1, C: 4, H: 8, W: 8})
	a := g.Conv("a", in, graph.ConvOpts{Out: 4, Kernel: 3})
	b := g.Conv("b", in, graph.ConvOpts{Out: 4, Kernel: 3, Stride: 2})
	if CanMerge([]*graph.Node{a, b}) {
		t.Error("stride mismatch must not merge")
	}
}

func TestCanMergeRejectsValidPadding(t *testing.T) {
	g := graph.New("pads")
	in := g.Input("in", graph.Shape{N: 1, C: 4, H: 8, W: 8})
	a := g.Conv("a", in, graph.ConvOpts{Out: 4, Kernel: 3})
	b := g.Conv("b", in, graph.ConvOpts{Out: 4, Kernel: 3, Valid: true})
	if CanMerge([]*graph.Node{a, b}) {
		t.Error("valid-padding conv must not merge")
	}
}

func TestMergedKernelAccounting(t *testing.T) {
	g := graph.New("merged")
	in := g.Input("in", graph.Shape{N: 1, C: 8, H: 10, W: 10})
	a := g.Conv("a", in, graph.ConvOpts{Out: 4, Kernel: 1})
	b := g.Conv("b", in, graph.ConvOpts{Out: 4, Kernel: 3})
	g.Concat("cat", a, b)
	ks, err := MergedKernels([]*graph.Node{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Consumers form a single concat in order: split is free.
	if len(ks) != 1 {
		t.Fatalf("merged lowering = %d kernels, want 1 (free split)", len(ks))
	}
	// Padded compute: both kernels become 3x3 over 8 output channels.
	want := 2.0 * 8 * 3 * 3 * float64(1*8*10*10)
	if math.Abs(ks[0].FLOPs-want) > 1 {
		t.Errorf("merged FLOPs = %g, want %g", ks[0].FLOPs, want)
	}
	// The merged kernel reads the input once; two separate kernels read
	// it twice.
	sep := LowerNode(a, Options{})[0].Bytes + LowerNode(b, Options{})[0].Bytes
	if ks[0].Bytes >= sep {
		t.Errorf("merged bytes %g not smaller than separate %g", ks[0].Bytes, sep)
	}
}

func TestMergedKernelSplitCost(t *testing.T) {
	g := graph.New("split")
	in := g.Input("in", graph.Shape{N: 1, C: 8, H: 10, W: 10})
	a := g.Conv("a", in, graph.ConvOpts{Out: 4, Kernel: 1})
	b := g.Conv("b", in, graph.ConvOpts{Out: 4, Kernel: 3})
	// Different consumers: split required.
	g.Conv("ca", a, graph.ConvOpts{Out: 4, Kernel: 1})
	g.Conv("cb", b, graph.ConvOpts{Out: 4, Kernel: 1})
	ks, err := MergedKernels([]*graph.Node{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[1].Name != "split" {
		t.Fatalf("merged lowering = %+v, want conv+split", ks)
	}
}

func TestMeasureStageCaching(t *testing.T) {
	g, n := fig2Nodes(t)
	_ = g
	p := New(gpusim.TeslaV100)
	st := schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["a"]}, {n["d"]}}}
	l1, err := p.MeasureStage(st)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Measurements
	l2, err := p.MeasureStage(st)
	if err != nil {
		t.Fatal(err)
	}
	if p.Measurements != m {
		t.Error("cache miss on repeated stage")
	}
	if l1 != l2 {
		t.Error("cached measurement differs")
	}
	// Group order must not matter for the cache key.
	st2 := schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["d"]}, {n["a"]}}}
	l3, err := p.MeasureStage(st2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Measurements != m || l3 != l1 {
		t.Error("group order changed the cache key")
	}
}

func TestConcurrentFasterThanSerialHere(t *testing.T) {
	g, n := fig2Nodes(t)
	_ = g
	p := New(gpusim.TeslaV100)
	conc, err := p.MeasureStage(schedule.Stage{Strategy: schedule.Concurrent,
		Groups: [][]*graph.Node{{n["a"]}, {n["d"]}}})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := p.MeasureStage(schedule.Stage{Strategy: schedule.Concurrent,
		Groups: [][]*graph.Node{{n["a"], n["d"]}}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait: a and d are independent but in one group they serialize;
	// batch-1 kernels underfill the V100, so the concurrent split must
	// win.
	if conc >= serial {
		t.Errorf("concurrent %g not faster than serial %g at batch 1", conc, serial)
	}
}

func TestNoiseMedianIsDeterministicPerSeed(t *testing.T) {
	g, n := fig2Nodes(t)
	_ = g
	st := schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["a"]}}}
	mk := func(seed int64) float64 {
		p := New(gpusim.TeslaV100)
		p.Noise, p.Repeats = 0.05, 5
		p.SetSeed(seed)
		l, err := p.MeasureStage(st)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	if mk(1) != mk(1) {
		t.Error("same seed produced different noisy measurements")
	}
	if mk(1) == mk(2) {
		t.Error("different seeds produced identical noise")
	}
	// Noise stays within bounds.
	p := New(gpusim.TeslaV100)
	clean, err := p.MeasureStage(st)
	if err != nil {
		t.Fatal(err)
	}
	noisy := mk(3)
	if math.Abs(noisy-clean)/clean > 0.05 {
		t.Errorf("noise out of bounds: %g vs %g", noisy, clean)
	}
}

func TestMeasureScheduleSumsStages(t *testing.T) {
	g, n := fig2Nodes(t)
	p := New(gpusim.TeslaV100)
	s := &schedule.Schedule{Graph: g, Stages: []schedule.Stage{
		{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["a"]}, {n["c"]}, {n["d"]}}},
		{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["b"]}}},
		{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["concat"]}}},
	}}
	total, err := p.MeasureSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, st := range s.Stages {
		l, err := p.MeasureStage(st)
		if err != nil {
			t.Fatal(err)
		}
		sum += l
	}
	if math.Abs(total-sum) > 1e-12 {
		t.Errorf("schedule latency %g != stage sum %g", total, sum)
	}
}

func TestProfileStageUtilization(t *testing.T) {
	g, n := fig2Nodes(t)
	_ = g
	p := New(gpusim.TeslaV100)
	prof, err := p.ProfileStage(schedule.Stage{Strategy: schedule.Concurrent,
		Groups: [][]*graph.Node{{n["a"]}, {n["d"]}}})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Utilization <= 0 || prof.Utilization > 1 {
		t.Errorf("utilization = %g", prof.Utilization)
	}
	if prof.GFLOPs <= 0 || prof.TFLOPSs <= 0 || prof.Latency <= 0 {
		t.Errorf("profile = %+v", prof)
	}
}

func TestTraceScheduleProducesWarpActivity(t *testing.T) {
	g, n := fig2Nodes(t)
	p := New(gpusim.TeslaV100)
	s := &schedule.Schedule{Graph: g, Stages: []schedule.Stage{
		{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["a"], n["b"]}, {n["c"]}, {n["d"]}}},
		{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["concat"]}}},
	}}
	lat, trace, err := p.TraceSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if trace.MeanWarps() <= 0 {
		t.Error("no warp activity recorded")
	}
	if math.Abs(trace.Duration()-lat) > 1e-9 {
		t.Errorf("trace duration %g != latency %g", trace.Duration(), lat)
	}
}

func TestForkIsolation(t *testing.T) {
	p := New(gpusim.TeslaV100)
	p.Noise, p.Repeats = 0.1, 3
	f := p.Fork()
	if f.Noise != p.Noise || f.Repeats != p.Repeats {
		t.Error("fork lost noise settings")
	}
	if f.Spec().Name != p.Spec().Name {
		t.Error("fork changed device")
	}
	g, n := fig2Nodes(t)
	_ = g
	st := schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n["a"]}}}
	if _, err := f.MeasureStage(st); err != nil {
		t.Fatal(err)
	}
	if p.Measurements != 0 {
		t.Error("fork measurement leaked into parent")
	}
}

func TestMeasureSerialChainMatchesStage(t *testing.T) {
	// The serial-chain fast path must equal the full simulation of a
	// one-group concurrent stage exactly.
	g, n := fig2Nodes(t)
	_ = g
	p := New(gpusim.TeslaV100)
	chain := []*graph.Node{n["a"], n["b"], n["c"], n["d"], n["concat"]}
	fast := p.MeasureSerialChain(chain)
	slow, err := p.MeasureStageUncached(schedule.Stage{
		Strategy: schedule.Concurrent,
		Groups:   [][]*graph.Node{chain},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-slow) > 1e-15+1e-12*slow {
		t.Errorf("serial fast path %g != simulated %g", fast, slow)
	}
	// Cached second call: no new measurements.
	m := p.Measurements
	_ = p.MeasureSerialChain(chain)
	if p.Measurements != m {
		t.Error("solo durations not cached")
	}
}
