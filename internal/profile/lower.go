// Package profile is the latency oracle behind IOS's profile-based
// scheduling: it lowers schedule-unit operators to GPU kernels, executes
// stages on the gpusim device model, and memoizes the results. The paper's
// GENERATESTAGE "directly measures the latencies of both parallelization
// strategies on the hardware"; here the hardware is the simulator, but the
// interface — ask for the latency of a stage under a strategy, get a
// number — is identical, so the scheduler above it is unchanged.
package profile

import (
	"fmt"

	"ios/internal/gpusim"
	"ios/internal/graph"
)

// Options tunes how operators are lowered to kernels. The zero value is
// the IOS engine's own configuration (cuDNN-style kernels, activations
// fused into producers). The frameworks package uses other settings to
// model comparator engines.
type Options struct {
	// UnfuseActivations lowers a fused activation as a separate
	// elementwise kernel after its producer (TensorFlow-style engines
	// without fusion).
	UnfuseActivations bool
	// KernelQuality scales the *duration* of kernels for an operator
	// kind: quality 2.0 halves a kernel's effective work (TVM-AutoTune's
	// better separable-conv kernels). Nil means quality 1 everywhere.
	KernelQuality func(op graph.Op) float64
	// ExtraLaunchOverhead adds per-kernel framework dispatch time in
	// seconds on top of the device's launch overhead (interpreter-driven
	// engines like TensorFlow).
	ExtraLaunchOverhead float64
	// LaunchOverheadScale scales the device's per-kernel launch overhead
	// (< 1 for ahead-of-time engines with pre-packed launch descriptors,
	// e.g. TVM's graph runtime). Zero means 1.
	LaunchOverheadScale float64
}

func (o Options) quality(op graph.Op) float64 {
	if o.KernelQuality == nil {
		return 1
	}
	q := o.KernelQuality(op)
	if q <= 0 {
		return 1
	}
	return q
}

// LowerNode converts one schedule-unit operator to its kernel sequence.
func LowerNode(n *graph.Node, opts Options) []gpusim.Kernel {
	q := opts.quality(n.Op)
	out := n.Output
	var kernels []gpusim.Kernel
	switch n.Op.Kind {
	case graph.OpInput, graph.OpIdentity:
		return nil
	case graph.OpSepConv:
		in := n.Inputs[0].Output
		// Depthwise kernel (includes the unit's leading activation and,
		// for multi-input units, the fused input aggregation:
		// Relu-SepConv reads the inputs once either way).
		nin := float64(len(n.Inputs))
		dwOut := graph.Shape{N: out.N, C: in.C, H: out.H, W: out.W}
		dwFLOPs := 2*float64(n.Op.KernelH)*float64(n.Op.KernelW)*float64(dwOut.Elems()) +
			(nin-1)*float64(in.Elems())
		dwBytes := nin*float64(in.Bytes()) + 4*float64(in.C)*float64(n.Op.KernelH)*float64(n.Op.KernelW) + float64(dwOut.Bytes())
		kernels = append(kernels, gpusim.Kernel{
			Name:  n.Name + ".dw",
			FLOPs: dwFLOPs / q, Bytes: dwBytes / q,
			Blocks:        gpusim.GridFor(dwOut.Elems()),
			WarpsPerBlock: gpusim.DefaultWarpsPerBlock,
		})
		pwFLOPs := 2 * float64(in.C) * float64(out.Elems())
		pwBytes := float64(dwOut.Bytes()) + 4*float64(in.C)*float64(n.Op.OutChannels) + float64(out.Bytes())
		kernels = append(kernels, gpusim.Kernel{
			Name:  n.Name + ".pw",
			FLOPs: pwFLOPs / q, Bytes: pwBytes / q,
			Blocks:        gpusim.GridFor(out.Elems()),
			WarpsPerBlock: gpusim.DefaultWarpsPerBlock,
		})
	default:
		k := gpusim.Kernel{
			Name:          n.Name,
			FLOPs:         graph.FLOPs(n) / q,
			Bytes:         graph.MemoryBytes(n) / q,
			Blocks:        gpusim.GridFor(out.Elems()),
			WarpsPerBlock: gpusim.DefaultWarpsPerBlock,
		}
		kernels = append(kernels, k)
	}
	if opts.UnfuseActivations && n.Op.Act == graph.ActReLU {
		kernels = append(kernels, gpusim.Kernel{
			Name:          n.Name + ".relu",
			FLOPs:         float64(out.Elems()),
			Bytes:         2 * float64(out.Bytes()),
			Blocks:        gpusim.GridFor(out.Elems()),
			WarpsPerBlock: gpusim.DefaultWarpsPerBlock,
		})
	}
	return kernels
}

// CanMerge reports whether the operators are eligible for the paper's
// "operator merge" strategy: same operator type with possibly different
// hyperparameters, same stride, consuming the same input tensor, so their
// kernels can be padded to a common size and stacked along the output
// channel dimension (Section 3, "Parallelization Strategy").
func CanMerge(ops []*graph.Node) bool {
	if len(ops) < 2 {
		return false
	}
	first := ops[0]
	if first.Op.Kind != graph.OpConv {
		// Separable convolutions cannot be merged (Section 6.1:
		// "we can not merge Relu-SepConv operators"): the depthwise
		// stage is per-channel, so stacking output channels would need
		// the *input* channels duplicated.
		return false
	}
	if len(first.Inputs) != 1 || first.Op.Groups != 1 {
		return false
	}
	samePad := func(op graph.Op) bool {
		return op.PadH == (op.KernelH-1)/2 && op.PadW == (op.KernelW-1)/2 &&
			op.KernelH%2 == 1 && op.KernelW%2 == 1
	}
	if !samePad(first.Op) {
		return false
	}
	for _, n := range ops[1:] {
		if n.Op.Kind != graph.OpConv || n.Op.Groups != 1 {
			return false
		}
		if len(n.Inputs) != 1 || n.Inputs[0] != first.Inputs[0] {
			return false
		}
		if n.Op.StrideH != first.Op.StrideH || n.Op.StrideW != first.Op.StrideW {
			return false
		}
		if n.Op.Act != first.Op.Act {
			return false
		}
		if !samePad(n.Op) {
			return false
		}
	}
	return true
}

// MergedKernels lowers a merge stage: one kernel whose smaller filters are
// zero-padded to the largest kernel size (increasing compute, Section 7.2)
// but which reads the shared input only once, plus a split copy to recover
// the per-operator outputs unless every merged operator's consumers are
// the same single concat node (in which case the merged layout already is
// the concatenated tensor).
func MergedKernels(ops []*graph.Node, opts Options) ([]gpusim.Kernel, error) {
	if !CanMerge(ops) {
		return nil, fmt.Errorf("profile: operators not merge-eligible")
	}
	in := ops[0].Inputs[0].Output
	maxKH, maxKW, outC := 0, 0, 0
	for _, n := range ops {
		if n.Op.KernelH > maxKH {
			maxKH = n.Op.KernelH
		}
		if n.Op.KernelW > maxKW {
			maxKW = n.Op.KernelW
		}
		outC += n.Op.OutChannels
	}
	// All merged convolutions share stride and "same" padding, so the
	// padded-to-max kernel produces identical spatial dims.
	oh := (in.H + 2*((maxKH-1)/2) - maxKH) / ops[0].Op.StrideH
	oh++
	ow := (in.W + 2*((maxKW-1)/2) - maxKW) / ops[0].Op.StrideW
	ow++
	out := graph.Shape{N: in.N, C: outC, H: oh, W: ow}

	q := opts.quality(ops[0].Op)
	flops := 2 * float64(in.C) * float64(maxKH) * float64(maxKW) * float64(out.Elems())
	bytes := float64(in.Bytes()) + 4*float64(outC)*float64(in.C)*float64(maxKH)*float64(maxKW) + float64(out.Bytes())
	kernels := []gpusim.Kernel{{
		Name:  "merged",
		FLOPs: flops / q, Bytes: bytes / q,
		Blocks:        gpusim.GridFor(out.Elems()),
		WarpsPerBlock: gpusim.DefaultWarpsPerBlock,
	}}
	if !splitIsFree(ops) {
		kernels = append(kernels, gpusim.Kernel{
			Name:          "split",
			FLOPs:         0,
			Bytes:         2 * float64(out.Bytes()),
			Blocks:        gpusim.GridFor(out.Elems()),
			WarpsPerBlock: gpusim.DefaultWarpsPerBlock,
		})
	}
	return kernels, nil
}

// splitIsFree reports whether the merged output needs no split copy: every
// merged operator feeds exactly the same single concat consumer, and that
// concat concatenates exactly these operators in order, so the merged
// tensor *is* the concat output.
func splitIsFree(ops []*graph.Node) bool {
	var concat *graph.Node
	for _, n := range ops {
		outs := n.Outputs()
		if len(outs) != 1 || outs[0].Op.Kind != graph.OpConcat {
			return false
		}
		if concat == nil {
			concat = outs[0]
		} else if outs[0] != concat {
			return false
		}
	}
	if concat == nil || len(concat.Inputs) != len(ops) {
		return false
	}
	for i, in := range concat.Inputs {
		if in != ops[i] {
			return false
		}
	}
	return true
}
