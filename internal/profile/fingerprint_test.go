package profile

import (
	"math/rand"
	"testing"

	"ios/internal/baseline"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/measure"
	"ios/internal/models"
	"ios/internal/schedule"
)

// randomDAG builds a random layered CNN graph: each layer's nodes draw
// inputs from earlier layers, with occasional same-shape adds and
// identities (free ops), so the generated stages cover multi-kernel,
// multi-input, and kernel-free nodes.
func randomDAG(rng *rand.Rand) *graph.Graph {
	g := graph.New("random")
	in := g.Input("in", graph.Shape{N: 1, C: 4 + 4*rng.Intn(3), H: 8, W: 8})
	prev := []*graph.Node{in}
	layers := 2 + rng.Intn(3)
	id := 0
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(3)
		var cur []*graph.Node
		for i := 0; i < width; i++ {
			id++
			name := "n" + string(rune('a'+id%26)) + string(rune('0'+id/26))
			src := prev[rng.Intn(len(prev))]
			switch rng.Intn(5) {
			case 0:
				cur = append(cur, g.Identity(name, src))
			case 1:
				cur = append(cur, g.SepConv(name, src, graph.ConvOpts{Out: 8, Kernel: 3}))
			default:
				cur = append(cur, g.Conv(name, src, graph.ConvOpts{Out: 4 + 4*rng.Intn(2), Kernel: 1 + 2*rng.Intn(2)}))
			}
		}
		prev = cur
	}
	return g
}

// randomStage draws a random concurrent stage over a random subset of the
// graph's schedulable nodes, partitioned into random groups. Measurement
// does not require the stage to be a valid schedule step, so arbitrary
// subsets exercise the fingerprint harder than real schedules do.
func randomStage(rng *rand.Rand, nodes []*graph.Node) schedule.Stage {
	var picked []*graph.Node
	for _, n := range nodes {
		if rng.Float64() < 0.5 {
			picked = append(picked, n)
		}
	}
	if len(picked) == 0 {
		picked = nodes[:1]
	}
	ngroups := 1 + rng.Intn(3)
	groups := make([][]*graph.Node, ngroups)
	for _, n := range picked {
		gi := rng.Intn(ngroups)
		groups[gi] = append(groups[gi], n)
	}
	var nonEmpty [][]*graph.Node
	for _, grp := range groups {
		if len(grp) > 0 {
			nonEmpty = append(nonEmpty, grp)
		}
	}
	return schedule.Stage{Strategy: schedule.Concurrent, Groups: nonEmpty}
}

// TestFingerprintSoundnessRandomDAGs is the property the whole cache
// rests on: any two stages with equal fingerprints have bit-identical
// MeasureStageUncached latencies — across different random graphs, node
// identities, and group orders.
func TestFingerprintSoundnessRandomDAGs(t *testing.T) {
	seen := map[string]float64{}  // fingerprint -> uncached latency
	origin := map[string]string{} // fingerprint -> first stage, for diagnostics
	stages, collisionsChecked := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		prof := New(gpusim.TeslaV100) // no cache: soundness is about raw latencies
		for i := 0; i < 40; i++ {
			st := randomStage(rng, g.SchedulableNodes())
			fp, err := prof.StageFingerprint(st)
			if err != nil {
				t.Fatal(err)
			}
			lat, err := prof.MeasureStageUncached(canonicalStage(st))
			if err != nil {
				t.Fatal(err)
			}
			stages++
			if prev, ok := seen[string(fp)]; ok {
				collisionsChecked++
				if prev != lat {
					t.Fatalf("seed %d stage %d: equal fingerprints, different latencies %g vs %g\nstage: %v\nfirst: %s",
						seed, i, lat, prev, st, origin[string(fp)])
				}
			} else {
				seen[string(fp)] = lat
				origin[string(fp)] = st.String()
			}
		}
	}
	if collisionsChecked == 0 {
		t.Fatal("property vacuous: no two random stages ever shared a fingerprint")
	}
	t.Logf("%d stages, %d distinct fingerprints, %d equal-fingerprint pairs verified",
		stages, len(seen), collisionsChecked)
}

// TestFingerprintCollisionResistanceZoo sweeps every model in the zoo:
// all stages of the sequential and greedy baseline schedules are
// fingerprinted and measured uncached, and equal fingerprints must always
// carry equal latencies — a collision that mapped two different stage
// structures to one key would surface here as a latency mismatch.
func TestFingerprintCollisionResistanceZoo(t *testing.T) {
	seen := map[string]float64{}
	stages := 0
	for _, entry := range models.Zoo() {
		g := entry.Build(1)
		prof := New(gpusim.TeslaV100)
		for _, mk := range []func(*graph.Graph) (*schedule.Schedule, error){baseline.Sequential, baseline.Greedy} {
			s, err := mk(g)
			if err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			for _, st := range s.Stages {
				fp, err := prof.StageFingerprint(st)
				if err != nil {
					t.Fatal(err)
				}
				lat, err := prof.MeasureStageUncached(canonicalStage(st))
				if err != nil {
					t.Fatal(err)
				}
				stages++
				if prev, ok := seen[string(fp)]; ok {
					if prev != lat {
						t.Fatalf("%s: fingerprint collision with different latencies (%g vs %g) on stage %v",
							g.Name, lat, prev, st)
					}
				} else {
					seen[string(fp)] = lat
				}
			}
		}
	}
	if len(seen) >= stages {
		t.Fatalf("no structural sharing across the zoo (%d stages, %d fingerprints) — the dedup the cache exists for", stages, len(seen))
	}
	t.Logf("zoo sweep: %d stages collapse to %d distinct fingerprints", stages, len(seen))
}

// TestMeasureCacheSharedAcrossForks: forks inherit the parent's cache, so
// a structurally identical stage measured on a fork is a hit even when
// its nodes differ.
func TestMeasureCacheSharedAcrossForks(t *testing.T) {
	g1, g2 := models.Figure2Block(1), models.Figure2Block(1)
	st := func(g *graph.Graph) schedule.Stage {
		var a, d *graph.Node
		for _, n := range g.Nodes {
			switch n.Name {
			case "a":
				a = n
			case "d":
				d = n
			}
		}
		return schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{a}, {d}}}
	}
	cache := measure.NewCache()
	p := New(gpusim.TeslaV100)
	p.SetMeasureCache(cache)
	if p.MeasureCache() != cache {
		t.Fatal("MeasureCache accessor lost the cache")
	}
	l1, err := p.MeasureStageUncached(st(g1))
	if err != nil {
		t.Fatal(err)
	}
	f := p.Fork()
	if f.MeasureCache() != cache {
		t.Fatal("fork dropped the measurement cache")
	}
	l2, err := f.MeasureStageUncached(st(g2)) // different node values, same structure
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatalf("structurally identical stages measured %g vs %g", l1, l2)
	}
	if f.Measurements != 0 {
		t.Fatalf("fork re-simulated a cached fingerprint (%d measurements)", f.Measurements)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("no cache hit recorded: %+v", st)
	}
}

// TestNoisyMemoKeepsNodeIdentity: under measurement noise the stage memo
// must NOT share entries across structurally identical stages of
// different nodes — each distinct-node stage draws its own noise, as it
// always has (the structural key applies only to noise-free
// measurements).
func TestNoisyMemoKeepsNodeIdentity(t *testing.T) {
	g := graph.New("twins")
	in := g.Input("in", graph.Shape{N: 1, C: 8, H: 8, W: 8})
	a := g.Conv("a", in, graph.ConvOpts{Out: 8, Kernel: 3})
	b := g.Conv("b", in, graph.ConvOpts{Out: 8, Kernel: 3}) // structurally identical to a
	p := New(gpusim.TeslaV100)
	p.Noise, p.Repeats = 0.05, 1
	p.SetSeed(3)
	la, err := p.MeasureStage(schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{a}}})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := p.MeasureStage(schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{b}}})
	if err != nil {
		t.Fatal(err)
	}
	if la == lb {
		t.Fatal("structurally identical stages of different nodes shared one noisy draw")
	}
	// Repeating the SAME stage stays memoized (no fresh draw).
	la2, err := p.MeasureStage(schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{a}}})
	if err != nil {
		t.Fatal(err)
	}
	if la2 != la {
		t.Fatal("repeated noisy stage was re-drawn instead of served from the memo")
	}
}

// TestMeasureStageUsesSharedCache: the stage memo path feeds the shared
// cache too, and a second profiler (no memo overlap) reuses its entries.
func TestMeasureStageUsesSharedCache(t *testing.T) {
	g := models.SqueezeNet(1)
	s, err := baseline.Sequential(g)
	if err != nil {
		t.Fatal(err)
	}
	cache := measure.NewCache()
	p1 := New(gpusim.TeslaV100)
	p1.SetMeasureCache(cache)
	l1, err := p1.MeasureSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	p2 := New(gpusim.TeslaV100)
	p2.SetMeasureCache(cache)
	l2, err := p2.MeasureSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatalf("shared-cache schedule latency %g != %g", l1, l2)
	}
	if p2.Measurements != 0 {
		t.Fatalf("second profiler re-simulated %d stages despite the shared cache", p2.Measurements)
	}
}
