package profile

import (
	"testing"

	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/schedule"
)

// countingBackend wraps the simulator backend and counts Run invocations
// across the whole fork tree — the shape a real instrumented or hardware
// backend would take.
type countingBackend struct {
	inner Backend
	runs  *int64 // shared across forks
}

func newCountingBackend(spec gpusim.Spec) *countingBackend {
	return &countingBackend{inner: SimBackend(spec), runs: new(int64)}
}

func (b *countingBackend) Spec() gpusim.Spec { return b.inner.Spec() }
func (b *countingBackend) Run(streams []gpusim.Stream) gpusim.Result {
	*b.runs++
	return b.inner.Run(streams)
}
func (b *countingBackend) Fork() Backend {
	return &countingBackend{inner: b.inner.Fork(), runs: b.runs}
}

// TestCustomBackendIsPluggable proves the measurement substrate is
// swappable: a profiler built over a wrapped backend produces the same
// latencies as the plain simulator, and every simulator invocation —
// including those made by forks — flows through the custom backend.
func TestCustomBackendIsPluggable(t *testing.T) {
	g := models.Figure2Block(1)
	nodes := g.SchedulableNodes()
	stage := func(n *graph.Node) schedule.Stage {
		return schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{n}}}
	}

	cb := newCountingBackend(gpusim.TeslaV100)
	custom := NewWithBackend(cb, Options{})
	plain := New(gpusim.TeslaV100)
	if custom.Spec().Name != plain.Spec().Name {
		t.Fatalf("backend spec %q, want %q", custom.Spec().Name, plain.Spec().Name)
	}

	for _, n := range nodes {
		got, err := custom.MeasureStage(stage(n))
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.MeasureStage(stage(n))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("node %s: backend latency %g, simulator latency %g", n.Name, got, want)
		}
	}
	if *cb.runs == 0 {
		t.Fatal("no measurement flowed through the custom backend")
	}

	// Forks keep measuring through the same (shared-counter) backend.
	before := *cb.runs
	fork := custom.Fork()
	if _, err := fork.MeasureStageUncached(stage(nodes[0])); err != nil {
		t.Fatal(err)
	}
	if *cb.runs != before+1 {
		t.Fatalf("fork measurement bypassed the custom backend (runs %d -> %d)", before, *cb.runs)
	}
	if fork.Backend() == custom.Backend() {
		t.Fatal("fork shares the parent's backend instance (must be independent)")
	}
}
