package bitset

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestEmptyAndFull(t *testing.T) {
	if !Empty().IsEmpty() {
		t.Error("Empty() is not empty")
	}
	if got := Full(0); !got.IsEmpty() {
		t.Errorf("Full(0) = %v, want empty", got)
	}
	if got := Full(5); got.Len() != 5 {
		t.Errorf("Full(5).Len() = %d", got.Len())
	}
	if got := Full(64); got.Len() != 64 {
		t.Errorf("Full(64).Len() = %d", got.Len())
	}
	for e := 0; e < 64; e++ {
		if !Full(64).Has(e) {
			t.Fatalf("Full(64) missing %d", e)
		}
	}
}

func TestFullPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Full(65) did not panic")
		}
	}()
	Full(65)
}

func TestAddRemoveHas(t *testing.T) {
	s := Of(1, 5, 63)
	for _, e := range []int{1, 5, 63} {
		if !s.Has(e) {
			t.Errorf("missing %d", e)
		}
	}
	if s.Has(2) {
		t.Error("unexpected 2")
	}
	s = s.Remove(5)
	if s.Has(5) {
		t.Error("5 not removed")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	// Removing an absent element is a no-op.
	if s.Remove(40) != s {
		t.Error("Remove(absent) changed the set")
	}
}

func TestElemRangePanics(t *testing.T) {
	for _, e := range []int{-1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", e)
				}
			}()
			Empty().Add(e)
		}()
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(0, 1, 2, 10)
	b := Of(2, 3, 10, 40)
	if got := a.Union(b); got != Of(0, 1, 2, 3, 10, 40) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != Of(2, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != Of(0, 1) {
		t.Errorf("Diff = %v", got)
	}
	if !Of(2, 10).SubsetOf(a) {
		t.Error("SubsetOf failed")
	}
	if Of(2, 3).SubsetOf(a) {
		t.Error("SubsetOf false positive")
	}
	if !a.Intersects(b) {
		t.Error("Intersects failed")
	}
	if a.Intersects(Of(50)) {
		t.Error("Intersects false positive")
	}
}

func TestMin(t *testing.T) {
	if got := Of(9, 3, 44).Min(); got != 3 {
		t.Errorf("Min = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Min of empty did not panic")
		}
	}()
	Empty().Min()
}

func TestElemsAndForEach(t *testing.T) {
	s := Of(7, 0, 21, 63)
	want := []int{0, 7, 21, 63}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	var visited []int
	s.ForEach(func(e int) bool {
		visited = append(visited, e)
		return true
	})
	if len(visited) != len(want) {
		t.Fatalf("ForEach visited %v", visited)
	}
	// Early stop.
	count := 0
	s.ForEach(func(e int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEach early stop visited %d", count)
	}
}

func TestString(t *testing.T) {
	if got := Of(1, 3).String(); got != "{1, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := Empty().String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

// Property: Len agrees with popcount, and algebra laws hold for arbitrary
// words.
func TestQuickAlgebraLaws(t *testing.T) {
	err := quick.Check(func(x, y uint64) bool {
		a, b := Set(x), Set(y)
		if a.Len() != bits.OnesCount64(x) {
			return false
		}
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Intersect(b) != b.Intersect(a) {
			return false
		}
		if a.Diff(b).Intersects(b) {
			return false
		}
		if !a.Diff(b).SubsetOf(a) {
			return false
		}
		// De Morgan on the 64-element universe.
		u := ^Set(0)
		if u.Diff(a.Union(b)) != u.Diff(a).Intersect(u.Diff(b)) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: Elems round-trips through Of.
func TestQuickElemsRoundTrip(t *testing.T) {
	err := quick.Check(func(x uint64) bool {
		s := Set(x)
		return Of(s.Elems()...) == s
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: AppendElems agrees with Elems and reuses the destination.
func TestQuickAppendElems(t *testing.T) {
	err := quick.Check(func(x uint64) bool {
		s := Set(x)
		buf := make([]int, 0, 64)
		got := s.AppendElems(buf)
		want := s.Elems()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Reuse must not allocate a new backing array.
		return cap(got) == 64 && s.AppendElems(buf[:0]) != nil
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: NextAfter iteration visits exactly Elems in order.
func TestQuickNextAfter(t *testing.T) {
	err := quick.Check(func(x uint64) bool {
		s := Set(x)
		var got []int
		for e := s.NextAfter(-1); e >= 0; e = s.NextAfter(e) {
			got = append(got, e)
		}
		want := s.Elems()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return s.NextAfter(63) == -1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
