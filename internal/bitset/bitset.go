// Package bitset provides a compact 64-bit set of operator indices.
//
// IOS optimizes one block of a computation graph at a time, and every block
// in the paper's benchmarks has at most a few dozen operators, so a single
// machine word is enough to represent any dynamic-programming state
// (a subset of a block's operators). Using a word keeps the memoization
// tables cheap: states are map keys with no allocation or hashing cost
// beyond the integer itself.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxElems is the largest number of distinct elements a Set can hold.
const MaxElems = 64

// Set is a subset of {0, 1, ..., 63}. The zero value is the empty set.
type Set uint64

// Empty returns the empty set. It exists for readability at call sites.
func Empty() Set { return 0 }

// Full returns the set {0, ..., n-1}. It panics if n is out of range,
// because a caller asking for more than 64 elements indicates a block that
// should have been split further upstream.
func Full(n int) Set {
	if n < 0 || n > MaxElems {
		panic(fmt.Sprintf("bitset: Full(%d) out of range [0,%d]", n, MaxElems))
	}
	if n == MaxElems {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Of builds a set from the given elements.
func Of(elems ...int) Set {
	var s Set
	for _, e := range elems {
		s = s.Add(e)
	}
	return s
}

// Add returns s ∪ {e}.
func (s Set) Add(e int) Set {
	checkElem(e)
	return s | 1<<uint(e)
}

// Remove returns s ∖ {e}.
func (s Set) Remove(e int) Set {
	checkElem(e)
	return s &^ (1 << uint(e))
}

// Has reports whether e ∈ s.
func (s Set) Has(e int) bool {
	checkElem(e)
	return s&(1<<uint(e)) != 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns s ∖ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// IsEmpty reports whether s has no elements.
func (s Set) IsEmpty() bool { return s == 0 }

// Len returns |s|.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set) Intersects(t Set) bool { return s&t != 0 }

// Min returns the smallest element of s. It panics on the empty set.
func (s Set) Min() int {
	if s == 0 {
		panic("bitset: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// Elems returns the elements of s in increasing order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for t := s; t != 0; {
		e := bits.TrailingZeros64(uint64(t))
		out = append(out, e)
		t &^= 1 << uint(e)
	}
	return out
}

// AppendElems appends the elements of s in increasing order to dst and
// returns the extended slice. It is the allocation-free (given a reused
// backing array) alternative to Elems for hot loops such as the DP's
// ending enumeration.
func (s Set) AppendElems(dst []int) []int {
	for t := s; t != 0; {
		e := bits.TrailingZeros64(uint64(t))
		dst = append(dst, e)
		t &^= 1 << uint(e)
	}
	return dst
}

// NextAfter returns the smallest element of s strictly greater than e, or
// -1 when no such element exists. Pass e = -1 to start an iteration:
//
//	for i := s.NextAfter(-1); i >= 0; i = s.NextAfter(i) { ... }
//
// Unlike ForEach it needs no closure, which keeps tight loops free of
// function-value allocations.
func (s Set) NextAfter(e int) int {
	if e < -1 || e >= MaxElems {
		panic(fmt.Sprintf("bitset: NextAfter(%d) out of range [-1,%d)", e, MaxElems))
	}
	t := uint64(s) &^ (1<<uint(e+1) - 1)
	if t == 0 {
		return -1
	}
	return bits.TrailingZeros64(t)
}

// ForEach calls fn for each element in increasing order. It stops early if
// fn returns false.
func (s Set) ForEach(fn func(e int) bool) {
	for t := s; t != 0; {
		e := bits.TrailingZeros64(uint64(t))
		if !fn(e) {
			return
		}
		t &^= 1 << uint(e)
	}
}

// String renders the set as "{0, 3, 5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", e)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func checkElem(e int) {
	if e < 0 || e >= MaxElems {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, MaxElems))
	}
}
