package batching

import (
	"testing"
	"time"
)

// fakeModel is an analytic measured-model stand-in: latency grows
// affinely with batch (base + perImage·b), so bigger batches always
// amortize better — the regime where batching pays.
type fakeModel struct {
	batches  []int
	base     float64 // seconds
	perImage float64 // seconds per image
}

func (m fakeModel) Batches() []int { return m.batches }
func (m fakeModel) EstimateLatency(batch int) float64 {
	return m.base + m.perImage*float64(batch)
}

// testModel: L(1)=1.1ms, L(4)=1.4ms, L(16)=2.6ms. Per-image cost falls
// from 1.1ms to 0.1625ms — waiting for batch 16 is an ~7x throughput
// win when the SLO allows it.
func testModel() fakeModel {
	return fakeModel{batches: []int{1, 4, 16}, base: 1e-3, perImage: 1e-4}
}

func newTestQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = testModel()
	}
	if cfg.SLO == 0 {
		cfg.SLO = 20 * time.Millisecond
	}
	q, err := NewQueue(cfg)
	if err != nil {
		t.Fatalf("NewQueue: %v", err)
	}
	return q
}

var t0 = time.Unix(0, 0)

func at(d time.Duration) time.Time { return t0.Add(d) }

func addOne(t *testing.T, q *Queue, id uint64, now time.Time) {
	t.Helper()
	if err := q.Add(now, Request{ID: id, Images: 1, Arrived: now}); err != nil {
		t.Fatalf("Add: %v", err)
	}
}

func TestQueueValidation(t *testing.T) {
	if _, err := NewQueue(Config{SLO: time.Second}); err == nil {
		t.Error("NewQueue accepted a nil model")
	}
	if _, err := NewQueue(Config{Model: testModel()}); err == nil {
		t.Error("NewQueue accepted a zero SLO")
	}
	if _, err := NewQueue(Config{Model: fakeModel{batches: []int{4, 2}}, SLO: time.Second}); err == nil {
		t.Error("NewQueue accepted non-ascending batches")
	}
	if _, err := NewQueue(Config{Model: fakeModel{}, SLO: time.Second}); err == nil {
		t.Error("NewQueue accepted a model with no batches")
	}
	if _, err := NewQueue(Config{Model: testModel(), SLO: time.Second, RateAlpha: 2}); err == nil {
		t.Error("NewQueue accepted RateAlpha > 1")
	}
	q := newTestQueue(t, Config{})
	if q.maxBatch != 16 {
		t.Errorf("default MaxBatch = %d, want largest planned 16", q.maxBatch)
	}
	if err := q.Add(t0, Request{ID: 1, Images: 0}); err == nil {
		t.Error("Add accepted a zero-image request")
	}
}

// TestDecideColdStart: with no observed arrival rate the queue cannot
// price waiting, so the first request dispatches immediately.
func TestDecideColdStart(t *testing.T) {
	q := newTestQueue(t, Config{})
	addOne(t, q, 1, t0)
	d, ok, _ := q.Decide(t0, time.Time{})
	if !ok {
		t.Fatal("cold-start Decide did not dispatch")
	}
	if d.Images != 1 || len(d.Requests) != 1 || d.Requests[0].ID != 1 {
		t.Errorf("dispatch = %+v, want the single queued request", d)
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d images left", q.Len())
	}
}

// TestDecideWaitsForBiggerBatch: with a healthy arrival rate and SLO
// headroom, the queue holds requests for the bigger planned batch and
// reports its last-call wake time.
func TestDecideWaitsForBiggerBatch(t *testing.T) {
	q := newTestQueue(t, Config{SLO: 50 * time.Millisecond})
	// Arrivals 1ms apart → rate settles near 1000 images/sec: growing
	// from 2 to 16 queued images costs ~14ms, well within the SLO.
	addOne(t, q, 1, at(0))
	addOne(t, q, 2, at(time.Millisecond))
	now := at(time.Millisecond)
	d, ok, wake := q.Decide(now, time.Time{})
	if ok {
		t.Fatalf("Decide dispatched %+v, want wait for batch 16", d)
	}
	// lastCall = oldest deadline − L(queue=2) = 50ms − 1.2ms.
	wantWake := at(50*time.Millisecond - durationOf(q.lat(2)))
	if !wake.Equal(wantWake) {
		t.Errorf("wake = %v, want last-call %v", wake.Sub(t0), wantWake.Sub(t0))
	}
	// At the wake time the queue must dispatch whatever it has.
	d, ok, _ = q.Decide(wake, time.Time{})
	if !ok || d.Images != 2 {
		t.Fatalf("Decide at wake = (%+v, %v), want dispatch of 2 images", d, ok)
	}
}

// TestDecideDispatchesAtPlannedBatch: once the queue reaches an
// amortization-optimal planned batch it stops waiting.
func TestDecideDispatchesAtPlannedBatch(t *testing.T) {
	q := newTestQueue(t, Config{SLO: 50 * time.Millisecond})
	var now time.Time
	for i := 0; i < 16; i++ {
		now = at(time.Duration(i) * time.Millisecond)
		addOne(t, q, uint64(i), now)
	}
	d, ok, _ := q.Decide(now, time.Time{})
	if !ok || d.Images != 16 {
		t.Fatalf("Decide with 16 queued = (%+v, %v), want dispatch of 16", d, ok)
	}
}

// TestDecideRespectsSLOHeadroom: when the expected wait for the next
// planned batch would blow the oldest request's deadline, the queue
// dispatches what it has instead of waiting.
func TestDecideRespectsSLOHeadroom(t *testing.T) {
	// SLO 4ms; reaching batch 16 from 2 at 1000 img/s takes ~14ms.
	// Waiting even for batch 4 (2ms at rate 1000) leaves 4−2−L(4)=… <0.
	q := newTestQueue(t, Config{SLO: 4 * time.Millisecond})
	addOne(t, q, 1, at(0))
	addOne(t, q, 2, at(time.Millisecond))
	d, ok, _ := q.Decide(at(time.Millisecond), time.Time{})
	if !ok || d.Images != 2 {
		t.Fatalf("Decide under tight SLO = (%+v, %v), want immediate dispatch of 2", d, ok)
	}
}

// TestDecideBusyDevice: a backlogged device consumes SLO headroom — a
// queue that would otherwise wait must dispatch (or even that is late).
func TestDecideBusyDevice(t *testing.T) {
	q := newTestQueue(t, Config{SLO: 50 * time.Millisecond})
	addOne(t, q, 1, at(0))
	addOne(t, q, 2, at(time.Millisecond))
	now := at(time.Millisecond)
	// Device free only at 49ms: start(now+wait)+L(16) > 50ms for every
	// bigger batch, and even the current queue barely makes it — the
	// queue must stop waiting.
	busyUntil := at(49 * time.Millisecond)
	if _, ok, _ := q.Decide(now, busyUntil); !ok {
		t.Fatal("Decide kept waiting despite a backlogged device")
	}
}

// TestDecideMaxBatchCap: targets beyond MaxBatch are never waited for.
func TestDecideMaxBatchCap(t *testing.T) {
	q := newTestQueue(t, Config{SLO: 50 * time.Millisecond, MaxBatch: 4})
	var now time.Time
	for i := 0; i < 4; i++ {
		now = at(time.Duration(i) * time.Millisecond)
		addOne(t, q, uint64(i), now)
	}
	// 4 queued = MaxBatch: dispatch now even though batch 16 is planned.
	d, ok, _ := q.Decide(now, time.Time{})
	if !ok || d.Images != 4 {
		t.Fatalf("Decide at MaxBatch = (%+v, %v), want dispatch of 4", d, ok)
	}
}

// TestDecideNoAmortizationNoWait: when the model says bigger batches do
// not improve per-image latency, waiting is never chosen.
func TestDecideNoAmortizationNoWait(t *testing.T) {
	// Purely linear model: L(b) = b·1ms, so L(b)/b is constant — no win.
	m := fakeModel{batches: []int{1, 4, 16}, base: 0, perImage: 1e-3}
	q := newTestQueue(t, Config{Model: m, SLO: time.Second})
	addOne(t, q, 1, at(0))
	addOne(t, q, 2, at(time.Millisecond))
	if _, ok, _ := q.Decide(at(time.Millisecond), time.Time{}); !ok {
		t.Fatal("Decide waited although the model shows no amortization win")
	}
}

func TestQueueRateEWMA(t *testing.T) {
	q := newTestQueue(t, Config{})
	addOne(t, q, 1, at(0))
	if q.Rate() != 0 {
		t.Errorf("rate after one arrival = %v, want 0 (unknown)", q.Rate())
	}
	addOne(t, q, 2, at(time.Millisecond))
	if got := q.Rate(); got < 999 || got > 1001 {
		t.Errorf("rate after 1ms gap = %v, want ~1000", got)
	}
	// A same-timestamp burst folds into the gap that follows it: three
	// images over the next 1ms gap triples the instantaneous rate.
	addOne(t, q, 3, at(time.Millisecond))
	addOne(t, q, 4, at(time.Millisecond))
	before := q.Rate()
	addOne(t, q, 5, at(2*time.Millisecond))
	if got := q.Rate(); got <= before {
		t.Errorf("rate after burst = %v, want above pre-burst %v", got, before)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newTestQueue(t, Config{})
	addOne(t, q, 1, at(0))
	addOne(t, q, 2, at(time.Millisecond))
	if !q.Remove(1) {
		t.Fatal("Remove(1) = false for a queued request")
	}
	if q.Remove(1) {
		t.Error("Remove(1) = true twice")
	}
	if q.Len() != 1 || q.Requests() != 1 {
		t.Errorf("after Remove: %d images %d requests, want 1/1", q.Len(), q.Requests())
	}
	// The rate is known and the SLO has headroom, so the queue waits;
	// at its wake time the dispatch must carry only the surviving request.
	_, ok, wake := q.Decide(at(time.Millisecond), time.Time{})
	if ok {
		t.Fatal("Decide dispatched before the wake time")
	}
	d, ok, _ := q.Decide(wake, time.Time{})
	if !ok || len(d.Requests) != 1 || d.Requests[0].ID != 2 {
		t.Errorf("dispatch after Remove = %+v, want only request 2", d)
	}
}

func TestQueueFlushAndHistogram(t *testing.T) {
	q := newTestQueue(t, Config{MaxBatch: 4})
	for i := 0; i < 10; i++ {
		addOne(t, q, uint64(i), at(time.Duration(i)*time.Millisecond))
	}
	ds := q.Flush()
	if len(ds) != 3 {
		t.Fatalf("Flush produced %d dispatches, want 3 (4+4+2 under MaxBatch 4)", len(ds))
	}
	if ds[0].Images != 4 || ds[1].Images != 4 || ds[2].Images != 2 {
		t.Errorf("Flush sizes = %d,%d,%d, want 4,4,2", ds[0].Images, ds[1].Images, ds[2].Images)
	}
	if q.Len() != 0 || q.Requests() != 0 {
		t.Errorf("queue not empty after Flush: %d images", q.Len())
	}
	hist := q.Histogram()
	if hist[4] != 2 || hist[2] != 1 {
		t.Errorf("histogram = %v, want map[2:1 4:2]", hist)
	}
	// The histogram is a copy — mutating it must not touch the queue.
	hist[4] = 99
	if q.Histogram()[4] != 2 {
		t.Error("Histogram returned a live reference, want a copy")
	}
}

// TestQueueMultiImageRequests: requests are atomic — frontSize takes
// whole requests up to MaxBatch but always at least one.
func TestQueueMultiImageRequests(t *testing.T) {
	q := newTestQueue(t, Config{MaxBatch: 8})
	if err := q.Add(at(0), Request{ID: 1, Images: 6, Arrived: at(0)}); err != nil {
		t.Fatal(err)
	}
	if err := q.Add(at(time.Millisecond), Request{ID: 2, Images: 6, Arrived: at(time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	if got := q.frontSize(); got != 6 {
		t.Errorf("frontSize = %d, want 6 (second request would exceed MaxBatch)", got)
	}
	// An oversized single request still dispatches alone.
	q2 := newTestQueue(t, Config{MaxBatch: 4})
	if err := q2.Add(at(0), Request{ID: 1, Images: 10, Arrived: at(0)}); err != nil {
		t.Fatal(err)
	}
	d, ok, _ := q2.Decide(at(0), time.Time{})
	if !ok || d.Images != 10 {
		t.Fatalf("oversized request dispatch = (%+v, %v), want 10 images", d, ok)
	}
}
