package batching

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for Batcher tests: time
// only moves when a test advances it, so no test here sleeps.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: t0} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Set(d time.Duration) {
	c.mu.Lock()
	c.now = t0.Add(d)
	c.mu.Unlock()
}

// countingExec returns an Exec that tallies dispatches and images and
// reports a fixed tiny service latency.
func countingExec(dispatches, images *atomic.Int64) Exec {
	return func(d Dispatch) (time.Duration, any, error) {
		dispatches.Add(1)
		images.Add(int64(d.Images))
		return 100 * time.Microsecond, nil, nil
	}
}

func newTestBatcher(t *testing.T, cfg Config, exec Exec) *Batcher {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = testModel()
	}
	if cfg.SLO == 0 {
		cfg.SLO = 20 * time.Millisecond
	}
	b, err := NewBatcher(cfg, exec)
	if err != nil {
		t.Fatalf("NewBatcher: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// waitFor spins (yielding) until cond is true or the deadline passes.
// It polls state, it does not sleep through scripted time.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

func TestBatcherValidation(t *testing.T) {
	if _, err := NewBatcher(Config{Model: testModel(), SLO: time.Second}, nil); err == nil {
		t.Error("NewBatcher accepted a nil Exec")
	}
	if _, err := NewBatcher(Config{}, func(Dispatch) (time.Duration, any, error) { return 0, nil, nil }); err == nil {
		t.Error("NewBatcher accepted a config without a model")
	}
}

// TestBatcherImmediateDispatch: a cold-start submit (no observed rate)
// executes immediately and the result carries the dispatch metadata.
func TestBatcherImmediateDispatch(t *testing.T) {
	var dispatches, images atomic.Int64
	b := newTestBatcher(t, Config{}, countingExec(&dispatches, &images))
	res, err := b.Submit(context.Background(), 1)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Batch != 1 || res.Service != 100*time.Microsecond || res.Violated {
		t.Errorf("result = %+v, want batch 1, service 100µs, no violation", res)
	}
	if dispatches.Load() != 1 || images.Load() != 1 {
		t.Errorf("exec saw %d dispatches / %d images, want 1/1", dispatches.Load(), images.Load())
	}
	st := b.Stats()
	if st.Dispatches != 1 || st.Images != 1 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v, want 1 dispatch, 1 image, empty queue", st)
	}
	if st.DispatchHist[1] != 1 {
		t.Errorf("dispatch histogram = %v, want map[1:1]", st.DispatchHist)
	}
	if _, err := b.Submit(context.Background(), 0); err == nil {
		t.Error("Submit accepted 0 images")
	}
}

// TestBatcherCoalesces: with a scripted clock establishing an arrival
// rate, later submits queue up and ride one coalesced dispatch when the
// drain (or SLO timer) releases them.
func TestBatcherCoalesces(t *testing.T) {
	var dispatches, images atomic.Int64
	clock := newFakeClock()
	b := newTestBatcher(t, Config{SLO: time.Hour}, countingExec(&dispatches, &images))
	b.mu.Lock()
	b.now = clock.Now
	b.mu.Unlock()

	// First submit at t=0: cold start, dispatches alone.
	if _, err := b.Submit(context.Background(), 1); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Two more submits 1ms apart (scripted): the queue now has a rate
	// estimate and an enormous SLO, so both wait for a bigger batch.
	results := make(chan Result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		clock.Set(time.Duration(i+1) * time.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.Submit(context.Background(), 1)
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			results <- res
		}()
		want := i + 1
		waitFor(t, func() bool { return b.Stats().QueueDepth == want }, "submit to queue")
	}

	if got := b.Stats().QueueDepth; got != 2 {
		t.Fatalf("queue depth = %d, want 2 queued submits", got)
	}
	// Drain releases the queue as one coalesced dispatch.
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	close(results)
	for res := range results {
		if res.Batch != 2 {
			t.Errorf("coalesced result batch = %d, want 2", res.Batch)
		}
	}
	if dispatches.Load() != 2 || images.Load() != 3 {
		t.Errorf("exec saw %d dispatches / %d images, want 2/3", dispatches.Load(), images.Load())
	}
}

// TestBatcherSubmitCancel: a queued request whose context ends is
// retracted and never executes.
func TestBatcherSubmitCancel(t *testing.T) {
	var dispatches, images atomic.Int64
	clock := newFakeClock()
	b := newTestBatcher(t, Config{SLO: time.Hour}, countingExec(&dispatches, &images))
	b.mu.Lock()
	b.now = clock.Now
	b.mu.Unlock()

	if _, err := b.Submit(context.Background(), 1); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	clock.Set(time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, 1)
		errCh <- err
	}()
	waitFor(t, func() bool { return b.Stats().QueueDepth == 1 }, "submit to queue")
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Submit returned %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return b.Stats().QueueDepth == 0 }, "retraction")
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if dispatches.Load() != 1 {
		t.Errorf("exec saw %d dispatches, want 1 (canceled request never ran)", dispatches.Load())
	}
}

// TestBatcherExecError: an executor failure propagates to every request
// of the dispatch.
func TestBatcherExecError(t *testing.T) {
	boom := errors.New("device on fire")
	b := newTestBatcher(t, Config{}, func(d Dispatch) (time.Duration, any, error) {
		return 0, nil, boom
	})
	res, err := b.Submit(context.Background(), 1)
	if !errors.Is(err, boom) || !errors.Is(res.Err, boom) {
		t.Errorf("Submit = (%+v, %v), want the exec error", res, err)
	}
}

// TestBatcherClose: Close drains, rejects later submits, and is
// idempotent.
func TestBatcherClose(t *testing.T) {
	var dispatches, images atomic.Int64
	b := newTestBatcher(t, Config{}, countingExec(&dispatches, &images))
	if _, err := b.Submit(context.Background(), 1); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := b.Submit(context.Background(), 1); err == nil {
		t.Error("Submit succeeded after Close")
	}
}

// TestBatcherConcurrentSubmits hammers the batcher from many goroutines
// (run under -race in CI): every submit completes and the counters add
// up exactly.
func TestBatcherConcurrentSubmits(t *testing.T) {
	var dispatches, images atomic.Int64
	b := newTestBatcher(t, Config{SLO: 50 * time.Millisecond}, countingExec(&dispatches, &images))
	const n = 64
	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), 1); err == nil {
				ok.Add(1)
			}
		}()
	}
	wg.Wait()
	if ok.Load() != n {
		t.Fatalf("%d/%d submits completed", ok.Load(), n)
	}
	if images.Load() != n {
		t.Errorf("exec saw %d images, want %d", images.Load(), n)
	}
	st := b.Stats()
	if st.Images != n || st.QueueDepth != 0 || st.InFlight != 0 {
		t.Errorf("stats = %+v, want %d images and an idle batcher", st, n)
	}
	var histTotal int64
	for _, c := range st.DispatchHist {
		histTotal += c
	}
	if histTotal != st.Dispatches {
		t.Errorf("histogram total %d != dispatches %d", histTotal, st.Dispatches)
	}
}
