package batching

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// This file is the synthetic-traffic side of the front end: seeded
// arrival generators (Poisson and bursty ON-OFF) plus virtual-time
// simulators that drive a Queue — or the fixed-batch / dispatch-
// immediately baselines — through an arrival trace against a serial
// device whose service times come from the same measured model. No real
// time passes: the simulators are event loops over explicit timestamps,
// so benchmark runs are deterministic given the seed.

// PoissonArrivals generates n single-image arrival offsets (from a zero
// origin, ascending) with exponential inter-arrival gaps at the given
// rate in images per second. The same seed yields the same trace.
func PoissonArrivals(n int, rate float64, seed int64) []time.Duration {
	if n <= 0 || rate <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / rate
		out[i] = durationOf(t)
	}
	return out
}

// OnOffArrivals generates n single-image arrival offsets from a bursty
// ON-OFF source: ON periods emit Poisson arrivals at onRate, OFF
// periods emit nothing; period lengths are exponential with means
// onMean and offMean. The long-run average rate is
// onRate·onMean/(onMean+offMean).
func OnOffArrivals(n int, onRate float64, onMean, offMean time.Duration, seed int64) []time.Duration {
	if n <= 0 || onRate <= 0 || onMean <= 0 || offMean <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, 0, n)
	t := 0.0
	for len(out) < n {
		onEnd := t + rng.ExpFloat64()*onMean.Seconds()
		for len(out) < n {
			gap := rng.ExpFloat64() / onRate
			if t+gap > onEnd {
				t = onEnd
				break
			}
			t += gap
			out = append(out, durationOf(t))
		}
		t += rng.ExpFloat64() * offMean.Seconds()
	}
	return out
}

// SimResult aggregates a simulated serving run over one arrival trace.
type SimResult struct {
	// Policy names the dispatch policy that produced the run.
	Policy string `json:"policy"`
	// Requests and Images count the trace (identical when every request
	// is single-image).
	Requests int `json:"requests"`
	Images   int `json:"images"`
	// Duration is the makespan: first arrival to last completion.
	Duration time.Duration `json:"-"`
	// ImagesPerSec is Images over the makespan.
	ImagesPerSec float64 `json:"images_per_sec"`
	// P50/P99/Max/Mean summarize per-request total latency (arrival to
	// completion).
	P50  time.Duration `json:"-"`
	P99  time.Duration `json:"-"`
	Max  time.Duration `json:"-"`
	Mean time.Duration `json:"-"`
	// SLOViolations counts requests whose total latency exceeded the SLO.
	SLOViolations int `json:"slo_violations"`
	// Dispatches counts device launches; MeanBatch is Images/Dispatches.
	Dispatches int     `json:"dispatches"`
	MeanBatch  float64 `json:"mean_batch"`
	// DispatchHist maps dispatch size -> count.
	DispatchHist map[int]int64 `json:"-"`
}

// SimulateAdaptive runs the auto-batching Queue over the arrival trace
// (offsets from a zero origin, each one single-image request) against a
// serial device whose service time for a batch is the model's estimate.
// cfg.Model supplies both the decisions and the device — the simulation
// measures the policy, not the hardware.
func SimulateAdaptive(cfg Config, arrivals []time.Duration) (SimResult, error) {
	q, err := NewQueue(cfg)
	if err != nil {
		return SimResult{}, err
	}
	base := time.Unix(0, 0)
	lat := make([]time.Duration, len(arrivals))
	deviceFree := base
	// dispatchAt runs the queue's decision loop at now, executing every
	// ready dispatch on the virtual device, and returns the queue's wake
	// time (zero when nothing is left waiting).
	dispatchAt := func(now time.Time) time.Time {
		for {
			d, ok, wake := q.Decide(now, deviceFree)
			if !ok {
				return wake
			}
			start := now
			if deviceFree.After(start) {
				start = deviceFree
			}
			done := start.Add(durationOf(cfg.Model.EstimateLatency(d.Images)))
			deviceFree = done
			for _, r := range d.Requests {
				lat[r.ID] = done.Sub(r.Arrived)
			}
		}
	}

	// Event loop: the next event is either the next arrival or the
	// queue's pending wake time (its SLO last-call, carried over from the
	// previous decision). Decide guarantees wake > the time it was
	// computed at, and a Decide at its own wake time dispatches, so the
	// loop always advances.
	i := 0
	var wake time.Time
	for i < len(arrivals) || q.Requests() > 0 {
		var next time.Time
		switch {
		case q.Requests() == 0:
			next = base.Add(arrivals[i])
		case i < len(arrivals) && base.Add(arrivals[i]).Before(wake):
			next = base.Add(arrivals[i])
		default:
			next = wake
		}
		for i < len(arrivals) && !base.Add(arrivals[i]).After(next) {
			at := base.Add(arrivals[i])
			if err := q.Add(at, Request{ID: uint64(i), Images: 1, Arrived: at}); err != nil {
				return SimResult{}, err
			}
			i++
		}
		wake = dispatchAt(next)
	}
	return summarize("adaptive", arrivals, lat, cfg.SLO, deviceFree.Sub(base), q.dispatches, q.Histogram()), nil
}

// SimulateFixed runs the fixed-batch baseline: wait until exactly batch
// images are queued (or the trace has ended), then dispatch. This is
// the policy a server with a hardcoded batch size implements; it has no
// SLO awareness, so tail latency under light traffic is unbounded by
// anything but the trace end.
func SimulateFixed(model Model, batch int, slo time.Duration, arrivals []time.Duration) (SimResult, error) {
	if batch < 1 {
		return SimResult{}, fmt.Errorf("batching: fixed batch %d < 1", batch)
	}
	base := time.Unix(0, 0)
	lat := make([]time.Duration, len(arrivals))
	deviceFree := base
	var dispatches int64
	hist := make(map[int]int64)
	flush := func(now time.Time, idx []int) {
		if len(idx) == 0 {
			return
		}
		start := now
		if deviceFree.After(start) {
			start = deviceFree
		}
		done := start.Add(durationOf(model.EstimateLatency(len(idx))))
		deviceFree = done
		dispatches++
		hist[len(idx)]++
		for _, id := range idx {
			lat[id] = done.Sub(base.Add(arrivals[id]))
		}
	}
	var pend []int
	for i, off := range arrivals {
		pend = append(pend, i)
		if len(pend) >= batch {
			flush(base.Add(off), pend)
			pend = pend[:0]
		}
	}
	if len(pend) > 0 {
		flush(base.Add(arrivals[len(arrivals)-1]), pend)
	}
	return summarize(fmt.Sprintf("fixed:%d", batch), arrivals, lat, slo, deviceFree.Sub(base), dispatches, hist), nil
}

// SimulateImmediate runs the dispatch-immediately baseline: every
// request launches alone the moment it arrives (batch 1, zero queueing
// delay, minimum device efficiency).
func SimulateImmediate(model Model, slo time.Duration, arrivals []time.Duration) (SimResult, error) {
	res, err := SimulateFixed(model, 1, slo, arrivals)
	if err != nil {
		return SimResult{}, err
	}
	res.Policy = "batch1"
	return res, nil
}

// summarize folds per-request latencies into a SimResult.
func summarize(policy string, arrivals []time.Duration, lat []time.Duration, slo, makespan time.Duration, dispatches int64, hist map[int]int64) SimResult {
	res := SimResult{
		Policy:       policy,
		Requests:     len(arrivals),
		Images:       len(arrivals),
		Duration:     makespan,
		Dispatches:   int(dispatches),
		DispatchHist: hist,
	}
	if len(lat) == 0 {
		return res
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range lat {
		sum += l
		if l > slo {
			res.SLOViolations++
		}
	}
	res.P50 = sorted[len(sorted)/2]
	res.P99 = sorted[(len(sorted)*99)/100]
	res.Max = sorted[len(sorted)-1]
	res.Mean = sum / time.Duration(len(lat))
	if makespan > 0 {
		res.ImagesPerSec = float64(res.Images) / makespan.Seconds()
	}
	if dispatches > 0 {
		res.MeanBatch = float64(res.Images) / float64(dispatches)
	}
	return res
}
