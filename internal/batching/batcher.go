package batching

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Exec runs one dispatched batch and returns its service latency (the
// time the batch occupies the device) plus an arbitrary payload shared
// by every request of the dispatch (e.g. the serving tier's routing
// record). Exec is called from a single goroutine — dispatches execute
// serially, modeling one device lane.
type Exec func(d Dispatch) (service time.Duration, payload any, err error)

// Result is one request's completion record.
type Result struct {
	// Err is the dispatch's execution error, if any; the timing fields
	// are meaningless when it is set.
	Err error
	// Batch is the dispatch size (total images) the request rode in;
	// Requests is how many coalesced requests shared it.
	Batch    int
	Requests int
	// Payload is the Exec payload of the request's dispatch.
	Payload any
	// QueueWait is time from arrival to the dispatch decision.
	QueueWait time.Duration
	// Service is the dispatch's measured execution latency.
	Service time.Duration
	// Total is arrival to (virtual) completion: queue wait, any device
	// backlog, and service.
	Total time.Duration
	// Violated reports Total exceeded the configured SLO.
	Violated bool
}

// Stats is a snapshot of a Batcher's counters for monitoring (/stats).
type Stats struct {
	// QueueDepth is the number of images currently queued.
	QueueDepth int `json:"queue_depth"`
	// InFlight is the number of dispatches decided but not yet executed.
	InFlight int `json:"in_flight"`
	// ArrivalRate is the observed arrival-rate estimate in images/sec.
	ArrivalRate float64 `json:"arrival_rate"`
	// Dispatches and Images count completed dispatch decisions and the
	// images they carried.
	Dispatches int64 `json:"dispatches"`
	Images     int64 `json:"images"`
	// Violations counts results whose total latency exceeded the SLO.
	Violations int64 `json:"violations"`
	// DispatchHist maps dispatch size -> count.
	DispatchHist map[int]int64 `json:"-"`
}

// Batcher is the asynchronous auto-batching front end: it wraps a Queue
// with real arrival timestamps, an SLO timer, and a single executor
// goroutine that runs dispatches serially against a virtual device
// timeline (service latencies are the measured/simulated values the
// executor reports; a dispatch cannot start before its predecessor's
// virtual completion). Safe for concurrent use.
type Batcher struct {
	cfg  Config
	exec Exec
	now  func() time.Time

	mu         sync.Mutex
	cond       *sync.Cond             // signals the executor: work queued or closing
	q          *Queue                 // guarded by mu
	waiters    map[uint64]chan Result // guarded by mu
	nextID     uint64                 // guarded by mu
	execQ      []timedDispatch        // guarded by mu
	inflight   int                    // guarded by mu
	deviceFree time.Time              // guarded by mu
	violations int64                  // guarded by mu
	timer      *time.Timer            // guarded by mu
	timerAt    time.Time              // guarded by mu
	closed     bool                   // guarded by mu
	idle       []chan struct{}        // guarded by mu
}

// timedDispatch stamps a dispatch with its decision time, the moment
// the batch (virtually) reaches the device.
type timedDispatch struct {
	d  Dispatch
	at time.Time
}

// NewBatcher validates cfg and starts the executor goroutine. Call
// Close to drain and stop it.
func NewBatcher(cfg Config, exec Exec) (*Batcher, error) {
	if exec == nil {
		return nil, fmt.Errorf("batching: nil Exec")
	}
	q, err := NewQueue(cfg)
	if err != nil {
		return nil, err
	}
	b := &Batcher{
		cfg:  cfg,
		exec: exec,
		//lint:ioslint-ignore determinism injected clock default; tests substitute a fake by assigning b.now
		now:     time.Now,
		q:       q,
		waiters: make(map[uint64]chan Result),
	}
	b.cond = sync.NewCond(&b.mu)
	//lint:ioslint-ignore goroleak deliberate executor daemon: Close sets closed and broadcasts the cond, and run returns once execQ drains
	go b.run()
	return b, nil
}

// Submit enqueues a request of images images and blocks until its batch
// has been dispatched and executed (or ctx is done, or the batcher is
// closed). A request whose ctx ends while still queued is retracted; a
// request already dispatched runs to completion but the abandoned
// result is discarded.
//
//ioslint:lockorder-allow Batcher.mu the queue decision loop is pure virtual-time arithmetic: the start closure Decide threads into fitFront computes timestamps and never blocks
func (b *Batcher) Submit(ctx context.Context, images int) (Result, error) {
	if images < 1 {
		return Result{}, fmt.Errorf("batching: images %d < 1", images)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Result{}, fmt.Errorf("batching: batcher closed")
	}
	b.nextID++
	id := b.nextID
	now := b.now()
	if err := b.q.Add(now, Request{ID: id, Images: images, Arrived: now}); err != nil {
		b.mu.Unlock()
		return Result{}, err
	}
	ch := make(chan Result, 1) // buffered: delivery never blocks on an abandoned waiter
	b.waiters[id] = ch
	b.decideLocked()
	b.mu.Unlock()

	select {
	case res := <-ch:
		return res, res.Err
	case <-ctx.Done():
		b.mu.Lock()
		b.q.Remove(id) // no-op if already dispatched
		delete(b.waiters, id)
		b.mu.Unlock()
		return Result{}, ctx.Err()
	}
}

// decideLocked runs the queue's decision loop, moving every ready
// dispatch to the executor and (re)arming the SLO timer for a waiting
// queue. Callers hold b.mu.
func (b *Batcher) decideLocked() {
	now := b.now()
	for {
		d, ok, wake := b.q.Decide(now, b.deviceFree)
		if ok {
			b.execQ = append(b.execQ, timedDispatch{d: d, at: now})
			b.inflight++
			b.cond.Signal()
			continue
		}
		b.armTimerLocked(wake)
		return
	}
}

// armTimerLocked points the single SLO timer at wake (zero stops it).
func (b *Batcher) armTimerLocked(wake time.Time) {
	if wake.IsZero() {
		if b.timer != nil {
			b.timer.Stop()
			b.timerAt = time.Time{}
		}
		return
	}
	if b.timerAt.Equal(wake) {
		return
	}
	d := wake.Sub(b.now())
	if d < 0 {
		d = 0
	}
	if b.timer == nil {
		//lint:ioslint-ignore determinism real timer drives flush wake-ups only; queue decisions consume explicit timestamps
		b.timer = time.AfterFunc(d, b.onTimer)
	} else {
		b.timer.Stop()
		b.timer.Reset(d)
	}
	b.timerAt = wake
}

// onTimer fires at the queue's wake time: the SLO says dispatch.
//
//ioslint:lockorder-allow Batcher.mu the queue decision loop is pure virtual-time arithmetic: the start closure Decide threads into fitFront computes timestamps and never blocks
func (b *Batcher) onTimer() {
	b.mu.Lock()
	b.timerAt = time.Time{}
	if !b.closed {
		b.decideLocked()
	}
	b.mu.Unlock()
}

// run is the executor: it serializes dispatch execution and advances
// the virtual device timeline.
//
//ioslint:lockorder-allow Batcher.mu result channels are buffered (size 1) with exactly one send per request ID, so delivery under the lock never blocks; the exec call itself runs outside the critical section
func (b *Batcher) run() {
	b.mu.Lock()
	for {
		for len(b.execQ) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.execQ) == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		td := b.execQ[0]
		b.execQ = b.execQ[1:]
		b.mu.Unlock()

		service, payload, err := b.exec(td.d)

		b.mu.Lock()
		start := td.at
		if b.deviceFree.After(start) {
			start = b.deviceFree
		}
		done := start.Add(service)
		if err == nil {
			b.deviceFree = done
		}
		for _, r := range td.d.Requests {
			res := Result{
				Err:       err,
				Batch:     td.d.Images,
				Requests:  len(td.d.Requests),
				Payload:   payload,
				QueueWait: td.at.Sub(r.Arrived),
				Service:   service,
				Total:     done.Sub(r.Arrived),
			}
			if err == nil && res.Total > b.cfg.SLO {
				res.Violated = true
				b.violations++
			}
			if ch, ok := b.waiters[r.ID]; ok {
				delete(b.waiters, r.ID)
				ch <- res
			}
		}
		b.inflight--
		if b.inflight == 0 && len(b.execQ) == 0 {
			for _, ch := range b.idle {
				close(ch)
			}
			b.idle = nil
		}
	}
}

// Drain flushes every queued request into immediate dispatches and
// waits until all in-flight work has executed (or ctx is done). New
// submissions remain accepted; call Close for a terminal drain.
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	now := b.now()
	for _, d := range b.q.Flush() {
		b.execQ = append(b.execQ, timedDispatch{d: d, at: now})
		b.inflight++
	}
	b.cond.Signal()
	b.armTimerLocked(time.Time{})
	ch := make(chan struct{})
	if b.inflight == 0 && len(b.execQ) == 0 {
		close(ch)
	} else {
		b.idle = append(b.idle, ch)
	}
	b.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the queue, waits for in-flight dispatches, and stops the
// executor. Subsequent Submits fail; Close is idempotent.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	//lint:ioslint-ignore ctxdiscipline Close is terminal and ctx-free by contract; cancellable shutdown goes through Drain
	err := b.Drain(context.Background())
	b.mu.Lock()
	if b.timer != nil {
		b.timer.Stop()
	}
	b.cond.Broadcast() // wake the executor so it observes closed+empty
	b.mu.Unlock()
	return err
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		QueueDepth:   b.q.Len(),
		InFlight:     b.inflight,
		ArrivalRate:  b.q.Rate(),
		Dispatches:   b.q.dispatches,
		Images:       b.q.dispatched,
		Violations:   b.violations,
		DispatchHist: b.q.Histogram(),
	}
}

// Histogram returns the dispatch-size histogram (size -> dispatches),
// the input plan.Plan.SuggestBatches wants for picking traffic-matched
// sweep points.
func (b *Batcher) Histogram() map[int]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.q.Histogram()
}
