package batching

import (
	"reflect"
	"testing"
	"time"

	"ios/internal/plan"
)

// syntheticBatchingPlan builds a schedule-free *plan.Plan with an
// analytic measured matrix (diagonal grows sub-linearly, penalty grows
// with batch distance) — enough for the model-query methods the
// batching tier consumes.
func syntheticBatchingPlan() *plan.Plan {
	batches := []int{1, 8, 16}
	p := &plan.Plan{Model: "synthetic", Device: "dev"}
	diag := func(b int) float64 { return 1e-3 + 1e-4*float64(b) }
	p.Points = make([]plan.Point, len(batches))
	p.Latency = make([][]float64, len(batches))
	for i, bi := range batches {
		p.Points[i] = plan.Point{Batch: bi, Latency: diag(bi)}
		p.Latency[i] = make([]float64, len(batches))
		for j, bj := range batches {
			d := float64(bi - bj)
			if d < 0 {
				d = -d
			}
			p.Latency[i][j] = diag(bj) * (1 + 0.004*d)
		}
	}
	return p
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(500, 1000, 42)
	b := PoissonArrivals(500, 1000, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different Poisson traces")
	}
	if c := PoissonArrivals(500, 1000, 43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical Poisson traces")
	}
	if len(a) != 500 {
		t.Fatalf("trace length = %d, want 500", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not ascending at %d: %v < %v", i, a[i], a[i-1])
		}
	}
	// 500 arrivals at 1000/s should span roughly 0.5s.
	span := a[len(a)-1].Seconds()
	if span < 0.3 || span > 0.8 {
		t.Errorf("500 arrivals at 1000/s span %.3fs, want ~0.5s", span)
	}
	if PoissonArrivals(0, 1000, 1) != nil || PoissonArrivals(5, 0, 1) != nil {
		t.Error("degenerate Poisson inputs should return nil")
	}
}

func TestOnOffArrivalsDeterministic(t *testing.T) {
	on, off := 50*time.Millisecond, 150*time.Millisecond
	a := OnOffArrivals(500, 4000, on, off, 7)
	b := OnOffArrivals(500, 4000, on, off, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different ON-OFF traces")
	}
	if len(a) != 500 {
		t.Fatalf("trace length = %d, want 500", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not ascending at %d", i)
		}
	}
	// Long-run rate ≈ 4000·50/(50+150) = 1000/s, so 500 arrivals span
	// roughly 0.5s — allow wide slack, burst structure is noisy.
	span := a[len(a)-1].Seconds()
	if span < 0.15 || span > 2 {
		t.Errorf("ON-OFF span %.3fs implausible for mean rate 1000/s", span)
	}
	if OnOffArrivals(5, 4000, 0, off, 7) != nil {
		t.Error("degenerate ON-OFF inputs should return nil")
	}
}

func TestSimulateFixedBatches(t *testing.T) {
	m := testModel()
	arrivals := make([]time.Duration, 10)
	for i := range arrivals {
		arrivals[i] = time.Duration(i) * time.Millisecond
	}
	res, err := SimulateFixed(m, 4, 20*time.Millisecond, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatches != 3 {
		t.Errorf("dispatches = %d, want 3 (4+4+2)", res.Dispatches)
	}
	if res.DispatchHist[4] != 2 || res.DispatchHist[2] != 1 {
		t.Errorf("histogram = %v, want map[2:1 4:2]", res.DispatchHist)
	}
	if res.Requests != 10 || res.Images != 10 {
		t.Errorf("requests/images = %d/%d, want 10/10", res.Requests, res.Images)
	}
	if _, err := SimulateFixed(m, 0, time.Second, arrivals); err == nil {
		t.Error("SimulateFixed accepted batch 0")
	}
}

func TestSimulateImmediate(t *testing.T) {
	m := testModel()
	arrivals := PoissonArrivals(200, 500, 1) // well under batch-1 capacity
	res, err := SimulateImmediate(m, 20*time.Millisecond, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "batch1" || res.Dispatches != 200 || res.MeanBatch != 1 {
		t.Errorf("result = %+v, want 200 singleton dispatches", res)
	}
	// Under light load every request's latency is at least the batch-1
	// service time and usually not much more.
	if res.P50 < durationOf(m.EstimateLatency(1)) {
		t.Errorf("p50 %v below the batch-1 service time", res.P50)
	}
}

// TestSimulateAdaptiveDeterministic: the virtual-time simulation is a
// pure function of (config, trace).
func TestSimulateAdaptiveDeterministic(t *testing.T) {
	cfg := Config{Model: testModel(), SLO: 20 * time.Millisecond}
	arrivals := PoissonArrivals(1000, 2000, 11)
	a, err := SimulateAdaptive(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateAdaptive(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same trace produced different results:\n%+v\n%+v", a, b)
	}
	if a.Requests != 1000 || a.Images != 1000 {
		t.Errorf("requests/images = %d/%d, want 1000/1000", a.Requests, a.Images)
	}
}

// TestSimulateAdaptiveBeatsBatch1 is the package-level version of the
// benchmark's built-in assertion: under Poisson traffic offered above
// the batch-1 capacity of the model, the adaptive policy both sustains
// higher throughput than dispatch-immediately AND keeps p99 within the
// SLO, because it rides the model's batching amortization.
func TestSimulateAdaptiveBeatsBatch1(t *testing.T) {
	m := testModel() // batch-1 capacity = 1/L(1) ≈ 909 img/s
	slo := 20 * time.Millisecond
	arrivals := PoissonArrivals(2000, 2000, 3) // offered 2000 img/s

	adaptive, err := SimulateAdaptive(Config{Model: m, SLO: slo}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	batch1, err := SimulateImmediate(m, slo, arrivals)
	if err != nil {
		t.Fatal(err)
	}

	if adaptive.ImagesPerSec <= batch1.ImagesPerSec {
		t.Errorf("adaptive %.0f img/s did not beat batch1 %.0f img/s",
			adaptive.ImagesPerSec, batch1.ImagesPerSec)
	}
	if adaptive.P99 > slo {
		t.Errorf("adaptive p99 %v exceeds SLO %v", adaptive.P99, slo)
	}
	if adaptive.MeanBatch <= 1.5 {
		t.Errorf("adaptive mean batch %.2f — the policy never coalesced", adaptive.MeanBatch)
	}
	// The saturated batch-1 device has unbounded queueing delay.
	if batch1.P99 <= adaptive.P99 {
		t.Errorf("batch1 p99 %v unexpectedly at or below adaptive p99 %v", batch1.P99, adaptive.P99)
	}
}

// TestSimulateAdaptiveLightLoad: far below capacity there is nothing to
// gain from batching the SLO would allow to be missed — every request
// still completes within the SLO.
func TestSimulateAdaptiveLightLoad(t *testing.T) {
	cfg := Config{Model: testModel(), SLO: 20 * time.Millisecond}
	arrivals := PoissonArrivals(300, 100, 5) // 100 img/s, capacity ~909
	res, err := SimulateAdaptive(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOViolations != 0 {
		t.Errorf("light load produced %d SLO violations, want 0", res.SLOViolations)
	}
	if res.Images != 300 {
		t.Errorf("images = %d, want all 300 served", res.Images)
	}
}

// TestSimulateHistogramFeedsSuggestBatches closes the loop the front
// end exists for: the adaptive run's dispatch histogram is a valid
// SuggestBatches input and yields sweep points inside the observed
// dispatch range.
func TestSimulateHistogramFeedsSuggestBatches(t *testing.T) {
	cfg := Config{Model: testModel(), SLO: 20 * time.Millisecond}
	res, err := SimulateAdaptive(cfg, PoissonArrivals(2000, 2000, 9))
	if err != nil {
		t.Fatal(err)
	}
	weights := make(map[int]float64, len(res.DispatchHist))
	lo, hi := 1<<30, 0
	for b, c := range res.DispatchHist {
		weights[b] = float64(c)
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	p := syntheticBatchingPlan()
	got := p.SuggestBatches(weights, 3)
	if len(got) == 0 {
		t.Fatal("SuggestBatches returned nothing from a live histogram")
	}
	for _, b := range got {
		if b < lo || b > hi {
			t.Errorf("suggested batch %d outside observed dispatch range [%d, %d]", b, lo, hi)
		}
	}
}
