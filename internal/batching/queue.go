//ioslint:deterministic

// Package batching is the traffic-adaptive auto-batching front end:
// it coalesces a stream of single-image (or small-batch) inference
// requests into batches under a per-request latency SLO, choosing every
// dispatch size from a batch-specialization plan's *measured*
// performance model (internal/plan's cross-batch latency matrix and
// per-batch throughput) instead of hardcoded thresholds. At each
// decision point the queue compares "dispatch the current queue now"
// against "wait for more arrivals and dispatch bigger": waiting wins
// only when the model says the bigger batch's amortized per-image
// latency is strictly better AND the expected wait — derived from the
// observed arrival rate — still meets the oldest queued request's SLO.
//
// The package splits into a deterministic core and an asynchronous
// wrapper: Queue is a pure state machine over (arrivals, explicit
// timestamps) with no goroutines, timers, or sleeps — unit tests and
// the virtual-time traffic simulator (Simulate*) drive it with a fake
// clock — while Batcher wraps a Queue with real timers, a serialized
// executor, and a virtual device timeline for the serving tier.
package batching

import (
	"fmt"
	"time"

	"ios/internal/plan"
)

// Model is the measured performance model dispatch decisions consult.
// *plan.Plan implements it; tests substitute analytic fakes.
type Model interface {
	// Batches returns the model's planned batch sizes in ascending
	// order — the dispatch sizes with first-class measured data.
	Batches() []int
	// EstimateLatency returns the latency in seconds of dispatching a
	// batch of the given size, derived from measurements (see
	// plan.Plan.EstimateLatency).
	EstimateLatency(batch int) float64
}

// plan.Plan must keep satisfying Model.
var _ Model = (*plan.Plan)(nil)

// Config configures a Queue (and, via Batcher, the serving front end).
type Config struct {
	// Model is the measured performance model (required).
	Model Model
	// SLO is the per-request latency target: the batcher never chooses
	// to wait past the point where the oldest queued request could still
	// be served within it (required, > 0). Requests can still miss the
	// SLO when the device is backlogged — violations are counted, not
	// masked.
	SLO time.Duration
	// MaxBatch caps dispatch sizes. 0 means the model's largest planned
	// batch — beyond it the model is extrapolating and bigger dispatches
	// are unquantified bets.
	MaxBatch int
	// RateAlpha is the EWMA weight of each new arrival-gap observation
	// in the arrival-rate estimate (0 < RateAlpha <= 1; 0 means the
	// default 0.2). Smaller values smooth bursts; larger track them.
	RateAlpha float64
}

// DefaultRateAlpha is the arrival-rate EWMA weight a zero
// Config.RateAlpha selects.
const DefaultRateAlpha = 0.2

// Request is one queued inference request.
type Request struct {
	// ID identifies the request to its submitter.
	ID uint64
	// Images is the request's own batch contribution (>= 1; a plain
	// single-image request is 1).
	Images int
	// Arrived is when the request entered the queue.
	Arrived time.Time
}

// Dispatch is one decided batch: the coalesced requests and the model
// estimates the decision used.
type Dispatch struct {
	// Requests are the coalesced requests, oldest first.
	Requests []Request
	// Images is the dispatch's total batch size.
	Images int
	// EstLatency is the model's latency estimate for this batch size —
	// the figure the decision compared, not a measurement of this run.
	EstLatency time.Duration
}

// Queue is the deterministic auto-batching decision core: a state
// machine over explicit timestamps with no internal clock, goroutines,
// or timers. It is NOT safe for concurrent use — Batcher (or a
// simulator) serializes access and owns real time.
type Queue struct {
	model    Model
	slo      time.Duration
	maxBatch int
	alpha    float64
	points   []int // ascending planned batch sizes

	pending []Request
	images  int // total queued images

	// Arrival-rate EWMA over inter-arrival gaps. burst accumulates
	// images that share lastArrival's timestamp until a measurable gap
	// converts them into a rate observation.
	rate        float64 // images per second; 0 = unknown
	lastArrival time.Time
	burst       int
	haveArrival bool

	dispatches int64
	dispatched int64
	hist       map[int]int64
}

// NewQueue validates the config and returns an empty queue.
func NewQueue(cfg Config) (*Queue, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("batching: Config.Model is required")
	}
	if cfg.SLO <= 0 {
		return nil, fmt.Errorf("batching: Config.SLO must be positive, got %v", cfg.SLO)
	}
	points := cfg.Model.Batches()
	if len(points) == 0 {
		return nil, fmt.Errorf("batching: model has no planned batches")
	}
	for i, b := range points {
		if b < 1 || (i > 0 && b <= points[i-1]) {
			return nil, fmt.Errorf("batching: model batches %v not ascending positive", points)
		}
		if lat := cfg.Model.EstimateLatency(b); lat <= 0 {
			return nil, fmt.Errorf("batching: model latency at batch %d is %v (must be positive)", b, lat)
		}
	}
	maxBatch := cfg.MaxBatch
	if maxBatch == 0 {
		maxBatch = points[len(points)-1]
	}
	if maxBatch < 1 {
		return nil, fmt.Errorf("batching: MaxBatch %d invalid", cfg.MaxBatch)
	}
	alpha := cfg.RateAlpha
	if alpha == 0 {
		alpha = DefaultRateAlpha
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("batching: RateAlpha %v outside (0, 1]", cfg.RateAlpha)
	}
	return &Queue{
		model:    cfg.Model,
		slo:      cfg.SLO,
		maxBatch: maxBatch,
		alpha:    alpha,
		points:   points,
		hist:     make(map[int]int64),
	}, nil
}

// Add enqueues a request at the given time and feeds the arrival-rate
// estimator. Call Decide afterwards — Add itself never dispatches.
func (q *Queue) Add(now time.Time, r Request) error {
	if r.Images < 1 {
		return fmt.Errorf("batching: request images %d < 1", r.Images)
	}
	if r.Arrived.IsZero() {
		r.Arrived = now
	}
	switch {
	case !q.haveArrival:
		q.haveArrival = true
		q.lastArrival = now
		q.burst = r.Images
	case !now.After(q.lastArrival):
		// Same (or non-monotone) timestamp: fold into the current burst;
		// the gap to the next distinct arrival prices the whole burst.
		q.burst += r.Images
	default:
		gap := now.Sub(q.lastArrival).Seconds()
		inst := float64(q.burst) / gap
		if q.rate == 0 {
			q.rate = inst
		} else {
			q.rate = q.alpha*inst + (1-q.alpha)*q.rate
		}
		q.lastArrival = now
		q.burst = r.Images
	}
	q.pending = append(q.pending, r)
	q.images += r.Images
	return nil
}

// Remove retracts a still-queued request (e.g. its client went away
// before dispatch). It reports whether the request was found.
func (q *Queue) Remove(id uint64) bool {
	for i, r := range q.pending {
		if r.ID == id {
			q.images -= r.Images
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of queued images.
func (q *Queue) Len() int { return q.images }

// Requests returns the number of queued requests.
func (q *Queue) Requests() int { return len(q.pending) }

// Rate returns the current arrival-rate estimate in images per second
// (0 until two gapped arrivals have been observed).
func (q *Queue) Rate() float64 { return q.rate }

// lat returns the model latency for a batch size as a float of seconds.
func (q *Queue) lat(batch int) float64 { return q.model.EstimateLatency(batch) }

// frontSize returns how many images the next dispatch would carry:
// requests are atomic, so it takes whole requests from the front while
// staying within MaxBatch (always at least the first request).
func (q *Queue) frontSize() int {
	size := 0
	for i, r := range q.pending {
		if i > 0 && size+r.Images > q.maxBatch {
			break
		}
		size += r.Images
	}
	return size
}

// Decide evaluates the queue at the given time against the measured
// model. busyUntil is the device's virtual free time (zero or past =
// idle): a dispatch decided now cannot start executing before it, which
// shrinks the SLO headroom available for waiting.
//
// It returns either a Dispatch (dispatch=true; the dispatched requests
// are removed from the queue — call Decide again, more may be ready) or
// a wake time (dispatch=false): the caller must re-Decide at that time,
// or earlier on any arrival. A zero wake time means the queue is empty.
//
// The decision rule, entirely in terms of the model's measurements and
// the observed arrival rate λ:
//
//	q      = images the front dispatch would carry
//	L(b)   = model latency at batch b
//	d      = oldest request's arrival + SLO  (its deadline)
//	wait(b) = (b − q)/λ            (expected time to grow the queue to b)
//
// Waiting for a planned batch b > q is eligible iff the amortized
// per-image latency strictly improves (L(b)/b < L(q)/q) and the oldest
// request still meets its SLO after the wait (start(now+wait(b)) + L(b)
// <= d, where start accounts for busyUntil). If any eligible b exists,
// the queue waits — but never past d − L(q) (adjusted for busyUntil),
// the last instant the current queue can dispatch and still make its
// deadline. With no eligible target (including λ still unknown) it
// dispatches immediately.
func (q *Queue) Decide(now time.Time, busyUntil time.Time) (d Dispatch, dispatch bool, wake time.Time) {
	if len(q.pending) == 0 {
		return Dispatch{}, false, time.Time{}
	}
	size := q.frontSize()
	Lq := q.lat(size)
	deadline := q.pending[0].Arrived.Add(q.slo)
	// start(t): when a dispatch decided at t begins executing.
	start := func(t time.Time) time.Time {
		if busyUntil.After(t) {
			return busyUntil
		}
		return t
	}

	// The last moment the current queue can go and still meet its SLO.
	// If that moment is already past (or the device is so backlogged no
	// moment works), waiting cannot help anything — dispatch, shrunk to
	// the largest front prefix that still meets the oldest deadline
	// (a late arrival can grow L(queue) past the remaining headroom;
	// leaving the newest requests queued keeps the oldest inside its
	// SLO, and their own later deadlines get their own decisions).
	lastCall := deadline.Add(-durationOf(Lq))
	if !lastCall.After(now) || start(now).Add(durationOf(Lq)).After(deadline) {
		size, Lq = q.fitFront(now, start, deadline)
		return q.pop(size, Lq), true, time.Time{}
	}

	target := 0
	if q.rate > 0 && size < q.maxBatch {
		perImage := Lq / float64(size)
		for _, b := range q.points {
			if b <= size || b > q.maxBatch {
				continue
			}
			Lb := q.lat(b)
			if Lb/float64(b) >= perImage {
				continue // bigger batch does not amortize better
			}
			wait := time.Duration(float64(b-size) / q.rate * float64(time.Second))
			if start(now.Add(wait)).Add(durationOf(Lb)).After(deadline) {
				continue // expected wait would blow the oldest SLO
			}
			target = b // keep the largest eligible target
		}
	}
	if target == 0 {
		return q.pop(size, Lq), true, time.Time{}
	}
	return Dispatch{}, false, lastCall
}

// fitFront sizes a deadline-pressed dispatch: the largest whole-request
// front prefix (within MaxBatch) whose model latency still lets the
// oldest request meet its deadline when started now. When even the
// first request alone is late, it falls back to the full front — the
// oldest SLO is lost either way, so throughput wins.
func (q *Queue) fitFront(now time.Time, start func(time.Time) time.Time, deadline time.Time) (int, float64) {
	best, bestLat := 0, 0.0
	sum := 0
	for i, r := range q.pending {
		if i > 0 && sum+r.Images > q.maxBatch {
			break
		}
		sum += r.Images
		if lat := q.lat(sum); !start(now).Add(durationOf(lat)).After(deadline) {
			best, bestLat = sum, lat
		}
	}
	if best == 0 {
		full := q.frontSize()
		return full, q.lat(full)
	}
	return best, bestLat
}

// Flush drains the whole queue into immediate dispatches of at most
// MaxBatch images each (shutdown/drain path: SLO and throughput
// considerations no longer apply, every queued request must go).
func (q *Queue) Flush() []Dispatch {
	var out []Dispatch
	for len(q.pending) > 0 {
		size := q.frontSize()
		out = append(out, q.pop(size, q.lat(size)))
	}
	return out
}

// pop removes the front requests covering size images and records the
// dispatch in the stats.
func (q *Queue) pop(size int, lat float64) Dispatch {
	n, got := 0, 0
	for n < len(q.pending) && got < size {
		got += q.pending[n].Images
		n++
	}
	reqs := make([]Request, n)
	copy(reqs, q.pending[:n])
	q.pending = append(q.pending[:0], q.pending[n:]...)
	q.images -= got
	q.dispatches++
	q.dispatched += int64(got)
	q.hist[got]++
	return Dispatch{Requests: reqs, Images: got, EstLatency: durationOf(lat)}
}

// Histogram returns a copy of the dispatch-size histogram: how many
// dispatches carried each image count. Feed it to
// plan.Plan.SuggestBatches to pick sweep points for the traffic
// actually observed.
func (q *Queue) Histogram() map[int]int64 {
	out := make(map[int]int64, len(q.hist))
	for k, v := range q.hist {
		out[k] = v
	}
	return out
}

// durationOf converts seconds to a time.Duration.
func durationOf(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
