package baseline

import (
	"testing"

	"ios/internal/gpusim"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/schedule"
)

func TestSequentialIsValidAndSerial(t *testing.T) {
	g := models.Figure2Block(1)
	s, err := Sequential(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, st := range s.Stages {
		if len(st.Groups) != 1 {
			t.Errorf("sequential stage has %d groups", len(st.Groups))
		}
		if st.Strategy != schedule.Concurrent {
			t.Error("sequential stage strategy wrong")
		}
	}
}

func TestPerOpSequential(t *testing.T) {
	g := models.Figure2Block(1)
	s, err := PerOpSequential(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.NumStages(), len(g.SchedulableNodes()); got != want {
		t.Errorf("per-op stages = %d, want %d", got, want)
	}
	// Per-op sync makes it at least as slow as the stream form.
	prof := profile.New(gpusim.TeslaV100)
	perOp, err := prof.MeasureSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Sequential(g)
	if err != nil {
		t.Fatal(err)
	}
	streamLat, err := prof.MeasureSchedule(stream)
	if err != nil {
		t.Fatal(err)
	}
	if perOp < streamLat {
		t.Errorf("per-op sequential (%g) faster than stream sequential (%g)", perOp, streamLat)
	}
}

func TestGreedyStageStructure(t *testing.T) {
	g := models.Figure2Block(1)
	s, err := Greedy(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 2's greedy: {a, c, d}, {b}, {concat}.
	if s.NumStages() != 3 {
		t.Fatalf("greedy stages = %d, want 3", s.NumStages())
	}
	if got := s.Stages[0].NumOps(); got != 3 {
		t.Errorf("first greedy stage ops = %d, want 3", got)
	}
	for _, grp := range s.Stages[0].Groups {
		if len(grp) != 1 {
			t.Error("ready ops must be singleton groups")
		}
	}
}

func TestGreedyOnAllBenchmarks(t *testing.T) {
	for _, b := range models.Benchmarks() {
		g := b(1)
		s, err := Greedy(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

func TestSequentialOnAllBenchmarks(t *testing.T) {
	for _, b := range models.Benchmarks() {
		g := b(1)
		s, err := Sequential(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}
