// Package baseline implements the two non-IOS schedules the paper compares
// against in Section 6.1: the sequential schedule (operators one-by-one in
// topological order, i.e. what cuDNN-based frameworks execute) and the
// greedy schedule (Tang et al.'s Graphi-style policy: put every operator
// whose predecessors have completed into the current stage, repeat).
package baseline

import (
	"ios/internal/graph"
	"ios/internal/schedule"
)

// Sequential returns the paper's sequential schedule: "executes the
// operator one-by-one according to certain topological ordering". On a
// real engine this is a single CUDA stream issuing kernels back-to-back,
// so per block it is one stage whose single group lists the block's
// operators in topological order, with stage barriers only at block
// boundaries.
func Sequential(g *graph.Graph) (*schedule.Schedule, error) {
	return StreamSequential(g)
}

// PerOpSequential returns the fully synchronized sequential schedule (one
// single-operator stage per operator). It exists to quantify barrier
// overhead; the paper's baseline is the stream form.
func PerOpSequential(g *graph.Graph) (*schedule.Schedule, error) {
	s := &schedule.Schedule{Graph: g}
	for _, n := range g.SchedulableNodes() {
		s.Stages = append(s.Stages, schedule.Stage{
			Strategy: schedule.Concurrent,
			Groups:   [][]*graph.Node{{n}},
		})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// StreamSequential returns the stream-style sequential schedule (also used
// by the framework engines of Section 6.2): per block, a single stage
// whose one group issues the block's operators back-to-back on one CUDA
// stream with no intermediate synchronization.
func StreamSequential(g *graph.Graph) (*schedule.Schedule, error) {
	blocks, err := g.Partition(0)
	if err != nil {
		return nil, err
	}
	s := &schedule.Schedule{Graph: g}
	for _, b := range blocks {
		nodes := make([]*graph.Node, len(b.Nodes))
		copy(nodes, b.Nodes)
		s.Stages = append(s.Stages, schedule.Stage{
			Strategy: schedule.Concurrent,
			Groups:   [][]*graph.Node{nodes},
		})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Greedy returns the greedy schedule: repeatedly collect all operators
// whose predecessors are already scheduled into one concurrent stage
// ("executes all available CNN operators whenever possible"). Each ready
// operator forms its own group — ready operators are mutually independent
// by construction.
func Greedy(g *graph.Graph) (*schedule.Schedule, error) {
	s := &schedule.Schedule{Graph: g}
	sched := g.SchedulableNodes()
	done := make(map[*graph.Node]bool, len(sched))
	remaining := len(sched)
	for remaining > 0 {
		var ready []*graph.Node
		for _, n := range sched {
			if done[n] {
				continue
			}
			ok := true
			for _, p := range n.Inputs {
				if p.Op.Kind != graph.OpInput && !done[p] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, n)
			}
		}
		if len(ready) == 0 {
			panic("baseline: greedy scheduler stuck (graph not a DAG?)")
		}
		groups := make([][]*graph.Node, len(ready))
		for i, n := range ready {
			groups[i] = []*graph.Node{n}
			done[n] = true
		}
		remaining -= len(ready)
		s.Stages = append(s.Stages, schedule.Stage{Strategy: schedule.Concurrent, Groups: groups})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
