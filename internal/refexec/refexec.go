// Package refexec executes computation graphs and schedules over real
// tensors on the CPU. It is the correctness oracle of the repository: a
// schedule is executed stage by stage, with each stage's groups running on
// separate goroutines (the CPU analogue of CUDA streams) and merge stages
// executing the actual stacked-and-padded kernel, and the result is
// compared bit-for-bit against plain sequential execution. This proves the
// two IOS transformations — concurrent execution and operator merge — are
// semantics-preserving on real data, something the latency simulator
// cannot establish.
package refexec

import (
	"fmt"
	"sync"

	"ios/internal/graph"
	"ios/internal/profile"
	"ios/internal/schedule"
	"ios/internal/tensor"
)

// Weights holds deterministic parameters for every parameterized node of a
// graph, generated from a base seed so executions are reproducible.
type Weights struct {
	// conv maps node ID to its filter bank (depthwise bank for SepConv).
	conv map[int]*tensor.ConvWeights
	// pw maps SepConv node ID to its pointwise bank.
	pw map[int]*tensor.ConvWeights
}

// GenerateWeights creates pseudo-random weights for g derived from seed.
func GenerateWeights(g *graph.Graph, seed int64) *Weights {
	w := &Weights{conv: make(map[int]*tensor.ConvWeights), pw: make(map[int]*tensor.ConvWeights)}
	for _, n := range g.Nodes {
		nodeSeed := seed*1000003 + int64(n.ID)
		switch n.Op.Kind {
		case graph.OpConv:
			in := n.Inputs[0].Output
			w.conv[n.ID] = tensor.RandomConvWeights(n.Op.OutChannels, in.C/n.Op.Groups, n.Op.KernelH, n.Op.KernelW, nodeSeed)
		case graph.OpSepConv:
			in := n.Inputs[0].Output
			w.conv[n.ID] = tensor.RandomConvWeights(in.C, 1, n.Op.KernelH, n.Op.KernelW, nodeSeed)
			w.pw[n.ID] = tensor.RandomConvWeights(n.Op.OutChannels, in.C, 1, 1, nodeSeed+1)
		case graph.OpMatmul:
			in := n.Inputs[0].Output
			w.conv[n.ID] = tensor.RandomConvWeights(n.Op.OutFeatures, in.C*in.H*in.W, 1, 1, nodeSeed)
		}
	}
	return w
}

// Env is one execution's tensor environment: node ID -> output tensor.
type Env map[int]*tensor.Tensor

func (e Env) get(id int) (*tensor.Tensor, bool) {
	t, ok := e[id]
	return t, ok
}

// envReader abstracts tensor lookup so concurrent groups can read through
// a private overlay without mutating the shared environment.
type envReader interface {
	get(id int) (*tensor.Tensor, bool)
}

// overlay reads the group-local map first, then the shared base.
type overlay struct {
	base, local Env
}

func (o overlay) get(id int) (*tensor.Tensor, bool) {
	if t, ok := o.local[id]; ok {
		return t, true
	}
	return o.base.get(id)
}

// RunNode executes a single node given its input tensors in env.
func RunNode(n *graph.Node, w *Weights, env envReader) (*tensor.Tensor, error) {
	ins := make([]*tensor.Tensor, len(n.Inputs))
	for i, p := range n.Inputs {
		t, ok := env.get(p.ID)
		if !ok {
			return nil, fmt.Errorf("refexec: node %q input %q not computed", n.Name, p.Name)
		}
		ins[i] = t
	}
	op := n.Op
	switch op.Kind {
	case graph.OpConv:
		return tensor.Conv2D(ins[0], w.conv[n.ID], op.StrideH, op.StrideW, op.PadH, op.PadW, op.Groups, op.Act)
	case graph.OpSepConv:
		return tensor.SepConv(ins, w.conv[n.ID], w.pw[n.ID], op.StrideH, op.StrideW, op.PadH, op.PadW, op.Act)
	case graph.OpPool:
		return tensor.Pool(ins[0], op.Pool, op.KernelH, op.StrideH, op.StrideW, op.PadH, op.PadW)
	case graph.OpGlobalPool:
		return tensor.GlobalAvgPool(ins[0]), nil
	case graph.OpMatmul:
		return tensor.Matmul(ins[0], w.conv[n.ID])
	case graph.OpConcat:
		return tensor.Concat(ins)
	case graph.OpAdd:
		return tensor.Add(ins)
	case graph.OpReLU:
		return tensor.ReLU(ins[0]), nil
	case graph.OpIdentity:
		return ins[0].Clone(), nil
	default:
		return nil, fmt.Errorf("refexec: cannot execute %v", op.Kind)
	}
}

// RunSequential executes the whole graph in topological order and returns
// the environment with every node's output.
func RunSequential(g *graph.Graph, w *Weights, inputs map[string]*tensor.Tensor) (Env, error) {
	env := make(Env, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Op.Kind == graph.OpInput {
			t, ok := inputs[n.Name]
			if !ok {
				return nil, fmt.Errorf("refexec: missing input tensor %q", n.Name)
			}
			if t.Shape != n.Output {
				return nil, fmt.Errorf("refexec: input %q shape %v, want %v", n.Name, t.Shape, n.Output)
			}
			env[n.ID] = t
			continue
		}
		out, err := RunNode(n, w, env)
		if err != nil {
			return nil, err
		}
		env[n.ID] = out
	}
	return env, nil
}

// RunSchedule executes a schedule stage by stage: concurrent stages run
// their groups on separate goroutines; merge stages execute one stacked
// convolution with padded kernels and split the output.
func RunSchedule(s *schedule.Schedule, w *Weights, inputs map[string]*tensor.Tensor) (Env, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	env := make(Env, len(s.Graph.Nodes))
	for _, n := range s.Graph.Nodes {
		if n.Op.Kind == graph.OpInput {
			t, ok := inputs[n.Name]
			if !ok {
				return nil, fmt.Errorf("refexec: missing input tensor %q", n.Name)
			}
			env[n.ID] = t
		}
	}
	for si, st := range s.Stages {
		if st.Strategy == schedule.Merge {
			if err := runMergeStage(st, w, env); err != nil {
				return nil, fmt.Errorf("refexec: stage %d: %w", si+1, err)
			}
			continue
		}
		// Each group runs on its own goroutine over a private overlay of
		// the (now read-only) environment: schedule validation guarantees
		// that same-stage dependencies never cross groups, so groups
		// only read earlier-stage tensors plus their own outputs. Group
		// results merge into env at the stage barrier.
		var wg sync.WaitGroup
		errs := make([]error, len(st.Groups))
		outs := make([]Env, len(st.Groups))
		for gi, grp := range st.Groups {
			wg.Add(1)
			go func(gi int, grp []*graph.Node) {
				defer wg.Done()
				local := make(Env, len(grp))
				for _, n := range grp {
					out, err := RunNode(n, w, overlay{base: env, local: local})
					if err != nil {
						errs[gi] = err
						return
					}
					local[n.ID] = out
				}
				outs[gi] = local
			}(gi, grp)
		}
		wg.Wait()
		for gi, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("refexec: stage %d group %d: %w", si+1, gi+1, err)
			}
		}
		for _, local := range outs {
			for id, t := range local {
				env[id] = t
			}
		}
	}
	return env, nil
}

// runMergeStage executes an operator-merge stage: stack the (padded)
// filter banks, run one convolution, split the result back into the
// original operators' outputs.
func runMergeStage(st schedule.Stage, w *Weights, env Env) error {
	ops := st.Ops()
	if !profile.CanMerge(ops) {
		return fmt.Errorf("merge stage operators are not merge-eligible")
	}
	maxKH, maxKW := 0, 0
	for _, n := range ops {
		if n.Op.KernelH > maxKH {
			maxKH = n.Op.KernelH
		}
		if n.Op.KernelW > maxKW {
			maxKW = n.Op.KernelW
		}
	}
	banks := make([]*tensor.ConvWeights, len(ops))
	channels := make([]int, len(ops))
	for i, n := range ops {
		padded, err := w.conv[n.ID].PadTo(maxKH, maxKW)
		if err != nil {
			return err
		}
		banks[i] = padded
		channels[i] = n.Op.OutChannels
	}
	stacked, err := tensor.StackConvWeights(banks)
	if err != nil {
		return err
	}
	in, ok := env[ops[0].Inputs[0].ID]
	if !ok {
		return fmt.Errorf("merge stage input %q not computed", ops[0].Inputs[0].Name)
	}
	merged, err := tensor.Conv2D(in, stacked,
		ops[0].Op.StrideH, ops[0].Op.StrideW, (maxKH-1)/2, (maxKW-1)/2, 1, ops[0].Op.Act)
	if err != nil {
		return err
	}
	parts, err := tensor.SplitChannels(merged, channels)
	if err != nil {
		return err
	}
	for i, n := range ops {
		env[n.ID] = parts[i]
	}
	return nil
}
