package refexec

import (
	"testing"

	"ios/internal/baseline"
	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/profile"
	"ios/internal/schedule"
	"ios/internal/tensor"
)

// runBoth executes the graph sequentially and under the given schedule
// with identical weights/input and returns the max divergence across all
// node outputs.
func runBoth(t *testing.T, s *schedule.Schedule, seed int64) float64 {
	t.Helper()
	g := s.Graph
	w := GenerateWeights(g, seed)
	inputs := map[string]*tensor.Tensor{}
	for _, n := range g.Nodes {
		if n.Op.Kind == graph.OpInput {
			inputs[n.Name] = tensor.Random(n.Output, seed+100+int64(n.ID))
		}
	}
	seq, err := RunSequential(g, w, inputs)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	sch, err := RunSchedule(s, w, inputs)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	var worst float64
	for _, n := range g.Nodes {
		a, b := seq[n.ID], sch[n.ID]
		if a == nil || b == nil {
			t.Fatalf("node %q missing output (seq %v, sched %v)", n.Name, a != nil, b != nil)
		}
		d, err := tensor.MaxAbsDiff(a, b)
		if err != nil {
			t.Fatalf("node %q: %v", n.Name, err)
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// smallFig2 is a reduced Figure-2 graph cheap enough for CPU execution.
func smallFig2() *graph.Graph {
	g := graph.New("small-fig2")
	in := g.Input("input", graph.Shape{N: 1, C: 8, H: 9, W: 9})
	a := g.Conv("a", in, graph.ConvOpts{Out: 8, Kernel: 3})
	b := g.Conv("b", a, graph.ConvOpts{Out: 12, Kernel: 3})
	c := g.Conv("c", in, graph.ConvOpts{Out: 8, Kernel: 3})
	d := g.Conv("d", in, graph.ConvOpts{Out: 12, Kernel: 3})
	g.Concat("concat", b, c, d)
	return g
}

func TestSequentialScheduleMatches(t *testing.T) {
	g := smallFig2()
	s, err := baseline.Sequential(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := runBoth(t, s, 1); d > 1e-4 {
		t.Errorf("sequential schedule diverged by %g", d)
	}
}

func TestGreedyScheduleMatches(t *testing.T) {
	g := smallFig2()
	s, err := baseline.Greedy(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := runBoth(t, s, 2); d > 1e-4 {
		t.Errorf("greedy schedule diverged by %g", d)
	}
}

func TestIOSScheduleMatches(t *testing.T) {
	g := smallFig2()
	res, err := core.Optimize(g, profile.New(gpusim.TeslaV100), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := runBoth(t, res.Schedule, 3); d > 1e-4 {
		t.Errorf("IOS schedule diverged by %g", d)
	}
}

// TestMergeStageMatches hand-builds a merge schedule (1x1 and 3x3 convs
// sharing an input, as in Figure 10) and verifies the stacked padded
// kernel computes exactly the two original convolutions.
func TestMergeStageMatches(t *testing.T) {
	g := graph.New("merge")
	in := g.Input("input", graph.Shape{N: 2, C: 4, H: 7, W: 7})
	a := g.Conv("a", in, graph.ConvOpts{Out: 3, Kernel: 1})
	b := g.Conv("b", in, graph.ConvOpts{Out: 5, Kernel: 3})
	cat := g.Concat("cat", a, b)
	_ = cat
	s := &schedule.Schedule{Graph: g, Stages: []schedule.Stage{
		{Strategy: schedule.Merge, Groups: [][]*graph.Node{{a, b}}},
		{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{cat}}},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := runBoth(t, s, 4); d > 1e-4 {
		t.Errorf("merge schedule diverged by %g", d)
	}
}

func TestMergeAsymmetricKernels(t *testing.T) {
	// 1x3 and 3x1 merge to 3x3 (the Figure 10 f&g case).
	g := graph.New("merge-asym")
	in := g.Input("input", graph.Shape{N: 1, C: 4, H: 6, W: 6})
	f := g.Conv("f", in, graph.ConvOpts{Out: 3, KernelH: 3, KernelW: 1})
	gg := g.Conv("g", in, graph.ConvOpts{Out: 4, KernelH: 1, KernelW: 3})
	cat := g.Concat("cat", f, gg)
	s := &schedule.Schedule{Graph: g, Stages: []schedule.Stage{
		{Strategy: schedule.Merge, Groups: [][]*graph.Node{{f, gg}}},
		{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{{cat}}},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := runBoth(t, s, 5); d > 1e-4 {
		t.Errorf("asymmetric merge diverged by %g", d)
	}
}

func TestScheduleWithSepConvAndPool(t *testing.T) {
	g := graph.New("mixed")
	in := g.Input("input", graph.Shape{N: 1, C: 6, H: 8, W: 8})
	a := g.SepConv("a", in, graph.ConvOpts{Out: 6, Kernel: 3})
	p := g.Pool("p", in, graph.PoolOpts{Kernel: 3, Stride: 1, Avg: true})
	add := g.Add("add", a, p)
	m := g.GlobalPool("gap", add)
	g.Matmul("fc", m, 4)
	res, err := core.Optimize(g, profile.New(gpusim.TeslaV100), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := runBoth(t, res.Schedule, 6); d > 1e-4 {
		t.Errorf("mixed schedule diverged by %g", d)
	}
}

func TestSqueezeNetFireIOSchedule(t *testing.T) {
	// A real model block end-to-end on the reference executor: one fire
	// module with complex bypass at reduced resolution.
	g := graph.New("fire")
	in := g.Input("input", graph.Shape{N: 1, C: 10, H: 10, W: 10})
	sq := g.Conv("squeeze", in, graph.ConvOpts{Out: 4, Kernel: 1})
	e1 := g.Conv("e1", sq, graph.ConvOpts{Out: 8, Kernel: 1})
	e3 := g.Conv("e3", sq, graph.ConvOpts{Out: 8, Kernel: 3})
	cat := g.Concat("cat", e1, e3)
	byp := g.Conv("bypass", in, graph.ConvOpts{Out: 16, Kernel: 1, NoAct: true})
	g.Add("out", cat, byp)
	res, err := core.Optimize(g, profile.New(gpusim.TeslaV100), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := runBoth(t, res.Schedule, 7); d > 1e-4 {
		t.Errorf("fire schedule diverged by %g", d)
	}
}

func TestRandWireStageSchedule(t *testing.T) {
	// Multi-input SepConvSum units under a real IOS schedule. (The zoo
	// RandWire is 224x224 — far too slow for the naive CPU conv — so
	// this uses a tiny random-stage-like graph with the same op mix.)
	g := tinyRandWire()
	res, err := core.Optimize(g, profile.New(gpusim.TeslaV100), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := runBoth(t, res.Schedule, 8); d > 1e-4 {
		t.Errorf("randwire-like schedule diverged by %g", d)
	}
}

func tinyRandWire() *graph.Graph {
	g := graph.New("tiny-randwire")
	in := g.Input("input", graph.Shape{N: 1, C: 4, H: 8, W: 8})
	n0 := g.SepConv("n0", in, graph.ConvOpts{Out: 6, Kernel: 3, Stride: 2})
	n1 := g.SepConv("n1", in, graph.ConvOpts{Out: 6, Kernel: 3, Stride: 2})
	n2 := g.SepConvSum("n2", []*graph.Node{n0, n1}, graph.ConvOpts{Out: 6, Kernel: 3})
	n3 := g.SepConvSum("n3", []*graph.Node{n0, n2}, graph.ConvOpts{Out: 6, Kernel: 3})
	g.Add("out", n2, n3)
	return g
}

func TestMissingInputErrors(t *testing.T) {
	g := smallFig2()
	w := GenerateWeights(g, 1)
	if _, err := RunSequential(g, w, nil); err == nil {
		t.Error("missing input accepted")
	}
	s, err := baseline.Sequential(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSchedule(s, w, nil); err == nil {
		t.Error("missing input accepted by RunSchedule")
	}
}

func TestWrongInputShapeErrors(t *testing.T) {
	g := smallFig2()
	w := GenerateWeights(g, 1)
	bad := map[string]*tensor.Tensor{"input": tensor.Random(graph.Shape{N: 1, C: 8, H: 5, W: 5}, 1)}
	if _, err := RunSequential(g, w, bad); err == nil {
		t.Error("wrong input shape accepted")
	}
}
