// Package tensor is a minimal float32 NCHW tensor library with reference
// (naive, correctness-first) implementations of every operator in the
// graph IR. It backs internal/refexec, which executes schedules over real
// data to prove that IOS's transformations — concurrent group execution
// and operator merge with kernel padding — are semantics-preserving.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"ios/internal/graph"
)

// Tensor is a dense float32 tensor in NCHW layout.
type Tensor struct {
	Shape graph.Shape
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape graph.Shape) *Tensor {
	return &Tensor{Shape: shape, Data: make([]float32, shape.Elems())}
}

// Random returns a tensor with deterministic pseudo-random values in
// [-1, 1) from the given seed.
func Random(shape graph.Shape, seed int64) *Tensor {
	t := New(shape)
	rng := rand.New(rand.NewSource(seed))
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float32 {
	return t.Data[t.index(n, c, h, w)]
}

// Set assigns the element at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float32) {
	t.Data[t.index(n, c, h, w)] = v
}

func (t *Tensor) index(n, c, h, w int) int {
	s := t.Shape
	return ((n*s.C+c)*s.H+h)*s.W + w
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape)
	copy(out.Data, t.Data)
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if a.Shape != b.Shape {
		return 0, fmt.Errorf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape)
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// ConvWeights holds a convolution's filter bank [outC][inC/groups][kH][kW]
// flattened.
type ConvWeights struct {
	OutC, InCPerGroup, KH, KW int
	Data                      []float32
}

// NewConvWeights allocates zeroed weights.
func NewConvWeights(outC, inCPerGroup, kh, kw int) *ConvWeights {
	return &ConvWeights{OutC: outC, InCPerGroup: inCPerGroup, KH: kh, KW: kw,
		Data: make([]float32, outC*inCPerGroup*kh*kw)}
}

// RandomConvWeights returns deterministic pseudo-random weights.
func RandomConvWeights(outC, inCPerGroup, kh, kw int, seed int64) *ConvWeights {
	w := NewConvWeights(outC, inCPerGroup, kh, kw)
	rng := rand.New(rand.NewSource(seed))
	for i := range w.Data {
		w.Data[i] = rng.Float32()*2 - 1
	}
	return w
}

// At returns the weight (o, i, kh, kw).
func (w *ConvWeights) At(o, i, kh, kw int) float32 {
	return w.Data[((o*w.InCPerGroup+i)*w.KH+kh)*w.KW+kw]
}

// Set assigns the weight (o, i, kh, kw).
func (w *ConvWeights) Set(o, i, kh, kw int, v float32) {
	w.Data[((o*w.InCPerGroup+i)*w.KH+kh)*w.KW+kw] = v
}

// PadTo returns a copy of w zero-padded to kernel size (kh, kw), centered,
// which is the operator-merge transformation ("the smaller kernel will be
// padded with zeros to fit the large kernel"). Both paddings must be
// non-negative and preserve parity so the kernel stays centered.
func (w *ConvWeights) PadTo(kh, kw int) (*ConvWeights, error) {
	dh, dw := kh-w.KH, kw-w.KW
	if dh < 0 || dw < 0 || dh%2 != 0 || dw%2 != 0 {
		return nil, fmt.Errorf("tensor: cannot pad %dx%d kernel to %dx%d", w.KH, w.KW, kh, kw)
	}
	out := NewConvWeights(w.OutC, w.InCPerGroup, kh, kw)
	for o := 0; o < w.OutC; o++ {
		for i := 0; i < w.InCPerGroup; i++ {
			for y := 0; y < w.KH; y++ {
				for x := 0; x < w.KW; x++ {
					out.Set(o, i, y+dh/2, x+dw/2, w.At(o, i, y, x))
				}
			}
		}
	}
	return out, nil
}

// StackConvWeights concatenates filter banks along the output-channel
// dimension; all banks must share InCPerGroup and kernel size.
func StackConvWeights(banks []*ConvWeights) (*ConvWeights, error) {
	if len(banks) == 0 {
		return nil, fmt.Errorf("tensor: no weights to stack")
	}
	first := banks[0]
	outC := 0
	for _, b := range banks {
		if b.InCPerGroup != first.InCPerGroup || b.KH != first.KH || b.KW != first.KW {
			return nil, fmt.Errorf("tensor: incompatible banks for stacking")
		}
		outC += b.OutC
	}
	out := NewConvWeights(outC, first.InCPerGroup, first.KH, first.KW)
	off := 0
	for _, b := range banks {
		copy(out.Data[off:], b.Data)
		off += len(b.Data)
	}
	return out, nil
}
