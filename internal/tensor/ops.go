package tensor

import (
	"fmt"

	"ios/internal/graph"
)

// Conv2D computes a 2-D convolution (cross-correlation, as deep-learning
// frameworks define it) with the given stride, zero padding, and groups,
// optionally applying ReLU.
func Conv2D(in *Tensor, w *ConvWeights, strideH, strideW, padH, padW, groups int, act graph.Activation) (*Tensor, error) {
	s := in.Shape
	if groups < 1 || s.C%groups != 0 || w.OutC%groups != 0 {
		return nil, fmt.Errorf("tensor: conv groups %d incompatible with channels %d->%d", groups, s.C, w.OutC)
	}
	inPerGroup := s.C / groups
	if w.InCPerGroup != inPerGroup {
		return nil, fmt.Errorf("tensor: weights expect %d input channels/group, input has %d", w.InCPerGroup, inPerGroup)
	}
	outH := (s.H+2*padH-w.KH)/strideH + 1
	outW := (s.W+2*padW-w.KW)/strideW + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("tensor: conv output %dx%d not positive", outH, outW)
	}
	out := New(graph.Shape{N: s.N, C: w.OutC, H: outH, W: outW})
	outPerGroup := w.OutC / groups
	for n := 0; n < s.N; n++ {
		for oc := 0; oc < w.OutC; oc++ {
			g := oc / outPerGroup
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var acc float32
					for ic := 0; ic < inPerGroup; ic++ {
						cIn := g*inPerGroup + ic
						for kh := 0; kh < w.KH; kh++ {
							ih := oh*strideH + kh - padH
							if ih < 0 || ih >= s.H {
								continue
							}
							for kw := 0; kw < w.KW; kw++ {
								iw := ow*strideW + kw - padW
								if iw < 0 || iw >= s.W {
									continue
								}
								acc += in.At(n, cIn, ih, iw) * w.At(oc, ic, kh, kw)
							}
						}
					}
					if act == graph.ActReLU && acc < 0 {
						acc = 0
					}
					out.Set(n, oc, oh, ow, acc)
				}
			}
		}
	}
	return out, nil
}

// SepConv computes the Relu-SepConv unit: optional leading ReLU, k-way
// input sum, depthwise convolution with dw, then pointwise 1×1 with pw.
func SepConv(inputs []*Tensor, dw, pw *ConvWeights, strideH, strideW, padH, padW int, act graph.Activation) (*Tensor, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("tensor: sepconv needs inputs")
	}
	x := inputs[0].Clone()
	for _, t := range inputs[1:] {
		if t.Shape != x.Shape {
			return nil, fmt.Errorf("tensor: sepconv aggregation shape mismatch")
		}
		for i := range x.Data {
			x.Data[i] += t.Data[i]
		}
	}
	if act == graph.ActReLU {
		for i := range x.Data {
			if x.Data[i] < 0 {
				x.Data[i] = 0
			}
		}
	}
	mid, err := Conv2D(x, dw, strideH, strideW, padH, padW, x.Shape.C, graph.ActNone)
	if err != nil {
		return nil, err
	}
	return Conv2D(mid, pw, 1, 1, 0, 0, 1, graph.ActNone)
}

// Pool computes max or average pooling with "count all" averaging over the
// padded window denominator excluded (frameworks' count_include_pad=false).
func Pool(in *Tensor, kind graph.PoolKind, kernel, strideH, strideW, padH, padW int) (*Tensor, error) {
	s := in.Shape
	outH := (s.H+2*padH-kernel)/strideH + 1
	outW := (s.W+2*padW-kernel)/strideW + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("tensor: pool output %dx%d not positive", outH, outW)
	}
	out := New(graph.Shape{N: s.N, C: s.C, H: outH, W: outW})
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var acc float32
					count := 0
					first := true
					for kh := 0; kh < kernel; kh++ {
						ih := oh*strideH + kh - padH
						if ih < 0 || ih >= s.H {
							continue
						}
						for kw := 0; kw < kernel; kw++ {
							iw := ow*strideW + kw - padW
							if iw < 0 || iw >= s.W {
								continue
							}
							v := in.At(n, c, ih, iw)
							if kind == graph.MaxPool {
								if first || v > acc {
									acc = v
								}
								first = false
							} else {
								acc += v
								count++
							}
						}
					}
					if kind == graph.AvgPool && count > 0 {
						acc /= float32(count)
					}
					out.Set(n, c, oh, ow, acc)
				}
			}
		}
	}
	return out, nil
}

// GlobalAvgPool reduces H×W to 1×1.
func GlobalAvgPool(in *Tensor) *Tensor {
	s := in.Shape
	out := New(graph.Shape{N: s.N, C: s.C, H: 1, W: 1})
	hw := float32(s.H * s.W)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			var acc float32
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					acc += in.At(n, c, h, w)
				}
			}
			out.Set(n, c, 0, 0, acc/hw)
		}
	}
	return out
}

// Matmul computes a fully connected layer: weights laid out as a 1×1
// "convolution" bank [outF][inF].
func Matmul(in *Tensor, w *ConvWeights) (*Tensor, error) {
	s := in.Shape
	inF := s.C * s.H * s.W
	if w.InCPerGroup != inF || w.KH != 1 || w.KW != 1 {
		return nil, fmt.Errorf("tensor: matmul weights %dx%d incompatible with input %d features", w.OutC, w.InCPerGroup, inF)
	}
	out := New(graph.Shape{N: s.N, C: w.OutC, H: 1, W: 1})
	for n := 0; n < s.N; n++ {
		base := n * inF
		for o := 0; o < w.OutC; o++ {
			var acc float32
			wBase := o * inF
			for i := 0; i < inF; i++ {
				acc += in.Data[base+i] * w.Data[wBase+i]
			}
			out.Set(n, o, 0, 0, acc)
		}
	}
	return out, nil
}

// Concat concatenates along channels.
func Concat(inputs []*Tensor) (*Tensor, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("tensor: concat needs inputs")
	}
	s := inputs[0].Shape
	totalC := 0
	for _, t := range inputs {
		if t.Shape.N != s.N || t.Shape.H != s.H || t.Shape.W != s.W {
			return nil, fmt.Errorf("tensor: concat shape mismatch")
		}
		totalC += t.Shape.C
	}
	out := New(graph.Shape{N: s.N, C: totalC, H: s.H, W: s.W})
	for n := 0; n < s.N; n++ {
		off := 0
		for _, t := range inputs {
			for c := 0; c < t.Shape.C; c++ {
				for h := 0; h < s.H; h++ {
					for w := 0; w < s.W; w++ {
						out.Set(n, off+c, h, w, t.At(n, c, h, w))
					}
				}
			}
			off += t.Shape.C
		}
	}
	return out, nil
}

// SplitChannels splits a tensor into chunks of the given channel counts —
// the inverse of Concat, required after a merged convolution.
func SplitChannels(in *Tensor, channels []int) ([]*Tensor, error) {
	total := 0
	for _, c := range channels {
		total += c
	}
	if total != in.Shape.C {
		return nil, fmt.Errorf("tensor: split channels sum %d != %d", total, in.Shape.C)
	}
	out := make([]*Tensor, len(channels))
	off := 0
	for i, cc := range channels {
		t := New(graph.Shape{N: in.Shape.N, C: cc, H: in.Shape.H, W: in.Shape.W})
		for n := 0; n < in.Shape.N; n++ {
			for c := 0; c < cc; c++ {
				for h := 0; h < in.Shape.H; h++ {
					for w := 0; w < in.Shape.W; w++ {
						t.Set(n, c, h, w, in.At(n, off+c, h, w))
					}
				}
			}
		}
		out[i] = t
		off += cc
	}
	return out, nil
}

// Add sums same-shaped tensors elementwise.
func Add(inputs []*Tensor) (*Tensor, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("tensor: add needs inputs")
	}
	out := inputs[0].Clone()
	for _, t := range inputs[1:] {
		if t.Shape != out.Shape {
			return nil, fmt.Errorf("tensor: add shape mismatch")
		}
		for i := range out.Data {
			out.Data[i] += t.Data[i]
		}
	}
	return out, nil
}

// ReLU applies max(x, 0) elementwise.
func ReLU(in *Tensor) *Tensor {
	out := in.Clone()
	for i := range out.Data {
		if out.Data[i] < 0 {
			out.Data[i] = 0
		}
	}
	return out
}
