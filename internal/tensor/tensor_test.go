package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"ios/internal/graph"
)

func almostEqual(a, b *Tensor, tol float64) bool {
	d, err := MaxAbsDiff(a, b)
	return err == nil && d <= tol
}

func TestIndexingRoundTrip(t *testing.T) {
	tt := New(graph.Shape{N: 2, C: 3, H: 4, W: 5})
	v := float32(0)
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					tt.Set(n, c, h, w, v)
					v++
				}
			}
		}
	}
	for i, want := range tt.Data {
		if tt.Data[i] != want {
			t.Fatalf("data[%d] = %g", i, tt.Data[i])
		}
	}
	if tt.At(1, 2, 3, 4) != float32(len(tt.Data)-1) {
		t.Error("last element wrong")
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(graph.Shape{N: 1, C: 2, H: 3, W: 3}, 42)
	b := Random(graph.Shape{N: 1, C: 2, H: 3, W: 3}, 42)
	if !almostEqual(a, b, 0) {
		t.Error("same seed produced different tensors")
	}
	c := Random(graph.Shape{N: 1, C: 2, H: 3, W: 3}, 43)
	if almostEqual(a, c, 0) {
		t.Error("different seeds produced identical tensors")
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// A 1x1 identity kernel (one output channel copying input channel 0).
	in := Random(graph.Shape{N: 1, C: 2, H: 4, W: 4}, 1)
	w := NewConvWeights(1, 2, 1, 1)
	w.Set(0, 0, 0, 0, 1)
	out, err := Conv2D(in, w, 1, 1, 0, 0, 1, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		for x := 0; x < 4; x++ {
			if out.At(0, 0, h, x) != in.At(0, 0, h, x) {
				t.Fatalf("identity conv differs at (%d,%d)", h, x)
			}
		}
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1x1x2x2 input, 3x3 all-ones kernel, same padding: each output is
	// the sum of the in-bounds neighbourhood.
	in := New(graph.Shape{N: 1, C: 1, H: 2, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4})
	w := NewConvWeights(1, 1, 3, 3)
	for i := range w.Data {
		w.Data[i] = 1
	}
	out, err := Conv2D(in, w, 1, 1, 1, 1, 1, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{10, 10, 10, 10}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("out = %v, want %v", out.Data, want)
		}
	}
}

func TestConvReLU(t *testing.T) {
	in := New(graph.Shape{N: 1, C: 1, H: 1, W: 2})
	copy(in.Data, []float32{1, -1})
	w := NewConvWeights(1, 1, 1, 1)
	w.Set(0, 0, 0, 0, 1)
	out, err := Conv2D(in, w, 1, 1, 0, 0, 1, graph.ActReLU)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 1 || out.Data[1] != 0 {
		t.Errorf("relu conv = %v", out.Data)
	}
}

func TestConvStride(t *testing.T) {
	in := Random(graph.Shape{N: 1, C: 1, H: 6, W: 6}, 2)
	w := RandomConvWeights(1, 1, 1, 1, 3)
	out, err := Conv2D(in, w, 2, 2, 0, 0, 1, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape != (graph.Shape{N: 1, C: 1, H: 3, W: 3}) {
		t.Fatalf("strided shape = %v", out.Shape)
	}
	if out.At(0, 0, 1, 1) != in.At(0, 0, 2, 2)*w.At(0, 0, 0, 0) {
		t.Error("strided sampling wrong")
	}
}

func TestGroupedConvEqualsPerGroupDense(t *testing.T) {
	// groups=2 conv equals two dense convs on channel halves.
	in := Random(graph.Shape{N: 1, C: 4, H: 5, W: 5}, 4)
	w := RandomConvWeights(6, 2, 3, 3, 5)
	out, err := Conv2D(in, w, 1, 1, 1, 1, 2, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	halves, err := SplitChannels(in, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	w1 := NewConvWeights(3, 2, 3, 3)
	copy(w1.Data, w.Data[:len(w.Data)/2])
	w2 := NewConvWeights(3, 2, 3, 3)
	copy(w2.Data, w.Data[len(w.Data)/2:])
	o1, err := Conv2D(halves[0], w1, 1, 1, 1, 1, 1, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Conv2D(halves[1], w2, 1, 1, 1, 1, 1, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Concat([]*Tensor{o1, o2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out, cat, 1e-5) {
		t.Error("grouped conv != per-group dense convs")
	}
}

// TestKernelPaddingPreservesConv is the algebraic heart of operator merge:
// a kernel zero-padded to a larger (same-parity) size with matching "same"
// input padding computes the same function.
func TestKernelPaddingPreservesConv(t *testing.T) {
	cases := []struct{ kh, kw, toH, toW int }{
		{1, 1, 3, 3}, {1, 3, 3, 3}, {3, 1, 3, 3}, {3, 3, 5, 5}, {1, 1, 7, 7},
	}
	for _, c := range cases {
		in := Random(graph.Shape{N: 2, C: 3, H: 8, W: 8}, 7)
		w := RandomConvWeights(4, 3, c.kh, c.kw, 8)
		small, err := Conv2D(in, w, 1, 1, (c.kh-1)/2, (c.kw-1)/2, 1, graph.ActReLU)
		if err != nil {
			t.Fatal(err)
		}
		padded, err := w.PadTo(c.toH, c.toW)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Conv2D(in, padded, 1, 1, (c.toH-1)/2, (c.toW-1)/2, 1, graph.ActReLU)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(small, big, 1e-5) {
			t.Errorf("padding %dx%d->%dx%d changed the conv", c.kh, c.kw, c.toH, c.toW)
		}
	}
}

func TestPadToRejectsBadTargets(t *testing.T) {
	w := NewConvWeights(1, 1, 3, 3)
	if _, err := w.PadTo(2, 3); err == nil {
		t.Error("parity-breaking pad accepted")
	}
	if _, err := w.PadTo(1, 1); err == nil {
		t.Error("shrinking pad accepted")
	}
}

// TestStackedConvEqualsConcat: stacking filter banks computes the
// concatenation of the individual convs — operator merge's other half.
func TestStackedConvEqualsConcat(t *testing.T) {
	in := Random(graph.Shape{N: 1, C: 3, H: 6, W: 6}, 9)
	w1 := RandomConvWeights(2, 3, 3, 3, 10)
	w2 := RandomConvWeights(5, 3, 3, 3, 11)
	o1, err := Conv2D(in, w1, 1, 1, 1, 1, 1, graph.ActReLU)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Conv2D(in, w2, 1, 1, 1, 1, 1, graph.ActReLU)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Concat([]*Tensor{o1, o2})
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := StackConvWeights([]*ConvWeights{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Conv2D(in, stacked, 1, 1, 1, 1, 1, graph.ActReLU)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-5) {
		t.Error("stacked conv != concat of convs")
	}
}

func TestSplitInvertsConcat(t *testing.T) {
	a := Random(graph.Shape{N: 1, C: 2, H: 3, W: 3}, 12)
	b := Random(graph.Shape{N: 1, C: 5, H: 3, W: 3}, 13)
	cat, err := Concat([]*Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := SplitChannels(cat, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(parts[0], a, 0) || !almostEqual(parts[1], b, 0) {
		t.Error("split did not invert concat")
	}
	if _, err := SplitChannels(cat, []int{3, 5}); err == nil {
		t.Error("bad split accepted")
	}
}

func TestPooling(t *testing.T) {
	in := New(graph.Shape{N: 1, C: 1, H: 2, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4})
	mx, err := Pool(in, graph.MaxPool, 2, 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Data[0] != 4 {
		t.Errorf("maxpool = %v", mx.Data)
	}
	av, err := Pool(in, graph.AvgPool, 2, 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if av.Data[0] != 2.5 {
		t.Errorf("avgpool = %v", av.Data)
	}
	// Padded average excludes out-of-bounds cells from the denominator.
	av2, err := Pool(in, graph.AvgPool, 2, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if av2.At(0, 0, 0, 0) != 1 { // only the (0,0) cell is in bounds
		t.Errorf("padded avgpool corner = %g", av2.At(0, 0, 0, 0))
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := New(graph.Shape{N: 1, C: 2, H: 2, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4, 10, 20, 30, 40})
	out := GlobalAvgPool(in)
	if out.At(0, 0, 0, 0) != 2.5 || out.At(0, 1, 0, 0) != 25 {
		t.Errorf("gap = %v", out.Data)
	}
}

func TestMatmul(t *testing.T) {
	in := New(graph.Shape{N: 2, C: 3, H: 1, W: 1})
	copy(in.Data, []float32{1, 2, 3, 4, 5, 6})
	w := NewConvWeights(2, 3, 1, 1)
	copy(w.Data, []float32{1, 0, 0, 0, 1, 1})
	out, err := Matmul(in, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 5, 4, 11}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("matmul = %v, want %v", out.Data, want)
		}
	}
}

func TestSepConvMatchesComposition(t *testing.T) {
	// SepConv == relu -> depthwise (grouped conv) -> pointwise.
	in := Random(graph.Shape{N: 1, C: 4, H: 6, W: 6}, 20)
	dw := RandomConvWeights(4, 1, 3, 3, 21)
	pw := RandomConvWeights(6, 4, 1, 1, 22)
	got, err := SepConv([]*Tensor{in}, dw, pw, 1, 1, 1, 1, graph.ActReLU)
	if err != nil {
		t.Fatal(err)
	}
	relu := ReLU(in)
	mid, err := Conv2D(relu, dw, 1, 1, 1, 1, 4, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Conv2D(mid, pw, 1, 1, 0, 0, 1, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-5) {
		t.Error("sepconv != composition")
	}
}

func TestSepConvAggregation(t *testing.T) {
	a := Random(graph.Shape{N: 1, C: 2, H: 4, W: 4}, 30)
	b := Random(graph.Shape{N: 1, C: 2, H: 4, W: 4}, 31)
	dw := RandomConvWeights(2, 1, 3, 3, 32)
	pw := RandomConvWeights(3, 2, 1, 1, 33)
	got, err := SepConv([]*Tensor{a, b}, dw, pw, 1, 1, 1, 1, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Add([]*Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SepConv([]*Tensor{sum}, dw, pw, 1, 1, 1, 1, graph.ActNone)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-5) {
		t.Error("fused aggregation != explicit add")
	}
}

// Property: convolution is linear in the input.
func TestQuickConvLinearity(t *testing.T) {
	w := RandomConvWeights(2, 2, 3, 3, 40)
	shape := graph.Shape{N: 1, C: 2, H: 5, W: 5}
	err := quick.Check(func(seedA, seedB int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 100 {
			alpha = 2
		}
		a := Random(shape, seedA)
		b := Random(shape, seedB)
		// c = a + alpha*b
		c := New(shape)
		for i := range c.Data {
			c.Data[i] = a.Data[i] + float32(alpha)*b.Data[i]
		}
		oa, err := Conv2D(a, w, 1, 1, 1, 1, 1, graph.ActNone)
		if err != nil {
			return false
		}
		ob, err := Conv2D(b, w, 1, 1, 1, 1, 1, graph.ActNone)
		if err != nil {
			return false
		}
		oc, err := Conv2D(c, w, 1, 1, 1, 1, 1, graph.ActNone)
		if err != nil {
			return false
		}
		for i := range oc.Data {
			want := float64(oa.Data[i]) + alpha*float64(ob.Data[i])
			if math.Abs(float64(oc.Data[i])-want) > 1e-3*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}
