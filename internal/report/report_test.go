package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 123456789.0)
	tb.AddRow("gamma", 0.000001)
	out := tb.String()
	for _, want := range []string{"demo", "name", "value", "alpha", "1.500", "1.23e+08", "1.00e-06"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestBarChartNormalization(t *testing.T) {
	c := NewBarChart("chart", "A", "B")
	c.AddGroup("g1", 100, 50)
	out := c.String()
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.500") {
		t.Errorf("chart missing normalized values:\n%s", out)
	}
	if !strings.Contains(out, "g1") || !strings.Contains(out, "chart") {
		t.Errorf("chart missing labels:\n%s", out)
	}
}

func TestBarChartNaN(t *testing.T) {
	c := NewBarChart("chart", "A", "B")
	c.AddGroup("g", math.NaN(), 10)
	out := c.String()
	if !strings.Contains(out, "n/a") {
		t.Errorf("NaN not rendered as n/a:\n%s", out)
	}
}

func TestBarChartPanicsOnArityMismatch(t *testing.T) {
	c := NewBarChart("chart", "A", "B")
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch not caught")
		}
	}()
	c.AddGroup("g", 1)
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{4, 9}); math.Abs(g-6) > 1e-12 {
		t.Errorf("GeoMean(4,9) = %g", g)
	}
	if g := GeoMean([]float64{2, math.NaN(), 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean with NaN = %g", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{-1, 0})) {
		t.Error("GeoMean of nonpositives should be NaN")
	}
}
