// Package report renders experiment results as aligned text tables and
// normalized-throughput bar charts, the textual analogues of the paper's
// figures. All rendering is deterministic so outputs can be diffed across
// runs.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat picks a compact representation: scientific for very large or
// tiny magnitudes, fixed otherwise.
func formatFloat(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.2e", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// BarChart renders grouped normalized bars, the textual form of the
// paper's normalized-throughput figures: per group (network), each series
// (schedule/framework) is shown relative to the group's best.
type BarChart struct {
	Title  string
	Series []string
	groups []barGroup
	// width is the character width of a full bar.
	width int
}

type barGroup struct {
	name   string
	values []float64
}

// NewBarChart creates a chart for the given series names.
func NewBarChart(title string, series ...string) *BarChart {
	return &BarChart{Title: title, Series: series, width: 40}
}

// AddGroup appends one group (e.g. one network) with a value per series.
// Values are throughputs (higher = better); NaN marks a missing entry
// (e.g. TASO out-of-memory at batch 128).
func (c *BarChart) AddGroup(name string, values ...float64) {
	if len(values) != len(c.Series) {
		panic(fmt.Sprintf("report: group %q has %d values, want %d", name, len(values), len(c.Series)))
	}
	vals := make([]float64, len(values))
	copy(vals, values)
	c.groups = append(c.groups, barGroup{name: name, values: vals})
}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", c.Title)
	}
	nameW := 0
	for _, s := range c.Series {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	for _, g := range c.groups {
		best := 0.0
		for _, v := range g.values {
			if !math.IsNaN(v) && v > best {
				best = v
			}
		}
		fmt.Fprintf(w, "%s\n", g.name)
		for i, s := range c.Series {
			v := g.values[i]
			if math.IsNaN(v) {
				fmt.Fprintf(w, "  %-*s  %s\n", nameW, s, "n/a")
				continue
			}
			norm := 0.0
			if best > 0 {
				norm = v / best
			}
			bars := int(norm*float64(c.width) + 0.5)
			fmt.Fprintf(w, "  %-*s  %s %.3f\n", nameW, s, strings.Repeat("#", bars), norm)
		}
	}
}

// String renders to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

// GeoMean returns the geometric mean of positive values, ignoring NaNs.
func GeoMean(values []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range values {
		if math.IsNaN(v) || v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}
