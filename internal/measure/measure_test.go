package measure

import (
	"bytes"
	"encoding/base64"
	"strings"
	"sync"
	"testing"

	"ios/internal/gpusim"
)

func testKey(streams []gpusim.Stream) []byte {
	return AppendStreams(Context(gpusim.TeslaV100, 0), streams)
}

func kernel(flops, bytes float64) gpusim.Kernel {
	return gpusim.Kernel{FLOPs: flops, Bytes: bytes, Blocks: 4, WarpsPerBlock: 8}
}

func TestGetOrBeginMissThenHit(t *testing.T) {
	c := NewCache()
	key := testKey([]gpusim.Stream{{kernel(1e6, 2e6)}})
	lat, claim := c.GetOrBegin(key)
	if claim == nil {
		t.Fatalf("first lookup hit an empty cache (lat=%g)", lat)
	}
	claim.Commit(3.5e-6)
	got, claim2 := c.GetOrBegin(key)
	if claim2 != nil {
		t.Fatal("second lookup missed")
	}
	if got != 3.5e-6 {
		t.Fatalf("cached latency = %g, want 3.5e-6", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Coalesced != 0 || st.Size != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Saved() != 1 {
		t.Fatalf("Saved() = %d, want 1", st.Saved())
	}
}

func TestGetOrBeginKeyIsCopied(t *testing.T) {
	c := NewCache()
	key := testKey([]gpusim.Stream{{kernel(1, 1)}})
	buf := append([]byte(nil), key...)
	_, claim := c.GetOrBegin(buf)
	claim.Commit(1)
	for i := range buf {
		buf[i] = 0xAA // clobber the caller's scratch
	}
	if _, ok := c.Lookup(key); !ok {
		t.Fatal("cache retained the caller's scratch buffer instead of copying the key")
	}
}

// TestSingleflightCoalesces: goroutines racing one fingerprint produce
// exactly one claim; everyone else blocks until Commit and reads the
// published value. Run with -race.
func TestSingleflightCoalesces(t *testing.T) {
	c := NewCache()
	key := testKey([]gpusim.Stream{{kernel(7, 7)}})
	const n = 16
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		owners int
		lats   []float64
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			lat, claim := c.GetOrBegin(key)
			if claim != nil {
				mu.Lock()
				owners++
				mu.Unlock()
				lat = 42
				claim.Commit(lat)
			}
			mu.Lock()
			lats = append(lats, lat)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if owners != 1 {
		t.Fatalf("%d goroutines claimed the key, want exactly 1", owners)
	}
	for _, l := range lats {
		if l != 42 {
			t.Fatalf("a waiter read %g, want the committed 42", l)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != n-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+coalesced", st, n-1)
	}
}

// TestCapacityBoundSheds: a bounded cache stays within its capacity by
// shedding completed entries (never in-flight claims) and keeps serving
// correctly — evicted fingerprints just re-measure.
func TestCapacityBoundSheds(t *testing.T) {
	const cap = 64
	c := NewCacheSize(cap)
	mk := func(i int) []byte {
		return testKey([]gpusim.Stream{{kernel(float64(i), 1)}})
	}
	for i := 0; i < 10*cap; i++ {
		_, claim := c.GetOrBegin(mk(i))
		if claim == nil {
			t.Fatalf("entry %d unexpectedly present", i)
		}
		claim.Commit(float64(i))
	}
	// Per-shard caps round up, so allow a small margin over the nominal
	// capacity — the point is that 640 inserts did not retain 640 entries.
	if n := c.Len(); n > 2*cap {
		t.Fatalf("bounded cache holds %d entries, cap %d", n, cap)
	}
	if st := c.Stats(); st.Evicted == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	// A shed fingerprint is simply a miss again.
	lat, claim := c.GetOrBegin(mk(0))
	if claim != nil {
		claim.Commit(0)
	} else if lat != 0 {
		t.Fatalf("surviving entry returned wrong latency %g", lat)
	}
	// Unbounded caches never evict.
	u := NewCache()
	for i := 0; i < 10*cap; i++ {
		_, cl := u.GetOrBegin(mk(i))
		cl.Commit(1)
	}
	if u.Len() != 10*cap || u.Stats().Evicted != 0 {
		t.Fatalf("unbounded cache: len=%d evicted=%d", u.Len(), u.Stats().Evicted)
	}
}

// TestAbandonUnwedgesWaiters: a claim released without a result (the
// owner's measurement panicked) must unblock coalesced waiters into a
// retry and leave the fingerprint measurable — not wedge it forever.
func TestAbandonUnwedgesWaiters(t *testing.T) {
	c := NewCache()
	key := testKey([]gpusim.Stream{{kernel(3, 3)}})
	_, claim := c.GetOrBegin(key)
	if claim == nil {
		t.Fatal("no claim on an empty cache")
	}
	waited := make(chan float64, 1)
	go func() {
		lat, cl := c.GetOrBegin(key) // blocks on the in-flight claim
		if cl != nil {
			// The abandon made this waiter the new owner: measure.
			lat = 9
			cl.Commit(lat)
		}
		waited <- lat
	}()
	// Give the waiter time to block, then abandon.
	claim.Abandon()
	if lat := <-waited; lat != 9 {
		t.Fatalf("waiter after abandon got %g, want to have re-owned and committed 9", lat)
	}
	if lat, ok := c.Lookup(key); !ok || lat != 9 {
		t.Fatalf("fingerprint not measurable after abandon: lat=%g ok=%v", lat, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after abandon+commit, want 1", c.Len())
	}
}

// TestKeyEncodingUnambiguous: the canonical encoding must separate stream
// structure, kernel order, kernel fields, and measurement context — every
// pair below would be a latency-corrupting collision.
func TestKeyEncodingUnambiguous(t *testing.T) {
	a, b := kernel(1e6, 2e6), kernel(3e6, 4e6)
	cases := []struct {
		name string
		x, y []byte
	}{
		{"grouping", testKey([]gpusim.Stream{{a, b}}), testKey([]gpusim.Stream{{a}, {b}})},
		{"kernel order", testKey([]gpusim.Stream{{a, b}}), testKey([]gpusim.Stream{{b, a}})},
		{"stream order", testKey([]gpusim.Stream{{a}, {b}}), testKey([]gpusim.Stream{{b}, {a}})},
		{"flops", testKey([]gpusim.Stream{{kernel(1, 5)}}), testKey([]gpusim.Stream{{kernel(2, 5)}})},
		{"bytes", testKey([]gpusim.Stream{{kernel(5, 1)}}), testKey([]gpusim.Stream{{kernel(5, 2)}})},
		{"blocks", testKey([]gpusim.Stream{{{FLOPs: 1, Bytes: 1, Blocks: 1, WarpsPerBlock: 8}}}),
			testKey([]gpusim.Stream{{{FLOPs: 1, Bytes: 1, Blocks: 2, WarpsPerBlock: 8}}})},
		{"empty vs none", testKey(nil), testKey([]gpusim.Stream{{}})},
		{"device", AppendStreams(Context(gpusim.TeslaV100, 0), []gpusim.Stream{{a}}),
			AppendStreams(Context(gpusim.TeslaK80, 0), []gpusim.Stream{{a}})},
		{"overhead", AppendStreams(Context(gpusim.TeslaV100, 0), []gpusim.Stream{{a}}),
			AppendStreams(Context(gpusim.TeslaV100, 1e-6), []gpusim.Stream{{a}})},
	}
	for _, tc := range cases {
		if bytes.Equal(tc.x, tc.y) {
			t.Errorf("%s: distinct measurement inputs share one key", tc.name)
		}
	}
	// Kernel name changes must NOT change the key: kernel names carry
	// node names, which are exactly what the structural fingerprint
	// exists to ignore.
	named := a
	named.Name = "cell_7.sep3x3"
	if !bytes.Equal(testKey([]gpusim.Stream{{a}}), testKey([]gpusim.Stream{{named}})) {
		t.Error("kernel name changed the fingerprint")
	}
	// The device name, by contrast, IS part of the context: it is the
	// only handle distinguishing two custom Backends with numerically
	// identical specs sharing one cache.
	spec := gpusim.TeslaV100
	spec.Name = "my-harness"
	if bytes.Equal(Context(gpusim.TeslaV100, 0), Context(spec, 0)) {
		t.Error("distinct device names share one context key")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	c := NewCache()
	keys := [][]byte{
		testKey([]gpusim.Stream{{kernel(1, 2)}}),
		testKey([]gpusim.Stream{{kernel(3, 4)}, {kernel(5, 6)}}),
		testKey(nil),
	}
	for i, k := range keys {
		_, claim := c.GetOrBegin(k)
		claim.Commit(float64(i) * 1.5e-6)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewCache()
	added, err := fresh.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if added != len(keys) {
		t.Fatalf("loaded %d entries, want %d", added, len(keys))
	}
	for i, k := range keys {
		lat, ok := fresh.Lookup(k)
		if !ok || lat != float64(i)*1.5e-6 {
			t.Fatalf("entry %d: lat=%g ok=%v after round trip", i, lat, ok)
		}
	}
	if st := fresh.Stats(); st.Loaded != int64(len(keys)) {
		t.Fatalf("Loaded = %d, want %d", st.Loaded, len(keys))
	}

	// Reloading into a warm cache adds nothing and overwrites nothing.
	if added, err := fresh.Load(bytes.NewReader(buf.Bytes())); err != nil || added != 0 {
		t.Fatalf("reload: added=%d err=%v, want 0, nil", added, err)
	}
}

// TestLoadCorruptFallsBackCleanly: every corruption mode must reject the
// whole file and leave the cache untouched and usable.
func TestLoadCorruptFallsBackCleanly(t *testing.T) {
	good := NewCache()
	key := testKey([]gpusim.Stream{{kernel(9, 9)}})
	_, claim := good.GetOrBegin(key)
	claim.Commit(2e-6)
	var saved bytes.Buffer
	if err := good.Save(&saved); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data string
	}{
		{"truncated JSON", saved.String()[:saved.Len()/2]},
		{"not JSON", "<html>not a cache</html>"},
		{"wrong file version", `{"version": 99, "entries": []}`},
		{"bad base64 key", `{"version": 1, "entries": [{"key": "!!!", "latency": 1}]}`},
		{"empty key", `{"version": 1, "entries": [{"key": "", "latency": 1}]}`},
		{"wrong key version", `{"version": 1, "entries": [{"key": "_w", "latency": 1}]}`}, // first byte 0xFF
		{"negative latency", `{"version": 1, "entries": [{"key": "` +
			base64.RawURLEncoding.EncodeToString(key) + `", "latency": -1}]}`},
	}
	for _, tc := range cases {
		c := NewCache()
		if _, err := c.Load(strings.NewReader(tc.data)); err == nil {
			t.Errorf("%s: Load accepted corrupt input", tc.name)
		}
		if c.Len() != 0 {
			t.Errorf("%s: corrupt load left %d entries behind", tc.name, c.Len())
		}
		// The cache must remain fully usable after a failed load.
		_, cl := c.GetOrBegin(key)
		if cl == nil {
			t.Fatalf("%s: cache unusable after failed load", tc.name)
		}
		cl.Commit(1)
		if lat, ok := c.Lookup(key); !ok || lat != 1 {
			t.Errorf("%s: cache broken after failed load", tc.name)
		}
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	c := NewCache()
	key := testKey([]gpusim.Stream{{kernel(11, 12)}})
	_, claim := c.GetOrBegin(key)
	claim.Commit(4e-6)
	path := t.TempDir() + "/cache.json"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache()
	if n, err := fresh.LoadFile(path); err != nil || n != 1 {
		t.Fatalf("LoadFile: n=%d err=%v", n, err)
	}
	if lat, ok := fresh.Lookup(key); !ok || lat != 4e-6 {
		t.Fatalf("LoadFile round trip: lat=%g ok=%v", lat, ok)
	}
	if _, err := NewCache().LoadFile(path + ".missing"); err == nil {
		t.Fatal("LoadFile on a missing path succeeded")
	}
}
