package measure

import (
	"sync"
	"sync/atomic"
)

// shardCount spreads the cache over independently locked shards so the DP
// engine's worker pool (and concurrent serving requests) rarely contend on
// one mutex. Power of two; the key hash below mixes well enough for a mask.
const shardCount = 32

// Cache is a concurrent, sharded, deduplicating map from canonical stage
// fingerprint (see Context/AppendStreams) to exact simulated latency.
//
// Lookups are singleflight per key: the first goroutine to miss claims the
// key and measures while concurrent requesters for the same fingerprint
// block until that one measurement is published, so a fingerprint is never
// simulated twice no matter how many search workers race to it. The cache
// only ever grows — entries are exact oracle outputs, so there is nothing
// to invalidate — and is safe for use from any number of goroutines.
//
// The zero value is not usable; call NewCache or NewCacheSize.
type Cache struct {
	shards [shardCount]cacheShard
	// perShardCap bounds each shard's resident entries (0 = unbounded):
	// exact oracle values are always recomputable, so a full shard sheds
	// arbitrary completed entries rather than maintaining LRU bookkeeping
	// on the measurement hot path. In-flight claims are never evicted.
	perShardCap int

	// size counts completed entries (maintained by Commit and insert) so
	// Len/Stats never scan the shards — /stats polls them on a hot cache.
	size      atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	loaded    atomic.Int64
	evicted   atomic.Int64
	remote    atomic.Int64

	// seq is the publication counter behind Snapshot's incremental
	// export: every completed entry is stamped with seq+1 at publication
	// time, always under its shard mutex, so a Snapshot holding every
	// shard mutex observes exactly the entries stamped ≤ its counter
	// read (see Snapshot in persist.go).
	seq atomic.Uint64

	// fetch, when set, is consulted on a miss — with the claim already
	// held, so concurrent requesters coalesce onto one remote fetch just
	// as they would onto one measurement. See SetFetch.
	fetch func(key []byte) (float64, bool)
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*entry // guarded by mu
}

// entry is one fingerprint's slot. The done/mu pair makes it a
// singleflight: the claiming goroutine holds mu from creation until
// Commit (or Abandon), so waiters that observe done=false block on mu
// until the latency is published. done is set with release semantics
// after lat is written, so the lock-free hit path reads a complete
// value. abandoned (written under mu) tells unblocked waiters the owner
// died without a result and the key must be retried.
type entry struct {
	done atomic.Bool
	mu   sync.Mutex
	lat  float64
	// seq is the publication stamp (see Cache.seq); written under the
	// owning shard's mutex immediately before done is set, read only by
	// Snapshot while holding that mutex.
	seq uint64
	// abandoned marks a claim released without a latency (the owner's
	// measurement panicked); read by waiters after acquiring mu.
	abandoned bool
}

// Claim is an exclusive lease on one missing fingerprint, returned by
// GetOrBegin: the holder must measure and call Commit — or, if the
// measurement fails, Abandon — exactly once (every other goroutine
// asking for the same key is blocked on it until then).
type Claim struct {
	c   *Cache
	sh  *cacheShard
	key string
	e   *entry
}

// Commit publishes the measured latency and releases the claim.
//
// The sequence stamp and the done flag are set together under the shard
// mutex so Snapshot (which holds every shard mutex) sees a consistent
// cut: an entry is visible to a snapshot if and only if its stamp is ≤
// the snapshot's counter read. The brief shard lock cannot deadlock:
// claim creation locks the entry before it is visible to anyone, so no
// goroutine ever blocks on an entry mutex while holding a shard mutex.
func (cl *Claim) Commit(lat float64) {
	cl.e.lat = lat
	cl.sh.mu.Lock()
	cl.e.seq = cl.c.seq.Add(1)
	cl.e.done.Store(true)
	cl.sh.mu.Unlock()
	cl.c.size.Add(1)
	cl.e.mu.Unlock()
}

// Abandon releases the claim without publishing a latency: the entry is
// removed from the cache (so the fingerprint stays measurable) and
// blocked waiters retry the key instead of reading a garbage value.
// Call it when the measurement cannot complete — e.g. from a deferred
// recover around a panicking backend — or the fingerprint would stay
// wedged forever for every future requester of a shared cache.
func (cl *Claim) Abandon() {
	cl.sh.mu.Lock()
	if cl.sh.m[cl.key] == cl.e {
		delete(cl.sh.m, cl.key)
	}
	cl.sh.mu.Unlock()
	cl.e.abandoned = true // under cl.e.mu, held since the claim
	cl.e.mu.Unlock()
}

// NewCache returns an empty, unbounded measurement cache — the right
// default for searches over a fixed workload, where the entry count is
// bounded by the workload's structure.
func NewCache() *Cache { return NewCacheSize(0) }

// NewCacheSize returns an empty cache holding at most maxEntries
// completed fingerprints (0 or negative = unbounded). Long-running
// processes measuring arbitrary client-supplied graphs — the serving
// tier — should be bounded: the cache otherwise only ever grows. Over
// capacity, arbitrary completed entries are shed (they are exact oracle
// outputs, so eviction costs a re-simulation, never correctness);
// in-flight claims are never evicted.
func NewCacheSize(maxEntries int) *Cache {
	c := &Cache{}
	if maxEntries > 0 {
		c.perShardCap = (maxEntries + shardCount - 1) / shardCount
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry)
	}
	return c
}

// trimShardLocked sheds completed entries until the shard fits its cap.
// Caller holds sh.mu. Map iteration order is effectively random, which is
// exactly the cheap eviction policy wanted here.
func (c *Cache) trimShardLocked(sh *cacheShard) {
	if c.perShardCap <= 0 {
		return
	}
	for k, e := range sh.m {
		if len(sh.m) <= c.perShardCap {
			return
		}
		if !e.done.Load() {
			continue // never evict an in-flight claim
		}
		delete(sh.m, k)
		c.size.Add(-1)
		c.evicted.Add(1)
	}
}

// GetOrBegin looks up a fingerprint. On a hit (or after waiting out
// another goroutine's in-flight measurement of the same key) it returns
// the cached latency and a nil Claim. On a miss it returns a non-nil
// Claim: the caller now owns the key and must measure and Commit (or
// Abandon on failure).
//
// The key may point into a reusable scratch buffer: the cache copies it
// on insertion and never retains the caller's slice.
//
//ioslint:lockorder-allow entry.mu the claim deliberately holds its freshly created entry lock across the fetch hook — that IS the singleflight: waiters block on entry.mu instead of re-measuring, and Commit/Abandon release it
func (c *Cache) GetOrBegin(key []byte) (float64, *Claim) {
	sh := &c.shards[shardOf(key)]
	for {
		sh.mu.Lock()
		e, ok := sh.m[string(key)] // no-copy map lookup
		if !ok {
			ks := string(key)
			e = &entry{}
			// Lock the entry before it becomes visible: any goroutine
			// that finds it will block on mu until Commit publishes the
			// latency (or Abandon sends it back around this loop).
			//lint:ioslint-ignore lockorder the entry lock is taken before the entry is visible in the shard map, so no goroutine can block on entry.mu while holding a shard mutex; Commit's entry-then-shard order is therefore acyclic in practice
			e.mu.Lock()
			c.trimShardLocked(sh)
			sh.m[ks] = e
			sh.mu.Unlock()
			cl := &Claim{c: c, sh: sh, key: ks, e: e}
			if f := c.fetch; f != nil {
				if lat, ok := runFetch(cl, f, key); ok {
					cl.Commit(lat)
					c.remote.Add(1)
					return lat, nil
				}
			}
			c.misses.Add(1)
			return 0, cl
		}
		sh.mu.Unlock()
		if e.done.Load() {
			c.hits.Add(1)
			return e.lat, nil
		}
		// In flight on another goroutine: wait for its Commit.
		// Measurement holders never acquire a second entry while holding
		// one, so this cannot deadlock.
		c.coalesced.Add(1)
		e.mu.Lock()
		abandoned := e.abandoned
		lat := e.lat
		e.mu.Unlock()
		if abandoned {
			// The owner died without a result and removed the entry;
			// retry the key — we (or another waiter) become the new
			// owner.
			continue
		}
		return lat, nil
	}
}

// SetFetch installs a remote-fetch hook consulted on every miss, while
// the claim is already held: a hook hit is committed (and counted in
// Stats.Remote, not Misses) exactly as if the holder had measured it, so
// concurrent requesters coalesce onto one fetch and the hook's result is
// shared. A hook miss falls through to the normal claim — the caller
// measures locally. The hook must not call back into the cache for the
// same key.
//
// SetFetch must be called before the cache is shared between goroutines
// (it is a plain field write, wired once at cluster-node construction).
func (c *Cache) SetFetch(f func(key []byte) (float64, bool)) { c.fetch = f }

// runFetch runs the fetch hook with the claim held, abandoning the claim
// if the hook panics so the fingerprint is not wedged for every future
// requester while the panic propagates.
func runFetch(cl *Claim, f func([]byte) (float64, bool), key []byte) (lat float64, ok bool) {
	returned := false
	defer func() {
		if !returned {
			cl.Abandon()
		}
	}()
	lat, ok = f(key)
	returned = true
	return lat, ok
}

// Lookup returns the latency for a completed fingerprint without claiming
// or waiting; it reports false for absent and in-flight keys. Counters are
// untouched. Intended for tests and tooling.
func (c *Cache) Lookup(key []byte) (float64, bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	e, ok := sh.m[string(key)]
	sh.mu.Unlock()
	if !ok || !e.done.Load() {
		return 0, false
	}
	return e.lat, true
}

// insert adds a completed entry if the key is absent (used by Load; an
// existing entry — completed or in flight — wins, since by construction
// both sides hold the same oracle value). Reports whether it inserted.
func (c *Cache) insert(key string, lat float64) bool {
	sh := &c.shards[shardOf([]byte(key))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		return false
	}
	c.trimShardLocked(sh)
	e := &entry{lat: lat, seq: c.seq.Add(1)}
	e.done.Store(true)
	sh.m[key] = e
	c.size.Add(1)
	return true
}

// Len returns the number of completed entries (O(1): a counter, not a
// shard scan — Stats is polled per /stats request on hot caches).
func (c *Cache) Len() int { return int(c.size.Load()) }

// Stats is a snapshot of the cache's traffic counters. All counters are
// cumulative since the cache was created.
type Stats struct {
	// Size is the number of resident completed entries.
	Size int `json:"size"`
	// Hits served a completed latency without simulating.
	Hits int64 `json:"hits"`
	// Misses claimed a fingerprint and ran the simulator.
	Misses int64 `json:"misses"`
	// Coalesced requests arrived while the same fingerprint was being
	// measured and waited for that in-flight run instead of starting
	// their own — the singleflight dedup count.
	Coalesced int64 `json:"coalesced"`
	// Loaded counts entries inserted from a persisted cache file.
	Loaded int64 `json:"loaded"`
	// Evicted counts completed entries shed over capacity (0 for
	// unbounded caches).
	Evicted int64 `json:"evicted"`
	// Remote counts misses satisfied by the fetch hook (SetFetch) —
	// entries pulled from a peer instead of measured locally. A remote
	// hit is neither a Hit (it was not resident) nor a Miss (no
	// simulator ran).
	Remote int64 `json:"remote"`
}

// Saved returns the number of simulator invocations the cache avoided:
// every hit, every coalesced wait, and every remote fetch would have
// been a measurement.
func (s Stats) Saved() int64 { return s.Hits + s.Coalesced + s.Remote }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Size:      c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Loaded:    c.loaded.Load(),
		Evicted:   c.evicted.Load(),
		Remote:    c.remote.Load(),
	}
}

// shardOf hashes a key to its shard (FNV-1a over the bytes; key bytes are
// dominated by float bit patterns, which FNV spreads fine for a 5-bit
// shard index — this is not the lookup hash, Go's map provides that).
func shardOf(key []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	// Fold the high bits in: FNV's low bits alone are weak for keys that
	// differ only in trailing float payloads.
	return int((h ^ h>>32) & (shardCount - 1))
}
