package measure

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"ios/internal/gpusim"
)

func fillKey(i int) []byte {
	return testKey([]gpusim.Stream{{kernel(float64(1+i)*1e6, 2e6)}})
}

func mustFill(t *testing.T, c *Cache, key []byte, lat float64) {
	t.Helper()
	if _, cl := c.GetOrBegin(key); cl != nil {
		cl.Commit(lat)
	}
}

func TestSnapshotIncremental(t *testing.T) {
	c := NewCache()
	mustFill(t, c, fillKey(0), 1e-6)
	mustFill(t, c, fillKey(1), 2e-6)

	full, cut := c.Snapshot(0)
	if len(full) != 2 {
		t.Fatalf("full snapshot has %d entries, want 2", len(full))
	}
	// In-flight (uncommitted) fills are invisible.
	_, pending := c.GetOrBegin(fillKey(9))
	if got, _ := c.Snapshot(0); len(got) != 2 {
		t.Fatalf("snapshot saw an uncommitted fill: %d entries", len(got))
	}
	pending.Abandon()

	if inc, _ := c.Snapshot(cut); len(inc) != 0 {
		t.Fatalf("incremental snapshot at the cut has %d entries, want 0", len(inc))
	}
	mustFill(t, c, fillKey(2), 3e-6)
	inc, cut2 := c.Snapshot(cut)
	if len(inc) != 1 {
		t.Fatalf("incremental snapshot has %d entries, want exactly the new one", len(inc))
	}
	if cut2 <= cut {
		t.Fatalf("cut did not advance: %d -> %d", cut, cut2)
	}
	_, lat, err := inc[0].Decode()
	if err != nil || lat != 3e-6 {
		t.Fatalf("incremental entry decodes to %g (%v), want 3e-6", lat, err)
	}
}

func TestMergeRoundTripAndDedup(t *testing.T) {
	src := NewCache()
	mustFill(t, src, fillKey(0), 1e-6)
	mustFill(t, src, fillKey(1), 2e-6)
	entries, _ := src.Snapshot(0)

	dst := NewCache()
	added, err := dst.Merge(entries)
	if err != nil || added != 2 {
		t.Fatalf("Merge = (%d, %v), want (2, nil)", added, err)
	}
	if lat, ok := dst.Lookup(fillKey(1)); !ok || lat != 2e-6 {
		t.Fatalf("merged lookup = (%g, %v)", lat, ok)
	}
	if added, err := dst.Merge(entries); err != nil || added != 0 {
		t.Fatalf("re-Merge = (%d, %v), want (0, nil)", added, err)
	}
	if st := dst.Stats(); st.Loaded != 2 {
		t.Fatalf("Loaded = %d, want 2", st.Loaded)
	}
}

func TestMergeAllOrNothing(t *testing.T) {
	src := NewCache()
	mustFill(t, src, fillKey(0), 1e-6)
	entries, _ := src.Snapshot(0)
	bad := entries[0]
	bad.Latency = -1
	batch := []WireEntry{entries[0], bad}

	dst := NewCache()
	if added, err := dst.Merge(batch); err == nil {
		t.Fatalf("Merge accepted a negative latency (added %d)", added)
	}
	if st := dst.Stats(); st.Size != 0 {
		t.Fatalf("rejected Merge still inserted %d entries", st.Size)
	}
}

func TestExportSubset(t *testing.T) {
	c := NewCache()
	mustFill(t, c, fillKey(0), 1e-6)
	mustFill(t, c, fillKey(1), 2e-6)
	out := c.Export([][]byte{fillKey(1), fillKey(7)})
	if len(out) != 1 {
		t.Fatalf("Export returned %d entries, want 1", len(out))
	}
	if _, lat, err := out[0].Decode(); err != nil || lat != 2e-6 {
		t.Fatalf("exported latency %g (%v), want 2e-6", lat, err)
	}
}

func TestFetchHook(t *testing.T) {
	c := NewCache()
	c.SetFetch(func(k []byte) (float64, bool) { return 4.5e-6, true })
	lat, cl := c.GetOrBegin(fillKey(0))
	if cl != nil || lat != 4.5e-6 {
		t.Fatalf("GetOrBegin with fetch hit = (%g, %v)", lat, cl)
	}
	st := c.Stats()
	if st.Remote != 1 || st.Misses != 0 || st.Size != 1 {
		t.Fatalf("stats after remote hit = %+v", st)
	}
	c.SetFetch(func(k []byte) (float64, bool) { return 0, false })
	if _, cl := c.GetOrBegin(fillKey(1)); cl == nil {
		t.Fatal("fetch miss did not fall through to a claim")
	} else {
		cl.Commit(1e-6)
	}
	// A panicking hook abandons the claim instead of wedging it.
	c.SetFetch(func(k []byte) (float64, bool) { panic("boom") })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		c.GetOrBegin(fillKey(2))
	}()
	c.SetFetch(nil)
	if _, cl := c.GetOrBegin(fillKey(2)); cl == nil {
		t.Fatal("claim wedged after hook panic")
	} else {
		cl.Commit(1e-6)
	}
}

// TestSaveFileDuringActiveFills: checkpointing a cache under live fills
// always yields a loadable, consistent file.
func TestSaveFileDuringActiveFills(t *testing.T) {
	c := NewCache()
	path := filepath.Join(t.TempDir(), "measure.json")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := testKey([]gpusim.Stream{{kernel(float64(w*1000+i%200+1), 7)}})
				if _, cl := c.GetOrBegin(k); cl != nil {
					cl.Commit(float64(i%50+1) * 1e-7)
				}
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		if err := c.SaveFile(path); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("save %d: %v", i, err)
		}
		fresh := NewCache()
		if _, err := fresh.LoadFile(path); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("load of save %d: %v", i, fmt.Errorf("%w", err))
		}
	}
	close(stop)
	wg.Wait()
}
