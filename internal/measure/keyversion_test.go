// Version-byte discipline tests: the set of fp:"include" fields the
// canonical key encoding covers is pinned, per KeyVersion, as data.
// Growing or shrinking a fingerprinted type without bumping KeyVersion
// would let persisted caches from older builds silently collide with the
// new encoding; these tests turn that mistake into a test failure with
// instructions instead.
package measure_test

import (
	"reflect"
	"testing"

	"ios/internal/gpusim"
	"ios/internal/measure"
)

// keyVersion1Includes pins the exact fp:"include" field sets, in
// declaration order, that KeyVersion 1 of the encoding covers (Context
// consumes Spec; AppendStreams consumes Kernel). The ioslint fingerprint
// analyzer separately proves the encoders consume every listed field.
var keyVersion1Includes = []struct {
	typ  reflect.Type
	want []string
}{
	{reflect.TypeOf(gpusim.Spec{}), []string{
		"Name", "SMs", "PeakFLOPs", "MemBandwidth", "BlocksPerSM",
		"WarpsPerSM", "WarpsForPeak", "KernelLaunch", "StageSync",
		"ContentionCoef", "MaxConcurrentKernels",
	}},
	{reflect.TypeOf(gpusim.Kernel{}), []string{
		"FLOPs", "Bytes", "Blocks", "WarpsPerBlock",
	}},
}

// includeFields lists a struct's fp:"include" fields in declaration
// order, failing the test on a field with a missing or unknown fp tag.
func includeFields(t *testing.T, typ reflect.Type) []string {
	t.Helper()
	var fields []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		switch tag := f.Tag.Get("fp"); tag {
		case "include":
			fields = append(fields, f.Name)
		case "exempt":
		default:
			t.Fatalf("%s.%s has fp tag %q; every field of a fingerprinted type must carry fp:\"include\" or fp:\"exempt\"", typ.Name(), f.Name, tag)
		}
	}
	return fields
}

// TestKeyVersionPinsIncludeSets fails when the fp:"include" field set of
// a fingerprinted type changes while KeyVersion still says 1 — the
// change alters what cache keys mean, so the version byte must move with
// it (and this pin must be re-recorded under the new version).
func TestKeyVersionPinsIncludeSets(t *testing.T) {
	if measure.KeyVersion != 1 {
		t.Fatalf("measure.KeyVersion = %d: the encoding moved on; re-pin keyVersion1Includes for the new version", measure.KeyVersion)
	}
	for _, pin := range keyVersion1Includes {
		got := includeFields(t, pin.typ)
		if !reflect.DeepEqual(got, pin.want) {
			t.Errorf("%s fp:\"include\" fields = %v, want %v\nchanging the field set a cache key covers requires bumping measure.KeyVersion and re-pinning this test", pin.typ.Name(), got, pin.want)
		}
	}
}

// TestContextLeadsWithVersionByte pins the wire position of the version
// byte: Load's stale-cache rejection reads key[0].
func TestContextLeadsWithVersionByte(t *testing.T) {
	key := measure.Context(gpusim.TeslaV100, 0)
	if len(key) == 0 || key[0] != measure.KeyVersion {
		t.Fatalf("Context key leads with byte %d, want KeyVersion %d", key[0], measure.KeyVersion)
	}
}
