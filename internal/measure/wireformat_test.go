// Wire-format pinning tests: WireEntry is the unit of both the
// persisted cache file and cluster peer exchange, so its field set, its
// JSON tags, the file's version stamp, and the key's leading version
// byte are all pinned as data. Widening the wire format without moving
// a version fails here with instructions instead of silently shipping
// records old peers misread.
package measure_test

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ios/internal/measure"
)

// wireEntryV1Fields pins WireEntry's exact (field, json tag) pairs in
// declaration order for the current format.
var wireEntryV1Fields = [][2]string{
	{"Key", "key"},
	{"Latency", "latency"},
}

func TestWireEntryFieldSetPinned(t *testing.T) {
	typ := reflect.TypeOf(measure.WireEntry{})
	if typ.NumField() != len(wireEntryV1Fields) {
		t.Fatalf("measure.WireEntry has %d fields, want %d: changing the wire field set changes what every peer and cache file exchange means — bump the persisted-file version (and KeyVersion if key semantics moved), then re-pin this test", typ.NumField(), len(wireEntryV1Fields))
	}
	for i, want := range wireEntryV1Fields {
		f := typ.Field(i)
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if f.Name != want[0] || tag != want[1] {
			t.Errorf("WireEntry field %d = %s (json %q), want %s (json %q)", i, f.Name, tag, want[0], want[1])
		}
	}
}

func TestWireFileVersionPinned(t *testing.T) {
	var buf bytes.Buffer
	if err := measure.NewCache().Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var file struct {
		Version int               `json:"version"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("cache file is not JSON: %v\n%s", err, buf.String())
	}
	if file.Version != 1 {
		t.Fatalf("persisted cache file version = %d, want 1: a format change must re-pin this test so old files are rejected loudly", file.Version)
	}
}

func TestWireEntryDecodeRejectsForeignVersionByte(t *testing.T) {
	key := append([]byte{measure.KeyVersion + 1}, "payload"...)
	we := measure.WireEntry{Key: base64.RawURLEncoding.EncodeToString(key), Latency: 1}
	if _, _, err := we.Decode(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("Decode of a foreign version byte: err = %v, want key-version mismatch", err)
	}
}
