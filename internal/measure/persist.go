package measure

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// fileVersion is the persisted-file format version (independent of
// KeyVersion, which versions the key encoding itself and is embedded in
// every key's first byte).
const fileVersion = 1

// cacheFile is the persisted JSON form of a cache: a version stamp plus
// one (fingerprint, latency) pair per completed entry.
type cacheFile struct {
	Version int         `json:"version"`
	Entries []fileEntry `json:"entries"`
}

type fileEntry struct {
	// Key is the canonical fingerprint, base64 (raw URL alphabet).
	Key string `json:"key"`
	// Latency is the cached simulator output in seconds.
	Latency float64 `json:"latency"`
}

// Save writes every completed entry as JSON. In-flight entries are
// skipped (their owners have not published a latency yet). Entries are
// sorted by fingerprint, so the file is a pure function of the cache
// contents: identical runs produce byte-identical cache files.
func (c *Cache) Save(w io.Writer) error {
	type rawEntry struct {
		key string
		lat float64
	}
	var entries []rawEntry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			if e.done.Load() {
				entries = append(entries, rawEntry{key: k, lat: e.lat})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	out := cacheFile{Version: fileVersion, Entries: make([]fileEntry, 0, len(entries))}
	for _, e := range entries {
		out.Entries = append(out.Entries, fileEntry{
			Key:     base64.RawURLEncoding.EncodeToString([]byte(e.key)),
			Latency: e.lat,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load merges a previously saved cache into c, returning how many entries
// were added (already-present fingerprints are kept, not overwritten —
// both sides hold the same oracle value by construction).
//
// Load is all-or-nothing: the whole file is parsed and validated before a
// single entry is inserted, so a corrupt, truncated, or version-mismatched
// file returns an error and leaves the cache exactly as it was — callers
// fall back to a cold cache instead of half-poisoned state.
func (c *Cache) Load(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("measure: read cache: %w", err)
	}
	var in cacheFile
	if err := json.Unmarshal(data, &in); err != nil {
		return 0, fmt.Errorf("measure: parse cache: %w", err)
	}
	if in.Version != fileVersion {
		return 0, fmt.Errorf("measure: cache file version %d, want %d", in.Version, fileVersion)
	}
	keys := make([]string, len(in.Entries))
	for i, e := range in.Entries {
		raw, err := base64.RawURLEncoding.DecodeString(e.Key)
		if err != nil {
			return 0, fmt.Errorf("measure: cache entry %d: bad key: %w", i, err)
		}
		if len(raw) == 0 || raw[0] != KeyVersion {
			return 0, fmt.Errorf("measure: cache entry %d: key encoding version mismatch (cache built by an incompatible version)", i)
		}
		if math.IsNaN(e.Latency) || math.IsInf(e.Latency, 0) || e.Latency < 0 {
			return 0, fmt.Errorf("measure: cache entry %d: invalid latency %v", i, e.Latency)
		}
		keys[i] = string(raw)
	}
	added := 0
	for i, e := range in.Entries {
		if c.insert(keys[i], e.Latency) {
			added++
		}
	}
	c.loaded.Add(int64(added))
	return added, nil
}

// SaveFile writes the cache to path (via a temp file + rename, so a crash
// mid-save never truncates a previously good cache file).
func (c *Cache) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".measure-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile merges the cache file at path into c; see Load.
func (c *Cache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return c.Load(f)
}
