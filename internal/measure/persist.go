package measure

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// fileVersion is the persisted-file format version (independent of
// KeyVersion, which versions the key encoding itself and is embedded in
// every key's first byte).
const fileVersion = 1

// cacheFile is the persisted JSON form of a cache: a version stamp plus
// one (fingerprint, latency) pair per completed entry. The same
// WireEntry records travel between cluster peers, so persistence and
// peer exchange share one serialization path.
type cacheFile struct {
	Version int         `json:"version"`
	Entries []WireEntry `json:"entries"`
}

// WireEntry is the wire form of one completed measurement — the unit of
// both the persisted cache file and cluster peer exchange.
type WireEntry struct {
	// Key is the canonical fingerprint, base64 (raw URL alphabet).
	Key string `json:"key"`
	// Latency is the cached simulator output in seconds.
	Latency float64 `json:"latency"`
}

// Decode validates a wire entry and returns its raw fingerprint and
// latency. It rejects malformed base64, keys built by an incompatible
// fingerprint-encoding version, and non-finite or negative latencies.
//
//ioslint:validator
func (we WireEntry) Decode() ([]byte, float64, error) {
	raw, err := base64.RawURLEncoding.DecodeString(we.Key)
	if err != nil {
		return nil, 0, fmt.Errorf("bad key: %w", err)
	}
	if len(raw) == 0 || raw[0] != KeyVersion {
		return nil, 0, fmt.Errorf("key encoding version mismatch (cache built by an incompatible version)")
	}
	if math.IsNaN(we.Latency) || math.IsInf(we.Latency, 0) || we.Latency < 0 {
		return nil, 0, fmt.Errorf("invalid latency %v", we.Latency)
	}
	return raw, we.Latency, nil
}

// Snapshot exports every completed entry published after the given
// sequence point, sorted by fingerprint, plus the sequence point to pass
// to the next incremental Snapshot. Snapshot(0) exports the whole cache
// (the persisted-file body); a cluster pusher feeds each call's returned
// point back in to ship only what was published since its last round.
//
// The cut is exact: publication stamps the sequence under the entry's
// shard mutex, and Snapshot holds every shard mutex while it scans and
// reads the counter, so no concurrent Commit can land inside the cut
// unseen. Entries evicted between snapshots are simply absent — they
// are exact oracle outputs and always recomputable.
func (c *Cache) Snapshot(since uint64) ([]WireEntry, uint64) {
	type rawEntry struct {
		key string
		lat float64
	}
	var rows []rawEntry
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	for i := range c.shards {
		for k, e := range c.shards[i].m {
			if e.done.Load() && e.seq > since {
				rows = append(rows, rawEntry{key: k, lat: e.lat})
			}
		}
	}
	next := c.seq.Load()
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	out := make([]WireEntry, 0, len(rows))
	for _, r := range rows {
		out = append(out, WireEntry{
			Key:     base64.RawURLEncoding.EncodeToString([]byte(r.key)),
			Latency: r.lat,
		})
	}
	return out, next
}

// Export returns the wire form of the completed entries among keys, in
// key order of the input; absent and in-flight keys are skipped. This is
// the lookup side of peer exchange: a peer asks for specific
// fingerprints and gets back only what this cache has finished.
func (c *Cache) Export(keys [][]byte) []WireEntry {
	out := make([]WireEntry, 0, len(keys))
	for _, key := range keys {
		if lat, ok := c.Lookup(key); ok {
			out = append(out, WireEntry{
				Key:     base64.RawURLEncoding.EncodeToString(key),
				Latency: lat,
			})
		}
	}
	return out
}

// Merge validates wire entries and inserts the absent ones, returning
// how many were added (already-present fingerprints are kept, not
// overwritten — both sides hold the same oracle value by construction).
// Merge is all-or-nothing: every entry is validated before a single one
// is inserted, so a corrupt batch leaves the cache exactly as it was.
// Added entries count toward Stats.Loaded.
//
//ioslint:validator
func (c *Cache) Merge(entries []WireEntry) (int, error) {
	keys := make([]string, len(entries))
	lats := make([]float64, len(entries))
	for i, we := range entries {
		raw, lat, err := we.Decode()
		if err != nil {
			return 0, fmt.Errorf("measure: cache entry %d: %w", i, err)
		}
		keys[i], lats[i] = string(raw), lat
	}
	added := 0
	for i := range keys {
		if c.insert(keys[i], lats[i]) {
			added++
		}
	}
	c.loaded.Add(int64(added))
	return added, nil
}

// Save writes every completed entry as JSON. In-flight entries are
// skipped (their owners have not published a latency yet). Entries are
// sorted by fingerprint, so the file is a pure function of the cache
// contents: identical runs produce byte-identical cache files.
func (c *Cache) Save(w io.Writer) error {
	entries, _ := c.Snapshot(0)
	enc := json.NewEncoder(w)
	return enc.Encode(cacheFile{Version: fileVersion, Entries: entries})
}

// Load merges a previously saved cache into c, returning how many entries
// were added (already-present fingerprints are kept, not overwritten —
// both sides hold the same oracle value by construction).
//
// Load is all-or-nothing: the whole file is parsed and validated before a
// single entry is inserted, so a corrupt, truncated, or version-mismatched
// file returns an error and leaves the cache exactly as it was — callers
// fall back to a cold cache instead of half-poisoned state.
func (c *Cache) Load(r io.Reader) (int, error) {
	data, err := io.ReadAll(r) //ioslint:untrusted persisted cache file bytes
	if err != nil {
		return 0, fmt.Errorf("measure: read cache: %w", err)
	}
	var in cacheFile
	if err := json.Unmarshal(data, &in); err != nil {
		return 0, fmt.Errorf("measure: parse cache: %w", err)
	}
	if in.Version != fileVersion {
		return 0, fmt.Errorf("measure: cache file version %d, want %d", in.Version, fileVersion)
	}
	return c.Merge(in.Entries)
}

// SaveFile writes the cache to path (via a temp file + rename, so a crash
// mid-save never truncates a previously good cache file). Safe to call
// while fills are in flight: Snapshot cuts a consistent set of completed
// entries, so the file is loadable all-or-nothing regardless of what was
// mid-measurement during the save.
func (c *Cache) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".measure-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile merges the cache file at path into c; see Load.
func (c *Cache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return c.Load(f)
}
