//ioslint:deterministic

// Package measure is the structural measurement cache behind IOS's
// profiling layer: a process-wide, concurrency-safe map from a canonical
// stage fingerprint to the exact simulated latency of that stage.
//
// The paper's workloads are highly repetitive — NasNet-A is a stack of
// near-identical cells, Inception repeats block structure, and a serving
// tier re-optimizes the same models across requests — yet the search's
// stage memos are keyed by node identity and scoped to one block of one
// search, so every repeated structure is re-simulated from scratch. This
// package deduplicates that work by *structural* identity instead: two
// stages whose lowered kernel programs are identical (same per-stream
// kernel signatures on the same device model) have, by the simulator's
// determinism, exactly the same latency, no matter which nodes, which
// block, which search, or which process run produced them.
//
// Correctness rests on the key being an exact canonical serialization of
// the measurement input, not a lossy hash: a cache hit returns the very
// float64 the simulator would have computed, so schedules, costs, and DP
// state/transition statistics are bit-identical with the cache on or off —
// only the number of simulator invocations drops.
package measure

import (
	"encoding/binary"
	"math"

	"ios/internal/gpusim"
)

// KeyVersion is the first byte of every cache key: the version of the
// canonical encoding below. Bump it whenever the encoding (or the set of
// latency-relevant fields it covers) changes, so persisted caches from
// older builds are rejected at Load instead of silently mismatching.
const KeyVersion = 1

// Context returns the canonical cache-key prefix for a measurement
// substrate: every device-model field that can influence a simulated
// latency, plus the profiler's per-kernel framework dispatch overhead
// (which is folded into kernel byte counts before the simulator runs).
// Keys built on the same Context prefix are comparable; keys from
// different devices or lowering overheads never collide, which is what
// lets one process-wide cache serve requests for several devices.
//
// Spec.Name is included even though the simulator's arithmetic never
// reads it: for the built-in simulator a latency is a pure function of
// the numeric fields, but a custom profile.Backend is identified only by
// its Spec, so the name is the one handle that keeps two backends with
// numerically identical specs (e.g. a hardware harness modeled after the
// V100) from silently serving each other's latencies out of a shared
// cache. Custom backends sharing a cache must therefore use distinct
// Spec names — the same convention the serving tier's schedule cache
// already relies on.
//
//ioslint:fingerprint ios/internal/gpusim.Spec
func Context(spec gpusim.Spec, extraLaunchOverhead float64) []byte {
	key := make([]byte, 0, 96+len(spec.Name))
	key = append(key, KeyVersion)
	key = appendInt(key, len(spec.Name))
	key = append(key, spec.Name...)
	key = appendInt(key, spec.SMs)
	key = appendFloat(key, spec.PeakFLOPs)
	key = appendFloat(key, spec.MemBandwidth)
	key = appendInt(key, spec.BlocksPerSM)
	key = appendInt(key, spec.WarpsPerSM)
	key = appendInt(key, spec.WarpsForPeak)
	key = appendFloat(key, spec.KernelLaunch)
	key = appendFloat(key, spec.StageSync)
	key = appendFloat(key, spec.ContentionCoef)
	key = appendInt(key, spec.MaxConcurrentKernels)
	key = appendFloat(key, extraLaunchOverhead)
	return key
}

// AppendStreams appends the canonical encoding of a stage's stream
// programs — the stage's concurrency-group structure down to per-kernel
// launch signatures — to a key (normally a Context prefix) and returns the
// extended slice. The encoding is length-prefixed at every level, so it is
// an unambiguous serialization: equal keys imply equal stream programs.
//
// Kernel names are excluded (they label traces, carry node names, and
// never influence the simulator), which is precisely what makes the
// fingerprint invariant to node identity and graph position. Stream order
// is preserved: callers measuring canonically ordered stages (as the DP
// engine and MeasureStage both do) get position-invariant sharing without
// this package having to assert that the simulator is order-invariant.
//
//ioslint:fingerprint ios/internal/gpusim.Kernel
func AppendStreams(key []byte, streams []gpusim.Stream) []byte {
	key = appendInt(key, len(streams))
	for _, s := range streams {
		key = appendInt(key, len(s))
		for i := range s {
			k := &s[i]
			key = appendFloat(key, k.FLOPs)
			key = appendFloat(key, k.Bytes)
			key = appendInt(key, k.Blocks)
			key = appendInt(key, k.WarpsPerBlock)
		}
	}
	return key
}

// appendFloat appends the IEEE-754 bit pattern, little-endian. Encoding
// bits (not a decimal rendering) keeps the key exact: distinct float64
// values always produce distinct bytes.
func appendFloat(key []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(key, math.Float64bits(v))
}

// appendInt appends a non-negative int as a uvarint (self-delimiting, so
// mixed fixed/varint records still decode unambiguously).
func appendInt(key []byte, v int) []byte {
	return binary.AppendUvarint(key, uint64(v))
}
