package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// JSON (de)serialization of computation graphs, used by cmd/iosopt so
// schedules can be produced for externally defined models.

type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
}

type jsonNode struct {
	Name   string   `json:"name"`
	Op     string   `json:"op"`
	Inputs []string `json:"inputs,omitempty"`

	// Input shape (op == "input").
	Shape *[4]int `json:"shape,omitempty"`

	// Conv / sepconv / pool parameters.
	Out     int    `json:"out,omitempty"`
	KernelH int    `json:"kernel_h,omitempty"`
	KernelW int    `json:"kernel_w,omitempty"`
	StrideH int    `json:"stride_h,omitempty"`
	StrideW int    `json:"stride_w,omitempty"`
	PadH    int    `json:"pad_h,omitempty"`
	PadW    int    `json:"pad_w,omitempty"`
	Groups  int    `json:"groups,omitempty"`
	Act     string `json:"act,omitempty"`
	Pool    string `json:"pool,omitempty"`

	// Matmul.
	OutFeatures int `json:"out_features,omitempty"`
}

// MarshalJSON serializes the graph.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := jsonGraph{Name: g.Name}
	for _, n := range g.Nodes {
		jn := jsonNode{Name: n.Name, Op: n.Op.Kind.String()}
		for _, in := range n.Inputs {
			jn.Inputs = append(jn.Inputs, in.Name)
		}
		switch n.Op.Kind {
		case OpInput:
			s := n.Output
			jn.Shape = &[4]int{s.N, s.C, s.H, s.W}
		case OpConv, OpSepConv:
			jn.Out = n.Op.OutChannels
			jn.KernelH, jn.KernelW = n.Op.KernelH, n.Op.KernelW
			jn.StrideH, jn.StrideW = n.Op.StrideH, n.Op.StrideW
			jn.PadH, jn.PadW = n.Op.PadH, n.Op.PadW
			jn.Groups = n.Op.Groups
			jn.Act = n.Op.Act.String()
		case OpPool:
			jn.KernelH, jn.KernelW = n.Op.KernelH, n.Op.KernelW
			jn.StrideH, jn.StrideW = n.Op.StrideH, n.Op.StrideW
			jn.PadH, jn.PadW = n.Op.PadH, n.Op.PadW
			jn.Pool = n.Op.Pool.String()
		case OpMatmul:
			jn.OutFeatures = n.Op.OutFeatures
		}
		out.Nodes = append(out.Nodes, jn)
	}
	return json.MarshalIndent(out, "", "  ")
}

// Fingerprint returns a short stable content hash of the graph (16 hex
// digits of the SHA-256 of its canonical JSON form). Two graphs with the
// same structure, operator parameters, and node names share a fingerprint,
// so it can key caches of per-graph artifacts such as optimized schedules.
// The batch size is part of the input shapes and therefore of the hash.
func (g *Graph) Fingerprint() (string, error) {
	data, err := g.MarshalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8]), nil
}

// FromJSON reconstructs a graph. Nodes must appear in topological order.
func FromJSON(data []byte) (*Graph, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	g := New(jg.Name)
	for i, jn := range jg.Nodes {
		ins := make([]*Node, 0, len(jn.Inputs))
		for _, name := range jn.Inputs {
			n := g.NodeByName(name)
			if n == nil {
				return nil, fmt.Errorf("graph: node %d (%q) references unknown input %q (inputs must precede consumers)", i, jn.Name, name)
			}
			ins = append(ins, n)
		}
		op, err := jn.toOp()
		if err != nil {
			return nil, fmt.Errorf("graph: node %q: %w", jn.Name, err)
		}
		if op.Kind == OpInput {
			if jn.Shape == nil {
				return nil, fmt.Errorf("graph: input node %q needs a shape", jn.Name)
			}
			s := *jn.Shape
			g.Input(jn.Name, Shape{N: s[0], C: s[1], H: s[2], W: s[3]})
			continue
		}
		shapes := make([]Shape, len(ins))
		for j, in := range ins {
			shapes[j] = in.Output
		}
		out, err := outputShape(op, shapes)
		if err != nil {
			return nil, fmt.Errorf("graph: node %q: %w", jn.Name, err)
		}
		g.add(jn.Name, op, ins, out)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func (jn jsonNode) toOp() (Op, error) {
	var op Op
	switch jn.Op {
	case "input":
		op.Kind = OpInput
		return op, nil
	case "conv":
		op.Kind = OpConv
	case "sepconv":
		op.Kind = OpSepConv
	case "pool":
		op.Kind = OpPool
	case "matmul":
		op.Kind = OpMatmul
		op.OutFeatures = jn.OutFeatures
		return op, nil
	case "concat":
		op.Kind = OpConcat
		return op, nil
	case "add":
		op.Kind = OpAdd
		return op, nil
	case "relu":
		op.Kind = OpReLU
		return op, nil
	case "identity":
		op.Kind = OpIdentity
		return op, nil
	case "globalpool":
		op.Kind = OpGlobalPool
		return op, nil
	default:
		return op, fmt.Errorf("unknown op %q", jn.Op)
	}
	op.OutChannels = jn.Out
	op.KernelH, op.KernelW = orDefault(jn.KernelH, 1), orDefault(jn.KernelW, 1)
	op.StrideH, op.StrideW = orDefault(jn.StrideH, 1), orDefault(jn.StrideW, 1)
	op.PadH, op.PadW = jn.PadH, jn.PadW
	op.Groups = orDefault(jn.Groups, 1)
	switch jn.Act {
	case "relu":
		op.Act = ActReLU
	case "", "none":
		op.Act = ActNone
	default:
		return op, fmt.Errorf("unknown activation %q", jn.Act)
	}
	switch jn.Pool {
	case "avg":
		op.Pool = AvgPool
	case "", "max":
		op.Pool = MaxPool
	default:
		return op, fmt.Errorf("unknown pool kind %q", jn.Pool)
	}
	return op, nil
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
