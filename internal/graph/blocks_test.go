package graph

import (
	"math/rand"
	"testing"
)

// chainGraph builds in -> c1 -> c2 -> ... -> cN.
func chainGraph(n int) *Graph {
	g := New("chain")
	x := g.Input("in", Shape{1, 4, 16, 16})
	for i := 0; i < n; i++ {
		x = g.Conv(nameI("c", i), x, ConvOpts{Out: 4, Kernel: 3})
	}
	return g
}

func nameI(p string, i int) string { return p + string(rune('a'+i)) }

func TestPartitionChain(t *testing.T) {
	g := chainGraph(5)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	// A pure chain cuts after every node.
	if len(blocks) != 5 {
		t.Fatalf("chain blocks = %d, want 5", len(blocks))
	}
	for _, b := range blocks {
		if len(b.Nodes) != 1 {
			t.Errorf("block %d has %d nodes", b.Index, len(b.Nodes))
		}
		if b.Width() != 1 {
			t.Errorf("block %d width = %d", b.Index, b.Width())
		}
	}
}

func TestPartitionDiamond(t *testing.T) {
	// in -> a -> {b, c} -> cat: one block (a's output feeds two branches,
	// then the concat closes it), cut after a and after cat.
	g := New("diamond")
	in := g.Input("in", Shape{1, 4, 16, 16})
	a := g.Conv("a", in, ConvOpts{Out: 8, Kernel: 3})
	b := g.Conv("b", a, ConvOpts{Out: 8, Kernel: 3})
	c := g.Conv("c", a, ConvOpts{Out: 8, Kernel: 3})
	g.Concat("cat", b, c)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (a | b,c,cat)", len(blocks))
	}
	if len(blocks[1].Nodes) != 3 {
		t.Errorf("second block has %d nodes, want 3", len(blocks[1].Nodes))
	}
	if blocks[1].Width() != 2 {
		t.Errorf("second block width = %d, want 2", blocks[1].Width())
	}
}

func TestPartitionInputFanout(t *testing.T) {
	// The Figure 2 shape: input feeds a, c, d directly — no cut may be
	// placed before all of the input's consumers appeared.
	g := New("fanout")
	in := g.Input("in", Shape{1, 4, 16, 16})
	a := g.Conv("a", in, ConvOpts{Out: 8, Kernel: 3})
	b := g.Conv("b", a, ConvOpts{Out: 8, Kernel: 3})
	c := g.Conv("c", in, ConvOpts{Out: 8, Kernel: 3})
	d := g.Conv("d", in, ConvOpts{Out: 8, Kernel: 3})
	g.Concat("cat", b, c, d)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(blocks))
	}
	if got := blocks[0].Width(); got != 3 {
		t.Errorf("width = %d, want 3 ({a,c,d} or {b,c,d})", got)
	}
}

func TestManualCuts(t *testing.T) {
	g := New("manual")
	in := g.Input("in", Shape{1, 4, 16, 16})
	a := g.Conv("a", in, ConvOpts{Out: 8, Kernel: 3})
	g.CutBlock()
	b := g.Conv("b", a, ConvOpts{Out: 8, Kernel: 3})
	c := g.Conv("c", a, ConvOpts{Out: 8, Kernel: 3}) // consumes across the cut
	g.Concat("cat", b, c)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	if len(blocks[0].Nodes) != 1 || blocks[0].Nodes[0].Name != "a" {
		t.Errorf("first block = %v", blocks[0].Nodes)
	}
}

func TestPartitionSizeCap(t *testing.T) {
	g := chainGraph(10)
	// Force blocks of at most 3 ops even though the chain would cut
	// finer; the cap path must still produce valid blocks.
	blocks, err := g.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if len(b.Nodes) > 3 {
			t.Errorf("block %d exceeds cap: %d", b.Index, len(b.Nodes))
		}
	}
}

func TestBlockAdjacency(t *testing.T) {
	g := New("adj")
	in := g.Input("in", Shape{1, 4, 16, 16})
	a := g.Conv("a", in, ConvOpts{Out: 8, Kernel: 3})
	b := g.Conv("b", a, ConvOpts{Out: 8, Kernel: 3})
	c := g.Conv("c", a, ConvOpts{Out: 8, Kernel: 3})
	g.Concat("cat", b, c)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	blk := blocks[len(blocks)-1] // {b, c, cat}
	bi, ci := blk.LocalIndex(b), blk.LocalIndex(c)
	cati := blk.LocalIndex(g.NodeByName("cat"))
	if bi < 0 || ci < 0 || cati < 0 {
		t.Fatalf("local indices: %d %d %d", bi, ci, cati)
	}
	if !blk.Succs(bi).Has(cati) || !blk.Succs(ci).Has(cati) {
		t.Error("concat missing from successor sets")
	}
	if !blk.Preds(cati).Has(bi) || !blk.Preds(cati).Has(ci) {
		t.Error("concat predecessor set wrong")
	}
	if blk.Succs(bi).Has(ci) {
		t.Error("spurious edge b->c")
	}
}

// TestWidthMatchesBruteForce cross-checks the matching-based width against
// a brute-force maximum-antichain search on random DAGs.
func TestWidthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			for j := i + 1; j < n; j++ {
				adj[i][j] = rng.Float64() < 0.3
			}
		}
		g := New("rand")
		in := g.Input("in", Shape{1, 4, 8, 8})
		nodes := make([]*Node, n)
		for i := 0; i < n; i++ {
			var srcs []*Node
			for j := 0; j < i; j++ {
				if adj[j][i] {
					srcs = append(srcs, nodes[j])
				}
			}
			if len(srcs) == 0 {
				nodes[i] = g.Conv(nameI("n", i), in, ConvOpts{Out: 4, Kernel: 3})
			} else if len(srcs) == 1 {
				nodes[i] = g.Conv(nameI("n", i), srcs[0], ConvOpts{Out: 4, Kernel: 3})
			} else {
				nodes[i] = g.Add(nameI("n", i), srcs...)
			}
		}
		// Some Add nodes need matching channel shapes: all convs output
		// 4x8x8, so adds are fine.
		got := WidthOf(g.Nodes, nodes)

		// Brute force: largest subset with no path between any pair.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
			copy(reach[i], adj[i])
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		want := 0
		for mask := 1; mask < 1<<n; mask++ {
			ok := true
			for i := 0; i < n && ok; i++ {
				if mask&(1<<i) == 0 {
					continue
				}
				for j := 0; j < n && ok; j++ {
					if i != j && mask&(1<<j) != 0 && reach[i][j] {
						ok = false
					}
				}
			}
			if ok {
				c := 0
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						c++
					}
				}
				if c > want {
					want = c
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: width = %d, brute force = %d", trial, got, want)
		}
	}
}
