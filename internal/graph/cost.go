package graph

// This file accounts arithmetic work and memory traffic per operator. The
// numbers feed the GPU simulator's roofline model and the Figure 1/2
// reports. All counts are for float32 (4 bytes/element), matching the
// paper's single-precision measurements.

// FLOPs returns the floating-point operations performed by node n,
// counting a fused multiply-add as two operations (the convention used by
// the paper's "FLOPs" figures).
func FLOPs(n *Node) float64 {
	out := n.Output
	switch n.Op.Kind {
	case OpInput, OpIdentity, OpConcat:
		return 0
	case OpConv:
		in := n.Inputs[0].Output
		perOut := 2 * float64(in.C/n.Op.Groups) * float64(n.Op.KernelH) * float64(n.Op.KernelW)
		return perOut * float64(out.Elems())
	case OpSepConv:
		in := n.Inputs[0].Output
		// Input aggregation: k-way elementwise sum fused into the unit.
		agg := float64(len(n.Inputs)-1) * float64(in.Elems())
		// Depthwise: each output spatial position of C channels does a
		// KxK window on its own channel; the depthwise output has the
		// input channel count at the strided spatial size.
		dwElems := float64(out.N) * float64(in.C) * float64(out.H) * float64(out.W)
		dw := 2 * float64(n.Op.KernelH) * float64(n.Op.KernelW) * dwElems
		// Pointwise: 1x1 dense over in.C -> OutChannels.
		pw := 2 * float64(in.C) * float64(out.Elems())
		return agg + dw + pw
	case OpPool:
		return float64(n.Op.KernelH) * float64(n.Op.KernelW) * float64(out.Elems())
	case OpGlobalPool:
		in := n.Inputs[0].Output
		return float64(in.Elems())
	case OpMatmul:
		in := n.Inputs[0].Output
		return 2 * float64(in.C) * float64(out.Elems())
	case OpAdd:
		return float64(len(n.Inputs)-1) * float64(out.Elems())
	case OpReLU:
		return float64(out.Elems())
	default:
		return 0
	}
}

// WeightBytes returns the parameter storage read by node n (float32).
func WeightBytes(n *Node) float64 {
	switch n.Op.Kind {
	case OpConv:
		in := n.Inputs[0].Output
		return 4 * float64(n.Op.OutChannels) * float64(in.C/n.Op.Groups) *
			float64(n.Op.KernelH) * float64(n.Op.KernelW)
	case OpSepConv:
		in := n.Inputs[0].Output
		dw := float64(in.C) * float64(n.Op.KernelH) * float64(n.Op.KernelW)
		pw := float64(in.C) * float64(n.Op.OutChannels)
		return 4 * (dw + pw)
	case OpMatmul:
		in := n.Inputs[0].Output
		return 4 * float64(in.C) * float64(n.Op.OutFeatures)
	default:
		return 0
	}
}

// MemoryBytes returns the total DRAM traffic of node n under the simple
// "read every input once, read weights once, write the output once" model
// that cuDNN-style direct/implicit-GEMM kernels approximate.
func MemoryBytes(n *Node) float64 {
	var in float64
	for _, p := range n.Inputs {
		in += float64(p.Output.Bytes())
	}
	return in + WeightBytes(n) + float64(n.Output.Bytes())
}
