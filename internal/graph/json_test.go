package graph

import (
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := New("round")
	in := g.Input("in", Shape{1, 3, 32, 32})
	c := g.Conv("c", in, ConvOpts{Out: 8, Kernel: 3, Stride: 2})
	s := g.SepConv("s", c, ConvOpts{Out: 8, Kernel: 5, Stride: 2})
	p := g.Pool("p", c, PoolOpts{Kernel: 3, Stride: 2, Avg: true})
	// Shapes match for add: both 1x8x8x8.
	a := g.Add("a", s, p)
	cat := g.Concat("cat", a, s)
	r := g.ReLU("r", cat)
	gp := g.GlobalPool("gp", r)
	g.Matmul("fc", gp, 10)

	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(g.Nodes) {
		t.Fatalf("nodes = %d, want %d", len(back.Nodes), len(g.Nodes))
	}
	for i, n := range g.Nodes {
		bn := back.Nodes[i]
		if bn.Name != n.Name || bn.Op.Kind != n.Op.Kind || bn.Output != n.Output {
			t.Errorf("node %d mismatch: %v vs %v (out %v vs %v)", i, bn.Op, n.Op, bn.Output, n.Output)
		}
		if len(bn.Inputs) != len(n.Inputs) {
			t.Errorf("node %d inputs = %d, want %d", i, len(bn.Inputs), len(n.Inputs))
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"name":"x","nodes":[{"name":"a","op":"conv","inputs":["nope"],"out":4}]}`,                                                        // unknown input
		`{"name":"x","nodes":[{"name":"a","op":"warp","inputs":[]}]}`,                                                                      // unknown op
		`{"name":"x","nodes":[{"name":"a","op":"input"}]}`,                                                                                 // input without shape
		`{"name":"x","nodes":[{"name":"i","op":"input","shape":[1,3,8,8]},{"name":"c","op":"conv","inputs":["i"],"out":4,"act":"swish"}]}`, // bad act
	}
	for i, c := range cases {
		if _, err := FromJSON([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFromJSONDefaults(t *testing.T) {
	data := `{"name":"d","nodes":[
		{"name":"i","op":"input","shape":[1,3,8,8]},
		{"name":"c","op":"conv","inputs":["i"],"out":4,"kernel_h":3,"kernel_w":3,"pad_h":1,"pad_w":1}
	]}`
	g, err := FromJSON([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	c := g.NodeByName("c")
	if c.Op.StrideH != 1 || c.Op.Groups != 1 {
		t.Errorf("defaults not applied: %+v", c.Op)
	}
	if c.Output != (Shape{1, 4, 8, 8}) {
		t.Errorf("shape = %v", c.Output)
	}
}

func TestFingerprintStability(t *testing.T) {
	build := func() *Graph {
		g := New("fp")
		in := g.Input("in", Shape{N: 1, C: 3, H: 8, W: 8})
		g.Conv("c1", in, ConvOpts{Out: 4, Kernel: 3})
		return g
	}
	a := build()
	b := build()
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("identical graphs fingerprint differently: %s vs %s", fa, fb)
	}
	if len(fa) != 16 {
		t.Errorf("fingerprint %q is not 16 hex digits", fa)
	}
	// A structural change (different batch) changes the hash.
	c := New("fp")
	in := c.Input("in", Shape{N: 2, C: 3, H: 8, W: 8})
	c.Conv("c1", in, ConvOpts{Out: 4, Kernel: 3})
	fc, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Error("different graphs share a fingerprint")
	}
	// The fingerprint survives a JSON round trip of the graph.
	data, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	fback, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fback != fa {
		t.Errorf("fingerprint changed across JSON round trip: %s vs %s", fback, fa)
	}
}
