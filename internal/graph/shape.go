package graph

import "fmt"

// Shape is an NCHW tensor shape. Fully connected activations use C as the
// feature dimension with H = W = 1. All four dimensions enter the block
// cache's structural fingerprint (blockcache appendShape), enforced by
// ioslint's fingerprint analyzer via the fp tag.
type Shape struct {
	N, C, H, W int `fp:"include"`
}

// Elems returns the number of scalar elements in the shape.
func (s Shape) Elems() int64 {
	return int64(s.N) * int64(s.C) * int64(s.H) * int64(s.W)
}

// Bytes returns the storage size in bytes for float32 elements.
func (s Shape) Bytes() int64 { return 4 * s.Elems() }

// WithBatch returns a copy of s with the batch dimension replaced.
func (s Shape) WithBatch(n int) Shape {
	s.N = n
	return s
}

// String renders the shape as "NxCxHxW".
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// convOut computes the spatial output size of a convolution/pooling window.
func convOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// outputShape computes the output shape of op applied to the given input
// shapes, returning an error if the combination is invalid.
func outputShape(op Op, inputs []Shape) (Shape, error) {
	switch op.Kind {
	case OpInput:
		return Shape{}, fmt.Errorf("graph: input nodes have fixed shapes")
	case OpConv:
		if len(inputs) != 1 {
			return Shape{}, fmt.Errorf("graph: conv wants 1 input, got %d", len(inputs))
		}
		in := inputs[0]
		if op.Groups <= 0 {
			return Shape{}, fmt.Errorf("graph: conv groups must be >= 1, got %d", op.Groups)
		}
		if in.C%op.Groups != 0 || op.OutChannels%op.Groups != 0 {
			return Shape{}, fmt.Errorf("graph: conv channels %d->%d not divisible by groups %d", in.C, op.OutChannels, op.Groups)
		}
		oh := convOut(in.H, op.KernelH, op.StrideH, op.PadH)
		ow := convOut(in.W, op.KernelW, op.StrideW, op.PadW)
		if oh <= 0 || ow <= 0 {
			return Shape{}, fmt.Errorf("graph: conv output %dx%d not positive (in %v, op %v)", oh, ow, in, op)
		}
		return Shape{in.N, op.OutChannels, oh, ow}, nil
	case OpSepConv:
		// A separable convolution may take several same-shaped inputs:
		// RandWire's schedule unit sums incoming tensors (weighted-sum
		// edge aggregation) before the depthwise kernel.
		if len(inputs) == 0 {
			return Shape{}, fmt.Errorf("graph: sepconv wants >= 1 input")
		}
		in := inputs[0]
		for _, s := range inputs[1:] {
			if s != in {
				return Shape{}, fmt.Errorf("graph: sepconv aggregation input %v incompatible with %v", s, in)
			}
		}
		oh := convOut(in.H, op.KernelH, op.StrideH, op.PadH)
		ow := convOut(in.W, op.KernelW, op.StrideW, op.PadW)
		if oh <= 0 || ow <= 0 {
			return Shape{}, fmt.Errorf("graph: sepconv output %dx%d not positive", oh, ow)
		}
		return Shape{in.N, op.OutChannels, oh, ow}, nil
	case OpPool:
		if len(inputs) != 1 {
			return Shape{}, fmt.Errorf("graph: pool wants 1 input, got %d", len(inputs))
		}
		in := inputs[0]
		oh := convOut(in.H, op.KernelH, op.StrideH, op.PadH)
		ow := convOut(in.W, op.KernelW, op.StrideW, op.PadW)
		if oh <= 0 || ow <= 0 {
			return Shape{}, fmt.Errorf("graph: pool output %dx%d not positive", oh, ow)
		}
		return Shape{in.N, in.C, oh, ow}, nil
	case OpMatmul:
		if len(inputs) != 1 {
			return Shape{}, fmt.Errorf("graph: matmul wants 1 input, got %d", len(inputs))
		}
		in := inputs[0]
		return Shape{in.N, op.OutFeatures, 1, 1}, nil
	case OpConcat:
		if len(inputs) == 0 {
			return Shape{}, fmt.Errorf("graph: concat wants >= 1 input")
		}
		out := inputs[0]
		for _, in := range inputs[1:] {
			if in.N != out.N || in.H != out.H || in.W != out.W {
				return Shape{}, fmt.Errorf("graph: concat input %v incompatible with %v", in, out)
			}
			out.C += in.C
		}
		return out, nil
	case OpAdd:
		if len(inputs) == 0 {
			return Shape{}, fmt.Errorf("graph: add wants >= 1 input")
		}
		out := inputs[0]
		for _, in := range inputs[1:] {
			if in != out {
				return Shape{}, fmt.Errorf("graph: add input %v incompatible with %v", in, out)
			}
		}
		return out, nil
	case OpReLU, OpIdentity:
		if len(inputs) != 1 {
			return Shape{}, fmt.Errorf("graph: %v wants 1 input, got %d", op.Kind, len(inputs))
		}
		return inputs[0], nil
	case OpGlobalPool:
		if len(inputs) != 1 {
			return Shape{}, fmt.Errorf("graph: globalpool wants 1 input, got %d", len(inputs))
		}
		in := inputs[0]
		return Shape{in.N, in.C, 1, 1}, nil
	default:
		return Shape{}, fmt.Errorf("graph: unknown op kind %v", op.Kind)
	}
}
