package graph

import (
	"strings"
	"testing"
)

// small builds input(1,3,32,32) -> conv8 -> {conv16a, conv16b} -> concat.
func small(t *testing.T) *Graph {
	t.Helper()
	g := New("small")
	in := g.Input("in", Shape{1, 3, 32, 32})
	c0 := g.Conv("c0", in, ConvOpts{Out: 8, Kernel: 3})
	g.Concat("cat",
		g.Conv("ca", c0, ConvOpts{Out: 16, Kernel: 3}),
		g.Conv("cb", c0, ConvOpts{Out: 16, Kernel: 5}))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestBuilderShapes(t *testing.T) {
	g := small(t)
	if got := g.NodeByName("c0").Output; got != (Shape{1, 8, 32, 32}) {
		t.Errorf("c0 shape = %v", got)
	}
	if got := g.NodeByName("cat").Output; got != (Shape{1, 32, 32, 32}) {
		t.Errorf("cat shape = %v", got)
	}
}

func TestConvOptsDefaults(t *testing.T) {
	op := ConvOpts{Out: 4}.normalize()
	if op.KernelH != 1 || op.KernelW != 1 || op.StrideH != 1 || op.Groups != 1 {
		t.Errorf("defaults wrong: %+v", op)
	}
	if op.Act != ActReLU {
		t.Error("default activation should be ReLU")
	}
	op = ConvOpts{Out: 4, Kernel: 5, NoAct: true}.normalize()
	if op.PadH != 2 || op.PadW != 2 {
		t.Errorf("same padding wrong: %+v", op)
	}
	if op.Act != ActNone {
		t.Error("NoAct ignored")
	}
	op = ConvOpts{Out: 4, KernelH: 1, KernelW: 7}.normalize()
	if op.PadH != 0 || op.PadW != 3 {
		t.Errorf("asymmetric padding wrong: %+v", op)
	}
	op = ConvOpts{Out: 4, Kernel: 3, Valid: true}.normalize()
	if op.PadH != 0 || op.PadW != 0 {
		t.Errorf("valid padding wrong: %+v", op)
	}
}

func TestStridedShapes(t *testing.T) {
	g := New("strided")
	in := g.Input("in", Shape{2, 3, 224, 224})
	c := g.Conv("c", in, ConvOpts{Out: 32, Kernel: 3, Stride: 2, Valid: true})
	if c.Output != (Shape{2, 32, 111, 111}) {
		t.Errorf("valid strided conv shape = %v", c.Output)
	}
	p := g.Pool("p", c, PoolOpts{Kernel: 3, Stride: 2, Valid: true})
	if p.Output != (Shape{2, 32, 55, 55}) {
		t.Errorf("pool shape = %v", p.Output)
	}
	gp := g.GlobalPool("gp", p)
	if gp.Output != (Shape{2, 32, 1, 1}) {
		t.Errorf("globalpool shape = %v", gp.Output)
	}
	m := g.Matmul("fc", gp, 10)
	if m.Output != (Shape{2, 10, 1, 1}) {
		t.Errorf("matmul shape = %v", m.Output)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	g := New("dup")
	in := g.Input("in", Shape{1, 3, 8, 8})
	g.Conv("x", in, ConvOpts{Out: 4})
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	g.Conv("x", in, ConvOpts{Out: 4})
}

func TestForeignInputPanics(t *testing.T) {
	g1 := New("g1")
	in1 := g1.Input("in", Shape{1, 3, 8, 8})
	g2 := New("g2")
	defer func() {
		if recover() == nil {
			t.Error("foreign input did not panic")
		}
	}()
	g2.Conv("c", in1, ConvOpts{Out: 4})
}

func TestShapeMismatchPanics(t *testing.T) {
	g := New("mismatch")
	in := g.Input("in", Shape{1, 3, 8, 8})
	a := g.Conv("a", in, ConvOpts{Out: 4, Kernel: 3})
	b := g.Conv("b", in, ConvOpts{Out: 4, Kernel: 3, Stride: 2})
	defer func() {
		if recover() == nil {
			t.Error("add of mismatched shapes did not panic")
		}
	}()
	g.Add("sum", a, b)
}

func TestWithBatch(t *testing.T) {
	g := small(t)
	g32, err := g.WithBatch(32)
	if err != nil {
		t.Fatalf("WithBatch: %v", err)
	}
	if err := g32.Validate(); err != nil {
		t.Fatalf("WithBatch Validate: %v", err)
	}
	if len(g32.Nodes) != len(g.Nodes) {
		t.Fatalf("node count changed: %d vs %d", len(g32.Nodes), len(g.Nodes))
	}
	if got := g32.NodeByName("cat").Output; got != (Shape{32, 32, 32, 32}) {
		t.Errorf("batched cat shape = %v", got)
	}
	// Original untouched.
	if g.NodeByName("cat").Output.N != 1 {
		t.Error("WithBatch mutated the original graph")
	}
}

func TestSchedulableNodesExcludesInputs(t *testing.T) {
	g := small(t)
	for _, n := range g.SchedulableNodes() {
		if n.Op.Kind == OpInput {
			t.Error("input node in schedulable set")
		}
	}
	if got := len(g.SchedulableNodes()); got != 4 {
		t.Errorf("schedulable count = %d, want 4", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := small(t)
	st := g.ComputeStats()
	if st.Ops != 4 || st.Convs != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalFLOPs <= 0 || st.MeanConvFLOPs <= 0 {
		t.Errorf("stats flops = %+v", st)
	}
}

func TestOpString(t *testing.T) {
	g := small(t)
	s := g.NodeByName("ca").Op.String()
	if !strings.Contains(s, "conv") || !strings.Contains(s, "3x3") {
		t.Errorf("op string = %q", s)
	}
}

func TestSepConvSumShape(t *testing.T) {
	g := New("sepsum")
	in := g.Input("in", Shape{1, 8, 16, 16})
	a := g.SepConv("a", in, ConvOpts{Out: 8, Kernel: 3})
	b := g.SepConv("b", in, ConvOpts{Out: 8, Kernel: 3})
	c := g.SepConvSum("c", []*Node{a, b}, ConvOpts{Out: 12, Kernel: 3})
	if c.Output != (Shape{1, 12, 16, 16}) {
		t.Errorf("sepconvsum shape = %v", c.Output)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFLOPsAccounting(t *testing.T) {
	g := New("flops")
	in := g.Input("in", Shape{1, 16, 10, 10})
	c := g.Conv("c", in, ConvOpts{Out: 32, Kernel: 3})
	// 2 * outC*outH*outW * inC*kh*kw = 2*32*100*16*9
	want := 2.0 * 32 * 100 * 16 * 9
	if got := FLOPs(c); got != want {
		t.Errorf("conv FLOPs = %g, want %g", got, want)
	}
	m := g.Matmul("m", g.GlobalPool("gp", c), 10)
	if got, want := FLOPs(m), 2.0*32*10; got != want {
		t.Errorf("matmul FLOPs = %g, want %g", got, want)
	}
	if WeightBytes(c) != 4*32*16*9 {
		t.Errorf("conv weight bytes = %g", WeightBytes(c))
	}
	if MemoryBytes(c) <= WeightBytes(c) {
		t.Error("memory bytes should include activations")
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	g := small(t)
	// Corrupt the output shape.
	g.NodeByName("c0").Output.C = 999
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted corrupted shape")
	}
}

func TestWithBatchInvalid(t *testing.T) {
	g := small(t)
	for _, n := range []int{0, -1, -32} {
		if _, err := g.WithBatch(n); err == nil {
			t.Errorf("WithBatch(%d) = nil error, want rejection", n)
		}
	}
}

func TestValidateInputBatchMismatch(t *testing.T) {
	g := New("twin")
	a := g.Input("a", Shape{2, 3, 8, 8})
	b := g.Input("b", Shape{4, 3, 8, 8})
	g.Conv("ca", a, ConvOpts{Out: 3})
	g.Conv("cb", b, ConvOpts{Out: 3})
	err := g.Validate()
	if err == nil {
		t.Fatal("Validate accepted inputs with conflicting batch dims")
	}
	for _, want := range []string{"\"a\"", "\"b\"", "2", "4"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
	// The shared error path also guards FromJSON (it calls Validate), so
	// a serialized multi-input graph with inconsistent batches is
	// rejected instead of mis-keying serving caches on the first input.
	consistent := New("twin")
	a2 := consistent.Input("a", Shape{2, 3, 8, 8})
	b2 := consistent.Input("b", Shape{2, 3, 8, 8})
	consistent.Conv("ca", a2, ConvOpts{Out: 3})
	consistent.Conv("cb", b2, ConvOpts{Out: 3})
	if err := consistent.Validate(); err != nil {
		t.Fatalf("consistent twin-input graph rejected: %v", err)
	}
	data, err := consistent.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(data), "[\n        2,\n        3,\n        8,\n        8\n      ]", "[\n        4,\n        3,\n        8,\n        8\n      ]", 1)
	if mangled == string(data) {
		t.Fatal("test setup: shape replacement did not apply")
	}
	if _, err := FromJSON([]byte(mangled)); err == nil {
		t.Error("FromJSON accepted a graph with conflicting input batches")
	}
}

func TestValidateNonPositiveInputBatch(t *testing.T) {
	g := New("zero")
	g.Input("in", Shape{0, 3, 8, 8})
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted an input with batch 0")
	}
}
