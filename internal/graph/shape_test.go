package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestShapeElemsAndBytes(t *testing.T) {
	s := Shape{N: 2, C: 3, H: 4, W: 5}
	if s.Elems() != 120 {
		t.Errorf("Elems = %d", s.Elems())
	}
	if s.Bytes() != 480 {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	if got := s.WithBatch(7); got.N != 7 || got.C != 3 {
		t.Errorf("WithBatch = %v", got)
	}
	if s.String() != "2x3x4x5" {
		t.Errorf("String = %q", s.String())
	}
}

func TestOutputShapeErrors(t *testing.T) {
	in := Shape{N: 1, C: 4, H: 8, W: 8}
	cases := []struct {
		name   string
		op     Op
		inputs []Shape
	}{
		{"conv no input", Op{Kind: OpConv, OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, Groups: 1}, nil},
		{"conv zero groups", Op{Kind: OpConv, OutChannels: 4, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}, []Shape{in}},
		{"conv indivisible groups", Op{Kind: OpConv, OutChannels: 4, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Groups: 3}, []Shape{in}},
		{"conv kernel too large", Op{Kind: OpConv, OutChannels: 4, KernelH: 9, KernelW: 9, StrideH: 1, StrideW: 1, Groups: 1}, []Shape{in}},
		{"pool too large", Op{Kind: OpPool, KernelH: 9, KernelW: 9, StrideH: 1, StrideW: 1}, []Shape{in}},
		{"concat empty", Op{Kind: OpConcat}, nil},
		{"concat mismatch", Op{Kind: OpConcat}, []Shape{in, {N: 1, C: 4, H: 4, W: 4}}},
		{"add mismatch", Op{Kind: OpAdd}, []Shape{in, {N: 1, C: 8, H: 8, W: 8}}},
		{"relu two inputs", Op{Kind: OpReLU}, []Shape{in, in}},
		{"matmul two inputs", Op{Kind: OpMatmul, OutFeatures: 4}, []Shape{in, in}},
		{"sepconv agg mismatch", Op{Kind: OpSepConv, OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}, []Shape{in, {N: 1, C: 4, H: 4, W: 4}}},
		{"input node", Op{Kind: OpInput}, nil},
		{"unknown kind", Op{Kind: OpKind(99)}, []Shape{in}},
	}
	for _, c := range cases {
		if _, err := outputShape(c.op, c.inputs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpInput, OpConv, OpSepConv, OpPool, OpMatmul, OpConcat, OpAdd, OpReLU, OpIdentity, OpGlobalPool}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(OpKind(42).String(), "opkind(") {
		t.Error("unknown kind string wrong")
	}
}

// Property: FLOPs and activation memory scale linearly in batch size for
// every operator kind the zoo uses.
func TestQuickBatchLinearity(t *testing.T) {
	build := func(batch int) *Graph {
		g := New("lin")
		in := g.Input("in", Shape{N: batch, C: 8, H: 16, W: 16})
		c := g.Conv("c", in, ConvOpts{Out: 8, Kernel: 3})
		s := g.SepConv("s", in, ConvOpts{Out: 8, Kernel: 3})
		g.Add("a", c, s)
		g.Pool("p", c, PoolOpts{Kernel: 2, Stride: 2})
		g.Matmul("m", g.GlobalPool("gp", s), 10)
		return g
	}
	err := quick.Check(func(raw uint8) bool {
		batch := 1 + int(raw%16)
		g1, gb := build(1), build(batch)
		for i := range g1.Nodes {
			if g1.Nodes[i].Op.Kind == OpInput {
				continue
			}
			f1, fb := FLOPs(g1.Nodes[i]), FLOPs(gb.Nodes[i])
			if fb != float64(batch)*f1 {
				return false
			}
			if gb.Nodes[i].Output.Elems() != int64(batch)*g1.Nodes[i].Output.Elems() {
				return false
			}
			// Weights are batch-invariant.
			if WeightBytes(g1.Nodes[i]) != WeightBytes(gb.Nodes[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// Property: width is monotone — removing nodes never increases it beyond
// the original, and always stays within [1, n].
func TestQuickWidthBounds(t *testing.T) {
	g := New("w")
	in := g.Input("in", Shape{N: 1, C: 4, H: 8, W: 8})
	var nodes []*Node
	for i := 0; i < 8; i++ {
		var src *Node = in
		if i >= 2 {
			src = nodes[i-2]
		}
		nodes = append(nodes, g.Conv("n"+string(rune('a'+i)), src, ConvOpts{Out: 4, Kernel: 3}))
	}
	full := WidthOf(g.Nodes, nodes)
	if full < 1 || full > len(nodes) {
		t.Fatalf("width out of range: %d", full)
	}
	err := quick.Check(func(mask uint8) bool {
		var sub []*Node
		for i, n := range nodes {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, n)
			}
		}
		if len(sub) == 0 {
			return true
		}
		w := WidthOf(g.Nodes, sub)
		return w >= 1 && w <= len(sub)
	}, &quick.Config{MaxCount: 64})
	if err != nil {
		t.Error(err)
	}
}
