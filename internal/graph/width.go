package graph

// Width computation via Dilworth's theorem (Appendix A of the paper).
//
// The width d of a DAG is the size of its largest antichain: the maximum
// number of operators with no path connecting any pair. By Dilworth's
// theorem this equals the minimum number of chains covering the poset
// induced by reachability, and the minimum chain cover of a DAG with n
// nodes equals n - M where M is a maximum matching in the bipartite graph
// whose left/right copies of the nodes are joined for every pair (u, v)
// with a path u->v in the DAG (the transitive closure).
//
// Time complexity is at most O(n^3) with the augmenting-path matcher below;
// paper blocks have n <= ~33, so this is instant and exact.

// WidthOf returns the width of the sub-DAG induced by the given nodes.
// Edges are those of the enclosing graph restricted to the subset, plus all
// transitive connections within the subset that pass through nodes outside
// it (reachability is computed on the full graph and then restricted, which
// matches the partial order the paper's Definition 1 uses).
func WidthOf(all []*Node, subset []*Node) int {
	n := len(subset)
	if n <= 1 {
		return n
	}
	idx := make(map[int]int, n) // graph node ID -> subset index
	for i, node := range subset {
		idx[node.ID] = i
	}

	// reach[i] holds, for subset node i, which subset nodes are reachable
	// from it in the full graph. Computed by a reverse sweep over the full
	// graph in topological order using per-node bitsets over the subset.
	maxID := 0
	for _, node := range all {
		if node.ID > maxID {
			maxID = node.ID
		}
	}
	words := (n + 63) / 64
	reach := make([][]uint64, maxID+1)
	for i := len(all) - 1; i >= 0; i-- {
		node := all[i]
		bits := make([]uint64, words)
		for _, c := range node.Outputs() {
			if c.ID >= len(reach) || reach[c.ID] == nil {
				continue
			}
			for w := range bits {
				bits[w] |= reach[c.ID][w]
			}
			if j, ok := idx[c.ID]; ok {
				bits[j/64] |= 1 << uint(j%64)
			}
		}
		reach[node.ID] = bits
	}

	// Bipartite matching on the closure restricted to the subset.
	matchR := make([]int, n)
	for i := range matchR {
		matchR[i] = -1
	}
	adj := make([][]int, n)
	for i, node := range subset {
		bits := reach[node.ID]
		for j := 0; j < n; j++ {
			if bits[j/64]&(1<<uint(j%64)) != 0 {
				adj[i] = append(adj[i], j)
			}
		}
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchR[v] = u
				return true
			}
		}
		return false
	}
	matched := 0
	for u := 0; u < n; u++ {
		seen := make([]bool, n)
		if try(u, seen) {
			matched++
		}
	}
	return n - matched
}

// Width returns the width of the whole graph's schedulable nodes.
func (g *Graph) Width() int {
	return WidthOf(g.Nodes, g.SchedulableNodes())
}
