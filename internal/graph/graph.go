package graph

import (
	"fmt"
	"sort"
)

// Node is a single operator in a computation graph. Nodes are created
// through the Graph builder methods, which compute output shapes and keep
// the node list in topological order (a node's inputs always precede it).
type Node struct {
	// ID is the node's index in Graph.Nodes; unique within a graph.
	ID int
	// Name is a human-readable label unique within the graph.
	Name string
	// Op holds the operator type and hyperparameters.
	Op Op
	// Inputs are the producer nodes whose outputs this node consumes, in
	// argument order. Shared inputs (the same node listed by several
	// consumers) are the norm in multi-branch CNNs.
	Inputs []*Node
	// Output is the shape of the tensor this node produces.
	Output Shape

	// outs is the consumer list, maintained by the builder.
	outs []*Node
}

// Outputs returns the consumers of this node's output tensor.
func (n *Node) Outputs() []*Node { return n.outs }

// InputShapes returns the shapes of the node's input tensors.
func (n *Node) InputShapes() []Shape {
	shapes := make([]Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		shapes[i] = in.Output
	}
	return shapes
}

// String renders "name(op)".
func (n *Node) String() string { return fmt.Sprintf("%s(%v)", n.Name, n.Op) }

// Graph is a CNN computation graph under construction or analysis. Create
// one with New, add nodes with the builder methods (Input, Conv, ...), and
// freeze nothing: graphs are cheap, immutable-by-convention values after
// construction.
type Graph struct {
	// Name labels the graph in reports.
	Name string
	// Nodes lists every node in insertion order, which the builder
	// guarantees is a valid topological order.
	Nodes []*Node

	byName map[string]*Node
	// cuts holds manual block boundaries: node counts at which a new
	// block starts. See CutBlock.
	cuts []int
}

// CutBlock records a manual block boundary: nodes added after this call
// belong to the next block. Model builders use it for architectures whose
// blocks consume more than one tensor (NASNet cells, RandWire stages),
// which the automatic single-producer cut cannot discover. When any manual
// cut exists, Partition uses manual boundaries exclusively.
func (g *Graph) CutBlock() {
	n := len(g.Nodes)
	if len(g.cuts) > 0 && g.cuts[len(g.cuts)-1] == n {
		return
	}
	g.cuts = append(g.cuts, n)
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]*Node)}
}

// NodeByName returns the node with the given name, or nil.
func (g *Graph) NodeByName(name string) *Node { return g.byName[name] }

// add appends a node, wiring consumer lists and validating the name.
func (g *Graph) add(name string, op Op, inputs []*Node, out Shape) *Node {
	if name == "" {
		name = fmt.Sprintf("%s_%d", op.Kind, len(g.Nodes))
	}
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("graph %q: duplicate node name %q", g.Name, name))
	}
	for _, in := range inputs {
		if in == nil {
			panic(fmt.Sprintf("graph %q: node %q has nil input", g.Name, name))
		}
		if in.ID >= len(g.Nodes) || g.Nodes[in.ID] != in {
			panic(fmt.Sprintf("graph %q: node %q input %q belongs to a different graph", g.Name, name, in.Name))
		}
	}
	n := &Node{ID: len(g.Nodes), Name: name, Op: op, Inputs: inputs, Output: out}
	for _, in := range inputs {
		in.outs = append(in.outs, n)
	}
	g.Nodes = append(g.Nodes, n)
	g.byName[name] = n
	return n
}

// mustShape computes an output shape or panics; the builder API panics on
// malformed architectures because they are programming errors in model
// definitions, not runtime conditions.
func (g *Graph) mustShape(name string, op Op, inputs []*Node) Shape {
	shapes := make([]Shape, len(inputs))
	for i, in := range inputs {
		shapes[i] = in.Output
	}
	out, err := outputShape(op, shapes)
	if err != nil {
		panic(fmt.Sprintf("graph %q: node %q: %v", g.Name, name, err))
	}
	return out
}

// Input adds a graph input placeholder with the given shape.
func (g *Graph) Input(name string, shape Shape) *Node {
	return g.add(name, Op{Kind: OpInput}, nil, shape)
}

// ConvOpts configures a convolution builder call. Zero values select
// sensible defaults: 1×1 kernel, stride 1, "same" padding, dense groups,
// fused ReLU (the paper's Conv-Relu unit).
type ConvOpts struct {
	// Out is the number of output channels (required).
	Out int
	// Kernel sets a square kernel; KernelH/KernelW override it for
	// asymmetric kernels (1×7, 7×1, ...).
	Kernel           int
	KernelH, KernelW int
	// Stride sets both strides; StrideH/StrideW override it.
	Stride           int
	StrideH, StrideW int
	// Valid disables "same" padding (pad 0). PadH/PadW force explicit
	// padding when >= 0 with Explicit set.
	Valid      bool
	Explicit   bool
	PadH, PadW int
	Groups     int
	// NoAct disables the fused ReLU.
	NoAct bool
}

func (o ConvOpts) normalize() Op {
	op := Op{Kind: OpConv, OutChannels: o.Out, Groups: 1, Act: ActReLU}
	op.KernelH, op.KernelW = o.KernelH, o.KernelW
	if o.Kernel != 0 {
		op.KernelH, op.KernelW = o.Kernel, o.Kernel
	}
	if op.KernelH == 0 {
		op.KernelH = 1
	}
	if op.KernelW == 0 {
		op.KernelW = 1
	}
	op.StrideH, op.StrideW = o.StrideH, o.StrideW
	if o.Stride != 0 {
		op.StrideH, op.StrideW = o.Stride, o.Stride
	}
	if op.StrideH == 0 {
		op.StrideH = 1
	}
	if op.StrideW == 0 {
		op.StrideW = 1
	}
	switch {
	case o.Explicit:
		op.PadH, op.PadW = o.PadH, o.PadW
	case o.Valid:
		op.PadH, op.PadW = 0, 0
	default:
		op.PadH, op.PadW = (op.KernelH-1)/2, (op.KernelW-1)/2
	}
	if o.Groups > 0 {
		op.Groups = o.Groups
	}
	if o.NoAct {
		op.Act = ActNone
	}
	return op
}

// Conv adds a convolution (with fused ReLU unless opts.NoAct).
func (g *Graph) Conv(name string, in *Node, opts ConvOpts) *Node {
	op := opts.normalize()
	return g.add(name, op, []*Node{in}, g.mustShape(name, op, []*Node{in}))
}

// SepConv adds a Relu-SepConv unit: depthwise KxK followed by pointwise
// 1×1, with the activation applied before the depthwise kernel as in
// NASNet/RandWire.
func (g *Graph) SepConv(name string, in *Node, opts ConvOpts) *Node {
	op := opts.normalize()
	op.Kind = OpSepConv
	return g.add(name, op, []*Node{in}, g.mustShape(name, op, []*Node{in}))
}

// SepConvSum adds a Relu-SepConv unit that first sums several same-shaped
// input tensors (RandWire's weighted-sum edge aggregation, fused into the
// schedule unit as the paper's Table 2 op inventory implies).
func (g *Graph) SepConvSum(name string, inputs []*Node, opts ConvOpts) *Node {
	op := opts.normalize()
	op.Kind = OpSepConv
	return g.add(name, op, inputs, g.mustShape(name, op, inputs))
}

// PoolOpts configures a pooling builder call.
type PoolOpts struct {
	Kernel int
	Stride int
	// Valid disables "same" padding.
	Valid bool
	Avg   bool
}

// Pool adds a max/avg pooling node.
func (g *Graph) Pool(name string, in *Node, opts PoolOpts) *Node {
	if opts.Kernel == 0 {
		opts.Kernel = 2
	}
	if opts.Stride == 0 {
		opts.Stride = opts.Kernel
	}
	op := Op{Kind: OpPool, KernelH: opts.Kernel, KernelW: opts.Kernel,
		StrideH: opts.Stride, StrideW: opts.Stride}
	if !opts.Valid {
		op.PadH, op.PadW = (opts.Kernel-1)/2, (opts.Kernel-1)/2
	}
	if opts.Avg {
		op.Pool = AvgPool
	}
	return g.add(name, op, []*Node{in}, g.mustShape(name, op, []*Node{in}))
}

// GlobalPool adds a global average pooling node.
func (g *Graph) GlobalPool(name string, in *Node) *Node {
	op := Op{Kind: OpGlobalPool}
	return g.add(name, op, []*Node{in}, g.mustShape(name, op, []*Node{in}))
}

// Matmul adds a fully connected layer.
func (g *Graph) Matmul(name string, in *Node, outFeatures int) *Node {
	op := Op{Kind: OpMatmul, OutFeatures: outFeatures}
	return g.add(name, op, []*Node{in}, g.mustShape(name, op, []*Node{in}))
}

// Concat adds a channel concatenation of the inputs.
func (g *Graph) Concat(name string, inputs ...*Node) *Node {
	op := Op{Kind: OpConcat}
	return g.add(name, op, inputs, g.mustShape(name, op, inputs))
}

// Add adds an elementwise sum of the inputs.
func (g *Graph) Add(name string, inputs ...*Node) *Node {
	op := Op{Kind: OpAdd}
	return g.add(name, op, inputs, g.mustShape(name, op, inputs))
}

// ReLU adds a standalone activation node.
func (g *Graph) ReLU(name string, in *Node) *Node {
	op := Op{Kind: OpReLU}
	return g.add(name, op, []*Node{in}, g.mustShape(name, op, []*Node{in}))
}

// Identity adds a pass-through node.
func (g *Graph) Identity(name string, in *Node) *Node {
	op := Op{Kind: OpIdentity}
	return g.add(name, op, []*Node{in}, g.mustShape(name, op, []*Node{in}))
}

// Validate checks structural invariants: IDs match positions, edges are
// consistent, the node order is topological, and names are unique. The
// builder maintains these by construction; Validate exists for graphs that
// were deserialized or mutated by tests.
func (g *Graph) Validate() error {
	seen := make(map[string]bool, len(g.Nodes))
	// All inputs must agree on the batch dimension: Batch() (and every
	// consumer keying on it — serve caches, batch plans) reads the first
	// input, so a graph whose inputs disagree would be silently mis-keyed.
	firstInput := -1
	for i, n := range g.Nodes {
		if n.Op.Kind != OpInput {
			continue
		}
		if n.Output.N < 1 {
			return fmt.Errorf("graph %q: input %q has non-positive batch %d", g.Name, n.Name, n.Output.N)
		}
		if firstInput < 0 {
			firstInput = i
			continue
		}
		if want := g.Nodes[firstInput]; n.Output.N != want.Output.N {
			return fmt.Errorf("graph %q: input %q batch %d conflicts with input %q batch %d (all inputs must share one batch size)",
				g.Name, n.Name, n.Output.N, want.Name, want.Output.N)
		}
	}
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("graph %q: node %q has ID %d at position %d", g.Name, n.Name, n.ID, i)
		}
		if seen[n.Name] {
			return fmt.Errorf("graph %q: duplicate node name %q", g.Name, n.Name)
		}
		seen[n.Name] = true
		for _, in := range n.Inputs {
			if in.ID >= i {
				return fmt.Errorf("graph %q: node %q consumes %q which does not precede it (not topological)", g.Name, n.Name, in.Name)
			}
			found := false
			for _, c := range in.outs {
				if c == n {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph %q: edge %q->%q missing from consumer list", g.Name, in.Name, n.Name)
			}
		}
		shapes := n.InputShapes()
		if n.Op.Kind != OpInput {
			want, err := outputShape(n.Op, shapes)
			if err != nil {
				return fmt.Errorf("graph %q: node %q: %v", g.Name, n.Name, err)
			}
			if want != n.Output {
				return fmt.Errorf("graph %q: node %q output %v, recomputed %v", g.Name, n.Name, n.Output, want)
			}
		}
	}
	return nil
}

// WithBatch returns a structurally identical graph whose input batch
// dimension is n. Schedules are batch-specific in IOS (Table 3), so
// experiments and batch plans rebuild graphs per batch size. A batch
// size below 1 is rejected with an error (it used to slip through and
// panic later inside shape computation).
func (g *Graph) WithBatch(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph %q: batch size must be >= 1, got %d", g.Name, n)
	}
	out := New(g.Name)
	clone := make([]*Node, len(g.Nodes))
	for i, node := range g.Nodes {
		ins := make([]*Node, len(node.Inputs))
		for j, in := range node.Inputs {
			ins[j] = clone[in.ID]
		}
		if node.Op.Kind == OpInput {
			clone[i] = out.Input(node.Name, node.Output.WithBatch(n))
			continue
		}
		clone[i] = out.add(node.Name, node.Op, ins, out.mustShape(node.Name, node.Op, ins))
	}
	out.cuts = append([]int(nil), g.cuts...)
	return out, nil
}

// Stats summarizes a graph for reporting (Table 2 and Figure 1).
type Stats struct {
	// Ops counts schedulable operators (inputs excluded).
	Ops int
	// Convs counts convolution-like operators (conv, sepconv, matmul).
	Convs int
	// TotalFLOPs sums arithmetic work over all operators.
	TotalFLOPs float64
	// MeanConvFLOPs is TotalFLOPs restricted to convolutions divided by
	// Convs (the paper's "average FLOPs per CONV").
	MeanConvFLOPs float64
}

// ComputeStats returns summary statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	var st Stats
	var convFLOPs float64
	for _, n := range g.Nodes {
		if n.Op.Kind == OpInput {
			continue
		}
		st.Ops++
		f := FLOPs(n)
		st.TotalFLOPs += f
		if n.Op.IsComputeUnit() {
			st.Convs++
			convFLOPs += f
		}
	}
	if st.Convs > 0 {
		st.MeanConvFLOPs = convFLOPs / float64(st.Convs)
	}
	return st
}

// Batch returns the graph's input batch size: the N dimension of the
// first input node, or 1 for a graph without inputs. Schedules are
// specialized per batch size in IOS (Table 3), so serving layers key on
// this value; Validate (and therefore FromJSON) rejects graphs whose
// inputs disagree on the batch dimension, so for validated graphs the
// first input speaks for all of them.
func (g *Graph) Batch() int {
	for _, n := range g.Nodes {
		if n.Op.Kind == OpInput {
			return n.Output.N
		}
	}
	return 1
}

// SchedulableNodes returns the nodes IOS schedules (everything except
// inputs), in topological order.
func (g *Graph) SchedulableNodes() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Op.Kind != OpInput {
			out = append(out, n)
		}
	}
	return out
}

// SortNodesByID sorts a node slice by ID in place and returns it; handy for
// deterministic reporting.
func SortNodesByID(nodes []*Node) []*Node {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return nodes
}
