// Package graph defines the computation-graph IR that IOS schedules: a
// directed acyclic graph of CNN operators with NCHW tensor shapes, plus the
// analyses the scheduler needs (topological order, DAG width, block
// partitioning, FLOP and memory-traffic accounting).
//
// A Graph corresponds to the paper's G = (V, E): V is the set of operators
// and each edge (u, v) is a tensor produced by u and consumed by v
// (Section 3). Operators are the paper's schedule units — e.g. a
// convolution with a fused ReLU ("Conv-Relu") or a ReLU followed by a
// separable convolution ("Relu-SepConv") is one unit.
package graph

import "fmt"

// OpKind identifies the operator type of a node.
type OpKind int

// The operator kinds used by the paper's benchmark networks.
const (
	// OpInput is a graph input placeholder. It performs no work and is
	// never scheduled.
	OpInput OpKind = iota
	// OpConv is a 2-D convolution, optionally with a fused activation
	// ("Conv-Relu" in Table 2).
	OpConv
	// OpSepConv is a separable convolution: a depthwise k×k convolution
	// followed by a pointwise 1×1 convolution, optionally preceded by a
	// fused activation ("Relu-SepConv" in Table 2). It is one schedule
	// unit that lowers to two GPU kernels.
	OpSepConv
	// OpPool is a 2-D max or average pooling.
	OpPool
	// OpMatmul is a fully connected layer (matrix multiplication).
	OpMatmul
	// OpConcat concatenates its inputs along the channel dimension.
	OpConcat
	// OpAdd sums its inputs elementwise (residual connections and
	// RandWire's weighted-sum aggregation).
	OpAdd
	// OpReLU is a standalone activation (memory-bound elementwise op).
	OpReLU
	// OpIdentity forwards its input unchanged (used by NASNet cells).
	OpIdentity
	// OpGlobalPool reduces H×W to 1×1 by averaging.
	OpGlobalPool
)

// String returns the lower-case operator name.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpConv:
		return "conv"
	case OpSepConv:
		return "sepconv"
	case OpPool:
		return "pool"
	case OpMatmul:
		return "matmul"
	case OpConcat:
		return "concat"
	case OpAdd:
		return "add"
	case OpReLU:
		return "relu"
	case OpIdentity:
		return "identity"
	case OpGlobalPool:
		return "globalpool"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// Activation is an optional activation fused into a compute operator.
type Activation int

// Supported fused activations.
const (
	// ActNone applies no activation.
	ActNone Activation = iota
	// ActReLU applies max(x, 0).
	ActReLU
)

// String returns the activation name.
func (a Activation) String() string {
	if a == ActReLU {
		return "relu"
	}
	return "none"
}

// PoolKind distinguishes pooling variants.
type PoolKind int

// Supported pooling variants.
const (
	// MaxPool takes the window maximum.
	MaxPool PoolKind = iota
	// AvgPool takes the window average.
	AvgPool
)

// String returns the pooling variant name.
func (p PoolKind) String() string {
	if p == AvgPool {
		return "avg"
	}
	return "max"
}

// Op holds the operator type and hyperparameters of a node. Fields are
// meaningful only for the kinds that use them.
//
// Every field can influence lowering, merge eligibility, or merged-kernel
// construction, so every field is fp:"include": the block cache's
// structural fingerprint (blockcache appendOp) must encode all of them,
// and ioslint's fingerprint analyzer enforces that any field added here
// is either encoded there or explicitly tagged fp:"exempt".
type Op struct {
	Kind OpKind `fp:"include"`

	// Convolution / pooling geometry.
	OutChannels      int `fp:"include"` // Conv, SepConv: number of output channels
	KernelH, KernelW int `fp:"include"` // Conv, SepConv, Pool
	StrideH, StrideW int `fp:"include"` // Conv, SepConv, Pool
	PadH, PadW       int `fp:"include"` // zero padding on each side
	Groups           int `fp:"include"` // Conv: grouped convolution factor (1 = dense)

	// Act is the activation fused into this operator, if any. For
	// OpSepConv the paper's unit is Relu-SepConv: the activation is
	// applied before the depthwise kernel.
	Act Activation `fp:"include"`

	// Pool selects max or average pooling for OpPool.
	Pool PoolKind `fp:"include"`

	// OutFeatures is the output width of OpMatmul.
	OutFeatures int `fp:"include"`
}

// String renders a compact human-readable description, e.g.
// "conv 3x3/1 x384 relu".
func (o Op) String() string {
	switch o.Kind {
	case OpConv, OpSepConv:
		s := fmt.Sprintf("%s %dx%d/%d x%d", o.Kind, o.KernelH, o.KernelW, o.StrideH, o.OutChannels)
		if o.Groups > 1 {
			s += fmt.Sprintf(" g%d", o.Groups)
		}
		if o.Act == ActReLU {
			s += " relu"
		}
		return s
	case OpPool:
		return fmt.Sprintf("%spool %dx%d/%d", o.Pool, o.KernelH, o.KernelW, o.StrideH)
	case OpMatmul:
		return fmt.Sprintf("matmul x%d", o.OutFeatures)
	default:
		return o.Kind.String()
	}
}

// IsComputeUnit reports whether the operator performs arithmetic work that
// dominates a kernel (as opposed to pure data movement).
func (o Op) IsComputeUnit() bool {
	switch o.Kind {
	case OpConv, OpSepConv, OpMatmul:
		return true
	default:
		return false
	}
}
