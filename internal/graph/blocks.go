package graph

import (
	"fmt"

	"ios/internal/bitset"
)

// Block partitioning (Section 4.2: "Modern convolution neural networks
// usually construct the network by stacking multiple blocks, making it
// possible to optimize each block separately").
//
// We cut the topologically ordered operator list after any node that is the
// sole producer crossing the boundary: if every edge from {nodes[0..i]} to
// {nodes[i+1..]} originates at nodes[i], then everything after i depends on
// the rest of the network only through nodes[i]'s output, so the optimal
// schedule decomposes at that point. For stacked multi-branch CNNs this
// cuts exactly after each block's Concat (and after each stem conv/pool),
// reproducing the paper's per-block structure.

// Block is a contiguous-in-topological-order set of schedulable operators
// optimized independently.
type Block struct {
	// Index is the block's position in the network (0-based).
	Index int
	// Nodes lists the block's operators in topological order.
	Nodes []*Node

	// succ[i] is the set of block-local successor indices of Nodes[i]
	// (direct edges within the block).
	succ []bitset.Set
	// pred[i] is the set of block-local predecessor indices.
	pred []bitset.Set
}

// Succs returns the block-local direct-successor set of the i-th node.
func (b *Block) Succs(i int) bitset.Set { return b.succ[i] }

// Preds returns the block-local direct-predecessor set of the i-th node.
func (b *Block) Preds(i int) bitset.Set { return b.pred[i] }

// All returns the set of all operator indices in the block.
func (b *Block) All() bitset.Set { return bitset.Full(len(b.Nodes)) }

// LocalIndex returns the block-local index of a node, or -1.
func (b *Block) LocalIndex(n *Node) int {
	for i, m := range b.Nodes {
		if m == n {
			return i
		}
	}
	return -1
}

// Width returns the width (largest antichain) of the block.
func (b *Block) Width() int {
	if len(b.Nodes) == 0 {
		return 0
	}
	// Any node of the enclosing graph works as "all"; recover the graph
	// span from the first node's reachable context by passing the block
	// nodes twice is wrong — we need the full graph order. Blocks keep a
	// reference via node consumer links, so rebuild a superset list from
	// IDs: the width computation only needs reachability among block
	// nodes; paths through outside nodes cannot exist because a block is
	// closed between its entry producer and its exit node, so restricting
	// edges to the block is exact here.
	return widthWithin(b)
}

// widthWithin computes width using only intra-block edges.
func widthWithin(b *Block) int {
	n := len(b.Nodes)
	// Transitive closure over block-local successors.
	reach := make([]bitset.Set, n)
	for i := n - 1; i >= 0; i-- {
		r := b.succ[i]
		b.succ[i].ForEach(func(j int) bool {
			r = r.Union(reach[j])
			return true
		})
		reach[i] = r
	}
	matchR := make([]int, n)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		ok := false
		reach[u].ForEach(func(v int) bool {
			if seen[v] {
				return true
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchR[v] = u
				ok = true
				return false
			}
			return true
		})
		return ok
	}
	matched := 0
	for u := 0; u < n; u++ {
		if try(u, make([]bool, n)) {
			matched++
		}
	}
	return n - matched
}

// Partition splits the graph's schedulable nodes into blocks. maxBlockOps
// caps block size: if a natural block exceeds it (or 64, the bitset limit),
// Partition falls back to cutting at the cap, which preserves correctness
// (stages never span blocks anyway) at some loss of schedule optimality.
// Pass 0 to use the bitset limit.
//
// Per-block optimization is globally optimal only when every operator has
// a path to the network output (true for real CNNs): a dead-end operator
// stranded before a cut is forced to finish before later blocks start,
// whereas a global scheduler could overlap it with them. Correctness is
// unaffected either way.
func (g *Graph) Partition(maxBlockOps int) ([]*Block, error) {
	if maxBlockOps <= 0 || maxBlockOps > bitset.MaxElems {
		maxBlockOps = bitset.MaxElems
	}
	sched := g.SchedulableNodes()
	if len(sched) == 0 {
		return nil, nil
	}
	if len(g.cuts) > 0 {
		return g.partitionManual(sched, maxBlockOps)
	}
	pos := make(map[int]int, len(sched)) // node ID -> position in sched
	for i, n := range sched {
		pos[n.ID] = i
	}

	// A boundary after position i is clean iff every edge crossing it
	// starts at position i itself (then everything later depends on the
	// earlier computation only through node i's single output tensor).
	n := len(sched)
	maxTo := make([]int, n) // max consumer position of node at position i
	for i, node := range sched {
		maxTo[i] = i
		for _, c := range node.Outputs() {
			if j, ok := pos[c.ID]; ok && j > maxTo[i] {
				maxTo[i] = j
			}
		}
	}
	// Graph inputs count as producers at position -1: a network whose
	// input feeds several operators (e.g. the branches of Figure 2)
	// cannot be cut before all of them have appeared.
	furthestBefore := -1 // max consumer position over inputs and positions < i
	for _, node := range g.Nodes {
		if node.Op.Kind != OpInput {
			continue
		}
		for _, c := range node.Outputs() {
			if j, ok := pos[c.ID]; ok && j > furthestBefore {
				furthestBefore = j
			}
		}
	}
	cut := make([]bool, n) // cut after position i?
	for i := 0; i < n; i++ {
		// Edges from positions < i must not cross beyond i; edges from i
		// itself may (they all carry node i's single output tensor).
		if furthestBefore <= i {
			cut[i] = true
		}
		if maxTo[i] > furthestBefore {
			furthestBefore = maxTo[i]
		}
	}
	cut[n-1] = true

	var blocks []*Block
	start := 0
	flush := func(end int) { // [start, end] inclusive
		b := &Block{Index: len(blocks), Nodes: sched[start : end+1]}
		blocks = append(blocks, b)
		start = end + 1
	}
	for i := 0; i < n; i++ {
		if cut[i] || i-start+1 >= maxBlockOps {
			flush(i)
		}
	}

	if err := finishBlocks(g, blocks); err != nil {
		return nil, err
	}
	return blocks, nil
}

// partitionManual splits by the builder's CutBlock boundaries, further
// splitting any block that exceeds the size cap.
func (g *Graph) partitionManual(sched []*Node, maxBlockOps int) ([]*Block, error) {
	boundary := make(map[int]bool, len(g.cuts))
	for _, c := range g.cuts {
		boundary[c] = true // new block starts at node ID c
	}
	var blocks []*Block
	var cur []*Node
	flush := func() {
		if len(cur) > 0 {
			blocks = append(blocks, &Block{Index: len(blocks), Nodes: cur})
			cur = nil
		}
	}
	for _, n := range sched {
		if boundary[n.ID] || len(cur) >= maxBlockOps {
			flush()
		}
		cur = append(cur, n)
	}
	flush()
	if err := finishBlocks(g, blocks); err != nil {
		return nil, err
	}
	return blocks, nil
}

// finishBlocks validates block sizes and topological consistency across
// blocks, and builds the intra-block adjacency bitsets.
func finishBlocks(g *Graph, blocks []*Block) error {
	blockOf := make(map[int]int)
	for _, b := range blocks {
		if len(b.Nodes) > bitset.MaxElems {
			return fmt.Errorf("graph %q: block %d has %d ops > %d", g.Name, b.Index, len(b.Nodes), bitset.MaxElems)
		}
		for _, n := range b.Nodes {
			blockOf[n.ID] = b.Index
		}
	}
	for _, b := range blocks {
		local := make(map[int]int, len(b.Nodes))
		for i, node := range b.Nodes {
			local[node.ID] = i
		}
		b.succ = make([]bitset.Set, len(b.Nodes))
		b.pred = make([]bitset.Set, len(b.Nodes))
		for i, node := range b.Nodes {
			for _, in := range node.Inputs {
				if in.Op.Kind == OpInput {
					continue
				}
				if blockOf[in.ID] > b.Index {
					return fmt.Errorf("graph %q: edge %q->%q runs backwards across blocks %d->%d",
						g.Name, in.Name, node.Name, blockOf[in.ID], b.Index)
				}
			}
			for _, c := range node.Outputs() {
				if j, ok := local[c.ID]; ok {
					b.succ[i] = b.succ[i].Add(j)
					b.pred[j] = b.pred[j].Add(i)
				}
			}
		}
	}
	return nil
}
