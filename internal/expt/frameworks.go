package expt

import (
	"fmt"
	"io"
	"math"
	"time"

	"ios/internal/core"
	"ios/internal/frameworks"
	"ios/internal/gpusim"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/report"
)

// Fig7 compares IOS against the cuDNN-based frameworks (Section 6.2) on
// the configured device with batch one, reproducing Figure 7.
func Fig7(c Config, w io.Writer) error {
	c = c.withDefaults()
	return frameworkComparison(c, w, fmt.Sprintf("Figure 7: cuDNN-based frameworks on %s, batch %d", c.Device.Name, c.Batch))
}

// Fig15 is Figure 7 on the RTX 2080Ti (Appendix B).
func Fig15(c Config, w io.Writer) error {
	c = c.withDefaults()
	c.Device = gpusim.RTX2080Ti
	return frameworkComparison(c, w, fmt.Sprintf("Figure 15: cuDNN-based frameworks on %s, batch %d", c.Device.Name, c.Batch))
}

func frameworkComparison(c Config, w io.Writer, title string) error {
	names, graphs := c.benchmarks()
	series := make([]string, 0, 6)
	for _, f := range frameworks.CuDNNBaselines() {
		series = append(series, f.Name)
	}
	series = append(series, "IOS")
	chart := report.NewBarChart(title, series...)
	perSeries := make(map[string][]float64)
	for i, g := range graphs {
		values := make([]float64, 0, len(series))
		for _, f := range frameworks.CuDNNBaselines() {
			m, err := f.Measure(g, c.Device)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", names[i], f.Name, err)
			}
			values = append(values, float64(c.Batch)/m.Latency)
		}
		iosLat, _, err := c.latencyOf(g, "IOS")
		if err != nil {
			return fmt.Errorf("%s/IOS: %w", names[i], err)
		}
		values = append(values, float64(c.Batch)/iosLat)
		chart.AddGroup(names[i], values...)
		best := 0.0
		for _, v := range values {
			if v > best {
				best = v
			}
		}
		for j, s := range series {
			perSeries[s] = append(perSeries[s], values[j]/best)
		}
	}
	geo := make([]float64, len(series))
	for j, s := range series {
		geo[j] = report.GeoMean(perSeries[s])
	}
	chart.AddGroup("GeoMean", geo...)
	chart.Render(w)
	return nil
}

// Fig11BatchSizes is the batch-size sweep of Figure 11.
var Fig11BatchSizes = []int{1, 16, 32, 64, 128}

// Fig11 reproduces the throughput-versus-batch-size study (Section 7.3)
// on Inception V3: Sequential, TVM-cuDNN, TASO, TensorRT, and IOS. TASO
// runs out of GPU memory at batch 128 in the paper; the reproduction
// mirrors that as an n/a entry.
func Fig11(c Config, w io.Writer) error {
	c = c.withDefaults()
	series := []string{"Sequential", "TVM-cuDNN", "TASO", "TensorRT", "IOS"}
	chart := report.NewBarChart(
		fmt.Sprintf("Figure 11: Inception V3 throughput by batch size on %s (images/sec)", c.Device.Name),
		series...)
	t := report.NewTable("Figure 11 raw throughput (images/sec)", append([]string{"batch"}, series...)...)
	for _, batch := range Fig11BatchSizes {
		g := models.InceptionV3(batch)
		bc := c
		bc.Batch = batch
		values := make([]float64, 0, len(series))
		seqLat, _, err := bc.latencyOf(g, "Sequential")
		if err != nil {
			return err
		}
		values = append(values, float64(batch)/seqLat)
		for _, f := range []frameworks.Framework{frameworks.TVMcuDNN, frameworks.TASO, frameworks.TensorRT} {
			if f.Name == "TASO" && batch >= 128 {
				// TASO exhausts GPU memory at batch 128 (Figure 11 note).
				values = append(values, math.NaN())
				continue
			}
			m, err := f.Measure(g, c.Device)
			if err != nil {
				return err
			}
			values = append(values, float64(batch)/m.Latency)
		}
		iosLat, _, err := bc.latencyOf(g, "IOS")
		if err != nil {
			return err
		}
		values = append(values, float64(batch)/iosLat)
		chart.AddGroup(fmt.Sprintf("batch %d", batch), values...)
		row := make([]interface{}, 0, len(series)+1)
		row = append(row, batch)
		for _, v := range values {
			if math.IsNaN(v) {
				row = append(row, "OOM")
			} else {
				row = append(row, v)
			}
		}
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w)
	chart.Render(w)
	return nil
}

// Fig12 reproduces the intra- versus inter-operator parallelism study
// (Section 7.4): TVM-AutoTune against IOS, with total optimization cost.
func Fig12(c Config, w io.Writer) error {
	c = c.withDefaults()
	names, graphs := c.benchmarks()
	chart := report.NewBarChart(
		fmt.Sprintf("Figure 12: TVM-AutoTune vs IOS on %s, batch %d", c.Device.Name, c.Batch),
		"TVM-AutoTune", "IOS")
	var tvmCost, iosCost time.Duration
	perSeries := map[string][]float64{}
	for i, g := range graphs {
		m, err := frameworks.TVMAutoTune.Measure(g, c.Device)
		if err != nil {
			return err
		}
		prof := profile.New(c.Device)
		res, err := core.Optimize(g, prof, c.Opts)
		if err != nil {
			return err
		}
		iosLat, err := prof.MeasureSchedule(res.Schedule)
		if err != nil {
			return err
		}
		// IOS's optimization cost in "GPU time" is the simulated time the
		// profiler spent measuring candidate stages (each measured stage
		// would run warmup+repeat on real hardware; we charge 6 runs).
		iosCost += time.Duration(float64(res.Stats.Measurements) * 6 * iosLat / float64(len(res.Schedule.Stages)) * float64(time.Second))
		tvmCost += m.OptimizationCost
		vTVM, vIOS := float64(c.Batch)/m.Latency, float64(c.Batch)/iosLat
		chart.AddGroup(names[i], vTVM, vIOS)
		best := math.Max(vTVM, vIOS)
		perSeries["tvm"] = append(perSeries["tvm"], vTVM/best)
		perSeries["ios"] = append(perSeries["ios"], vIOS/best)
	}
	chart.AddGroup("GeoMean", report.GeoMean(perSeries["tvm"]), report.GeoMean(perSeries["ios"]))
	chart.Render(w)
	fmt.Fprintf(w, "total optimization cost: TVM-AutoTune %.1f GPU hours, IOS %.2f GPU hours (paper: 208 vs 3)\n",
		tvmCost.Hours(), iosCost.Hours())
	return nil
}
