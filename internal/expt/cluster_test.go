package expt

import (
	"strings"
	"testing"
)

func TestClusterExperiment(t *testing.T) {
	rows, err := ClusterRows(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.JoinSearches != 0 {
		t.Errorf("joining node ran %d block searches, want 0", r.JoinSearches)
	}
	if !r.Identical {
		t.Error("peer-fetched schedule not bit-identical to the seed's")
	}
	if !r.KilledOK {
		t.Error("requests failed after killing a node")
	}
	if r.FleetSearches >= r.UncoordSearches {
		t.Errorf("coordinated fleet searched %d times, uncoordinated bound %d", r.FleetSearches, r.UncoordSearches)
	}
	out := runExpt(t, "cluster", quickCfg())
	for _, want := range []string{"Sharded serving", "node joins warm", "bit-identical", "qps"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster report missing %q", want)
		}
	}
}
