package expt

import (
	"bytes"
	"strings"
	"testing"

	"ios/internal/gpusim"
)

// quickCfg uses the reduced model set so every experiment finishes fast.
func quickCfg() Config {
	return Config{Device: gpusim.TeslaV100, Batch: 1, Quick: true}
}

func TestAllExperimentsRegistered(t *testing.T) {
	for _, name := range Names() {
		if _, ok := All[name]; !ok {
			t.Errorf("experiment %q in Names but not in All", name)
		}
	}
	if len(Names()) != len(All) {
		t.Errorf("Names lists %d experiments, All has %d", len(Names()), len(All))
	}
}

// runExpt executes one experiment into a buffer.
func runExpt(t *testing.T, name string, cfg Config) string {
	t.Helper()
	var buf bytes.Buffer
	if err := All[name](cfg, &buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", name)
	}
	return out
}

func TestFig1(t *testing.T) {
	out := runExpt(t, "fig1", quickCfg())
	for _, want := range []string{"VGG-16", "Inception V3", "NasNet", "GTX 980Ti", "Tesla V100"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 missing %q", want)
		}
	}
}

func TestFig2StageProfiles(t *testing.T) {
	out := runExpt(t, "fig2", quickCfg())
	for _, want := range []string{"Sequential", "Greedy", "IOS", "GFLOPs", "util"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 missing %q", want)
		}
	}
}

func TestFig8WarpRatio(t *testing.T) {
	out := runExpt(t, "fig8", quickCfg())
	if !strings.Contains(out, "active warps") || !strings.Contains(out, "paper: 1.58x") {
		t.Errorf("fig8 output unexpected:\n%s", out)
	}
}

func TestTable2Inventory(t *testing.T) {
	out := runExpt(t, "table2", Config{Device: gpusim.TeslaV100, Batch: 1})
	for _, want := range []string{"Inception V3", "RandWire", "NasNet", "SqueezeNet", "Conv-Relu", "Relu-SepConv"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestQuickScheduleComparison(t *testing.T) {
	out := runExpt(t, "fig6", quickCfg())
	for _, want := range SchedulePolicies {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 missing series %q", want)
		}
	}
	if !strings.Contains(out, "GeoMean") {
		t.Error("fig6 missing GeoMean group")
	}
}

func TestQuickFrameworkComparison(t *testing.T) {
	out := runExpt(t, "fig7", quickCfg())
	for _, want := range []string{"Tensorflow", "TASO", "TensorRT", "IOS"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q", want)
		}
	}
}

func TestQuickFig9Pruning(t *testing.T) {
	out := runExpt(t, "fig9", quickCfg())
	for _, want := range []string{"r=3,s=8", "r=1,s=3", "latency ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig9 missing %q", want)
		}
	}
}

func TestQuickTable3Specialization(t *testing.T) {
	out := runExpt(t, "table3", quickCfg())
	if !strings.Contains(out, "batch-size specialization") || !strings.Contains(out, "device specialization") {
		t.Errorf("table3 output unexpected:\n%s", out)
	}
}

func TestQuickFig10(t *testing.T) {
	out := runExpt(t, "fig10", quickCfg())
	if !strings.Contains(out, "optimized for batch 1") || !strings.Contains(out, "optimized for batch 32") {
		t.Errorf("fig10 output unexpected")
	}
}

func TestQuickFig12(t *testing.T) {
	out := runExpt(t, "fig12", quickCfg())
	if !strings.Contains(out, "TVM-AutoTune") || !strings.Contains(out, "GPU hours") {
		t.Errorf("fig12 output unexpected")
	}
}

func TestQuickTable1(t *testing.T) {
	out := runExpt(t, "table1", quickCfg())
	if !strings.Contains(out, "#(S,S')") || !strings.Contains(out, "#schedules") {
		t.Errorf("table1 output unexpected")
	}
}

func TestQuickCombo(t *testing.T) {
	out := runExpt(t, "combo", quickCfg())
	if !strings.Contains(out, "IOS+AutoTune") {
		t.Errorf("combo output unexpected")
	}
}

func TestAblationContention(t *testing.T) {
	out := runExpt(t, "ablation-contention", quickCfg())
	if !strings.Contains(out, "contention") || !strings.Contains(out, "speedup") {
		t.Errorf("ablation output unexpected")
	}
}

func TestAblationSerialTail(t *testing.T) {
	out := runExpt(t, "ablation-serial", quickCfg())
	if !strings.Contains(out, "r=1,s=8") {
		t.Errorf("serial ablation output unexpected")
	}
}

func TestQuickLightweight(t *testing.T) {
	out := runExpt(t, "lightweight", quickCfg())
	for _, want := range []string{"MobileNetV2", "ShuffleNet", "ios speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("lightweight missing %q", want)
		}
	}
}

func TestLatencyOfUnknownPolicy(t *testing.T) {
	c := quickCfg().withDefaults()
	g := benchmarksFirst(c)
	if _, _, err := c.latencyOf(g, "nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestQuickSpecializeRows(t *testing.T) {
	rows, err := SpecializeRows(quickCfg(), []int{1, 2})
	if err != nil {
		t.Fatalf("SpecializeRows: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("quick specialize rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if len(r.Batches) != 2 || len(r.LatencyMS) != 2 || len(r.Penalty) != 2 {
		t.Fatalf("row shape wrong: %+v", r)
	}
	if !r.DiagonalWins {
		t.Error("specialized schedule lost to a reused one")
	}
	for i := range r.Batches {
		if r.Penalty[i][i] != 1 {
			t.Errorf("penalty diagonal [%d][%d] = %v, want 1", i, i, r.Penalty[i][i])
		}
		for j := range r.Batches {
			if r.LatencyMS[i][j] <= 0 {
				t.Errorf("latency_ms[%d][%d] = %v", i, j, r.LatencyMS[i][j])
			}
		}
	}
}

func TestQuickTrafficRows(t *testing.T) {
	rows, err := TrafficRows(quickCfg())
	if err != nil {
		t.Fatalf("TrafficRows: %v", err)
	}
	if len(rows) != 2 || rows[0].Regime != "poisson" || rows[1].Regime != "bursty" {
		t.Fatalf("rows = %+v, want poisson then bursty", rows)
	}
	for _, r := range rows {
		if len(r.Policies) != 4 {
			t.Fatalf("%s: %d policies, want 4 (batch1, fixed, adaptive, adaptive-suggested)", r.Regime, len(r.Policies))
		}
		if r.Policies[0].Policy != "batch1" || r.Policies[2].Policy != "adaptive" {
			t.Errorf("%s: policy order = %v", r.Regime, r.Policies)
		}
		if len(r.SuggestedBatches) == 0 {
			t.Errorf("%s: no suggested batches", r.Regime)
		}
		if r.RateImagesPerSec <= 0 || r.SLOMS <= 0 {
			t.Errorf("%s: derived load %v img/s SLO %vms not positive", r.Regime, r.RateImagesPerSec, r.SLOMS)
		}
		for _, p := range r.Policies {
			if p.ImagesPerSec <= 0 || p.P99MS < p.P50MS {
				t.Errorf("%s/%s: implausible summary %+v", r.Regime, p.Policy, p)
			}
		}
	}
	// The benchmark gate's assertion must hold under the Poisson regime.
	if !rows[0].AdaptiveBeatsBatch1 {
		t.Error("poisson: adaptive did not beat batch=1 throughput")
	}
	if !rows[0].AdaptiveWithinSLO {
		t.Error("poisson: adaptive p99 exceeded the derived SLO")
	}
}

// TestQuickTrafficDeterministic pins the seeded end-to-end run: two
// invocations must agree bit-for-bit, or BENCH_traffic.json churns on
// every regeneration.
func TestQuickTrafficDeterministic(t *testing.T) {
	a, err := TrafficRows(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrafficRows(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Policies {
			if a[i].Policies[j] != b[i].Policies[j] {
				t.Errorf("run-to-run drift in %s/%s: %+v vs %+v",
					a[i].Regime, a[i].Policies[j].Policy, a[i].Policies[j], b[i].Policies[j])
			}
		}
	}
}

func TestQuickTrafficExperiment(t *testing.T) {
	out := runExpt(t, "traffic", quickCfg())
	for _, want := range []string{"poisson", "bursty", "adaptive beats batch1: true", "p99 within SLO: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("traffic output missing %q:\n%s", want, out)
		}
	}
}

func TestQuickSpecializeExperiment(t *testing.T) {
	out := runExpt(t, "specialize", quickCfg())
	for _, want := range []string{"Batch specialization", "diagonal wins every column: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("specialize output missing %q:\n%s", want, out)
		}
	}
}
