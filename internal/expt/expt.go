//ioslint:deterministic

// Package expt regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each experiment
// is a function that computes structured rows and renders them as text;
// cmd/iosbench exposes them on the command line and the repository's
// benchmark suite wraps them in testing.B benchmarks.
package expt

import (
	"fmt"
	"io"

	"ios/internal/baseline"
	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/schedule"
)

// Config carries the common experiment knobs.
type Config struct {
	// Device is the simulated GPU (default Tesla V100).
	Device gpusim.Spec
	// Batch is the inference batch size (default 1).
	Batch int
	// Opts configures the IOS search (default: paper settings).
	Opts core.Options
	// Quick replaces the two expensive networks (RandWire, NasNet) with
	// reduced versions so the experiment finishes in seconds; used by
	// tests. Reported shapes are unaffected.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Device.SMs == 0 {
		c.Device = gpusim.TeslaV100
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	return c
}

// benchmarks returns the benchmark networks at the configured batch size.
func (c Config) benchmarks() ([]string, []*graph.Graph) {
	names := models.BenchmarkNames()
	graphs := make([]*graph.Graph, len(names))
	for i, b := range models.Benchmarks() {
		graphs[i] = b(c.Batch)
	}
	if c.Quick {
		graphs[1] = models.RandWireSized(c.Batch, 10, models.DefaultRandWireSeed)
		graphs[2] = models.InceptionE(c.Batch) // stand-in for NasNet
	}
	return names, graphs
}

// measureSchedule measures a schedule on a fresh profiler for the device.
func (c Config) measureSchedule(s *schedule.Schedule) (float64, error) {
	return profile.New(c.Device).MeasureSchedule(s)
}

// optimize runs IOS with the given strategy set.
func (c Config) optimize(g *graph.Graph, strategies core.StrategySet) (*core.Result, error) {
	opts := c.Opts
	opts.Strategies = strategies
	return core.Optimize(g, profile.New(c.Device), opts)
}

// latencyOf resolves one named schedule policy on a graph.
func (c Config) latencyOf(g *graph.Graph, policy string) (float64, *core.Stats, error) {
	var (
		s   *schedule.Schedule
		st  *core.Stats
		err error
	)
	switch policy {
	case "Sequential":
		s, err = baseline.Sequential(g)
	case "Greedy":
		s, err = baseline.Greedy(g)
	case "IOS-Merge":
		var res *core.Result
		res, err = c.optimize(g, core.MergeOnly)
		if err == nil {
			s, st = res.Schedule, &res.Stats
		}
	case "IOS-Parallel":
		var res *core.Result
		res, err = c.optimize(g, core.ParallelOnly)
		if err == nil {
			s, st = res.Schedule, &res.Stats
		}
	case "IOS-Both", "IOS":
		var res *core.Result
		res, err = c.optimize(g, core.Both)
		if err == nil {
			s, st = res.Schedule, &res.Stats
		}
	default:
		return 0, nil, fmt.Errorf("expt: unknown policy %q", policy)
	}
	if err != nil {
		return 0, nil, err
	}
	lat, err := c.measureSchedule(s)
	return lat, st, err
}

// Runner is an experiment entry point: it writes its report to w.
type Runner func(c Config, w io.Writer) error

// All maps experiment ids to runners, for cmd/iosbench.
var All = map[string]Runner{
	"table1":        Table1,
	"table2":        Table2,
	"table3":        Table3,
	"fig1":          Fig1,
	"fig2":          Fig2,
	"fig6":          Fig6,
	"fig7":          Fig7,
	"fig8":          Fig8,
	"fig9":          Fig9,
	"fig10":         Fig10,
	"fig11":         Fig11,
	"fig12":         Fig12,
	"fig14":         Fig14,
	"fig15":         Fig15,
	"fig16":         Fig16,
	"resnet":        ResNet,
	"search":        SearchCost,
	"measure-cache": MeasureCache,
	"block-cache":   BlockCache,
	"specialize":    Specialize,
	"traffic":       Traffic,
	"cluster":       Cluster,
}

// Names returns the experiment ids in report order: the paper's tables
// and figures first, then the extension studies (see extensions.go).
func Names() []string {
	return append([]string{"fig1", "fig2", "table1", "table2", "fig6", "fig7", "fig8",
		"fig9", "table3", "fig10", "fig11", "fig12", "fig14", "fig15", "fig16", "resnet",
		"search", "measure-cache", "block-cache", "specialize", "traffic", "cluster"},
		ExtensionNames()...)
}

// benchmarksFirst returns the first benchmark graph for a config (test
// helper kept here to reuse the unexported config methods).
func benchmarksFirst(c Config) *graph.Graph {
	_, graphs := c.benchmarks()
	return graphs[0]
}
