package expt

import (
	"fmt"
	"io"

	"ios/internal/baseline"
	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/report"
	"ios/internal/schedule"
)

// SchedulePolicies is the Figure 6/14 legend order.
var SchedulePolicies = []string{"Sequential", "Greedy", "IOS-Merge", "IOS-Parallel", "IOS-Both"}

// Fig6 compares the five schedules of Section 6.1 across the benchmark
// CNNs on the configured device (batch one by default) and renders
// normalized throughput, reproducing Figure 6.
func Fig6(c Config, w io.Writer) error {
	c = c.withDefaults()
	return scheduleComparison(c, w, fmt.Sprintf("Figure 6: schedules on %s, batch %d", c.Device.Name, c.Batch))
}

// Fig14 is Figure 6 on the RTX 2080Ti (Appendix B).
func Fig14(c Config, w io.Writer) error {
	c = c.withDefaults()
	c.Device = gpusim.RTX2080Ti
	return scheduleComparison(c, w, fmt.Sprintf("Figure 14: schedules on %s, batch %d", c.Device.Name, c.Batch))
}

func scheduleComparison(c Config, w io.Writer, title string) error {
	names, graphs := c.benchmarks()
	chart := report.NewBarChart(title, SchedulePolicies...)
	perPolicy := make(map[string][]float64)
	for i, g := range graphs {
		values := make([]float64, len(SchedulePolicies))
		for j, policy := range SchedulePolicies {
			lat, _, err := c.latencyOf(g, policy)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", names[i], policy, err)
			}
			values[j] = float64(c.Batch) / lat // throughput
		}
		chart.AddGroup(names[i], values...)
		best := 0.0
		for _, v := range values {
			if v > best {
				best = v
			}
		}
		for j, policy := range SchedulePolicies {
			perPolicy[policy] = append(perPolicy[policy], values[j]/best)
		}
	}
	geo := make([]float64, len(SchedulePolicies))
	for j, policy := range SchedulePolicies {
		geo[j] = report.GeoMean(perPolicy[policy])
	}
	chart.AddGroup("GeoMean", geo...)
	chart.Render(w)
	return nil
}

// Fig2 reproduces the running example: the sequential, greedy, and IOS
// schedules of the Figure 2 block with per-stage GFLOPs, achieved TFLOP/s,
// and device utilization.
func Fig2(c Config, w io.Writer) error {
	c = c.withDefaults()
	g := models.Figure2Block(c.Batch)
	prof := profile.New(c.Device)

	seq, err := baseline.Sequential(g)
	if err != nil {
		return err
	}
	grd, err := baseline.Greedy(g)
	if err != nil {
		return err
	}
	res, err := core.Optimize(g, prof, c.Opts)
	if err != nil {
		return err
	}
	for _, entry := range []struct {
		name string
		s    *schedule.Schedule
	}{{"Sequential", seq}, {"Greedy", grd}, {"IOS", res.Schedule}} {
		t := report.NewTable(fmt.Sprintf("Figure 2 (%s) on %s", entry.name, c.Device.Name),
			"stage", "ops", "GFLOPs", "TFLOP/s", "util %", "latency ms")
		var total, flops float64
		var utilSum float64
		for i, st := range entry.s.Stages {
			p, err := prof.ProfileStage(st)
			if err != nil {
				return err
			}
			total += p.Latency
			flops += p.GFLOPs
			utilSum += p.Utilization * p.Latency
			t.AddRow(i+1, stageOpsString(st), p.GFLOPs, p.TFLOPSs, 100*p.Utilization, 1e3*p.Latency)
		}
		t.AddRow("total", "", flops, flops/total/1e3, 100*utilSum/total, 1e3*total)
		t.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

func stageOpsString(st schedule.Stage) string {
	s := ""
	for i, grp := range st.Groups {
		if i > 0 {
			s += " | "
		}
		for j, n := range grp {
			if j > 0 {
				s += ","
			}
			s += n.Name
		}
	}
	return s
}

// Fig8 reproduces the active-warp study (Section 6.3): it executes the
// Figure 2 model repeatedly under the sequential and the IOS schedule,
// samples resident warps CUPTI-style, and reports the mean active-warp
// ratio (the paper measures 1.58x).
func Fig8(c Config, w io.Writer) error {
	c = c.withDefaults()
	g := models.Figure2Block(c.Batch)
	prof := profile.New(c.Device)
	seq, err := baseline.Sequential(g)
	if err != nil {
		return err
	}
	res, err := core.Optimize(g, prof, c.Opts)
	if err != nil {
		return err
	}
	_, seqTrace, err := prof.TraceSchedule(seq)
	if err != nil {
		return err
	}
	_, iosTrace, err := prof.TraceSchedule(res.Schedule)
	if err != nil {
		return err
	}
	seqRate := seqTrace.WarpSeconds() / seqTrace.Duration() // warps (avg resident)
	iosRate := iosTrace.WarpSeconds() / iosTrace.Duration()
	t := report.NewTable(fmt.Sprintf("Figure 8: active warps on %s", c.Device.Name),
		"schedule", "mean active warps", "duration ms", "warps/ms (1e3)")
	t.AddRow("Sequential", seqRate, 1e3*seqTrace.Duration(), seqRate/1e3)
	t.AddRow("IOS", iosRate, 1e3*iosTrace.Duration(), iosRate/1e3)
	t.Render(w)
	fmt.Fprintf(w, "IOS achieves %.2fx the sequential schedule's active warps (paper: 1.58x)\n", iosRate/seqRate)

	// Sampled series, 40 windows like the paper's timeline plot.
	period := seqTrace.Duration() / 40
	fmt.Fprintln(w, "sampled warp-seconds per window (seq | ios):")
	sseq, sios := seqTrace.Sample(period), iosTrace.Sample(period)
	for i := 0; i < len(sseq) || i < len(sios); i++ {
		var a, b float64
		if i < len(sseq) {
			a = sseq[i]
		}
		if i < len(sios) {
			b = sios[i]
		}
		fmt.Fprintf(w, "  %2d  %10.4g  %10.4g\n", i, a, b)
	}
	return nil
}

// Fig16 compares IOS against the sequential schedule per Inception V3
// block (Appendix C): later blocks have more width and speed up more.
func Fig16(c Config, w io.Writer) error {
	c = c.withDefaults()
	g := models.InceptionV3(c.Batch)
	blocks, err := g.Partition(0)
	if err != nil {
		return err
	}
	prof := profile.New(c.Device)
	t := report.NewTable(fmt.Sprintf("Figure 16: per-block speedup, Inception V3 on %s", c.Device.Name),
		"block", "ops", "width", "seq ms", "ios ms", "speedup")
	var seqTotal, iosTotal float64
	idx := 0
	for _, b := range blocks {
		stages, _, err := core.OptimizeBlock(b, prof, c.Opts)
		if err != nil {
			return err
		}
		var iosLat float64
		for _, st := range stages {
			l, err := prof.MeasureStage(st)
			if err != nil {
				return err
			}
			iosLat += l
		}
		var seqLat float64
		for _, n := range b.Nodes {
			l, err := prof.MeasureStage(schedule.Stage{Strategy: schedule.Concurrent,
				Groups: [][]*graph.Node{{n}}})
			if err != nil {
				return err
			}
			seqLat += l
		}
		seqTotal += seqLat
		iosTotal += iosLat
		if len(b.Nodes) >= 6 { // report the Inception blocks, as the paper does
			idx++
			t.AddRow(idx, len(b.Nodes), b.Width(), 1e3*seqLat, 1e3*iosLat, seqLat/iosLat)
		}
	}
	t.AddRow("all", "", "", 1e3*seqTotal, 1e3*iosTotal, seqTotal/iosTotal)
	t.Render(w)
	return nil
}

// ResNet reproduces the Section 5 remark: ResNet-34/50 have little
// inter-operator parallelism, so IOS yields only a few percent.
func ResNet(c Config, w io.Writer) error {
	c = c.withDefaults()
	t := report.NewTable(fmt.Sprintf("ResNet (Section 5 remark) on %s", c.Device.Name),
		"network", "seq ms", "ios ms", "speedup")
	for _, b := range []models.Builder{models.ResNet34, models.ResNet50} {
		g := b(c.Batch)
		seqLat, _, err := c.latencyOf(g, "Sequential")
		if err != nil {
			return err
		}
		iosLat, _, err := c.latencyOf(g, "IOS")
		if err != nil {
			return err
		}
		t.AddRow(g.Name, 1e3*seqLat, 1e3*iosLat, seqLat/iosLat)
	}
	t.Render(w)
	return nil
}
