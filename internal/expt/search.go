package expt

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/report"
)

// Fig1 reproduces the motivation trend (Figure 1): average FLOPs per
// convolution and convolution counts for a 2013/2015/2018 network
// alongside the era's GPU peak performance.
func Fig1(c Config, w io.Writer) error {
	c = c.withDefaults()
	entries := []struct {
		year   int
		build  models.Builder
		device gpusim.Spec
	}{
		{2013, models.VGG16, gpusim.GTX980Ti},
		{2015, models.InceptionV3, gpusim.GTX1080},
		{2018, models.NasNetA, gpusim.TeslaV100},
	}
	t := report.NewTable("Figure 1: per-conv FLOPs vs device peak trend",
		"year", "network", "#conv", "avg MFLOPs/conv", "device", "peak GFLOP/s")
	for _, e := range entries {
		g := e.build(1)
		st := g.ComputeStats()
		t.AddRow(e.year, g.Name, st.Convs, st.MeanConvFLOPs/1e6, e.device.Name, e.device.PeakFLOPs/1e9)
	}
	t.Render(w)
	fmt.Fprintln(w, "(device peak rises while per-conv work falls: the utilization gap IOS closes)")
	return nil
}

// Table2 reproduces the benchmark inventory: blocks, operators, and the
// dominant operator type per network.
func Table2(c Config, w io.Writer) error {
	c = c.withDefaults()
	t := report.NewTable("Table 2: CNN benchmarks",
		"network", "#blocks", "#operators", "operator type")
	types := []string{"Conv-Relu", "Relu-SepConv", "Relu-SepConv", "Conv-Relu"}
	for i, b := range models.Benchmarks() {
		g := b(c.Batch)
		blocks, err := g.Partition(0)
		if err != nil {
			return err
		}
		t.AddRow(g.Name, len(blocks), g.ComputeStats().Ops, types[i])
	}
	t.Render(w)
	return nil
}

// Table1 reproduces the search-space analysis: for each network's hardest
// block, the operator count n, width d, theoretical transition bound,
// exact transition count #(S, S'), and the total number of feasible
// schedules.
func Table1(c Config, w io.Writer) error {
	c = c.withDefaults()
	t := report.NewTable("Table 1: largest-block search space per network",
		"network", "n", "d", "bound C(n/d+2,2)^d", "#(S,S')", "#schedules")
	names, graphs := c.benchmarks()
	for i, g := range graphs {
		comp, err := core.AnalyzeLargestBlock(g)
		if err != nil {
			return err
		}
		t.AddRow(names[i], comp.N, comp.D, comp.Bound, comp.Transitions, comp.Schedules)
	}
	t.Render(w)
	fmt.Fprintln(w, "(paper: Inception 11/6/2.6e4/4.9e3/3.8e6; RandWire 33/8/3.7e9/1.2e6/9.2e22;")
	fmt.Fprintln(w, "        NasNet 18/8/5.2e6/3.1e5/7.2e12; SqueezeNet 6/3/2.2e2/51/1.3e2)")
	return nil
}

// Fig9 reproduces the pruning trade-off (Section 7.1): optimized latency
// versus optimization cost for r in {1,2,3} and s in {3,8} on Inception V3
// and NasNet.
func Fig9(c Config, w io.Writer) error {
	c = c.withDefaults()
	nets := []struct {
		name  string
		build models.Builder
	}{
		{"Inception V3", models.InceptionV3},
		{"NasNet", models.NasNetA},
	}
	if c.Quick {
		nets[0] = struct {
			name  string
			build models.Builder
		}{"SqueezeNet", models.SqueezeNet}
		nets[1] = struct {
			name  string
			build models.Builder
		}{"Inception-E", models.InceptionE}
	}
	t := report.NewTable(fmt.Sprintf("Figure 9: pruning trade-off on %s, batch %d", c.Device.Name, c.Batch),
		"network", "pruning", "latency ms", "search s", "#(S,S')", "measurements")
	for _, net := range nets {
		g := net.build(c.Batch)
		for _, s := range []int{8, 3} {
			for _, r := range []int{3, 2, 1} {
				opts := c.Opts
				opts.Pruning = core.Pruning{R: r, S: s}
				prof := profile.New(c.Device)
				res, err := core.Optimize(g, prof, opts)
				if err != nil {
					return err
				}
				lat, err := prof.MeasureSchedule(res.Schedule)
				if err != nil {
					return err
				}
				t.AddRow(net.name, opts.Pruning.String(), 1e3*lat,
					res.Stats.WallTime.Seconds(), res.Stats.Transitions, res.Stats.Measurements)
			}
		}
	}
	t.Render(w)
	fmt.Fprintln(w, "(smaller r and s cut the search cost at mildly higher latency — Figure 9's trade-off)")
	return nil
}

// BlockComplexities lists the per-block Table 1 quantities for one graph,
// used by tests and cmd/iosviz.
func BlockComplexities(g *graph.Graph) ([]core.Complexity, error) {
	blocks, err := g.Partition(0)
	if err != nil {
		return nil, err
	}
	out := make([]core.Complexity, 0, len(blocks))
	for _, b := range blocks {
		out = append(out, core.AnalyzeBlock(b))
	}
	return out, nil
}

// SearchRow is one search-cost record: the cost of optimizing one
// network's hardest block (and the whole network) at one worker count.
// cmd/iosbench serializes these as BENCH_search.json so successive PRs
// have a perf trajectory for the DP engine.
type SearchRow struct {
	Network      string  `json:"network"`
	Scope        string  `json:"scope"` // "block" (hardest block) or "network"
	Ops          int     `json:"ops"`
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	Measurements int     `json:"measurements"`
}

// SearchCostRows measures the DP engine's own cost across the benchmark
// networks at Workers=1 and Workers=GOMAXPROCS (deduplicated when equal).
// The schedules are identical at every worker count; only the wall time
// may differ.
func SearchCostRows(c Config) ([]SearchRow, error) {
	c = c.withDefaults()
	workerSettings := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerSettings = append(workerSettings, n)
	}
	var rows []SearchRow
	names, graphs := c.benchmarks()
	for i, g := range graphs {
		hardest, err := core.HardestBlock(g)
		if err != nil {
			return nil, err
		}
		for _, w := range workerSettings {
			opts := c.Opts
			opts.Workers = w
			if hardest != nil {
				start := time.Now() //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
				_, bstats, err := core.OptimizeBlock(hardest, profile.New(c.Device), opts)
				if err != nil {
					return nil, err
				}
				rows = append(rows, SearchRow{
					Network: names[i], Scope: "block", Ops: len(hardest.Nodes), Workers: w,
					WallMS: float64(time.Since(start)) / 1e6, //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
					States: bstats.States, Transitions: bstats.Transitions, Measurements: bstats.Measurements,
				})
			}
			res, err := core.Optimize(g, profile.New(c.Device), opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SearchRow{
				Network: names[i], Scope: "network", Ops: len(g.SchedulableNodes()), Workers: w,
				WallMS: float64(res.Stats.WallTime) / 1e6,
				States: res.Stats.States, Transitions: res.Stats.Transitions, Measurements: res.Stats.Measurements,
			})
		}
	}
	return rows, nil
}

// SearchCost renders the SearchCostRows table (experiment id "search").
func SearchCost(c Config, w io.Writer) error {
	rows, err := SearchCostRows(c)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Search cost: DP engine on %s (identical schedules at every worker count)", c.withDefaults().Device.Name),
		"network", "scope", "ops", "workers", "wall ms", "states", "#(S,S')", "measurements")
	for _, r := range rows {
		t.AddRow(r.Network, r.Scope, r.Ops, r.Workers, r.WallMS, r.States, r.Transitions, r.Measurements)
	}
	t.Render(w)
	return nil
}
