package expt

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"ios/internal/batching"
	"ios/internal/measure"
	"ios/internal/models"
	"ios/internal/plan"
	"ios/internal/profile"
	"ios/internal/report"
)

// This file is the serving-under-traffic study (experiment "traffic"):
// it drives the auto-batching front end (internal/batching) through
// seeded synthetic arrival traces against a batch-specialization plan
// and compares it to the dispatch-immediately and fixed-batch baselines.
// Every knob of the study is derived from the plan's own measured
// matrix — the offered load sits between the measured batch-1 capacity
// and the measured best-batch capacity, and the SLO is a multiple of
// the time the adaptive policy needs to fill and serve the best batch —
// so there are no hardcoded batch sizes or latency thresholds anywhere.
// The study also closes the plan-selection loop: the adaptive run's
// dispatch histogram feeds plan.SuggestBatches, a second plan is built
// at the suggested sweep points, and the trace is replayed against it.

// trafficSeed* fix the arrival traces so benchmark runs are
// reproducible; regimes use distinct seeds so their traces differ.
const (
	trafficSeedPoisson = 1
	trafficSeedBursty  = 2
)

// TrafficPolicyRow is one dispatch policy's run over one arrival trace.
type TrafficPolicyRow struct {
	// Policy is "batch1" (dispatch immediately), "fixed:<b>" (wait for
	// exactly b images), "adaptive" (the SLO-aware queue on the pilot
	// plan) or "adaptive-suggested" (the same queue on the plan rebuilt
	// at the SuggestBatches sweep points).
	Policy       string  `json:"policy"`
	ImagesPerSec float64 `json:"images_per_sec"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	MeanMS       float64 `json:"mean_ms"`
	MaxMS        float64 `json:"max_ms"`
	// SLOViolations counts requests finishing past the SLO; Dispatches
	// and MeanBatch describe device efficiency.
	SLOViolations int     `json:"slo_violations"`
	Dispatches    int     `json:"dispatches"`
	MeanBatch     float64 `json:"mean_batch"`
}

// TrafficRow is one (network, arrival regime) record: the derived load
// and SLO, the policies compared on the same trace, and the headline
// assertions the benchmark gate checks under the Poisson regime.
type TrafficRow struct {
	Network string `json:"network"`
	// Regime is "poisson" (memoryless arrivals) or "bursty" (ON-OFF
	// source alternating full-capacity bursts with silence).
	Regime   string `json:"regime"`
	Requests int    `json:"requests"`
	// RateImagesPerSec is the offered load: the geometric mean of the
	// plan's measured batch-1 capacity and best-batch capacity, so it
	// overloads dispatch-immediately serving while staying well inside
	// what batched dispatches sustain. For the bursty regime it is the
	// long-run average; bursts arrive at the best-batch capacity.
	RateImagesPerSec float64 `json:"rate_images_per_sec"`
	// SLOMS is the latency target: twice the time the adaptive policy
	// needs to accumulate and serve the plan's best batch at the offered
	// rate.
	SLOMS float64 `json:"slo_ms"`
	// PilotBatches is the first plan's sweep; SuggestedBatches is the
	// sweep plan.SuggestBatches derives from the adaptive run's dispatch
	// histogram for the rebuilt plan.
	PilotBatches     []int              `json:"pilot_batches"`
	SuggestedBatches []int              `json:"suggested_batches"`
	Policies         []TrafficPolicyRow `json:"policies"`
	// AdaptiveBeatsBatch1 reports that the adaptive policy's throughput
	// exceeded dispatch-immediately serving; AdaptiveWithinSLO that its
	// p99 met the SLO. Both must hold under the Poisson regime — that is
	// the benchmark gate's assertion.
	AdaptiveBeatsBatch1 bool `json:"adaptive_beats_batch1"`
	AdaptiveWithinSLO   bool `json:"adaptive_within_slo"`
}

// trafficNet returns the traffic study's subject network: the paper's
// serving benchmark (Inception V3), or its largest block in Quick mode.
func trafficNet(c Config) (string, models.Builder) {
	if c.Quick {
		return "Inception E block", models.InceptionE
	}
	return "Inception V3", models.InceptionV3
}

// trafficRequests is the trace length per regime.
func trafficRequests(c Config) int {
	if c.Quick {
		return 1200
	}
	return 4000
}

// buildTrafficPlan builds a specialization plan for the study, sharing
// one structural measurement cache across the pilot and rebuilt plans.
func buildTrafficPlan(c Config, root *profile.Profiler, build models.Builder, batches []int) (*plan.Plan, error) {
	//lint:ioslint-ignore ctxdiscipline experiment runners own their lifecycle; the Runner API is ctx-free by design
	return plan.Build(context.Background(), plan.BuildConfig{
		Graph:       build(1),
		Batches:     batches,
		Device:      c.Device.Name,
		Opts:        c.Opts,
		Workers:     c.Opts.Workers,
		NewProfiler: root.Fork,
	})
}

// trafficLoad derives the offered rate and SLO from the pilot plan's
// measured matrix. bestBatch is the planned batch with the highest
// measured throughput (ties prefer smaller); the rate is the geometric
// mean of the batch-1 and best-batch capacities; the SLO doubles the
// fill-plus-serve time of the best batch at that rate.
func trafficLoad(p *plan.Plan) (bestBatch int, rate float64, slo time.Duration) {
	for _, b := range p.Batches() {
		if bestBatch == 0 || p.EstimateThroughput(b) > p.EstimateThroughput(bestBatch) {
			bestBatch = b
		}
	}
	cap1 := p.EstimateThroughput(1)
	capBest := p.EstimateThroughput(bestBatch)
	rate = cap1
	if capBest > cap1 {
		rate = math.Sqrt(cap1 * capBest)
	}
	fill := float64(bestBatch) / rate
	slo = time.Duration(2 * (fill + p.EstimateLatency(bestBatch)) * float64(time.Second))
	return bestBatch, rate, slo
}

// policyRow converts a simulation result into a report row.
func policyRow(r batching.SimResult) TrafficPolicyRow {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return TrafficPolicyRow{
		Policy:        r.Policy,
		ImagesPerSec:  r.ImagesPerSec,
		P50MS:         ms(r.P50),
		P99MS:         ms(r.P99),
		MeanMS:        ms(r.Mean),
		MaxMS:         ms(r.Max),
		SLOViolations: r.SLOViolations,
		Dispatches:    r.Dispatches,
		MeanBatch:     r.MeanBatch,
	}
}

// TrafficRows runs the serving-under-traffic comparison: one row per
// arrival regime (Poisson, bursty ON-OFF), each comparing batch1,
// fixed-batch, adaptive, and adaptive-on-the-suggested-plan dispatch on
// the same seeded trace.
func TrafficRows(c Config) ([]TrafficRow, error) {
	c = c.withDefaults()
	name, build := trafficNet(c)
	pilotBatches := append([]int(nil), Table3Batches...)

	// One measurement cache for the whole study: the rebuilt plan's
	// searches deduplicate against the pilot plan's measurements.
	root := profile.New(c.Device)
	root.SetMeasureCache(measure.NewCache())
	pilot, err := buildTrafficPlan(c, root, build, pilotBatches)
	if err != nil {
		return nil, fmt.Errorf("expt: traffic pilot plan: %w", err)
	}
	bestBatch, rate, slo := trafficLoad(pilot)
	n := trafficRequests(c)

	// Bursty regime: bursts arrive at the best batch's full measured
	// capacity, with equal mean ON and OFF period lengths long enough to
	// span many best-batch fills, so the long-run rate is half capacity
	// but the instantaneous rate alternates between overload and silence.
	capBest := pilot.EstimateThroughput(bestBatch)
	period := time.Duration(20 * float64(bestBatch) / capBest * float64(time.Second))
	traces := []struct {
		regime   string
		arrivals []time.Duration
		rate     float64
	}{
		{"poisson", batching.PoissonArrivals(n, rate, trafficSeedPoisson), rate},
		{"bursty", batching.OnOffArrivals(n, capBest, period, period, trafficSeedBursty), capBest / 2},
	}

	qcfg := batching.Config{Model: pilot, SLO: slo}

	var rebuilt *plan.Plan // built lazily from the first adaptive run's histogram
	var suggested []int
	rows := make([]TrafficRow, 0, len(traces))
	for _, tr := range traces {
		batch1, err := batching.SimulateImmediate(pilot, slo, tr.arrivals)
		if err != nil {
			return nil, fmt.Errorf("expt: traffic %s batch1: %w", tr.regime, err)
		}
		fixed, err := batching.SimulateFixed(pilot, pilot.MaxBatch(), slo, tr.arrivals)
		if err != nil {
			return nil, fmt.Errorf("expt: traffic %s fixed: %w", tr.regime, err)
		}
		adaptive, err := batching.SimulateAdaptive(qcfg, tr.arrivals)
		if err != nil {
			return nil, fmt.Errorf("expt: traffic %s adaptive: %w", tr.regime, err)
		}

		// Close the loop on the first (Poisson) regime: feed the adaptive
		// run's dispatch histogram to SuggestBatches and build the plan
		// the observed traffic asks for; later regimes reuse it, as a
		// redeployed server would.
		if rebuilt == nil {
			weights := make(map[int]float64, len(adaptive.DispatchHist))
			for b, cnt := range adaptive.DispatchHist {
				weights[b] = float64(cnt)
			}
			suggested = pilot.SuggestBatches(weights, len(pilot.Points))
			if len(suggested) == 0 {
				return nil, fmt.Errorf("expt: traffic: empty batch suggestion from %d dispatch sizes", len(adaptive.DispatchHist))
			}
			rebuilt, err = buildTrafficPlan(c, root, build, suggested)
			if err != nil {
				return nil, fmt.Errorf("expt: traffic suggested plan: %w", err)
			}
		}
		scfg := qcfg
		scfg.Model = rebuilt
		resuggested, err := batching.SimulateAdaptive(scfg, tr.arrivals)
		if err != nil {
			return nil, fmt.Errorf("expt: traffic %s adaptive-suggested: %w", tr.regime, err)
		}
		resuggestedRow := policyRow(resuggested)
		resuggestedRow.Policy = "adaptive-suggested"

		row := TrafficRow{
			Network:             name,
			Regime:              tr.regime,
			Requests:            n,
			RateImagesPerSec:    tr.rate,
			SLOMS:               float64(slo) / float64(time.Millisecond),
			PilotBatches:        pilot.Batches(),
			SuggestedBatches:    suggested,
			Policies:            []TrafficPolicyRow{policyRow(batch1), policyRow(fixed), policyRow(adaptive), resuggestedRow},
			AdaptiveBeatsBatch1: adaptive.ImagesPerSec > batch1.ImagesPerSec,
			AdaptiveWithinSLO:   adaptive.P99 <= slo,
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Traffic renders the TrafficRows comparison (experiment id "traffic").
func Traffic(c Config, w io.Writer) error {
	rows, err := TrafficRows(c)
	if err != nil {
		return err
	}
	for _, r := range rows {
		t := report.NewTable(
			fmt.Sprintf("Serving %s under %s traffic, %.0f img/s offered, SLO %.1fms (%d requests)",
				r.Network, r.Regime, r.RateImagesPerSec, r.SLOMS, r.Requests),
			"policy", "img/s", "p50 ms", "p99 ms", "mean batch", "SLO viol")
		for _, p := range r.Policies {
			t.AddRow(p.Policy, p.ImagesPerSec, p.P50MS, p.P99MS, p.MeanBatch, p.SLOViolations)
		}
		t.Render(w)
		fmt.Fprintf(w, "(pilot sweep %v -> suggested sweep %v; adaptive beats batch1: %v, p99 within SLO: %v)\n\n",
			r.PilotBatches, r.SuggestedBatches, r.AdaptiveBeatsBatch1, r.AdaptiveWithinSLO)
	}
	return nil
}
