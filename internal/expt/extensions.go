package expt

// Extension experiments beyond the paper's figures: the future-work
// combination the authors propose in Section 7.4 (intra-operator autotuned
// kernels + inter-operator IOS scheduling), an activation-memory study
// that grounds Figure 11's TASO out-of-memory note, and ablations of the
// device-model knobs DESIGN.md calls out (contention, device generation).

import (
	"fmt"
	"io"

	"ios/internal/baseline"
	"ios/internal/core"
	"ios/internal/frameworks"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/report"
	"ios/internal/schedule"
)

func init() {
	All["combo"] = Combo
	All["memory"] = MemoryStudy
	All["ablation-contention"] = AblationContention
	All["ablation-devices"] = AblationDevices
	All["ablation-serial"] = AblationSerialTail
	All["lightweight"] = Lightweight
}

// ExtensionNames lists the extension experiment ids.
func ExtensionNames() []string {
	return []string{"combo", "memory", "lightweight", "ablation-contention", "ablation-devices", "ablation-serial"}
}

// Combo evaluates the paper's stated future work: "the combination of TVM
// and IOS would boost the performance further" — IOS scheduling on top of
// autotuned kernels, against each alone.
func Combo(c Config, w io.Writer) error {
	c = c.withDefaults()
	names, graphs := c.benchmarks()
	chart := report.NewBarChart(
		fmt.Sprintf("Extension: TVM-AutoTune vs IOS vs combined on %s, batch %d", c.Device.Name, c.Batch),
		"TVM-AutoTune", "IOS", "IOS+AutoTune")
	for i, g := range graphs {
		m, err := frameworks.TVMAutoTune.Measure(g, c.Device)
		if err != nil {
			return err
		}
		iosLat, _, err := c.latencyOf(g, "IOS")
		if err != nil {
			return err
		}
		// Combined: IOS search over the better kernel per operator (a
		// deployment would pick cuDNN or the autotuned kernel per shape,
		// whichever measured faster).
		comboOpts := frameworks.TVMAutoTune.ProfileOptions()
		tvmQ := comboOpts.KernelQuality
		comboOpts.KernelQuality = func(op graph.Op) float64 {
			if q := tvmQ(op); q > 1 {
				return q
			}
			return 1
		}
		comboProf := profile.NewWithOptions(c.Device, comboOpts)
		res, err := core.Optimize(g, comboProf, c.Opts)
		if err != nil {
			return err
		}
		comboLat, err := comboProf.MeasureSchedule(res.Schedule)
		if err != nil {
			return err
		}
		chart.AddGroup(names[i],
			float64(c.Batch)/m.Latency, float64(c.Batch)/iosLat, float64(c.Batch)/comboLat)
	}
	chart.Render(w)
	fmt.Fprintln(w, "(the combination should dominate both — Section 7.4's future-work claim)")
	return nil
}

// MemoryStudy reports weight and peak activation memory for the sequential
// and IOS schedules of Inception V3 across Figure 11's batch sizes,
// explaining why memory-hungry systems (TASO's substitution search) fall
// over at batch 128.
func MemoryStudy(c Config, w io.Writer) error {
	c = c.withDefaults()
	t := report.NewTable("Extension: schedule memory by batch size (Inception V3)",
		"batch", "weights MB", "seq peak act MB", "ios peak act MB", "ios total MB")
	for _, batch := range Fig11BatchSizes {
		g := models.InceptionV3(batch)
		seq, err := baseline.Sequential(g)
		if err != nil {
			return err
		}
		seqMem := schedule.Memory(seq)
		res, err := c.optimize(g, core.Both)
		if err != nil {
			return err
		}
		iosMem := schedule.Memory(res.Schedule)
		t.AddRow(batch, seqMem.WeightBytes/1e6, seqMem.PeakActivationBytes/1e6,
			iosMem.PeakActivationBytes/1e6, iosMem.Total()/1e6)
	}
	t.Render(w)
	fmt.Fprintln(w, "(activation memory scales with batch; engines holding extra tensor copies exhaust GPU memory at batch 128 — Figure 11's TASO OOM)")
	return nil
}

// AblationContention sweeps the device's contention coefficient and
// reports IOS's speedup over the sequential schedule on SqueezeNet, whose
// tiny memory-bound kernels are the ones cache/bandwidth contention
// punishes: higher contention shrinks the benefit of concurrency, which
// is exactly why low-end GPUs need different schedules (Section 1).
// (The Figure 2 block would show nothing here: its 3x3x384 convolutions
// are compute-bound at batch one, and the contention model only degrades
// the memory system.)
func AblationContention(c Config, w io.Writer) error {
	c = c.withDefaults()
	t := report.NewTable("Ablation: contention coefficient vs IOS speedup (SqueezeNet)",
		"contention", "seq ms", "ios ms", "speedup", "ios stages")
	for _, coef := range []float64{0, 0.04, 0.08, 0.16, 0.32, 0.64} {
		dev := c.Device
		dev.ContentionCoef = coef
		g := models.SqueezeNet(c.Batch)
		prof := profile.New(dev)
		seq, err := baseline.Sequential(g)
		if err != nil {
			return err
		}
		seqLat, err := prof.MeasureSchedule(seq)
		if err != nil {
			return err
		}
		res, err := core.Optimize(g, prof, c.Opts)
		if err != nil {
			return err
		}
		iosLat, err := prof.MeasureSchedule(res.Schedule)
		if err != nil {
			return err
		}
		t.AddRow(coef, 1e3*seqLat, 1e3*iosLat, seqLat/iosLat, res.Schedule.NumStages())
	}
	t.Render(w)
	fmt.Fprintln(w, "(speedup decays as contention rises; IOS adapts by serializing more)")
	return nil
}

// AblationDevices runs IOS on Inception V3 across five GPU generations:
// the faster the device, the larger the utilization gap sequential
// execution leaves and the bigger IOS's win — the quantitative form of
// Figure 1's motivation.
func AblationDevices(c Config, w io.Writer) error {
	c = c.withDefaults()
	t := report.NewTable("Ablation: IOS speedup by device generation (Inception V3, batch 1)",
		"device", "peak TFLOP/s", "seq ms", "ios ms", "speedup")
	for _, dev := range []gpusim.Spec{
		gpusim.GTX980Ti, gpusim.GTX1080, gpusim.TeslaK80, gpusim.RTX2080Ti, gpusim.TeslaV100, gpusim.TeslaA100,
	} {
		g := models.InceptionV3(c.Batch)
		prof := profile.New(dev)
		seq, err := baseline.Sequential(g)
		if err != nil {
			return err
		}
		seqLat, err := prof.MeasureSchedule(seq)
		if err != nil {
			return err
		}
		res, err := core.Optimize(g, prof, c.Opts)
		if err != nil {
			return err
		}
		iosLat, err := prof.MeasureSchedule(res.Schedule)
		if err != nil {
			return err
		}
		t.AddRow(dev.Name, dev.PeakFLOPs/1e12, 1e3*seqLat, 1e3*iosLat, seqLat/iosLat)
	}
	t.Render(w)
	fmt.Fprintln(w, "(more parallel hardware -> bigger inter-operator win, Figure 1's trend)")
	return nil
}

// AblationSerialTail quantifies the serial-tail candidate this
// implementation adds to the DP (see core.scheduler): without it, pruning
// r=3 caps chains at three operators and forces extra stage barriers.
func AblationSerialTail(c Config, w io.Writer) error {
	c = c.withDefaults()
	t := report.NewTable("Ablation: pruning with vs without long serial chains (SqueezeNet)",
		"pruning", "ios ms", "stages")
	g := models.SqueezeNet(c.Batch)
	for _, p := range []core.Pruning{{R: 1, S: 8}, {R: 2, S: 8}, {R: 3, S: 8}, {R: 6, S: 8}} {
		opts := c.Opts
		opts.Pruning = p
		prof := profile.New(c.Device)
		res, err := core.Optimize(g, prof, opts)
		if err != nil {
			return err
		}
		lat, err := prof.MeasureSchedule(res.Schedule)
		if err != nil {
			return err
		}
		t.AddRow(p.String(), 1e3*lat, res.Schedule.NumStages())
	}
	t.Render(w)
	fmt.Fprintln(w, "(with the serial tail, even r=1 keeps long chains available, so latency degrades gracefully)")
	return nil
}

// Lightweight evaluates IOS on the mobile architectures the related-work
// section names (MobileNetV2, ShuffleNet): dominated by tiny depthwise
// kernels, they under-utilize a V100 even more than the main benchmarks,
// so inter-operator scheduling recovers a meaningful fraction despite
// their mostly sequential structure.
func Lightweight(c Config, w io.Writer) error {
	c = c.withDefaults()
	t := report.NewTable(fmt.Sprintf("Extension: lightweight mobile CNNs on %s, batch %d", c.Device.Name, c.Batch),
		"network", "ops", "seq ms", "greedy ms", "ios ms", "ios speedup")
	for _, b := range []models.Builder{models.MobileNetV2, models.ShuffleNet, models.SqueezeNet} {
		g := b(c.Batch)
		prof := profile.New(c.Device)
		seq, err := baseline.Sequential(g)
		if err != nil {
			return err
		}
		seqLat, err := prof.MeasureSchedule(seq)
		if err != nil {
			return err
		}
		grd, err := baseline.Greedy(g)
		if err != nil {
			return err
		}
		grdLat, err := prof.MeasureSchedule(grd)
		if err != nil {
			return err
		}
		res, err := core.Optimize(g, prof, c.Opts)
		if err != nil {
			return err
		}
		iosLat, err := prof.MeasureSchedule(res.Schedule)
		if err != nil {
			return err
		}
		t.AddRow(g.Name, g.ComputeStats().Ops, 1e3*seqLat, 1e3*grdLat, 1e3*iosLat, seqLat/iosLat)
	}
	t.Render(w)
	fmt.Fprintln(w, "(mostly chain-structured nets gain less than multi-branch ones, as Section 2 implies)")
	return nil
}
