package expt

import (
	"fmt"
	"io"
	"time"

	"ios/internal/blockcache"
	"ios/internal/core"
	"ios/internal/profile"
	"ios/internal/report"
)

// BlockRow is one block-cache record: the block-DP cost of optimizing a
// network without the whole-block schedule cache, with a cold cache (the
// first search fills it, paying one DP search per distinct block
// structure), and with the warm cache (a repeat search — the serving
// tier's warm-restart case — which runs zero block searches). Schedules
// are bit-identical in all three runs — Identical asserts it — so the
// rows isolate pure search dedup: on cell-structured networks like
// NasNet-A, ColdSearches collapses to the number of distinct cell
// structures while Blocks counts every repetition. cmd/iosbench
// serializes these as BENCH_blocks.json so successive PRs have a perf
// trajectory for the cache.
type BlockRow struct {
	Network string `json:"network"`
	Ops     int    `json:"ops"`
	// Blocks is the block count of the partition — the number of DP
	// searches the uncached engine runs.
	Blocks int `json:"blocks"`
	// ColdSearches is the number of block DP searches the cold cached run
	// actually executed (cache misses): the distinct-structure count.
	// WarmSearches is the same for the repeat run and must be zero.
	ColdSearches int64 `json:"cold_searches"`
	WarmSearches int64 `json:"warm_searches"`
	// Hits/Saved are the cache's counters after both cached runs
	// (Saved = hits + coalesced waits = block searches avoided).
	Hits  int64 `json:"hits"`
	Saved int64 `json:"saved"`
	// Entries is the resident fingerprint count after both runs.
	Entries int `json:"entries"`
	// Wall-clock per variant, milliseconds.
	UncachedWallMS float64 `json:"uncached_wall_ms"`
	ColdWallMS     float64 `json:"cold_wall_ms"`
	WarmWallMS     float64 `json:"warm_wall_ms"`
	// Identical reports that all three runs produced bit-identical
	// schedules and identical search statistics (it must always be true;
	// rows with false indicate a fingerprint soundness bug).
	Identical bool `json:"identical"`
}

// BlockCacheRows runs the uncached/cold/warm comparison over the
// benchmark networks.
func BlockCacheRows(c Config) ([]BlockRow, error) {
	c = c.withDefaults()
	var rows []BlockRow
	names, graphs := c.benchmarks()
	for i, g := range graphs {
		timed := func(opts core.Options) (*core.Result, float64, error) {
			start := time.Now() //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
			res, err := core.Optimize(g, profile.New(c.Device), opts)
			return res, float64(time.Since(start)) / 1e6, err //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
		}
		uncached, uncachedMS, err := timed(c.Opts)
		if err != nil {
			return nil, fmt.Errorf("expt: %s uncached: %w", names[i], err)
		}
		cache := blockcache.NewCache()
		cold, coldMS, err := timed(c.Opts.WithBlockCache(cache))
		if err != nil {
			return nil, fmt.Errorf("expt: %s cold cache: %w", names[i], err)
		}
		coldSearches := cache.Stats().Misses
		warm, warmMS, err := timed(c.Opts.WithBlockCache(cache))
		if err != nil {
			return nil, fmt.Errorf("expt: %s warm cache: %w", names[i], err)
		}
		st := cache.Stats()
		rows = append(rows, BlockRow{
			Network:        names[i],
			Ops:            len(g.SchedulableNodes()),
			Blocks:         uncached.Stats.Blocks,
			ColdSearches:   coldSearches,
			WarmSearches:   st.Misses - coldSearches,
			Hits:           st.Hits,
			Saved:          st.Saved(),
			Entries:        st.Size,
			UncachedWallMS: uncachedMS,
			ColdWallMS:     coldMS,
			WarmWallMS:     warmMS,
			Identical: cold.Schedule.String() == uncached.Schedule.String() &&
				warm.Schedule.String() == uncached.Schedule.String() &&
				cold.Stats.States == uncached.Stats.States &&
				warm.Stats.States == uncached.Stats.States &&
				cold.Stats.Transitions == uncached.Stats.Transitions &&
				warm.Stats.Transitions == uncached.Stats.Transitions,
		})
	}
	return rows, nil
}

// BlockCache renders the BlockCacheRows table (experiment id
// "block-cache").
func BlockCache(c Config, w io.Writer) error {
	rows, err := BlockCacheRows(c)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Block cache: DP searches per Optimize on %s (schedules bit-identical in every variant)",
		c.withDefaults().Device.Name),
		"network", "ops", "blocks", "cold searches", "warm searches", "saved", "uncached ms", "cold ms", "warm ms", "identical")
	for _, r := range rows {
		t.AddRow(r.Network, r.Ops, r.Blocks, r.ColdSearches, r.WarmSearches,
			r.Saved, r.UncachedWallMS, r.ColdWallMS, r.WarmWallMS, r.Identical)
	}
	t.Render(w)
	fmt.Fprintln(w, "(cold = first search fills the cache, one DP search per distinct block structure; warm = repeat search, zero block searches)")
	return nil
}
