package expt

import (
	"fmt"
	"io"
	"time"

	"ios/internal/core"
	"ios/internal/measure"
	"ios/internal/profile"
	"ios/internal/report"
)

// MeasureRow is one measurement-cache record: the simulator cost of
// optimizing a network without the structural measurement cache, with a
// cold cache (first search fills it), and with the warm cache (a repeat
// search, the serving tier's warm-model / warm-restart case). Schedules
// and costs are bit-identical in all three runs — Identical asserts it —
// so the rows isolate pure measurement dedup. cmd/iosbench serializes
// these as BENCH_measure.json so successive PRs have a perf trajectory
// for the cache.
type MeasureRow struct {
	Network string `json:"network"`
	Ops     int    `json:"ops"`
	// UncachedMeasurements is the simulator-invocation count without a
	// cache; Cold/WarmMeasurements are the counts for the filling and the
	// repeat search.
	UncachedMeasurements int `json:"uncached_measurements"`
	ColdMeasurements     int `json:"cold_measurements"`
	WarmMeasurements     int `json:"warm_measurements"`
	// Hits/Misses/Saved are the cache's counters after both cached runs
	// (Saved = hits + coalesced waits = simulator runs avoided).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Saved  int64 `json:"saved"`
	// Entries is the resident fingerprint count after both runs.
	Entries int `json:"entries"`
	// Wall-clock per variant, milliseconds.
	UncachedWallMS float64 `json:"uncached_wall_ms"`
	ColdWallMS     float64 `json:"cold_wall_ms"`
	WarmWallMS     float64 `json:"warm_wall_ms"`
	// Identical reports that all three runs produced bit-identical
	// schedules (it must always be true; rows with false indicate a
	// fingerprint soundness bug).
	Identical bool `json:"identical"`
}

// MeasureCacheRows runs the uncached/cold/warm comparison over the
// benchmark networks.
func MeasureCacheRows(c Config) ([]MeasureRow, error) {
	c = c.withDefaults()
	var rows []MeasureRow
	names, graphs := c.benchmarks()
	for i, g := range graphs {
		timed := func(p *profile.Profiler) (*core.Result, float64, error) {
			start := time.Now() //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
			res, err := core.Optimize(g, p, c.Opts)
			return res, float64(time.Since(start)) / 1e6, err //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
		}
		uncached, uncachedMS, err := timed(profile.New(c.Device))
		if err != nil {
			return nil, fmt.Errorf("expt: %s uncached: %w", names[i], err)
		}
		cache := measure.NewCache()
		coldProf := profile.New(c.Device)
		coldProf.SetMeasureCache(cache)
		cold, coldMS, err := timed(coldProf)
		if err != nil {
			return nil, fmt.Errorf("expt: %s cold cache: %w", names[i], err)
		}
		warmProf := profile.New(c.Device)
		warmProf.SetMeasureCache(cache)
		warm, warmMS, err := timed(warmProf)
		if err != nil {
			return nil, fmt.Errorf("expt: %s warm cache: %w", names[i], err)
		}
		st := cache.Stats()
		rows = append(rows, MeasureRow{
			Network:              names[i],
			Ops:                  len(g.SchedulableNodes()),
			UncachedMeasurements: uncached.Stats.Measurements,
			ColdMeasurements:     cold.Stats.Measurements,
			WarmMeasurements:     warm.Stats.Measurements,
			Hits:                 st.Hits,
			Misses:               st.Misses,
			Saved:                st.Saved(),
			Entries:              st.Size,
			UncachedWallMS:       uncachedMS,
			ColdWallMS:           coldMS,
			WarmWallMS:           warmMS,
			Identical: cold.Schedule.String() == uncached.Schedule.String() &&
				warm.Schedule.String() == uncached.Schedule.String(),
		})
	}
	return rows, nil
}

// MeasureCache renders the MeasureCacheRows table (experiment id
// "measure-cache").
func MeasureCache(c Config, w io.Writer) error {
	rows, err := MeasureCacheRows(c)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Measurement cache: simulator invocations per Optimize on %s (schedules bit-identical in every variant)",
		c.withDefaults().Device.Name),
		"network", "ops", "uncached meas", "cold meas", "warm meas", "saved", "uncached ms", "cold ms", "warm ms", "identical")
	for _, r := range rows {
		t.AddRow(r.Network, r.Ops, r.UncachedMeasurements, r.ColdMeasurements, r.WarmMeasurements,
			r.Saved, r.UncachedWallMS, r.ColdWallMS, r.WarmWallMS, r.Identical)
	}
	t.Render(w)
	fmt.Fprintln(w, "(cold = first search fills the cache; warm = repeat search, the serving tier's steady state)")
	return nil
}
