package expt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ios/internal/cluster"
	"ios/internal/report"
	"ios/internal/serve"
)

// This file is the sharded-serving study (experiment "cluster"): a
// single-process simulated fleet (internal/cluster's harness, real HTTP
// over loopback with injected per-link latency) measuring what the
// consistent-hash warm-cache exchange buys. Four claims are checked:
// a node joining a warm fleet converges with zero local block DP
// searches (every block schedule arrives from a peer and is rebound);
// the peer-fetched schedules are bit-identical to what a local search
// would have produced; warm aggregate throughput scales with node count
// because requests are latency-bound, not search-bound; and killing a
// node degrades to local searches without a single client-visible error.

// clusterLinkDelay is the injected per-link latency. Large enough that
// warm requests are latency-bound (so throughput scales with nodes
// instead of saturating one CPU), small enough that the cold-join fetch
// storm stays cheap.
const clusterLinkDelay = 10 * time.Millisecond

// clusterClientsPerNode and clusterRequestsPerClient size the closed-loop
// throughput phases.
const (
	clusterClientsPerNode    = 2
	clusterRequestsPerClient = 25
)

// ClusterRow is the record of one fleet scenario.
type ClusterRow struct {
	// Network is the served model (zoo name); Nodes the fleet size the
	// scenario grows to.
	Network string `json:"network"`
	Nodes   int    `json:"nodes"`
	// LinkDelayMS is the injected per-link latency.
	LinkDelayMS float64 `json:"link_delay_ms"`
	// SeedSearches counts the block DP searches the first node ran to
	// serve the model cold; SeedColdMS is that request's wall time.
	SeedSearches int64   `json:"seed_searches"`
	SeedColdMS   float64 `json:"seed_cold_ms"`
	// JoinColdMS is the first-request wall time of a node joining the
	// warm fleet; JoinSearches its local block DP searches (the headline:
	// zero — every block arrived over the exchange, see JoinFetched);
	// CrossNodeHitRate is its peer-fetch hit rate.
	JoinColdMS       float64 `json:"join_cold_ms"`
	JoinSearches     int64   `json:"join_searches"`
	JoinFetched      int64   `json:"join_fetched"`
	CrossNodeHitRate float64 `json:"cross_node_hit_rate"`
	// Identical asserts the joining node's peer-fetched, rebound schedule
	// is byte-for-byte the seed node's locally searched one.
	Identical bool `json:"identical"`
	// FleetSearches sums block DP searches across the coordinated fleet
	// after every node has served the model; UncoordSearches is the
	// uncoordinated total — Nodes x SeedSearches, exact because the
	// search is deterministic, so every isolated node repeats the seed's
	// work verbatim (TestUncoordinatedBaseline checks this).
	FleetSearches   int64 `json:"fleet_searches"`
	UncoordSearches int64 `json:"uncoord_searches"`
	// QPS1 and QPSN are warm closed-loop aggregate throughputs of a
	// 1-node and the N-node fleet under the same per-node client count
	// and link latency; Scale is their ratio.
	QPS1  float64 `json:"qps_1node"`
	QPSN  float64 `json:"qps_nnodes"`
	Scale float64 `json:"scale"`
	// KilledOK reports that after abruptly killing one node, a request
	// for a structure nobody had (forcing fetch attempts against the
	// dead peer) and warm requests on every survivor all returned
	// HTTP 200; KilledSearches counts the local block searches the
	// fallback paid.
	KilledOK       bool  `json:"killed_ok"`
	KilledSearches int64 `json:"killed_searches"`
}

// clusterNet picks the served model: the paper's hardest benchmark, or
// its Inception E stand-in block in Quick mode.
func clusterNet(c Config) (zooName, label string) {
	if c.Quick {
		return "inception-e", "Inception E block"
	}
	return "nasnet", "NasNet-A"
}

// clusterOptimize drives one POST /optimize through the harness client.
func clusterOptimize(client *http.Client, baseURL, model string, batch int) (serve.OptimizeResponse, error) {
	var out serve.OptimizeResponse
	body, err := json.Marshal(serve.OptimizeRequest{Model: model, Batch: batch})
	if err != nil {
		return out, err
	}
	resp, err := client.Post(baseURL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("optimize %s: HTTP %d", model, resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// clusterQPS measures warm aggregate throughput: clusterClientsPerNode
// closed-loop clients pinned to each listed node, each issuing
// clusterRequestsPerClient requests back to back. With the injected link
// latency dominating warm service time the run is latency-bound, so the
// aggregate scales with node count until CPU saturates.
func clusterQPS(h *cluster.Harness, idx []int, model string, batch int) (float64, error) {
	var wg sync.WaitGroup
	errc := make(chan error, len(idx)*clusterClientsPerNode)
	start := time.Now() //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
	for _, i := range idx {
		url := h.Nodes()[i].URL
		for cl := 0; cl < clusterClientsPerNode; cl++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < clusterRequestsPerClient; r++ {
					if _, err := clusterOptimize(h.Client(), url, model, batch); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
	close(errc)
	if err := <-errc; err != nil {
		return 0, err
	}
	total := len(idx) * clusterClientsPerNode * clusterRequestsPerClient
	return float64(total) / elapsed.Seconds(), nil
}

// ClusterRows runs the sharded-serving scenario: seed a 2-node fleet
// cold, push entries to their ring owners, join a third node and verify
// it converges purely over the exchange, compare warm aggregate
// throughput against a 1-node fleet, then kill a node and verify
// serving degrades to local searches with zero client-visible errors.
func ClusterRows(c Config) ([]ClusterRow, error) {
	c = c.withDefaults()
	model, label := clusterNet(c)
	const nodes = 3
	//lint:ioslint-ignore ctxdiscipline experiment runners own their lifecycle; the Runner API is ctx-free by design
	ctx := context.Background()

	hcfg := cluster.HarnessConfig{
		Nodes:     nodes - 1,
		Device:    c.Device,
		Options:   c.Opts,
		LinkDelay: clusterLinkDelay,
	}
	h, err := cluster.StartHarness(ctx, hcfg)
	if err != nil {
		return nil, fmt.Errorf("expt: cluster harness: %w", err)
	}
	defer h.Close()

	row := ClusterRow{
		Network:     label,
		Nodes:       nodes,
		LinkDelayMS: float64(clusterLinkDelay) / float64(time.Millisecond),
	}

	// Phase 1: cold start on the seed node — the one block search pass
	// the whole fleet will ever pay for this model.
	seed := h.Nodes()[0]
	start := time.Now() //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
	seedResp, err := clusterOptimize(h.Client(), seed.URL, model, c.Batch)
	if err != nil {
		return nil, fmt.Errorf("expt: cluster seed request: %w", err)
	}
	row.SeedColdMS = float64(time.Since(start)) / float64(time.Millisecond) //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
	row.SeedSearches = seed.Server.BlockCache().Stats().Misses
	if row.SeedSearches == 0 {
		return nil, fmt.Errorf("expt: cluster seed ran no block searches; scenario is vacuous")
	}

	// Phase 2: push every computed entry to its ring owner, then join a
	// cold node and serve the same model from it. Zero local searches:
	// each block fingerprint's owner (or the owner's ring successor)
	// already holds the canonical entry, and the fetch path rebinds it.
	if _, err := h.SyncAll(ctx); err != nil {
		return nil, fmt.Errorf("expt: cluster sync: %w", err)
	}
	joined, err := h.Join(ctx)
	if err != nil {
		return nil, fmt.Errorf("expt: cluster join: %w", err)
	}
	start = time.Now() //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
	joinResp, err := clusterOptimize(h.Client(), joined.URL, model, c.Batch)
	if err != nil {
		return nil, fmt.Errorf("expt: cluster join request: %w", err)
	}
	row.JoinColdMS = float64(time.Since(start)) / float64(time.Millisecond) //lint:ioslint-ignore determinism wall-clock benchmark column; never feeds schedules or cache keys
	bs := joined.Server.BlockCache().Stats()
	row.JoinSearches = bs.Misses
	row.JoinFetched = bs.Remote
	ns := joined.Node.Stats()
	if tot := ns.BlockFetchHits + ns.BlockFetchMisses; tot > 0 {
		row.CrossNodeHitRate = float64(ns.BlockFetchHits) / float64(tot)
	}
	row.Identical = bytes.Equal(seedResp.Schedule, joinResp.Schedule) &&
		seedResp.LatencyMS == joinResp.LatencyMS

	// Warm the remaining node the same way, then total the coordinated
	// fleet's search work against the uncoordinated bound.
	if _, err := clusterOptimize(h.Client(), h.Nodes()[1].URL, model, c.Batch); err != nil {
		return nil, fmt.Errorf("expt: cluster warm node1: %w", err)
	}
	for _, hn := range h.Nodes() {
		row.FleetSearches += hn.Server.BlockCache().Stats().Misses
	}
	row.UncoordSearches = int64(nodes) * row.SeedSearches

	// Phase 3: warm aggregate throughput, 1 node vs the fleet, same
	// per-node offered load.
	h1, err := cluster.StartHarness(ctx, cluster.HarnessConfig{
		Nodes:     1,
		Device:    c.Device,
		Options:   c.Opts,
		LinkDelay: clusterLinkDelay,
	})
	if err != nil {
		return nil, fmt.Errorf("expt: cluster 1-node harness: %w", err)
	}
	defer h1.Close()
	if _, err := clusterOptimize(h1.Client(), h1.Nodes()[0].URL, model, c.Batch); err != nil {
		return nil, fmt.Errorf("expt: cluster warm 1-node: %w", err)
	}
	if row.QPS1, err = clusterQPS(h1, []int{0}, model, c.Batch); err != nil {
		return nil, fmt.Errorf("expt: cluster 1-node qps: %w", err)
	}
	if row.QPSN, err = clusterQPS(h, h.Live(), model, c.Batch); err != nil {
		return nil, fmt.Errorf("expt: cluster %d-node qps: %w", nodes, err)
	}
	row.Scale = row.QPSN / row.QPS1

	// Phase 4: kill a node. A batch nobody served forces fresh
	// fingerprints — fetch attempts hit the dead peer, retry, mark it
	// down, and fall back to local search; warm traffic on the survivors
	// must keep flowing. Any non-200 anywhere fails the scenario.
	h.Kill(1)
	before := seed.Server.BlockCache().Stats().Misses
	row.KilledOK = true
	if _, err := clusterOptimize(h.Client(), seed.URL, model, c.Batch+1); err != nil {
		row.KilledOK = false
	}
	row.KilledSearches = seed.Server.BlockCache().Stats().Misses - before
	for _, i := range h.Live() {
		if _, err := clusterOptimize(h.Client(), h.Nodes()[i].URL, model, c.Batch); err != nil {
			row.KilledOK = false
		}
	}
	return []ClusterRow{row}, nil
}

// Cluster renders the ClusterRows scenario (experiment id "cluster").
func Cluster(c Config, w io.Writer) error {
	rows, err := ClusterRows(c)
	if err != nil {
		return err
	}
	for _, r := range rows {
		t := report.NewTable(
			fmt.Sprintf("Sharded serving: %s on a %d-node fleet, %.0fms links", r.Network, r.Nodes, r.LinkDelayMS),
			"phase", "searches", "fetched", "wall ms", "note")
		t.AddRow("seed cold", r.SeedSearches, 0, r.SeedColdMS, "pays the fleet's only search pass")
		t.AddRow("node joins warm", r.JoinSearches, r.JoinFetched, r.JoinColdMS,
			fmt.Sprintf("hit rate %.0f%%, bit-identical: %v", 100*r.CrossNodeHitRate, r.Identical))
		t.AddRow("fleet total", r.FleetSearches, 0, 0.0,
			fmt.Sprintf("vs %d uncoordinated", r.UncoordSearches))
		t.Render(w)
		fmt.Fprintf(w, "(warm aggregate qps: %.0f at 1 node -> %.0f at %d nodes, %.2fx; one node killed: served OK %v with %d local searches)\n\n",
			r.QPS1, r.QPSN, r.Nodes, r.Scale, r.KilledOK, r.KilledSearches)
	}
	return nil
}
