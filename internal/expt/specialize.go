package expt

import (
	"context"
	"fmt"
	"io"

	"ios/internal/measure"
	"ios/internal/models"
	"ios/internal/plan"
	"ios/internal/profile"
	"ios/internal/report"
)

// SpecializeRow is one batch-specialization record (experiment
// "specialize"): a network's full cross-batch latency and penalty
// matrices — the schedule specialized at batch i measured at batch j,
// the shape of the paper's Table 3 — produced by the internal/plan sweep
// (concurrent per-batch searches sharing one structural measurement
// cache). DiagonalWins asserts the paper's headline property: in every
// column (execution batch), the specialized schedule is at least as fast
// as any reused one. cmd/iosbench serializes these as
// BENCH_specialize.json so successive PRs have a specialization baseline
// to diff against.
type SpecializeRow struct {
	Network string `json:"network"`
	Ops     int    `json:"ops"`
	Batches []int  `json:"batches"`
	// LatencyMS[i][j] is the latency (ms) of the schedule optimized for
	// Batches[i] executed at Batches[j]; Penalty[i][j] divides it by the
	// column's specialized (diagonal) latency.
	LatencyMS [][]float64 `json:"latency_ms"`
	Penalty   [][]float64 `json:"penalty"`
	// DiagonalWins reports that every column's minimum sits on the
	// diagonal (it must always be true; false indicates either a search
	// or a measurement-consistency bug).
	DiagonalWins bool `json:"diagonal_wins"`
}

// specializeNets returns the networks the specialization study sweeps:
// the paper's Table 3 subject (Inception V3) plus NasNet-A, whose deeply
// repeated cells make it the most specialization-sensitive benchmark;
// Quick mode keeps only the Inception E block.
func specializeNets(c Config) (names []string, builders []models.Builder) {
	if c.Quick {
		return []string{"Inception E block"}, []models.Builder{models.InceptionE}
	}
	return []string{"Inception V3", "NasNet-A"}, []models.Builder{models.InceptionV3, models.NasNetA}
}

// SpecializeRows runs the cross-batch specialization sweep. An empty
// batches slice selects the paper's Table 3 set (1, 32, 128).
func SpecializeRows(c Config, batches []int) ([]SpecializeRow, error) {
	c = c.withDefaults()
	if len(batches) == 0 {
		batches = append([]int(nil), Table3Batches...)
	}
	names, builders := specializeNets(c)
	var rows []SpecializeRow
	for k, build := range builders {
		// One measurement cache per network: every per-batch search and
		// every cross-measurement of the sweep deduplicates against it.
		root := profile.New(c.Device)
		root.SetMeasureCache(measure.NewCache())
		//lint:ioslint-ignore ctxdiscipline experiment runners own their lifecycle; the Runner API is ctx-free by design
		p, err := plan.Build(context.Background(), plan.BuildConfig{
			Graph:       build(1),
			Batches:     batches,
			Device:      c.Device.Name,
			Opts:        c.Opts,
			Workers:     c.Opts.Workers,
			NewProfiler: root.Fork,
		})
		if err != nil {
			return nil, fmt.Errorf("expt: specialize %s: %w", names[k], err)
		}
		n := len(p.Points)
		row := SpecializeRow{
			Network:      names[k],
			Ops:          len(p.Points[0].Graph.SchedulableNodes()),
			Batches:      p.Batches(),
			LatencyMS:    make([][]float64, n),
			Penalty:      make([][]float64, n),
			DiagonalWins: p.DiagonalWins() == nil,
		}
		for i := 0; i < n; i++ {
			row.LatencyMS[i] = make([]float64, n)
			row.Penalty[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				row.LatencyMS[i][j] = 1e3 * p.Latency[i][j]
				row.Penalty[i][j] = p.Penalty(i, j)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Specialize renders the SpecializeRows tables (experiment id
// "specialize") at the paper's Table 3 batch set.
func Specialize(c Config, w io.Writer) error {
	rows, err := SpecializeRows(c, nil)
	if err != nil {
		return err
	}
	for _, r := range rows {
		head := []string{"optimized \\ executed at"}
		for _, b := range r.Batches {
			head = append(head, fmt.Sprintf("b%d", b))
		}
		t := report.NewTable(fmt.Sprintf("Batch specialization, %s on %s (latency ms)",
			r.Network, c.withDefaults().Device.Name), head...)
		for i, b := range r.Batches {
			cells := []interface{}{fmt.Sprintf("batch %d", b)}
			for j := range r.Batches {
				cells = append(cells, r.LatencyMS[i][j])
			}
			t.AddRow(cells...)
		}
		t.Render(w)
		fmt.Fprintf(w, "(diagonal wins every column: %v)\n\n", r.DiagonalWins)
	}
	return nil
}
