package expt

import (
	"fmt"
	"io"

	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/report"
	"ios/internal/schedule"
)

// Table3Batches is the specialization batch set of Table 3 (1).
var Table3Batches = []int{1, 32, 128}

// Table3 reproduces the specialization study (Section 7.2): schedules
// optimized for one batch size / device are executed under every other,
// and the diagonal should win.
func Table3(c Config, w io.Writer) error {
	c = c.withDefaults()

	// (1) Batch-size specialization on Inception V3.
	// Optimizing for batch b yields a stage structure; executing it at
	// batch b' measures the same structure with b'-shaped tensors.
	build := models.InceptionV3
	if c.Quick {
		build = models.InceptionE
	}
	schedByBatch := make(map[int]*schedule.Schedule)
	for _, b := range Table3Batches {
		g := build(b)
		res, err := core.Optimize(g, profile.New(c.Device), c.Opts)
		if err != nil {
			return err
		}
		schedByBatch[b] = res.Schedule
	}
	t1 := report.NewTable(fmt.Sprintf("Table 3 (1): batch-size specialization, Inception V3 on %s (latency ms)", c.Device.Name),
		"execute \\ optimized for", "1", "32", "128")
	for _, execB := range Table3Batches {
		row := []interface{}{fmt.Sprintf("batch %d", execB)}
		for _, optB := range Table3Batches {
			lat, err := executeRebatched(schedByBatch[optB], build, execB, c.Device)
			if err != nil {
				return err
			}
			row = append(row, 1e3*lat)
		}
		t1.AddRow(row...)
	}
	t1.Render(w)
	fmt.Fprintln(w, "(each row's minimum should sit on the diagonal)")
	fmt.Fprintln(w)

	// (2) Device specialization at batch one.
	devices := []gpusim.Spec{gpusim.TeslaK80, gpusim.TeslaV100}
	schedByDev := make(map[string]*schedule.Schedule)
	g := build(c.Batch)
	for _, dev := range devices {
		res, err := core.Optimize(g, profile.New(dev), c.Opts)
		if err != nil {
			return err
		}
		schedByDev[dev.Name] = res.Schedule
	}
	t2 := report.NewTable("Table 3 (2): device specialization, Inception V3, batch 1 (latency ms)",
		"execute \\ optimized for", devices[0].Name, devices[1].Name)
	for _, execDev := range devices {
		row := []interface{}{execDev.Name}
		for _, optDev := range devices {
			lat, err := profile.New(execDev).MeasureSchedule(schedByDev[optDev.Name])
			if err != nil {
				return err
			}
			row = append(row, 1e3*lat)
		}
		t2.AddRow(row...)
	}
	t2.Render(w)
	fmt.Fprintln(w, "(each row's minimum should sit on the diagonal)")
	return nil
}

// executeRebatched transfers a schedule found at one batch size onto the
// same architecture at another batch size (stage structure by node name)
// and measures it.
func executeRebatched(s *schedule.Schedule, build models.Builder, batch int, dev gpusim.Spec) (float64, error) {
	g := build(batch)
	data, err := s.MarshalJSON()
	if err != nil {
		return 0, err
	}
	moved, err := schedule.FromJSON(data, g)
	if err != nil {
		return 0, err
	}
	if err := moved.Validate(); err != nil {
		return 0, err
	}
	return profile.New(dev).MeasureSchedule(moved)
}

// Fig10 prints the schedule IOS finds for the last block of Inception V3
// at batch 1 and at batch 32 (Section 7.2's qualitative study: the batch-32
// schedule merges the 1x3/3x1 pair and uses more stages), then
// cross-executes them.
func Fig10(c Config, w io.Writer) error {
	c = c.withDefaults()
	batches := []int{1, 32}
	scheds := make(map[int]*schedule.Schedule)
	for _, b := range batches {
		g := models.InceptionE(b)
		res, err := core.Optimize(g, profile.New(c.Device), c.Opts)
		if err != nil {
			return err
		}
		scheds[b] = res.Schedule
		fmt.Fprintf(w, "— schedule optimized for batch %d (%d stages) —\n", b, res.Schedule.NumStages())
		fmt.Fprint(w, res.Schedule.String())
		merges := 0
		for _, st := range res.Schedule.Stages {
			if st.Strategy == schedule.Merge {
				merges++
			}
		}
		fmt.Fprintf(w, "  (%d merge stages)\n\n", merges)
	}
	t := report.NewTable(fmt.Sprintf("Figure 10 cross-execution on %s (latency ms)", c.Device.Name),
		"execute \\ optimized for", "batch 1", "batch 32")
	for _, execB := range batches {
		row := []interface{}{fmt.Sprintf("batch %d", execB)}
		for _, optB := range batches {
			lat, err := executeRebatched(scheds[optB], models.InceptionE, execB, c.Device)
			if err != nil {
				return err
			}
			row = append(row, 1e3*lat)
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return nil
}
