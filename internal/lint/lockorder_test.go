package lint_test

import (
	"path/filepath"
	"testing"

	"ios/internal/lint"
	"ios/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrder, filepath.Join("testdata", "src", "lockorder"))
}
