package lint_test

import (
	"path/filepath"
	"testing"

	"ios/internal/lint"
	"ios/internal/lint/linttest"
)

func TestAtomicField(t *testing.T) {
	linttest.Run(t, lint.AtomicField, filepath.Join("testdata", "src", "atomicfield"))
}
