package lint_test

import (
	"path/filepath"
	"testing"

	"ios/internal/lint"
	"ios/internal/lint/linttest"
)

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, lint.GoroLeak, filepath.Join("testdata", "src", "goroleak"))
}
