// Package lint is the repository's custom static-analysis suite: a small
// go/analysis-style framework plus four analyzers that mechanically
// enforce the invariants every correctness claim in this reproduction
// rests on — bit-identical schedules across cache hits, measurement and
// block caches that never alias distinct configurations, and a batching
// queue that is a pure state machine over explicit timestamps. The
// conventions these analyzers check used to live only in reviewers'
// heads and regression tests; encoding them here makes the next
// violation a build-time error instead of a cache-aliasing bug.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, an analysistest-style fixture runner in
// linttest) but is built on the standard library alone — go/ast,
// go/types, and the stdlib source importer — so the module keeps zero
// external dependencies and the suite runs in offline build
// environments. cmd/ioslint is the multichecker driver; it also speaks
// the `go vet -vettool` unit-checker protocol.
//
// # Analyzers
//
//   - determinism: in packages declared deterministic with an
//     `//ioslint:deterministic` comment, flags wall-clock reads
//     (time.Now and friends), global math/rand state, and ranging over a
//     map where the iteration order can reach an append, serialized
//     output, or fingerprint encoder.
//   - fingerprint: enforces the fp:"include"/fp:"exempt" struct-tag
//     convention on fingerprinted records and verifies every included
//     field is consumed by its `//ioslint:fingerprint`-annotated encoder.
//   - ctxdiscipline: library functions must not manufacture
//     context.Background/TODO, must not drop a ctx parameter when
//     calling ctx-aware callees, and must propagate ctx.Err() on
//     select-on-Done cancellation paths.
//   - mutexguard: fields annotated `// guarded by <mu>` may only be
//     accessed in functions that lock that mutex (or are *Locked
//     helpers); intra-procedural and conservative.
//   - lockorder: builds the package's lock-acquisition graph and flags
//     ordering cycles (potential deadlocks) and blocking operations
//     (HTTP round-trips, channel waits, opaque hooks) performed while
//     holding a mutex; proven-safe cases are exempted per function with
//     a checked //ioslint:lockorder-allow directive.
//   - goroleak: every `go` statement in a library package needs a
//     termination witness (WaitGroup.Done, a ctx.Done/ctx.Err check, or
//     bounded work) and must not be spawned while holding a lock.
//   - wiretaint: values from //ioslint:untrusted sources (peer HTTP
//     bodies, cache files, request JSON) must pass through an
//     //ioslint:validator function before reaching Commit, Merge, or
//     RegisterPlan sinks.
//   - atomicfield: a struct field accessed via sync/atomic anywhere may
//     never be read or written non-atomically elsewhere.
//
// # Suppressing a finding
//
// A deliberate exception is annotated at the offending line (or the line
// directly above it):
//
//	//lint:ioslint-ignore <analyzer> <reason>
//
// The reason is mandatory: an ignore without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape follows
// golang.org/x/tools/go/analysis so the suite could migrate onto the
// real framework if the module ever takes the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description shown by `ioslint -list`.
	Doc string
	// Run analyzes one package, reporting findings through the pass.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg and Info are the type-checker's outputs for the package.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in report order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, Fingerprint, CtxDiscipline, MutexGuard,
		LockOrder, GoroLeak, WireTaint, AtomicField,
	}
}

// byName maps analyzer names for directive validation.
func byName(as []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(as))
	for _, a := range as {
		m[a.Name] = true
	}
	return m
}

// IgnoreDirective is the comment form that suppresses one analyzer's
// findings on the directive's own line and the line directly below it.
const IgnoreDirective = "lint:ioslint-ignore"

// ignore is one parsed suppression.
type ignore struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int
	file     string
	used     bool
}

// RunAnalyzers runs the given analyzers over one loaded package and
// returns the surviving diagnostics, sorted by position: findings
// suppressed by a well-formed `//lint:ioslint-ignore <analyzer> <reason>`
// directive are dropped, and malformed or unknown-analyzer directives
// are reported as findings of the driver itself (analyzer "ioslint"),
// so a typo in a suppression can never silently disable it.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}

	// Directive names are validated against the full suite, not the run
	// subset: `-only determinism` must not misreport a goroleak ignore
	// as naming an unknown analyzer.
	ignores, bad := parseIgnores(pkg, byName(All()))
	kept := diags[:0]
	for _, d := range diags {
		if suppressed(ignores, d) {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, bad...)
	// An ignore that suppresses nothing is stale; report it so dead
	// suppressions are cleaned up rather than accumulating. Only ignores
	// for analyzers that actually ran can be judged stale.
	ran := byName(analyzers)
	for _, ig := range ignores {
		if !ig.used && ran[ig.analyzer] {
			kept = append(kept, Diagnostic{
				Pos:      pkg.Fset.Position(ig.pos),
				Analyzer: "ioslint",
				Message:  fmt.Sprintf("ignore directive for %q suppresses no finding; remove it", ig.analyzer),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// parseIgnores scans every comment of the package for ignore directives.
func parseIgnores(pkg *Package, known map[string]bool) (igs []*ignore, bad []Diagnostic) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are never directives
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), IgnoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				switch {
				case name == "":
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "ioslint",
						Message: "malformed ignore directive: want //lint:ioslint-ignore <analyzer> <reason>"})
				case !known[name]:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "ioslint",
						Message: fmt.Sprintf("ignore directive names unknown analyzer %q", name)})
				case strings.TrimSpace(reason) == "":
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "ioslint",
						Message: fmt.Sprintf("ignore directive for %q has no reason; justify the exception", name)})
				default:
					igs = append(igs, &ignore{
						analyzer: name,
						reason:   strings.TrimSpace(reason),
						pos:      c.Pos(),
						line:     pos.Line,
						file:     pos.Filename,
					})
				}
			}
		}
	}
	return igs, bad
}

// suppressed reports whether a directive covers d, marking it used. A
// directive covers its own line (trailing comment) and the next line
// (comment-above style).
func suppressed(igs []*ignore, d Diagnostic) bool {
	for _, ig := range igs {
		if ig.analyzer != d.Analyzer {
			continue
		}
		if ig.file != d.Pos.Filename {
			continue
		}
		if d.Pos.Line == ig.line || d.Pos.Line == ig.line+1 {
			ig.used = true
			return true
		}
	}
	return false
}

// hasDirective reports whether any comment line in the package equals
// "//" + directive (after space trimming), e.g. "//ioslint:deterministic".
func hasDirective(files []*ast.File, directive string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == "//"+directive {
					return true
				}
			}
		}
	}
	return false
}

// isTestFile reports whether pos is inside a _test.go file (analysis of
// loaded packages excludes them, but fixtures and future loaders may
// not).
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(filepath.Base(fset.Position(pos).Filename), "_test.go")
}

// funcScopes walks a file and calls visit for every function body —
// declarations and literals — with the innermost enclosing function node
// (*ast.FuncDecl or *ast.FuncLit) available to the callback via the
// stack.
type funcStack []ast.Node

// enclosing returns the innermost function node, or nil at package level.
func (s funcStack) enclosing() ast.Node {
	if len(s) == 0 {
		return nil
	}
	return s[len(s)-1]
}

// walkFuncs traverses file, maintaining the function-nesting stack and
// invoking fn for every node with the current stack.
func walkFuncs(file *ast.File, fn func(n ast.Node, stack funcStack)) {
	var stack funcStack
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fn(n, stack)
			stack = append(stack, n)
			// Walk children manually so the pop happens at the right time.
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					ast.Inspect(d.Body, walk)
				}
			case *ast.FuncLit:
				ast.Inspect(d.Body, walk)
			}
			stack = stack[:len(stack)-1]
			return false
		default:
			fn(n, stack)
			return true
		}
	}
	ast.Inspect(file, walk)
}
