// Package linttest runs an analyzer over a fixture package and checks
// its diagnostics against `// want "regexp"` comments, the analysistest
// convention: every diagnostic must be expected on its exact line, and
// every expectation must be matched. Fixtures live under
// testdata/src/<pkg>/ and are ordinary compilable Go restricted to
// standard-library imports (they are type-checked with the stdlib source
// importer, so the suite stays dependency-free and offline-friendly).
package linttest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ios/internal/lint"
)

// expectation is one `// want` entry.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads the fixture package at dir (e.g. "testdata/src/determinism"),
// runs the analyzer (ignore-directive filtering included), and reports
// any mismatch between produced and wanted diagnostics on t.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// loadFixture parses and type-checks the fixture directory as one
// package.
func loadFixture(dir string) (*lint.Package, error) {
	// Match the loader's view: pure Go, so stdlib imports in fixtures
	// never pull in cgo.
	build.Default.CgoEnabled = false
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkgPath := filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture does not type-check: %v", err)
	}
	return &lint.Package{
		ImportPath: pkgPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// wantRe matches one quoted pattern of a want comment: a double-quoted
// Go string or a backquoted raw string.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants extracts the `// want` expectations from every comment.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRe.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, q := range quoted {
					pattern := strings.Trim(q, "`")
					if q[0] == '"' {
						var err error
						pattern, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// matchWant marks and reports the first unmatched expectation covering d.
func matchWant(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.rx.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
