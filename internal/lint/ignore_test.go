package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSource type-checks one inline file as a package, the way the
// fixture loader does, so ignore-directive behavior can be tested with
// directives and findings on controlled lines.
func loadSource(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	files := []*ast.File{f}
	tpkg, err := conf.Check("p", fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{ImportPath: "p", Fset: fset, Files: files, Types: tpkg, Info: info}
}

func run(t *testing.T, src string) []Diagnostic {
	t.Helper()
	diags, err := RunAnalyzers(loadSource(t, src), All())
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	return diags
}

func TestIgnoreOnLineAbove(t *testing.T) {
	diags := run(t, `//ioslint:deterministic
package p

import "time"

func now() time.Time {
	//lint:ioslint-ignore determinism wall-clock telemetry, excluded from outputs
	return time.Now()
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestIgnoreOnSameLine(t *testing.T) {
	diags := run(t, `//ioslint:deterministic
package p

import "time"

func now() time.Time {
	return time.Now() //lint:ioslint-ignore determinism wall-clock telemetry, excluded from outputs
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestIgnoreWrongAnalyzerDoesNotSuppress(t *testing.T) {
	diags := run(t, `//ioslint:deterministic
package p

import "time"

func now() time.Time {
	//lint:ioslint-ignore mutexguard wrong analyzer named
	return time.Now()
}
`)
	// The finding survives AND the mismatched directive is stale.
	assertMessages(t, diags,
		"time.Now in a deterministic package",
		`ignore directive for "mutexguard" suppresses no finding`)
}

func TestIgnoreWithoutReasonReported(t *testing.T) {
	diags := run(t, `//ioslint:deterministic
package p

import "time"

func now() time.Time {
	//lint:ioslint-ignore determinism
	return time.Now()
}
`)
	assertMessages(t, diags,
		"time.Now in a deterministic package",
		`ignore directive for "determinism" has no reason`)
}

func TestIgnoreUnknownAnalyzerReported(t *testing.T) {
	diags := run(t, `package p

//lint:ioslint-ignore nosuchanalyzer because reasons
func f() {}
`)
	assertMessages(t, diags, `ignore directive names unknown analyzer "nosuchanalyzer"`)
}

func TestStaleIgnoreReported(t *testing.T) {
	diags := run(t, `package p

//lint:ioslint-ignore determinism nothing to suppress here
func f() {}
`)
	assertMessages(t, diags, `ignore directive for "determinism" suppresses no finding`)
}

// assertMessages requires diags to contain exactly the given substrings,
// in any order.
func assertMessages(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("want %d diagnostics %q, got %d: %v", len(want), want, len(diags), diags)
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q in %v", w, diags)
		}
	}
}
