package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// FingerprintDirective annotates a fingerprint encoder:
//
//	//ioslint:fingerprint <import-path>.<TypeName>
//	//ioslint:fingerprint <TypeName>            (type in the same package)
//
// placed in the doc comment of the function (or method) that serializes
// the named struct into a cache key. The analyzer then requires every
// fp:"include" field of that struct to be read by the encoder (directly
// or through same-package helpers it calls).
const FingerprintDirective = "ioslint:fingerprint"

// Fingerprint enforces the repository's cache-key soundness convention.
// The measurement and block caches are only correct while their keys
// cover every latency-relevant input — PR 4's near-miss, where two
// backend Specs differing only in fields the key did not encode would
// have aliased each other's latencies, is exactly the bug class this
// rules out. The convention has two halves:
//
//   - every field of a fingerprinted struct (one with at least one fp
//     struct tag) carries fp:"include" or fp:"exempt", so a newly added
//     field is a build-time decision, not a silent cache-aliasing bug;
//   - every fp:"include" field is consumed by each encoder annotated
//     with //ioslint:fingerprint for that struct.
var Fingerprint = &Analyzer{
	Name: "fingerprint",
	Doc: "Enforce the fp:\"include\"/fp:\"exempt\" struct-tag convention: " +
		"fingerprinted structs must tag every field, and every included field " +
		"must be consumed by the //ioslint:fingerprint-annotated encoder(s).",
	Run: runFingerprint,
}

func runFingerprint(pass *Pass) error {
	for _, f := range pass.Files {
		checkTagCompleteness(pass, f)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				ref, ok := cutDirective(c.Text, FingerprintDirective)
				if !ok {
					continue
				}
				checkEncoder(pass, fd, ref)
			}
		}
	}
	return nil
}

// cutDirective extracts the argument of a "//<name> <arg>" comment.
func cutDirective(comment, name string) (string, bool) {
	text, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	text, ok = strings.CutPrefix(strings.TrimSpace(text), name)
	if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(text), true
}

// checkTagCompleteness verifies that in every struct declared in f that
// uses fp tags at all, each field carries a well-formed one.
func checkTagCompleteness(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		any := false
		for _, fld := range st.Fields.List {
			if _, ok := fpTag(fld); ok {
				any = true
				break
			}
		}
		if !any {
			return true
		}
		for _, fld := range st.Fields.List {
			val, ok := fpTag(fld)
			if !ok {
				pass.Reportf(fld.Pos(), "field %s of fingerprinted struct %s has no fp tag: add fp:\"include\" and extend the fingerprint encoder (bumping its key version), or fp:\"exempt\" with a comment saying why the field cannot influence a cached value", fieldNames(fld), ts.Name.Name)
				continue
			}
			if val != "include" && val != "exempt" {
				pass.Reportf(fld.Pos(), "field %s of fingerprinted struct %s has fp:%q; the only valid values are \"include\" and \"exempt\"", fieldNames(fld), ts.Name.Name, val)
			}
		}
		return true
	})
}

// fpTag returns the fp struct-tag value of a field, if present.
func fpTag(fld *ast.Field) (string, bool) {
	if fld.Tag == nil {
		return "", false
	}
	// Tag literal includes the quotes.
	tag := strings.Trim(fld.Tag.Value, "`")
	return reflect.StructTag(tag).Lookup("fp")
}

// checkEncoder resolves one //ioslint:fingerprint directive and verifies
// the annotated function consumes every fp:"include" field of the named
// struct.
func checkEncoder(pass *Pass, fd *ast.FuncDecl, ref string) {
	tn, errMsg := resolveTypeRef(pass, ref)
	if tn == nil {
		pass.Reportf(fd.Name.Pos(), "fingerprint directive: %s", errMsg)
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(fd.Name.Pos(), "fingerprint directive: %s is not a struct type", ref)
		return
	}
	include := make(map[*types.Var]bool)
	tagged := false
	for i := 0; i < st.NumFields(); i++ {
		v, ok := reflect.StructTag(st.Tag(i)).Lookup("fp")
		if ok {
			tagged = true
		}
		if v == "include" {
			include[st.Field(i)] = false
		}
	}
	if !tagged {
		pass.Reportf(fd.Name.Pos(), "fingerprint directive: %s has no fp-tagged fields; tag every latency-relevant field fp:\"include\" (and the rest fp:\"exempt\")", ref)
		return
	}

	// Mark fields read by the encoder, following same-package callees.
	index := packageFuncDecls(pass)
	seen := map[*ast.FuncDecl]bool{}
	var visit func(fn *ast.FuncDecl)
	visit = func(fn *ast.FuncDecl) {
		if fn == nil || seen[fn] || fn.Body == nil {
			return
		}
		seen[fn] = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						if _, tracked := include[v]; tracked {
							include[v] = true
						}
					}
				}
			case *ast.CallExpr:
				if callee := calledFunc(pass, n); callee != nil {
					visit(index[callee])
				}
			}
			return true
		})
	}
	visit(fd)

	for i := 0; i < st.NumFields(); i++ {
		v := st.Field(i)
		consumed, tracked := include[v]
		if tracked && !consumed {
			pass.Reportf(fd.Name.Pos(), "fingerprint encoder %s does not consume %s.%s (fp:\"include\"): two configurations differing only in that field would alias one cache entry — extend the encoder and bump its key version, or retag the field fp:\"exempt\"", fd.Name.Name, tn.Name(), v.Name())
		}
	}
}

// resolveTypeRef resolves "path.Name" or "Name" to a type name in the
// current package or one of its direct imports.
func resolveTypeRef(pass *Pass, ref string) (*types.TypeName, string) {
	path, name := "", ref
	if i := strings.LastIndexByte(ref, '.'); i >= 0 {
		path, name = ref[:i], ref[i+1:]
	}
	lookup := func(p *types.Package) (*types.TypeName, string) {
		obj := p.Scope().Lookup(name)
		if obj == nil {
			return nil, "type " + name + " not found in " + p.Path()
		}
		tn, ok := obj.(*types.TypeName)
		if !ok {
			return nil, ref + " is not a type"
		}
		return tn, ""
	}
	if path == "" || path == pass.Pkg.Path() {
		return lookup(pass.Pkg)
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == path {
			return lookup(imp)
		}
	}
	return nil, "package " + path + " is not imported by " + pass.Pkg.Path()
}

// packageFuncDecls indexes the package's function declarations by their
// type-checker objects, for same-package call following.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// calledFunc resolves a call expression's callee to its declared
// function object, if it is a plain function or method call.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// fieldNames renders a field declaration's name list (or its type for
// embedded fields).
func fieldNames(fld *ast.Field) string {
	if len(fld.Names) == 0 {
		return types.ExprString(fld.Type)
	}
	names := make([]string, len(fld.Names))
	for i, n := range fld.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ", ")
}
