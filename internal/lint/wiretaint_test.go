package lint_test

import (
	"path/filepath"
	"testing"

	"ios/internal/lint"
	"ios/internal/lint/linttest"
)

func TestWireTaint(t *testing.T) {
	linttest.Run(t, lint.WireTaint, filepath.Join("testdata", "src", "wiretaint"))
}
