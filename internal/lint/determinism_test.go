package lint_test

import (
	"path/filepath"
	"testing"

	"ios/internal/lint"
	"ios/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, filepath.Join("testdata", "src", "determinism"))
}

// TestDeterminismRequiresDirective checks the analyzer is opt-in: the
// same hazards in an unmarked package produce no findings.
func TestDeterminismRequiresDirective(t *testing.T) {
	linttest.Run(t, lint.Determinism, filepath.Join("testdata", "src", "unmarked"))
}
