package lint_test

import (
	"path/filepath"
	"testing"

	"ios/internal/lint"
	"ios/internal/lint/linttest"
)

func TestFingerprint(t *testing.T) {
	linttest.Run(t, lint.Fingerprint, filepath.Join("testdata", "src", "fingerprint"))
}
