package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrderAllowDirective documents a blocking operation that is proven
// safe to perform while holding a mutex:
//
//	//ioslint:lockorder-allow <Type.mu> <reason>
//
// placed in the doc comment of the function that blocks. The directive
// is checked, not just trusted: if the annotated function never blocks
// while holding that mutex, the stale exemption is itself reported.
const LockOrderAllowDirective = "ioslint:lockorder-allow"

// LockOrder builds a package-wide lock-acquisition graph from
// Lock/RLock call sites on struct-field mutexes (the same vocabulary
// mutexguard's `// guarded by <mu>` annotations name) and reports two
// classes of finding:
//
//   - lock-order cycles: if one code path acquires A then B and another
//     acquires B then A, two goroutines can deadlock. Locks are
//     identified per (struct type, field), so a sharded cache locking
//     many instances of the same mutex in index order is not a cycle.
//   - blocking while locked: a goroutine that performs an HTTP round
//     trip, channel send/receive, select wait, time.Sleep, or
//     WaitGroup.Wait while holding a mutex stalls every contender for
//     as long as the operation takes — the cluster's
//     fetch-hook-inside-a-singleflight-claim pattern is the motivating
//     case. Calls through function-typed values (hooks, callbacks) are
//     treated as blocking unless they take no arguments and return at
//     most one value (parameterless accessors like injected clocks are
//     assumed pure).
//
// The analysis is branch-local and conservative: acquisitions inside a
// branch or loop body do not leak out, same-package callees are
// followed transitively, and goroutine bodies are analyzed as separate
// functions with an empty held set. Deliberate blocking under a lock is
// exempted per function and per mutex with //ioslint:lockorder-allow;
// a deliberate ordering cycle is suppressed at the reported acquisition
// with the standard ignore directive.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "Build the package's lock-acquisition graph and flag ordering cycles " +
		"(potential deadlocks) and blocking operations (HTTP, channel waits, " +
		"hooks) performed while holding a mutex.",
	Run: runLockOrder,
}

// lockUse is one tracked mutex acquisition: key identifies it within a
// function (receiver expression text + field), id across the package
// (struct type + field).
type lockUse struct {
	key lockKey
	id  string
	pos token.Pos
}

// blockEvent is one potentially blocking operation.
type blockEvent struct {
	pos  token.Pos
	what string
}

// lockSummary is what calling a function does to locks, transitively
// through same-package callees: which tracked mutexes it acquires and
// which blocking operations it may perform.
type lockSummary struct {
	acquires []lockUse
	blocks   []blockEvent
}

// lockEvents receives the walker's callbacks. Nil hooks are skipped.
type lockEvents struct {
	// acquire fires before lu joins the held set; via names the callee
	// chain for acquisitions observed through a same-package call.
	acquire func(held []lockUse, lu lockUse, via string)
	// block fires for a potentially blocking operation with locks held.
	block func(held []lockUse, pos token.Pos, what string)
	// goStmt fires for every go statement, locked or not.
	goStmt func(held []lockUse, g *ast.GoStmt)
}

// lockAnalysis drives the shared held-set walk used by lockorder and
// goroleak: a linear, branch-local interpretation of each function body
// tracking which struct-field mutexes are held at each statement.
type lockAnalysis struct {
	pass   *Pass
	index  map[*types.Func]*ast.FuncDecl
	sums   map[*types.Func]*lockSummary
	// localFns resolves variables assigned function literals, so calling
	// a local closure is analyzed by its body instead of treated as an
	// opaque (assumed-blocking) hook.
	localFns map[types.Object][]*ast.FuncLit
	litSums  map[*ast.FuncLit]*lockSummary
	events   lockEvents
}

func newLockAnalysis(pass *Pass) *lockAnalysis {
	return &lockAnalysis{
		pass:     pass,
		index:    packageFuncDecls(pass),
		sums:     make(map[*types.Func]*lockSummary),
		localFns: collectLocalFuncs(pass),
		litSums:  make(map[*ast.FuncLit]*lockSummary),
	}
}

// collectLocalFuncs indexes `v := func(...) {...}` bindings (and var
// declarations) package-wide. A variable bound to several literals maps
// to all of them; the analysis unions their effects.
func collectLocalFuncs(pass *Pass) map[types.Object][]*ast.FuncLit {
	m := make(map[types.Object][]*ast.FuncLit)
	bind := func(name *ast.Ident, rhs ast.Expr) {
		lit, ok := rhs.(*ast.FuncLit)
		if !ok {
			return
		}
		obj := pass.Info.ObjectOf(name)
		if obj != nil {
			m[obj] = append(m[obj], lit)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok && i < len(n.Rhs) {
						bind(id, n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						bind(name, n.Values[i])
					}
				}
			}
			return true
		})
	}
	return m
}

// callKind classifies a call expression for the walker.
type callKind int

const (
	callNone    callKind = iota
	callAcquire          // x.f.Lock() / x.f.RLock() on a tracked mutex
	callRelease          // x.f.Unlock() / x.f.RUnlock()
	callBlock            // known-blocking stdlib call or opaque hook
	callStatic           // same-package function with a visible body
	callLocal            // local variable bound to function literal(s)
)

// classify decides what a call means for the lock walk.
func (la *lockAnalysis) classify(call *ast.CallExpr) (callKind, lockUse, string) {
	if fun, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch fun.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			if lu, ok := la.trackedMutex(fun); ok {
				if fun.Sel.Name == "Lock" || fun.Sel.Name == "RLock" {
					return callAcquire, lu, ""
				}
				return callRelease, lu, ""
			}
		}
	}
	fn := calledFunc(la.pass, call)
	if fn == nil {
		// Conversions and builtins look like calls; neither blocks.
		tv, ok := la.pass.Info.Types[call.Fun]
		if !ok || tv.IsType() {
			return callNone, lockUse{}, ""
		}
		if id, ok := unparenExpr(call.Fun).(*ast.Ident); ok {
			if _, builtin := la.pass.Info.Uses[id].(*types.Builtin); builtin {
				return callNone, lockUse{}, ""
			}
			if obj := la.pass.Info.ObjectOf(id); obj != nil && len(la.localFns[obj]) > 0 {
				return callLocal, lockUse{}, ""
			}
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return callNone, lockUse{}, ""
		}
		// A call through a function value is opaque: assume it can block
		// unless it is a parameterless accessor.
		if sig.Params().Len() > 0 || sig.Results().Len() > 1 {
			return callBlock, lockUse{}, fmt.Sprintf("call through function value %s", types.ExprString(call.Fun))
		}
		return callNone, lockUse{}, ""
	}
	if what := blockingStdlibCall(fn); what != "" {
		return callBlock, lockUse{}, what
	}
	if fn.Pkg() == la.pass.Pkg && la.index[fn] != nil {
		return callStatic, lockUse{}, ""
	}
	return callNone, lockUse{}, ""
}

// trackedMutex resolves x.f in x.f.Lock() to a sync.Mutex/RWMutex field
// of a named struct.
func (la *lockAnalysis) trackedMutex(fun *ast.SelectorExpr) (lockUse, bool) {
	muSel, ok := fun.X.(*ast.SelectorExpr)
	if !ok {
		return lockUse{}, false
	}
	s, ok := la.pass.Info.Selections[muSel]
	if !ok || s.Kind() != types.FieldVal {
		return lockUse{}, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !isMutexType(v.Type()) {
		return lockUse{}, false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return lockUse{}, false
	}
	return lockUse{
		key: lockKey{types.ExprString(muSel.X), muSel.Sel.Name},
		id:  named.Obj().Name() + "." + muSel.Sel.Name,
		pos: fun.Pos(),
	}, true
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// blockingStdlibCall names the blocking operation a stdlib call
// performs, or "". sync.Cond.Wait is deliberately absent: it must be
// called with its lock held.
func blockingStdlibCall(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if name == "Wait" && receiverTypeName(fn) == "WaitGroup" {
			return "sync.WaitGroup.Wait"
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "HTTP round-trip (http." + name + ")"
		case "Serve", "ListenAndServe", "ListenAndServeTLS", "Shutdown":
			return "HTTP server " + name
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return "exec.Cmd." + name
		}
	}
	return ""
}

// receiverTypeName returns the name of fn's receiver type, or "".
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// summary computes (memoized, cycle-safe) what calling fn does to locks.
func (la *lockAnalysis) summary(fn *types.Func) *lockSummary {
	if s, ok := la.sums[fn]; ok {
		return s
	}
	s := &lockSummary{}
	la.sums[fn] = s // pre-register so recursion terminates
	fd := la.index[fn]
	if fd == nil || fd.Body == nil {
		return s
	}
	la.scanSummary(fd.Body, s)
	return s
}

// scanSummary collects acquisitions and blocking operations in n,
// skipping function literals and goroutine bodies (they do not run when
// the function runs).
func (la *lockAnalysis) scanSummary(n ast.Node, s *lockSummary) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !hasDefaultClause(n) {
				s.blocks = append(s.blocks, blockEvent{n.Pos(), "select wait"})
			}
			for _, c := range n.Body.List {
				for _, st := range c.(*ast.CommClause).Body {
					la.scanSummary(st, s)
				}
			}
			return false
		case *ast.SendStmt:
			s.blocks = append(s.blocks, blockEvent{n.Arrow, "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.blocks = append(s.blocks, blockEvent{n.OpPos, "channel receive"})
			}
		case *ast.CallExpr:
			switch kind, lu, what := la.classify(n); kind {
			case callAcquire:
				s.acquires = append(s.acquires, lu)
			case callBlock:
				s.blocks = append(s.blocks, blockEvent{n.Pos(), what})
			case callStatic:
				sub := la.summary(calledFunc(la.pass, n))
				s.acquires = append(s.acquires, sub.acquires...)
				s.blocks = append(s.blocks, sub.blocks...)
			case callLocal:
				for _, sub := range la.localSummaries(n) {
					s.acquires = append(s.acquires, sub.acquires...)
					s.blocks = append(s.blocks, sub.blocks...)
				}
			}
		}
		return true
	})
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// walkFunc interprets one function (or function-literal) body from an
// empty held set, firing the registered events.
func (la *lockAnalysis) walkFunc(body *ast.BlockStmt) {
	la.execStmts(body.List, nil)
}

func (la *lockAnalysis) execStmts(list []ast.Stmt, held []lockUse) []lockUse {
	for _, st := range list {
		held = la.execStmt(st, held)
	}
	return held
}

// execStmt interprets one statement, returning the held set after it.
// Branch and loop bodies run on a copy: acquisitions inside them do not
// leak out, which keeps sharded lock-all loops from self-deadlocking in
// the model.
func (la *lockAnalysis) execStmt(st ast.Stmt, held []lockUse) []lockUse {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch kind, lu, _ := la.classify(call); kind {
			case callAcquire:
				la.emitAcquire(held, lu, "")
				return append(held[:len(held):len(held)], lu)
			case callRelease:
				return removeLock(held, lu.key)
			}
		}
		la.scanExpr(st.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end, which
		// is already the walker's model; other deferred calls run at
		// return, usually after the unlocks, so they are not scanned.
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			la.scanExpr(e, held)
		}
		for _, e := range st.Lhs {
			la.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						la.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.GoStmt:
		if la.events.goStmt != nil {
			la.events.goStmt(held, st)
		}
		for _, a := range st.Call.Args {
			la.scanExpr(a, held)
		}
	case *ast.SendStmt:
		la.emitBlock(held, st.Arrow, "channel send")
		la.scanExpr(st.Chan, held)
		la.scanExpr(st.Value, held)
	case *ast.IncDecStmt:
		la.scanExpr(st.X, held)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			la.scanExpr(e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			held = la.execStmt(st.Init, held)
		}
		la.scanExpr(st.Cond, held)
		la.execStmts(st.Body.List, cloneLocks(held))
		if st.Else != nil {
			la.execStmt(st.Else, cloneLocks(held))
		}
	case *ast.BlockStmt:
		return la.execStmts(st.List, held)
	case *ast.ForStmt:
		inner := cloneLocks(held)
		if st.Init != nil {
			inner = la.execStmt(st.Init, inner)
		}
		if st.Cond != nil {
			la.scanExpr(st.Cond, inner)
		}
		la.execStmts(st.Body.List, inner)
	case *ast.RangeStmt:
		la.scanExpr(st.X, held)
		la.execStmts(st.Body.List, cloneLocks(held))
	case *ast.SelectStmt:
		if !hasDefaultClause(st) {
			la.emitBlock(held, st.Select, "select wait")
		}
		for _, c := range st.Body.List {
			la.execStmts(c.(*ast.CommClause).Body, cloneLocks(held))
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = la.execStmt(st.Init, held)
		}
		if st.Tag != nil {
			la.scanExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			la.execStmts(c.(*ast.CaseClause).Body, cloneLocks(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			la.execStmts(c.(*ast.CaseClause).Body, cloneLocks(held))
		}
	case *ast.LabeledStmt:
		return la.execStmt(st.Stmt, held)
	}
	return held
}

// scanExpr fires events for blocking operations and same-package calls
// inside an expression. Function literals are skipped: their bodies are
// walked as separate functions.
func (la *lockAnalysis) scanExpr(e ast.Expr, held []lockUse) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				la.emitBlock(held, n.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			switch kind, _, what := la.classify(n); kind {
			case callBlock:
				la.emitBlock(held, n.Pos(), what)
			case callStatic:
				la.expandCall(held, n)
			case callLocal:
				la.expandLocal(held, n)
			}
		}
		return true
	})
}

// expandCall applies a same-package callee's lock summary at the call
// site: its acquisitions become ordering edges from every held lock,
// its blocking operations become blocking events here.
func (la *lockAnalysis) expandCall(held []lockUse, call *ast.CallExpr) {
	if len(held) == 0 {
		return
	}
	fn := calledFunc(la.pass, call)
	sum := la.summary(fn)
	for _, a := range sum.acquires {
		la.emitAcquire(held, lockUse{key: a.key, id: a.id, pos: call.Pos()}, fn.Name())
	}
	for _, b := range sum.blocks {
		la.emitBlock(held, call.Pos(), b.what+" (inside "+fn.Name()+")")
	}
}

// localSummaries returns the lock summaries of every function literal a
// local call target may be bound to.
func (la *lockAnalysis) localSummaries(call *ast.CallExpr) []*lockSummary {
	id, ok := unparenExpr(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := la.pass.Info.ObjectOf(id)
	var out []*lockSummary
	for _, lit := range la.localFns[obj] {
		s, ok := la.litSums[lit]
		if !ok {
			s = &lockSummary{}
			la.litSums[lit] = s // pre-register so recursion terminates
			la.scanSummary(lit.Body, s)
		}
		out = append(out, s)
	}
	return out
}

// expandLocal applies a local closure's summaries at the call site.
func (la *lockAnalysis) expandLocal(held []lockUse, call *ast.CallExpr) {
	if len(held) == 0 {
		return
	}
	name := types.ExprString(call.Fun)
	for _, sum := range la.localSummaries(call) {
		for _, a := range sum.acquires {
			la.emitAcquire(held, lockUse{key: a.key, id: a.id, pos: call.Pos()}, name)
		}
		for _, b := range sum.blocks {
			la.emitBlock(held, call.Pos(), b.what+" (inside local func "+name+")")
		}
	}
}

func (la *lockAnalysis) emitAcquire(held []lockUse, lu lockUse, via string) {
	if la.events.acquire != nil {
		la.events.acquire(held, lu, via)
	}
}

func (la *lockAnalysis) emitBlock(held []lockUse, pos token.Pos, what string) {
	if len(held) == 0 || la.events.block == nil {
		return
	}
	la.events.block(held, pos, what)
}

func cloneLocks(held []lockUse) []lockUse {
	return append([]lockUse(nil), held...)
}

func removeLock(held []lockUse, key lockKey) []lockUse {
	out := held[:0:0]
	for _, h := range held {
		if h.key != key {
			out = append(out, h)
		}
	}
	return out
}

// lockAllow is one parsed //ioslint:lockorder-allow directive.
type lockAllow struct {
	reason string
	pos    token.Pos
	used   bool
}

// lockEdge is one observed ordering: from held while acquiring to.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string
}

func runLockOrder(pass *Pass) error {
	la := newLockAnalysis(pass)
	var edges []lockEdge
	edgeSeen := make(map[[2]string]bool)
	blockSeen := make(map[token.Pos]map[string]bool)

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		allowsByDecl := make(map[*ast.FuncDecl]map[string]*lockAllow)
		walkFuncs(f, func(n ast.Node, stack funcStack) {
			var body *ast.BlockStmt
			var owner *ast.FuncDecl
			switch n := n.(type) {
			case *ast.FuncDecl:
				body, owner = n.Body, n
			case *ast.FuncLit:
				body = n.Body
				if len(stack) > 0 {
					owner, _ = stack[0].(*ast.FuncDecl)
				}
			default:
				return
			}
			if body == nil {
				return
			}
			allows := allowsByDecl[owner]
			if allows == nil && owner != nil {
				allows = parseLockAllows(pass, owner)
				allowsByDecl[owner] = allows
			}
			la.events = lockEvents{
				acquire: func(held []lockUse, lu lockUse, via string) {
					for _, h := range held {
						if h.id == lu.id {
							continue // same lock class: sharded instances order by convention
						}
						k := [2]string{h.id, lu.id}
						if edgeSeen[k] {
							continue
						}
						edgeSeen[k] = true
						edges = append(edges, lockEdge{h.id, lu.id, lu.pos, via})
					}
				},
				block: func(held []lockUse, pos token.Pos, what string) {
					for _, h := range held {
						if a, ok := allows[h.id]; ok {
							a.used = true
							continue
						}
						if blockSeen[pos] == nil {
							blockSeen[pos] = make(map[string]bool)
						}
						if blockSeen[pos][h.id] {
							continue
						}
						blockSeen[pos][h.id] = true
						pass.Reportf(pos, "%s while holding %s (locked at %s): a blocked holder stalls every contender — hoist the operation out of the critical section, or document a proven-safe case with //ioslint:lockorder-allow %s <reason> on the function",
							what, h.id, relPosition(pass, h.pos), h.id)
					}
				},
			}
			la.walkFunc(body)
		})
		for _, allows := range allowsByDecl {
			for id, a := range allows {
				if !a.used {
					pass.Reportf(a.pos, "lockorder-allow for %q exempts nothing: the function never blocks while holding it — remove the stale directive", id)
				}
			}
		}
	}

	reportLockCycles(pass, edges)
	return nil
}

// parseLockAllows extracts the //ioslint:lockorder-allow directives from
// a function's doc comment.
func parseLockAllows(pass *Pass, fd *ast.FuncDecl) map[string]*lockAllow {
	allows := make(map[string]*lockAllow)
	if fd.Doc == nil {
		return allows
	}
	for _, c := range fd.Doc.List {
		arg, ok := cutDirective(c.Text, LockOrderAllowDirective)
		if !ok {
			continue
		}
		id, reason, _ := strings.Cut(arg, " ")
		if id == "" || strings.TrimSpace(reason) == "" {
			pass.Reportf(c.Pos(), "malformed lockorder-allow: want //ioslint:lockorder-allow <Type.mu> <reason>")
			continue
		}
		allows[id] = &lockAllow{reason: strings.TrimSpace(reason), pos: c.Pos()}
	}
	return allows
}

// reportLockCycles finds strongly connected components of the ordering
// graph and reports each once, at its earliest edge.
func reportLockCycles(pass *Pass, edges []lockEdge) {
	adj := make(map[string][]string)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	comp := sccs(adj)
	for _, scc := range comp {
		if len(scc) < 2 {
			continue
		}
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		var cyc []lockEdge
		for _, e := range edges {
			if in[e.from] && in[e.to] {
				cyc = append(cyc, e)
			}
		}
		sort.Slice(cyc, func(i, j int) bool { return cyc[i].pos < cyc[j].pos })
		parts := make([]string, len(cyc))
		for i, e := range cyc {
			via := ""
			if e.via != "" {
				via = ", via " + e.via
			}
			parts[i] = fmt.Sprintf("%s → %s (%s%s)", e.from, e.to, relPosition(pass, e.pos), via)
		}
		pass.Reportf(cyc[0].pos, "lock-order cycle: %s — two goroutines interleaving these paths can deadlock; break the cycle, or suppress at this acquisition with //lint:ioslint-ignore lockorder <proof it cannot happen>",
			strings.Join(parts, "; "))
	}
}

// sccs returns the strongly connected components of adj (Tarjan).
func sccs(adj map[string][]string) [][]string {
	var nodes []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		add(from)
		for _, to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := append([]string(nil), adj[v]...)
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			out = append(out, scc)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strong(n)
		}
	}
	return out
}

// unparenExpr strips parentheses (ast.Unparen needs go1.22; the module
// targets 1.21).
func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// relPosition renders pos as "file.go:line" for embedding in messages.
func relPosition(pass *Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
