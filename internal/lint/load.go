package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the given `go list` patterns (e.g. "./...") to packages
// and type-checks each from source. Test files are excluded: the
// invariants the suite enforces are about library code, and several
// analyzers (determinism in particular) deliberately do not apply to
// tests, which may use wall clocks and fixed maps freely.
//
// Loading shells out to `go list` for pattern resolution and build-tag
// file selection, then type-checks with the standard library's source
// importer — no export data, no network, no external dependencies. Cgo
// is disabled for the importer's view so cgo-using stdlib packages
// resolve to their pure-Go fallbacks.
func Load(dir string, patterns []string) ([]*Package, error) {
	// The stdlib source importer consults go/build's default context;
	// force the pure-Go view so dependency packages never need cgo.
	build.Default.CgoEnabled = false

	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList resolves patterns to package metadata.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-json=Dir,ImportPath,Name,GoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// typecheck parses and type-checks one listed package.
func typecheck(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	var tcErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	if len(tcErrs) > 0 {
		msgs := make([]string, 0, len(tcErrs))
		for _, e := range tcErrs {
			msgs = append(msgs, e.Error())
		}
		if len(msgs) > 5 {
			msgs = append(msgs[:5], fmt.Sprintf("... and %d more", len(msgs)-5))
		}
		return nil, fmt.Errorf("lint: %s does not type-check:\n  %s", lp.ImportPath, strings.Join(msgs, "\n  "))
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers read
// allocated (shared by the loader, the fixture runner, and the vettool
// driver, so all three produce identical passes).
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
