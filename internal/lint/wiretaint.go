package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UntrustedDirective marks a statement whose results cross a trust
// boundary — a peer HTTP body, a cache file, request JSON:
//
//	wes, ok := n.fetchEntry(ctx, url, key) //ioslint:untrusted peer HTTP body
//
// as a trailing comment or on the line directly above. The values the
// statement assigns (and the targets of &x arguments, the
// json.Unmarshal pattern) are tainted.
const UntrustedDirective = "ioslint:untrusted"

// ValidatorDirective marks a function that validates wire input before
// it is trusted; calls to it cleanse taint. It must be able to reject —
// a validator that returns no error is reported. Cross-package,
// module-internal functions named Decode, Validate, or Merge are
// treated as validators by convention (the loader cannot see directives
// across package boundaries); in any package that participates in the
// wire-trust discipline, an exported function with one of those names
// must carry the directive so the convention stays honest.
const ValidatorDirective = "ioslint:validator"

// wireSinks are the call names a tainted value must not reach raw: they
// commit data into the caches and plan registries every search trusts.
var wireSinks = map[string]bool{"Commit": true, "Merge": true, "RegisterPlan": true}

// wireValidatorNames are the conventional validator names recognized
// across package boundaries (module-internal callees only).
var wireValidatorNames = map[string]bool{"Decode": true, "Validate": true, "Merge": true}

// WireTaint is a function-local taint pass over the wire-trust
// annotations: values produced by an //ioslint:untrusted statement stay
// tainted through assignments, field selections, and non-validator
// calls, and must pass through an //ioslint:validator function before
// reaching a Commit, Merge, or RegisterPlan sink. The pass is
// deliberately local — taint does not flow across function boundaries —
// so a function that returns untrusted data is annotated at its call
// sites (or becomes a validator itself).
var WireTaint = &Analyzer{
	Name: "wiretaint",
	Doc: "Values from //ioslint:untrusted sources (peer HTTP bodies, cache " +
		"files, request JSON) must pass through an //ioslint:validator " +
		"function before reaching Commit/Merge/RegisterPlan sinks.",
	Run: runWireTaint,
}

// untrustedMark is one //ioslint:untrusted comment line.
type untrustedMark struct {
	pos  token.Pos
	used bool
}

func runWireTaint(pass *Pass) error {
	validators := collectValidators(pass)
	marks := collectUntrusted(pass)
	if len(validators) > 0 || len(marks) > 0 {
		checkValidatorConvention(pass, validators)
	}
	if len(marks) > 0 {
		for _, f := range pass.Files {
			if isTestFile(pass.Fset, f.Pos()) {
				continue
			}
			fileMarks := marks[pass.Fset.Position(f.Pos()).Filename]
			walkFuncs(f, func(n ast.Node, stack funcStack) {
				fd, ok := n.(*ast.FuncDecl)
				if !ok || fd.Body == nil || len(stack) > 0 {
					return
				}
				runTaint(pass, validators, fileMarks, fd.Body)
			})
		}
	}
	for _, byLine := range marks {
		for _, m := range byLine {
			if !m.used {
				pass.Reportf(m.pos, "untrusted marker attaches to no statement (it covers its own line and the next); move it to the statement that receives the wire data")
			}
		}
	}
	return nil
}

// collectValidators finds //ioslint:validator functions declared in this
// package and checks each can reject its input.
func collectValidators(pass *Pass) map[*types.Func]bool {
	validators := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if _, ok := cutDirective(c.Text, ValidatorDirective); !ok {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				validators[fn] = true
				if !returnsError(fn) {
					pass.Reportf(fd.Name.Pos(), "validator %s returns no error: a validator must be able to reject its input", fd.Name.Name)
				}
			}
		}
	}
	return validators
}

// returnsError reports whether any of fn's results is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// checkValidatorConvention enforces the cross-package naming convention
// in packages that participate in the wire-trust discipline: exported
// Decode/Validate/Merge functions must carry the validator directive,
// because callers in other packages will treat them as validators.
func checkValidatorConvention(pass *Pass, validators map[*types.Func]bool) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !wireValidatorNames[fd.Name.Name] {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || validators[fn] {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported %s is treated as a wire validator by cross-package convention; annotate it //ioslint:validator (and make sure it validates), or rename it", fd.Name.Name)
		}
	}
}

// collectUntrusted indexes //ioslint:untrusted comment lines by file.
func collectUntrusted(pass *Pass) map[string]map[int]*untrustedMark {
	marks := make(map[string]map[int]*untrustedMark)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, ok := cutDirective(c.Text, UntrustedDirective); !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if marks[p.Filename] == nil {
					marks[p.Filename] = make(map[int]*untrustedMark)
				}
				marks[p.Filename][p.Line] = &untrustedMark{pos: c.Pos()}
			}
		}
	}
	return marks
}

// taintPass is the per-function taint state.
type taintPass struct {
	pass       *Pass
	validators map[*types.Func]bool
	marks      map[int]*untrustedMark
	tainted    map[types.Object]bool
}

// runTaint runs the taint engine over one function body to a fixpoint,
// then reports tainted sink arguments.
func runTaint(pass *Pass, validators map[*types.Func]bool, marks map[int]*untrustedMark, body *ast.BlockStmt) {
	tp := &taintPass{pass: pass, validators: validators, marks: marks, tainted: make(map[types.Object]bool)}
	for i := 0; i < 4; i++ {
		before := len(tp.tainted)
		tp.walk(body, false)
		if len(tp.tainted) == before {
			break
		}
	}
	tp.walk(body, true)
}

// sourceMarked reports whether pos sits on (or directly below) an
// untrusted marker line, consuming the mark.
func (tp *taintPass) sourceMarked(pos token.Pos) bool {
	if tp.marks == nil {
		return false
	}
	line := tp.pass.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		if m, ok := tp.marks[l]; ok {
			m.used = true
			return true
		}
	}
	return false
}

// walk propagates taint through the body; when report is set it also
// flags tainted sink arguments.
func (tp *taintPass) walk(body *ast.BlockStmt, report bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			src := tp.sourceMarked(n.Pos())
			if !src {
				for _, r := range n.Rhs {
					if tp.exprTainted(r) {
						src = true
						break
					}
				}
			}
			if src {
				for _, l := range n.Lhs {
					tp.taintExpr(l)
				}
			}
		case *ast.ValueSpec:
			src := tp.sourceMarked(n.Pos())
			if !src {
				for _, v := range n.Values {
					if tp.exprTainted(v) {
						src = true
						break
					}
				}
			}
			if src {
				for _, name := range n.Names {
					if obj := tp.pass.Info.Defs[name]; obj != nil {
						tp.tainted[obj] = true
					}
				}
			}
		case *ast.RangeStmt:
			if tp.exprTainted(n.X) {
				tp.taintExpr(n.Key)
				tp.taintExpr(n.Value)
			}
		case *ast.CallExpr:
			tp.handleCall(n, report)
		}
		return true
	})
}

// handleCall propagates taint into &x arguments of non-validator calls
// and, in the report phase, flags tainted arguments reaching sinks.
func (tp *taintPass) handleCall(call *ast.CallExpr, report bool) {
	fn := calledFunc(tp.pass, call)
	isValidator := tp.validatorCall(fn)
	src := tp.sourceMarked(call.Pos())
	argTainted := false
	for _, a := range call.Args {
		if tp.exprTainted(a) {
			argTainted = true
			break
		}
	}
	if !isValidator && (src || argTainted) {
		// The Unmarshal pattern: a call fed wire data fills its pointer
		// arguments with wire data.
		for _, a := range call.Args {
			if un, ok := a.(*ast.UnaryExpr); ok && un.Op == token.AND {
				tp.taintExpr(un.X)
			}
		}
	}
	if report && fn != nil && wireSinks[fn.Name()] && !isValidator && argTainted {
		tp.pass.Reportf(call.Pos(), "wire-tainted value reaches %s without validation: route it through an //ioslint:validator function (or a module-internal Decode/Validate/Merge) first", fn.Name())
	}
}

// validatorCall reports whether calling fn cleanses taint: it carries
// the directive in this package, or is a module-internal function with
// a conventional validator name.
func (tp *taintPass) validatorCall(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if tp.validators[fn] {
		return true
	}
	if fn.Pkg() == nil || !wireValidatorNames[fn.Name()] {
		return false
	}
	return moduleRoot(fn.Pkg().Path()) == moduleRoot(tp.pass.Pkg.Path())
}

// moduleRoot returns the first segment of an import path.
func moduleRoot(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// taintExpr taints the root object of an assignable expression.
func (tp *taintPass) taintExpr(e ast.Expr) {
	if e == nil {
		return
	}
	if root := rootIdent(e); root != nil && root.Name != "_" {
		if obj := tp.pass.Info.ObjectOf(root); obj != nil {
			tp.tainted[obj] = true
		}
	}
}

// exprTainted reports whether evaluating e can yield wire-tainted data.
func (tp *taintPass) exprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		obj := tp.pass.Info.ObjectOf(e)
		return obj != nil && tp.tainted[obj]
	case *ast.SelectorExpr:
		return tp.exprTainted(e.X)
	case *ast.CallExpr:
		if tv, ok := tp.pass.Info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: taint follows the operand.
			return len(e.Args) == 1 && tp.exprTainted(e.Args[0])
		}
		if tp.validatorCall(calledFunc(tp.pass, e)) {
			return false
		}
		if fun, ok := e.Fun.(*ast.SelectorExpr); ok && tp.exprTainted(fun.X) {
			return true
		}
		for _, a := range e.Args {
			if tp.exprTainted(a) {
				return true
			}
		}
		return false
	case *ast.ParenExpr:
		return tp.exprTainted(e.X)
	case *ast.StarExpr:
		return tp.exprTainted(e.X)
	case *ast.UnaryExpr:
		return tp.exprTainted(e.X)
	case *ast.BinaryExpr:
		return tp.exprTainted(e.X) || tp.exprTainted(e.Y)
	case *ast.IndexExpr:
		return tp.exprTainted(e.X) || tp.exprTainted(e.Index)
	case *ast.SliceExpr:
		return tp.exprTainted(e.X)
	case *ast.TypeAssertExpr:
		return tp.exprTainted(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if tp.exprTainted(el) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
