// Package goroleak exercises the goroutine-leak analyzer: termination
// witnesses (WaitGroup, context, bounded work, channel ranges),
// spawn-under-lock, opaque callees, and the deliberate-daemon ignore.
package goroleak

import (
	"context"
	"sync"
)

type worker struct {
	mu sync.Mutex
	ch chan int
}

// spawnUnderLock starts a goroutine inside the critical section.
func (w *worker) spawnUnderLock() {
	w.mu.Lock()
	go w.drain() // want `goroutine spawned while holding worker\.mu`
	w.mu.Unlock()
}

// drain ranges over a channel: it terminates when the channel closes,
// which is itself a witness-grade bound.
func (w *worker) drain() {
	for range w.ch {
	}
}

// daemon loops forever with no witness.
func (w *worker) daemon() {
	go func() { // want `goroutine has no termination witness`
		for {
			w.ch <- 1
		}
	}()
}

// ctxLoop is cancellable: the ctx.Done check is its witness.
func (w *worker) ctxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w.ch <- 1:
			}
		}
	}()
}

// tracked is waited for: the WaitGroup.Done call is its witness.
func (w *worker) tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if len(w.ch) == 0 {
				return
			}
		}
	}()
}

// bounded does a fixed amount of work — no loops at all.
func (w *worker) bounded() {
	go func() {
		w.ch <- 1
	}()
}

// spawnOpaque runs a callee whose body is outside this package; nothing
// here proves it stops.
func spawnOpaque(f func()) {
	go f() // want `goroutine has no termination witness \(the callee's body is outside this package`
}

// deliberate is an annotated daemon: the ignore suppresses the finding.
func (w *worker) deliberate() {
	//lint:ioslint-ignore goroleak fixture daemon runs for the process lifetime by design
	go func() {
		for {
			w.ch <- 1
		}
	}()
}
