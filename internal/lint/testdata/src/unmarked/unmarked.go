// Package unmarked contains determinism hazards but no
// ioslint:deterministic directive: the analyzer must stay silent here.
package unmarked

import "time"

func wallClock() time.Time {
	return time.Now() // no want: package is not declared deterministic
}
