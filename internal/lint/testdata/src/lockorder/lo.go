// Package lockorder exercises the lock-order analyzer: ordering cycles,
// blocking operations under a held mutex, transitive same-package
// expansion, local-closure resolution, and the lockorder-allow
// exemption.
package lockorder

import (
	"net/http"
	"sync"
	"time"
)

// pair's two locks are taken in both orders across its methods — the
// classic interleaving deadlock.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `lock-order cycle: pair\.a → pair\.b`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// fetcher performs blocking work in various positions relative to its
// lock.
type fetcher struct {
	mu   sync.Mutex
	hook func(string) string
	ch   chan int
}

func (f *fetcher) slow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	http.Get("http://peer") // want `HTTP round-trip \(http\.Get\) while holding fetcher\.mu`
}

func (f *fetcher) send() {
	f.mu.Lock()
	f.ch <- 1 // want `channel send while holding fetcher\.mu`
	f.mu.Unlock()
}

func (f *fetcher) hookCall() {
	f.mu.Lock()
	f.hook("x") // want `call through function value f\.hook while holding fetcher\.mu`
	f.mu.Unlock()
}

// viaCallee blocks transitively: the same-package callee's channel
// receive surfaces at this call site.
func (f *fetcher) viaCallee() {
	f.mu.Lock()
	f.wait() // want `channel receive \(inside wait\) while holding fetcher\.mu`
	f.mu.Unlock()
}

func (f *fetcher) wait() {
	<-f.ch
}

// localOK calls a pure local closure under the lock: resolved by its
// body instead of treated as an opaque (assumed-blocking) hook.
func (f *fetcher) localOK() int {
	add := func(x int) int { return x + 1 }
	f.mu.Lock()
	n := add(1)
	f.mu.Unlock()
	return n
}

// allowed documents a deliberate block under the lock; the directive is
// consumed, so neither the sleep nor a stale-allow is reported.
//
//ioslint:lockorder-allow fetcher.mu the sleep under the lock is this fixture's point
func (f *fetcher) allowed() {
	f.mu.Lock()
	time.Sleep(time.Millisecond)
	f.mu.Unlock()
}

// released blocks only after the unlock — the held set is empty.
func (f *fetcher) released() {
	f.mu.Lock()
	f.mu.Unlock()
	<-f.ch
}
