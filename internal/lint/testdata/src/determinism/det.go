//ioslint:deterministic

// Package determinism is the fixture for the determinism analyzer: each
// flagged form sits next to the accepted idiom that replaces it.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in a deterministic package`
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in a deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a deterministic package`
}

func explicitTime() time.Time {
	return time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC) // ok: pure construction
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn in a deterministic package`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicitly seeded generator
	return r.Intn(10)
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map`
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted before use below
	}
	sort.Strings(keys)
	return keys
}

func localAccumulator(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...) // ok: accumulator dies with the iteration
		total += len(local)
	}
	return total
}

func serializeUnsorted(m map[string]int) []byte {
	var buf []byte
	for k, v := range m {
		buf = appendEntry(buf, k, v) // want `call to appendEntry inside range over map`
	}
	return buf
}

func serializeSorted(m map[string]int) []byte {
	var buf []byte
	for _, k := range sortedKeys(m) {
		buf = appendEntry(buf, k, m[k]) // ok: slice range, order fixed by sort
	}
	return buf
}

func appendEntry(b []byte, k string, v int) []byte {
	b = append(b, k...)
	return fmt.Appendf(b, "=%d;", v)
}
