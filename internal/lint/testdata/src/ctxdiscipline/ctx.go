// Package ctxdiscipline is the fixture for the ctxdiscipline analyzer:
// manufactured root contexts, dropped ctx parameters, and ctx.Done()
// paths that lose the cancellation cause.
package ctxdiscipline

import (
	"context"
	"errors"
	"fmt"
)

func compute(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n * 2, nil
}

func makesRoot(n int) (int, error) {
	return compute(context.Background(), n) // want `library code calls context\.Background`
}

func hasCtxButRoots(ctx context.Context, n int) (int, error) {
	return compute(context.TODO(), n) // want `function has a ctx parameter but calls context\.TODO` `function takes a ctx it never uses`
}

type carrier struct{ ctx context.Context }

func dropsCtx(ctx context.Context, c carrier, n int) (int, error) {
	return compute(c.ctx, n) // want `function takes a ctx it never uses`
}

func threads(ctx context.Context, n int) (int, error) {
	return compute(ctx, n) // ok: the parameter flows through
}

func explicitlyUnused(_ context.Context, c carrier, n int) (int, error) {
	return compute(c.ctx, n) // ok: blank ctx parameter is a visible opt-out
}

func waits(ctx context.Context, ch <-chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, fmt.Errorf("waiting: %w", ctx.Err()) // ok: wrapped cause
	}
}

func derivedErr(ctx context.Context, ch <-chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		err := fmt.Errorf("waiting: %w", ctx.Err())
		return 0, err // ok: variable derived from ctx.Err() in this clause
	}
}

func losesCause(ctx context.Context, ch <-chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, errors.New("cancelled") // want `does not propagate ctx\.Err`
	}
}

func swallowsCancellation(ctx context.Context, ch <-chan int) error {
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return nil // want `does not propagate ctx\.Err`
	}
}
