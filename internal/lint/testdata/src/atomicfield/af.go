// Package atomicfield exercises the atomic-field analyzer: fields used
// through sync/atomic anywhere must be accessed atomically everywhere,
// except on freshly constructed values.
package atomicfield

import "sync/atomic"

// counter mixes atomic and plain access to its fields.
type counter struct {
	n    int64
	hits int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) racyRead() int64 {
	return c.n // want `field counter\.n is accessed atomically elsewhere \(atomic\.AddInt64 at af\.go:\d+\) but read here without sync/atomic`
}

func (c *counter) racyWrite() {
	c.hits = 0 // want `field counter\.hits is accessed atomically elsewhere .* but written here without sync/atomic`
}

// newCounter initializes lock-free on a value it just built — exempt.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	c.hits = 0
	return c
}
