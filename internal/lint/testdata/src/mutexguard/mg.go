// Package mutexguard is the fixture for the mutexguard analyzer:
// `// guarded by <mu>` annotations, the *Locked naming convention, the
// freshly-constructed exemption, and prose comments that must stay inert.
package mutexguard

import "sync"

type counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
	// guarded by mu
	hits int
	// The next comment names no mutex field of this struct, so it is
	// commentary, not an active annotation: guarded by the big lock.
	note string
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // ok: mu locked in this function
	c.hits++
}

func (c *counter) Peek() int {
	return c.n // want `counter\.n is guarded by "mu" but Peek neither locks`
}

func (c *counter) peekLocked() int {
	return c.n // ok: *Locked suffix documents the caller-holds-mu precondition
}

func (c *counter) Note() string {
	return c.note // ok: the annotation was prose, no guard is active
}

func newCounter(start int) *counter {
	c := &counter{}
	c.n = start // ok: freshly constructed, not yet shared
	return c
}

type gauge struct {
	mu sync.RWMutex
	// guarded by mu
	v float64
}

func (g *gauge) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v // ok: RLock is evidence too
}

func (g *gauge) Bump(d float64) {
	g.v += d // want `gauge\.v is guarded by "mu" but Bump neither locks`
}

var _ = newCounter
var _ = (*counter).Peek
var _ = (*counter).peekLocked
var _ = (*counter).Note
var _ = (*gauge).Read
var _ = (*gauge).Bump
