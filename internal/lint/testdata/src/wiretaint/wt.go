// Package wiretaint exercises the wire-taint analyzer: untrusted
// sources, validator cleansing, the Unmarshal pointer-fill pattern,
// range propagation, the validator-returns-error rule, and the
// cross-package naming convention.
package wiretaint

import "encoding/json"

// payload is a decoded wire message.
type payload struct {
	N int `json:"n"`
}

// store is a stand-in cache with a commit sink.
type store struct{ total int }

// Commit trusts its argument — the sink under test.
func (s *store) Commit(n int) { s.total += n }

// Validate is the blessed path from wire bytes to a trusted count.
//
//ioslint:validator
func Validate(raw []byte) (int, error) {
	var p payload
	if err := json.Unmarshal(raw, &p); err != nil {
		return 0, err
	}
	return p.N, nil
}

// Merge looks like a validator to cross-package callers but carries no
// directive, so the naming convention flags it.
func Merge(rows []int) int { // want `exported Merge is treated as a wire validator by cross-package convention`
	sum := 0
	for _, r := range rows {
		sum += r
	}
	return sum
}

// lax is annotated as a validator but cannot reject its input.
type lax struct{}

//ioslint:validator
func (lax) Validate(raw []byte) int { return len(raw) } // want `validator Validate returns no error`

// commitRaw commits wire data that never passed a validator.
func commitRaw(s *store, raw []byte) {
	var p payload
	json.Unmarshal(raw, &p) //ioslint:untrusted wire bytes fill p
	s.Commit(p.N) // want `wire-tainted value reaches Commit without validation`
}

// commitRows shows taint flowing through a range over a decoded slice.
func commitRows(s *store, raw []byte) {
	var rows []payload
	json.Unmarshal(raw, &rows) //ioslint:untrusted wire rows
	for _, r := range rows {
		s.Commit(r.N) // want `wire-tainted value reaches Commit without validation`
	}
}

// fetchCommit cleanses the fetched bytes through Validate before the
// sink — no finding.
func fetchCommit(s *store, fetch func() []byte) {
	//ioslint:untrusted peer bytes
	raw := fetch()

	n, err := Validate(raw)
	if err != nil {
		return
	}
	s.Commit(n)
}

// trustedCommit never touches wire data — no finding.
func trustedCommit(s *store) {
	s.Commit(42)
}
