// Package fingerprint is the fixture for the fingerprint analyzer. Spec
// and badEncoder reproduce the PR-4 near-miss: a backend description
// whose Name participates in cache identity but is skipped by the key
// encoder, so two specs differing only in Name alias one cache entry.
package fingerprint

import "strconv"

// Spec is a miniature of gpusim.Spec: every latency-relevant field is
// fp:"include", commentary is fp:"exempt".
type Spec struct {
	Name           string  `fp:"include"`
	SMs            int     `fp:"include"`
	ContentionCoef float64 `fp:"include"`
	Comment        string  `fp:"exempt"`
}

// goodEncoder consumes every included field, Name through a helper —
// the analyzer follows same-package calls.
//
//ioslint:fingerprint Spec
func goodEncoder(b []byte, s Spec) []byte {
	b = appendString(b, s.Name)
	b = strconv.AppendInt(b, int64(s.SMs), 10)
	return strconv.AppendFloat(b, s.ContentionCoef, 'g', -1, 64)
}

func appendString(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	return append(b, s...)
}

// badEncoder skips Name: the aliasing shape the convention exists to
// rule out.
//
//ioslint:fingerprint Spec
func badEncoder(b []byte, s Spec) []byte { // want `fingerprint encoder badEncoder does not consume Spec\.Name`
	b = strconv.AppendInt(b, int64(s.SMs), 10)
	return strconv.AppendFloat(b, s.ContentionCoef, 'g', -1, 64)
}

// Partial uses fp tags but leaves one field undeclared either way.
type Partial struct {
	A int `fp:"include"`
	B int // want `field B of fingerprinted struct Partial has no fp tag`
}

// Mistagged uses a value outside the include/exempt vocabulary.
type Mistagged struct {
	A int `fp:"include"`
	B int `fp:"maybe"` // want `field B of fingerprinted struct Mistagged has fp:"maybe"`
}

// Untagged has no fp tags at all, so annotating an encoder for it is an
// error: the convention must be adopted on the struct first.
type Untagged struct{ X int }

//ioslint:fingerprint Untagged
func untaggedEncoder(b []byte, u Untagged) []byte { // want `Untagged has no fp-tagged fields`
	return append(b, byte(u.X))
}

//ioslint:fingerprint NoSuchType
func danglingDirective(b []byte) []byte { // want `type NoSuchType not found`
	return b
}
