package lint_test

import (
	"path/filepath"
	"testing"

	"ios/internal/lint"
	"ios/internal/lint/linttest"
)

func TestCtxDiscipline(t *testing.T) {
	linttest.Run(t, lint.CtxDiscipline, filepath.Join("testdata", "src", "ctxdiscipline"))
}
