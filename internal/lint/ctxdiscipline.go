package lint

import (
	"go/ast"
	"go/types"
)

// CtxDiscipline enforces the context-first API contract PR 3 introduced:
// cancellation must thread through every layer, which it cannot do if a
// library function quietly severs the chain. Three rules, applied to
// every non-main package (commands and tests own their lifecycles and
// are exempt):
//
//  1. library code must not manufacture context.Background() or
//     context.TODO() — a fresh root context detaches everything beneath
//     it from the caller's cancellation;
//  2. a function that takes a ctx must not drop it on the floor: calling
//     a ctx-aware callee without ever using the parameter means the
//     signature promises cancellation the body does not deliver;
//  3. a select case receiving from ctx.Done() that returns an error must
//     propagate (a wrap of) ctx.Err(), not a made-up error and not nil —
//     callers distinguish cancellation from failure with errors.Is.
var CtxDiscipline = &Analyzer{
	Name: "ctxdiscipline",
	Doc: "Library functions must not manufacture context.Background/TODO, " +
		"must not ignore a ctx parameter while calling ctx-aware callees, and " +
		"must propagate ctx.Err() when returning on a ctx.Done() path.",
	Run: runCtxDiscipline,
}

func runCtxDiscipline(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // commands legitimately create root contexts
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, fd)
		}
	}
	return nil
}

// checkCtxFunc applies all three rules within one declared function
// (function literals inside it included — they share the enclosing
// function's ctx discipline).
func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	ctxParams := contextParams(pass, fd)

	usesCtxParam := false
	var firstCtxAwareCall *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.Info.ObjectOf(n); obj != nil && ctxParams[obj] {
				usesCtxParam = true
			}
		case *ast.CallExpr:
			if name, ok := backgroundOrTODO(pass, n); ok {
				if len(ctxParams) > 0 {
					pass.Reportf(n.Pos(), "function has a ctx parameter but calls context.%s: pass the caller's ctx (or a context derived from it) so cancellation reaches this call", name)
				} else {
					pass.Reportf(n.Pos(), "library code calls context.%s: thread a caller-provided ctx instead (root contexts belong in cmd/ and tests)", name)
				}
			}
			if firstCtxAwareCall == nil && calleeTakesContext(pass, n) {
				firstCtxAwareCall = n
			}
		case *ast.SelectStmt:
			checkDoneSelect(pass, fd, n)
		}
		return true
	})

	if len(ctxParams) > 0 && !usesCtxParam && firstCtxAwareCall != nil {
		pass.Reportf(firstCtxAwareCall.Pos(), "function takes a ctx it never uses, yet calls a ctx-aware callee here: pass the ctx through (or drop the parameter)")
	}
}

// contextParams returns the objects of fd's context.Context parameters.
// Blank-named parameters are excluded: `_ context.Context` is an
// explicit, visible statement that the context is unused.
func contextParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	m := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return m
	}
	for _, fld := range fd.Type.Params.List {
		if t := pass.Info.TypeOf(fld.Type); t == nil || !isContextType(t) {
			continue
		}
		for _, name := range fld.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.Info.Defs[name]; obj != nil {
				m[obj] = true
			}
		}
	}
	return m
}

// backgroundOrTODO reports whether call is context.Background() or
// context.TODO(), returning the function name.
func backgroundOrTODO(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// calleeTakesContext reports whether call's callee's first parameter is
// a context.Context.
func calleeTakesContext(pass *Pass, call *ast.CallExpr) bool {
	fn := calledFunc(pass, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkDoneSelect applies rule 3 to one select statement: every return
// in a `case <-ctx.Done():` clause whose function returns an error must
// involve ctx.Err() (or context.Cause), directly or via a variable
// assigned from it within the clause.
func checkDoneSelect(pass *Pass, fd *ast.FuncDecl, sel *ast.SelectStmt) {
	if !funcReturnsError(pass, fd) {
		return
	}
	for _, stmt := range sel.Body.List {
		clause, ok := stmt.(*ast.CommClause)
		if !ok || clause.Comm == nil {
			continue
		}
		ctxExpr := doneRecv(pass, clause.Comm)
		if ctxExpr == nil {
			continue
		}
		// Variables assigned from ctx.Err()-involving expressions within
		// the clause count as propagating it.
		derived := map[types.Object]bool{}
		for _, s := range clause.Body {
			ast.Inspect(s, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					for i, rhs := range as.Rhs {
						if i < len(as.Lhs) && involvesCtxErr(pass, rhs, derived) {
							if id, ok := as.Lhs[i].(*ast.Ident); ok {
								if obj := pass.Info.ObjectOf(id); obj != nil {
									derived[obj] = true
								}
							}
						}
					}
				}
				return true
			})
		}
		for _, s := range clause.Body {
			ast.Inspect(s, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // its own function, its own returns
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				if len(ret.Results) == 0 {
					// Naked return: named error result must have been
					// assigned a derived value in this clause.
					if !anyDerived(derived) {
						pass.Reportf(ret.Pos(), "return on ctx.Done() path loses the cancellation cause: set the error result from ctx.Err() (wrapped: fmt.Errorf(\"...: %%w\", ctx.Err()))")
					}
					return true
				}
				last := ret.Results[len(ret.Results)-1]
				if !involvesCtxErr(pass, last, derived) {
					pass.Reportf(ret.Pos(), "return on ctx.Done() path does not propagate ctx.Err(): callers must be able to errors.Is the result against context.Canceled/DeadlineExceeded (wrap it: fmt.Errorf(\"...: %%w\", ctx.Err()))")
				}
				return true
			})
		}
	}
}

// anyDerived reports whether any ctx.Err()-derived variable exists.
func anyDerived(derived map[types.Object]bool) bool { return len(derived) > 0 }

// doneRecv returns the context expression of a `case <-ctx.Done():`
// comm statement, or nil.
func doneRecv(pass *Pass, comm ast.Stmt) ast.Expr {
	expr, ok := comm.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	un, ok := expr.X.(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	call, ok := un.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	s, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != "Done" {
		return nil
	}
	if t := pass.Info.TypeOf(s.X); t == nil || !isContextType(t) {
		return nil
	}
	return s.X
}

// involvesCtxErr reports whether expr contains a call to
// (context.Context).Err, context.Cause, or a variable previously derived
// from one.
func involvesCtxErr(pass *Pass, expr ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if s, ok := n.Fun.(*ast.SelectorExpr); ok {
				if s.Sel.Name == "Err" {
					if t := pass.Info.TypeOf(s.X); t != nil && isContextType(t) {
						found = true
					}
				}
				if fn, ok := pass.Info.Uses[s.Sel].(*types.Func); ok && fn.Pkg() != nil &&
					fn.Pkg().Path() == "context" && fn.Name() == "Cause" {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.Info.ObjectOf(n); obj != nil && derived[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// funcReturnsError reports whether fd's last result is of type error.
func funcReturnsError(pass *Pass, fd *ast.FuncDecl) bool {
	sig, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := sig.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
