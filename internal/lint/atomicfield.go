package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField mechanizes the Server.inferReqs bug class: once any code
// path accesses a struct field through sync/atomic
// (Add/Load/Store/Swap/CompareAndSwap on its address), every access
// must be atomic — a single plain read or write silently races with the
// atomic writers and the race detector only catches it if a test
// happens to exercise both paths at once. The analyzer collects every
// field whose address reaches a sync/atomic call anywhere in the
// package, then flags every other (non-atomic) read or write of those
// fields. Accesses on a value the function just built from a composite
// literal are exempt (constructors initialize lock-free), as are test
// files. Migrating the field to atomic.Int64 and friends removes the
// hazard by construction — the typed API has no plain accessors.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "Struct fields accessed via sync/atomic anywhere must never be " +
		"read or written non-atomically elsewhere.",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: find fields used atomically and remember the sanctioned
	// &x.f selector nodes inside those calls.
	atomicAt := make(map[*types.Var]string)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicOpName(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := unparenExpr(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v := fieldVarOf(pass, sel)
				if v == nil {
					continue
				}
				sanctioned[sel] = true
				if _, seen := atomicAt[v]; !seen {
					atomicAt[v] = "atomic." + fn.Name() + " at " + relPosition(pass, call.Pos())
				}
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields is a finding.
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		writes := collectWriteTargets(f)
		walkFuncs(f, func(n ast.Node, stack funcStack) {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				v := fieldVarOf(pass, sel)
				if v == nil {
					return true
				}
				op, tracked := atomicAt[v]
				if !tracked {
					return true
				}
				if freshlyConstructed(pass, fd, sel.X) {
					return true
				}
				kind := "read"
				if writes[sel] {
					kind = "written"
				}
				pass.Reportf(sel.Pos(), "field %s.%s is accessed atomically elsewhere (%s) but %s here without sync/atomic: mixed access races — use the atomic API everywhere or migrate the field to the typed atomic.* form",
					ownerTypeName(pass, sel), v.Name(), op, kind)
				return true
			})
		})
	}
	return nil
}

// isAtomicOpName matches the sync/atomic package-level accessors
// (AddInt64, LoadUint32, StorePointer, SwapInt32, CompareAndSwapInt64…).
func isAtomicOpName(name string) bool {
	for _, prefix := range [...]string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// fieldVarOf resolves sel to the struct field it selects, or nil.
func fieldVarOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// ownerTypeName names the receiver type of a field selection, for
// messages.
func ownerTypeName(pass *Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return "?"
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.TypeString(t, nil)
}

// collectWriteTargets indexes the selector expressions a file assigns
// to (plain assignment, op-assign, ++/--), to distinguish racy writes
// from racy reads in messages.
func collectWriteTargets(f *ast.File) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if sel, ok := unparenExpr(l).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := unparenExpr(n.X).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
		return true
	})
	return writes
}
