package lint_test

import (
	"path/filepath"
	"testing"

	"ios/internal/lint"
	"ios/internal/lint/linttest"
)

func TestMutexGuard(t *testing.T) {
	linttest.Run(t, lint.MutexGuard, filepath.Join("testdata", "src", "mutexguard"))
}
