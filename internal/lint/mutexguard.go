package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MutexGuard checks `// guarded by <mu>` field annotations: a field so
// annotated may only be accessed in functions that (somewhere in their
// body) lock that mutex on the same receiver chain, or that declare the
// precondition in their name with a "Locked" suffix. The check is
// intra-procedural and conservative by design — it cannot prove the lock
// is held at the access, only that the function participates in the
// locking discipline at all — which is exactly the class of mistake that
// slips through review: a new method on a sharded cache or the batching
// queue that touches guarded state without taking the lock anywhere.
//
// The annotation activates only when <mu> names a sync.Mutex/RWMutex
// field of the same struct; prose like "guarded by the cache mutex"
// stays commentary. Accesses through a value the function itself builds
// with a composite literal (constructors) are exempt: the object is not
// yet shared.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc: "Fields annotated `// guarded by <mu>` must only be accessed in " +
		"functions that lock <mu> on the same receiver (or are *Locked " +
		"helpers documenting the precondition).",
	Run: runMutexGuard,
}

// guardedField records one annotation: the struct type, field, and the
// guarding mutex field's name.
type guardedField struct {
	structType *types.Named
	mutexName  string
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)\b`)

func runMutexGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		checkGuardedAccesses(pass, f, guards)
	}
	return nil
}

// collectGuards finds active `guarded by <mu>` annotations on struct
// fields declared in this package.
func collectGuards(pass *Pass) map[*types.Var]guardedField {
	guards := make(map[*types.Var]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			def, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := def.Type().(*types.Named)
			if !ok {
				return true
			}
			tstruct, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" || !isMutexField(tstruct, mu) {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardedField{structType: named, mutexName: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexField reports whether st has a field named mu of a sync mutex
// type.
func isMutexField(st *types.Struct, mu string) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != mu {
			continue
		}
		return isMutexType(f.Type())
	}
	return false
}

// checkGuardedAccesses walks every function in f and verifies guarded
// field accesses against the function's lock evidence.
func checkGuardedAccesses(pass *Pass, f *ast.File, guards map[*types.Var]guardedField) {
	walkFuncs(f, func(n ast.Node, stack funcStack) {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return
		}
		if fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
			return
		}
		locked := lockEvidence(pass, fd.Body)
		// Function literals inherit the declaring function's evidence:
		// deferred unlocks and callback closures run under a variety of
		// disciplines, and splitting their evidence produces more noise
		// than signal at this analyzer's (deliberately coarse) precision.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			g, ok := guards[v]
			if !ok {
				return true
			}
			base := types.ExprString(sel.X)
			if locked[lockKey{base, g.mutexName}] {
				return true
			}
			if freshlyConstructed(pass, fd, sel.X) {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %q but %s neither locks %s.%s nor is named *Locked (lock the mutex, rename the helper, or annotate a deliberate exception)",
				g.structType.Obj().Name(), v.Name(), g.mutexName, fd.Name.Name, base, g.mutexName)
			return true
		})
	})
}

// lockKey identifies one (receiver chain, mutex field) lock site.
type lockKey struct {
	base, mu string
}

// lockEvidence scans a function body for x.mu.Lock()/RLock() calls
// (direct or deferred) and returns the set of locked (receiver, mutex)
// pairs.
func lockEvidence(pass *Pass, body *ast.BlockStmt) map[lockKey]bool {
	locked := make(map[lockKey]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (fun.Sel.Name != "Lock" && fun.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := fun.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		locked[lockKey{types.ExprString(muSel.X), muSel.Sel.Name}] = true
		return true
	})
	return locked
}

// freshlyConstructed reports whether the root identifier of base is a
// local variable of fd initialized from a composite literal — a value
// this function just built and has not yet shared, which constructors
// may populate lock-free.
func freshlyConstructed(pass *Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	root := rootIdent(base)
	if root == nil {
		return false
	}
	obj := pass.Info.ObjectOf(root)
	if obj == nil || obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
		return false
	}
	fresh := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || fresh {
			return !fresh
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.Info.ObjectOf(id) != obj || i >= len(as.Rhs) {
				continue
			}
			rhs := as.Rhs[i]
			if un, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = un.X
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				fresh = true
			}
		}
		return !fresh
	})
	return fresh
}

// rootIdent returns the leftmost identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
