package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicDirective marks a package whose outputs must be pure
// functions of its inputs: place the comment (verbatim, on its own line)
// in any file of the package, conventionally next to the package clause.
const DeterministicDirective = "ioslint:deterministic"

// Determinism flags nondeterminism hazards in declared-deterministic
// packages. The repository's replay guarantees — bit-identical schedules
// across cache hits and restarts, a batching queue that is a pure state
// machine over explicit timestamps — hold only while those packages
// never read a wall clock, never draw from global (unseeded) random
// state, and never let Go's randomized map iteration order reach an
// output: an append that escapes the loop unsorted, a serialized byte
// stream, or a fingerprint encoder.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "In packages marked //ioslint:deterministic, flag wall-clock reads " +
		"(time.Now, time.Sleep, ...), global math/rand state, and ranging over " +
		"a map where the iteration order can reach an append, serialized " +
		"output, or fingerprint encoder.",
	Run: runDeterminism,
}

// bannedTimeFuncs are the time-package functions that read or depend on
// the wall clock. Constructing explicit times (time.Date, time.Unix) and
// pure arithmetic (Duration methods) stay allowed.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs are the math/rand constructors that produce
// explicitly seeded generators — the deterministic idiom the rest of the
// repository uses. Everything else at package scope draws from (or
// perturbs) the global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !hasDirective(pass.Files, DeterministicDirective) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue // tests may use clocks and unsorted maps freely
		}
		checkBannedRefs(pass, f)
		walkFuncs(f, func(n ast.Node, stack funcStack) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			if t := pass.Info.TypeOf(rs.X); t == nil || !isMap(t) {
				return
			}
			checkMapRange(pass, rs, stack.enclosing())
		})
	}
	return nil
}

// checkBannedRefs reports every reference (call or value use) to a
// banned time or global math/rand function.
func checkBannedRefs(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Intn) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "time.%s in a deterministic package: outputs must not depend on the wall clock (inject a clock or take timestamps as input)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRandFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "global %s.%s in a deterministic package: draw from an explicitly seeded *rand.Rand instead", pathBase(fn.Pkg().Path()), fn.Name())
			}
		}
		return true
	})
}

// checkMapRange inspects one range-over-map body for order-sensitive
// sinks. Two hazard classes:
//
//   - an append whose destination outlives the loop and is never sorted
//     afterwards in the same function (the sorted-keys idiom — append
//     then sort.X/slices.SortX — is accepted);
//   - a call to a serialization-shaped callee (Write*, Encode*,
//     Marshal*, Fprint*, append*/Append* key builders, anything named
//     *Fingerprint*) while iterating, which bakes the random order into
//     an output byte stream directly.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, enclosing ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				dst, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(dst)
				if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
					continue // loop-local accumulator dies with the iteration
				}
				if sortedAfter(pass, enclosing, obj) {
					continue
				}
				pass.Reportf(call.Pos(), "append to %q inside range over map: iteration order is nondeterministic and the result is never sorted in this function (sort it, or iterate sorted keys)", dst.Name)
			}
		case *ast.CallExpr:
			name, ok := sinkCalleeName(pass, n)
			if ok {
				pass.Reportf(n.Pos(), "call to %s inside range over map: nondeterministic iteration order reaches serialized output", name)
			}
		}
		return true
	})
}

// sinkCalleeName reports whether call's callee is serialization-shaped
// and returns its display name.
func sinkCalleeName(pass *Pass, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		if isBuiltinAppend(pass, call) {
			return "", false // handled by the append rule
		}
		name = fun.Name
	default:
		return "", false
	}
	switch {
	case strings.Contains(name, "Fingerprint"),
		strings.HasPrefix(name, "Write"),
		strings.HasPrefix(name, "Encode"),
		strings.HasPrefix(name, "Marshal"),
		strings.HasPrefix(name, "Fprint"),
		strings.HasPrefix(name, "Append"),
		strings.HasPrefix(name, "append"):
		return name, true
	}
	return "", false
}

// sortedAfter reports whether the enclosing function contains a
// sort/slices call taking obj as an argument — the canonical
// collect-then-sort idiom that makes a map-range append deterministic
// again.
func sortedAfter(pass *Pass, enclosing ast.Node, obj types.Object) bool {
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.Info.Uses[pkgIdent].(*types.PkgName); !ok ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
