package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeak requires every `go` statement in a library package to carry a
// termination witness — structural evidence that the goroutine cannot
// run (or block) forever once its owner is done with it:
//
//   - a WaitGroup witness: the goroutine (or the same-package function
//     it runs) calls (*sync.WaitGroup).Done, so someone can Wait for it;
//   - a context witness: it checks ctx.Done() or ctx.Err(), so
//     cancelling the context stops it;
//   - bounded work: its body contains no loops other than ranging over a
//     channel (which terminates when the channel closes).
//
// A goroutine may also not be spawned while holding a tracked mutex:
// the goroutine can outlive the critical section, and the spawn point
// hides which state it was licensed to touch.
//
// Deliberate daemons (a background executor stopped by Close, an HTTP
// server stopped by Shutdown) are annotated at the spawn site with
// //lint:ioslint-ignore goroleak <reason>. Package main and test files
// are exempt: their goroutines die with the process or the test.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "Every `go` statement in a library package needs a termination " +
		"witness (WaitGroup.Done, a ctx.Done/ctx.Err check, or bounded work) " +
		"and must not be spawned while holding a mutex.",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	la := newLockAnalysis(pass)
	la.events = lockEvents{
		goStmt: func(held []lockUse, g *ast.GoStmt) {
			for _, h := range held {
				pass.Reportf(g.Pos(), "goroutine spawned while holding %s (locked at %s): it can outlive the critical section — move the spawn after the unlock",
					h.id, relPosition(pass, h.pos))
			}
			if ok, why := goroWitness(pass, la.index, g); !ok {
				pass.Reportf(g.Pos(), "goroutine has no termination witness (%s); tie it to a WaitGroup or a context, bound its work, or annotate a deliberate daemon with //lint:ioslint-ignore goroleak <reason>", why)
			}
		},
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		walkFuncs(f, func(n ast.Node, stack funcStack) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					la.walkFunc(n.Body)
				}
			case *ast.FuncLit:
				la.walkFunc(n.Body)
			}
		})
	}
	return nil
}

// goroWitness looks for a termination witness in the spawned function.
func goroWitness(pass *Pass, index map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) (bool, string) {
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		fn := calledFunc(pass, g.Call)
		if fn == nil || index[fn] == nil {
			return false, "the callee's body is outside this package, so nothing here proves it stops"
		}
		body = index[fn].Body
	}
	if body == nil {
		return false, "the callee has no body"
	}
	w := witnessScan(pass, index, body, make(map[*ast.BlockStmt]bool), 0)
	switch {
	case w.wgDone:
		return true, ""
	case w.ctxCheck:
		return true, ""
	case !w.unboundedLoop:
		return true, ""
	}
	return false, "no WaitGroup.Done, no ctx.Done/ctx.Err check, and an unbounded loop"
}

// witnessFacts accumulates evidence across a body and the same-package
// functions it calls directly (depth-limited).
type witnessFacts struct {
	wgDone        bool
	ctxCheck      bool
	unboundedLoop bool
}

func witnessScan(pass *Pass, index map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, seen map[*ast.BlockStmt]bool, depth int) witnessFacts {
	var w witnessFacts
	if seen[body] || depth > 2 {
		return w
	}
	seen[body] = true
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			w.unboundedLoop = true
		case *ast.RangeStmt:
			// Ranging over a channel terminates when it closes — that is
			// itself a witness-grade bound; other ranges are finite too.
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); !ok && isInfiniteRange(t) {
					w.unboundedLoop = true
				}
			}
		case *ast.SelectorExpr:
			if (n.Sel.Name == "Done" || n.Sel.Name == "Err") && pass.Info.TypeOf(n.X) != nil && isContextType(pass.Info.TypeOf(n.X)) {
				w.ctxCheck = true
			}
		case *ast.CallExpr:
			if fn := calledFunc(pass, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" && receiverTypeName(fn) == "WaitGroup" {
					w.wgDone = true
				}
				if fn.Pkg() == pass.Pkg {
					if fd := index[fn]; fd != nil && fd.Body != nil {
						sub := witnessScan(pass, index, fd.Body, seen, depth+1)
						w.wgDone = w.wgDone || sub.wgDone
						w.ctxCheck = w.ctxCheck || sub.ctxCheck
						w.unboundedLoop = w.unboundedLoop || sub.unboundedLoop
					}
				}
			}
		}
		return true
	})
	return w
}

// isInfiniteRange reports whether ranging over a value of type t can
// iterate forever: only integer range-over-func could, which the module
// (go 1.21) does not use — ranges over slices, maps, strings, arrays and
// integers are finite.
func isInfiniteRange(t types.Type) bool {
	_, isSig := t.Underlying().(*types.Signature)
	return isSig
}
