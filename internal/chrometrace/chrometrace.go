// Package chrometrace exports simulated schedule executions in the Chrome
// Trace Event format (the "trace_events" JSON consumed by
// chrome://tracing, Perfetto, and speedscope), so a schedule's stream
// overlap can be inspected visually — the reproduction's analogue of
// looking at an Nsight timeline.
package chrometrace

import (
	"encoding/json"
	"fmt"
	"io"

	"ios/internal/gpusim"
)

// event is one complete ("X" phase) trace event. Times are microseconds.
type event struct {
	Name     string            `json:"name"`
	Category string            `json:"cat"`
	Phase    string            `json:"ph"`
	TS       float64           `json:"ts"`
	Dur      float64           `json:"dur"`
	PID      int               `json:"pid"`
	TID      int               `json:"tid"`
	Args     map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Write serializes a kernel timeline as a Chrome trace. Streams map to
// trace threads, so concurrent groups appear as parallel rows. Launch
// overhead is emitted as a separate "launch" slice preceding each kernel.
func Write(w io.Writer, tl gpusim.Timeline, device string) error {
	tf := traceFile{DisplayTimeUnit: "ms"}
	for _, s := range tl {
		if s.Start > s.Launch {
			tf.TraceEvents = append(tf.TraceEvents, event{
				Name: s.Name + " (launch)", Category: "launch", Phase: "X",
				TS: s.Launch * 1e6, Dur: (s.Start - s.Launch) * 1e6,
				PID: 1, TID: s.Stream + 1,
			})
		}
		tf.TraceEvents = append(tf.TraceEvents, event{
			Name: s.Name, Category: "kernel", Phase: "X",
			TS: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
			PID: 1, TID: s.Stream + 1,
			Args: map[string]string{"device": device},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tf); err != nil {
		return fmt.Errorf("chrometrace: %w", err)
	}
	return nil
}
