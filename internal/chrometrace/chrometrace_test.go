package chrometrace

import (
	"bytes"
	"encoding/json"
	"testing"

	"ios/internal/gpusim"
)

func TestWriteProducesValidTraceJSON(t *testing.T) {
	tl := gpusim.Timeline{
		{Name: "conv_a", Stream: 0, Launch: 0, Start: 4e-6, End: 100e-6},
		{Name: "conv_b", Stream: 1, Launch: 0, Start: 4e-6, End: 90e-6},
	}
	var buf bytes.Buffer
	if err := Write(&buf, tl, "Tesla V100"); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	// 2 kernels + 2 launch slices.
	if len(parsed.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(parsed.TraceEvents))
	}
	for _, e := range parsed.TraceEvents {
		if e.Phase != "X" || e.Dur <= 0 {
			t.Errorf("bad event %+v", e)
		}
	}
	// Streams map to distinct tids.
	tids := map[int]bool{}
	for _, e := range parsed.TraceEvents {
		tids[e.TID] = true
	}
	if len(tids) != 2 {
		t.Errorf("tids = %v, want 2 distinct", tids)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("display unit = %q", parsed.DisplayTimeUnit)
	}
}

func TestWriteSkipsZeroLaunch(t *testing.T) {
	tl := gpusim.Timeline{{Name: "k", Stream: 0, Launch: 1e-6, Start: 1e-6, End: 2e-6}}
	var buf bytes.Buffer
	if err := Write(&buf, tl, "dev"); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != 1 {
		t.Errorf("events = %d, want 1 (no launch slice)", len(parsed.TraceEvents))
	}
}
