package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"ios/internal/bitset"
	"ios/internal/graph"
	"ios/internal/profile"
	"ios/internal/schedule"
)

// Stats reports the cost of one optimization run — the quantities the
// paper tracks for Table 1 and the Figure 9 search-cost axis.
type Stats struct {
	// Blocks is the number of blocks optimized.
	Blocks int
	// States is the number of distinct DP states (subsets S) visited.
	States int
	// Transitions is the number of (S, S') pairs examined — line 17 of
	// Algorithm 1, the paper's #(S, S').
	Transitions int
	// Measurements is the number of simulator stage measurements
	// performed (cache misses in the profiler).
	Measurements int
	// WallTime is the optimization time.
	WallTime time.Duration
}

// Result bundles an optimized schedule with its search statistics.
type Result struct {
	Schedule *schedule.Schedule
	Stats    Stats
}

// Optimize runs IOS over the whole graph: partitions it into blocks, finds
// the optimal schedule for each block with the DP, and concatenates the
// per-block stage lists.
func Optimize(g *graph.Graph, prof *profile.Profiler, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	m0 := prof.Measurements
	blocks, err := g.Partition(opts.MaxBlockOps)
	if err != nil {
		return nil, err
	}
	sched := &schedule.Schedule{Graph: g}
	stats := Stats{Blocks: len(blocks)}

	// Blocks are independent subproblems; search them in parallel on
	// forked profilers (same device model, separate caches). Results are
	// deterministic regardless of interleaving.
	type blockOut struct {
		stages []schedule.Stage
		stats  Stats
		meas   int
		err    error
	}
	outs := make([]blockOut, len(blocks))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, b := range blocks {
		wg.Add(1)
		go func(i int, b *graph.Block) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bp := prof.Fork()
			stages, bstats, err := OptimizeBlock(b, bp, opts)
			outs[i] = blockOut{stages: stages, stats: bstats, meas: bp.Measurements, err: err}
		}(i, b)
	}
	wg.Wait()
	for i, out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("core: block %d: %w", blocks[i].Index, out.err)
		}
		sched.Stages = append(sched.Stages, out.stages...)
		stats.States += out.stats.States
		stats.Transitions += out.stats.Transitions
		stats.Measurements += out.meas
	}
	stats.Measurements += prof.Measurements - m0
	stats.WallTime = time.Since(start)
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("core: produced invalid schedule: %w", err)
	}
	return &Result{Schedule: sched, Stats: stats}, nil
}

// choice records the last stage of the optimal schedule of a state
// (Algorithm 1's choice[S]).
type choice struct {
	ending   bitset.Set
	strategy schedule.Strategy
	// serial marks the serial-tail candidate: the whole ending executes
	// as one group on a single stream (see scheduler).
	serial bool
}

// stageResult memoizes GENERATESTAGE per ending within a block, keyed by
// the ending bitmask — far cheaper than the profiler's name-keyed cache on
// the DP's hot path (the same ending is examined from many states).
type stageResult struct {
	lat      float64
	strategy schedule.Strategy
	ok       bool
}

// blockScheduler carries the DP state for one block.
type blockScheduler struct {
	b      *graph.Block
	prof   *profile.Profiler
	opts   Options
	cost   map[bitset.Set]float64
	last   map[bitset.Set]choice
	stages map[bitset.Set]stageResult
	stats  Stats
}

// OptimizeBlock runs the dynamic program on a single block and returns its
// stage list. Exposed for experiments that study one block (Table 1,
// Figure 9, Figure 10).
func OptimizeBlock(b *graph.Block, prof *profile.Profiler, opts Options) ([]schedule.Stage, Stats, error) {
	opts = opts.withDefaults()
	bs := &blockScheduler{
		b: b, prof: prof, opts: opts,
		cost:   make(map[bitset.Set]float64),
		last:   make(map[bitset.Set]choice),
		stages: make(map[bitset.Set]stageResult),
	}
	all := b.All()
	if all.IsEmpty() {
		return nil, bs.stats, nil
	}
	if _, err := bs.scheduler(all); err != nil {
		return nil, bs.stats, err
	}
	// Schedule construction (Algorithm 1 L6-11): walk choice[] backwards
	// from the full set, prepending stages.
	var rev []schedule.Stage
	for s := all; !s.IsEmpty(); {
		c, ok := bs.last[s]
		if !ok {
			return nil, bs.stats, fmt.Errorf("no feasible schedule for state %v (over-restrictive strategy set?)", s)
		}
		rev = append(rev, bs.buildStage(c))
		s = s.Diff(c.ending)
	}
	stages := make([]schedule.Stage, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		stages = append(stages, rev[i])
	}
	return stages, bs.stats, nil
}

// scheduler is Algorithm 1's SCHEDULER: the memoized recursion
// cost[S] = min over endings S' of cost[S−S'] + stage_latency[S'].
func (bs *blockScheduler) scheduler(s bitset.Set) (float64, error) {
	if s.IsEmpty() {
		return 0, nil
	}
	if v, ok := bs.cost[s]; ok {
		return v, nil
	}
	bs.stats.States++
	best := math.Inf(1)
	var bestChoice choice
	var firstErr error

	// Serial-tail candidate: close the whole remaining suffix as one
	// stage whose single group runs every operator back-to-back on one
	// stream. The pruning strategy caps the size of *parallel* groups
	// (Section 4.3); a pure serial chain involves no inter-operator
	// parallelism, so admitting it at any length only restores schedules
	// the unpruned space already contains (in particular, the stream-
	// sequential schedule, which IOS must never lose to).
	bs.stats.Transitions++
	if lat := bs.prof.MeasureSerialChain(bs.nodesOf(s)); lat < best {
		best = lat
		bestChoice = choice{ending: s, strategy: schedule.Concurrent, serial: true}
	}

	forEachEnding(bs.b, s, bs.opts.Pruning, func(ending bitset.Set) bool {
		bs.stats.Transitions++
		lat, strat, ok, err := bs.generateStage(ending)
		if err != nil {
			firstErr = err
			return false
		}
		if !ok {
			return true // infeasible under the strategy restriction
		}
		sub, err := bs.scheduler(s.Diff(ending))
		if err != nil {
			firstErr = err
			return false
		}
		if total := sub + lat; total < best {
			best = total
			bestChoice = choice{ending: ending, strategy: strat}
		}
		return true
	})
	if firstErr != nil {
		return 0, firstErr
	}
	if !math.IsInf(best, 1) {
		bs.cost[s] = best
		bs.last[s] = bestChoice
	}
	return best, nil
}

// generateStage is Algorithm 1's GENERATESTAGE: choose the better
// parallelization strategy for the candidate stage and return its
// measured latency. ok=false means the stage is infeasible under the
// configured StrategySet (e.g. MergeOnly with unmergeable multi-op sets).
func (bs *blockScheduler) generateStage(ending bitset.Set) (lat float64, strat schedule.Strategy, ok bool, err error) {
	if r, hit := bs.stages[ending]; hit {
		return r.lat, r.strategy, r.ok, nil
	}
	defer func() {
		if err == nil {
			bs.stages[ending] = stageResult{lat: lat, strategy: strat, ok: ok}
		}
	}()
	nodes := bs.nodesOf(ending)
	groups := bs.groupNodes(ending)

	// Under MergeOnly (the paper's IOS-Merge variant) stages may not use
	// inter-operator parallelism: a concurrent stage is admissible only
	// when it degenerates to a single sequential chain, which makes the
	// variant coincide with the sequential schedule on networks without
	// merge opportunities (Section 6.1's RandWire/NasNet observation).
	concurrentAllowed := bs.opts.Strategies != MergeOnly || len(groups) == 1
	mergeAllowed := bs.opts.Strategies != ParallelOnly && profile.CanMerge(nodes)

	lConc, lMerge := math.Inf(1), math.Inf(1)
	if concurrentAllowed {
		st := schedule.Stage{Strategy: schedule.Concurrent, Groups: groups}
		lConc, err = bs.prof.MeasureStageUncached(st)
		if err != nil {
			return 0, 0, false, err
		}
	}
	if mergeAllowed {
		st := schedule.Stage{Strategy: schedule.Merge, Groups: [][]*graph.Node{nodes}}
		lMerge, err = bs.prof.MeasureStageUncached(st)
		if err != nil {
			return 0, 0, false, err
		}
	}
	switch {
	case math.IsInf(lConc, 1) && math.IsInf(lMerge, 1):
		return 0, 0, false, nil
	case lConc <= lMerge:
		return lConc, schedule.Concurrent, true, nil
	default:
		return lMerge, schedule.Merge, true, nil
	}
}

// buildStage materializes a schedule stage from a DP choice.
func (bs *blockScheduler) buildStage(c choice) schedule.Stage {
	switch {
	case c.serial:
		return bs.serialStage(c.ending)
	case c.strategy == schedule.Merge:
		return schedule.Stage{Strategy: schedule.Merge, Groups: [][]*graph.Node{bs.nodesOf(c.ending)}}
	default:
		return schedule.Stage{Strategy: schedule.Concurrent, Groups: bs.groupNodes(c.ending)}
	}
}

// serialStage wraps an operator set as one single-group concurrent stage:
// every operator issues back-to-back on one stream in topological order.
func (bs *blockScheduler) serialStage(s bitset.Set) schedule.Stage {
	return schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{bs.nodesOf(s)}}
}

// nodesOf converts a block-local bitset to nodes in topological order.
func (bs *blockScheduler) nodesOf(s bitset.Set) []*graph.Node {
	nodes := make([]*graph.Node, 0, s.Len())
	s.ForEach(func(e int) bool {
		nodes = append(nodes, bs.b.Nodes[e])
		return true
	})
	return nodes
}

// groupNodes converts an ending to its connected-component groups of
// nodes.
func (bs *blockScheduler) groupNodes(ending bitset.Set) [][]*graph.Node {
	sets := groupsOf(bs.b, ending)
	groups := make([][]*graph.Node, len(sets))
	for i, gs := range sets {
		groups[i] = bs.nodesOf(gs)
	}
	return groups
}
