package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ios/internal/bitset"
	"ios/internal/blockcache"
	"ios/internal/graph"
	"ios/internal/profile"
	"ios/internal/schedule"
)

// Stats reports the cost of one optimization run — the quantities the
// paper tracks for Table 1 and the Figure 9 search-cost axis.
type Stats struct {
	// Blocks is the number of blocks optimized.
	Blocks int
	// States is the number of distinct DP states (subsets S) visited.
	States int
	// Transitions is the number of (S, S') pairs examined — line 17 of
	// Algorithm 1, the paper's #(S, S').
	Transitions int
	// Measurements is the number of simulator stage measurements
	// performed (cache misses in the profiler).
	Measurements int
	// WallTime is the optimization time.
	WallTime time.Duration
}

// Result bundles an optimized schedule with its search statistics.
type Result struct {
	Schedule *schedule.Schedule
	Stats    Stats
}

// Optimize runs IOS over the whole graph: partitions it into blocks, finds
// the optimal schedule for each block with the DP, and concatenates the
// per-block stage lists. It is OptimizeContext with a background context.
func Optimize(g *graph.Graph, prof *profile.Profiler, opts Options) (*Result, error) {
	//lint:ioslint-ignore ctxdiscipline ctx-free convenience wrapper; cancellable searches use OptimizeContext
	return OptimizeContext(context.Background(), g, prof, opts)
}

// OptimizeContext is Optimize under a context: the search checks ctx
// before any measurement and at every level barrier of each block's DP
// engine, and every engine worker observes cancellation between states —
// so a cancelled search drains promptly (bounded by one in-flight stage
// measurement per worker), discards all partial results, and returns
// ctx.Err() wrapped (errors.Is(err, context.Canceled) /
// context.DeadlineExceeded hold). An uncancelled run is bit-identical to
// Optimize: same schedule, costs, and statistics.
func OptimizeContext(ctx context.Context, g *graph.Graph, prof *profile.Profiler, opts Options) (*Result, error) {
	return OptimizeWithProgress(ctx, g, prof, opts, nil)
}

// OptimizeWithProgress is OptimizeContext with a progress callback:
// progress, when non-nil, receives a Progress snapshot at every level
// barrier of the DP engine. The callback is never invoked concurrently
// and runs on the search's critical path, so it should return quickly.
// Like Options.Workers it is a pure execution knob — it never changes
// what the search returns. (It is a parameter rather than an Options
// field so Options stays a comparable struct.)
func OptimizeWithProgress(ctx context.Context, g *graph.Graph, prof *profile.Profiler, opts Options, progress func(Progress)) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	//lint:ioslint-ignore determinism wall-clock telemetry only; WallTime never feeds schedules, costs, or cache keys
	start := time.Now()
	// Refuse a dead context before the first simulator invocation: a
	// pre-cancelled search must not measure a single stage.
	if err := ctx.Err(); err != nil {
		return nil, wrapCancelled(err)
	}
	m0 := prof.Measurements
	blocks, err := g.Partition(opts.MaxBlockOps)
	if err != nil {
		return nil, err
	}
	opts.tracker = newProgressTracker(progress, len(blocks))
	// Lowering and solo durations are pure per node; compute them once on
	// the root so every per-block fork (and its workers) shares the tables
	// instead of re-lowering its slice of the graph. The solo simulations
	// are counted here instead of lazily inside each block's serial-tail
	// evaluation; the totals are identical.
	prof.Prelower(g.SchedulableNodes())
	sched := &schedule.Schedule{Graph: g}
	stats := Stats{Blocks: len(blocks)}

	// Blocks are independent subproblems; search them in parallel on
	// forked profilers (same device model, shared immutable lowering,
	// separate stage caches). Results are deterministic regardless of
	// interleaving.
	type blockOut struct {
		stages []schedule.Stage
		stats  Stats
		err    error
	}
	outs := make([]blockOut, len(blocks))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, b := range blocks {
		wg.Add(1)
		go func(i int, b *graph.Block) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				outs[i] = blockOut{err: wrapCancelled(err)}
				return
			}
			bp := prof.Fork()
			stages, bstats, err := OptimizeBlockContext(ctx, b, bp, opts)
			outs[i] = blockOut{stages: stages, stats: bstats, err: err}
		}(i, b)
	}
	wg.Wait()
	// A cancelled search reports the cancellation, not whichever block
	// error the goroutine interleaving happened to surface first: partial
	// results are discarded deterministically.
	if err := ctx.Err(); err != nil {
		return nil, wrapCancelled(err)
	}
	for i, out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("core: block %d: %w", blocks[i].Index, out.err)
		}
		sched.Stages = append(sched.Stages, out.stages...)
		stats.States += out.stats.States
		stats.Transitions += out.stats.Transitions
		stats.Measurements += out.stats.Measurements
	}
	stats.Measurements += prof.Measurements - m0
	//lint:ioslint-ignore determinism wall-clock telemetry only; WallTime never feeds schedules, costs, or cache keys
	stats.WallTime = time.Since(start)
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("core: produced invalid schedule: %w", err)
	}
	return &Result{Schedule: sched, Stats: stats}, nil
}

// wrapCancelled wraps a context error so callers can both errors.Is it
// and see where the search stopped.
func wrapCancelled(err error) error {
	return fmt.Errorf("core: search cancelled: %w", err)
}

// choice records the last stage of the optimal schedule of a state
// (Algorithm 1's choice[S]).
type choice struct {
	ending   bitset.Set
	strategy schedule.Strategy
	// serial marks the serial-tail candidate: the whole ending executes
	// as one group on a single stream (see the engine's serial-tail
	// candidate).
	serial bool
}

// OptimizeBlock runs the dynamic program on a single block and returns its
// stage list. Exposed for experiments that study one block (Table 1,
// Figure 9, Figure 10). It is OptimizeBlockContext with a background
// context.
//
// The search is the level-synchronous bottom-up engine of engine.go,
// parallel across opts.Workers goroutines; its costs, schedules, and
// search statistics are identical to the original memoized recursion
// (retained in dp_reference.go as the oracle the property tests compare
// against) for any worker count.
func OptimizeBlock(b *graph.Block, prof *profile.Profiler, opts Options) ([]schedule.Stage, Stats, error) {
	//lint:ioslint-ignore ctxdiscipline ctx-free convenience wrapper; cancellable searches use OptimizeBlockContext
	return OptimizeBlockContext(context.Background(), b, prof, opts)
}

// OptimizeBlockContext is OptimizeBlock under a context: cancellation is
// observed at every level barrier and by every engine worker between
// states, partial results are discarded, and the wrapped ctx.Err() is
// returned (see OptimizeContext).
//
// When a whole-block schedule cache is attached (Options.WithBlockCache)
// and the profiler is noise-free, the block's canonical structural
// fingerprint is consulted first: a hit rebinds the cached schedule onto
// this block's nodes without running the search, a miss claims the
// fingerprint (concurrent searches of the same structure wait for this
// one) and publishes the result on success. A search that fails or is
// cancelled abandons its claim so the fingerprint stays searchable.
func OptimizeBlockContext(ctx context.Context, b *graph.Block, prof *profile.Profiler, opts Options) ([]schedule.Stage, Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, Stats{}, err
	}
	opts = opts.withDefaults()
	if b.All().IsEmpty() {
		return nil, Stats{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, wrapCancelled(err)
	}
	m0 := prof.Measurements

	// The block cache is bypassed while Noise > 0: noisy searches draw
	// from the profiler's RNG stream and are not pure functions of block
	// structure (the measurement cache applies the same rule).
	var claim *blockcache.Claim
	var key []byte
	if bc := opts.blockCache; bc != nil && prof.Noise <= 0 {
		key = blockcache.Fingerprint(b, prof, opts.Fingerprint())
		ent, cl, err := bc.GetOrBegin(ctx, key)
		if err != nil {
			return nil, Stats{}, wrapCancelled(err)
		}
		if cl == nil {
			if stages, rerr := blockcache.Rebind(b, ent); rerr == nil {
				// Keep the progress stream's cumulative counters in sync
				// with the final Stats, which include the recorded cost.
				opts.tracker.emit(b.Index+1, len(b.Nodes), "cached", len(b.Nodes),
					ent.States, ent.Transitions, 0)
				stats := Stats{States: ent.States, Transitions: ent.Transitions,
					Measurements: prof.Measurements - m0}
				return stages, stats, nil
			}
			// A structurally invalid entry (possible only through a
			// corrupted shared cache) falls back to an uncached search
			// rather than failing the optimization.
		} else {
			claim = cl
		}
	}
	committed := false
	if claim != nil {
		// An error, a cancellation, or a panicking backend must not leave
		// the claimed fingerprint wedged for every future requester of a
		// shared cache: abandon so waiters retry and the key stays
		// searchable.
		defer func() {
			if !committed {
				claim.Abandon()
			}
		}()
	}

	e := newEngine(b, prof, opts)
	stages, stats, err := e.run(ctx)
	e.close()
	stats.Measurements = prof.Measurements - m0
	if err != nil {
		return nil, stats, err
	}
	if claim != nil {
		if cs, cerr := blockcache.Canonicalize(b, stages); cerr == nil {
			claim.Commit(&blockcache.Entry{
				Ops:    len(b.Nodes),
				Stages: cs,
				States: stats.States, Transitions: stats.Transitions,
			})
			committed = true
		}
	}
	return stages, stats, nil
}
