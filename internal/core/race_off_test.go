//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; heavy
// full-network tests (minutes under the detector, seconds without) skip
// themselves when it is — their properties are covered race-wise by the
// smaller zoo networks.
const raceEnabled = false
