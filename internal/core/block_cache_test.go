package core

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"ios/internal/blockcache"
	"ios/internal/models"
	"ios/internal/schedule"
)

// TestBlockCacheEquivalenceZoo is the block cache's correctness bar: with
// a whole-block schedule cache attached, Optimize must return bit-identical
// schedules, costs, and state/transition statistics to the uncached oracle
// on every zoo network — cold (the first search fills the cache) and warm
// (every block is served without searching). Only actual search work may
// drop.
func TestBlockCacheEquivalenceZoo(t *testing.T) {
	builders := []models.Builder{
		models.Figure2Block, models.InceptionE, models.SqueezeNet, models.InceptionV3,
	}
	if testing.Short() {
		builders = builders[:3]
	}
	for _, build := range builders {
		g := build(1)
		want, err := Optimize(g, v100Profiler(), Options{})
		if err != nil {
			t.Fatalf("%s: uncached: %v", g.Name, err)
		}
		cache := blockcache.NewCache()
		opts := Options{}.WithBlockCache(cache)
		var coldMisses int64
		for _, phase := range []string{"cold", "warm"} {
			got, err := Optimize(g, v100Profiler(), opts)
			if err != nil {
				t.Fatalf("%s %s: %v", g.Name, phase, err)
			}
			if got.Schedule.String() != want.Schedule.String() {
				t.Fatalf("%s %s: cached schedule differs:\n%s\nvs uncached\n%s",
					g.Name, phase, got.Schedule, want.Schedule)
			}
			if got.Stats.States != want.Stats.States || got.Stats.Transitions != want.Stats.Transitions {
				t.Errorf("%s %s: search statistics differ: %d states/%d transitions vs %d/%d",
					g.Name, phase, got.Stats.States, got.Stats.Transitions,
					want.Stats.States, want.Stats.Transitions)
			}
			st := cache.Stats()
			switch phase {
			case "cold":
				coldMisses = st.Misses
				if blocks := int64(got.Stats.Blocks); coldMisses > blocks {
					t.Errorf("%s: cold run searched %d blocks but the graph has %d", g.Name, coldMisses, blocks)
				}
			case "warm":
				if st.Misses != coldMisses {
					t.Errorf("%s: warm repeat ran %d block searches, want 0", g.Name, st.Misses-coldMisses)
				}
				if st.Hits < int64(got.Stats.Blocks) {
					t.Errorf("%s: warm repeat hit only %d of %d blocks", g.Name, st.Hits, got.Stats.Blocks)
				}
			}
		}
	}
}

// TestBlockCacheNasNetDedup is the acceptance criterion: on full NasNet-A —
// a stack of repeated cells — a cold cached Optimize must run exactly one
// block search per structurally distinct block (strictly fewer than the
// block count), a warm repeat must run zero, and both must return schedules
// bit-identical to the uncached oracle.
func TestBlockCacheNasNetDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full NasNet-A search in -short mode")
	}
	if raceEnabled {
		t.Skip("full NasNet-A search under the race detector (the cache's concurrency is race-tested on the smaller zoo networks)")
	}
	g := models.NasNetA(1)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	prof := v100Profiler()
	distinct := map[string]bool{}
	for _, b := range blocks {
		distinct[string(blockcache.Fingerprint(b, prof, Options{}.withDefaults().Fingerprint()))] = true
	}
	if len(distinct) >= len(blocks) {
		t.Fatalf("NasNet-A has no repeated block structures (%d blocks, %d fingerprints) — dedup impossible", len(blocks), len(distinct))
	}

	uncached, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := blockcache.NewCache()
	opts := Options{}.WithBlockCache(cache)
	cold, err := Optimize(g, v100Profiler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Schedule.String() != uncached.Schedule.String() {
		t.Fatal("cold cached NasNet schedule differs from the uncached oracle")
	}
	if cold.Stats.States != uncached.Stats.States || cold.Stats.Transitions != uncached.Stats.Transitions {
		t.Fatalf("cold cached search statistics differ: %d states/%d transitions vs %d/%d",
			cold.Stats.States, cold.Stats.Transitions, uncached.Stats.States, uncached.Stats.Transitions)
	}
	coldMisses := cache.Stats().Misses
	if coldMisses != int64(len(distinct)) {
		t.Errorf("cold NasNet Optimize ran %d block searches, want exactly the %d distinct structures",
			coldMisses, len(distinct))
	}
	warm, err := Optimize(g, v100Profiler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Schedule.String() != uncached.Schedule.String() {
		t.Fatal("warm cached NasNet schedule differs from the uncached oracle")
	}
	if n := cache.Stats().Misses - coldMisses; n != 0 {
		t.Errorf("warm NasNet repeat still ran %d block searches", n)
	}
	t.Logf("NasNet-A: %d blocks, %d distinct structures, cold searched %d, cache: %+v",
		len(blocks), len(distinct), coldMisses, cache.Stats())
}

// TestBlockCacheWorkerSweepEquivalence: Options.Workers is a pure execution
// knob and is excluded from the fingerprint, so a worker-count sweep against
// ONE shared cache must reuse the same entries — no new searches after the
// first run — and return bit-identical schedules. (A worker-dependent search
// result would make this reuse unsound; this test would catch it.)
func TestBlockCacheWorkerSweepEquivalence(t *testing.T) {
	g := models.InceptionE(1)
	cache := blockcache.NewCache()
	var first *Result
	var firstMisses int64
	for _, workers := range []int{1, 2, 4} {
		res, err := Optimize(g, v100Profiler(), Options{Workers: workers}.WithBlockCache(cache))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = res
			firstMisses = cache.Stats().Misses
			continue
		}
		if res.Schedule.String() != first.Schedule.String() {
			t.Errorf("workers=%d: schedule differs from workers=1", workers)
		}
		if res.Stats.States != first.Stats.States || res.Stats.Transitions != first.Stats.Transitions {
			t.Errorf("workers=%d: search statistics differ: %d/%d vs %d/%d", workers,
				res.Stats.States, res.Stats.Transitions, first.Stats.States, first.Stats.Transitions)
		}
		if n := cache.Stats().Misses; n != firstMisses {
			t.Errorf("workers=%d: ran %d extra block searches (Workers leaked into the fingerprint?)", workers, n-firstMisses)
		}
	}
}

// TestBlockCacheSharedAcrossGraphValues: one cache amortizes across
// *different* graph values of the same architecture — the serving tier's
// repeated-model case. Node identities differ; fingerprints must not.
func TestBlockCacheSharedAcrossGraphValues(t *testing.T) {
	cache := blockcache.NewCache()
	opts := Options{}.WithBlockCache(cache)
	first, err := Optimize(models.InceptionE(1), v100Profiler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses
	res, err := Optimize(models.InceptionE(1), v100Profiler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := cache.Stats().Misses - misses; n != 0 {
		t.Errorf("re-optimizing a rebuilt identical graph ran %d block searches, want 0", n)
	}
	if res.Schedule.String() != first.Schedule.String() {
		t.Error("rebuilt identical graph got a different schedule from the cache")
	}
}

// TestBlockCacheConcurrentOptimize exercises the singleflight path the way
// the serving tier does: many goroutines optimizing the same architecture
// against one shared cache. Exactly one search per distinct structure may
// run (concurrent requesters coalesce onto the in-flight one), every result
// must be bit-identical, and the whole thing must be race-clean (this test
// is part of the -race CI step).
func TestBlockCacheConcurrentOptimize(t *testing.T) {
	g := models.InceptionE(1)
	want, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	prof := v100Profiler()
	distinct := map[string]bool{}
	for _, b := range blocks {
		distinct[string(blockcache.Fingerprint(b, prof, Options{}.withDefaults().Fingerprint()))] = true
	}

	cache := blockcache.NewCache()
	const runs = 8
	scheds := make([]*schedule.Schedule, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Optimize(models.InceptionE(1), v100Profiler(), Options{}.WithBlockCache(cache))
			if err != nil {
				errs[i] = err
				return
			}
			scheds[i] = res.Schedule
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if scheds[i].String() != want.Schedule.String() {
			t.Errorf("run %d: schedule differs from the uncached oracle", i)
		}
	}
	st := cache.Stats()
	if st.Misses != int64(len(distinct)) {
		t.Errorf("%d concurrent runs performed %d block searches, want exactly the %d distinct structures (singleflight broken?)",
			runs, st.Misses, len(distinct))
	}
	if st.Saved() == 0 {
		t.Error("no block searches were saved across concurrent runs")
	}
	t.Logf("concurrent runs: %d searches for %d distinct structures, %d saved (%d hits + %d coalesced)",
		st.Misses, len(distinct), st.Saved(), st.Hits, st.Coalesced)
}

// TestBlockCacheCancelledOptimizeDoesNotPoison: cancelling an Optimize
// mid-search must abandon its in-flight claims so the shared cache stays
// fully usable — a fresh Optimize afterwards succeeds, matches the oracle,
// and fills the cache normally. A wedged or poisoned fingerprint would hang
// or corrupt this second run.
func TestBlockCacheCancelledOptimizeDoesNotPoison(t *testing.T) {
	g := models.InceptionE(1)
	cache := blockcache.NewCache()
	opts := Options{}.WithBlockCache(cache)

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	// Cancel at the first DP level barrier: claims exist, searches are in
	// flight, nothing has committed yet.
	_, err := OptimizeWithProgress(ctx, g, v100Profiler(), opts, func(Progress) {
		once.Do(cancel)
	})
	cancel()
	if err == nil {
		// The cancellation raced the (fast) search to completion; the cache
		// is warm instead — still a valid state for the assertions below.
		t.Log("search completed before the cancellation landed")
	}

	res, err := Optimize(g, v100Profiler(), opts)
	if err != nil {
		t.Fatalf("Optimize after a cancelled run failed: %v", err)
	}
	want, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.String() != want.Schedule.String() {
		t.Error("schedule after a cancelled run differs from the uncached oracle")
	}
	if cache.Len() == 0 {
		t.Error("cache still empty after a successful run (claims left wedged?)")
	}
}

// TestBlockCachePersistCrossRestart is the warm-start story end to end:
// optimize, save the cache to disk, load it into a brand-new cache (a new
// process), and re-optimize — zero block searches, every block a hit, and a
// bit-identical schedule.
func TestBlockCachePersistCrossRestart(t *testing.T) {
	g := models.InceptionV3(1)
	if testing.Short() {
		g = models.InceptionE(1)
	}
	cache := blockcache.NewCache()
	first, err := Optimize(g, v100Profiler(), Options{}.WithBlockCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "blocks.json")
	if err := cache.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	restarted := blockcache.NewCache()
	if _, err := restarted.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restarted.Len() != cache.Len() {
		t.Fatalf("restart loaded %d entries, saved %d", restarted.Len(), cache.Len())
	}
	res, err := Optimize(g, v100Profiler(), Options{}.WithBlockCache(restarted))
	if err != nil {
		t.Fatal(err)
	}
	st := restarted.Stats()
	if st.Misses != 0 {
		t.Errorf("restarted warm run still ran %d block searches", st.Misses)
	}
	if st.Hits < int64(res.Stats.Blocks) {
		t.Errorf("restarted warm run hit only %d of %d blocks", st.Hits, res.Stats.Blocks)
	}
	if res.Schedule.String() != first.Schedule.String() {
		t.Error("restarted warm schedule differs from the original")
	}
	if res.Stats.States != first.Stats.States || res.Stats.Transitions != first.Stats.Transitions {
		t.Errorf("restarted warm statistics differ: %d/%d vs %d/%d",
			res.Stats.States, res.Stats.Transitions, first.Stats.States, first.Stats.Transitions)
	}
}

// TestBlockCacheNoisyProfilerBypasses: noisy searches draw from the
// profiler's RNG per invocation and are not pure functions of block
// structure — they must never read from or write to the shared block cache.
func TestBlockCacheNoisyProfilerBypasses(t *testing.T) {
	g := models.Figure2Block(1)
	cache := blockcache.NewCache()
	prof := v100Profiler()
	prof.Noise, prof.Repeats = 0.05, 3
	prof.SetSeed(7)
	if _, err := Optimize(g, prof, Options{}.WithBlockCache(cache)); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if cache.Len() != 0 || st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("noisy search touched the block cache: %+v", st)
	}

	// A noisy profiler sharing a WARM cache must not read from it either.
	if _, err := Optimize(g, v100Profiler(), Options{}.WithBlockCache(cache)); err != nil {
		t.Fatal(err)
	}
	warmHits := cache.Stats().Hits
	noisy := v100Profiler()
	noisy.Noise, noisy.Repeats = 0.05, 3
	noisy.SetSeed(11)
	if _, err := Optimize(g, noisy, Options{}.WithBlockCache(cache)); err != nil {
		t.Fatal(err)
	}
	if n := cache.Stats().Hits - warmHits; n != 0 {
		t.Errorf("noisy search read %d schedules from the warm block cache", n)
	}
}
