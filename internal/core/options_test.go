package core

import (
	"testing"

	"ios/internal/graph"
)

// graphNew builds a graph with only an input node.
func graphNew() *graph.Graph {
	g := graph.New("empty")
	g.Input("in", graph.Shape{N: 1, C: 3, H: 8, W: 8})
	return g
}

func TestStrategySetString(t *testing.T) {
	if Both.String() != "IOS-Both" || ParallelOnly.String() != "IOS-Parallel" || MergeOnly.String() != "IOS-Merge" {
		t.Error("strategy set names changed")
	}
}

func TestPruningString(t *testing.T) {
	if DefaultPruning.String() != "r=3,s=8" {
		t.Errorf("default pruning string = %q", DefaultPruning.String())
	}
	if NoPruning.String() != "none" {
		t.Errorf("no-pruning string = %q", NoPruning.String())
	}
}

func TestWithDefaults(t *testing.T) {
	// Zero options take the paper defaults.
	o := Options{}.withDefaults()
	if o.Pruning != DefaultPruning {
		t.Errorf("zero options pruning = %v", o.Pruning)
	}
	// Unpruned normalizes negative bounds to unbounded.
	u := Unpruned.withDefaults()
	if u.Pruning.R != 0 || u.Pruning.S != 0 {
		t.Errorf("unpruned normalized to %v", u.Pruning)
	}
	// Explicit pruning is preserved.
	p := Options{Pruning: Pruning{R: 2, S: 5}}.withDefaults()
	if p.Pruning != (Pruning{R: 2, S: 5}) {
		t.Errorf("explicit pruning lost: %v", p.Pruning)
	}
}

func TestMaxStageOps(t *testing.T) {
	if got := DefaultPruning.maxStageOps(); got != 24 {
		t.Errorf("maxStageOps = %d, want 24", got)
	}
	if got := NoPruning.maxStageOps(); got < 1<<20 {
		t.Errorf("unbounded maxStageOps = %d", got)
	}
	if got := (Pruning{R: 2}).maxStageOps(); got < 1<<20 {
		t.Errorf("partial pruning should be unbounded on stage size, got %d", got)
	}
}

func TestOptimizeEmptyGraph(t *testing.T) {
	g := graphNew()
	res, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumStages() != 0 {
		t.Errorf("empty graph produced %d stages", res.Schedule.NumStages())
	}
}
