package core

import (
	"encoding/json"
	"strings"
	"testing"

	"ios/internal/graph"
)

// graphNew builds a graph with only an input node.
func graphNew() *graph.Graph {
	g := graph.New("empty")
	g.Input("in", graph.Shape{N: 1, C: 3, H: 8, W: 8})
	return g
}

func TestStrategySetString(t *testing.T) {
	if Both.String() != "IOS-Both" || ParallelOnly.String() != "IOS-Parallel" || MergeOnly.String() != "IOS-Merge" {
		t.Error("strategy set names changed")
	}
}

func TestPruningString(t *testing.T) {
	if DefaultPruning.String() != "r=3,s=8" {
		t.Errorf("default pruning string = %q", DefaultPruning.String())
	}
	if NoPruning.String() != "none" {
		t.Errorf("no-pruning string = %q", NoPruning.String())
	}
}

func TestWithDefaults(t *testing.T) {
	// Zero options take the paper defaults.
	o := Options{}.withDefaults()
	if o.Pruning != DefaultPruning {
		t.Errorf("zero options pruning = %v", o.Pruning)
	}
	// Unpruned keeps its explicit -1 bounds (unbounded), and applying
	// defaults again must not resurrect the default pruning.
	u := Unpruned.withDefaults()
	if u.Pruning.R > 0 || u.Pruning.S > 0 {
		t.Errorf("unpruned gained bounds: %v", u.Pruning)
	}
	// Options is deliberately a comparable struct (progress callbacks are
	// a parameter of OptimizeWithProgress, not a field), so == works.
	if again := u.withDefaults(); again != u {
		t.Errorf("withDefaults is not idempotent: %+v -> %+v", u, again)
	}
	// Explicit pruning is preserved.
	p := Options{Pruning: Pruning{R: 2, S: 5}}.withDefaults()
	if p.Pruning != (Pruning{R: 2, S: 5}) {
		t.Errorf("explicit pruning lost: %v", p.Pruning)
	}
}

func TestMaxStageOps(t *testing.T) {
	if got := DefaultPruning.maxStageOps(); got != 24 {
		t.Errorf("maxStageOps = %d, want 24", got)
	}
	if got := NoPruning.maxStageOps(); got < 1<<20 {
		t.Errorf("unbounded maxStageOps = %d", got)
	}
	if got := (Pruning{R: 2}).maxStageOps(); got < 1<<20 {
		t.Errorf("partial pruning should be unbounded on stage size, got %d", got)
	}
}

func TestOptimizeEmptyGraph(t *testing.T) {
	g := graphNew()
	res, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumStages() != 0 {
		t.Errorf("empty graph produced %d stages", res.Schedule.NumStages())
	}
}

func TestParseStrategySet(t *testing.T) {
	cases := map[string]StrategySet{
		"":             Both,
		"both":         Both,
		"IOS-Both":     Both,
		"parallel":     ParallelOnly,
		"ios-parallel": ParallelOnly,
		"Merge":        MergeOnly,
		"IOS-Merge":    MergeOnly,
	}
	for in, want := range cases {
		got, err := ParseStrategySet(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategySet(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseStrategySet("quantum"); err == nil {
		t.Error("ParseStrategySet accepted an unknown name")
	}
}

func TestOptionsJSONRoundTrip(t *testing.T) {
	in := Options{Strategies: MergeOnly, Pruning: Pruning{R: 2, S: 4}, MaxBlockOps: 30}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"IOS-Merge"`) {
		t.Errorf("strategy not serialized by name: %s", data)
	}
	var out Options
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
	// The short CLI spellings parse too.
	var short Options
	if err := json.Unmarshal([]byte(`{"strategies": "parallel"}`), &short); err != nil {
		t.Fatal(err)
	}
	if short.Strategies != ParallelOnly {
		t.Errorf("short spelling parsed to %v", short.Strategies)
	}
}

func TestOptionsFingerprint(t *testing.T) {
	if got := (Options{}).Fingerprint(); got != "IOS-Both/r=3,s=8" {
		t.Errorf("zero options fingerprint = %q", got)
	}
	if got := Unpruned.Fingerprint(); got != "IOS-Both/none" {
		t.Errorf("unpruned fingerprint = %q", got)
	}
	if got := (Options{Strategies: ParallelOnly, MaxBlockOps: 40}).Fingerprint(); got != "IOS-Parallel/r=3,s=8/block=40" {
		t.Errorf("fingerprint = %q", got)
	}
	// Equal canonical forms fingerprint identically.
	if (Options{}).Fingerprint() != (Options{Pruning: DefaultPruning}).Fingerprint() {
		t.Error("default and explicit-default options fingerprint differently")
	}
}

func TestWorkersExcludedFromFingerprint(t *testing.T) {
	// Workers changes how the search executes, never its result, so
	// cached schedules must be shared across worker counts.
	a := Options{Workers: 1}.Fingerprint()
	b := Options{Workers: 16}.Fingerprint()
	if a != b {
		t.Errorf("fingerprint depends on Workers: %q vs %q", a, b)
	}
}

func TestWorkersJSONRoundTrip(t *testing.T) {
	var got Options
	data, err := json.Marshal(Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Workers != 7 {
		t.Errorf("workers round-trip = %d, want 7", got.Workers)
	}
}
