package core

// The original single-threaded implementation of Algorithm 1: a memoized
// top-down recursion over endings. The production path is the
// level-synchronous engine in engine.go, which computes the identical
// program; this version is retained verbatim as the independent oracle
// the property and zoo equivalence tests compare the engine against —
// costs, schedules, and search statistics must coincide bit-exactly.

import (
	"fmt"
	"math"

	"ios/internal/bitset"
	"ios/internal/graph"
	"ios/internal/profile"
	"ios/internal/schedule"
)

// stageResult memoizes GENERATESTAGE per ending within a block, keyed by
// the ending bitmask — far cheaper than the profiler's name-keyed cache on
// the DP's hot path (the same ending is examined from many states).
type stageResult struct {
	lat      float64
	strategy schedule.Strategy
	ok       bool
}

// refScheduler carries the reference DP state for one block.
type refScheduler struct {
	b      *graph.Block
	prof   *profile.Profiler
	opts   Options
	cost   map[bitset.Set]float64
	last   map[bitset.Set]choice
	stages map[bitset.Set]stageResult
	stats  Stats
}

// optimizeBlockReference runs the reference dynamic program on a single
// block. Test oracle only; use OptimizeBlock.
func optimizeBlockReference(b *graph.Block, prof *profile.Profiler, opts Options) ([]schedule.Stage, Stats, error) {
	opts = opts.withDefaults()
	bs := &refScheduler{
		b: b, prof: prof, opts: opts,
		cost:   make(map[bitset.Set]float64),
		last:   make(map[bitset.Set]choice),
		stages: make(map[bitset.Set]stageResult),
	}
	all := b.All()
	if all.IsEmpty() {
		return nil, bs.stats, nil
	}
	if _, err := bs.scheduler(all); err != nil {
		return nil, bs.stats, err
	}
	// Schedule construction (Algorithm 1 L6-11): walk choice[] backwards
	// from the full set, prepending stages.
	var rev []schedule.Stage
	for s := all; !s.IsEmpty(); {
		c, ok := bs.last[s]
		if !ok {
			return nil, bs.stats, fmt.Errorf("no feasible schedule for state %v (over-restrictive strategy set?)", s)
		}
		rev = append(rev, bs.buildStage(c))
		s = s.Diff(c.ending)
	}
	stages := make([]schedule.Stage, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		stages = append(stages, rev[i])
	}
	return stages, bs.stats, nil
}

// scheduler is Algorithm 1's SCHEDULER: the memoized recursion
// cost[S] = min over endings S' of cost[S−S'] + stage_latency[S'].
func (bs *refScheduler) scheduler(s bitset.Set) (float64, error) {
	if s.IsEmpty() {
		return 0, nil
	}
	if v, ok := bs.cost[s]; ok {
		return v, nil
	}
	bs.stats.States++
	best := math.Inf(1)
	var bestChoice choice
	var firstErr error

	// Serial-tail candidate: close the whole remaining suffix as one
	// stage whose single group runs every operator back-to-back on one
	// stream (see engine.go for the admissibility rationale).
	bs.stats.Transitions++
	if lat := bs.prof.MeasureSerialChain(bs.nodesOf(s)); lat < best {
		best = lat
		bestChoice = choice{ending: s, strategy: schedule.Concurrent, serial: true}
	}

	forEachEnding(bs.b, s, bs.opts.Pruning, func(ending bitset.Set, _ []bitset.Set) bool {
		bs.stats.Transitions++
		lat, strat, ok, err := bs.generateStage(ending)
		if err != nil {
			firstErr = err
			return false
		}
		if !ok {
			return true // infeasible under the strategy restriction
		}
		sub, err := bs.scheduler(s.Diff(ending))
		if err != nil {
			firstErr = err
			return false
		}
		if total := sub + lat; total < best {
			best = total
			bestChoice = choice{ending: ending, strategy: strat}
		}
		return true
	})
	if firstErr != nil {
		return 0, firstErr
	}
	if !math.IsInf(best, 1) {
		bs.cost[s] = best
		bs.last[s] = bestChoice
	}
	return best, nil
}

// generateStage is Algorithm 1's GENERATESTAGE: choose the better
// parallelization strategy for the candidate stage and return its
// measured latency. ok=false means the stage is infeasible under the
// configured StrategySet. Note the deliberate inefficiency kept for
// oracle independence: the groups are re-derived from scratch with
// groupsOf's BFS here and again in buildStage.
func (bs *refScheduler) generateStage(ending bitset.Set) (lat float64, strat schedule.Strategy, ok bool, err error) {
	if r, hit := bs.stages[ending]; hit {
		return r.lat, r.strategy, r.ok, nil
	}
	defer func() {
		if err == nil {
			bs.stages[ending] = stageResult{lat: lat, strategy: strat, ok: ok}
		}
	}()
	nodes := bs.nodesOf(ending)
	groups := bs.groupNodes(ending)

	concurrentAllowed := bs.opts.Strategies != MergeOnly || len(groups) == 1
	mergeAllowed := bs.opts.Strategies != ParallelOnly && profile.CanMerge(nodes)

	lConc, lMerge := math.Inf(1), math.Inf(1)
	if concurrentAllowed {
		st := schedule.Stage{Strategy: schedule.Concurrent, Groups: groups}
		lConc, err = bs.prof.MeasureStageUncached(st)
		if err != nil {
			return 0, 0, false, err
		}
	}
	if mergeAllowed {
		st := schedule.Stage{Strategy: schedule.Merge, Groups: [][]*graph.Node{nodes}}
		lMerge, err = bs.prof.MeasureStageUncached(st)
		if err != nil {
			return 0, 0, false, err
		}
	}
	switch {
	case math.IsInf(lConc, 1) && math.IsInf(lMerge, 1):
		return 0, 0, false, nil
	case lConc <= lMerge:
		return lConc, schedule.Concurrent, true, nil
	default:
		return lMerge, schedule.Merge, true, nil
	}
}

// buildStage materializes a schedule stage from a DP choice.
func (bs *refScheduler) buildStage(c choice) schedule.Stage {
	switch {
	case c.serial:
		return schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{bs.nodesOf(c.ending)}}
	case c.strategy == schedule.Merge:
		return schedule.Stage{Strategy: schedule.Merge, Groups: [][]*graph.Node{bs.nodesOf(c.ending)}}
	default:
		return schedule.Stage{Strategy: schedule.Concurrent, Groups: bs.groupNodes(c.ending)}
	}
}

// nodesOf converts a block-local bitset to nodes in topological order.
func (bs *refScheduler) nodesOf(s bitset.Set) []*graph.Node {
	nodes := make([]*graph.Node, 0, s.Len())
	s.ForEach(func(e int) bool {
		nodes = append(nodes, bs.b.Nodes[e])
		return true
	})
	return nodes
}

// groupNodes converts an ending to its connected-component groups of
// nodes.
func (bs *refScheduler) groupNodes(ending bitset.Set) [][]*graph.Node {
	sets := groupsOf(bs.b, ending)
	groups := make([][]*graph.Node, len(sets))
	for i, gs := range sets {
		groups[i] = bs.nodesOf(gs)
	}
	return groups
}
