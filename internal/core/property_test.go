package core

import (
	"math/rand"
	"testing"

	"ios/internal/baseline"
	"ios/internal/graph"
	"ios/internal/schedule"
)

// randomGraph builds a random layered CNN graph: each layer's nodes draw
// inputs from earlier layers; multi-input nodes are adds over same-shaped
// tensors.
func randomGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New("random")
	in := g.Input("in", graph.Shape{N: 1, C: 8, H: 16, W: 16})
	prev := []*graph.Node{}
	id := 0
	layers := 2 + rng.Intn(3)
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(3)
		var cur []*graph.Node
		for i := 0; i < width; i++ {
			id++
			name := "n" + string(rune('a'+id))
			if len(prev) == 0 || rng.Float64() < 0.3 {
				cur = append(cur, g.Conv(name, in, graph.ConvOpts{Out: 8, Kernel: 1 + 2*rng.Intn(2)}))
				continue
			}
			src := prev[rng.Intn(len(prev))]
			if rng.Float64() < 0.3 && len(prev) >= 2 {
				other := prev[rng.Intn(len(prev))]
				if other != src {
					cur = append(cur, g.Add(name, src, other))
					continue
				}
			}
			cur = append(cur, g.Conv(name, src, graph.ConvOpts{Out: 8, Kernel: 3}))
		}
		prev = cur
	}
	// Terminate every dangling tensor in a final concat: real CNNs have
	// no dead-end computation, and the paper's block-by-block optimality
	// implicitly relies on that (a sink op stranded before a block cut
	// would otherwise be forced to finish before later blocks start,
	// which a global scheduler need not do).
	var sinks []*graph.Node
	for _, n := range g.Nodes {
		if n.Op.Kind != graph.OpInput && len(n.Outputs()) == 0 {
			sinks = append(sinks, n)
		}
	}
	if len(sinks) > 1 {
		g.Concat("out", sinks...)
	}
	return g
}

// TestPropertyOptimizeValidAndDominant: on random graphs, the IOS schedule
// is always valid and never slower than either baseline under the same
// cost model.
func TestPropertyOptimizeValidAndDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: builder produced invalid graph: %v", trial, err)
		}
		prof := v100Profiler()
		res, err := Optimize(g, prof, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v\n%s", trial, err, res.Schedule)
		}
		iosLat, err := prof.MeasureSchedule(res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := baseline.Sequential(g)
		if err != nil {
			t.Fatal(err)
		}
		seqLat, err := prof.MeasureSchedule(seq)
		if err != nil {
			t.Fatal(err)
		}
		grd, err := baseline.Greedy(g)
		if err != nil {
			t.Fatal(err)
		}
		grdLat, err := prof.MeasureSchedule(grd)
		if err != nil {
			t.Fatal(err)
		}
		if iosLat > seqLat*(1+1e-9) {
			t.Errorf("trial %d: IOS %g slower than sequential %g", trial, iosLat, seqLat)
		}
		if iosLat > grdLat*(1+1e-9) {
			t.Errorf("trial %d: IOS %g slower than greedy %g", trial, iosLat, grdLat)
		}
	}
}

// TestPropertyDeterministicSearch: the DP is deterministic — repeated runs
// produce identical schedules and costs.
func TestPropertyDeterministicSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng)
		r1, err := Optimize(g, v100Profiler(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Optimize(g, v100Profiler(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Schedule.String() != r2.Schedule.String() {
			t.Fatalf("trial %d: nondeterministic schedules:\n%s\nvs\n%s",
				trial, r1.Schedule, r2.Schedule)
		}
		if r1.Stats.States != r2.Stats.States || r1.Stats.Transitions != r2.Stats.Transitions {
			t.Errorf("trial %d: nondeterministic stats: %+v vs %+v", trial, r1.Stats, r2.Stats)
		}
	}
}

// TestPropertyCostMatchesMeasured: the DP's internal cost for a block must
// equal the re-measured latency of the emitted stages (cache coherence
// between search and measurement).
func TestPropertyCostMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng)
		prof := v100Profiler()
		blocks, err := g.Partition(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			stages, _, err := OptimizeBlock(b, prof, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Re-measure and re-run: identical stage lists must produce
			// identical latency sums on a fresh profiler.
			fresh := v100Profiler()
			var sum1, sum2 float64
			for _, st := range stages {
				l1, err := prof.MeasureStage(st)
				if err != nil {
					t.Fatal(err)
				}
				l2, err := fresh.MeasureStage(st)
				if err != nil {
					t.Fatal(err)
				}
				sum1 += l1
				sum2 += l2
			}
			if sum1 != sum2 {
				t.Errorf("trial %d block %d: measurement not reproducible: %g vs %g",
					trial, b.Index, sum1, sum2)
			}
		}
	}
}

// stagesString renders a stage list for bit-exact schedule comparison.
func stagesString(g *graph.Graph, stages []schedule.Stage) string {
	s := &schedule.Schedule{Graph: g, Stages: stages}
	return s.String()
}

// TestPropertyEngineMatchesReference: the parallel bottom-up engine must
// reproduce the original memoized recursion exactly — same stages, same
// measured cost, same States/Transitions/Measurements — on random DAGs,
// for every strategy set, at both Workers=1 and Workers=4 (run under
// -race, this also exercises the level-parallel paths).
func TestPropertyEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	strategies := []StrategySet{Both, ParallelOnly, MergeOnly}
	prunings := []Pruning{DefaultPruning, {R: 2, S: 2}, {R: -1, S: -1}}
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng)
		blocks, err := g.Partition(0)
		if err != nil {
			t.Fatal(err)
		}
		strat := strategies[trial%len(strategies)]
		prune := prunings[trial%len(prunings)]
		for _, b := range blocks {
			refProf := v100Profiler()
			refStages, refStats, refErr := optimizeBlockReference(b, refProf, Options{Strategies: strat, Pruning: prune})
			if refErr != nil {
				t.Fatalf("trial %d: reference: %v", trial, refErr)
			}
			for _, workers := range []int{1, 4} {
				prof := v100Profiler()
				stages, stats, err := OptimizeBlock(b, prof, Options{Strategies: strat, Pruning: prune, Workers: workers})
				if err != nil {
					t.Fatalf("trial %d workers %d: %v", trial, workers, err)
				}
				if got, want := stagesString(g, stages), stagesString(g, refStages); got != want {
					t.Fatalf("trial %d block %d workers %d (%v, %v): schedule mismatch:\n%s\nvs reference\n%s",
						trial, b.Index, workers, strat, prune, got, want)
				}
				if stats.States != refStats.States || stats.Transitions != refStats.Transitions {
					t.Errorf("trial %d block %d workers %d: stats %+v != reference %+v",
						trial, b.Index, workers, stats, refStats)
				}
				if stats.Measurements != refProf.Measurements {
					t.Errorf("trial %d block %d workers %d: measurements %d != reference %d",
						trial, b.Index, workers, stats.Measurements, refProf.Measurements)
				}
				// Bit-identical costs: re-measure both stage lists on one
				// fresh profiler and compare exactly.
				check := v100Profiler()
				var got, want float64
				for _, st := range stages {
					l, err := check.MeasureStage(st)
					if err != nil {
						t.Fatal(err)
					}
					got += l
				}
				for _, st := range refStages {
					l, err := check.MeasureStage(st)
					if err != nil {
						t.Fatal(err)
					}
					want += l
				}
				if got != want {
					t.Errorf("trial %d block %d workers %d: cost %g != reference %g",
						trial, b.Index, workers, got, want)
				}
			}
		}
	}
}

// TestPropertyWorkersInvariance: whole-graph optimization is bit-identical
// across worker counts, including the search statistics.
func TestPropertyWorkersInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng)
		r1, err := Optimize(g, v100Profiler(), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		r4, err := Optimize(g, v100Profiler(), Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Schedule.String() != r4.Schedule.String() {
			t.Fatalf("trial %d: schedules differ across worker counts:\n%s\nvs\n%s",
				trial, r1.Schedule, r4.Schedule)
		}
		if r1.Stats.States != r4.Stats.States ||
			r1.Stats.Transitions != r4.Stats.Transitions ||
			r1.Stats.Measurements != r4.Stats.Measurements {
			t.Errorf("trial %d: stats differ across worker counts: %+v vs %+v",
				trial, r1.Stats, r4.Stats)
		}
	}
}
