package core

import (
	"os"
	"testing"

	"ios/internal/models"
	"ios/internal/schedule"
)

// TestEngineMatchesReferenceZoo proves the acceptance property on real
// networks: the parallel engine returns bit-identical schedules, costs,
// and search statistics to the original recursion, block by block, across
// the model zoo. The two search-heavy paper benchmarks (RandWire, NasNet)
// take tens of seconds under the reference recursion, so they run only
// with IOS_FULL_EQUIV=1 (the recorded full-zoo run is in PERF.md).
func TestEngineMatchesReferenceZoo(t *testing.T) {
	builders := []models.Builder{
		models.Figure2Block, models.InceptionE, models.SqueezeNet, models.InceptionV3,
	}
	if os.Getenv("IOS_FULL_EQUIV") != "" {
		builders = append(builders, models.RandWire, models.NasNetA)
	} else if testing.Short() {
		builders = builders[:3]
	}
	for _, build := range builders {
		g := build(1)
		blocks, err := g.Partition(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			refProf := v100Profiler()
			refStages, refStats, err := optimizeBlockReference(b, refProf, Options{})
			if err != nil {
				t.Fatalf("%s block %d: reference: %v", g.Name, b.Index, err)
			}
			prof := v100Profiler()
			stages, stats, err := OptimizeBlock(b, prof, Options{})
			if err != nil {
				t.Fatalf("%s block %d: engine: %v", g.Name, b.Index, err)
			}
			got := (&schedule.Schedule{Graph: g, Stages: stages}).String()
			want := (&schedule.Schedule{Graph: g, Stages: refStages}).String()
			if got != want {
				t.Fatalf("%s block %d: schedule mismatch:\n%s\nvs reference\n%s", g.Name, b.Index, got, want)
			}
			if stats.States != refStats.States || stats.Transitions != refStats.Transitions ||
				stats.Measurements != refProf.Measurements {
				t.Errorf("%s block %d: stats (%d states, %d transitions, %d measurements) != reference (%d, %d, %d)",
					g.Name, b.Index, stats.States, stats.Transitions, stats.Measurements,
					refStats.States, refStats.Transitions, refProf.Measurements)
			}
			// Bit-identical cost under one shared fresh profiler.
			check := v100Profiler()
			var lat, refLat float64
			for _, st := range stages {
				l, err := check.MeasureStage(st)
				if err != nil {
					t.Fatal(err)
				}
				lat += l
			}
			for _, st := range refStages {
				l, err := check.MeasureStage(st)
				if err != nil {
					t.Fatal(err)
				}
				refLat += l
			}
			if lat != refLat {
				t.Errorf("%s block %d: cost %g != reference %g", g.Name, b.Index, lat, refLat)
			}
		}
	}
}

// TestForkSharesLoweringTables: a fork of a prelowered profiler performs
// no additional solo simulations for the shared nodes (the satellite fix:
// Fork used to discard the parent's lowered/solo caches).
func TestForkSharesLoweringTables(t *testing.T) {
	g := models.InceptionE(1)
	prof := v100Profiler()
	prof.Prelower(g.SchedulableNodes())
	before := prof.Measurements
	f := prof.Fork()
	f.Prelower(g.SchedulableNodes()) // all cached: must be free
	if f.Measurements != 0 {
		t.Errorf("fork re-measured %d solo durations despite shared tables", f.Measurements)
	}
	if prof.Measurements != before {
		t.Errorf("forking changed the parent's measurement count")
	}
}
