package core

import (
	"math"
	"math/rand"
	"testing"

	"ios/internal/baseline"
	"ios/internal/bitset"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/schedule"
)

func v100Profiler() *profile.Profiler { return profile.New(gpusim.TeslaV100) }

func TestOptimizeFigure5Toy(t *testing.T) {
	// The paper's Figure 5 graph: a->b, c independent. IOS (concurrent
	// strategy) finds the two-stage schedule [{a,c-ish}...]; the exact
	// grouping depends on latencies, but the schedule must be valid and
	// no worse than sequential and greedy.
	g := models.Figure5Toy(1)
	prof := v100Profiler()
	res, err := Optimize(g, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	lat, err := prof.MeasureSchedule(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func(*graph.Graph) (*schedule.Schedule, error){baseline.Sequential, baseline.Greedy} {
		s, err := mk(g)
		if err != nil {
			t.Fatal(err)
		}
		base, err := prof.MeasureSchedule(s)
		if err != nil {
			t.Fatal(err)
		}
		if lat > base*(1+1e-9) {
			t.Errorf("IOS latency %g worse than baseline %g", lat, base)
		}
	}
}

func TestOptimizeFigure2FindsBalancedSchedule(t *testing.T) {
	g := models.Figure2Block(1)
	prof := v100Profiler()
	res, err := Optimize(g, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's optimal schedule runs {a, d} then {b, c} (then concat).
	stageOf := map[string]int{}
	for i, st := range res.Schedule.Stages {
		for _, n := range st.Ops() {
			stageOf[n.Name] = i
		}
	}
	if stageOf["a"] != stageOf["d"] || stageOf["b"] != stageOf["c"] || stageOf["a"] == stageOf["b"] {
		t.Errorf("schedule does not balance stages as Figure 2: %v", res.Schedule)
	}
}

// TestDPOptimalAgainstBruteForce verifies the DP's cost equals an
// exhaustive enumeration over all stage partitions on small random blocks
// (concurrent strategy only, to keep brute force simple).
func TestDPOptimalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		b := buildBlock(t, n, edges)
		prof := v100Profiler()
		opts := Options{Strategies: ParallelOnly, Pruning: Pruning{R: -1, S: -1}}
		stages, _, err := OptimizeBlock(b, prof, opts)
		if err != nil {
			t.Fatal(err)
		}
		var dpCost float64
		for _, st := range stages {
			l, err := prof.MeasureStage(st)
			if err != nil {
				t.Fatal(err)
			}
			dpCost += l
		}

		// Brute force over all schedules by recursive ending choice,
		// including the serial-tail candidate the scheduler also admits.
		var best func(s bitset.Set) float64
		memoSafe := map[bitset.Set]float64{}
		best = func(s bitset.Set) float64 {
			if s.IsEmpty() {
				return 0
			}
			if v, ok := memoSafe[s]; ok {
				return v
			}
			var serialNodes []*graph.Node
			for _, idx := range s.Elems() {
				serialNodes = append(serialNodes, b.Nodes[idx])
			}
			bestCost, err := prof.MeasureStage(schedule.Stage{
				Strategy: schedule.Concurrent,
				Groups:   [][]*graph.Node{serialNodes},
			})
			if err != nil {
				t.Fatal(err)
			}
			forEachEnding(b, s, NoPruning, func(e bitset.Set, _ []bitset.Set) bool {
				groups := groupsOf(b, e)
				gn := make([][]*graph.Node, len(groups))
				for i, gs := range groups {
					for _, idx := range gs.Elems() {
						gn[i] = append(gn[i], b.Nodes[idx])
					}
				}
				lat, err := prof.MeasureStage(schedule.Stage{Strategy: schedule.Concurrent, Groups: gn})
				if err != nil {
					t.Fatal(err)
				}
				if c := best(s.Diff(e)) + lat; c < bestCost {
					bestCost = c
				}
				return true
			})
			memoSafe[s] = bestCost
			return bestCost
		}
		want := best(b.All())
		if math.Abs(dpCost-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("trial %d: DP cost %.9g != brute force %.9g", trial, dpCost, want)
		}
	}
}

// TestPrunedNeverBeatsUnpruned: pruning restricts the space, so the
// unpruned schedule must be at least as good.
func TestPrunedNeverBeatsUnpruned(t *testing.T) {
	g := models.InceptionE(1)
	prof := v100Profiler()
	resFull, err := Optimize(g, prof, Unpruned)
	if err != nil {
		t.Fatal(err)
	}
	full, err := prof.MeasureSchedule(resFull.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Pruning{{R: 1, S: 2}, {R: 2, S: 3}, {R: 3, S: 8}} {
		res, err := Optimize(g, prof, Options{Pruning: p})
		if err != nil {
			t.Fatal(err)
		}
		lat, err := prof.MeasureSchedule(res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if full > lat*(1+1e-9) {
			t.Errorf("pruning %v beat unpruned search: %g < %g", p, lat, full)
		}
	}
}

// TestTighterPruningFewerTransitions: the Figure 9 monotonicity.
func TestTighterPruningFewerTransitions(t *testing.T) {
	g := models.InceptionE(1)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0]
	_, loose := CountPruned(b, Pruning{R: 3, S: 8})
	_, tight := CountPruned(b, Pruning{R: 1, S: 3})
	if tight >= loose {
		t.Errorf("tighter pruning did not reduce transitions: %d >= %d", tight, loose)
	}
}

func TestMergeOnlyEqualsSequentialWithoutMergeOpportunities(t *testing.T) {
	// A sepconv chain block has no merge opportunities; IOS-Merge must
	// coincide with the (stream) sequential schedule's latency.
	g := graph.New("seps")
	in := g.Input("in", graph.Shape{N: 1, C: 8, H: 16, W: 16})
	a := g.SepConv("a", in, graph.ConvOpts{Out: 8, Kernel: 3})
	b := g.SepConv("b", in, graph.ConvOpts{Out: 8, Kernel: 3})
	g.Concat("cat", a, b)
	prof := v100Profiler()
	res, err := Optimize(g, prof, Options{Strategies: MergeOnly})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Schedule.Stages {
		if st.Strategy == schedule.Merge {
			t.Error("merge stage on unmergeable ops")
		}
		if len(st.Groups) != 1 {
			t.Errorf("IOS-Merge produced a parallel stage: %v", st)
		}
	}
	mergeLat, err := prof.MeasureSchedule(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := baseline.Sequential(g)
	if err != nil {
		t.Fatal(err)
	}
	seqLat, err := prof.MeasureSchedule(seq)
	if err != nil {
		t.Fatal(err)
	}
	if mergeLat > seqLat*(1+1e-9) {
		t.Errorf("IOS-Merge (%g) worse than sequential (%g)", mergeLat, seqLat)
	}
}

func TestParallelOnlyNeverMerges(t *testing.T) {
	g := models.InceptionE(32) // batch 32 makes merging attractive
	res, err := Optimize(g, v100Profiler(), Options{Strategies: ParallelOnly})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Schedule.Stages {
		if st.Strategy == schedule.Merge {
			t.Fatal("IOS-Parallel produced a merge stage")
		}
	}
}

func TestBothUsesMergeAtLargeBatch(t *testing.T) {
	// Section 7.2 / Figure 10: at batch 32 the last Inception block's
	// 1x3/3x1 pair merges.
	g := models.InceptionE(32)
	res, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	merges := 0
	for _, st := range res.Schedule.Stages {
		if st.Strategy == schedule.Merge {
			merges++
		}
	}
	if merges == 0 {
		t.Skip("no merge chosen at batch 32 under current device model (shape-dependent)")
	}
}

func TestIOSBeatsBaselinesOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-network optimization in -short mode")
	}
	for _, build := range []models.Builder{models.InceptionV3, models.SqueezeNet} {
		g := build(1)
		prof := v100Profiler()
		res, err := Optimize(g, prof, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lat, err := prof.MeasureSchedule(res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		for _, mk := range []func(*graph.Graph) (*schedule.Schedule, error){baseline.Sequential, baseline.Greedy} {
			s, err := mk(g)
			if err != nil {
				t.Fatal(err)
			}
			base, err := prof.MeasureSchedule(s)
			if err != nil {
				t.Fatal(err)
			}
			if lat > base*(1+1e-9) {
				t.Errorf("%s: IOS %g worse than baseline %g", g.Name, lat, base)
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := models.Figure2Block(1)
	res, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Blocks == 0 || st.States == 0 || st.Transitions == 0 || st.Measurements == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.WallTime <= 0 {
		t.Error("wall time missing")
	}
}

func TestAnalyzeBlockSqueezeNetRow(t *testing.T) {
	// Table 1's SqueezeNet row is small enough to assert tightly: our
	// fire block has n=6, d=3.
	comp, err := AnalyzeLargestBlock(models.SqueezeNet(1))
	if err != nil {
		t.Fatal(err)
	}
	if comp.N != 6 || comp.D != 3 {
		t.Errorf("SqueezeNet largest block = n%d d%d, want n6 d3", comp.N, comp.D)
	}
	if comp.Transitions < 40 || comp.Transitions > 100 {
		t.Errorf("transitions = %d, expected near the paper's 51", comp.Transitions)
	}
	if comp.Schedules < 80 || comp.Schedules > 300 {
		t.Errorf("schedules = %g, expected near the paper's 1.3e2", comp.Schedules)
	}
}

func TestCountingConsistency(t *testing.T) {
	// For any block, pruned transitions <= unpruned transitions, and the
	// bound dominates the real count.
	b := buildBlock(t, 6, [][2]int{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {2, 5}, {4, 5}})
	comp := AnalyzeBlock(b)
	_, pruned := CountPruned(b, DefaultPruning)
	if pruned > comp.Transitions {
		t.Errorf("pruned %d > unpruned %d", pruned, comp.Transitions)
	}
	if float64(comp.Transitions) > comp.Bound {
		t.Errorf("real transitions %d exceed theoretical bound %g", comp.Transitions, comp.Bound)
	}
}

func TestScheduleCountingFigure5(t *testing.T) {
	// Figure 5's graph (a->b, c) has exactly these schedules (stage
	// partitions): enumerate by hand.
	// States/partition count: sequences of endings covering {a,b,c}.
	// Endings of {a,b,c}: {b}, {c}, {b,c}, {a,b}, {a,b,c}... then
	// recursively. Hand count = 8? Assert against brute force instead.
	g := models.Figure5Toy(1)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("toy blocks = %d", len(blocks))
	}
	comp := AnalyzeBlock(blocks[0])
	var count func(s bitset.Set) float64
	count = func(s bitset.Set) float64 {
		if s.IsEmpty() {
			return 1
		}
		var total float64
		forEachEnding(blocks[0], s, NoPruning, func(e bitset.Set, _ []bitset.Set) bool {
			total += count(s.Diff(e))
			return true
		})
		return total
	}
	if want := count(blocks[0].All()); comp.Schedules != want {
		t.Errorf("schedules = %g, want %g", comp.Schedules, want)
	}
	if comp.D != 2 {
		t.Errorf("toy width = %d, want 2", comp.D)
	}
}
