package core

import (
	"math/rand"
	"testing"

	"ios/internal/bitset"
	"ios/internal/graph"
)

// buildBlock constructs a single-block graph from an adjacency list over n
// conv nodes (edge i->j requires i < j; multi-input nodes become Adds).
func buildBlock(t *testing.T, n int, edges [][2]int) *graph.Block {
	t.Helper()
	g := graph.New("t")
	in := g.Input("in", graph.Shape{N: 1, C: 4, H: 8, W: 8})
	// Declare a single manual block so the automatic partition cannot
	// split the test topology at its internal single-producer cuts.
	g.CutBlock()
	preds := make([][]int, n)
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("bad edge %v", e)
		}
		preds[e[1]] = append(preds[e[1]], e[0])
	}
	nodes := make([]*graph.Node, n)
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		switch len(preds[i]) {
		case 0:
			nodes[i] = g.Conv(name, in, graph.ConvOpts{Out: 4, Kernel: 3})
		case 1:
			nodes[i] = g.Conv(name, nodes[preds[i][0]], graph.ConvOpts{Out: 4, Kernel: 3})
		default:
			srcs := make([]*graph.Node, len(preds[i]))
			for j, p := range preds[i] {
				srcs[j] = nodes[p]
			}
			nodes[i] = g.Add(name, srcs...)
		}
	}
	blocks, err := g.Partition(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("test graph split into %d blocks", len(blocks))
	}
	return blocks[0]
}

// isEnding checks the ending property by definition: no edge from the
// ending into the remainder of s.
func isEnding(b *graph.Block, s, ending bitset.Set) bool {
	if ending.IsEmpty() || !ending.SubsetOf(s) {
		return false
	}
	ok := true
	ending.ForEach(func(e int) bool {
		if b.Succs(e).Intersect(s).Diff(ending) != bitset.Empty() {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func TestEndingsOfDiamond(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d (diamond shape plus input fanout is
	// irrelevant here).
	b := buildBlock(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	var got []bitset.Set
	forEachEnding(b, b.All(), NoPruning, func(e bitset.Set, _ []bitset.Set) bool {
		got = append(got, e)
		return true
	})
	// Endings of {a,b,c,d}: any successor-closed nonempty subset:
	// {d}, {b,d}, {c,d}, {b,c,d}, {a,b,c,d}.
	want := []bitset.Set{
		bitset.Of(3), bitset.Of(1, 3), bitset.Of(2, 3),
		bitset.Of(1, 2, 3), bitset.Of(0, 1, 2, 3),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d endings %v, want %d", len(got), got, len(want))
	}
	seen := map[bitset.Set]bool{}
	for _, e := range got {
		seen[e] = true
	}
	for _, e := range want {
		if !seen[e] {
			t.Errorf("missing ending %v", e)
		}
	}
}

// TestEndingsMatchBruteForce enumerates endings by brute force on random
// DAGs and compares sets, with and without pruning.
func TestEndingsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		b := buildBlock(t, n, edges)
		for _, prune := range []Pruning{NoPruning, {R: 2, S: 2}, {R: 1, S: 3}} {
			// Random sub-state that is a valid DP state (down-set).
			s := b.All()
			if trial%2 == 1 {
				// Remove a random ending to get a smaller down-set.
				var endings []bitset.Set
				forEachEnding(b, s, NoPruning, func(e bitset.Set, _ []bitset.Set) bool {
					endings = append(endings, e)
					return true
				})
				s = s.Diff(endings[rng.Intn(len(endings))])
				if s.IsEmpty() {
					continue
				}
			}
			got := map[bitset.Set]bool{}
			forEachEnding(b, s, prune, func(e bitset.Set, _ []bitset.Set) bool {
				if got[e] {
					t.Fatalf("duplicate ending %v", e)
				}
				got[e] = true
				return true
			})
			// Brute force over all subsets of s.
			elems := s.Elems()
			for mask := 1; mask < 1<<len(elems); mask++ {
				var cand bitset.Set
				for i, e := range elems {
					if mask&(1<<i) != 0 {
						cand = cand.Add(e)
					}
				}
				valid := isEnding(b, s, cand) && admissibleRef(b, cand, prune)
				if valid != got[cand] {
					t.Fatalf("trial %d prune %v: ending %v of %v: brute=%v enum=%v",
						trial, prune, cand, s, valid, got[cand])
				}
			}
		}
	}
}

// admissibleRef is a reference implementation of the pruning predicate:
// connected components of the ending must number at most S with size at
// most R.
func admissibleRef(b *graph.Block, ending bitset.Set, prune Pruning) bool {
	groups := groupsOf(b, ending)
	if prune.S > 0 && len(groups) > prune.S {
		return false
	}
	if prune.R > 0 {
		for _, g := range groups {
			if g.Len() > prune.R {
				return false
			}
		}
	}
	return true
}

func TestGroupsOf(t *testing.T) {
	// a->b, c isolated, d->e: groups of {a,b,c,d,e} are {a,b}, {c}, {d,e}.
	b := buildBlock(t, 5, [][2]int{{0, 1}, {3, 4}})
	groups := groupsOf(b, bitset.Of(0, 1, 2, 3, 4))
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	want := []bitset.Set{bitset.Of(0, 1), bitset.Of(2), bitset.Of(3, 4)}
	for i := range want {
		if groups[i] != want[i] {
			t.Errorf("group %d = %v, want %v", i, groups[i], want[i])
		}
	}
}

func TestEndingEarlyStop(t *testing.T) {
	b := buildBlock(t, 4, [][2]int{{0, 1}})
	count := 0
	forEachEnding(b, b.All(), NoPruning, func(e bitset.Set, _ []bitset.Set) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d endings", count)
	}
}

// TestEnumeratorGroupsMatchBFS: the component structure the enumerator
// tracks incrementally must equal groupsOf's BFS derivation (up to order)
// for every emitted ending, so stage construction can trust it.
func TestEnumeratorGroupsMatchBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		b := buildBlock(t, n, edges)
		for _, prune := range []Pruning{NoPruning, {R: 2, S: 2}, {R: 3, S: 8}} {
			forEachEnding(b, b.All(), prune, func(e bitset.Set, groups []bitset.Set) bool {
				got := append([]bitset.Set(nil), groups...)
				sortGroups(got)
				want := groupsOf(b, e)
				if len(got) != len(want) {
					t.Fatalf("ending %v: %d groups, want %d", e, len(got), len(want))
				}
				var union bitset.Set
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("ending %v: group %d = %v, want %v", e, i, got[i], want[i])
					}
					union = union.Union(got[i])
				}
				if union != e {
					t.Fatalf("ending %v: groups %v do not partition it", e, got)
				}
				return true
			})
		}
	}
}
