package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ios/internal/models"
)

// TestOptimizeContextPreCancelled: a context that is already dead must be
// refused before a single stage is measured.
func TestOptimizeContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prof := v100Profiler()
	res, err := OptimizeContext(ctx, models.InceptionE(1), prof, Options{})
	if res != nil {
		t.Fatal("pre-cancelled search returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if prof.Measurements != 0 {
		t.Fatalf("pre-cancelled search performed %d measurements, want 0", prof.Measurements)
	}
}

// TestOptimizeContextMidSearchCancel cancels deterministically mid-search
// (from the first progress callback, i.e. after the engine has provably
// started) and requires the whole worker pool to drain within a bounded
// time, returning the wrapped context error and no partial schedule.
// Run under -race this also proves the drain is free of data races.
func TestOptimizeContextMidSearchCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Bool
		cancelOnFirstProgress := func(Progress) {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		}
		type out struct {
			res *Result
			err error
		}
		done := make(chan out, 1)
		go func() {
			res, err := OptimizeWithProgress(ctx, models.InceptionV3(1), v100Profiler(), Options{Workers: workers}, cancelOnFirstProgress)
			done <- out{res, err}
		}()
		select {
		case o := <-done:
			if o.res != nil {
				t.Fatalf("workers=%d: cancelled search returned a result", workers)
			}
			if !errors.Is(o.err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, o.err)
			}
			if !strings.Contains(o.err.Error(), "cancelled") {
				t.Fatalf("workers=%d: err %q does not say the search was cancelled", workers, o.err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: cancelled search did not drain within 30s", workers)
		}
		cancel()
	}
}

// TestOptimizeContextUncancelledIsBitIdentical: threading a live context
// through the search must not change anything — schedules, costs, and
// search statistics all match the context-free API.
func TestOptimizeContextUncancelledIsBitIdentical(t *testing.T) {
	g := models.InceptionE(1)
	want, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeContext(context.Background(), g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Schedule.String() != want.Schedule.String() {
		t.Fatalf("schedules differ:\n%s\nvs\n%s", got.Schedule, want.Schedule)
	}
	if got.Stats.States != want.Stats.States ||
		got.Stats.Transitions != want.Stats.Transitions ||
		got.Stats.Measurements != want.Stats.Measurements {
		t.Fatalf("stats differ: %+v vs %+v", got.Stats, want.Stats)
	}
}

// TestOptimizeBlockContextPreCancelled covers the single-block entry
// point's context check.
func TestOptimizeBlockContextPreCancelled(t *testing.T) {
	g := models.Figure2Block(1)
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := OptimizeBlockContext(ctx, blocks[0], v100Profiler(), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestProgressReporting checks the Progress stream: monotonic cumulative
// counters, sane block/level fields, and final totals that agree with the
// returned Stats.
func TestProgressReporting(t *testing.T) {
	g := models.InceptionE(1)
	var snaps []Progress
	res, err := OptimizeWithProgress(context.Background(), g, v100Profiler(), Options{},
		func(p Progress) { snaps = append(snaps, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	var prev Progress
	for i, p := range snaps {
		if p.Block < 1 || p.Block > p.Blocks {
			t.Fatalf("snapshot %d: block %d of %d", i, p.Block, p.Blocks)
		}
		if p.Phase != "discover" && p.Phase != "compute" {
			t.Fatalf("snapshot %d: unknown phase %q", i, p.Phase)
		}
		if p.Level < 1 || p.Level > p.Levels {
			t.Fatalf("snapshot %d: level %d of %d", i, p.Level, p.Levels)
		}
		if p.States < prev.States || p.Transitions < prev.Transitions || p.Measurements < prev.Measurements {
			t.Fatalf("snapshot %d went backwards: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	last := snaps[len(snaps)-1]
	if last.States != res.Stats.States || last.Transitions != res.Stats.Transitions {
		t.Fatalf("final progress (%d states, %d transitions) disagrees with stats (%d, %d)",
			last.States, last.Transitions, res.Stats.States, res.Stats.Transitions)
	}
	// The up-front lowering pass is excluded from progress, so the final
	// snapshot can only undercount relative to Stats.Measurements.
	if last.Measurements > res.Stats.Measurements {
		t.Fatalf("progress measurements %d exceed stats %d", last.Measurements, res.Stats.Measurements)
	}
}

// TestOptionsValidate pins the -1 convention: bounds below -1 and negative
// block caps are configuration errors, everything else passes.
func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{},
		Unpruned,
		{Pruning: Pruning{R: 3, S: 8}},
		{Pruning: Pruning{R: -1}},
		{MaxBlockOps: 40, Workers: -3},
	}
	for _, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	invalid := []Options{
		{Pruning: Pruning{R: -2}},
		{Pruning: Pruning{S: -7}},
		{MaxBlockOps: -1},
	}
	for _, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
		}
	}
	// Optimize validates implicitly.
	if _, err := Optimize(models.Figure2Block(1), v100Profiler(), Options{Pruning: Pruning{R: -2}}); err == nil {
		t.Error("Optimize accepted invalid pruning bounds")
	}
}
