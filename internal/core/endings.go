package core

import (
	"ios/internal/bitset"
	"ios/internal/graph"
)

// Ending enumeration (Section 4.1, Figure 4). An ending S' of operator set
// S is a non-empty subset such that every edge between S−S' and S' starts
// in S−S': equivalently, S' is closed under successors within S. The last
// stage of any schedule of S must be an ending of S.
//
// We enumerate endings by deciding membership for the operators of S in
// reverse topological order. Because an operator's successors come later
// in topological order, they are decided before it, so the closure
// constraint ("include u only if all of u's successors in S are included")
// is checkable locally, and every ending is produced exactly once.
//
// The recursion tracks the ending's group structure (connected components
// under intra-block edges) incrementally: including an operator merges it
// with every adjacent component. Components only grow as operators are
// added, so a component exceeding the pruning bound r prunes the whole
// subtree; the group-count bound s is checked at emission (components can
// still merge later, so it cannot prune subtrees soundly).

// forEachEnding invokes fn for every ending S' of S that satisfies the
// pruning strategy P(S, S') of Section 4.3. fn returning false stops the
// enumeration.
func forEachEnding(b *graph.Block, s bitset.Set, prune Pruning, fn func(ending bitset.Set) bool) {
	elems := s.Elems() // ascending = topological order within the block
	maxOps := prune.maxStageOps()
	cont := true
	// comps holds the connected components of the current candidate.
	// It is copied on modification so sibling branches stay independent;
	// candidates are small (≤ maxOps), so copies are cheap.
	var rec func(k int, cur bitset.Set, comps []bitset.Set)
	rec = func(k int, cur bitset.Set, comps []bitset.Set) {
		if !cont {
			return
		}
		if k < 0 {
			if !cur.IsEmpty() && (prune.S <= 0 || len(comps) <= prune.S) {
				cont = fn(cur)
			}
			return
		}
		e := elems[k]
		// Exclude e.
		rec(k-1, cur, comps)
		if !cont {
			return
		}
		// Include e: allowed iff all successors of e within S are
		// already included (reverse-topological processing guarantees
		// they have been decided).
		if cur.Len() >= maxOps || !b.Succs(e).Intersect(s).SubsetOf(cur) {
			return
		}
		// Merge e with adjacent components.
		nbrs := b.Succs(e).Union(b.Preds(e))
		merged := bitset.Of(e)
		next := make([]bitset.Set, 0, len(comps)+1)
		for _, c := range comps {
			if c.Intersects(nbrs) {
				merged = merged.Union(c)
			} else {
				next = append(next, c)
			}
		}
		if prune.R > 0 && merged.Len() > prune.R {
			// The component can only grow further down this subtree;
			// prune it entirely.
			return
		}
		next = append(next, merged)
		rec(k-1, cur.Add(e), next)
	}
	rec(len(elems)-1, bitset.Empty(), nil)
}

// groupsOf splits an ending into its connected-component groups, each as a
// bitset, ordered by smallest element.
func groupsOf(b *graph.Block, ending bitset.Set) []bitset.Set {
	assigned := bitset.Empty()
	var groups []bitset.Set
	ending.ForEach(func(e int) bool {
		if assigned.Has(e) {
			return true
		}
		// BFS over intra-ending edges in both directions.
		comp := bitset.Of(e)
		frontier := bitset.Of(e)
		for !frontier.IsEmpty() {
			next := bitset.Empty()
			frontier.ForEach(func(x int) bool {
				nbrs := b.Succs(x).Union(b.Preds(x)).Intersect(ending).Diff(comp)
				next = next.Union(nbrs)
				return true
			})
			comp = comp.Union(next)
			frontier = next
		}
		assigned = assigned.Union(comp)
		groups = append(groups, comp)
		return true
	})
	return groups
}
