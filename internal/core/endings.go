package core

import (
	"ios/internal/bitset"
	"ios/internal/graph"
)

// Ending enumeration (Section 4.1, Figure 4). An ending S' of operator set
// S is a non-empty subset such that every edge between S−S' and S' starts
// in S−S': equivalently, S' is closed under successors within S. The last
// stage of any schedule of S must be an ending of S.
//
// We enumerate endings by deciding membership for the operators of S in
// reverse topological order. Because an operator's successors come later
// in topological order, they are decided before it, so the closure
// constraint ("include u only if all of u's successors in S are included")
// is checkable locally, and every ending is produced exactly once.
//
// The recursion tracks the ending's group structure (connected components
// under intra-block edges) incrementally: including an operator merges it
// with every adjacent component. Components only grow as operators are
// added, so a component exceeding the pruning bound r prunes the whole
// subtree; the group-count bound s is checked at emission (components can
// still merge later, so it cannot prune subtrees soundly).
//
// The enumeration is the DP's innermost loop (one call per transition
// #(S, S')), so the enumerator keeps all of its working state in reusable
// scratch buffers: component merges are performed in place and undone on
// backtrack instead of copying the component list on every branch, and the
// finished component structure is handed to the callback so downstream
// stage construction never re-derives groups with a BFS.

// endingFunc receives one ending together with its connected-component
// groups. groups is scratch owned by the enumerator: it is valid only for
// the duration of the call and its order is unspecified (sort or copy
// before retaining). Returning false stops the enumeration.
type endingFunc func(ending bitset.Set, groups []bitset.Set) bool

// enumerator carries the reusable scratch of one ending enumeration. The
// zero value is ready to use; a worker keeps one per goroutine and calls
// forEach once per DP state, amortizing all allocations away.
type enumerator struct {
	b      *graph.Block
	s      bitset.Set
	prune  Pruning
	maxOps int
	fn     endingFunc
	cont   bool

	elems  []int        // elements of s, ascending (= topological order)
	succIn []bitset.Set // per position: successors of elems[k] within s
	nbrs   []bitset.Set // per position: block neighbors of elems[k]
	comps  []bitset.Set // connected components of the current candidate
	undo   []bitset.Set // stack of components displaced by in-place merges
}

// forEach invokes fn for every ending S' of S that satisfies the pruning
// strategy P(S, S') of Section 4.3, in a deterministic order (fixed by the
// reverse-topological decision recursion, independent of scratch reuse).
func (en *enumerator) forEach(b *graph.Block, s bitset.Set, prune Pruning, fn endingFunc) {
	en.b, en.s, en.prune, en.fn = b, s, prune, fn
	en.maxOps = prune.maxStageOps()
	en.cont = true
	en.elems = s.AppendElems(en.elems[:0])
	// Hoist the per-element set algebra out of the recursion: the
	// closure-under-successors test and the component-merge neighborhood
	// are fixed per (s, element), while the recursion visits each element
	// once per branch of the decision tree.
	en.succIn = en.succIn[:0]
	en.nbrs = en.nbrs[:0]
	for _, e := range en.elems {
		en.succIn = append(en.succIn, b.Succs(e).Intersect(s))
		en.nbrs = append(en.nbrs, b.Succs(e).Union(b.Preds(e)))
	}
	en.comps = en.comps[:0]
	en.undo = en.undo[:0]
	en.rec(len(en.elems)-1, bitset.Empty(), 0)
	en.fn = nil // do not pin the callback between calls
}

// rec decides membership of elems[k] and below; cur is the candidate so
// far with size elements. en.comps always holds cur's connected
// components (unordered).
func (en *enumerator) rec(k int, cur bitset.Set, size int) {
	if !en.cont {
		return
	}
	if k < 0 {
		if !cur.IsEmpty() && (en.prune.S <= 0 || len(en.comps) <= en.prune.S) {
			en.cont = en.fn(cur, en.comps)
		}
		return
	}
	e := en.elems[k]
	// Exclude e.
	en.rec(k-1, cur, size)
	if !en.cont {
		return
	}
	// Include e: allowed iff all successors of e within S are already
	// included (reverse-topological processing guarantees they have been
	// decided).
	if size >= en.maxOps || !en.succIn[k].SubsetOf(cur) {
		return
	}
	// Merge e with adjacent components in place: displaced components go
	// onto the undo stack and are restored (at the tail — component order
	// is immaterial) when the branch returns.
	nbrs := en.nbrs[k]
	merged := bitset.Of(e)
	displaced := 0
	for i := 0; i < len(en.comps); {
		if en.comps[i].Intersects(nbrs) {
			merged = merged.Union(en.comps[i])
			en.undo = append(en.undo, en.comps[i])
			displaced++
			en.comps[i] = en.comps[len(en.comps)-1]
			en.comps = en.comps[:len(en.comps)-1]
			continue
		}
		i++
	}
	if en.prune.R > 0 && merged.Len() > en.prune.R {
		// The component can only grow further down this subtree; prune it
		// entirely (after restoring the displaced components).
		en.restore(displaced)
		return
	}
	en.comps = append(en.comps, merged)
	en.rec(k-1, cur.Add(e), size+1)
	// Deeper include/undo cycles restore comps set-wise but may permute
	// it, so merged is not necessarily still at the tail; it is, however,
	// the unique component containing e.
	for i := len(en.comps) - 1; i >= 0; i-- {
		if en.comps[i].Has(e) {
			en.comps[i] = en.comps[len(en.comps)-1]
			en.comps = en.comps[:len(en.comps)-1]
			break
		}
	}
	en.restore(displaced)
}

// restore pops n displaced components off the undo stack back into comps.
func (en *enumerator) restore(n int) {
	if n == 0 {
		return
	}
	en.comps = append(en.comps, en.undo[len(en.undo)-n:]...)
	en.undo = en.undo[:len(en.undo)-n]
}

// forEachEnding is the convenience wrapper over a throwaway enumerator,
// used by the counting analyses and tests; the DP engine holds a reusable
// enumerator per worker instead.
func forEachEnding(b *graph.Block, s bitset.Set, prune Pruning, fn endingFunc) {
	var en enumerator
	en.forEach(b, s, prune, fn)
}

// groupsOf splits an ending into its connected-component groups, each as a
// bitset, ordered by smallest element. The enumerator produces the same
// partition incrementally; this BFS derivation is retained as the
// independent oracle the property tests check the incremental groups
// against, and for callers that hold an ending without its enumeration
// context.
func groupsOf(b *graph.Block, ending bitset.Set) []bitset.Set {
	assigned := bitset.Empty()
	var groups []bitset.Set
	ending.ForEach(func(e int) bool {
		if assigned.Has(e) {
			return true
		}
		// BFS over intra-ending edges in both directions.
		comp := bitset.Of(e)
		frontier := bitset.Of(e)
		for !frontier.IsEmpty() {
			next := bitset.Empty()
			frontier.ForEach(func(x int) bool {
				nbrs := b.Succs(x).Union(b.Preds(x)).Intersect(ending).Diff(comp)
				next = next.Union(nbrs)
				return true
			})
			comp = comp.Union(next)
			frontier = next
		}
		assigned = assigned.Union(comp)
		groups = append(groups, comp)
		return true
	})
	return groups
}
