package core

import (
	"testing"

	"ios/internal/gpusim"
	"ios/internal/measure"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/schedule"
)

// cachedProfiler returns a V100 profiler attached to the given structural
// measurement cache.
func cachedProfiler(c *measure.Cache) *profile.Profiler {
	p := profile.New(gpusim.TeslaV100)
	p.SetMeasureCache(c)
	return p
}

// TestMeasureCacheEquivalenceZoo is the cache's correctness bar: with the
// structural measurement cache attached, Optimize must return bit-identical
// schedules, costs, and state/transition statistics to the uncached oracle
// on every zoo network — only Measurements may drop. Both a cold cache
// (first search fills it) and a warm one (repeat search) are checked.
func TestMeasureCacheEquivalenceZoo(t *testing.T) {
	builders := []models.Builder{
		models.Figure2Block, models.InceptionE, models.SqueezeNet, models.InceptionV3,
	}
	if testing.Short() {
		builders = builders[:3]
	}
	for _, build := range builders {
		g := build(1)
		want, err := Optimize(g, v100Profiler(), Options{})
		if err != nil {
			t.Fatalf("%s: uncached: %v", g.Name, err)
		}
		cache := measure.NewCache()
		for _, phase := range []string{"cold", "warm"} {
			prof := cachedProfiler(cache)
			got, err := Optimize(g, prof, Options{})
			if err != nil {
				t.Fatalf("%s %s: %v", g.Name, phase, err)
			}
			if got.Schedule.String() != want.Schedule.String() {
				t.Fatalf("%s %s: cached schedule differs:\n%s\nvs uncached\n%s",
					g.Name, phase, got.Schedule, want.Schedule)
			}
			if got.Stats.States != want.Stats.States || got.Stats.Transitions != want.Stats.Transitions {
				t.Errorf("%s %s: search statistics differ: %d states/%d transitions vs %d/%d",
					g.Name, phase, got.Stats.States, got.Stats.Transitions,
					want.Stats.States, want.Stats.Transitions)
			}
			if got.Stats.Measurements > want.Stats.Measurements {
				t.Errorf("%s %s: cached run measured MORE (%d) than uncached (%d)",
					g.Name, phase, got.Stats.Measurements, want.Stats.Measurements)
			}
			// Bit-identical cost under one shared fresh profiler.
			check := v100Profiler()
			var lat, wantLat float64
			for _, st := range got.Schedule.Stages {
				l, err := check.MeasureStage(st)
				if err != nil {
					t.Fatal(err)
				}
				lat += l
			}
			for _, st := range want.Schedule.Stages {
				l, err := check.MeasureStage(st)
				if err != nil {
					t.Fatal(err)
				}
				wantLat += l
			}
			if lat != wantLat {
				t.Errorf("%s %s: cached cost %g != uncached %g", g.Name, phase, lat, wantLat)
			}
		}
		// The warm repeat search of the same graph must be measurement-free:
		// every fingerprint is already resident.
		warm, err := Optimize(g, cachedProfiler(cache), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Stats.Measurements != 0 {
			t.Errorf("%s: warm repeat search still ran %d simulator measurements", g.Name, warm.Stats.Measurements)
		}
	}
}

// TestMeasureCacheNasNetReduction is the acceptance criterion: on the
// full NasNet-A network — a stack of structurally near-identical cells —
// a cold cached Optimize must perform at least 3x fewer simulator
// measurements than the uncached search, with a bit-identical schedule.
// The win comes from cross-block structural dedup: every repeated cell's
// stages fingerprint to the same keys.
func TestMeasureCacheNasNetReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full NasNet-A search in -short mode")
	}
	if raceEnabled {
		t.Skip("full NasNet-A search under the race detector (the cache's concurrency is race-tested on the smaller zoo networks)")
	}
	g := models.NasNetA(1)
	uncached, err := Optimize(g, v100Profiler(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := measure.NewCache()
	cached, err := Optimize(g, cachedProfiler(cache), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Schedule.String() != uncached.Schedule.String() {
		t.Fatal("cached NasNet schedule differs from the uncached oracle")
	}
	if cached.Stats.States != uncached.Stats.States || cached.Stats.Transitions != uncached.Stats.Transitions {
		t.Fatalf("cached search statistics differ: %d states/%d transitions vs %d/%d",
			cached.Stats.States, cached.Stats.Transitions,
			uncached.Stats.States, uncached.Stats.Transitions)
	}
	if cached.Stats.Measurements*3 > uncached.Stats.Measurements {
		t.Fatalf("cached NasNet Optimize: %d measurements vs %d uncached — less than the required 3x reduction",
			cached.Stats.Measurements, uncached.Stats.Measurements)
	}
	t.Logf("NasNet-A: %d uncached vs %d cached measurements (%.1fx reduction), cache: %+v",
		uncached.Stats.Measurements, cached.Stats.Measurements,
		float64(uncached.Stats.Measurements)/float64(cached.Stats.Measurements), cache.Stats())
}

// TestMeasureCacheSharedAcrossSearches: one cache amortizes across
// *different* graph values of the same architecture (the serving tier's
// repeated-model case) and across worker counts.
func TestMeasureCacheSharedAcrossSearches(t *testing.T) {
	cache := measure.NewCache()
	if _, err := Optimize(models.InceptionE(1), cachedProfiler(cache), Options{}); err != nil {
		t.Fatal(err)
	}
	// A freshly built, structurally identical graph: node values differ,
	// fingerprints must not.
	res, err := Optimize(models.InceptionE(1), cachedProfiler(cache), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Measurements != 0 {
		t.Errorf("re-optimizing a rebuilt identical graph ran %d measurements, want 0", res.Stats.Measurements)
	}
	// Parallel workers share the same cache through profiler forks; the
	// result stays measurement-free and bit-identical.
	par, err := Optimize(models.InceptionE(1), cachedProfiler(cache), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Measurements != 0 {
		t.Errorf("warm parallel search ran %d measurements, want 0", par.Stats.Measurements)
	}
	if par.Schedule.String() != res.Schedule.String() {
		t.Error("warm parallel search returned a different schedule")
	}
}

// TestMeasureCacheNoisyProfilerBypasses: noisy measurements draw from the
// profiler's RNG per invocation and must never be served from (or stored
// in) the structural cache.
func TestMeasureCacheNoisyProfilerBypasses(t *testing.T) {
	g := models.Figure2Block(1)
	cache := measure.NewCache()
	prof := cachedProfiler(cache)
	prof.Noise, prof.Repeats = 0.05, 3
	prof.SetSeed(7)
	if _, err := Optimize(g, prof, Options{}); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("noisy search stored %d entries in the structural cache", n)
	}

	// And a noisy profiler sharing a warm cache must not read from it:
	// same seed => same noisy results as a cache-less noisy profiler.
	warm := measure.NewCache()
	if _, err := Optimize(g, cachedProfiler(warm), Options{}); err != nil {
		t.Fatal(err)
	}
	mkNoisy := func(c *measure.Cache) *schedule.Schedule {
		p := profile.New(gpusim.TeslaV100)
		if c != nil {
			p.SetMeasureCache(c)
		}
		p.Noise, p.Repeats = 0.05, 3
		p.SetSeed(11)
		res, err := Optimize(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedule
	}
	if mkNoisy(warm).String() != mkNoisy(nil).String() {
		t.Error("noisy search read latencies from the warm structural cache")
	}
}
