package core

import (
	"math"
	"testing"

	"ios/internal/models"
)

// TestFigure13BoundIsTight reproduces Appendix A's tightness analysis: on
// d independent chains of c operators (Figure 13), the DP's transition
// pairs decompose per chain into prefix/suffix combinations, so the exact
// count is C(c+2,2)^d − (c+1)^d: the paper's bound C(c+2,2)^d counts all
// per-chain (prefix, suffix) tuples including the globally-empty ending,
// and (c+1)^d of those tuples have an empty ending in every chain. The
// test asserts the exact closed form, which shows the bound is tight up
// to that lower-order correction.
func TestFigure13BoundIsTight(t *testing.T) {
	cases := []struct{ c, d int }{{1, 1}, {2, 1}, {3, 1}, {3, 2}, {2, 3}, {4, 2}, {2, 4}}
	for _, tc := range cases {
		comp := analyzeChainsOnly(t, tc.c, tc.d)
		bound := math.Pow(float64((tc.c+2)*(tc.c+1)/2), float64(tc.d))
		exact := bound - math.Pow(float64(tc.c+1), float64(tc.d))
		if float64(comp.Transitions) != exact {
			t.Errorf("c=%d d=%d: transitions = %d, want %g", tc.c, tc.d, comp.Transitions, exact)
		}
		if comp.D != tc.d {
			t.Errorf("c=%d d=%d: width = %d", tc.c, tc.d, comp.D)
		}
		if comp.N != tc.c*tc.d {
			t.Errorf("c=%d d=%d: n = %d", tc.c, tc.d, comp.N)
		}
		if float64(comp.Transitions) > comp.Bound*(1+1e-9) {
			t.Errorf("bound violated: %d > %g", comp.Transitions, comp.Bound)
		}
		// Schedules on independent chains: every interleaved stage
		// partition is feasible, so the count must be positive and grow
		// quickly with d.
		if comp.Schedules < 1 {
			t.Errorf("c=%d d=%d: schedules = %g", tc.c, tc.d, comp.Schedules)
		}
	}
}

// TestFigure13ModelBuilder sanity-checks the zoo builder for the same
// family (the builder adds a concat sink for d > 1, which perturbs the
// pure-chain count but keeps the width).
func TestFigure13ModelBuilder(t *testing.T) {
	g := models.Figure13Chains(3, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if got := blocks[0].Width(); got != 4 {
		t.Errorf("width = %d, want 4", got)
	}
	if got := len(blocks[0].Nodes); got != 3*4+1 {
		t.Errorf("ops = %d, want 13", got)
	}
}

func analyzeChainsOnly(t *testing.T, c, d int) Complexity {
	t.Helper()
	var edges [][2]int
	for j := 0; j < d; j++ {
		for i := 0; i < c-1; i++ {
			edges = append(edges, [2]int{j*c + i, j*c + i + 1})
		}
	}
	b := buildBlock(t, c*d, edges)
	return AnalyzeBlock(b)
}
