package core

import (
	"math"

	"ios/internal/bitset"
	"ios/internal/graph"
)

// Complexity quantities for Table 1: for a block with n operators and
// width d, the paper reports the theoretical transition bound
// C(n/d+2, 2)^d, the real number of transitions #(S, S'), and the total
// number of feasible schedules.

// Complexity summarizes the search space of one block.
type Complexity struct {
	// N is the number of operators in the block.
	N int
	// D is the block's width (largest antichain).
	D int
	// Bound is the theoretical upper bound C(n/d+2, 2)^d on transitions.
	Bound float64
	// Transitions is the exact number of (S, S') pairs the unpruned DP
	// examines.
	Transitions int64
	// Schedules is the exact number of feasible stage partitions
	// (counting stage sets, as the paper's #Schedules column does),
	// reported as float64 because it overflows uint64 for RandWire.
	Schedules float64
}

// AnalyzeBlock computes the Table 1 row for a block. It runs the same
// ending enumeration as the DP but with pure counting (no measurements),
// and without pruning.
func AnalyzeBlock(b *graph.Block) Complexity {
	n := len(b.Nodes)
	c := Complexity{N: n, D: b.Width()}
	if n == 0 {
		return c
	}
	c.Bound = transitionBound(n, c.D)

	schedules := make(map[bitset.Set]float64)
	var countSchedules func(s bitset.Set) float64
	countSchedules = func(s bitset.Set) float64 {
		if s.IsEmpty() {
			return 1
		}
		if v, ok := schedules[s]; ok {
			return v
		}
		var total float64
		forEachEnding(b, s, NoPruning, func(ending bitset.Set, _ []bitset.Set) bool {
			c.Transitions++
			total += countSchedules(s.Diff(ending))
			return true
		})
		schedules[s] = total
		return total
	}
	c.Schedules = countSchedules(b.All())
	return c
}

// CountPruned walks the DP state space under a pruning strategy without
// performing any measurements, returning the number of states and
// transitions — the pure search-space size that Figure 9's optimization
// cost tracks.
func CountPruned(b *graph.Block, prune Pruning) (states int, transitions int64) {
	if len(b.Nodes) == 0 {
		return 0, 0
	}
	seen := make(map[bitset.Set]bool)
	var visit func(s bitset.Set)
	visit = func(s bitset.Set) {
		if s.IsEmpty() || seen[s] {
			return
		}
		seen[s] = true
		states++
		forEachEnding(b, s, prune, func(ending bitset.Set, _ []bitset.Set) bool {
			transitions++
			visit(s.Diff(ending))
			return true
		})
	}
	visit(b.All())
	return states, transitions
}

// transitionBound evaluates C(n/d+2, 2)^d with the real-valued n/d the
// paper uses.
func transitionBound(n, d int) float64 {
	if d <= 0 {
		return 0
	}
	x := float64(n)/float64(d) + 2
	perChain := x * (x - 1) / 2
	return math.Pow(perChain, float64(d))
}

// HardestBlock partitions the graph and returns its hardest block — the
// one with the largest theoretical transition bound (ties broken by
// operator count) — or nil for an empty graph. This is the block Table 1
// analyzes and the search-cost benchmarks time.
func HardestBlock(g *graph.Graph) (*graph.Block, error) {
	blocks, err := g.Partition(0)
	if err != nil {
		return nil, err
	}
	var best *graph.Block
	bestBound := -1.0
	for _, b := range blocks {
		bound := transitionBound(len(b.Nodes), b.Width())
		if bound > bestBound || (bound == bestBound && best != nil && len(b.Nodes) > len(best.Nodes)) {
			best, bestBound = b, bound
		}
	}
	return best, nil
}

// AnalyzeLargestBlock returns the Complexity of the graph's hardest block
// as Table 1 lists per network.
func AnalyzeLargestBlock(g *graph.Graph) (Complexity, error) {
	best, err := HardestBlock(g)
	if err != nil {
		return Complexity{}, err
	}
	if best == nil {
		return Complexity{}, nil
	}
	return AnalyzeBlock(best), nil
}
