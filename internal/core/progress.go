package core

import (
	"sync"
)

// Progress is one search-progress snapshot, delivered to OptimizeWithProgress's callback
// at every level barrier of the DP engine. Snapshots from different blocks
// interleave when Optimize searches blocks in parallel, but the callback
// itself is never invoked concurrently (the tracker serializes emission),
// and the cumulative counters are monotonic across the whole search.
type Progress struct {
	// Block is the 1-based index of the block this snapshot comes from;
	// Blocks is the total block count of the search (1 for
	// OptimizeBlockContext).
	Block, Blocks int
	// Phase is the engine pass the block is in: "discover" (state-space
	// enumeration) or "compute" (cost evaluation).
	Phase string
	// Level is the cardinality level the block just finished; Levels is
	// the block's operator count (its highest level).
	Level, Levels int
	// States, Transitions, and Measurements are cumulative totals across
	// all blocks so far, matching the Stats fields of the final Result.
	// Measurements excludes the up-front lowering pass (the per-node solo
	// simulations Optimize runs before any block search starts).
	States, Transitions, Measurements int
}

// progressTracker aggregates per-level deltas from concurrently searched
// blocks and serializes delivery to the user callback. A nil tracker is
// inert, so the engine can call it unconditionally.
type progressTracker struct {
	mu     sync.Mutex
	fn     func(Progress)
	blocks int

	states, transitions, measurements int
}

// newProgressTracker returns a tracker for fn, or nil when fn is nil (no
// reporting requested).
func newProgressTracker(fn func(Progress), blocks int) *progressTracker {
	if fn == nil {
		return nil
	}
	return &progressTracker{fn: fn, blocks: blocks}
}

// emit folds one block level's deltas into the cumulative totals and
// delivers a snapshot. Safe for concurrent use by per-block goroutines.
//
//ioslint:lockorder-allow progressTracker.mu delivery is serialized under the lock by contract: the callback receives monotonic snapshots in order, is documented to be fast, and must not re-enter the engine
func (t *progressTracker) emit(block, levels int, phase string, level, dStates, dTransitions, dMeasurements int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.states += dStates
	t.transitions += dTransitions
	t.measurements += dMeasurements
	p := Progress{
		Block: block, Blocks: t.blocks,
		Phase: phase, Level: level, Levels: levels,
		States: t.states, Transitions: t.transitions, Measurements: t.measurements,
	}
	fn := t.fn
	fn(p)
	t.mu.Unlock()
}
