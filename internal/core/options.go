//ioslint:deterministic

// Package core implements the Inter-Operator Scheduler — the paper's
// primary contribution (Algorithm 1). It finds, per block of a computation
// graph, the latency-optimal partition into stages by dynamic programming
// over "endings": for operator set S, cost[S] = min over endings S' of S of
// cost[S−S'] + stage_latency[S'], where an ending is a subset with no edge
// leaving it into the remainder (Section 4.1). stage_latency is obtained by
// direct measurement on the execution substrate via internal/profile, and
// GENERATESTAGE picks the cheaper of the two parallelization strategies
// ("concurrent execution" vs "operator merge") for each candidate stage.
package core

import (
	"fmt"
	"runtime"
	"strings"

	"ios/internal/blockcache"
)

// StrategySet selects which parallelization strategies GENERATESTAGE may
// use, matching the paper's IOS-Parallel / IOS-Merge / IOS-Both variants
// (Section 6.1).
type StrategySet int

const (
	// Both considers concurrent execution and operator merge (IOS-Both,
	// the default "IOS" in the paper).
	Both StrategySet = iota
	// ParallelOnly considers only concurrent execution (IOS-Parallel).
	ParallelOnly
	// MergeOnly considers only operator merge (IOS-Merge). Stages that
	// cannot merge are restricted to a single operator, which degenerates
	// to the sequential schedule when no merge opportunities exist —
	// exactly the paper's observation on RandWire/NasNet.
	MergeOnly
)

// String names the strategy set like the paper's figure legends.
func (s StrategySet) String() string {
	switch s {
	case ParallelOnly:
		return "IOS-Parallel"
	case MergeOnly:
		return "IOS-Merge"
	default:
		return "IOS-Both"
	}
}

// ParseStrategySet maps a strategy name to its StrategySet. It accepts the
// short CLI spellings ("both", "parallel", "merge") and the paper's figure
// legends ("IOS-Both", ...), case-insensitively; the empty string selects
// the default (Both).
func ParseStrategySet(name string) (StrategySet, error) {
	switch strings.ToLower(name) {
	case "", "both", "ios-both":
		return Both, nil
	case "parallel", "ios-parallel":
		return ParallelOnly, nil
	case "merge", "ios-merge":
		return MergeOnly, nil
	}
	return Both, fmt.Errorf("core: unknown strategy set %q (want both, parallel, or merge)", name)
}

// MarshalText implements encoding.TextMarshaler, so Options round-trips
// through JSON with readable strategy names.
func (s StrategySet) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler; it accepts anything
// ParseStrategySet does.
func (s *StrategySet) UnmarshalText(text []byte) error {
	v, err := ParseStrategySet(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Pruning is the schedule-pruning strategy P of Section 4.3: an ending S'
// satisfies P iff it has at most S groups and each group has at most R
// operators. The paper's default is r=3, s=8.
//
// Bound convention (the single authoritative statement — everything else
// refers here): a positive bound limits the dimension; 0 means "unset",
// which makes the zero-value Pruning select the paper defaults (r=3,
// s=8); -1 means "explicitly unbounded" in that dimension. The -1
// spelling exists because Pruning{} and an all-zero "no pruning" request
// would otherwise be indistinguishable — Options{Pruning: NoPruning} IS
// the zero value and therefore selects the defaults. Request the
// exhaustive search with the Unpruned options value (R=-1, S=-1), or
// ios.WithNoPruning at the Engine layer. Values below -1 are invalid;
// Options.Validate rejects them.
type Pruning struct {
	// R bounds operators per group (see the bound convention above).
	R int `json:"r,omitempty"`
	// S bounds groups per stage (see the bound convention above).
	S int `json:"s,omitempty"`
}

// DefaultPruning is the paper's evaluation setting (r = 3, s = 8).
var DefaultPruning = Pruning{R: 3, S: 8}

// NoPruning explores the full schedule space when passed directly to an
// enumeration (forEachEnding treats non-positive bounds as unbounded).
// Caution: it is the zero Pruning value, so Options{Pruning: NoPruning}
// is indistinguishable from unset options and selects the paper defaults
// instead (see the bound convention on Pruning) — request an exhaustive
// search through Options with Unpruned or ios.WithNoPruning.
var NoPruning = Pruning{}

// String renders "r=3,s=8" or "none". Non-positive bounds (see the bound
// convention on Pruning) both render as 0.
func (p Pruning) String() string {
	if p.R <= 0 && p.S <= 0 {
		return "none"
	}
	return fmt.Sprintf("r=%d,s=%d", max(p.R, 0), max(p.S, 0))
}

// maxStageOps returns the largest stage size admissible under the pruning,
// used to cut the ending enumeration early. Non-positive bounds are
// unbounded.
func (p Pruning) maxStageOps() int {
	if p.R <= 0 || p.S <= 0 {
		return 1 << 30
	}
	return p.R * p.S
}

// Options configures Optimize. The JSON form (used by the serving API and
// stored schedule recipes) spells Strategies as a name ("IOS-Both", or the
// short "both"/"parallel"/"merge") via StrategySet's text marshaling.
type Options struct {
	// Strategies selects the IOS variant (default Both).
	Strategies StrategySet `json:"strategies,omitempty"`
	// Pruning bounds the ending enumeration (default r=3, s=8; use
	// NoPruning for the exhaustive search).
	Pruning Pruning `json:"pruning,omitempty"`
	// MaxBlockOps caps the block partition size (0 = bitset limit).
	MaxBlockOps int `json:"max_block_ops,omitempty"`
	// Workers caps the per-block DP engine's worker pool (goroutines with
	// private simulators processing one cardinality level's states in
	// parallel). 0 or negative means GOMAXPROCS; the engine additionally
	// caps the pool at the block's operator count, and forces one worker
	// when the profiler has measurement noise enabled (noisy draws are
	// order-dependent, so a single worker keeps them deterministic per
	// seed). Workers is an execution knob, not a search-space knob: the
	// engine produces bit-identical schedules, costs, and search
	// statistics at every setting, which is why Fingerprint deliberately
	// excludes it (cached schedules are shared across worker counts).
	Workers int `json:"workers,omitempty"`

	// tracker is the shared cross-block progress aggregator, installed by
	// OptimizeWithProgress so parallel block searches feed one monotonic
	// counter set. Progress deliberately lives outside the exported
	// fields (see OptimizeWithProgress): a func field would make Options
	// non-comparable, a silent API break for code using == or map keys.
	tracker *progressTracker

	// blockCache, when non-nil, is the shared whole-block schedule cache
	// consulted before every block DP search (see WithBlockCache). Like
	// tracker it is a pure execution knob living outside the exported
	// fields — a pointer keeps Options comparable, and Fingerprint
	// deliberately excludes it: cached schedules are exact search outputs,
	// so results are bit-identical with the cache on or off.
	blockCache *blockcache.Cache
}

// WithBlockCache returns the options with a shared whole-block schedule
// cache attached: Optimize and OptimizeBlock consult it before launching a
// block's DP search, keyed by the block's canonical structural fingerprint
// (blockcache.Fingerprint), and fill it with the search result on a miss.
// Concurrent searches of the same structure coalesce into one. Cached
// schedules are rebound onto the requesting block's nodes and are
// bit-identical to what the search would have produced; a hit reports the
// entry's recorded States and Transitions as its search cost, so
// statistics stay comparable across cached and uncached runs, while
// Measurements always counts actual simulator invocations.
//
// The cache is bypassed while the profiler has measurement noise enabled
// (noisy searches are not pure functions of block structure), matching the
// measurement cache's convention. nil detaches.
func (o Options) WithBlockCache(c *blockcache.Cache) Options {
	o.blockCache = c
	return o
}

// BlockCache returns the attached whole-block schedule cache (nil if
// none).
func (o Options) BlockCache() *blockcache.Cache { return o.blockCache }

// withDefaults fills unset options. It is idempotent: explicit unbounded
// bounds stay -1 (NOT normalized to 0, which would make them
// indistinguishable from the zero value and silently re-defaulted on a
// second application), and every consumer of Pruning treats non-positive
// bounds as unbounded.
func (o Options) withDefaults() Options {
	if o.Pruning == (Pruning{}) {
		// Zero-value Pruning means "paper defaults"; an exhaustive search
		// is requested with explicit -1 bounds (see the bound convention
		// on Pruning).
		o.Pruning = DefaultPruning
	}
	return o
}

// Validate reports whether the options are well-formed: pruning bounds
// must be positive, 0 (unset), or -1 (explicitly unbounded — see the
// bound convention on Pruning), and MaxBlockOps must be non-negative.
// Optimize validates implicitly; call Validate directly to surface
// configuration errors before starting a search (e.g. when parsing
// user-supplied requests).
func (o Options) Validate() error {
	if o.Pruning.R < -1 {
		return fmt.Errorf("core: invalid pruning bound R=%d (positive, 0 = paper default, or -1 = explicitly unbounded)", o.Pruning.R)
	}
	if o.Pruning.S < -1 {
		return fmt.Errorf("core: invalid pruning bound S=%d (positive, 0 = paper default, or -1 = explicitly unbounded)", o.Pruning.S)
	}
	if o.MaxBlockOps < 0 {
		return fmt.Errorf("core: invalid MaxBlockOps=%d (0 = bitset limit, positive = cap)", o.MaxBlockOps)
	}
	return nil
}

// Canonical returns the options as Optimize will interpret them: defaults
// filled in, idempotently (negative pruning bounds are preserved as-is;
// every consumer treats non-positive bounds as unbounded). Two Options
// with the same Canonical form produce identical searches; for a
// normalized identity string — under which all "unbounded" spellings
// collapse — use Fingerprint, which is what schedule caches key on.
func (o Options) Canonical() Options { return o.withDefaults() }

// effectiveWorkers resolves the Workers knob to a concrete pool size.
func (o Options) effectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Fingerprint renders the canonical options as a short stable string
// ("IOS-Both/r=3,s=8" or "IOS-Both/r=3,s=8/block=40"), suitable as a
// cache-key component. Workers is excluded: it changes how the search
// executes, never what it returns.
func (o Options) Fingerprint() string {
	c := o.Canonical()
	s := c.Strategies.String() + "/" + c.Pruning.String()
	if c.MaxBlockOps > 0 {
		s += fmt.Sprintf("/block=%d", c.MaxBlockOps)
	}
	return s
}

// Unpruned is the Options value for an exhaustive search: negative bounds
// mean "explicitly unbounded" (see withDefaults).
var Unpruned = Options{Pruning: Pruning{R: -1, S: -1}}
