// Package core implements the Inter-Operator Scheduler — the paper's
// primary contribution (Algorithm 1). It finds, per block of a computation
// graph, the latency-optimal partition into stages by dynamic programming
// over "endings": for operator set S, cost[S] = min over endings S' of S of
// cost[S−S'] + stage_latency[S'], where an ending is a subset with no edge
// leaving it into the remainder (Section 4.1). stage_latency is obtained by
// direct measurement on the execution substrate via internal/profile, and
// GENERATESTAGE picks the cheaper of the two parallelization strategies
// ("concurrent execution" vs "operator merge") for each candidate stage.
package core

import "fmt"

// StrategySet selects which parallelization strategies GENERATESTAGE may
// use, matching the paper's IOS-Parallel / IOS-Merge / IOS-Both variants
// (Section 6.1).
type StrategySet int

const (
	// Both considers concurrent execution and operator merge (IOS-Both,
	// the default "IOS" in the paper).
	Both StrategySet = iota
	// ParallelOnly considers only concurrent execution (IOS-Parallel).
	ParallelOnly
	// MergeOnly considers only operator merge (IOS-Merge). Stages that
	// cannot merge are restricted to a single operator, which degenerates
	// to the sequential schedule when no merge opportunities exist —
	// exactly the paper's observation on RandWire/NasNet.
	MergeOnly
)

// String names the strategy set like the paper's figure legends.
func (s StrategySet) String() string {
	switch s {
	case ParallelOnly:
		return "IOS-Parallel"
	case MergeOnly:
		return "IOS-Merge"
	default:
		return "IOS-Both"
	}
}

// Pruning is the schedule-pruning strategy P of Section 4.3: an ending S'
// satisfies P iff it has at most S groups and each group has at most R
// operators. The paper's default is r=3, s=8.
type Pruning struct {
	// R bounds operators per group (0 = unbounded).
	R int
	// S bounds groups per stage (0 = unbounded).
	S int
}

// DefaultPruning is the paper's evaluation setting (r = 3, s = 8).
var DefaultPruning = Pruning{R: 3, S: 8}

// NoPruning explores the full schedule space.
var NoPruning = Pruning{}

// String renders "r=3,s=8" or "none".
func (p Pruning) String() string {
	if p.R == 0 && p.S == 0 {
		return "none"
	}
	return fmt.Sprintf("r=%d,s=%d", p.R, p.S)
}

// maxStageOps returns the largest stage size admissible under the pruning,
// used to cut the ending enumeration early.
func (p Pruning) maxStageOps() int {
	if p.R == 0 || p.S == 0 {
		return 1 << 30
	}
	return p.R * p.S
}

// Options configures Optimize.
type Options struct {
	// Strategies selects the IOS variant (default Both).
	Strategies StrategySet
	// Pruning bounds the ending enumeration (default r=3, s=8; use
	// NoPruning for the exhaustive search).
	Pruning Pruning
	// MaxBlockOps caps the block partition size (0 = bitset limit).
	MaxBlockOps int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Pruning == (Pruning{}) {
		// Zero-value Options means "paper defaults"; explicit NoPruning
		// is requested via Options{Pruning: NoPruning} which is the same
		// zero struct — so we distinguish by convention: callers wanting
		// no pruning set R and S to -1.
		o.Pruning = DefaultPruning
	}
	if o.Pruning.R < 0 {
		o.Pruning.R = 0
	}
	if o.Pruning.S < 0 {
		o.Pruning.S = 0
	}
	return o
}

// Unpruned is the Options value for an exhaustive search: negative bounds
// normalize to "unbounded" (see withDefaults).
var Unpruned = Options{Pruning: Pruning{R: -1, S: -1}}
