package core

// The level-synchronous bottom-up DP engine. The original implementation
// of Algorithm 1 (kept as the oracle in dp_reference.go) is a memoized
// top-down recursion: single-threaded, copying the ending enumerator's
// component list on every branch, and re-deriving each chosen ending's
// group structure with a BFS both when measuring and when emitting the
// stage. This engine computes the identical dynamic program as two
// level-synchronous passes over the reachable state space:
//
//  1. Discovery (top-down, by decreasing cardinality): starting from the
//     full block, enumerate each reachable state's admissible endings,
//     store the list (the enumeration runs exactly once per state), and
//     record the resulting remainder states. A state of cardinality k is
//     only ever produced from states of cardinality > k, so processing
//     one cardinality level at a time discovers every reachable state
//     exactly once — the same state set the recursion memoizes, including
//     under pruning (states reachable only through pruned transitions are
//     never materialized). The enumerator's incrementally tracked
//     component structure is captured into the stage memo the first time
//     each distinct ending is seen, so no BFS ever re-derives groups.
//
//  2. Compute (bottom-up, by increasing cardinality): cost[S] depends
//     only on cost[S − S'] for non-empty endings S', i.e. on strictly
//     smaller levels, so all states of one level are independent and are
//     processed in parallel across a pool of workers. Each worker owns a
//     private simulator (via profile.Service) and walks its states'
//     stored ending lists in a plain loop (no closures, no recursion);
//     stage latencies are memoized in a sharded, per-ending singleflight
//     table so every distinct ending is measured exactly once regardless
//     of which workers race to it.
//
// Equivalence with the reference recursion is bit-exact (asserted by
// property tests and the zoo equivalence test): per state, candidates are
// evaluated in the same order (serial tail first, then endings in
// enumeration order) with the same strictly-less comparison, stage
// latencies are measured from identically ordered groups, and the
// serial-tail sum accumulates per-node solo durations in the same order —
// so costs, choices, schedules, and the States/Transitions/Measurements
// statistics all coincide for any worker count.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ios/internal/bitset"
	"ios/internal/graph"
	"ios/internal/profile"
	"ios/internal/schedule"
)

// stageShardCount is the maximum shard count of the per-ending stage
// memo; the engine uses enough shards to keep lock contention negligible
// at its worker count (one suffices for a serial engine, and avoids
// paying 64 table setups for every small block).
const stageShardCount = 64

// stageEntry memoizes GENERATESTAGE for one ending within a block. The
// done/mu pair makes the entry a singleflight: the first worker to claim
// it measures, concurrent claimants block on mu until the result is
// published (done is set with release semantics after all fields are
// written, so the lock-free fast path reads a complete entry). A manual
// gate instead of sync.Once keeps the compute pass's per-transition fast
// path free of closure allocations.
type stageEntry struct {
	done     atomic.Bool
	mu       sync.Mutex
	lat      float64
	strategy schedule.Strategy
	ok       bool
	err      error
	// groups is the ending's connected components, captured from the
	// enumerator's incremental tracking when the ending was first seen
	// and sorted by smallest element when the entry is measured, so no
	// BFS ever re-derives the group structure — neither for measurement
	// nor when the chosen stage is emitted.
	groups []bitset.Set
}

// stageShard is one shard of the per-ending stage memo: a dedup table
// from ending to entry position plus the entry storage itself. Entries
// live in fixed-size chunks so growth never copies (entry addresses are
// stable from creation) and abandons no backing arrays to the collector;
// group sets are carved from a geometrically growing side arena for the
// same reason.
type stageShard struct {
	mu          sync.Mutex
	m           *setTable
	chunks      [][]stageEntry
	groupsArena []bitset.Set
}

// carveGroups copies a component list into the shard's arena, returning a
// stable exact-size slice. Caller holds sh.mu (or the engine is serial).
func (sh *stageShard) carveGroups(comps []bitset.Set) []bitset.Set {
	n := len(comps)
	if n == 0 {
		return nil
	}
	if cap(sh.groupsArena)-len(sh.groupsArena) < n {
		c := 2 * cap(sh.groupsArena)
		if c < 128 {
			c = 128
		}
		if c > 1<<14 {
			c = 1 << 14
		}
		if c < n {
			c = n
		}
		sh.groupsArena = make([]bitset.Set, 0, c)
	}
	start := len(sh.groupsArena)
	sh.groupsArena = sh.groupsArena[: start+n : cap(sh.groupsArena)]
	copy(sh.groupsArena[start:], comps)
	return sh.groupsArena[start : start+n : start+n]
}

// entChunkBits sizes an entry chunk (256 entries — small enough that a
// tiny block pays almost nothing, large enough that a RandWire-scale memo
// needs only hundreds of chunks); a packed position is
// chunk<<entChunkBits | index.
const entChunkBits = 8

// alloc appends one zero entry, returning its packed position and stable
// address. Caller holds sh.mu (or the engine is serial).
func (sh *stageShard) alloc() (int32, *stageEntry) {
	if n := len(sh.chunks); n == 0 || len(sh.chunks[n-1]) == cap(sh.chunks[n-1]) {
		sh.chunks = append(sh.chunks, make([]stageEntry, 0, 1<<entChunkBits))
	}
	ci := len(sh.chunks) - 1
	c := sh.chunks[ci]
	c = append(c, stageEntry{})
	sh.chunks[ci] = c
	return int32(ci)<<entChunkBits | int32(len(c)-1), &c[len(c)-1]
}

// transition is one stored (S, S') pair: the ending and the packed
// shard/position handle of its stage-memo entry, resolved at discovery.
// Keeping the record pointer-free matters: the transition arrays are the
// engine's largest allocation (one record per #(S, S')), and without
// pointers the garbage collector never scans them.
type transition struct {
	ending bitset.Set
	ent    int32
}

// shardOf spreads ending bitmasks over the engine's shards (Fibonacci
// hashing; shardCount is a power of two).
func (e *engine) shardOf(s bitset.Set) int {
	return int((uint64(s)*0x9E3779B97F4A7C15)>>58) & (e.shardCount - 1)
}

// setTable is an open-addressing hash table from bitmask to int32, the
// engine's replacement for map[bitset.Set]int32 on the per-transition hot
// paths (state-index lookups and ending dedup run millions of times per
// block; Go's map is several times slower than two or three linear
// probes). Key and value share a slot so a probe touches one cache line.
// Keys are non-empty sets, so 0 marks a free slot. The hash is the
// splitmix64 finalizer: block bitmasks are highly structured (order
// ideals share long runs of bits), and weaker multiplicative hashes
// cluster badly enough on them to dominate the whole search.
type setTable struct {
	slots []setSlot
	used  int
	shift uint8 // 64 - log2(len(slots))
}

type setSlot struct {
	k uint64
	v int32
}

func newSetTable(hint int) *setTable {
	size, shift := 16, uint8(60)
	for size < hint*2 {
		size <<= 1
		shift--
	}
	return &setTable{slots: make([]setSlot, size), shift: shift}
}

// hashKey is the splitmix64 finalizer (full avalanche in ~5 ops).
func hashKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (t *setTable) get(k bitset.Set) (int32, bool) {
	mask := len(t.slots) - 1
	for i := int(hashKey(uint64(k)) >> t.shift); ; i = (i + 1) & mask {
		switch t.slots[i].k {
		case uint64(k):
			return t.slots[i].v, true
		case 0:
			return 0, false
		}
	}
}

func (t *setTable) put(k bitset.Set, v int32) {
	if 2*(t.used+1) > len(t.slots) {
		t.grow()
	}
	mask := len(t.slots) - 1
	for i := int(hashKey(uint64(k)) >> t.shift); ; i = (i + 1) & mask {
		switch t.slots[i].k {
		case 0:
			t.slots[i] = setSlot{k: uint64(k), v: v}
			t.used++
			return
		case uint64(k):
			t.slots[i].v = v
			return
		}
	}
}

func (t *setTable) grow() {
	old := t.slots
	t.slots = make([]setSlot, 2*len(old))
	t.shift--
	t.used = 0
	for _, s := range old {
		if s.k != 0 {
			t.put(bitset.Set(s.k), s.v)
		}
	}
}

// entHandle packs a shard and a chunked position into a transition's
// entry handle.
func entHandle(shard int, pos int32) int32 { return int32(shard)<<25 | pos }

// entryAt resolves a handle to its (stable) entry address.
func (e *engine) entryAt(h int32) *stageEntry {
	pos := h & (1<<25 - 1)
	return &e.shards[h>>25].chunks[pos>>entChunkBits][pos&(1<<entChunkBits-1)]
}

// engine carries the DP state for one block search.
type engine struct {
	b    *graph.Block
	opts Options
	svc  *profile.Service

	// stageSync and solo feed the allocation-free serial-tail candidate:
	// a serial chain's latency is the stage barrier plus the sum of its
	// nodes' solo durations (see Profiler.MeasureSerialChain). noisy
	// falls back to the measured path so the noise protocol still applies
	// per candidate.
	stageSync float64
	solo      []float64
	noisy     bool

	shards     [stageShardCount]stageShard
	shardCount int

	// The reachable state space, discovered by pass 1: states[i] is the
	// bitmask of state i, index its inverse, levels[k] the states of
	// cardinality k, endings[i] state i's admissible endings in
	// enumeration order, each carrying its resolved stage-memo entry so
	// the compute pass touches no map and no lock per transition. cost
	// and last are indexed like states; all per-state slots are written
	// lock-free (each state is owned by exactly one worker per level).
	index   *setTable
	states  []bitset.Set
	levels  [][]int32
	endings [][]transition
	cost    []float64
	last    []choice

	workers []*engineWorker
	// serial marks a one-worker engine: every lock degenerates to
	// uncontended single-threaded access and is skipped on hot paths.
	serial bool
	// stop is set on the first error or on context cancellation (via a
	// context.AfterFunc registered in run); workers check it between
	// states, so in-flight levels drain promptly — each worker finishes
	// at most the state it is on.
	stop  atomic.Bool
	stats Stats

	// Progress plumbing: prog aggregates across blocks (nil = no
	// reporting), prev* hold this engine's last reported cumulative
	// counters so level barriers emit deltas.
	prog                            *progressTracker
	prevStates, prevTrans, prevMeas int
}

// engineWorker is the per-goroutine state of one pool worker.
type engineWorker struct {
	e     *engine
	prof  *profile.Profiler
	enum  enumerator
	stats Stats
	err   error
	// children buffers states discovered during one level of pass 1.
	children []bitset.Set
	// Fixed-capacity (bitset.MaxElems) measurement scratch: nodeBuf for
	// the noisy serial-tail path, stageNodes/groupArena/groupLists for
	// stage setup in measureStage.
	nodeBuf    []*graph.Node
	stageNodes []*graph.Node
	groupArena []*graph.Node
	groupLists [][]*graph.Node
	// listScratch assembles one state's transition list; carve copies the
	// exact-size result into listArena chunks, so list growth churns one
	// reusable buffer instead of abandoning doubling backing arrays for
	// every state.
	listScratch []transition
	listArena   []transition
}

// listChunkLen caps a worker's transition-arena chunk (records); chunks
// start small and double so tiny blocks stay cheap.
const listChunkLen = 1 << 15

// carve copies a finished state list into the worker's arena, returning a
// stable exact-size slice.
func (w *engineWorker) carve(list []transition) []transition {
	n := len(list)
	if n == 0 {
		return nil
	}
	if cap(w.listArena)-len(w.listArena) < n {
		c := 2 * cap(w.listArena)
		if c < 256 {
			c = 256
		}
		if c > listChunkLen {
			c = listChunkLen
		}
		if c < n {
			c = n
		}
		w.listArena = make([]transition, 0, c)
	}
	start := len(w.listArena)
	w.listArena = w.listArena[: start+n : cap(w.listArena)]
	copy(w.listArena[start:], list)
	return w.listArena[start : start+n : start+n]
}

// smallBlockOps is the parallel-dispatch threshold: blocks at or below
// this operator count always run single-worker. A tiny block's whole
// search costs less than the engine's parallel setup (worker forks with
// private simulators, extra memo shards), which PERF.md measured as a
// ~0.9× regression on SqueezeNet; a serial engine skips all of it — no
// fork (the service drives the root profiler directly), one shard, inline
// level loops. Results are bit-identical at every worker count, so this
// is purely an execution heuristic.
const smallBlockOps = 8

// newEngine builds the engine and its measurement service: the passed
// profiler prelowers the block's nodes (and computes their solo
// durations), then each worker forks from it, sharing those immutable
// tables (a single-worker engine skips the fork and drives the profiler
// directly).
func newEngine(b *graph.Block, prof *profile.Profiler, opts Options) *engine {
	e := &engine{b: b, opts: opts, prog: opts.tracker}
	workers := opts.effectiveWorkers()
	// A block can never keep more workers busy than it has operators, and
	// Optimize may search GOMAXPROCS blocks concurrently — capping by
	// block size keeps the fork fan-out proportional to real work.
	if n := len(b.Nodes); workers > n {
		workers = n
	}
	if len(b.Nodes) <= smallBlockOps {
		workers = 1
	}
	// Measurement noise draws from per-worker RNG streams, so which
	// worker measures an ending would make noisy results racy; a single
	// worker keeps them deterministic per seed (noise is an ablation
	// feature — search speed is irrelevant there).
	if prof.Noise > 0 {
		workers = 1
	}
	e.svc = profile.NewService(prof, b.Nodes, workers)
	e.stageSync = prof.Spec().StageSync
	e.noisy = prof.Noise > 0
	e.solo = make([]float64, len(b.Nodes))
	for i, n := range b.Nodes {
		e.solo[i] = prof.SoloDuration(n) // cached by the service's prelower
	}
	e.workers = make([]*engineWorker, e.svc.Workers())
	e.serial = e.svc.Workers() == 1
	e.shardCount = 1
	if !e.serial {
		for e.shardCount < 4*len(e.workers) {
			e.shardCount <<= 1
		}
		if e.shardCount > stageShardCount {
			e.shardCount = stageShardCount
		}
	}
	for i := 0; i < e.shardCount; i++ {
		e.shards[i].m = newSetTable(16)
	}
	for i := range e.workers {
		e.workers[i] = &engineWorker{
			e:          e,
			prof:       e.svc.Worker(i),
			stageNodes: make([]*graph.Node, 0, bitset.MaxElems),
			groupArena: make([]*graph.Node, 0, bitset.MaxElems),
			groupLists: make([][]*graph.Node, 0, bitset.MaxElems),
		}
	}
	return e
}

// close releases the measurement service, folding worker measurement
// counts back into the profiler the engine was built from.
func (e *engine) close() { e.svc.Close() }

// run executes both passes and reconstructs the block's stage list. The
// context is observed through the engine's stop flag — an AfterFunc flips
// it the moment ctx is cancelled, so every worker drains at its next
// state boundary — and re-checked at each level barrier, where the
// wrapped ctx.Err() is returned and all partial DP state is discarded.
func (e *engine) run(ctx context.Context) ([]schedule.Stage, Stats, error) {
	unregister := context.AfterFunc(ctx, func() { e.stop.Store(true) })
	defer unregister()
	if err := e.discover(ctx); err != nil {
		return nil, e.stats, err
	}
	if err := e.compute(ctx); err != nil {
		return nil, e.stats, err
	}
	stages, err := e.reconstruct()
	return stages, e.stats, err
}

// ctxErr returns the wrapped context error if the context is done.
func (e *engine) ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return wrapCancelled(err)
	}
	return nil
}

// reportLevel emits a progress snapshot at a level barrier: the delta of
// this engine's cumulative state/transition/measurement counters since
// the previous barrier, folded into the cross-block tracker. Workers are
// quiescent at a barrier, so their counters are safe to read.
func (e *engine) reportLevel(phase string, level int) {
	if e.prog == nil {
		return
	}
	var s, tr, m int
	for _, w := range e.workers {
		s += w.stats.States
		tr += w.stats.Transitions
		m += w.prof.Measurements
	}
	e.prog.emit(e.b.Index+1, len(e.b.Nodes), phase, level,
		s-e.prevStates, tr-e.prevTrans, m-e.prevMeas)
	e.prevStates, e.prevTrans, e.prevMeas = s, tr, m
}

// runLevel applies fn to every state of one level, fanned out across the
// worker pool with an atomic work-stealing cursor. A single-worker engine
// runs inline: no goroutines, no atomics, so Workers=1 is a strictly
// cheaper replacement for the reference recursion.
func (e *engine) runLevel(items []int32, fn func(*engineWorker, int32)) {
	if len(e.workers) == 1 || len(items) == 1 {
		w := e.workers[0]
		for _, id := range items {
			if e.stop.Load() {
				return
			}
			fn(w, id)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *engineWorker) {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(items)) || e.stop.Load() {
					return
				}
				fn(w, items[i])
			}
		}(w)
	}
	wg.Wait()
}

// discover runs pass 1: enumerate reachable states by decreasing
// cardinality. Workers buffer newly seen remainders; the merge into the
// global index happens serially at each level barrier, so the map is
// read-only while a level is in flight. Cancellation is checked at every
// level barrier (workers additionally drain mid-level via the stop flag).
func (e *engine) discover(ctx context.Context) error {
	n := len(e.b.Nodes)
	e.index = newSetTable(64)
	e.levels = make([][]int32, n+1)
	e.addState(e.b.All())
	for k := n; k >= 1; k-- {
		if err := e.ctxErr(ctx); err != nil {
			return err
		}
		items := e.levels[k]
		if len(items) == 0 {
			continue
		}
		for len(e.endings) < len(e.states) {
			e.endings = append(e.endings, nil)
		}
		e.runLevel(items, (*engineWorker).discoverState)
		for _, w := range e.workers {
			for _, c := range w.children {
				e.addState(c)
			}
			w.children = w.children[:0]
		}
		e.reportLevel("discover", k)
	}
	if err := e.ctxErr(ctx); err != nil {
		return err
	}
	e.cost = make([]float64, len(e.states))
	e.last = make([]choice, len(e.states))
	return nil
}

// addState registers a state if unseen. Serial (level barrier) only.
func (e *engine) addState(s bitset.Set) {
	if _, ok := e.index.get(s); ok {
		return
	}
	id := int32(len(e.states))
	e.index.put(s, id)
	e.states = append(e.states, s)
	e.levels[s.Len()] = append(e.levels[s.Len()], id)
}

// discoverState enumerates one state's admissible endings exactly once:
// the list is stored for the compute pass, each distinct ending's group
// structure is captured into the stage memo, and remainders not yet in
// the index are buffered (duplicates within the in-flight level are
// deduplicated at the merge).
func (w *engineWorker) discoverState(id int32) {
	e := w.e
	s := e.states[id]
	list := w.listScratch[:0]
	w.enum.forEach(e.b, s, e.opts.Pruning, func(ending bitset.Set, comps []bitset.Set) bool {
		list = append(list, transition{ending: ending, ent: e.recordEnding(ending, comps)})
		rem := s.Diff(ending)
		if rem.IsEmpty() {
			return true
		}
		if _, known := e.index.get(rem); !known {
			w.children = append(w.children, rem)
		}
		return true
	})
	e.endings[id] = w.carve(list)
	w.listScratch = list[:0]
}

// recordEnding returns the stage memo handle for an ending, creating the
// entry on first sight with the enumerator's component structure captured
// so no later pass re-derives groups. A component partition is a property
// of the ending alone (connectivity within the block), so whichever state
// sees the ending first records the same groups.
func (e *engine) recordEnding(ending bitset.Set, comps []bitset.Set) int32 {
	shard := e.shardOf(ending)
	sh := &e.shards[shard]
	if !e.serial {
		sh.mu.Lock()
	}
	h, ok := sh.m.get(ending)
	if !ok {
		pos, ent := sh.alloc()
		ent.groups = sh.carveGroups(comps)
		h = entHandle(shard, pos)
		sh.m.put(ending, h)
	}
	if !e.serial {
		sh.mu.Unlock()
	}
	return h
}

// compute runs pass 2: evaluate cost[S] level by level, bottom-up.
// Cancellation is checked at every level barrier; a cancelled engine
// discards its cost/choice tables by never reaching reconstruct.
func (e *engine) compute(ctx context.Context) error {
	for k := 1; k < len(e.levels); k++ {
		if err := e.ctxErr(ctx); err != nil {
			return err
		}
		items := e.levels[k]
		if len(items) == 0 {
			continue
		}
		e.runLevel(items, (*engineWorker).computeState)
		// The context check precedes the worker-error check so a search
		// cancelled mid-measurement reports the cancellation, not
		// whatever partial state a draining worker happened to record.
		if err := e.ctxErr(ctx); err != nil {
			return err
		}
		for _, w := range e.workers {
			if w.err != nil {
				return w.err
			}
		}
		e.reportLevel("compute", k)
	}
	for _, w := range e.workers {
		e.stats.States += w.stats.States
		e.stats.Transitions += w.stats.Transitions
	}
	return nil
}

// computeState evaluates Algorithm 1's SCHEDULER for one state: the
// serial-tail candidate first, then every admissible ending in
// enumeration order, exactly as the reference recursion does.
func (w *engineWorker) computeState(id int32) {
	e := w.e
	s := e.states[id]
	w.stats.States++

	// Serial-tail candidate: close the whole remaining suffix as one
	// stage whose single group runs every operator back-to-back on one
	// stream. The pruning strategy caps the size of *parallel* groups
	// (Section 4.3); a pure serial chain involves no inter-operator
	// parallelism, so admitting it at any length only restores schedules
	// the unpruned space already contains (in particular, the stream-
	// sequential schedule, which IOS must never lose to).
	w.stats.Transitions++
	best := w.serialLatency(s)
	bestChoice := choice{ending: s, strategy: schedule.Concurrent, serial: true}

	for _, tr := range e.endings[id] {
		w.stats.Transitions++
		ent := e.entryAt(tr.ent)
		if !ent.done.Load() {
			e.measureSlow(ent, tr.ending, w)
		}
		if ent.err != nil {
			w.err = ent.err
			e.stop.Store(true)
			break
		}
		if !ent.ok {
			continue // infeasible under the strategy restriction
		}
		var sub float64
		if rem := s.Diff(tr.ending); !rem.IsEmpty() {
			ci, _ := e.index.get(rem) // strictly lower level: complete
			sub = e.cost[ci]
		}
		if total := sub + ent.lat; total < best {
			best = total
			bestChoice = choice{ending: tr.ending, strategy: ent.strategy}
		}
	}
	e.cost[id] = best
	e.last[id] = bestChoice
}

// serialLatency is the serial-tail candidate's latency: barrier plus the
// per-node solo durations, summed in topological order (bit-identical to
// Profiler.MeasureSerialChain, which the noisy path still uses so the
// median-of-k noise protocol applies per candidate).
func (w *engineWorker) serialLatency(s bitset.Set) float64 {
	e := w.e
	if e.noisy {
		w.nodeBuf = w.nodeBuf[:0]
		for i := s.NextAfter(-1); i >= 0; i = s.NextAfter(i) {
			w.nodeBuf = append(w.nodeBuf, e.b.Nodes[i])
		}
		return w.prof.MeasureSerialChain(w.nodeBuf)
	}
	total := e.stageSync
	for i := s.NextAfter(-1); i >= 0; i = s.NextAfter(i) {
		total += e.solo[i]
	}
	return total
}

// measureSlow is the stage singleflight's slow path: take the entry lock,
// re-check, measure, publish.
func (e *engine) measureSlow(ent *stageEntry, ending bitset.Set, w *engineWorker) {
	if e.serial {
		e.measureStage(ent, ending, w)
		ent.done.Store(true)
		return
	}
	ent.mu.Lock()
	if !ent.done.Load() {
		e.measureStage(ent, ending, w)
		ent.done.Store(true)
	}
	ent.mu.Unlock()
}

// measureStage is Algorithm 1's GENERATESTAGE: choose the better
// parallelization strategy for the candidate stage and record its
// measured latency. ok=false means the stage is infeasible under the
// configured StrategySet (e.g. MergeOnly with unmergeable multi-op sets).
// ent.groups was captured at discovery and is canonicalized (sorted by
// smallest element) here, once per distinct ending. The node lists handed
// to the measurement are built in the worker's fixed-capacity scratch —
// the simulator does not retain them — so measurement setup allocates
// nothing.
func (e *engine) measureStage(ent *stageEntry, ending bitset.Set, w *engineWorker) {
	groups := ent.groups
	sortGroups(groups)
	nodes := w.stageNodes[:0]
	for i := ending.NextAfter(-1); i >= 0; i = ending.NextAfter(i) {
		nodes = append(nodes, e.b.Nodes[i])
	}
	// Slice per-group node lists out of one fixed-capacity arena; the
	// capacity bound (bitset.MaxElems ≥ any block) guarantees no
	// relocation invalidates earlier sub-slices.
	flat := w.groupArena[:0]
	groupNodes := w.groupLists[:0]
	for _, gs := range groups {
		start := len(flat)
		for i := gs.NextAfter(-1); i >= 0; i = gs.NextAfter(i) {
			flat = append(flat, e.b.Nodes[i])
		}
		groupNodes = append(groupNodes, flat[start:len(flat):len(flat)])
	}

	// Under MergeOnly (the paper's IOS-Merge variant) stages may not use
	// inter-operator parallelism: a concurrent stage is admissible only
	// when it degenerates to a single sequential chain, which makes the
	// variant coincide with the sequential schedule on networks without
	// merge opportunities (Section 6.1's RandWire/NasNet observation).
	concurrentAllowed := e.opts.Strategies != MergeOnly || len(groups) == 1
	mergeAllowed := e.opts.Strategies != ParallelOnly && profile.CanMerge(nodes)

	lConc, lMerge := math.Inf(1), math.Inf(1)
	var err error
	if concurrentAllowed {
		lConc, err = w.prof.MeasureStageUncached(schedule.Stage{Strategy: schedule.Concurrent, Groups: groupNodes})
		if err != nil {
			ent.err = err
			return
		}
	}
	if mergeAllowed {
		lMerge, err = w.prof.MeasureStageUncached(schedule.Stage{Strategy: schedule.Merge, Groups: [][]*graph.Node{nodes}})
		if err != nil {
			ent.err = err
			return
		}
	}
	switch {
	case math.IsInf(lConc, 1) && math.IsInf(lMerge, 1):
		ent.ok = false
	case lConc <= lMerge:
		ent.lat, ent.strategy, ent.ok = lConc, schedule.Concurrent, true
	default:
		ent.lat, ent.strategy, ent.ok = lMerge, schedule.Merge, true
	}
}

// reconstruct walks choice[] backwards from the full set (Algorithm 1
// L6-11), prepending stages. Chosen endings reuse the group structure the
// stage memo captured at discovery, so no BFS runs here either.
func (e *engine) reconstruct() ([]schedule.Stage, error) {
	var rev []schedule.Stage
	for s := e.b.All(); !s.IsEmpty(); {
		id, ok := e.index.get(s)
		if !ok || e.last[id].ending.IsEmpty() {
			return nil, fmt.Errorf("no feasible schedule for state %v (over-restrictive strategy set?)", s)
		}
		c := e.last[id]
		rev = append(rev, e.buildStage(c))
		s = s.Diff(c.ending)
	}
	stages := make([]schedule.Stage, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		stages = append(stages, rev[i])
	}
	return stages, nil
}

// buildStage materializes a schedule stage from a DP choice. This runs
// once per emitted stage, with fresh slices (the schedule outlives the
// engine's scratch).
func (e *engine) buildStage(c choice) schedule.Stage {
	switch {
	case c.serial:
		// The serial tail is one single-group concurrent stage: every
		// operator issues back-to-back on one stream in topological order.
		return schedule.Stage{Strategy: schedule.Concurrent, Groups: [][]*graph.Node{e.nodesOf(c.ending)}}
	case c.strategy == schedule.Merge:
		return schedule.Stage{Strategy: schedule.Merge, Groups: [][]*graph.Node{e.nodesOf(c.ending)}}
	default:
		groups := e.entryOf(c.ending).groups // canonicalized at measurement
		groupNodes := make([][]*graph.Node, len(groups))
		for gi, gs := range groups {
			groupNodes[gi] = e.nodesOf(gs)
		}
		return schedule.Stage{Strategy: schedule.Concurrent, Groups: groupNodes}
	}
}

// entryOf returns the stage memo entry of a chosen ending; the choice
// came out of the compute pass, so the entry exists and is complete.
func (e *engine) entryOf(ending bitset.Set) *stageEntry {
	sh := &e.shards[e.shardOf(ending)]
	sh.mu.Lock()
	h, ok := sh.m.get(ending)
	sh.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("core: no stage memo entry for chosen ending %v", ending))
	}
	return e.entryAt(h)
}

// nodesOf converts a block-local bitset to nodes in topological order.
func (e *engine) nodesOf(s bitset.Set) []*graph.Node {
	nodes := make([]*graph.Node, 0, s.Len())
	for i := s.NextAfter(-1); i >= 0; i = s.NextAfter(i) {
		nodes = append(nodes, e.b.Nodes[i])
	}
	return nodes
}

// sortGroups orders disjoint component sets by smallest element — the
// canonical order groupsOf produces and the stream order stages are
// measured (and emitted) with. Insertion sort: group counts are tiny (at
// most the pruning bound s, 64 absolute), and sort.Slice's reflection
// machinery allocates.
func sortGroups(groups []bitset.Set) {
	for i := 1; i < len(groups); i++ {
		g := groups[i]
		j := i - 1
		for j >= 0 && groups[j].Min() > g.Min() {
			groups[j+1] = groups[j]
			j--
		}
		groups[j+1] = g
	}
}
