// Package schedule defines the schedule IR produced by IOS and consumed by
// the execution engines: an ordered list of stages, each with a
// parallelization strategy and a partition of its operators into groups
// (Section 3). Stages execute sequentially; within a "concurrent execution"
// stage, groups run concurrently and operators within a group run
// sequentially; an "operator merge" stage executes all of its operators as
// one fused kernel.
package schedule

import (
	"fmt"
	"sort"
	"strings"

	"ios/internal/graph"
)

// Strategy is a stage's parallelization strategy.
type Strategy int

const (
	// Concurrent is the paper's "concurrent execution": disjoint groups
	// on separate streams.
	Concurrent Strategy = iota
	// Merge is the paper's "operator merge": same-type operators stacked
	// into one wider kernel.
	Merge
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	if s == Merge {
		return "operator merge"
	}
	return "concurrent execution"
}

// Stage is one step of a schedule.
type Stage struct {
	// Strategy selects how the stage's operators are parallelized.
	Strategy Strategy
	// Groups partitions the stage's operators. For Concurrent, each
	// group is a chain executed on its own stream in slice order. For
	// Merge there is a single group whose operators fuse into one
	// kernel.
	Groups [][]*graph.Node
}

// Ops returns all operators in the stage, in group order.
func (st Stage) Ops() []*graph.Node {
	var out []*graph.Node
	for _, g := range st.Groups {
		out = append(out, g...)
	}
	return out
}

// NumOps returns the operator count of the stage.
func (st Stage) NumOps() int {
	n := 0
	for _, g := range st.Groups {
		n += len(g)
	}
	return n
}

// String renders a compact stage description like
// "[{a, b} | {c}] concurrent execution".
func (st Stage) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, g := range st.Groups {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteByte('{')
		for j, n := range g {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(n.Name)
		}
		b.WriteByte('}')
	}
	b.WriteString("] ")
	b.WriteString(st.Strategy.String())
	return b.String()
}

// Schedule is an execution plan for a graph: the paper's
// Q = {(S1,T1), ..., (Sk,Tk)}.
type Schedule struct {
	// Graph is the computation graph this schedule executes.
	Graph *graph.Graph
	// Stages run sequentially in slice order.
	Stages []Stage
}

// NumStages returns the stage count.
func (s *Schedule) NumStages() int { return len(s.Stages) }

// Summary condenses a schedule's shape into the few numbers that reports
// and serving responses quote: how many stages of each strategy, the
// operator count, and the widest stage (its group count, i.e. how many
// streams the schedule ever occupies at once).
type Summary struct {
	Stages           int `json:"stages"`
	Ops              int `json:"ops"`
	ConcurrentStages int `json:"concurrent_stages"`
	MergeStages      int `json:"merge_stages"`
	MaxWidth         int `json:"max_width"`
}

// Summarize computes the schedule's Summary.
func (s *Schedule) Summarize() Summary {
	sum := Summary{Stages: len(s.Stages)}
	for _, st := range s.Stages {
		sum.Ops += st.NumOps()
		if st.Strategy == Merge {
			sum.MergeStages++
		} else {
			sum.ConcurrentStages++
		}
		if w := len(st.Groups); w > sum.MaxWidth {
			sum.MaxWidth = w
		}
	}
	return sum
}

// String renders one stage per line.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule for %q (%d stages)\n", s.Graph.Name, len(s.Stages))
	for i, st := range s.Stages {
		fmt.Fprintf(&b, "  stage %d: %s\n", i+1, st.String())
	}
	return b.String()
}

// Validate checks that the schedule is feasible for its graph:
//
//   - the stages partition the graph's schedulable operators;
//   - every edge (u, v) has stage(u) <= stage(v) — i.e. each stage's
//     operator set is an ending of the suffix it closes (Section 4.1);
//   - within a stage, groups are disjoint, operators connected by an edge
//     share a group (the concurrent-execution rule), and each group's
//     order respects dependencies;
//   - within a stage, no edge connects two of its operators across groups.
func (s *Schedule) Validate() error {
	stageOf := make(map[*graph.Node]int)
	groupOf := make(map[*graph.Node]int)
	posOf := make(map[*graph.Node]int)
	for si, st := range s.Stages {
		if len(st.Groups) == 0 {
			return fmt.Errorf("schedule: stage %d has no groups", si+1)
		}
		for gi, grp := range st.Groups {
			if len(grp) == 0 {
				return fmt.Errorf("schedule: stage %d group %d is empty", si+1, gi+1)
			}
			for pi, n := range grp {
				if n.Op.Kind == graph.OpInput {
					return fmt.Errorf("schedule: input node %q scheduled in stage %d", n.Name, si+1)
				}
				if prev, dup := stageOf[n]; dup {
					return fmt.Errorf("schedule: node %q in both stage %d and stage %d", n.Name, prev+1, si+1)
				}
				stageOf[n] = si
				groupOf[n] = gi
				posOf[n] = pi
			}
		}
	}
	want := s.Graph.SchedulableNodes()
	if len(stageOf) != len(want) {
		return fmt.Errorf("schedule: covers %d of %d operators", len(stageOf), len(want))
	}
	for _, n := range want {
		if _, ok := stageOf[n]; !ok {
			return fmt.Errorf("schedule: operator %q not scheduled", n.Name)
		}
	}
	for _, v := range want {
		for _, u := range v.Inputs {
			if u.Op.Kind == graph.OpInput {
				continue
			}
			su, sv := stageOf[u], stageOf[v]
			if su > sv {
				return fmt.Errorf("schedule: edge %q->%q runs backwards (stage %d -> %d)", u.Name, v.Name, su+1, sv+1)
			}
			if su == sv {
				if groupOf[u] != groupOf[v] {
					return fmt.Errorf("schedule: edge %q->%q crosses groups within stage %d", u.Name, v.Name, su+1)
				}
				if posOf[u] >= posOf[v] {
					return fmt.Errorf("schedule: edge %q->%q violates group order in stage %d", u.Name, v.Name, su+1)
				}
			}
		}
	}
	return nil
}

// GroupsOf partitions ops into connected components under the graph's
// edges restricted to ops (the paper's group rule: "if two operators are
// connected by an edge, they are partitioned into the same group").
// Operators within each group are ordered topologically (by node ID) and
// groups are ordered by their smallest member for determinism.
func GroupsOf(ops []*graph.Node) [][]*graph.Node {
	in := make(map[*graph.Node]bool, len(ops))
	for _, n := range ops {
		in[n] = true
	}
	parent := make(map[*graph.Node]*graph.Node, len(ops))
	var find func(n *graph.Node) *graph.Node
	find = func(n *graph.Node) *graph.Node {
		if parent[n] == n {
			return n
		}
		r := find(parent[n])
		parent[n] = r
		return r
	}
	for _, n := range ops {
		parent[n] = n
	}
	union := func(a, b *graph.Node) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, n := range ops {
		for _, p := range n.Inputs {
			if in[p] {
				union(n, p)
			}
		}
	}
	byRoot := make(map[*graph.Node][]*graph.Node)
	for _, n := range ops {
		r := find(n)
		byRoot[r] = append(byRoot[r], n)
	}
	groups := make([][]*graph.Node, 0, len(byRoot))
	for _, g := range byRoot {
		graph.SortNodesByID(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0].ID < groups[j][0].ID })
	return groups
}

// Concat appends the stages of other to s. Both must refer to the same
// graph; used to assemble a network schedule from per-block schedules.
func (s *Schedule) Concat(other *Schedule) {
	if other.Graph != s.Graph {
		panic("schedule: Concat across different graphs")
	}
	s.Stages = append(s.Stages, other.Stages...)
}
