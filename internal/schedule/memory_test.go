package schedule

import (
	"testing"

	"ios/internal/graph"
)

func TestMemorySequentialChain(t *testing.T) {
	// in(1x4x8x8) -> a -> b -> c, one stage each: at any stage only the
	// producer and consumer tensors are live.
	g := graph.New("chain")
	in := g.Input("in", graph.Shape{N: 1, C: 4, H: 8, W: 8})
	a := g.Conv("a", in, graph.ConvOpts{Out: 4, Kernel: 3})
	b := g.Conv("b", a, graph.ConvOpts{Out: 4, Kernel: 3})
	c := g.Conv("c", b, graph.ConvOpts{Out: 4, Kernel: 3})
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{a}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{b}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{c}}},
	}}
	m := Memory(s)
	tensorBytes := float64(graph.Shape{N: 1, C: 4, H: 8, W: 8}.Bytes())
	// Peak: stage 0 holds in + a (2 tensors); stage 1 holds in? in's last
	// use is stage 0, so stage 1 holds a + b. Peak = 2 tensors.
	if m.PeakActivationBytes != 2*tensorBytes {
		t.Errorf("peak = %g, want %g", m.PeakActivationBytes, 2*tensorBytes)
	}
	if m.WeightBytes != 3*graph.WeightBytes(a) {
		t.Errorf("weights = %g", m.WeightBytes)
	}
}

func TestMemoryFanoutKeepsProducerLive(t *testing.T) {
	// in -> a; a feeds b (stage 2) and c (stage 3): a stays live through
	// stage 3.
	g := graph.New("fan")
	in := g.Input("in", graph.Shape{N: 1, C: 4, H: 8, W: 8})
	a := g.Conv("a", in, graph.ConvOpts{Out: 4, Kernel: 3})
	b := g.Conv("b", a, graph.ConvOpts{Out: 4, Kernel: 3})
	c := g.Conv("c", a, graph.ConvOpts{Out: 4, Kernel: 3})
	g2 := g.Concat("cat", b, c)
	_ = g2
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{a}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{b}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{c}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{g.NodeByName("cat")}}},
	}}
	m := Memory(s)
	one := float64(graph.Shape{N: 1, C: 4, H: 8, W: 8}.Bytes())
	// Stage 3 (cat): live = a? a's last use is stage 2 (c). Stage 2: a, b,
	// c live = 3 tensors. Stage 3: b, c, cat(8ch=2 units) = 4 units.
	if m.PeakActivationBytes != 4*one {
		t.Errorf("peak = %g units, want 4 (got %g)", m.PeakActivationBytes/one, m.PeakActivationBytes)
	}
	if m.PeakStage != 3 {
		t.Errorf("peak stage = %d, want 3", m.PeakStage)
	}
}

func TestMemoryScalesWithBatch(t *testing.T) {
	build := func(batch int) MemoryProfile {
		g := graph.New("b")
		in := g.Input("in", graph.Shape{N: batch, C: 8, H: 16, W: 16})
		a := g.Conv("a", in, graph.ConvOpts{Out: 8, Kernel: 3})
		s := &Schedule{Graph: g, Stages: []Stage{
			{Strategy: Concurrent, Groups: [][]*graph.Node{{a}}},
		}}
		return Memory(s)
	}
	m1, m4 := build(1), build(4)
	if m4.PeakActivationBytes != 4*m1.PeakActivationBytes {
		t.Errorf("activations did not scale: %g vs %g", m4.PeakActivationBytes, m1.PeakActivationBytes)
	}
	if m4.WeightBytes != m1.WeightBytes {
		t.Error("weights scaled with batch")
	}
}
