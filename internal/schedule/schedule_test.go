package schedule

import (
	"strings"
	"testing"

	"ios/internal/graph"
)

// diamond builds in -> a -> {b, c} -> cat plus an independent d.
func diamond() (*graph.Graph, map[string]*graph.Node) {
	g := graph.New("d")
	in := g.Input("in", graph.Shape{N: 1, C: 4, H: 8, W: 8})
	a := g.Conv("a", in, graph.ConvOpts{Out: 8, Kernel: 3})
	b := g.Conv("b", a, graph.ConvOpts{Out: 8, Kernel: 3})
	c := g.Conv("c", a, graph.ConvOpts{Out: 8, Kernel: 3})
	d := g.Conv("d", in, graph.ConvOpts{Out: 8, Kernel: 3})
	cat := g.Concat("cat", b, c)
	return g, map[string]*graph.Node{"a": a, "b": b, "c": c, "d": d, "cat": cat}
}

func TestValidateAcceptsGoodSchedule(t *testing.T) {
	g, n := diamond()
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["a"]}, {n["d"]}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["b"]}, {n["c"]}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["cat"]}}},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMissingOp(t *testing.T) {
	g, n := diamond()
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["a"], n["b"], n["c"], n["cat"]}}},
	}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "covers") {
		t.Errorf("missing op not rejected: %v", err)
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	g, n := diamond()
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["a"]}, {n["a"]}}},
	}}
	if err := s.Validate(); err == nil {
		t.Error("duplicate op not rejected")
	}
}

func TestValidateRejectsBackwardEdge(t *testing.T) {
	g, n := diamond()
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["b"]}, {n["c"]}, {n["d"]}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["a"]}, {n["cat"]}}},
	}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Errorf("backward edge not rejected: %v", err)
	}
}

func TestValidateRejectsCrossGroupEdge(t *testing.T) {
	g, n := diamond()
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["a"]}, {n["b"]}, {n["d"]}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["c"]}, {n["cat"]}}},
	}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "crosses groups") {
		t.Errorf("cross-group edge not rejected: %v", err)
	}
}

func TestValidateRejectsGroupOrderViolation(t *testing.T) {
	g, n := diamond()
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["b"], n["a"]}, {n["d"]}}}, // b before its producer a
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["c"]}, {n["cat"]}}},
	}}
	err := s.Validate()
	if err == nil {
		t.Error("group order violation not rejected")
	}
}

func TestValidateRejectsScheduledInput(t *testing.T) {
	g, _ := diamond()
	in := g.NodeByName("in")
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{in}}},
	}}
	if err := s.Validate(); err == nil {
		t.Error("scheduled input not rejected")
	}
}

func TestGroupsOfConnectivity(t *testing.T) {
	g, n := diamond()
	_ = g
	groups := GroupsOf([]*graph.Node{n["a"], n["b"], n["d"]})
	// a-b connected, d isolated.
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if len(groups[0]) != 2 || groups[0][0] != n["a"] || groups[0][1] != n["b"] {
		t.Errorf("first group = %v", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != n["d"] {
		t.Errorf("second group = %v", groups[1])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, n := diamond()
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["a"]}, {n["d"]}}},
		{Strategy: Merge, Groups: [][]*graph.Node{{n["b"], n["c"]}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["cat"]}}},
	}}
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStages() != 3 {
		t.Fatalf("stages = %d", back.NumStages())
	}
	if back.Stages[1].Strategy != Merge {
		t.Error("merge strategy lost")
	}
	if back.Stages[0].Groups[1][0] != n["d"] {
		t.Error("node identity lost")
	}
}

func TestFromJSONUnknownNode(t *testing.T) {
	g, _ := diamond()
	_, err := FromJSON([]byte(`{"graph":"d","stages":[{"strategy":"concurrent execution","groups":[["nope"]]}]}`), g)
	if err == nil {
		t.Error("unknown node accepted")
	}
}

func TestStageStringAndOps(t *testing.T) {
	_, n := diamond()
	st := Stage{Strategy: Concurrent, Groups: [][]*graph.Node{{n["a"], n["b"]}, {n["d"]}}}
	if st.NumOps() != 3 {
		t.Errorf("NumOps = %d", st.NumOps())
	}
	s := st.String()
	for _, want := range []string{"a", "b", "d", "|", "concurrent"} {
		if !strings.Contains(s, want) {
			t.Errorf("stage string %q missing %q", s, want)
		}
	}
	if got := len(st.Ops()); got != 3 {
		t.Errorf("Ops len = %d", got)
	}
}

func TestStrategyString(t *testing.T) {
	if Concurrent.String() != "concurrent execution" || Merge.String() != "operator merge" {
		t.Error("strategy names changed")
	}
}

func TestSummarize(t *testing.T) {
	g, n := diamond()
	s := &Schedule{Graph: g, Stages: []Stage{
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["a"]}, {n["d"]}}},
		{Strategy: Merge, Groups: [][]*graph.Node{{n["b"], n["c"]}}},
		{Strategy: Concurrent, Groups: [][]*graph.Node{{n["cat"]}}},
	}}
	got := s.Summarize()
	want := Summary{Stages: 3, Ops: 5, ConcurrentStages: 2, MergeStages: 1, MaxWidth: 2}
	if got != want {
		t.Errorf("Summarize() = %+v, want %+v", got, want)
	}
	if empty := (&Schedule{Graph: g}).Summarize(); empty != (Summary{}) {
		t.Errorf("empty schedule summary = %+v", empty)
	}
}
