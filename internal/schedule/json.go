package schedule

import (
	"encoding/json"
	"fmt"

	"ios/internal/graph"
)

// jsonSchedule is the serialized form: stages of groups of node names.
type jsonSchedule struct {
	Graph  string      `json:"graph"`
	Stages []jsonStage `json:"stages"`
}

type jsonStage struct {
	Strategy string     `json:"strategy"`
	Groups   [][]string `json:"groups"`
}

// MarshalJSON serializes the schedule by node name, so it can be stored
// alongside a model definition and reloaded later (the paper's "schedule
// recipe" that specialization produces per device and batch size).
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := jsonSchedule{Graph: s.Graph.Name}
	for _, st := range s.Stages {
		js := jsonStage{Strategy: st.Strategy.String()}
		for _, g := range st.Groups {
			names := make([]string, len(g))
			for i, n := range g {
				names[i] = n.Name
			}
			js.Groups = append(js.Groups, names)
		}
		out.Stages = append(out.Stages, js)
	}
	return json.MarshalIndent(out, "", "  ")
}

// FromJSON reconstructs a schedule against the given graph.
func FromJSON(data []byte, g *graph.Graph) (*Schedule, error) {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	s := &Schedule{Graph: g}
	for si, jst := range js.Stages {
		var strat Strategy
		switch jst.Strategy {
		case Concurrent.String(), "concurrent":
			strat = Concurrent
		case Merge.String(), "merge":
			strat = Merge
		default:
			return nil, fmt.Errorf("schedule: stage %d: unknown strategy %q", si+1, jst.Strategy)
		}
		st := Stage{Strategy: strat}
		for _, names := range jst.Groups {
			grp := make([]*graph.Node, 0, len(names))
			for _, name := range names {
				n := g.NodeByName(name)
				if n == nil {
					return nil, fmt.Errorf("schedule: stage %d references unknown node %q", si+1, name)
				}
				grp = append(grp, n)
			}
			st.Groups = append(st.Groups, grp)
		}
		s.Stages = append(s.Stages, st)
	}
	return s, nil
}
