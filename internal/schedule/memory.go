package schedule

import "ios/internal/graph"

// Activation-memory accounting for a schedule. A tensor is resident from
// the stage that produces it until the last stage that consumes it; model
// weights are resident for the whole run. The peak across stages is the
// device memory a runtime needs (ignoring allocator fragmentation and
// workspace), which is what runs out for TASO at batch 128 in the paper's
// Figure 11.

// MemoryProfile summarizes a schedule's memory behaviour.
type MemoryProfile struct {
	// WeightBytes is the total parameter storage.
	WeightBytes float64
	// PeakActivationBytes is the largest sum of live activation tensors
	// across stages (inputs included while still needed).
	PeakActivationBytes float64
	// PeakStage is the 0-based stage index at which the peak occurs.
	PeakStage int
}

// Total returns weights plus peak activations.
func (m MemoryProfile) Total() float64 { return m.WeightBytes + m.PeakActivationBytes }

// Memory computes the schedule's memory profile.
func Memory(s *Schedule) MemoryProfile {
	var prof MemoryProfile
	stageOf := make(map[*graph.Node]int)
	for si, st := range s.Stages {
		for _, n := range st.Ops() {
			stageOf[n] = si
		}
	}
	// Producer stage for inputs is "before stage 0".
	prodStage := func(n *graph.Node) int {
		if n.Op.Kind == graph.OpInput {
			return 0
		}
		return stageOf[n]
	}
	lastUse := make(map[*graph.Node]int)
	for _, n := range s.Graph.Nodes {
		if n.Op.Kind != graph.OpInput {
			prof.WeightBytes += graph.WeightBytes(n)
		}
		// A tensor with no consumers (network output) lives through its
		// own stage.
		last := prodStage(n)
		for _, c := range n.Outputs() {
			if sc, ok := stageOf[c]; ok && sc > last {
				last = sc
			}
		}
		lastUse[n] = last
	}
	for si := range s.Stages {
		var live float64
		for _, n := range s.Graph.Nodes {
			if prodStage(n) <= si && si <= lastUse[n] {
				live += float64(n.Output.Bytes())
			}
		}
		if live > prof.PeakActivationBytes {
			prof.PeakActivationBytes = live
			prof.PeakStage = si
		}
	}
	return prof
}
