// Version-byte discipline tests for the block fingerprint, mirroring
// internal/measure's: the fp:"include" field sets of the operator and
// shape records the encoding covers are pinned per KeyVersion, so
// widening either type without bumping the version byte fails here
// instead of silently colliding with persisted caches from older builds.
package blockcache_test

import (
	"reflect"
	"testing"

	"ios/internal/blockcache"
	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/measure"
	"ios/internal/profile"
)

// blockKeyV1Includes pins the exact fp:"include" field sets, in
// declaration order, that KeyVersion 1 of the block encoding covers
// (appendOp consumes Op; appendShape consumes Shape). The ioslint
// fingerprint analyzer separately proves the encoders consume every
// listed field.
var blockKeyV1Includes = []struct {
	typ  reflect.Type
	want []string
}{
	{reflect.TypeOf(graph.Op{}), []string{
		"Kind", "OutChannels", "KernelH", "KernelW", "StrideH", "StrideW",
		"PadH", "PadW", "Groups", "Act", "Pool", "OutFeatures",
	}},
	{reflect.TypeOf(graph.Shape{}), []string{"N", "C", "H", "W"}},
}

// blockIncludeFields lists a struct's fp:"include" fields in declaration
// order, failing on a field with a missing or unknown fp tag.
func blockIncludeFields(t *testing.T, typ reflect.Type) []string {
	t.Helper()
	var fields []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		switch tag := f.Tag.Get("fp"); tag {
		case "include":
			fields = append(fields, f.Name)
		case "exempt":
		default:
			t.Fatalf("%s.%s has fp tag %q; every field of a fingerprinted type must carry fp:\"include\" or fp:\"exempt\"", typ.Name(), f.Name, tag)
		}
	}
	return fields
}

// TestBlockKeyVersionPinsIncludeSets fails when Op or Shape grows or
// shrinks its fp:"include" set while blockcache.KeyVersion still says 1.
func TestBlockKeyVersionPinsIncludeSets(t *testing.T) {
	if blockcache.KeyVersion != 1 {
		t.Fatalf("blockcache.KeyVersion = %d: the encoding moved on; re-pin blockKeyV1Includes for the new version", blockcache.KeyVersion)
	}
	for _, pin := range blockKeyV1Includes {
		got := blockIncludeFields(t, pin.typ)
		if !reflect.DeepEqual(got, pin.want) {
			t.Errorf("%s fp:\"include\" fields = %v, want %v\nchanging the field set a block fingerprint covers requires bumping blockcache.KeyVersion and re-pinning this test", pin.typ.Name(), got, pin.want)
		}
	}
}

// TestFingerprintLeadsWithVersionBytes pins the wire layout the
// persistence layer's stale-cache rejection depends on: byte 0 is the
// block encoding's own version, and byte 1 — the start of the embedded
// measurement context — is measure.KeyVersion, so a bump to EITHER
// version invalidates persisted block caches.
func TestFingerprintLeadsWithVersionBytes(t *testing.T) {
	g := graph.New("v")
	in := g.Input("in", graph.Shape{N: 1, C: 8, H: 8, W: 8})
	g.Conv("c", in, graph.ConvOpts{Out: 8, Kernel: 1})
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	key := blockcache.Fingerprint(blocks[0], profile.New(gpusim.TeslaV100), core.Options{}.Fingerprint())
	if len(key) < 2 {
		t.Fatalf("fingerprint is %d bytes, want >= 2", len(key))
	}
	if key[0] != blockcache.KeyVersion {
		t.Errorf("fingerprint byte 0 = %d, want blockcache.KeyVersion %d", key[0], blockcache.KeyVersion)
	}
	if key[1] != measure.KeyVersion {
		t.Errorf("fingerprint byte 1 = %d, want measure.KeyVersion %d (embedded measurement context)", key[1], measure.KeyVersion)
	}
}
