// Wire-format pinning tests: WireEntry and WireStage travel both in the
// persisted cache file and between cluster peers, so their field sets,
// JSON tags, the file's version stamp, and the key's leading version
// byte are pinned as data. Widening the wire format without moving a
// version fails here with instructions instead of silently shipping
// records old peers misread.
package blockcache_test

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ios/internal/blockcache"
)

// wireV1Fields pins the exact (field, json tag) pairs, in declaration
// order, of every wire struct in the current format.
var wireV1Fields = []struct {
	typ  reflect.Type
	want [][2]string
}{
	{reflect.TypeOf(blockcache.WireEntry{}), [][2]string{
		{"Key", "key"},
		{"Ops", "ops"},
		{"States", "states"},
		{"Transitions", "transitions"},
		{"Stages", "stages"},
	}},
	{reflect.TypeOf(blockcache.WireStage{}), [][2]string{
		{"Strategy", "strategy"},
		{"Groups", "groups"},
	}},
}

func TestWireFieldSetsPinned(t *testing.T) {
	for _, pin := range wireV1Fields {
		if pin.typ.NumField() != len(pin.want) {
			t.Errorf("blockcache.%s has %d fields, want %d: changing the wire field set changes what every peer and cache file exchange means — bump the persisted-file version (and KeyVersion if key semantics moved), then re-pin this test", pin.typ.Name(), pin.typ.NumField(), len(pin.want))
			continue
		}
		for i, want := range pin.want {
			f := pin.typ.Field(i)
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if f.Name != want[0] || tag != want[1] {
				t.Errorf("%s field %d = %s (json %q), want %s (json %q)", pin.typ.Name(), i, f.Name, tag, want[0], want[1])
			}
		}
	}
}

func TestWireFileVersionPinned(t *testing.T) {
	var buf bytes.Buffer
	if err := blockcache.NewCache().Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var file struct {
		Version int               `json:"version"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("cache file is not JSON: %v\n%s", err, buf.String())
	}
	if file.Version != 1 {
		t.Fatalf("persisted cache file version = %d, want 1: a format change must re-pin this test so old files are rejected loudly", file.Version)
	}
}

func TestWireEntryDecodeRejectsForeignVersionByte(t *testing.T) {
	key := append([]byte{blockcache.KeyVersion + 1}, "payload"...)
	we := blockcache.WireEntry{Key: base64.RawURLEncoding.EncodeToString(key)}
	if _, _, err := we.Decode(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("Decode of a foreign version byte: err = %v, want key-version mismatch", err)
	}
}
