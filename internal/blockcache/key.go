//ioslint:deterministic

// Package blockcache is the whole-block schedule cache behind IOS's
// search layer: a process-wide, concurrency-safe map from a canonical
// structural fingerprint of one block — its DAG, its operators' lowered
// kernel programs, the device model, and the search options — to the
// completed schedule the dynamic program produced for that structure.
//
// The paper's networks are stacks of repeated cells: NasNet-A runs ~18
// near-identical cells, Inception repeats block structure, and a serving
// tier re-optimizes the same models across requests — yet the search pays
// a full per-block DP for every repetition. internal/measure removed the
// repetition at stage granularity (a cache hit returns the exact simulated
// latency); this package makes the same move one level up: a completed
// block schedule is itself a reusable, fingerprint-addressable artifact.
// Two blocks with equal fingerprints would drive the DP through identical
// states, identical measurements, and identical tie-breaks, so the search
// can only produce the same schedule — the cache returns it without
// running the search at all.
//
// Correctness rests on the key being an exact canonical serialization of
// everything the block search reads, not a lossy hash. Node IDs and names
// are excluded (the search never consults them; block-local position is
// the canonical identity), which is what makes the fingerprint invariant
// to where in a network — or in which network — a block occurs. Cached
// schedules are stored in node-ID-free canonical form (stages over
// block-local operator indices) and rebound onto the requesting block's
// nodes on every hit, the way internal/plan rebinds schedule recipes
// across batch sizes.
package blockcache

import (
	"ios/internal/graph"
	"ios/internal/gpusim"
	"ios/internal/measure"
	"ios/internal/profile"
)

// KeyVersion is the first byte of every block fingerprint: the version of
// the canonical encoding below. Bump it whenever the encoding (or the set
// of search-relevant inputs it covers) changes, so persisted caches from
// older builds are rejected at Load instead of silently mismatching.
const KeyVersion = 1

// Reference tags for the node-reference encoding (see Fingerprint). Every
// node a block record mentions is either one of the block's own operators
// (referenced by block-local index) or a boundary node outside the block —
// a graph input, an earlier block's producer, or a later block's consumer.
// Boundary nodes get sequential indices in first-touch order; the first
// touch carries the node's search-relevant record inline, later touches
// just the index. Identity therefore round-trips: two block operators
// sharing one external input encode the same boundary index, while
// operators reading two different-but-identically-shaped tensors do not —
// a distinction the merge strategy's shared-input rule depends on.
const (
	refLocal       = 0 // block-local operator: tag + local index
	refBoundary    = 1 // already-seen boundary node: tag + boundary index
	refNewBoundary = 2 // first touch: tag + inline boundary record
)

// Fingerprint returns the canonical structural fingerprint of a block as
// searched by the DP under the given profiler and options: equal
// fingerprints imply bit-identical block searches (schedule, cost, and
// state/transition statistics), no matter which nodes, which network, or
// which process run is asking.
//
// The encoding reuses the measurement cache's conventions — length- or
// tag-prefixed at every level, floats as IEEE-754 bit patterns, ints as
// uvarints — and covers, in order:
//
//   - the measurement context (device-model fields + dispatch overhead),
//     via measure.Context, so caches shared across devices never collide;
//   - the canonical options fingerprint (strategy set, pruning bounds,
//     block-size cap — core.Options.Fingerprint), which excludes pure
//     execution knobs like Workers by design;
//   - per operator, in block order: the operator record (kind and every
//     hyperparameter the merge strategy's eligibility and fused-kernel
//     construction read), its output shape, its lowered kernel program
//     (via measure.AppendStreams — this also pins down any KernelQuality
//     scaling), its input list as node references, and — for convolutions
//     only — the one consumer fact the search reads.
//
// Consumer context is deliberately minimal. The only place the search
// looks downstream is the merge strategy's split-is-free test, which asks,
// for merge-eligible convolutions, whether the operator's sole consumer is
// a concat, which concat, and what that concat concatenates (in order).
// The fingerprint encodes exactly that — a flag plus a reference to the
// concat, whose first-touch record (possibly in a later block, under
// manual boundaries) carries its input references. Encoding any more of
// the consumer neighborhood would leak a block's downstream position into
// its key: a repeated cell's output concat feeds the NEXT cell, so
// encoding full consumer lists would make every repetition of an
// otherwise identical cell fingerprint distinct and defeat the cache on
// exactly the networks it targets.
func Fingerprint(b *graph.Block, prof *profile.Profiler, optsFingerprint string) []byte {
	popts := prof.Options()
	key := make([]byte, 0, 256+64*len(b.Nodes))
	key = append(key, KeyVersion)
	key = append(key, measure.Context(prof.Spec(), popts.ExtraLaunchOverhead)...)
	key = appendInt(key, len(optsFingerprint))
	key = append(key, optsFingerprint...)

	local := make(map[*graph.Node]int, len(b.Nodes))
	for i, n := range b.Nodes {
		local[n] = i
	}
	enc := &keyEncoder{key: key, local: local, boundary: make(map[*graph.Node]int)}

	enc.key = appendInt(enc.key, len(b.Nodes))
	var streams [1]gpusim.Stream
	for _, n := range b.Nodes {
		enc.appendOp(n.Op)
		enc.appendShape(n.Output)
		// The lowered kernel program (names excluded by AppendStreams):
		// signatures subsume the input shapes and quality scaling that the
		// concurrent strategy's latencies are functions of.
		streams[0] = gpusim.Stream(profile.LowerNode(n, popts))
		enc.key = measure.AppendStreams(enc.key, streams[:])
		enc.appendRefs(n.Inputs)
		// The split-is-free consumer fact, for convolutions (the only
		// merge-eligible kind): sole-consumer-concat flag + concat ref.
		if n.Op.Kind == graph.OpConv {
			if outs := n.Outputs(); len(outs) == 1 && outs[0].Op.Kind == graph.OpConcat {
				enc.key = append(enc.key, 1)
				enc.appendRef(outs[0])
			} else {
				enc.key = append(enc.key, 0)
			}
		}
	}
	return enc.key
}

// keyEncoder threads the boundary-node numbering through one block's
// encoding.
type keyEncoder struct {
	key      []byte
	local    map[*graph.Node]int
	boundary map[*graph.Node]int
}

// appendRefs encodes a node list (inputs or consumers) in slice order —
// order and multiplicity both matter: concat input order decides whether a
// merged stage's output layout already is the concat result.
func (e *keyEncoder) appendRefs(nodes []*graph.Node) {
	e.key = appendInt(e.key, len(nodes))
	for _, n := range nodes {
		e.appendRef(n)
	}
}

// appendRef encodes one node reference; a boundary node's first touch
// inlines its record.
func (e *keyEncoder) appendRef(n *graph.Node) {
	if i, ok := e.local[n]; ok {
		e.key = append(e.key, refLocal)
		e.key = appendInt(e.key, i)
		return
	}
	if i, ok := e.boundary[n]; ok {
		e.key = append(e.key, refBoundary)
		e.key = appendInt(e.key, i)
		return
	}
	e.boundary[n] = len(e.boundary)
	e.key = append(e.key, refNewBoundary)
	e.key = appendInt(e.key, int(n.Op.Kind))
	e.appendShape(n.Output)
	if n.Op.Kind == graph.OpConcat {
		// A boundary concat's input list decides the merge strategy's
		// split-is-free test for block operators feeding it; its inputs are
		// referenced for identity only, never expanded further (their
		// internal structure is invisible to this block's search).
		e.appendRefs(n.Inputs)
	}
}

// appendOp encodes the full operator record: every field the search can
// read through lowering, merge eligibility, or merged-kernel construction.
//
//ioslint:fingerprint ios/internal/graph.Op
func (e *keyEncoder) appendOp(op graph.Op) {
	e.key = appendInt(e.key, int(op.Kind))
	e.key = appendInt(e.key, op.OutChannels)
	e.key = appendInt(e.key, op.KernelH)
	e.key = appendInt(e.key, op.KernelW)
	e.key = appendInt(e.key, op.StrideH)
	e.key = appendInt(e.key, op.StrideW)
	e.key = appendInt(e.key, op.PadH)
	e.key = appendInt(e.key, op.PadW)
	e.key = appendInt(e.key, op.Groups)
	e.key = appendInt(e.key, int(op.Act))
	e.key = appendInt(e.key, int(op.Pool))
	e.key = appendInt(e.key, op.OutFeatures)
}

// appendShape encodes an NCHW tensor shape.
//
//ioslint:fingerprint ios/internal/graph.Shape
func (e *keyEncoder) appendShape(s graph.Shape) {
	e.key = appendInt(e.key, s.N)
	e.key = appendInt(e.key, s.C)
	e.key = appendInt(e.key, s.H)
	e.key = appendInt(e.key, s.W)
}
