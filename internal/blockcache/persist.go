package blockcache

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ios/internal/schedule"
)

// fileVersion is the persisted-file format version (independent of
// KeyVersion, which versions the fingerprint encoding itself and is
// embedded in every key's first byte).
const fileVersion = 1

// cacheFile is the persisted JSON form of a cache: a version stamp plus
// one (fingerprint, canonical schedule, search cost) record per completed
// entry.
type cacheFile struct {
	Version int         `json:"version"`
	Entries []fileEntry `json:"entries"`
}

type fileEntry struct {
	// Key is the canonical block fingerprint, base64 (raw URL alphabet).
	Key string `json:"key"`
	// Ops is the block's operator count.
	Ops int `json:"ops"`
	// States and Transitions are the recorded DP search cost.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	// Stages is the canonical stage list over block-local indices.
	Stages []fileStage `json:"stages"`
}

type fileStage struct {
	Strategy string  `json:"strategy"`
	Groups   [][]int `json:"groups"`
}

// Save writes every completed entry as JSON. In-flight entries are skipped
// (their owners have not published a schedule yet). Entries are sorted by
// fingerprint, so the file is a pure function of the cache contents:
// identical runs produce byte-identical cache files.
func (c *Cache) Save(w io.Writer) error {
	type rawEntry struct {
		key string
		fe  fileEntry
	}
	var entries []rawEntry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			if !e.completed() || e.abandoned {
				continue
			}
			fe := fileEntry{
				Ops:         e.val.Ops,
				States:      e.val.States,
				Transitions: e.val.Transitions,
			}
			for _, st := range e.val.Stages {
				fe.Stages = append(fe.Stages, fileStage{Strategy: st.Strategy.String(), Groups: st.Groups})
			}
			entries = append(entries, rawEntry{key: k, fe: fe})
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	out := cacheFile{Version: fileVersion, Entries: make([]fileEntry, 0, len(entries))}
	for _, re := range entries {
		re.fe.Key = base64.RawURLEncoding.EncodeToString([]byte(re.key))
		out.Entries = append(out.Entries, re.fe)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load merges a previously saved cache into c, returning how many entries
// were added (already-present fingerprints are kept, not overwritten —
// both sides hold the result of the same deterministic search).
//
// Load is all-or-nothing: the whole file is parsed and validated before a
// single entry is inserted, so a corrupt, truncated, or version-mismatched
// file returns an error and leaves the cache exactly as it was — callers
// fall back to a cold cache instead of half-poisoned state. Validation
// covers the fingerprint encoding version and every entry's structural
// consistency (each block operator scheduled exactly once, strategies
// known, groups non-empty).
func (c *Cache) Load(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("blockcache: read cache: %w", err)
	}
	var in cacheFile
	if err := json.Unmarshal(data, &in); err != nil {
		return 0, fmt.Errorf("blockcache: parse cache: %w", err)
	}
	if in.Version != fileVersion {
		return 0, fmt.Errorf("blockcache: cache file version %d, want %d", in.Version, fileVersion)
	}
	keys := make([]string, len(in.Entries))
	vals := make([]*Entry, len(in.Entries))
	for i, fe := range in.Entries {
		raw, err := base64.RawURLEncoding.DecodeString(fe.Key)
		if err != nil {
			return 0, fmt.Errorf("blockcache: cache entry %d: bad key: %w", i, err)
		}
		if len(raw) == 0 || raw[0] != KeyVersion {
			return 0, fmt.Errorf("blockcache: cache entry %d: key encoding version mismatch (cache built by an incompatible version)", i)
		}
		v := &Entry{Ops: fe.Ops, States: fe.States, Transitions: fe.Transitions}
		for si, fs := range fe.Stages {
			strat, err := parseStrategy(fs.Strategy)
			if err != nil {
				return 0, fmt.Errorf("blockcache: cache entry %d: stage %d: %w", i, si+1, err)
			}
			v.Stages = append(v.Stages, Stage{Strategy: strat, Groups: fs.Groups})
		}
		if err := v.validate(); err != nil {
			return 0, fmt.Errorf("blockcache: cache entry %d: %w", i, err)
		}
		keys[i], vals[i] = string(raw), v
	}
	added := 0
	for i := range keys {
		if c.insert(keys[i], vals[i]) {
			added++
		}
	}
	c.loaded.Add(int64(added))
	return added, nil
}

// parseStrategy maps a persisted strategy name back to its value,
// accepting the same spellings as schedule.FromJSON.
func parseStrategy(name string) (schedule.Strategy, error) {
	switch name {
	case schedule.Concurrent.String(), "concurrent":
		return schedule.Concurrent, nil
	case schedule.Merge.String(), "merge":
		return schedule.Merge, nil
	}
	return 0, fmt.Errorf("blockcache: unknown strategy %q", name)
}

// SaveFile writes the cache to path (via a temp file + rename, so a crash
// mid-save never truncates a previously good cache file).
func (c *Cache) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".block-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile merges the cache file at path into c; see Load.
func (c *Cache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return c.Load(f)
}
