package blockcache

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ios/internal/schedule"
)

// fileVersion is the persisted-file format version (independent of
// KeyVersion, which versions the fingerprint encoding itself and is
// embedded in every key's first byte).
const fileVersion = 1

// cacheFile is the persisted JSON form of a cache: a version stamp plus
// one (fingerprint, canonical schedule, search cost) record per completed
// entry. The same WireEntry records travel between cluster peers, so
// persistence and peer exchange share one serialization path.
type cacheFile struct {
	Version int         `json:"version"`
	Entries []WireEntry `json:"entries"`
}

// WireEntry is the wire form of one completed block schedule — the unit
// of both the persisted cache file and cluster peer exchange.
type WireEntry struct {
	// Key is the canonical block fingerprint, base64 (raw URL alphabet).
	Key string `json:"key"`
	// Ops is the block's operator count.
	Ops int `json:"ops"`
	// States and Transitions are the recorded DP search cost.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	// Stages is the canonical stage list over block-local indices.
	Stages []WireStage `json:"stages"`
}

// WireStage is one canonical stage of a WireEntry.
type WireStage struct {
	Strategy string  `json:"strategy"`
	Groups   [][]int `json:"groups"`
}

// Decode validates a wire entry and returns its raw fingerprint and
// canonical Entry. It rejects malformed base64, keys built by an
// incompatible fingerprint-encoding version, unknown strategies, and
// structurally inconsistent stage lists (Entry.validate — every block
// operator scheduled exactly once, groups non-empty).
//
//ioslint:validator
func (we WireEntry) Decode() ([]byte, *Entry, error) {
	raw, err := base64.RawURLEncoding.DecodeString(we.Key)
	if err != nil {
		return nil, nil, fmt.Errorf("bad key: %w", err)
	}
	if len(raw) == 0 || raw[0] != KeyVersion {
		return nil, nil, fmt.Errorf("key encoding version mismatch (cache built by an incompatible version)")
	}
	v := &Entry{Ops: we.Ops, States: we.States, Transitions: we.Transitions}
	for si, ws := range we.Stages {
		strat, err := parseStrategy(ws.Strategy)
		if err != nil {
			return nil, nil, fmt.Errorf("stage %d: %w", si+1, err)
		}
		v.Stages = append(v.Stages, Stage{Strategy: strat, Groups: ws.Groups})
	}
	if err := v.validate(); err != nil {
		return nil, nil, err
	}
	return raw, v, nil
}

// wireEntry renders a completed entry into its wire form.
func wireEntry(key string, v *Entry) WireEntry {
	we := WireEntry{
		Key:         base64.RawURLEncoding.EncodeToString([]byte(key)),
		Ops:         v.Ops,
		States:      v.States,
		Transitions: v.Transitions,
	}
	for _, st := range v.Stages {
		we.Stages = append(we.Stages, WireStage{Strategy: st.Strategy.String(), Groups: st.Groups})
	}
	return we
}

// Snapshot exports every completed entry published after the given
// sequence point, sorted by fingerprint, plus the sequence point to pass
// to the next incremental Snapshot. Snapshot(0) exports the whole cache
// (the persisted-file body); a cluster pusher feeds each call's returned
// point back in to ship only what was published since its last round.
//
// The cut is exact: publication stamps the sequence under the cell's
// shard mutex, and Snapshot holds every shard mutex while it scans and
// reads the counter, so no concurrent Commit can land inside the cut
// unseen. Entries evicted between snapshots are simply absent — they are
// outputs of a deterministic search and always recomputable.
func (c *Cache) Snapshot(since uint64) ([]WireEntry, uint64) {
	type rawEntry struct {
		key string
		val *Entry
	}
	var rows []rawEntry
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	for i := range c.shards {
		for k, e := range c.shards[i].m {
			if e.completed() && !e.abandoned && e.seq > since {
				rows = append(rows, rawEntry{key: k, val: e.val})
			}
		}
	}
	next := c.seq.Load()
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	out := make([]WireEntry, 0, len(rows))
	for _, r := range rows {
		out = append(out, wireEntry(r.key, r.val))
	}
	return out, next
}

// Export returns the wire form of the completed entries among keys, in
// key order of the input; absent and in-flight keys are skipped. This is
// the lookup side of peer exchange: a peer asks for specific
// fingerprints and gets back only what this cache has finished.
func (c *Cache) Export(keys [][]byte) []WireEntry {
	out := make([]WireEntry, 0, len(keys))
	for _, key := range keys {
		if v, ok := c.Lookup(key); ok {
			out = append(out, wireEntry(string(key), v))
		}
	}
	return out
}

// Merge validates wire entries and inserts the absent ones, returning
// how many were added (already-present fingerprints are kept, not
// overwritten — both sides hold the result of the same deterministic
// search). Merge is all-or-nothing: every entry is validated before a
// single one is inserted, so a corrupt batch leaves the cache exactly as
// it was. Added entries count toward Stats.Loaded.
//
//ioslint:validator
func (c *Cache) Merge(entries []WireEntry) (int, error) {
	keys := make([]string, len(entries))
	vals := make([]*Entry, len(entries))
	for i, we := range entries {
		raw, v, err := we.Decode()
		if err != nil {
			return 0, fmt.Errorf("blockcache: cache entry %d: %w", i, err)
		}
		keys[i], vals[i] = string(raw), v
	}
	added := 0
	for i := range keys {
		if c.insert(keys[i], vals[i]) {
			added++
		}
	}
	c.loaded.Add(int64(added))
	return added, nil
}

// Save writes every completed entry as JSON. In-flight entries are skipped
// (their owners have not published a schedule yet). Entries are sorted by
// fingerprint, so the file is a pure function of the cache contents:
// identical runs produce byte-identical cache files.
func (c *Cache) Save(w io.Writer) error {
	entries, _ := c.Snapshot(0)
	enc := json.NewEncoder(w)
	return enc.Encode(cacheFile{Version: fileVersion, Entries: entries})
}

// Load merges a previously saved cache into c, returning how many entries
// were added (already-present fingerprints are kept, not overwritten —
// both sides hold the result of the same deterministic search).
//
// Load is all-or-nothing: the whole file is parsed and validated before a
// single entry is inserted, so a corrupt, truncated, or version-mismatched
// file returns an error and leaves the cache exactly as it was — callers
// fall back to a cold cache instead of half-poisoned state. Validation
// covers the fingerprint encoding version and every entry's structural
// consistency (each block operator scheduled exactly once, strategies
// known, groups non-empty).
func (c *Cache) Load(r io.Reader) (int, error) {
	data, err := io.ReadAll(r) //ioslint:untrusted persisted cache file bytes
	if err != nil {
		return 0, fmt.Errorf("blockcache: read cache: %w", err)
	}
	var in cacheFile
	if err := json.Unmarshal(data, &in); err != nil {
		return 0, fmt.Errorf("blockcache: parse cache: %w", err)
	}
	if in.Version != fileVersion {
		return 0, fmt.Errorf("blockcache: cache file version %d, want %d", in.Version, fileVersion)
	}
	return c.Merge(in.Entries)
}

// parseStrategy maps a persisted strategy name back to its value,
// accepting the same spellings as schedule.FromJSON.
func parseStrategy(name string) (schedule.Strategy, error) {
	switch name {
	case schedule.Concurrent.String(), "concurrent":
		return schedule.Concurrent, nil
	case schedule.Merge.String(), "merge":
		return schedule.Merge, nil
	}
	return 0, fmt.Errorf("blockcache: unknown strategy %q", name)
}

// SaveFile writes the cache to path (via a temp file + rename, so a crash
// mid-save never truncates a previously good cache file). Safe to call
// while fills are in flight: Snapshot cuts a consistent set of completed
// entries, so the file is loadable all-or-nothing regardless of what was
// mid-search during the save.
func (c *Cache) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".block-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile merges the cache file at path into c; see Load.
func (c *Cache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return c.Load(f)
}
