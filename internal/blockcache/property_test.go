// Property tests for the block fingerprint: random isomorphic DAGs must
// fingerprint identically and rebind to bit-identical schedules, while
// structural perturbations — including ones only visible through boundary
// nodes — must change the fingerprint. External test package so the
// oracle searches can use internal/core (which imports blockcache).
package blockcache_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ios/internal/blockcache"
	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/graph"
	"ios/internal/models"
	"ios/internal/profile"
	"ios/internal/schedule"
)

// opSpec is one operator of a generated branch.
type opSpec struct {
	kind   string // "conv", "sepconv", "pool"
	out    int    // conv/sepconv output channels
	kernel int
}

// cellSpec describes a random multi-branch cell: a schedulable stem conv
// feeding parallel branches joined by a concat. The stem keeps the cell a
// single auto-partitioned block (stem→branch edges prevent intermediate
// single-producer cuts), mirroring how Inception-style blocks hold
// together.
type cellSpec struct {
	stemOut  int
	branches [][]opSpec
	// dup marks branches[1] as a verbatim copy of branches[0], enabling
	// the op-order permutation variant (swapping identical branches is a
	// DAG isomorphism).
	dup bool
}

// randSpec draws a random cell: 2-4 branches of 1-3 operators each.
func randSpec(rng *rand.Rand) cellSpec {
	s := cellSpec{stemOut: 8 * (1 + rng.Intn(2))}
	n := 2 + rng.Intn(3)
	randBranch := func() []opSpec {
		var b []opSpec
		for i, k := 0, 1+rng.Intn(3); i < k; i++ {
			switch rng.Intn(4) {
			case 0:
				b = append(b, opSpec{kind: "pool", kernel: 3})
			case 1:
				b = append(b, opSpec{kind: "sepconv", out: 8 * (1 + rng.Intn(3)), kernel: 3})
			default:
				b = append(b, opSpec{kind: "conv", out: 8 * (1 + rng.Intn(3)), kernel: 1 + 2*rng.Intn(2)})
			}
		}
		return b
	}
	for i := 0; i < n; i++ {
		s.branches = append(s.branches, randBranch())
	}
	if rng.Intn(2) == 0 {
		s.branches[1] = s.branches[0]
		s.dup = true
	}
	return s
}

// buildVariant materializes a spec as a graph. prefix varies node names;
// pad prepends an unrelated two-conv block (shifting every cell node's
// ID and forcing manual-cut partitioning, with cuts that reproduce the
// automatic ones so the cell block holds the same operator set); swapDup
// builds branches 0 and 1 in swapped order AND swaps their concat
// positions — for a spec with dup branches this is a node-identity
// permutation of the same DAG.
func buildVariant(spec cellSpec, prefix string, pad, swapDup bool) *graph.Graph {
	g := graph.New("cell-" + prefix)
	in := g.Input(prefix+"in", graph.Shape{N: 1, C: 8, H: 16, W: 16})
	if pad {
		p1 := g.Conv(prefix+"pad1", in, graph.ConvOpts{Out: 4, Kernel: 3})
		g.Conv(prefix+"pad2", p1, graph.ConvOpts{Out: 4, Kernel: 1})
		g.CutBlock()
	}
	stem := g.Conv(prefix+"stem", in, graph.ConvOpts{Out: spec.stemOut, Kernel: 1})
	if pad {
		// The automatic partitioner cuts after the stem (it is the sole
		// producer crossing the boundary); manual cuts must mirror that
		// for the cell blocks to be comparable.
		g.CutBlock()
	}
	order := make([]int, len(spec.branches))
	for i := range order {
		order[i] = i
	}
	if swapDup {
		order[0], order[1] = order[1], order[0]
	}
	ends := make([]*graph.Node, len(spec.branches))
	for _, bi := range order {
		cur := stem
		for oi, op := range spec.branches[bi] {
			name := fmt.Sprintf("%sb%d_%d", prefix, bi, oi)
			switch op.kind {
			case "pool":
				cur = g.Pool(name, cur, graph.PoolOpts{Kernel: op.kernel, Stride: 1})
			case "sepconv":
				cur = g.SepConv(name, cur, graph.ConvOpts{Out: op.out, Kernel: op.kernel})
			default:
				cur = g.Conv(name, cur, graph.ConvOpts{Out: op.out, Kernel: op.kernel})
			}
		}
		ends[bi] = cur
	}
	concat := ends
	if swapDup {
		concat = append([]*graph.Node(nil), ends...)
		concat[0], concat[1] = concat[1], concat[0]
	}
	g.Concat(prefix+"join", concat...)
	return g
}

// cellBlock partitions the graph and returns its last block — the cell
// (padding, when present, lands in the earlier block).
func cellBlock(t *testing.T, g *graph.Graph) *graph.Block {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: generated graph invalid: %v", g.Name, err)
	}
	blocks, err := g.Partition(0)
	if err != nil {
		t.Fatalf("%s: partition: %v", g.Name, err)
	}
	return blocks[len(blocks)-1]
}

func fingerprintOf(b *graph.Block) []byte {
	return blockcache.Fingerprint(b, profile.New(gpusim.TeslaV100), core.Options{}.Fingerprint())
}

// searchCanonical runs the block DP and returns the schedule in canonical
// (node-ID-free) form plus its search statistics.
func searchCanonical(t *testing.T, b *graph.Block) ([]blockcache.Stage, core.Stats) {
	t.Helper()
	stages, stats, err := core.OptimizeBlock(b, profile.New(gpusim.TeslaV100), core.Options{})
	if err != nil {
		t.Fatalf("block search: %v", err)
	}
	canon, err := blockcache.Canonicalize(b, stages)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	return canon, stats
}

// TestFingerprintIsomorphismProperty is the positive property: for random
// cells, every DAG-isomorphic variant — renamed nodes, shifted node IDs
// (an unrelated block prepended under manual cuts), permuted insertion
// order of identical branches — fingerprints identically, and the cached
// schedule of one variant rebinds onto any other bit-identically to what
// that variant's own search would produce (same canonical stages, same
// search statistics).
func TestFingerprintIsomorphismProperty(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := randSpec(rand.New(rand.NewSource(int64(seed))))
			base := cellBlock(t, buildVariant(spec, "a", false, false))
			variants := map[string]*graph.Block{
				"renamed":    cellBlock(t, buildVariant(spec, "zz_", false, false)),
				"id-shifted": cellBlock(t, buildVariant(spec, "b", true, false)),
			}
			if spec.dup {
				variants["dup-swapped"] = cellBlock(t, buildVariant(spec, "c", false, true))
			}
			baseFP := fingerprintOf(base)
			baseCanon, baseStats := searchCanonical(t, base)
			entry := &blockcache.Entry{Ops: len(base.Nodes), Stages: baseCanon,
				States: baseStats.States, Transitions: baseStats.Transitions}
			for name, vb := range variants {
				if !bytes.Equal(baseFP, fingerprintOf(vb)) {
					t.Fatalf("%s variant fingerprints differently from its isomorphic base", name)
				}
				rebound, err := blockcache.Rebind(vb, entry)
				if err != nil {
					t.Fatalf("%s: rebind: %v", name, err)
				}
				reboundCanon, err := blockcache.Canonicalize(vb, rebound)
				if err != nil {
					t.Fatalf("%s: canonicalize rebound: %v", name, err)
				}
				directCanon, directStats := searchCanonical(t, vb)
				if !reflect.DeepEqual(reboundCanon, directCanon) {
					t.Fatalf("%s: rebound schedule differs from the variant's own search:\n%v\nvs\n%v",
						name, reboundCanon, directCanon)
				}
				if directStats.States != baseStats.States || directStats.Transitions != baseStats.Transitions {
					t.Fatalf("%s: search statistics differ across isomorphic variants: %d/%d vs %d/%d",
						name, directStats.States, directStats.Transitions, baseStats.States, baseStats.Transitions)
				}
			}
		})
	}
}

// TestFingerprintDistinguishesStructure is the negative property: every
// structural perturbation of a cell — operator hyperparameters, topology,
// device model, search options — yields a distinct fingerprint.
func TestFingerprintDistinguishesStructure(t *testing.T) {
	spec := randSpec(rand.New(rand.NewSource(42)))
	prof := func() *profile.Profiler { return profile.New(gpusim.TeslaV100) }
	optsFP := core.Options{}.Fingerprint()

	fps := map[string]string{}
	record := func(name string, fp []byte) {
		t.Helper()
		for prev, prevFP := range fps {
			if prevFP == string(fp) {
				t.Errorf("%q and %q collide despite distinct structure", name, prev)
			}
		}
		fps[name] = string(fp)
	}

	record("base", blockcache.Fingerprint(cellBlock(t, buildVariant(spec, "a", false, false)), prof(), optsFP))

	perturb := func(name string, fn func(*cellSpec)) {
		s := spec
		s.branches = make([][]opSpec, len(spec.branches))
		for i := range spec.branches {
			s.branches[i] = append([]opSpec(nil), spec.branches[i]...)
		}
		fn(&s)
		record(name, blockcache.Fingerprint(cellBlock(t, buildVariant(s, "a", false, false)), prof(), optsFP))
	}
	perturb("wider stem", func(s *cellSpec) { s.stemOut += 8 })
	perturb("wider branch op", func(s *cellSpec) {
		for i, op := range s.branches[0] {
			if op.kind != "pool" {
				s.branches[0][i].out += 8
				return
			}
		}
		s.branches[0][0] = opSpec{kind: "conv", out: 48, kernel: 1}
	})
	perturb("extra op", func(s *cellSpec) {
		s.branches[0] = append(s.branches[0], opSpec{kind: "conv", out: 8, kernel: 1})
	})
	perturb("extra branch", func(s *cellSpec) {
		s.branches = append(s.branches, []opSpec{{kind: "conv", out: 16, kernel: 3}})
	})
	perturb("kind change", func(s *cellSpec) {
		s.branches[len(s.branches)-1][0] = opSpec{kind: "pool", kernel: 3}
		s.branches[0][0] = opSpec{kind: "conv", out: 24, kernel: 3}
	})

	// Same structure, different measurement context or search options.
	baseBlock := cellBlock(t, buildVariant(spec, "a", false, false))
	record("device K80", blockcache.Fingerprint(baseBlock, profile.New(gpusim.TeslaK80), optsFP))
	record("extra overhead", blockcache.Fingerprint(baseBlock,
		profile.NewWithOptions(gpusim.TeslaV100, profile.Options{ExtraLaunchOverhead: 1e-6}), optsFP))
	record("merge-only options", blockcache.Fingerprint(baseBlock, prof(),
		core.Options{Strategies: core.MergeOnly}.Fingerprint()))
	record("tighter pruning", blockcache.Fingerprint(baseBlock, prof(),
		core.Options{Pruning: core.Pruning{R: 2, S: 4}}.Fingerprint()))
}

// TestFingerprintBoundaryIdentity pins the subtle cases the paper's merge
// strategy forces the key to cover: node references that leave the block.
func TestFingerprintBoundaryIdentity(t *testing.T) {
	shape := graph.Shape{N: 1, C: 8, H: 16, W: 16}
	fp := func(g *graph.Graph, idx int) string {
		blocks, err := g.Partition(0)
		if err != nil {
			t.Fatal(err)
		}
		if idx < 0 {
			idx = len(blocks) - 1
		}
		return string(fingerprintOf(blocks[idx]))
	}

	// Two convs reading ONE shared external producer vs. two reading two
	// distinct identically-shaped producers: merge eligibility (CanMerge's
	// shared-input rule) differs, so the fingerprints must too. The
	// producers sit in earlier blocks, so inside the measured block the
	// two cases differ only in boundary-node identity.
	shared := graph.New("shared")
	{
		in := shared.Input("x", shape)
		s := shared.Conv("s", in, graph.ConvOpts{Out: 8, Kernel: 1})
		a := shared.Conv("a", s, graph.ConvOpts{Out: 8, Kernel: 3})
		b := shared.Conv("b", s, graph.ConvOpts{Out: 8, Kernel: 3})
		shared.Concat("j", a, b)
	}
	distinct := graph.New("distinct")
	{
		in := distinct.Input("x", shape)
		s1 := distinct.Conv("s1", in, graph.ConvOpts{Out: 8, Kernel: 1})
		s2 := distinct.Conv("s2", in, graph.ConvOpts{Out: 8, Kernel: 1})
		a := distinct.Conv("a", s1, graph.ConvOpts{Out: 8, Kernel: 3})
		b := distinct.Conv("b", s2, graph.ConvOpts{Out: 8, Kernel: 3})
		distinct.Concat("j", a, b)
	}
	if fp(shared, -1) == fp(distinct, -1) {
		t.Error("shared vs distinct external inputs fingerprint identically (merge eligibility differs)")
	}

	// Identical block internals, but the boundary CONSUMER differs: under
	// a manual cut the joining concat lives in the next block, and its
	// input order decides the merge strategy's split-is-free test.
	consumer := func(name string, swap bool) *graph.Graph {
		g := graph.New(name)
		in := g.Input("x", shape)
		a := g.Conv("a", in, graph.ConvOpts{Out: 8, Kernel: 3})
		b := g.Conv("b", in, graph.ConvOpts{Out: 8, Kernel: 1})
		g.CutBlock()
		if swap {
			g.Concat("j", b, a)
		} else {
			g.Concat("j", a, b)
		}
		g.Conv("tail", g.NodeByName("j"), graph.ConvOpts{Out: 8, Kernel: 1})
		return g
	}
	if fp(consumer("ab", false), 0) == fp(consumer("ba", true), 0) {
		t.Error("boundary concat input order is invisible to the fingerprint (split-is-free test differs)")
	}

	// A conv whose sole consumer is a boundary concat vs. one whose sole
	// consumer is a boundary add: split-is-free differs, so must the keys.
	joinKind := func(name string, add bool) *graph.Graph {
		g := graph.New(name)
		in := g.Input("x", shape)
		a := g.Conv("a", in, graph.ConvOpts{Out: 8, Kernel: 3})
		b := g.Conv("b", in, graph.ConvOpts{Out: 8, Kernel: 3})
		g.CutBlock()
		if add {
			g.Add("j", a, b)
		} else {
			g.Concat("j", a, b)
		}
		g.Conv("tail", g.NodeByName("j"), graph.ConvOpts{Out: 8, Kernel: 1})
		return g
	}
	if fp(joinKind("via-concat", false), 0) == fp(joinKind("via-add", true), 0) {
		t.Error("boundary consumer kind (concat vs add) is invisible to the fingerprint")
	}
}

// TestFingerprintCollisionSweepZoo sweeps every block of the model zoo:
// blocks whose fingerprints coincide must agree on cheap structural
// invariants, and a searched representative pair per coinciding group
// must produce identical canonical schedules. Meanwhile repetition must
// actually exist — the cache's reason to be.
func TestFingerprintCollisionSweepZoo(t *testing.T) {
	builders := []models.Builder{models.Figure2Block, models.InceptionE, models.SqueezeNet, models.InceptionV3}
	if !testing.Short() {
		builders = append(builders, models.NasNetA)
	}
	type site struct {
		model string
		b     *graph.Block
	}
	groups := map[string][]site{}
	total := 0
	for _, build := range builders {
		g := build(1)
		blocks, err := g.Partition(0)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for _, b := range blocks {
			fp := string(fingerprintOf(b))
			groups[fp] = append(groups[fp], site{g.Name, b})
			total++
		}
	}
	if len(groups) >= total {
		t.Errorf("no repeated block structures across the zoo (%d blocks, %d fingerprints) — dedup impossible", total, len(groups))
	}
	verified := 0
	for _, sites := range groups {
		if len(sites) < 2 {
			continue
		}
		first := sites[0]
		for _, s := range sites[1:] {
			if len(s.b.Nodes) != len(first.b.Nodes) {
				t.Fatalf("fingerprint collision across different op counts: %s block %d (%d ops) vs %s block %d (%d ops)",
					first.model, first.b.Index, len(first.b.Nodes), s.model, s.b.Index, len(s.b.Nodes))
			}
			for i, n := range s.b.Nodes {
				m := first.b.Nodes[i]
				if n.Op != m.Op || n.Output != m.Output {
					t.Fatalf("fingerprint collision across different operators: %s block %d op %d %v vs %s block %d op %d %v",
						first.model, first.b.Index, i, m.Op, s.model, s.b.Index, i, n.Op)
				}
			}
		}
		// Searching every duplicate would re-run most of the zoo; three
		// verified groups pin the equal-fingerprint ⇒ equal-schedule
		// property on real networks (the random sweep above covers breadth).
		if verified < 3 && len(first.b.Nodes) <= 16 {
			c0, st0 := searchCanonical(t, first.b)
			c1, st1 := searchCanonical(t, sites[1].b)
			if !reflect.DeepEqual(c0, c1) || st0.States != st1.States || st0.Transitions != st1.Transitions {
				t.Fatalf("equal fingerprints, different searches: %s block %d vs %s block %d",
					first.model, first.b.Index, sites[1].model, sites[1].b.Index)
			}
			verified++
		}
	}
	if verified == 0 {
		t.Error("no coinciding group was search-verified")
	}
	t.Logf("zoo sweep: %d blocks, %d distinct structures, %d search-verified groups", total, len(groups), verified)
}

// TestRebindRejectsMismatch: a cached entry must never rebind onto a
// block it does not cover — corrupted shared state degrades to a
// re-search, not a malformed schedule.
func TestRebindRejectsMismatch(t *testing.T) {
	spec := randSpec(rand.New(rand.NewSource(7)))
	b := cellBlock(t, buildVariant(spec, "a", false, false))
	canon, stats := searchCanonical(t, b)
	good := &blockcache.Entry{Ops: len(b.Nodes), Stages: canon, States: stats.States, Transitions: stats.Transitions}
	if _, err := blockcache.Rebind(b, good); err != nil {
		t.Fatalf("valid entry failed to rebind: %v", err)
	}
	bad := []*blockcache.Entry{
		{Ops: len(b.Nodes) + 1, Stages: canon},
		{Ops: len(b.Nodes), Stages: canon[:len(canon)-1]},
		{Ops: len(b.Nodes), Stages: append(append([]blockcache.Stage(nil), canon...),
			blockcache.Stage{Strategy: schedule.Concurrent, Groups: [][]int{{0}}})},
		{Ops: len(b.Nodes), Stages: []blockcache.Stage{{Strategy: schedule.Concurrent, Groups: [][]int{{len(b.Nodes)}}}}},
	}
	for i, e := range bad {
		if _, err := blockcache.Rebind(b, e); err == nil {
			t.Errorf("bad entry %d rebound without error", i)
		}
	}
}
