package blockcache

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ios/internal/schedule"
)

// entryFor builds a trivially valid n-op entry: one concurrent stage per
// operator, so validate and Rebind accept it.
func entryFor(n int) *Entry {
	e := &Entry{Ops: n, States: n, Transitions: n}
	for i := 0; i < n; i++ {
		e.Stages = append(e.Stages, Stage{Strategy: schedule.Concurrent, Groups: [][]int{{i}}})
	}
	return e
}

func key(s string) []byte { return append([]byte{KeyVersion}, s...) }

func TestGetOrBeginMissCommitHit(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	ent, claim, err := c.GetOrBegin(ctx, key("a"))
	if err != nil || ent != nil || claim == nil {
		t.Fatalf("first GetOrBegin = (%v, %v, %v), want a claim", ent, claim, err)
	}
	want := entryFor(2)
	claim.Commit(want)
	got, claim2, err := c.GetOrBegin(ctx, key("a"))
	if err != nil || claim2 != nil {
		t.Fatalf("second GetOrBegin = (_, %v, %v), want a hit", claim2, err)
	}
	if got != want {
		t.Fatalf("hit returned %+v, want the committed entry", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.Saved() != 1 {
		t.Fatalf("Saved() = %d, want 1", st.Saved())
	}
}

func TestGetOrBeginKeyIsCopied(t *testing.T) {
	c := NewCache()
	k := key("scratch")
	_, claim, _ := c.GetOrBegin(context.Background(), k)
	claim.Commit(entryFor(1))
	for i := range k {
		k[i] = 0xFF // clobber the caller's buffer
	}
	if _, ok := c.Lookup(key("scratch")); !ok {
		t.Fatal("clobbering the caller's key buffer lost the entry: the cache retained the slice")
	}
}

func TestGetOrBeginCancelledWaiter(t *testing.T) {
	c := NewCache()
	_, claim, _ := c.GetOrBegin(context.Background(), key("slow"))
	defer claim.Abandon()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrBegin(ctx, key("slow"))
		done <- err
	}()
	// The waiter must park on the in-flight cell, then honor its own ctx.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter stayed wedged behind the in-flight search")
	}
}

// TestSingleflightCoalesces: concurrent requesters of one missing key get
// exactly one claim; the rest wait and read the single committed value.
func TestSingleflightCoalesces(t *testing.T) {
	c := NewCache()
	const n = 16
	var (
		claims  int64
		hits    int64
		mu      sync.Mutex
		entries = map[*Entry]bool{}
		wg      sync.WaitGroup
		start   = make(chan struct{})
	)
	want := entryFor(3)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ent, claim, err := c.GetOrBegin(context.Background(), key("k"))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if claim != nil {
				claims++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond) // let waiters pile up
				claim.Commit(want)
				mu.Lock()
				return
			}
			hits++
			entries[ent] = true
		}()
	}
	close(start)
	wg.Wait()
	if claims != 1 {
		t.Fatalf("%d goroutines claimed the key, want exactly 1", claims)
	}
	if hits != n-1 {
		t.Fatalf("%d goroutines read the entry, want %d", hits, n-1)
	}
	if len(entries) != 1 || !entries[want] {
		t.Fatalf("readers saw %d distinct entries, want exactly the committed one", len(entries))
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != n-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+coalesced", st, n-1)
	}
}

// TestAbandonUnwedgesWaiters: an abandoned claim (cancelled or panicked
// owner) releases waiters to retry; one becomes the new owner and the key
// stays searchable — a cancelled fill never poisons it.
func TestAbandonUnwedgesWaiters(t *testing.T) {
	c := NewCache()
	_, claim, _ := c.GetOrBegin(context.Background(), key("k"))

	want := entryFor(1)
	got := make(chan *Entry, 1)
	go func() {
		ent, cl2, err := c.GetOrBegin(context.Background(), key("k"))
		if err != nil {
			t.Error(err)
			got <- nil
			return
		}
		if cl2 != nil {
			// This waiter won the retry: it is the new owner.
			cl2.Commit(want)
			ent = want
		}
		got <- ent
	}()
	time.Sleep(10 * time.Millisecond)
	claim.Abandon()
	select {
	case ent := <-got:
		if ent != want {
			t.Fatalf("waiter read %+v after abandon, want the retry's entry", ent)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stayed wedged after the owner abandoned")
	}
	if _, ok := c.Lookup(key("k")); !ok {
		t.Fatal("key not searchable after abandon + retry commit")
	}
}

// TestAbandonOnPanicUnwedges mirrors how core uses the claim: the owner's
// deferred Abandon runs even when the search panics, so a shared cache
// never wedges the fingerprint.
func TestAbandonOnPanicUnwedges(t *testing.T) {
	c := NewCache()
	func() {
		defer func() { recover() }()
		_, claim, _ := c.GetOrBegin(context.Background(), key("p"))
		committed := false
		defer func() {
			if !committed {
				claim.Abandon()
			}
		}()
		panic("backend exploded mid-search")
	}()
	// The key must be claimable again, promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ent, claim, err := c.GetOrBegin(ctx, key("p"))
	if err != nil || ent != nil || claim == nil {
		t.Fatalf("GetOrBegin after panicked fill = (%v, %v, %v), want a fresh claim", ent, claim, err)
	}
	claim.Commit(entryFor(1))
	if _, ok := c.Lookup(key("p")); !ok {
		t.Fatal("key not searchable after a panicked fill was abandoned")
	}
}

func TestCapacityBoundSheds(t *testing.T) {
	c := NewCacheSize(shardCount) // one completed entry per shard
	for i := 0; i < 10*shardCount; i++ {
		_, claim, _ := c.GetOrBegin(context.Background(), key(fmt.Sprintf("k%d", i)))
		claim.Commit(entryFor(1))
	}
	if n := c.Len(); n > shardCount {
		t.Fatalf("bounded cache holds %d entries, cap %d", n, shardCount)
	}
	if ev := c.Stats().Evicted; ev == 0 {
		t.Fatal("no evictions counted despite overflowing the cap")
	}
	// In-flight claims are never evicted: overflow the shard of a live claim.
	c2 := NewCacheSize(shardCount)
	_, live, _ := c2.GetOrBegin(context.Background(), key("live"))
	for i := 0; i < 10*shardCount; i++ {
		_, cl, _ := c2.GetOrBegin(context.Background(), key(fmt.Sprintf("x%d", i)))
		cl.Commit(entryFor(1))
	}
	live.Commit(entryFor(2))
	if ent, ok := c2.Lookup(key("live")); !ok || ent.Ops != 2 {
		t.Fatal("in-flight claim was evicted by capacity pressure")
	}
}

func TestEntryValidate(t *testing.T) {
	bad := []*Entry{
		{Ops: 0},
		{Ops: 1, States: -1, Stages: []Stage{{Strategy: schedule.Concurrent, Groups: [][]int{{0}}}}},
		{Ops: 1, Stages: []Stage{{Strategy: schedule.Strategy(99), Groups: [][]int{{0}}}}},
		{Ops: 1, Stages: []Stage{{Strategy: schedule.Concurrent}}},                               // no groups
		{Ops: 1, Stages: []Stage{{Strategy: schedule.Concurrent, Groups: [][]int{{}}}}},         // empty group
		{Ops: 1, Stages: []Stage{{Strategy: schedule.Concurrent, Groups: [][]int{{1}}}}},        // out of range
		{Ops: 2, Stages: []Stage{{Strategy: schedule.Concurrent, Groups: [][]int{{0}, {0}}}}},   // duplicate
		{Ops: 2, Stages: []Stage{{Strategy: schedule.Concurrent, Groups: [][]int{{0}}}}},        // incomplete
	}
	for i, e := range bad {
		if err := e.validate(); err == nil {
			t.Errorf("bad entry %d validated: %+v", i, e)
		}
	}
	if err := entryFor(3).validate(); err != nil {
		t.Errorf("good entry rejected: %v", err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	c := NewCache()
	for i := 1; i <= 5; i++ {
		_, claim, _ := c.GetOrBegin(context.Background(), key(fmt.Sprintf("k%d", i)))
		e := entryFor(i)
		e.Stages[0].Strategy = schedule.Merge
		claim.Commit(e)
	}
	// An in-flight claim must be skipped, not persisted half-done.
	_, pending, _ := c.GetOrBegin(context.Background(), key("pending"))
	defer pending.Abandon()

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCache()
	n, err := c2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || c2.Len() != 5 {
		t.Fatalf("loaded %d entries (len %d), want 5", n, c2.Len())
	}
	if st := c2.Stats(); st.Loaded != 5 {
		t.Fatalf("Loaded counter = %d, want 5", st.Loaded)
	}
	for i := 1; i <= 5; i++ {
		got, ok := c2.Lookup(key(fmt.Sprintf("k%d", i)))
		if !ok {
			t.Fatalf("entry k%d missing after round trip", i)
		}
		want := entryFor(i)
		want.Stages[0].Strategy = schedule.Merge
		if got.Ops != want.Ops || got.States != want.States || got.Transitions != want.Transitions ||
			len(got.Stages) != len(want.Stages) {
			t.Fatalf("entry k%d mutated in round trip: %+v vs %+v", i, got, want)
		}
		for s := range got.Stages {
			if got.Stages[s].Strategy != want.Stages[s].Strategy ||
				fmt.Sprint(got.Stages[s].Groups) != fmt.Sprint(want.Stages[s].Groups) {
				t.Fatalf("entry k%d stage %d mutated: %+v vs %+v", i, s, got.Stages[s], want.Stages[s])
			}
		}
	}
	if _, ok := c2.Lookup(key("pending")); ok {
		t.Fatal("in-flight claim was persisted")
	}
	// Reloading over a warm cache keeps the resident entries (no overwrite).
	before, _ := c2.Lookup(key("k1"))
	if n, err := c2.Load(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("reload = (%d, %v), want (0, nil): resident fingerprints win", n, err)
	}
	if after, _ := c2.Lookup(key("k1")); after != before {
		t.Fatal("reload replaced a resident entry")
	}
}

// TestLoadCorruptWholeRejection: any defect anywhere in the file rejects
// the whole file and leaves the cache untouched — never a partial load.
func TestLoadCorruptWholeRejection(t *testing.T) {
	// A valid file to mutate.
	c := NewCache()
	for i := 0; i < 3; i++ {
		_, claim, _ := c.GetOrBegin(context.Background(), key(fmt.Sprintf("k%d", i)))
		claim.Commit(entryFor(2))
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	var f cacheFile
	if err := json.Unmarshal([]byte(good), &f); err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(*cacheFile)) string {
		var g cacheFile
		if err := json.Unmarshal([]byte(good), &g); err != nil {
			t.Fatal(err)
		}
		fn(&g)
		out, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	cases := map[string]string{
		"truncated JSON":   good[:len(good)/2],
		"not JSON":         "block schedules ahoy",
		"wrong version":    mutate(func(g *cacheFile) { g.Version = fileVersion + 1 }),
		"bad base64 key":   mutate(func(g *cacheFile) { g.Entries[1].Key = "!!!" }),
		"empty key":        mutate(func(g *cacheFile) { g.Entries[1].Key = "" }),
		"old key version":  mutate(func(g *cacheFile) { g.Entries[1].Key = base64.RawURLEncoding.EncodeToString([]byte{KeyVersion + 1, 'x'}) }),
		"unknown strategy": mutate(func(g *cacheFile) { g.Entries[2].Stages[0].Strategy = "quantum" }),
		"op out of range":  mutate(func(g *cacheFile) { g.Entries[0].Stages[0].Groups = [][]int{{7}} }),
		"op twice":         mutate(func(g *cacheFile) { g.Entries[0].Stages[0].Groups = [][]int{{0}, {0}} }),
		"incomplete":       mutate(func(g *cacheFile) { g.Entries[0].Stages = g.Entries[0].Stages[:1] }),
	}
	for name, data := range cases {
		fresh := NewCache()
		if _, err := fresh.Load(strings.NewReader(data)); err == nil {
			t.Errorf("%s: Load accepted a corrupt file", name)
		}
		if fresh.Len() != 0 {
			t.Errorf("%s: corrupt load left %d entries resident, want 0 (all-or-nothing)", name, fresh.Len())
		}
		if fresh.Stats().Loaded != 0 {
			t.Errorf("%s: corrupt load bumped the Loaded counter", name)
		}
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blocks.json")
	c := NewCache()
	_, claim, _ := c.GetOrBegin(context.Background(), key("k"))
	claim.Commit(entryFor(4))
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp litter after a successful rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("save left %d files in the directory, want just the cache", len(entries))
	}
	c2 := NewCache()
	n, err := c2.LoadFile(path)
	if err != nil || n != 1 {
		t.Fatalf("LoadFile = (%d, %v), want (1, nil)", n, err)
	}
	if _, err := c2.LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadFile of a missing path succeeded")
	}
}
