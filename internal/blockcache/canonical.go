package blockcache

import (
	"encoding/binary"
	"fmt"

	"ios/internal/graph"
	"ios/internal/schedule"
)

// Stage is one stage of a cached block schedule in node-ID-free canonical
// form: the strategy plus the stage's group partition expressed as
// block-local operator indices. It is the schedule-IR Stage with node
// identity erased — what remains is exactly the structure the fingerprint
// guarantees to be shared.
type Stage struct {
	Strategy schedule.Strategy
	Groups   [][]int
}

// Entry is one completed block search: the canonical stage list plus the
// search statistics recorded when it ran. A cache hit returns the entry's
// recorded States and Transitions as the block's search cost — the same
// convention the serving tier's schedule cache uses — so cross-run search
// statistics stay comparable whether a block was searched or served;
// Measurements always reflects actual simulator invocations and so drops
// to zero on a warm block.
//
// Entries are shared between cache readers and must be treated as
// immutable; Rebind allocates fresh schedule stages on every call.
type Entry struct {
	// Ops is the operator count of the block the schedule covers,
	// recorded so persisted entries validate without their fingerprint
	// and rebinding can reject a mismatched block outright.
	Ops int
	// Stages is the block schedule over local indices.
	Stages []Stage
	// States and Transitions are the DP search cost that produced the
	// schedule (core.Stats conventions).
	States, Transitions int
}

// Canonicalize strips node identity from a block's completed stage list,
// producing the form Entry stores: every operator replaced by its
// block-local index. It fails if a stage mentions a node outside the
// block — such a schedule was not produced by a per-block search and must
// not be cached.
func Canonicalize(b *graph.Block, stages []schedule.Stage) ([]Stage, error) {
	local := make(map[*graph.Node]int, len(b.Nodes))
	for i, n := range b.Nodes {
		local[n] = i
	}
	out := make([]Stage, len(stages))
	for si, st := range stages {
		cs := Stage{Strategy: st.Strategy, Groups: make([][]int, len(st.Groups))}
		for gi, grp := range st.Groups {
			idx := make([]int, len(grp))
			for ni, n := range grp {
				i, ok := local[n]
				if !ok {
					return nil, fmt.Errorf("blockcache: stage %d references node %q outside block %d", si+1, n.Name, b.Index)
				}
				idx[ni] = i
			}
			cs.Groups[gi] = idx
		}
		out[si] = cs
	}
	return out, nil
}

// Rebind instantiates a cached entry's canonical stages onto a block's
// nodes: local index i becomes b.Nodes[i]. It validates shape — the entry
// must cover exactly the block's operators, each once — so a corrupted or
// mismatched entry yields an error (callers fall back to searching), never
// a malformed schedule.
func Rebind(b *graph.Block, e *Entry) ([]schedule.Stage, error) {
	if e.Ops != len(b.Nodes) {
		return nil, fmt.Errorf("blockcache: entry covers %d ops, block %d has %d", e.Ops, b.Index, len(b.Nodes))
	}
	seen := make([]bool, len(b.Nodes))
	covered := 0
	out := make([]schedule.Stage, len(e.Stages))
	for si, cs := range e.Stages {
		st := schedule.Stage{Strategy: cs.Strategy, Groups: make([][]*graph.Node, len(cs.Groups))}
		for gi, idx := range cs.Groups {
			grp := make([]*graph.Node, len(idx))
			for ni, i := range idx {
				if i < 0 || i >= len(b.Nodes) {
					return nil, fmt.Errorf("blockcache: stage %d has operator index %d out of range [0,%d)", si+1, i, len(b.Nodes))
				}
				if seen[i] {
					return nil, fmt.Errorf("blockcache: operator index %d scheduled twice", i)
				}
				seen[i] = true
				covered++
				grp[ni] = b.Nodes[i]
			}
			st.Groups[gi] = grp
		}
		out[si] = st
	}
	if covered != len(b.Nodes) {
		return nil, fmt.Errorf("blockcache: entry schedules %d of %d operators", covered, len(b.Nodes))
	}
	return out, nil
}

// validate checks an entry's internal consistency without a block: the
// structural rules Rebind enforces, against the entry's own Ops count.
// Load applies it to every persisted entry before inserting any.
func (e *Entry) validate() error {
	if e.Ops < 1 {
		return fmt.Errorf("blockcache: entry covers %d ops", e.Ops)
	}
	if e.States < 0 || e.Transitions < 0 {
		return fmt.Errorf("blockcache: negative search statistics (%d states, %d transitions)", e.States, e.Transitions)
	}
	seen := make([]bool, e.Ops)
	covered := 0
	for si, cs := range e.Stages {
		if cs.Strategy != schedule.Concurrent && cs.Strategy != schedule.Merge {
			return fmt.Errorf("blockcache: stage %d has unknown strategy %d", si+1, int(cs.Strategy))
		}
		if len(cs.Groups) == 0 {
			return fmt.Errorf("blockcache: stage %d has no groups", si+1)
		}
		for gi, idx := range cs.Groups {
			if len(idx) == 0 {
				return fmt.Errorf("blockcache: stage %d group %d is empty", si+1, gi+1)
			}
			for _, i := range idx {
				if i < 0 || i >= e.Ops {
					return fmt.Errorf("blockcache: stage %d has operator index %d out of range [0,%d)", si+1, i, e.Ops)
				}
				if seen[i] {
					return fmt.Errorf("blockcache: operator index %d scheduled twice", i)
				}
				seen[i] = true
				covered++
			}
		}
	}
	if covered != e.Ops {
		return fmt.Errorf("blockcache: entry schedules %d of %d operators", covered, e.Ops)
	}
	return nil
}

// appendInt appends a non-negative int as a uvarint — the measurement
// cache's self-delimiting integer convention.
func appendInt(key []byte, v int) []byte {
	return binary.AppendUvarint(key, uint64(v))
}
