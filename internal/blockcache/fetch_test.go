package blockcache

import (
	"context"
	"testing"
)

func TestFetchHookHitCommitsRemotely(t *testing.T) {
	c := NewCache()
	want := entryFor(2)
	var gotKey []byte
	c.SetFetch(func(ctx context.Context, k []byte) (*Entry, bool) {
		gotKey = append([]byte(nil), k...)
		return want, true
	})
	got, cl, err := c.GetOrBegin(context.Background(), key("r"))
	if err != nil || cl != nil || got != want {
		t.Fatalf("GetOrBegin with fetch hit = (%v, %v, %v), want the fetched entry", got, cl, err)
	}
	if string(gotKey) != string(key("r")) {
		t.Fatalf("hook saw key %q", gotKey)
	}
	st := c.Stats()
	if st.Remote != 1 || st.Misses != 0 || st.Size != 1 {
		t.Fatalf("stats after remote hit = %+v", st)
	}
	// Now a plain local hit; the hook must not run again.
	c.SetFetch(func(ctx context.Context, k []byte) (*Entry, bool) {
		t.Error("fetch hook ran on a local hit")
		return nil, false
	})
	if got2, cl2, _ := c.GetOrBegin(context.Background(), key("r")); cl2 != nil || got2 != want {
		t.Fatalf("second lookup = (%v, %v)", got2, cl2)
	}
}

func TestFetchHookMissFallsThrough(t *testing.T) {
	c := NewCache()
	c.SetFetch(func(ctx context.Context, k []byte) (*Entry, bool) { return nil, false })
	got, cl, err := c.GetOrBegin(context.Background(), key("m"))
	if err != nil || cl == nil || got != nil {
		t.Fatalf("GetOrBegin with fetch miss = (%v, %v, %v), want a claim", got, cl, err)
	}
	cl.Commit(entryFor(1))
	st := c.Stats()
	if st.Misses != 1 || st.Remote != 0 {
		t.Fatalf("stats after fetch miss = %+v", st)
	}
}

// TestFetchHookPanicAbandons: a panicking hook must not wedge the
// singleflight — the claim is abandoned and the next caller gets a fresh
// one.
func TestFetchHookPanicAbandons(t *testing.T) {
	c := NewCache()
	c.SetFetch(func(ctx context.Context, k []byte) (*Entry, bool) { panic("boom") })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		c.GetOrBegin(context.Background(), key("p"))
	}()
	c.SetFetch(nil)
	got, cl, err := c.GetOrBegin(context.Background(), key("p"))
	if err != nil || cl == nil || got != nil {
		t.Fatalf("GetOrBegin after hook panic = (%v, %v, %v), want a fresh claim", got, cl, err)
	}
	cl.Commit(entryFor(1))
}
