package blockcache

import (
	"context"
	"sync"
	"sync/atomic"
)

// shardCount spreads the cache over independently locked shards so
// parallel block searches (and concurrent serving requests) rarely contend
// on one mutex. Power of two; the key hash below mixes well enough for a
// mask.
const shardCount = 32

// Cache is a concurrent, sharded, deduplicating map from canonical block
// fingerprint (see Fingerprint) to the completed block schedule in
// canonical form (see Entry).
//
// Lookups are singleflight per key: the first goroutine to miss claims the
// fingerprint and runs the block's DP search while concurrent requesters
// for the same structure block until that one search publishes — so a
// repeated cell is searched once no matter how many of a network's blocks
// (or how many serving requests) race to it. Unlike the measurement
// cache's mutex-based wait, waiters here park on a channel and also honor
// their own context: a block search can run for seconds, and a waiter
// whose request is cancelled must not be wedged behind it.
//
// The zero value is not usable; call NewCache or NewCacheSize.
type Cache struct {
	shards [shardCount]cacheShard
	// perShardCap bounds each shard's resident entries (0 = unbounded):
	// cached schedules are always recomputable, so a full shard sheds
	// arbitrary completed entries rather than maintaining LRU bookkeeping.
	// In-flight claims are never evicted.
	perShardCap int

	// size counts completed entries (maintained by Commit and insert) so
	// Len/Stats never scan the shards.
	size      atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	loaded    atomic.Int64
	evicted   atomic.Int64
	remote    atomic.Int64

	// seq is the publication counter behind Snapshot's incremental
	// export: every completed cell is stamped with seq+1 at publication
	// time, always under its shard mutex, so a Snapshot holding every
	// shard mutex observes exactly the cells stamped ≤ its counter read
	// (see Snapshot in persist.go).
	seq atomic.Uint64

	// fetch, when set, is consulted on a miss — with the claim already
	// held, so concurrent requesters coalesce onto one remote fetch just
	// as they would onto one search. See SetFetch.
	fetch func(ctx context.Context, key []byte) (*Entry, bool)
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cell // guarded by mu
}

// cell is one fingerprint's slot. done is closed exactly once, after val
// and abandoned are final, so any goroutine unblocked by (or observing)
// the closed channel reads complete values without further locking.
type cell struct {
	done chan struct{}
	val  *Entry
	// seq is the publication stamp (see Cache.seq); written under the
	// owning shard's mutex immediately before done is closed, read only
	// by Snapshot while holding that mutex.
	seq uint64
	// abandoned marks a claim released without a result (the owner's
	// search failed, was cancelled, or panicked); the cell has been
	// removed from the shard and waiters must retry the key.
	abandoned bool
}

// doneCell returns a completed cell for v (used by insert, where there is
// never a waiter).
func doneCell(v *Entry) *cell {
	c := &cell{done: make(chan struct{}), val: v}
	close(c.done)
	return c
}

// completed reports whether the cell's result is published, without
// blocking.
func (e *cell) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Claim is an exclusive lease on one missing fingerprint, returned by
// GetOrBegin: the holder must run the block search and call Commit — or,
// if the search fails for any reason, Abandon — exactly once (every other
// goroutine asking for the same key waits on it until then).
type Claim struct {
	c   *Cache
	sh  *cacheShard
	key string
	e   *cell
}

// Commit publishes the completed entry and releases the claim. The entry
// is shared with every current and future reader and must not be mutated
// afterwards.
//
// The sequence stamp and the done close happen together under the shard
// mutex so Snapshot (which holds every shard mutex) sees a consistent
// cut: a cell is visible to a snapshot if and only if its stamp is ≤ the
// snapshot's counter read. The brief shard lock cannot deadlock: nothing
// blocks on a cell's channel while holding a shard mutex.
func (cl *Claim) Commit(v *Entry) {
	cl.e.val = v
	cl.sh.mu.Lock()
	cl.e.seq = cl.c.seq.Add(1)
	close(cl.e.done)
	cl.sh.mu.Unlock()
	cl.c.size.Add(1)
}

// Abandon releases the claim without publishing a result: the cell is
// removed from the cache (so the fingerprint stays searchable) and blocked
// waiters retry the key instead of reading a missing value. Call it when
// the search cannot complete — a cancelled context, an error, a panicking
// backend — or the fingerprint would stay wedged forever for every future
// requester of a shared cache. A cancelled fill never poisons its key.
func (cl *Claim) Abandon() {
	cl.sh.mu.Lock()
	if cl.sh.m[cl.key] == cl.e {
		delete(cl.sh.m, cl.key)
	}
	cl.sh.mu.Unlock()
	cl.e.abandoned = true // published by the close below
	close(cl.e.done)
}

// NewCache returns an empty, unbounded block cache — the right default for
// optimizing a fixed set of models, where the entry count is bounded by
// the models' distinct block structures.
func NewCache() *Cache { return NewCacheSize(0) }

// NewCacheSize returns an empty cache holding at most maxEntries completed
// entries (0 or negative = unbounded). Long-running processes optimizing
// arbitrary client-supplied graphs — the serving tier — should be bounded:
// the cache otherwise only ever grows. Over capacity, arbitrary completed
// entries are shed (eviction costs a re-search, never correctness);
// in-flight claims are never evicted.
func NewCacheSize(maxEntries int) *Cache {
	c := &Cache{}
	if maxEntries > 0 {
		c.perShardCap = (maxEntries + shardCount - 1) / shardCount
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cell)
	}
	return c
}

// trimShardLocked sheds completed entries until the shard has room for
// one more (callers insert right after). Caller holds sh.mu. Map
// iteration order is effectively random, which is exactly the cheap
// eviction policy wanted here.
func (c *Cache) trimShardLocked(sh *cacheShard) {
	if c.perShardCap <= 0 {
		return
	}
	for k, e := range sh.m {
		if len(sh.m) < c.perShardCap {
			return
		}
		if !e.completed() {
			continue // never evict an in-flight claim
		}
		delete(sh.m, k)
		c.size.Add(-1)
		c.evicted.Add(1)
	}
}

// GetOrBegin looks up a block fingerprint. On a hit (or after waiting out
// another goroutine's in-flight search of the same key) it returns the
// cached entry and a nil Claim. On a miss it returns a non-nil Claim: the
// caller now owns the key and must search and Commit (or Abandon on
// failure). A waiter whose own ctx ends returns ctx.Err() without
// disturbing the in-flight search; a waiter that observes the owner
// abandon retries the key and may become the new owner.
//
// The key may point into a reusable scratch buffer: the cache copies it on
// insertion and never retains the caller's slice.
func (c *Cache) GetOrBegin(ctx context.Context, key []byte) (*Entry, *Claim, error) {
	sh := &c.shards[shardOf(key)]
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		sh.mu.Lock()
		e, ok := sh.m[string(key)] // no-copy map lookup
		if !ok {
			ks := string(key)
			e = &cell{done: make(chan struct{})}
			c.trimShardLocked(sh)
			sh.m[ks] = e
			sh.mu.Unlock()
			cl := &Claim{c: c, sh: sh, key: ks, e: e}
			if f := c.fetch; f != nil {
				if v, ok := runFetch(ctx, cl, f, key); ok {
					cl.Commit(v)
					c.remote.Add(1)
					return v, nil, nil
				}
			}
			c.misses.Add(1)
			return nil, cl, nil
		}
		sh.mu.Unlock()
		if e.completed() {
			if e.abandoned {
				continue // owner died between our lookup and now; retry
			}
			c.hits.Add(1)
			return e.val, nil, nil
		}
		// In flight on another goroutine: wait for its Commit or Abandon,
		// or for our own context to end.
		c.coalesced.Add(1)
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
		if e.abandoned {
			// The owner released without a result and removed the cell;
			// retry the key — we (or another waiter) become the new owner.
			continue
		}
		return e.val, nil, nil
	}
}

// SetFetch installs a remote-fetch hook consulted on every miss, while
// the claim is already held: a hook hit is committed (and counted in
// Stats.Remote, not Misses) exactly as if the holder had searched it, so
// concurrent requesters coalesce onto one fetch and the hook's result is
// shared with every waiter. A hook miss falls through to the normal
// claim — the caller searches locally. The hook is responsible for
// validating what it returns (peers return wire entries whose Decode
// runs the same structural validation as Load) and must not call back
// into the cache for the same key.
//
// SetFetch must be called before the cache is shared between goroutines
// (it is a plain field write, wired once at cluster-node construction).
func (c *Cache) SetFetch(f func(ctx context.Context, key []byte) (*Entry, bool)) { c.fetch = f }

// runFetch runs the fetch hook with the claim held, abandoning the claim
// if the hook panics so the fingerprint is not wedged for every future
// requester while the panic propagates.
func runFetch(ctx context.Context, cl *Claim, f func(context.Context, []byte) (*Entry, bool), key []byte) (v *Entry, ok bool) {
	returned := false
	defer func() {
		if !returned {
			cl.Abandon()
		}
	}()
	v, ok = f(ctx, key)
	returned = true
	return v, ok
}

// Lookup returns the entry for a completed fingerprint without claiming or
// waiting; it reports false for absent, in-flight, and just-abandoned
// keys. Counters are untouched. Intended for tests and tooling.
func (c *Cache) Lookup(key []byte) (*Entry, bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	e, ok := sh.m[string(key)]
	sh.mu.Unlock()
	if !ok || !e.completed() || e.abandoned {
		return nil, false
	}
	return e.val, true
}

// insert adds a completed entry if the key is absent (used by Load; an
// existing cell — completed or in flight — wins, since by construction
// both sides hold the result of the same deterministic search). Reports
// whether it inserted.
func (c *Cache) insert(key string, v *Entry) bool {
	sh := &c.shards[shardOf([]byte(key))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		return false
	}
	c.trimShardLocked(sh)
	e := doneCell(v)
	e.seq = c.seq.Add(1) // under sh.mu, like every publication stamp
	sh.m[key] = e
	c.size.Add(1)
	return true
}

// Len returns the number of completed entries (O(1): a counter, not a
// shard scan).
func (c *Cache) Len() int { return int(c.size.Load()) }

// Stats is a snapshot of the cache's traffic counters. All counters are
// cumulative since the cache was created.
type Stats struct {
	// Size is the number of resident completed entries.
	Size int `json:"size"`
	// Hits served a completed block schedule without searching.
	Hits int64 `json:"hits"`
	// Misses claimed a fingerprint and ran the block's DP search.
	Misses int64 `json:"misses"`
	// Coalesced requests arrived while the same fingerprint was being
	// searched and waited for that in-flight run instead of starting
	// their own — the singleflight dedup count.
	Coalesced int64 `json:"coalesced"`
	// Loaded counts entries inserted from a persisted cache file.
	Loaded int64 `json:"loaded"`
	// Evicted counts completed entries shed over capacity (0 for
	// unbounded caches).
	Evicted int64 `json:"evicted"`
	// Remote counts misses satisfied by the fetch hook (SetFetch) —
	// block schedules pulled from a peer instead of searched locally. A
	// remote hit is neither a Hit (it was not resident) nor a Miss (no
	// DP search ran).
	Remote int64 `json:"remote"`
}

// Saved returns the number of block DP searches the cache avoided: every
// hit, every coalesced wait, and every remote fetch would have been a
// full search.
func (s Stats) Saved() int64 { return s.Hits + s.Coalesced + s.Remote }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Size:      c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Loaded:    c.loaded.Load(),
		Evicted:   c.evicted.Load(),
		Remote:    c.remote.Load(),
	}
}

// shardOf hashes a key to its shard (FNV-1a over the bytes, high bits
// folded in — the measurement cache's recipe; this is not the lookup hash,
// Go's map provides that).
func shardOf(key []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int((h ^ h>>32) & (shardCount - 1))
}
