package blockcache

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func fill(t *testing.T, c *Cache, name string, ops int) {
	t.Helper()
	_, cl, err := c.GetOrBegin(context.Background(), key(name))
	if err != nil || cl == nil {
		t.Fatalf("fill %q: (_, %v, %v), want a claim", name, cl, err)
	}
	cl.Commit(entryFor(ops))
}

func TestSnapshotIncremental(t *testing.T) {
	c := NewCache()
	fill(t, c, "a", 1)
	fill(t, c, "b", 2)

	first, cut := c.Snapshot(0)
	if len(first) != 2 {
		t.Fatalf("full snapshot has %d entries, want 2", len(first))
	}
	// Unfinished fills are invisible.
	_, pending, _ := c.GetOrBegin(context.Background(), key("pending"))
	if got, _ := c.Snapshot(0); len(got) != 2 {
		t.Fatalf("snapshot saw an uncommitted fill: %d entries", len(got))
	}
	pending.Abandon()

	// Nothing new since the cut.
	if inc, _ := c.Snapshot(cut); len(inc) != 0 {
		t.Fatalf("incremental snapshot at the cut has %d entries, want 0", len(inc))
	}
	fill(t, c, "c", 3)
	inc, cut2 := c.Snapshot(cut)
	if len(inc) != 1 {
		t.Fatalf("incremental snapshot has %d entries, want exactly the new one", len(inc))
	}
	if cut2 <= cut {
		t.Fatalf("cut did not advance: %d -> %d", cut, cut2)
	}
	raw, _, err := inc[0].Decode()
	if err != nil || string(raw) != string(key("c")) {
		t.Fatalf("incremental entry decodes to %q (%v), want key c", raw, err)
	}
}

func TestMergeRoundTripAndDedup(t *testing.T) {
	src := NewCache()
	fill(t, src, "x", 2)
	fill(t, src, "y", 3)
	entries, _ := src.Snapshot(0)

	dst := NewCache()
	added, err := dst.Merge(entries)
	if err != nil || added != 2 {
		t.Fatalf("Merge = (%d, %v), want (2, nil)", added, err)
	}
	got, cl, err := dst.GetOrBegin(context.Background(), key("y"))
	if err != nil || cl != nil || got == nil || got.Ops != 3 {
		t.Fatalf("merged entry lookup = (%v, %v, %v)", got, cl, err)
	}
	// Re-merging the same batch adds nothing.
	if added, err := dst.Merge(entries); err != nil || added != 0 {
		t.Fatalf("re-Merge = (%d, %v), want (0, nil)", added, err)
	}
	if st := dst.Stats(); st.Loaded != 2 {
		t.Fatalf("Loaded = %d, want 2", st.Loaded)
	}
}

func TestMergeAllOrNothing(t *testing.T) {
	src := NewCache()
	fill(t, src, "good", 1)
	entries, _ := src.Snapshot(0)
	bad := entries[0]
	bad.Ops = -1 // fails Entry.validate
	batch := []WireEntry{entries[0], bad}

	dst := NewCache()
	if added, err := dst.Merge(batch); err == nil {
		t.Fatalf("Merge accepted a corrupt entry (added %d)", added)
	}
	if st := dst.Stats(); st.Size != 0 {
		t.Fatalf("rejected Merge still inserted %d entries", st.Size)
	}
}

func TestExportSubset(t *testing.T) {
	c := NewCache()
	fill(t, c, "a", 1)
	fill(t, c, "b", 2)
	out := c.Export([][]byte{key("b"), key("missing")})
	if len(out) != 1 {
		t.Fatalf("Export returned %d entries, want 1", len(out))
	}
	raw, _, err := out[0].Decode()
	if err != nil || string(raw) != string(key("b")) {
		t.Fatalf("exported %q (%v), want key b", raw, err)
	}
}

// TestSaveFileDuringActiveFills is the crash-consistency story behind
// periodic checkpointing: SaveFile racing live fills must always produce
// a loadable, internally consistent file — whatever subset of fills it
// catches.
func TestSaveFileDuringActiveFills(t *testing.T) {
	c := NewCache()
	path := filepath.Join(t.TempDir(), "blocks.json")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key(fmt.Sprintf("w%d-%d", w, i%200))
				_, cl, err := c.GetOrBegin(context.Background(), k)
				if err != nil {
					return
				}
				if cl != nil {
					cl.Commit(entryFor(1 + i%3))
				}
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		if err := c.SaveFile(path); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("save %d: %v", i, err)
		}
		fresh := NewCache()
		if _, err := fresh.LoadFile(path); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("load of save %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
