package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ios/internal/blockcache"
	"ios/internal/measure"
	"ios/internal/plan"
	"ios/internal/serve"
)

// Member identifies one cluster node: a stable ID (the ring hashes it)
// and the base URL peers reach it at.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Config wires one node into a cluster.
type Config struct {
	// Self is this node's Member.ID; it must appear in Members.
	Self string
	// Members is the full membership list, including Self. Every node
	// must use the same list (ring ownership is a pure function of it);
	// SetMembers updates it live.
	Members []Member
	// Server is the serving tier this node fronts. The node shards and
	// exchanges the server's own block and measurement caches, so each
	// cluster node must be built over private caches (serve.Config's
	// MeasureCache/BlockCache), not the process-wide shared defaults.
	Server *serve.Server
	// Client issues peer requests (nil = http.DefaultClient). The
	// harness injects per-link latency here.
	Client *http.Client
	// Replicas is the ring's virtual-node count per member (<=0 =
	// DefaultReplicas).
	Replicas int
	// FetchTimeout bounds one peer fetch attempt (<=0 = 500ms).
	FetchTimeout time.Duration
	// Retries is the number of extra attempts after a failed fetch to
	// the same peer (<0 = 0; default 1). 404 is a definitive miss and
	// is never retried.
	Retries int
	// FailureCooldown is how long a peer that failed a request is
	// skipped before being probed again (<=0 = 1s). It bounds the cost
	// of a dead node: a few timed-out attempts per cooldown, with every
	// miss in between falling back to local search instantly.
	FailureCooldown time.Duration
	// PushInterval is Run's period between incremental pushes of
	// locally computed entries to their owners (<=0 = 500ms).
	PushInterval time.Duration
	// PushTicks, when non-nil, replaces Run's wall-clock ticker — the
	// injectable clock for tests.
	PushTicks <-chan time.Time
	// Logf receives diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// measureTripAfter is the consecutive-miss threshold of the measurement
// fetch breaker. Remote measurement lookups only pay off when the fleet
// is warm (a hit replaces a local simulation; a miss is pure added
// latency on the DP hot path, which issues tens of thousands of lookups
// per cold search). After this many consecutive misses the node stops
// fetching measurements for FailureCooldown and simulates locally; any
// hit re-arms the breaker.
const measureTripAfter = 64

// fetchFanout is how many ring-ordered candidates a fetch tries: the
// owner plus two successors. The first successor is exactly the key's
// previous owner after a membership change, so a joining node (which owns
// part of the keyspace itself) still finds every warm entry; the rest
// cover an owner that is down.
const fetchFanout = 3

// Node is one cluster member: an http.Handler that serves the peer
// exchange endpoints in front of a serve.Server, wires the server's
// caches to fetch missing entries from their ring owners, and pushes
// locally computed entries out. Create with New; all methods are safe for
// concurrent use.
//
// Endpoints (everything else falls through to the serve.Server):
//
//	GET  /cache/block/<fp>    one block entry, fp base64 raw-URL (404 if absent)
//	POST /cache/block/fetch   {"keys":[fp...]} -> {"entries":[...]}
//	GET  /cache/measure/<fp>  one measurement entry (404 if absent)
//	POST /cache/measure/fetch {"keys":[fp...]} -> {"entries":[...]}
//	POST /cluster/push        {"block":[...],"measure":[...]} -> counts merged
//	GET  /cluster/stats       exchange counters (Stats)
type Node struct {
	cfg     Config
	server  *serve.Server
	blocks  *blockcache.Cache
	measure *measure.Cache
	client  *http.Client
	mux     *http.ServeMux
	baseCtx context.Context

	// now is the clock behind peer-down cooldowns and the measurement
	// breaker; tests substitute a fake.
	now func() time.Time

	mu   sync.Mutex
	ring *Ring             // guarded by mu
	urls map[string]string // guarded by mu
	// down maps a peer ID to the time its failure cooldown ends.
	down map[string]time.Time // guarded by mu
	// measureMissRun counts consecutive remote measurement misses;
	// measureDownUntil is set when it trips (see measureTripAfter).
	measureMissRun   int       // guarded by mu
	measureDownUntil time.Time // guarded by mu

	// pushMu serializes Sync so the incremental snapshot cursors move
	// atomically with the pushes they cover.
	pushMu      sync.Mutex
	lastBlock   uint64 // guarded by pushMu
	lastMeasure uint64 // guarded by pushMu

	blockFetchHits     atomic.Int64
	blockFetchMisses   atomic.Int64
	blockFetchErrors   atomic.Int64
	measureFetchHits   atomic.Int64
	measureFetchMisses atomic.Int64
	measureFetchErrors atomic.Int64
	pushedBlocks       atomic.Int64
	pushedMeasurements atomic.Int64
	mergedBlocks       atomic.Int64
	mergedMeasurements atomic.Int64
	plansPulled        atomic.Int64
	peersMarkedDown    atomic.Int64
}

// Stats is a snapshot of one node's exchange counters (GET /cluster/stats).
type Stats struct {
	// BlockFetchHits count local block-cache misses satisfied by a peer
	// — each one is a block DP search the fleet did not repeat.
	BlockFetchHits int64 `json:"block_fetch_hits"`
	// BlockFetchMisses count fetches no candidate peer could satisfy
	// (the structure is new fleet-wide); the node searched locally.
	BlockFetchMisses int64 `json:"block_fetch_misses"`
	// BlockFetchErrors count fetch attempts that failed to transport
	// (peer down or timed out) — bounded by the failure cooldown.
	BlockFetchErrors   int64 `json:"block_fetch_errors"`
	MeasureFetchHits   int64 `json:"measure_fetch_hits"`
	MeasureFetchMisses int64 `json:"measure_fetch_misses"`
	MeasureFetchErrors int64 `json:"measure_fetch_errors"`
	// PushedBlocks/PushedMeasurements count entries shipped to their
	// owners by Sync; MergedBlocks/MergedMeasurements count entries
	// accepted from peers' pushes.
	PushedBlocks       int64 `json:"pushed_blocks"`
	PushedMeasurements int64 `json:"pushed_measurements"`
	MergedBlocks       int64 `json:"merged_blocks"`
	MergedMeasurements int64 `json:"merged_measurements"`
	// PlansPulled counts batch plans fetched from peers' registries.
	PlansPulled int64 `json:"plans_pulled"`
	// PeersMarkedDown counts failure-cooldown activations.
	PeersMarkedDown int64 `json:"peers_marked_down"`
}

// New wires a node: it installs fetch hooks on the server's block and
// measurement caches (so this server's caches must be private to it) and
// registers the exchange endpoints. ctx is the node's lifetime — it
// bounds peer fetches issued from inside the DP hot path, which carries
// no request context of its own.
func New(ctx context.Context, cfg Config) (*Node, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("cluster: Config.Server is required")
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 500 * time.Millisecond
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.FailureCooldown <= 0 {
		cfg.FailureCooldown = time.Second
	}
	if cfg.PushInterval <= 0 {
		cfg.PushInterval = 500 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	n := &Node{
		cfg:     cfg,
		server:  cfg.Server,
		blocks:  cfg.Server.BlockCache(),
		measure: cfg.Server.MeasureCache(),
		client:  client,
		mux:     http.NewServeMux(),
		baseCtx: ctx,
		//lint:ioslint-ignore determinism peer-down cooldowns are wall-clock by design; tests substitute a fake by assigning n.now
		now:  time.Now,
		down: make(map[string]time.Time),
	}
	if err := n.SetMembers(cfg.Members); err != nil {
		return nil, err
	}
	n.blocks.SetFetch(n.fetchBlock)
	n.measure.SetFetch(n.fetchMeasure)
	n.mux.HandleFunc("/cache/block/fetch", n.handleBlockFetch)
	n.mux.HandleFunc("/cache/block/", n.handleBlockGet)
	n.mux.HandleFunc("/cache/measure/fetch", n.handleMeasureFetch)
	n.mux.HandleFunc("/cache/measure/", n.handleMeasureGet)
	n.mux.HandleFunc("/cluster/push", n.handlePush)
	n.mux.HandleFunc("/cluster/stats", n.handleStats)
	n.mux.Handle("/", cfg.Server)
	return n, nil
}

// ServeHTTP serves the exchange endpoints and falls through to the
// underlying serve.Server for everything else.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.mux.ServeHTTP(w, r) }

// Server returns the serve.Server this node fronts.
func (n *Node) Server() *serve.Server { return n.server }

// SetMembers replaces the membership list (Self must be present). Every
// node must converge on the same list; keys whose owner changed are
// re-fetched from their old owner on first miss (the old owner is the new
// owner's ring successor), so membership changes never invalidate warm
// state.
func (n *Node) SetMembers(members []Member) error {
	ids := make([]string, 0, len(members))
	urls := make(map[string]string, len(members))
	self := false
	for _, m := range members {
		ids = append(ids, m.ID)
		urls[m.ID] = strings.TrimSuffix(m.URL, "/")
		if m.ID == n.cfg.Self {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("cluster: Self %q not in members", n.cfg.Self)
	}
	ring, err := NewRing(ids, n.cfg.Replicas)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.ring, n.urls = ring, urls
	n.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the exchange counters.
func (n *Node) Stats() Stats {
	return Stats{
		BlockFetchHits:     n.blockFetchHits.Load(),
		BlockFetchMisses:   n.blockFetchMisses.Load(),
		BlockFetchErrors:   n.blockFetchErrors.Load(),
		MeasureFetchHits:   n.measureFetchHits.Load(),
		MeasureFetchMisses: n.measureFetchMisses.Load(),
		MeasureFetchErrors: n.measureFetchErrors.Load(),
		PushedBlocks:       n.pushedBlocks.Load(),
		PushedMeasurements: n.pushedMeasurements.Load(),
		MergedBlocks:       n.mergedBlocks.Load(),
		MergedMeasurements: n.mergedMeasurements.Load(),
		PlansPulled:        n.plansPulled.Load(),
		PeersMarkedDown:    n.peersMarkedDown.Load(),
	}
}

// candidates returns the fetch targets for a key: up to fetchFanout ring
// owners in order, minus self and minus peers inside a failure cooldown.
func (n *Node) candidates(key []byte) []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := n.ring.Owners(key, fetchFanout)
	now := n.now()
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		if id == n.cfg.Self || now.Before(n.down[id]) {
			continue
		}
		out = append(out, Member{ID: id, URL: n.urls[id]})
	}
	return out
}

// markDown starts a peer's failure cooldown.
func (n *Node) markDown(id string) {
	n.mu.Lock()
	n.down[id] = n.now().Add(n.cfg.FailureCooldown)
	n.mu.Unlock()
	n.peersMarkedDown.Add(1)
	n.logf("cluster %s: peer %s marked down for %s", n.cfg.Self, id, n.cfg.FailureCooldown)
}

// fetch hooks ----------------------------------------------------------

// fetchBlock is the block cache's SetFetch hook: ask the key's ring
// owners for the canonical entry before paying a local DP search. Any
// returned entry passed WireEntry.Decode's structural validation — the
// same bar a persisted cache file meets — and is then rebound to the
// actual block by the existing blockcache.Rebind path at the call site.
func (n *Node) fetchBlock(ctx context.Context, key []byte) (*blockcache.Entry, bool) {
	wes, ok := n.fetchEntry(ctx, "block", key, &n.blockFetchErrors) //ioslint:untrusted peer HTTP body
	if !ok || len(wes) == 0 {
		n.blockFetchMisses.Add(1)
		return nil, false
	}
	var we blockcache.WireEntry
	if err := json.Unmarshal(wes[0], &we); err != nil {
		n.logf("cluster %s: peer returned bad block entry: %v", n.cfg.Self, err)
		n.blockFetchMisses.Add(1)
		return nil, false
	}
	raw, v, err := we.Decode()
	if err != nil || !bytes.Equal(raw, key) {
		n.logf("cluster %s: peer returned bad block entry: %v", n.cfg.Self, err)
		n.blockFetchMisses.Add(1)
		return nil, false
	}
	n.blockFetchHits.Add(1)
	return v, true
}

// fetchMeasure is the measurement cache's SetFetch hook. The DP engine
// issues tens of thousands of these per cold search and a local
// simulation costs microseconds, so remote lookup only pays off against
// a warm fleet: a consecutive-miss breaker (measureTripAfter) shuts the
// path off during cold search storms and re-probes after the cooldown.
// The hook runs on the DP hot path, which carries no context — fetches
// are bounded by the node's lifetime context plus the fetch timeout.
func (n *Node) fetchMeasure(key []byte) (float64, bool) {
	if !n.measureFetchArmed() {
		return 0, false
	}
	wes, ok := n.fetchEntry(n.baseCtx, "measure", key, &n.measureFetchErrors) //ioslint:untrusted peer HTTP body
	if !ok || len(wes) == 0 {
		n.measureFetchMisses.Add(1)
		n.noteMeasureMiss()
		return 0, false
	}
	var we measure.WireEntry
	if err := json.Unmarshal(wes[0], &we); err != nil {
		n.logf("cluster %s: peer returned bad measurement entry: %v", n.cfg.Self, err)
		n.measureFetchMisses.Add(1)
		n.noteMeasureMiss()
		return 0, false
	}
	raw, lat, err := we.Decode()
	if err != nil || !bytes.Equal(raw, key) {
		n.logf("cluster %s: peer returned bad measurement entry: %v", n.cfg.Self, err)
		n.measureFetchMisses.Add(1)
		n.noteMeasureMiss()
		return 0, false
	}
	n.measureFetchHits.Add(1)
	n.noteMeasureHit()
	return lat, true
}

// measureFetchArmed reports whether the measurement breaker allows a
// remote lookup right now.
func (n *Node) measureFetchArmed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.measureMissRun < measureTripAfter {
		return true
	}
	if n.now().Before(n.measureDownUntil) {
		return false
	}
	// Cooldown over: allow one probing run.
	n.measureMissRun = 0
	return true
}

func (n *Node) noteMeasureMiss() {
	n.mu.Lock()
	n.measureMissRun++
	if n.measureMissRun == measureTripAfter {
		n.measureDownUntil = n.now().Add(n.cfg.FailureCooldown)
	}
	n.mu.Unlock()
}

func (n *Node) noteMeasureHit() {
	n.mu.Lock()
	n.measureMissRun = 0
	n.mu.Unlock()
}

// fetchEntry asks each candidate peer for one entry of the given kind
// ("block" or "measure"), bounded by FetchTimeout per attempt and
// Retries extra attempts per peer for transport failures; a 404 is a
// definitive per-peer miss and moves straight to the next candidate. A
// peer that fails transport is marked down for the failure cooldown.
// Returns (entries, true) on a 200, (nil, false) when every candidate
// missed or failed — the caller computes locally, never errors.
func (n *Node) fetchEntry(ctx context.Context, kind string, key []byte, errCounter *atomic.Int64) ([]json.RawMessage, bool) {
	if ctx.Err() != nil {
		return nil, false
	}
	fp := base64.RawURLEncoding.EncodeToString(key)
	for _, peer := range n.candidates(key) {
		for attempt := 0; attempt <= n.cfg.Retries; attempt++ {
			entries, status, err := n.getEntries(ctx, peer.URL+"/cache/"+kind+"/"+fp)
			if err != nil {
				errCounter.Add(1)
				if ctx.Err() != nil {
					return nil, false
				}
				if attempt == n.cfg.Retries {
					n.markDown(peer.ID)
				}
				continue
			}
			if status == http.StatusNotFound {
				break // definitive miss on this peer; ask the next owner
			}
			if status != http.StatusOK || len(entries) == 0 {
				errCounter.Add(1)
				break
			}
			return entries, true
		}
	}
	return nil, false
}

// getEntries performs one GET of a wire-entry response. The entries come
// back raw so block and measurement fetches share this transport path
// and decode (with validation) at their call sites.
func (n *Node) getEntries(ctx context.Context, rawurl string) ([]json.RawMessage, int, error) {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawurl, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, nil
	}
	var body struct {
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, 0, err
	}
	return body.Entries, resp.StatusCode, nil
}

// push path ------------------------------------------------------------

// pushRequest is the POST /cluster/push body: wire entries for the
// receiver to merge, in the caches' persisted-file entry format.
type pushRequest struct {
	Block   []blockcache.WireEntry `json:"block,omitempty"`
	Measure []measure.WireEntry    `json:"measure,omitempty"`
}

// pushResponse reports how many pushed entries were new to the receiver.
type pushResponse struct {
	BlockAdded   int `json:"block_added"`
	MeasureAdded int `json:"measure_added"`
}

// Sync pushes every cache entry published since the last successful Sync
// to its ring owner (batched per owner), returning how many entries were
// shipped. Peers inside a failure cooldown are skipped and the cursors
// are not advanced past a failed round, so missed entries are re-pushed
// next time — Merge on the receiver deduplicates. Run calls this on a
// ticker; the harness calls it synchronously to hand a warm keyspace to
// its owners before a join.
//
//ioslint:lockorder-allow Node.pushMu push rounds serialize deliberately: the snapshot cursors must advance atomically with their push round-trip, only the background pusher and harness warm-up contend for this lock, and no request path ever takes it
func (n *Node) Sync(ctx context.Context) (int, error) {
	n.pushMu.Lock()
	defer n.pushMu.Unlock()
	bents, bnext := n.blocks.Snapshot(n.lastBlock)
	ments, mnext := n.measure.Snapshot(n.lastMeasure)
	if len(bents) == 0 && len(ments) == 0 {
		n.lastBlock, n.lastMeasure = bnext, mnext
		return 0, nil
	}
	per := make(map[string]*pushRequest)
	var owners []string
	n.mu.Lock()
	ring := n.ring
	urls := n.urls
	n.mu.Unlock()
	add := func(owner string) *pushRequest {
		req := per[owner]
		if req == nil {
			req = &pushRequest{}
			per[owner] = req
			owners = append(owners, owner)
		}
		return req
	}
	for _, we := range bents {
		raw, err := base64.RawURLEncoding.DecodeString(we.Key)
		if err != nil {
			continue // cannot happen for our own snapshot
		}
		if owner := ring.Owner(raw); owner != n.cfg.Self {
			r := add(owner)
			r.Block = append(r.Block, we)
		}
	}
	for _, we := range ments {
		raw, err := base64.RawURLEncoding.DecodeString(we.Key)
		if err != nil {
			continue
		}
		if owner := ring.Owner(raw); owner != n.cfg.Self {
			r := add(owner)
			r.Measure = append(r.Measure, we)
		}
	}
	sort.Strings(owners)
	pushed := 0
	var firstErr error
	for _, id := range owners {
		if n.peerDown(id) {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: peer %s down", id)
			}
			continue
		}
		req := per[id]
		if err := n.postPush(ctx, urls[id], req); err != nil {
			n.markDown(id)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pushed += len(req.Block) + len(req.Measure)
		n.pushedBlocks.Add(int64(len(req.Block)))
		n.pushedMeasurements.Add(int64(len(req.Measure)))
	}
	if firstErr == nil {
		n.lastBlock, n.lastMeasure = bnext, mnext
	}
	return pushed, firstErr
}

// peerDown reports whether a peer is inside its failure cooldown.
func (n *Node) peerDown(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now().Before(n.down[id])
}

// postPush ships one owner's batch.
func (n *Node) postPush(ctx context.Context, baseURL string, preq *pushRequest) error {
	body, err := json.Marshal(preq)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 4*n.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/cluster/push", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: push to %s: HTTP %d", baseURL, resp.StatusCode)
	}
	return nil
}

// Run pushes incrementally on a ticker until ctx ends. Fetches already
// work without it (pulls find entries at their owners or fall back), but
// the pusher is what converges owners on the canonical copy of their key
// range so later fetches hit on the first candidate.
func (n *Node) Run(ctx context.Context) {
	ticks := n.cfg.PushTicks
	if ticks == nil {
		//lint:ioslint-ignore determinism the background push cadence is wall-clock by design; tests inject PushTicks
		t := time.NewTicker(n.cfg.PushInterval)
		defer t.Stop()
		ticks = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticks:
			if _, err := n.Sync(ctx); err != nil && ctx.Err() == nil {
				n.logf("cluster %s: push: %v", n.cfg.Self, err)
			}
		}
	}
}

// PullPlans fetches every batch plan registered on any peer and registers
// the ones this node lacks, returning how many were added. This is the
// client side of the plan registry (GET /plans/<model>/<device>/<opts>):
// a joining node pulls the fleet's specialized plans instead of paying
// the per-batch searches and n² cross-measurements to rebuild them.
func (n *Node) PullPlans(ctx context.Context) (int, error) {
	n.mu.Lock()
	members := n.ring.Members()
	urls := make(map[string]string, len(members))
	for _, id := range members {
		urls[id] = n.urls[id]
	}
	n.mu.Unlock()
	added := 0
	var firstErr error
	for _, id := range members {
		if id == n.cfg.Self || n.peerDown(id) {
			continue
		}
		got, err := n.pullPlansFrom(ctx, urls[id])
		added += got
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.plansPulled.Add(int64(added))
	return added, firstErr
}

func (n *Node) pullPlansFrom(ctx context.Context, baseURL string) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, 4*n.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/plans", nil)
	if err != nil {
		return 0, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, err
	}
	var infos []serve.PlanInfo
	err = json.NewDecoder(resp.Body).Decode(&infos) //ioslint:untrusted peer HTTP plan listing
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	added := 0
	for _, info := range infos {
		if n.server.LookupPlan(info.Model, info.Device, info.Options) != nil {
			continue
		}
		p, err := n.pullPlan(ctx, baseURL, info)
		if err != nil {
			return added, err
		}
		if err := n.server.RegisterPlan(p); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// pullPlan fetches one plan and validates the peer echoed the identity
// that was asked for: plan.Load already rejects structurally invalid
// plans, but a body whose (model, device, opts) differ from the URL
// would otherwise register under the wrong key and win every subsequent
// lookup for that key on this node — the same identity-echo bar the
// fetch hooks apply with bytes.Equal(raw, key).
//
//ioslint:validator
func (n *Node) pullPlan(ctx context.Context, baseURL string, info serve.PlanInfo) (*plan.Plan, error) {
	u := baseURL + "/plans/" + url.PathEscape(info.Model) + "/" + url.PathEscape(info.Device) + "/" + url.PathEscape(info.Options)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: pull plan %s/%s/%s: HTTP %d", info.Model, info.Device, info.Options, resp.StatusCode)
	}
	p, err := plan.Load(resp.Body) //ioslint:untrusted peer HTTP plan body
	if err != nil {
		return nil, err
	}
	if p.Model != info.Model || p.Device != info.Device || p.Opts != info.Options {
		return nil, fmt.Errorf("cluster: pull plan %s/%s/%s: peer returned plan %s/%s/%s", info.Model, info.Device, info.Options, p.Model, p.Device, p.Opts)
	}
	return p, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}
