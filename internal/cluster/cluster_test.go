package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"ios/internal/serve"
)

// TestRingDeterministicAndBalanced: ownership is a pure function of the
// membership set — input order must not matter — and virtual nodes keep
// the split roughly even.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a, err := NewRing([]string{"node0", "node1", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"node2", "node0", "node1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		oa, ob := a.Owner(key), b.Owner(key)
		if oa != ob {
			t.Fatalf("key %d: owner %q vs %q with reordered members", i, oa, ob)
		}
		counts[oa]++
		owners := a.Owners(key, 3)
		if len(owners) != 3 || owners[0] != oa {
			t.Fatalf("key %d: Owners = %v, want 3 distinct starting at %q", i, owners, oa)
		}
		if owners[1] == owners[0] || owners[2] == owners[1] || owners[2] == owners[0] {
			t.Fatalf("key %d: Owners not distinct: %v", i, owners)
		}
	}
	for id, c := range counts {
		if c < keys/6 || c > keys/2+keys/10 {
			t.Errorf("unbalanced ring: %s owns %d of %d", id, c, keys)
		}
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
}

// TestRingJoinSuccessorIsOldOwner is the invariant the warm exchange
// leans on: when a node joins, every key it now owns was owned, in the
// old ring, by exactly the member that is its first successor in the new
// ring — so "ask the owner, then its successors" always reaches the
// pre-join holder of a warm entry.
func TestRingJoinSuccessorIsOldOwner(t *testing.T) {
	old, err := NewRing([]string{"node0", "node1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing([]string{"node0", "node1", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 5000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		was, now := old.Owner(key), grown.Owner(key)
		if now != "node2" {
			if was != now {
				t.Fatalf("key %d moved between surviving members: %q -> %q", i, was, now)
			}
			continue
		}
		moved++
		owners := grown.Owners(key, 2)
		if owners[1] != was {
			t.Fatalf("key %d: new owner node2's successor %q, want old owner %q", i, owners[1], was)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the joining node; ring is broken")
	}
}

// optimizeVia drives POST /optimize over the harness's HTTP client.
func optimizeVia(t *testing.T, client *http.Client, baseURL, model string, batch int) serve.OptimizeResponse {
	t.Helper()
	resp, err := postOptimize(client, baseURL, model, batch)
	if err != nil {
		t.Fatalf("optimize %s via %s: %v", model, baseURL, err)
	}
	return resp
}

func postOptimize(client *http.Client, baseURL, model string, batch int) (serve.OptimizeResponse, error) {
	var out serve.OptimizeResponse
	body, _ := json.Marshal(serve.OptimizeRequest{Model: model, Batch: batch})
	resp, err := client.Post(baseURL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// TestClusterWarmExchangeZeroSearches: a node joining a warm fleet serves
// its first request entirely from peer-fetched block schedules — zero
// local block DP searches — and the result is bit-identical to the seed
// node's locally searched schedule.
func TestClusterWarmExchangeZeroSearches(t *testing.T) {
	ctx := context.Background()
	h, err := StartHarness(ctx, HarnessConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	seed := h.Nodes()[0]
	seedResp := optimizeVia(t, h.Client(), seed.URL, "inception-e", 1)
	if seed.Server.BlockCache().Stats().Misses == 0 {
		t.Fatal("seed node ran no block searches; test is vacuous")
	}
	if _, err := h.SyncAll(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}

	joined, err := h.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	joinResp := optimizeVia(t, h.Client(), joined.URL, "inception-e", 1)

	bs := joined.Server.BlockCache().Stats()
	if bs.Misses != 0 {
		t.Errorf("joining node ran %d block DP searches, want 0 (remote=%d)", bs.Misses, bs.Remote)
	}
	if bs.Remote == 0 {
		t.Error("joining node fetched no block entries from peers")
	}
	ns := joined.Node.Stats()
	if ns.BlockFetchHits == 0 {
		t.Errorf("node stats report no block fetch hits: %+v", ns)
	}
	if !bytes.Equal(seedResp.Schedule, joinResp.Schedule) {
		t.Error("peer-fetched schedule is not bit-identical to the seed's local search")
	}
	if seedResp.LatencyMS != joinResp.LatencyMS {
		t.Errorf("latency diverged: seed %v vs joined %v", seedResp.LatencyMS, joinResp.LatencyMS)
	}
}

// TestClusterFailOneNodeFallsBackLocal: with a peer dead, fresh requests
// still succeed — bounded retry, mark the peer down, local search — and
// no client ever sees an error.
func TestClusterFailOneNodeFallsBackLocal(t *testing.T) {
	ctx := context.Background()
	h, err := StartHarness(ctx, HarnessConfig{
		Nodes:           3,
		FetchTimeout:    100 * time.Millisecond,
		FailureCooldown: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	n0 := h.Nodes()[0]
	optimizeVia(t, h.Client(), n0.URL, "fig2", 1)
	if _, err := h.SyncAll(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}

	h.Kill(1)

	// A structure nobody has yet: every candidate (including the dead
	// node) misses or errors, and the node must search locally.
	resp := optimizeVia(t, h.Client(), n0.URL, "fig2", 2)
	if resp.Batch != 2 {
		t.Fatalf("got batch %d, want 2", resp.Batch)
	}
	if n0.Server.BlockCache().Stats().Misses == 0 {
		t.Error("expected local block searches after peer death")
	}
	// The warm structure stays servable from every live node.
	for _, i := range h.Live() {
		hn := h.Nodes()[i]
		if _, err := postOptimize(h.Client(), hn.URL, "fig2", 1); err != nil {
			t.Errorf("live node %s failed a warm request after peer death: %v", hn.ID, err)
		}
	}
	if st := n0.Node.Stats(); st.PeersMarkedDown == 0 && st.BlockFetchErrors == 0 {
		t.Logf("note: dead peer was never consulted (stats %+v)", st)
	}
}

// TestClusterPlanRegistryPull: a joining node pulls the fleet's
// batch-specialization plans through GET /plans/<model>/<device>/<opts>
// instead of rebuilding them.
func TestClusterPlanRegistryPull(t *testing.T) {
	ctx := context.Background()
	h, err := StartHarness(ctx, HarnessConfig{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	seed := h.Nodes()[0]
	if err := seed.Server.WarmPlans(ctx, []string{"fig2"}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	want := seed.Server.Plans()
	if len(want) != 1 {
		t.Fatalf("seed has %d plans, want 1", len(want))
	}

	joined, err := h.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	added, err := joined.Node.PullPlans(ctx)
	if err != nil {
		t.Fatalf("pull plans: %v", err)
	}
	if added != 1 {
		t.Fatalf("pulled %d plans, want 1", added)
	}
	got := joined.Server.LookupPlan(want[0].Model, want[0].Device, want[0].Opts)
	if got == nil {
		t.Fatal("pulled plan not registered")
	}
	if len(got.Points) != len(want[0].Points) || got.Latency[0][0] != want[0].Latency[0][0] {
		t.Error("pulled plan does not match the seed's")
	}
	// Pulling again is a no-op: everything is already registered.
	if added, err := joined.Node.PullPlans(ctx); err != nil || added != 0 {
		t.Errorf("second pull: added %d err %v, want 0 added", added, err)
	}
	// The registry 404s for unregistered plans.
	resp, err := h.Client().Get(seed.URL + "/plans/nope/nope/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing plan: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestClusterPushConvergesOwners: after Sync, each computed entry lives
// at its ring owner, so a third node's single-entry GETs hit on the first
// candidate.
func TestClusterPushConvergesOwners(t *testing.T) {
	ctx := context.Background()
	h, err := StartHarness(ctx, HarnessConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	n0 := h.Nodes()[0]
	optimizeVia(t, h.Client(), n0.URL, "fig2", 1)
	pushed, err := h.SyncAll(ctx)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if pushed == 0 {
		t.Fatal("nothing pushed: fig2's entries all hashed to the seed? (possible but wildly unlikely)")
	}
	if st := h.Nodes()[1].Node.Stats(); st.MergedBlocks+st.MergedMeasurements == 0 {
		t.Errorf("peer merged nothing: %+v", st)
	}
	// A second sync with no new work pushes nothing (cursor advanced).
	pushed, err = h.SyncAll(ctx)
	if err != nil || pushed != 0 {
		t.Errorf("idle sync pushed %d entries (err %v), want 0", pushed, err)
	}
}

// TestClusterBackgroundPusher: Run pushes on injected ticks.
func TestClusterBackgroundPusher(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ticks := make(chan time.Time)
	h, err := StartHarness(ctx, HarnessConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	n0 := h.Nodes()[0]
	n0.Node.cfg.PushTicks = ticks
	runCtx, stopRun := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() { defer close(done); n0.Node.Run(runCtx) }()

	optimizeVia(t, h.Client(), n0.URL, "fig2", 1)
	ticks <- time.Time{}
	ticks <- time.Time{} // second tick cannot start before the first's Sync finished
	deadline := time.Now().Add(5 * time.Second)
	for h.Nodes()[1].Node.Stats().MergedBlocks+h.Nodes()[1].Node.Stats().MergedMeasurements == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background pusher never delivered entries")
		}
		time.Sleep(time.Millisecond)
	}
	stopRun()
	<-done
}

// TestUncoordinatedBaseline: with the exchange disabled every node pays
// its own cold search — the baseline the bench compares against.
func TestUncoordinatedBaseline(t *testing.T) {
	ctx := context.Background()
	h, err := StartHarness(ctx, HarnessConfig{Nodes: 2, Uncoordinated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	a := optimizeVia(t, h.Client(), h.Nodes()[0].URL, "fig2", 1)
	b := optimizeVia(t, h.Client(), h.Nodes()[1].URL, "fig2", 1)
	for i, hn := range h.Nodes() {
		st := hn.Server.BlockCache().Stats()
		if st.Misses == 0 {
			t.Errorf("uncoordinated node %d ran no local searches", i)
		}
		if st.Remote != 0 {
			t.Errorf("uncoordinated node %d fetched remotely", i)
		}
	}
	if !bytes.Equal(a.Schedule, b.Schedule) {
		t.Error("determinism bug: two independent searches disagree")
	}
}
