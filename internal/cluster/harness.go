package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"ios/internal/blockcache"
	"ios/internal/core"
	"ios/internal/gpusim"
	"ios/internal/measure"
	"ios/internal/serve"
)

// HarnessConfig configures a single-process simulated cluster: N
// serve.Server instances, each behind its own cluster.Node and real TCP
// loopback listener, talking real HTTP to each other.
type HarnessConfig struct {
	// Nodes is the initial node count (>=1).
	Nodes int
	// Device and Options configure every node's server identically
	// (zero values: V100, paper defaults).
	Device  gpusim.Spec
	Options core.Options
	// LinkDelay injects a per-link latency: every HTTP request between
	// harness participants (node↔node and client→node, via Client)
	// sleeps this long before hitting the wire, so convergence and
	// throughput numbers reflect a network, not just loopback.
	LinkDelay time.Duration
	// Uncoordinated disables the exchange tier entirely — bare
	// serve.Servers with private caches, the baseline a coordinated
	// fleet is measured against.
	Uncoordinated bool
	// FetchTimeout, Retries, FailureCooldown, Replicas pass through to
	// each node's Config (zero = that Config's defaults).
	FetchTimeout    time.Duration
	Retries         int
	FailureCooldown time.Duration
	Replicas        int
	// CacheSize bounds each node's schedule cache (0 =
	// serve.DefaultCacheSize); block and measurement caches are
	// unbounded, as for a fixed workload.
	CacheSize int
	// Logf receives diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// HarnessNode is one running node of a harness.
type HarnessNode struct {
	// ID is the node's ring identity ("node0", "node1", ...).
	ID string
	// URL is the node's base URL on the loopback interface.
	URL string
	// Server is the serving tier; its caches are private to this node.
	Server *serve.Server
	// Node is the exchange tier (nil when the harness is Uncoordinated).
	Node *Node

	hs     *http.Server
	cancel context.CancelFunc
	killed bool
}

// Harness is a simulated cluster in one process. Start with StartHarness;
// drive it over HTTP via Client; Close when done. Methods are for a
// single controlling goroutine (the servers themselves take arbitrary
// concurrent traffic).
type Harness struct {
	cfg    HarnessConfig
	client *http.Client
	nodes  []*HarnessNode
}

// StartHarness boots cfg.Nodes nodes, each confirmed ready via its
// GET /healthz before the next joins — the harness's membership gate.
func StartHarness(ctx context.Context, cfg HarnessConfig) (*Harness, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: harness needs at least one node")
	}
	base, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected default transport type")
	}
	h := &Harness{
		cfg:    cfg,
		client: &http.Client{Transport: &delayTransport{delay: cfg.LinkDelay, base: base.Clone()}},
	}
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := h.Join(ctx); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

// Client returns an HTTP client that pays the harness's injected link
// latency on every request — drive all benchmark traffic through it.
func (h *Harness) Client() *http.Client { return h.client }

// Nodes returns the harness's nodes, including killed ones, in join order.
func (h *Harness) Nodes() []*HarnessNode { return h.nodes }

// Live returns the indices of nodes that have not been killed.
func (h *Harness) Live() []int {
	var out []int
	for i, hn := range h.nodes {
		if !hn.killed {
			out = append(out, i)
		}
	}
	return out
}

// Join starts one more node, updates every live node's membership list,
// and waits for the newcomer's /healthz to report ready. The joining
// node's caches are empty: everything it serves warm arrives over the
// exchange.
func (h *Harness) Join(ctx context.Context) (*HarnessNode, error) {
	id := fmt.Sprintf("node%d", len(h.nodes))
	cacheSize := h.cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = serve.DefaultCacheSize
	}
	srv := serve.NewServer(serve.Config{
		Device:       h.cfg.Device,
		Options:      h.cfg.Options,
		Cache:        serve.NewScheduleCache(cacheSize),
		MeasureCache: measure.NewCache(),
		BlockCache:   blockcache.NewCache(),
		Logf:         h.cfg.Logf,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hn := &HarnessNode{ID: id, URL: "http://" + lis.Addr().String(), Server: srv}
	members := make([]Member, 0, len(h.nodes)+1)
	for _, old := range h.nodes {
		members = append(members, Member{ID: old.ID, URL: old.URL})
	}
	members = append(members, Member{ID: hn.ID, URL: hn.URL})

	var handler http.Handler = srv
	nodeCtx, cancel := context.WithCancel(ctx)
	hn.cancel = cancel
	if !h.cfg.Uncoordinated {
		node, err := New(nodeCtx, Config{
			Self:            id,
			Members:         members,
			Server:          srv,
			Client:          h.client,
			Replicas:        h.cfg.Replicas,
			FetchTimeout:    h.cfg.FetchTimeout,
			Retries:         h.cfg.Retries,
			FailureCooldown: h.cfg.FailureCooldown,
			Logf:            h.cfg.Logf,
		})
		if err != nil {
			cancel()
			lis.Close()
			return nil, err
		}
		hn.Node = node
		handler = node
		for _, old := range h.nodes {
			if old.killed || old.Node == nil {
				continue
			}
			if err := old.Node.SetMembers(members); err != nil {
				cancel()
				lis.Close()
				return nil, err
			}
		}
	}
	hn.hs = &http.Server{Handler: handler}
	//lint:ioslint-ignore goroleak deliberate daemon: Serve returns when Kill/Close shuts the server down (hs.Close below and in Kill)
	go hn.hs.Serve(lis)
	if err := h.waitReady(ctx, hn.URL); err != nil {
		cancel()
		hn.hs.Close()
		return nil, err
	}
	h.nodes = append(h.nodes, hn)
	return hn, nil
}

// waitReady polls GET /healthz until it reports ready.
func (h *Harness) waitReady(ctx context.Context, baseURL string) error {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := h.client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		//lint:ioslint-ignore determinism readiness polling backoff is wall-clock by design (real sockets)
		t := time.NewTimer(5 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("cluster: node %s never became ready: %w", baseURL, ctx.Err())
		case <-t.C:
		}
	}
}

// SyncAll runs one synchronous push round on every live node, so every
// computed entry is at its ring owner before the next phase — the
// deterministic stand-in for the background pusher's eventual
// convergence.
func (h *Harness) SyncAll(ctx context.Context) (int, error) {
	total := 0
	for _, hn := range h.nodes {
		if hn.killed || hn.Node == nil {
			continue
		}
		pushed, err := hn.Node.Sync(ctx)
		total += pushed
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Kill abruptly stops node i's HTTP server and cancels its exchange
// context — the fail-one-node knob. Peers see connection errors, mark it
// down, and fall back to local searches; the harness keeps its slot so
// indices stay stable.
func (h *Harness) Kill(i int) {
	hn := h.nodes[i]
	if hn.killed {
		return
	}
	hn.killed = true
	hn.cancel()
	hn.hs.Close()
}

// Close stops every node.
func (h *Harness) Close() {
	for i := range h.nodes {
		h.Kill(i)
	}
	h.client.CloseIdleConnections()
}

// delayTransport injects a fixed latency before each request reaches the
// wire — the harness's per-link network model.
type delayTransport struct {
	delay time.Duration
	base  http.RoundTripper
}

func (t *delayTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.delay > 0 {
		//lint:ioslint-ignore determinism injected link latency is wall-clock by design (simulation harness)
		timer := time.NewTimer(t.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	return t.base.RoundTrip(req)
}
