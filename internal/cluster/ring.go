package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member: enough points
// that a three-node ring splits key ranges within a few percent of
// evenly, few enough that ownership lookup stays a short binary search.
const DefaultReplicas = 64

// Ring is a consistent-hash ring over member IDs with virtual nodes.
// Ownership is a pure function of (member IDs, replicas, key): every node
// given the same membership list computes the same owner for every key,
// with no coordination. Adding or removing a member moves only the keys
// adjacent to its virtual points — the property the warm-cache exchange
// leans on, since a joining node's key range was, by construction, owned
// by its ring successors just before the join.
type Ring struct {
	points   []ringPoint // sorted by hash
	ids      []string    // sorted member IDs
	replicas int
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing builds a ring over the given member IDs (order-insensitive;
// duplicates rejected) with the given virtual-node count per member
// (<=0 means DefaultReplicas).
func NewRing(ids []string, replicas int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty member ID")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", id)
		}
	}
	r := &Ring{ids: sorted, replicas: replicas, points: make([]ringPoint, 0, len(sorted)*replicas)}
	for _, id := range sorted {
		for v := 0; v < replicas; v++ {
			h := hash64([]byte(id + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: h, id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by ID so every member
		// computes the identical ring regardless of input order.
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// Members returns the ring's member IDs, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// Owner returns the member owning a key: the first virtual point at or
// after the key's hash, wrapping around.
func (r *Ring) Owner(key []byte) string { return r.Owners(key, 1)[0] }

// Owners returns up to n distinct members in ring order starting at the
// key's owner. The second entry is the owner's ring successor — exactly
// the member that owned this key before the owner joined, which makes it
// both the warm fallback for a joining owner and the failover target when
// the owner is unreachable.
func (r *Ring) Owners(key []byte, n int) []string {
	if n > len(r.ids) {
		n = len(r.ids)
	}
	if n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		seen := false
		for _, id := range out {
			if id == p.id {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, p.id)
		}
	}
	return out
}

// hash64 is FNV-1a with the high bits folded back in (the same recipe the
// caches use for shard selection): cheap, stateless, and identical on
// every node — ring placement must agree fleet-wide, so this must never
// depend on process state the way maphash does.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h ^ h>>32
}
