package cluster

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// maxFetchKeys bounds one batched fetch request; a peer asking for more
// should page (the pusher never needs to — it POSTs entries, not keys).
const maxFetchKeys = 65536

// fetchKeysRequest is the POST /cache/<kind>/fetch body.
type fetchKeysRequest struct {
	// Keys are canonical fingerprints, base64 raw-URL — the same
	// encoding the caches persist.
	Keys []string `json:"keys"`
}

// handleBlockGet serves GET /cache/block/<fp>: the single canonical block
// entry in wire form, 404 when this node has not finished it.
func (n *Node) handleBlockGet(w http.ResponseWriter, r *http.Request) {
	key, ok := n.singleKey(w, r, "/cache/block/")
	if !ok {
		return
	}
	entries := n.blocks.Export([][]byte{key})
	if len(entries) == 0 {
		n.failJSON(w, http.StatusNotFound, fmt.Errorf("block entry not cached here"))
		return
	}
	n.writeJSON(w, map[string]any{"entries": entries})
}

// handleMeasureGet serves GET /cache/measure/<fp>; see handleBlockGet.
func (n *Node) handleMeasureGet(w http.ResponseWriter, r *http.Request) {
	key, ok := n.singleKey(w, r, "/cache/measure/")
	if !ok {
		return
	}
	entries := n.measure.Export([][]byte{key})
	if len(entries) == 0 {
		n.failJSON(w, http.StatusNotFound, fmt.Errorf("measurement entry not cached here"))
		return
	}
	n.writeJSON(w, map[string]any{"entries": entries})
}

// handleBlockFetch serves POST /cache/block/fetch: the batched variant —
// every requested fingerprint this node has finished, absent keys simply
// omitted (an empty list is a valid answer, not an error).
func (n *Node) handleBlockFetch(w http.ResponseWriter, r *http.Request) {
	keys, ok := n.batchKeys(w, r)
	if !ok {
		return
	}
	n.writeJSON(w, map[string]any{"entries": n.blocks.Export(keys)})
}

// handleMeasureFetch serves POST /cache/measure/fetch; see handleBlockFetch.
func (n *Node) handleMeasureFetch(w http.ResponseWriter, r *http.Request) {
	keys, ok := n.batchKeys(w, r)
	if !ok {
		return
	}
	n.writeJSON(w, map[string]any{"entries": n.measure.Export(keys)})
}

// handlePush serves POST /cluster/push: merge a peer's wire entries into
// the local caches. Merge validates each batch whole before inserting —
// a malformed push is rejected entirely with a 400 and changes nothing.
func (n *Node) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		n.failJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var preq pushRequest
	if err := json.NewDecoder(r.Body).Decode(&preq); err != nil { //ioslint:untrusted peer push request JSON
		n.failJSON(w, http.StatusBadRequest, fmt.Errorf("parse push: %v", err))
		return
	}
	blockAdded, err := n.blocks.Merge(preq.Block)
	if err != nil {
		n.failJSON(w, http.StatusBadRequest, err)
		return
	}
	measureAdded, err := n.measure.Merge(preq.Measure)
	if err != nil {
		n.failJSON(w, http.StatusBadRequest, err)
		return
	}
	n.mergedBlocks.Add(int64(blockAdded))
	n.mergedMeasurements.Add(int64(measureAdded))
	n.writeJSON(w, pushResponse{BlockAdded: blockAdded, MeasureAdded: measureAdded})
}

// handleStats serves GET /cluster/stats.
func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		n.failJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	n.writeJSON(w, n.Stats())
}

// singleKey parses the fingerprint segment of a single-entry GET.
func (n *Node) singleKey(w http.ResponseWriter, r *http.Request, prefix string) ([]byte, bool) {
	if r.Method != http.MethodGet {
		n.failJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return nil, false
	}
	fp := strings.TrimPrefix(r.URL.Path, prefix)
	if fp == "" || strings.Contains(fp, "/") {
		n.failJSON(w, http.StatusBadRequest, fmt.Errorf("use GET %s<fingerprint>", prefix))
		return nil, false
	}
	raw, err := base64.RawURLEncoding.DecodeString(fp)
	if err != nil {
		n.failJSON(w, http.StatusBadRequest, fmt.Errorf("bad fingerprint: %v", err))
		return nil, false
	}
	return raw, true
}

// batchKeys parses and decodes a batched fetch body.
func (n *Node) batchKeys(w http.ResponseWriter, r *http.Request) ([][]byte, bool) {
	if r.Method != http.MethodPost {
		n.failJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return nil, false
	}
	var req fetchKeysRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil { //ioslint:untrusted fetch request JSON
		n.failJSON(w, http.StatusBadRequest, fmt.Errorf("parse fetch: %v", err))
		return nil, false
	}
	if len(req.Keys) > maxFetchKeys {
		n.failJSON(w, http.StatusBadRequest, fmt.Errorf("too many keys (%d > %d)", len(req.Keys), maxFetchKeys))
		return nil, false
	}
	keys := make([][]byte, 0, len(req.Keys))
	for _, k := range req.Keys {
		raw, err := base64.RawURLEncoding.DecodeString(k)
		if err != nil {
			n.failJSON(w, http.StatusBadRequest, fmt.Errorf("bad fingerprint %q: %v", k, err))
			return nil, false
		}
		keys = append(keys, raw)
	}
	return keys, true
}

func (n *Node) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		n.logf("cluster %s: encode response: %v", n.cfg.Self, err)
	}
}

func (n *Node) failJSON(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
