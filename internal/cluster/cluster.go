//ioslint:deterministic

// Package cluster shards the structural caches of a fleet of serve.Server
// nodes by consistent hashing and exchanges warm entries between peers, so
// each distinct block DP search runs once cluster-wide instead of once per
// process.
//
// Every block-schedule and measurement cache entry has a canonical
// structural fingerprint (blockcache.Fingerprint / measure's stage keys);
// the fingerprint hashes onto a virtual-node ring that assigns each key an
// owning node, stable under membership changes (only keys adjacent to a
// joining or leaving node's virtual points move). A node that misses
// locally asks the owner (then the owner's ring successors, which are
// exactly the previous owners after a membership change) for the entry
// over HTTP before paying a DP search; a fetched block schedule passes the
// same structural validation as a persisted cache file and is rebound via
// blockcache.Rebind — the exchange is sound because fingerprints are
// structural and rebinding re-validates against the actual block. A
// background pusher streams locally computed entries to their owners using
// the caches' incremental Snapshot, so owners converge on the canonical
// copy of their key range and later fetches hit.
//
// Peer failure never surfaces to clients: a dead or unreachable peer costs
// a bounded number of timed-out fetch attempts, the peer is marked down
// for a cooldown, and the node falls back to its own local search — the
// worst case is seed-node work, not an error.
package cluster
