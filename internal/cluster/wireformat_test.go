// Wire-format pinning tests for the exchange protocol bodies: the push
// request/response field sets and JSON tags are pinned as data, so
// widening the protocol without thinking about mixed-version fleets
// fails here with instructions. The entries themselves are versioned by
// the caches' WireEntry key bytes, pinned in those packages.
package cluster

import (
	"reflect"
	"strings"
	"testing"
)

// pushV1Fields pins the exact (field, json tag) pairs, in declaration
// order, of the POST /cluster/push bodies.
var pushV1Fields = []struct {
	typ  reflect.Type
	want [][2]string
}{
	{reflect.TypeOf(pushRequest{}), [][2]string{
		{"Block", "block"},
		{"Measure", "measure"},
	}},
	{reflect.TypeOf(pushResponse{}), [][2]string{
		{"BlockAdded", "block_added"},
		{"MeasureAdded", "measure_added"},
	}},
}

func TestPushBodyFieldSetsPinned(t *testing.T) {
	for _, pin := range pushV1Fields {
		if pin.typ.NumField() != len(pin.want) {
			t.Errorf("cluster.%s has %d fields, want %d: a new push field is invisible to old peers (and an old peer's push drops it), so widen the protocol deliberately — handle absence on both sides, then re-pin this test", pin.typ.Name(), pin.typ.NumField(), len(pin.want))
			continue
		}
		for i, want := range pin.want {
			f := pin.typ.Field(i)
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if f.Name != want[0] || tag != want[1] {
				t.Errorf("%s field %d = %s (json %q), want %s (json %q)", pin.typ.Name(), i, f.Name, tag, want[0], want[1])
			}
		}
	}
}
