package gpusim

// Kernel timelines: per-launch start/end records from a simulated run,
// used by cmd/iosviz's Chrome-trace export and by tests that assert
// overlap structure (which kernels actually ran concurrently).

// KernelSpan records one kernel's lifetime within a simulated run.
type KernelSpan struct {
	// Name is the kernel's name.
	Name string
	// Stream is the issuing stream (group) index.
	Stream int
	// Launch is the time the launch was issued, seconds from run start.
	Launch float64
	// Start is the time the kernel began executing (launch overhead
	// elapsed).
	Start float64
	// End is the completion time.
	End float64
}

// Timeline is an ordered list of kernel spans from one run.
type Timeline []KernelSpan

// Duration returns the last completion time.
func (t Timeline) Duration() float64 {
	var d float64
	for _, s := range t {
		if s.End > d {
			d = s.End
		}
	}
	return d
}

// MaxConcurrency returns the largest number of kernels executing
// simultaneously (in their Start..End windows).
func (t Timeline) MaxConcurrency() int {
	type ev struct {
		at    float64
		delta int
	}
	evs := make([]ev, 0, 2*len(t))
	for _, s := range t {
		evs = append(evs, ev{s.Start, 1}, ev{s.End, -1})
	}
	// Insertion sort by time, ends before starts at equal times.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && less(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

func less(a, b struct {
	at    float64
	delta int
}) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.delta < b.delta
}

// Shift returns a copy of the timeline offset by dt seconds.
func (t Timeline) Shift(dt float64) Timeline {
	out := make(Timeline, len(t))
	for i, s := range t {
		s.Launch += dt
		s.Start += dt
		s.End += dt
		out[i] = s
	}
	return out
}
