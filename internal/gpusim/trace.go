package gpusim

// WarpTrace records the number of resident ("active") warps on the device
// over time. It is the simulator's analogue of sampling NVIDIA's CUPTI
// counters (Section 6.3 / Figure 8): an active warp is one scheduled on an
// SM that has not retired its last instruction, which in the fluid model is
// exactly the resident-warp count of every running kernel.
type WarpTrace struct {
	segs []warpSegment
}

type warpSegment struct {
	t0, t1 float64
	warps  float64
}

func (w *WarpTrace) add(t0, t1, warps float64) {
	if t1 <= t0 {
		return
	}
	// Merge with the previous segment when contiguous with equal level,
	// to keep traces compact across event boundaries that do not change
	// residency.
	if n := len(w.segs); n > 0 && w.segs[n-1].t1 == t0 && w.segs[n-1].warps == warps {
		w.segs[n-1].t1 = t1
		return
	}
	w.segs = append(w.segs, warpSegment{t0, t1, warps})
}

// Duration returns the trace end time in seconds.
func (w *WarpTrace) Duration() float64 {
	if len(w.segs) == 0 {
		return 0
	}
	return w.segs[len(w.segs)-1].t1
}

// Append concatenates another trace after this one, shifting its times.
// Used to build a long trace from repeated executions.
func (w *WarpTrace) Append(other *WarpTrace) {
	off := w.Duration()
	for _, s := range other.segs {
		w.add(s.t0+off, s.t1+off, s.warps)
	}
}

// AppendIdle appends a zero-warp gap (stage synchronization).
func (w *WarpTrace) AppendIdle(dur float64) {
	off := w.Duration()
	w.add(off, off+dur, 0)
}

// WarpSeconds returns the time integral of active warps (warp·seconds),
// the quantity behind the paper's "active warps between two timestamps".
func (w *WarpTrace) WarpSeconds() float64 {
	var total float64
	for _, s := range w.segs {
		total += s.warps * (s.t1 - s.t0)
	}
	return total
}

// MeanWarps returns the time-averaged active warp count.
func (w *WarpTrace) MeanWarps() float64 {
	d := w.Duration()
	if d == 0 {
		return 0
	}
	return w.WarpSeconds() / d
}

// Sample integrates the trace over consecutive windows of the given period
// and returns, per window, the number of warp·seconds observed in it —
// matching the paper's "#active warps between two timestamps" sampled every
// 2.1 ms with CUPTI.
//
// Windows are iterated by integer index: advancing a float cursor to each
// window boundary can stall at one ulp of progress per step when a segment
// endpoint sits just below a boundary, which turns the loop into an
// effectively infinite one.
func (w *WarpTrace) Sample(period float64) []float64 {
	if period <= 0 || len(w.segs) == 0 {
		return nil
	}
	n := int(w.Duration()/period) + 1
	out := make([]float64, n)
	for _, s := range w.segs {
		// Distribute the segment's warp·seconds across the windows it
		// overlaps.
		k0 := int(s.t0 / period)
		if k0 < 0 {
			k0 = 0
		}
		for k := k0; k < n; k++ {
			lo := float64(k) * period
			if lo >= s.t1 {
				break
			}
			hi := lo + period
			if s.t0 > lo {
				lo = s.t0
			}
			if s.t1 < hi {
				hi = s.t1
			}
			if hi > lo {
				out[k] += s.warps * (hi - lo)
			}
		}
	}
	return out
}
