package gpusim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// testSpec is a small device that makes hand calculations easy: 4 SMs,
// 1 TFLOP/s, 100 GB/s, no overheads or contention.
func testSpec() Spec {
	return Spec{
		Name: "test", SMs: 4, PeakFLOPs: 1e12, MemBandwidth: 100e9,
		BlocksPerSM: 2, WarpsPerSM: 16, WarpsForPeak: 8,
		KernelLaunch: 0, StageSync: 0, ContentionCoef: 0,
		MaxConcurrentKernels: 32,
	}
}

// bigKernel saturates the test device: 8 blocks x 8 warps.
func bigKernel(flops, bytes float64) Kernel {
	return Kernel{Name: "k", FLOPs: flops, Bytes: bytes, Blocks: 8, WarpsPerBlock: 8}
}

func TestComputeBoundKernel(t *testing.T) {
	// Full residency on all 4 SMs with 16 warps/SM >= WarpsForPeak:
	// 1e9 FLOPs at 1e12 FLOP/s = 1 ms.
	sim := New(testSpec())
	res := sim.RunSequential([]Kernel{bigKernel(1e9, 0)})
	if math.Abs(res.Latency-1e-3) > 1e-9 {
		t.Errorf("latency = %g, want 1e-3", res.Latency)
	}
}

func TestMemoryBoundKernel(t *testing.T) {
	// 1e6 bytes at 100 GB/s = 10 us; compute is negligible.
	sim := New(testSpec())
	res := sim.RunSequential([]Kernel{bigKernel(1, 1e6)})
	if math.Abs(res.Latency-1e-5) > 1e-9 {
		t.Errorf("latency = %g, want 1e-5", res.Latency)
	}
}

func TestRooflineMax(t *testing.T) {
	// Compute time 1 ms, memory time 0.5 ms -> overlap: 1 ms.
	sim := New(testSpec())
	res := sim.RunSequential([]Kernel{bigKernel(1e9, 50e3*1e3)})
	if math.Abs(res.Latency-1e-3) > 1e-9 {
		t.Errorf("latency = %g, want 1e-3", res.Latency)
	}
}

func TestSmallKernelCannotFillDevice(t *testing.T) {
	// 2 blocks fit on 1 SM: the kernel gets 1/4 of the device and (16
	// warps on that SM) full per-SM efficiency: 4x slower than peak.
	sim := New(testSpec())
	k := Kernel{Name: "small", FLOPs: 1e9, Bytes: 0, Blocks: 2, WarpsPerBlock: 8}
	res := sim.RunSequential([]Kernel{k})
	if math.Abs(res.Latency-4e-3) > 1e-8 {
		t.Errorf("latency = %g, want 4e-3", res.Latency)
	}
}

func TestLowOccupancyPenalty(t *testing.T) {
	// 1 block of 2 warps on one SM: 2 warps < WarpsForPeak(8) => 1/4 of
	// the per-SM rate on 1/4 of the device = 1/16 of peak.
	sim := New(testSpec())
	k := Kernel{Name: "tiny", FLOPs: 1e9, Bytes: 0, Blocks: 1, WarpsPerBlock: 2}
	res := sim.RunSequential([]Kernel{k})
	want := 16e-3
	if math.Abs(res.Latency-want) > 1e-8 {
		t.Errorf("latency = %g, want %g", res.Latency, want)
	}
}

func TestTwoSmallKernelsOverlapPerfectly(t *testing.T) {
	// Two 2-block compute kernels occupy disjoint SMs: concurrent run
	// takes the same time as one alone.
	sim := New(testSpec())
	k := Kernel{Name: "half", FLOPs: 1e9, Bytes: 0, Blocks: 2, WarpsPerBlock: 8}
	solo := sim.RunSequential([]Kernel{k}).Latency
	conc := sim.Run([]Stream{{k}, {k}}).Latency
	if math.Abs(conc-solo) > 1e-9 {
		t.Errorf("concurrent = %g, solo = %g", conc, solo)
	}
	seq := sim.RunSequential([]Kernel{k, k}).Latency
	if math.Abs(seq-2*solo) > 1e-9 {
		t.Errorf("sequential = %g, want %g", seq, 2*solo)
	}
}

func TestOversubscriptionShares(t *testing.T) {
	// Two device-filling compute kernels split the SMs: the pair takes
	// twice one kernel's solo time (no overhead, work conserving).
	sim := New(testSpec())
	k := bigKernel(1e9, 0)
	solo := sim.RunSequential([]Kernel{k}).Latency
	conc := sim.Run([]Stream{{k}, {k}}).Latency
	if math.Abs(conc-2*solo) > 1e-9 {
		t.Errorf("concurrent = %g, want %g", conc, 2*solo)
	}
}

func TestContentionSlowsMemoryBoundPairs(t *testing.T) {
	spec := testSpec()
	spec.ContentionCoef = 0.5
	sim := New(spec)
	k := Kernel{Name: "mem", FLOPs: 0, Bytes: 1e6, Blocks: 2, WarpsPerBlock: 8}
	solo := sim.RunSequential([]Kernel{k}).Latency
	conc := sim.Run([]Stream{{k}, {k}}).Latency
	// Serial: 2*solo. Concurrent with 50% contention: bandwidth split and
	// degraded 1/(1+0.5) => total 2*solo*1.5.
	if conc <= 2*solo {
		t.Errorf("contention did not hurt: conc %g <= serial %g", conc, 2*solo)
	}
	if math.Abs(conc-3*solo) > 1e-9 {
		t.Errorf("conc = %g, want %g", conc, 3*solo)
	}
}

func TestLaunchOverheadSerializesOnStream(t *testing.T) {
	spec := testSpec()
	spec.KernelLaunch = 10e-6
	sim := New(spec)
	k := bigKernel(1e9, 0) // 1 ms of work
	res := sim.RunSequential([]Kernel{k, k})
	want := 2*1e-3 + 2*10e-6
	if math.Abs(res.Latency-want) > 1e-8 {
		t.Errorf("latency = %g, want %g", res.Latency, want)
	}
}

func TestZeroWorkKernelCostsOnlyLaunch(t *testing.T) {
	spec := testSpec()
	spec.KernelLaunch = 5e-6
	sim := New(spec)
	res := sim.RunSequential([]Kernel{{Name: "id", Blocks: 1, WarpsPerBlock: 1}})
	if math.Abs(res.Latency-5e-6) > 1e-12 {
		t.Errorf("latency = %g, want 5e-6", res.Latency)
	}
}

func TestMaxConcurrentKernelsQueues(t *testing.T) {
	spec := testSpec()
	spec.MaxConcurrentKernels = 1
	sim := New(spec)
	k := Kernel{Name: "half", FLOPs: 1e9, Bytes: 0, Blocks: 2, WarpsPerBlock: 8}
	conc := sim.Run([]Stream{{k}, {k}}).Latency
	solo := sim.RunSequential([]Kernel{k}).Latency
	if math.Abs(conc-2*solo) > 1e-9 {
		t.Errorf("hardware limit ignored: conc = %g, want %g", conc, 2*solo)
	}
}

func TestEmptyStreams(t *testing.T) {
	sim := New(testSpec())
	res := sim.Run(nil)
	if res.Latency != 0 || res.KernelCount != 0 {
		t.Errorf("empty run = %+v", res)
	}
	res = sim.Run([]Stream{{}, {}})
	if res.Latency != 0 {
		t.Errorf("empty streams latency = %g", res.Latency)
	}
}

func TestKernelValidate(t *testing.T) {
	bad := []Kernel{
		{Name: "negflops", FLOPs: -1, Blocks: 1, WarpsPerBlock: 1},
		{Name: "noblocks", Blocks: 0, WarpsPerBlock: 1},
		{Name: "nowarps", Blocks: 1, WarpsPerBlock: 0},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q validated", k.Name)
		}
	}
	ok := Kernel{Name: "ok", FLOPs: 1, Bytes: 1, Blocks: 1, WarpsPerBlock: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid kernel rejected: %v", err)
	}
}

func TestTraceAccountsResidency(t *testing.T) {
	sim := New(testSpec())
	sim.RecordTrace = true
	k := bigKernel(1e9, 0) // 64 warps resident for 1 ms
	res := sim.RunSequential([]Kernel{k})
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	if got, want := res.Trace.WarpSeconds(), 64*1e-3; math.Abs(got-want) > 1e-9 {
		t.Errorf("warp-seconds = %g, want %g", got, want)
	}
	if got := res.Trace.MeanWarps(); math.Abs(got-64) > 1e-6 {
		t.Errorf("mean warps = %g, want 64", got)
	}
}

func TestTraceSampling(t *testing.T) {
	tr := &WarpTrace{}
	tr.add(0, 1e-3, 10)
	tr.add(1e-3, 2e-3, 20)
	samples := tr.Sample(0.5e-3)
	// Windows: [0,.5)=5e-3, [.5,1)=5e-3, [1,1.5)=10e-3, [1.5,2)=10e-3.
	want := []float64{5e-3, 5e-3, 10e-3, 10e-3}
	for i, w := range want {
		if i >= len(samples) || math.Abs(samples[i]-w) > 1e-12 {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
	// Total warp-seconds preserved by sampling.
	var sum float64
	for _, s := range samples {
		sum += s
	}
	if math.Abs(sum-tr.WarpSeconds()) > 1e-12 {
		t.Errorf("sampling lost mass: %g vs %g", sum, tr.WarpSeconds())
	}
}

func TestTraceAppend(t *testing.T) {
	a := &WarpTrace{}
	a.add(0, 1e-3, 5)
	b := &WarpTrace{}
	b.add(0, 2e-3, 7)
	a.Append(b)
	if math.Abs(a.Duration()-3e-3) > 1e-12 {
		t.Errorf("duration = %g", a.Duration())
	}
	if math.Abs(a.WarpSeconds()-(5e-3+14e-3)) > 1e-12 {
		t.Errorf("warp-seconds = %g", a.WarpSeconds())
	}
	a.AppendIdle(1e-3)
	if math.Abs(a.Duration()-4e-3) > 1e-12 {
		t.Errorf("duration after idle = %g", a.Duration())
	}
}

// Property: makespan is at least the best-case bound (total work at device
// peak) and at most serial execution of everything, for arbitrary small
// workloads.
func TestQuickMakespanBounds(t *testing.T) {
	spec := testSpec()
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed uint32) bool {
		rng := newRand(seed)
		nStreams := 1 + int(rng()%3)
		streams := make([]Stream, nStreams)
		var totalF, totalB float64
		for i := range streams {
			nk := 1 + int(rng()%3)
			for j := 0; j < nk; j++ {
				k := Kernel{
					Name:          "q",
					FLOPs:         float64(rng()%1000) * 1e6,
					Bytes:         float64(rng()%1000) * 1e3,
					Blocks:        1 + int(rng()%16),
					WarpsPerBlock: 1 + int(rng()%8),
				}
				totalF += k.FLOPs
				totalB += k.Bytes
				streams[i] = append(streams[i], k)
			}
		}
		sim := New(spec)
		conc := sim.Run(streams).Latency
		lower := math.Max(totalF/spec.PeakFLOPs, totalB/spec.MemBandwidth)
		var serial []Kernel
		for _, s := range streams {
			serial = append(serial, s...)
		}
		serialLat := New(spec).RunSequential(serial).Latency
		const eps = 1e-9
		return conc >= lower-eps && conc <= serialLat+eps
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// newRand is a tiny deterministic PRNG for quick properties.
func newRand(seed uint32) func() uint32 {
	state := seed*2654435761 + 1
	return func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"v100", "k80", "2080ti", "1080", "980ti", "a100"} {
		if _, ok := SpecByName(name); !ok {
			t.Errorf("SpecByName(%q) failed", name)
		}
	}
	if _, ok := SpecByName("tpu"); ok {
		t.Error("SpecByName accepted unknown device")
	}
	if got := TeslaV100.PerSMPeak(); math.Abs(got-15.7e12/80) > 1 {
		t.Errorf("PerSMPeak = %g", got)
	}
}

// Property: the simulator is deterministic — identical inputs give
// identical results across runs and across fresh simulator instances.
func TestQuickDeterminism(t *testing.T) {
	spec := TeslaV100
	err := quick.Check(func(seed uint32) bool {
		rng := newRand(seed)
		streams := make([]Stream, 1+int(rng()%4))
		for i := range streams {
			for j := 0; j < 1+int(rng()%4); j++ {
				streams[i] = append(streams[i], Kernel{
					Name:          "k",
					FLOPs:         float64(rng()%5000) * 1e5,
					Bytes:         float64(rng()%5000) * 1e3,
					Blocks:        1 + int(rng()%2000),
					WarpsPerBlock: 1 + int(rng()%8),
				})
			}
		}
		a := New(spec).Run(streams)
		b := New(spec).Run(streams)
		sim := New(spec)
		c := sim.Run(streams)
		d := sim.Run(streams) // scratch reuse must not change results
		return a.Latency == b.Latency && c.Latency == d.Latency && a.Latency == c.Latency
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

// Regression: Sample must terminate and conserve mass even when segment
// boundaries sit one ulp below window boundaries (a float-cursor loop
// stalled here and hung the Figure 8 experiment).
func TestSampleBoundaryUlp(t *testing.T) {
	tr := &WarpTrace{}
	period := 9.432e-05 / 40 // the period observed in the hang
	// Construct segments whose endpoints land arbitrarily close to
	// window boundaries.
	ts := []float64{0, period * 3, math.Nextafter(period*7, 0), period * 7,
		math.Nextafter(period*11, 1), period * 13, 9.432e-05}
	for i := 0; i+1 < len(ts); i++ {
		if ts[i+1] > ts[i] {
			tr.add(ts[i], ts[i+1], float64(i+1))
		}
	}
	done := make(chan []float64, 1)
	go func() { done <- tr.Sample(period) }()
	select {
	case samples := <-done:
		var sum float64
		for _, s := range samples {
			sum += s
		}
		if math.Abs(sum-tr.WarpSeconds()) > 1e-12*tr.WarpSeconds() {
			t.Errorf("mass not conserved: %g vs %g", sum, tr.WarpSeconds())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Sample did not terminate")
	}
}
