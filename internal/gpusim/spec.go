//ioslint:deterministic

// Package gpusim simulates a CUDA-capable GPU executing kernels from
// multiple streams. It is the repository's substitute for cuDNN on real
// NVIDIA hardware (see DESIGN.md §1): a deterministic fluid
// (processor-sharing) model in which each kernel carries the arithmetic
// work, memory traffic, and thread-block count of the real operator, and
// the device model captures the four effects IOS exploits:
//
//  1. a kernel with few thread blocks cannot occupy all streaming
//     multiprocessors (SMs), so small-batch CNN operators under-utilize
//     big GPUs;
//  2. kernels from different streams share the SM pool, so concurrent
//     execution recovers utilization;
//  3. co-running kernels share memory bandwidth and suffer cache
//     contention, so too much concurrency backfires;
//  4. kernel-launch and stage-synchronization overheads punish schedules
//     with many tiny stages.
//
// The simulator is event-driven over a fluid rate model: at every event
// boundary each running kernel is assigned an SM allocation and a memory-
// bandwidth share, giving it a completion rate; the earliest completion is
// the next event. All arithmetic is deterministic.
package gpusim

// Spec describes a simulated GPU. Presets below are calibrated to the
// published specifications of the devices used in the paper.
//
// Every field influences simulated latency, so every field is
// fp:"include": the measurement cache's context key (measure.Context)
// must encode all of them, and ioslint's fingerprint analyzer enforces
// that any field added here is either encoded there or explicitly
// tagged fp:"exempt".
type Spec struct {
	// Name identifies the device in reports. It is part of cache
	// identity too: presets share numeric parameters across generations
	// often enough that dropping Name from the key aliased distinct
	// devices once already (PR 4).
	Name string `fp:"include"`
	// SMs is the number of streaming multiprocessors.
	SMs int `fp:"include"`
	// PeakFLOPs is the whole-device single-precision peak, FLOP/s.
	PeakFLOPs float64 `fp:"include"`
	// MemBandwidth is the DRAM bandwidth in bytes/s.
	MemBandwidth float64 `fp:"include"`
	// BlocksPerSM is the maximum number of resident thread blocks per SM.
	BlocksPerSM int `fp:"include"`
	// WarpsPerSM is the maximum number of resident warps per SM.
	WarpsPerSM int `fp:"include"`
	// WarpsForPeak is the number of resident warps per SM required to
	// reach per-SM peak throughput; below it, throughput scales linearly
	// (latency hiding fails with too few eligible warps, Section 6.3).
	WarpsForPeak int `fp:"include"`
	// KernelLaunch is the serialized per-kernel launch overhead in
	// seconds (driver + dispatch), paid on the kernel's stream.
	KernelLaunch float64 `fp:"include"`
	// StageSync is the per-stage synchronization overhead in seconds
	// (event wait / stream sync at stage barriers).
	StageSync float64 `fp:"include"`
	// ContentionCoef is the fractional memory-system slowdown added per
	// extra co-running kernel (shared L2 / DRAM row conflicts). Low-end
	// parts have higher coefficients, which is why the same schedule can
	// win on a V100 and lose on a K80 (Section 1).
	ContentionCoef float64 `fp:"include"`
	// MaxConcurrentKernels bounds hardware-concurrent kernels (CUDA
	// limit is 32-128 depending on architecture).
	MaxConcurrentKernels int `fp:"include"`
}

// Preset devices. Peak numbers follow the paper's Figure 1 and vendor
// datasheets.
var (
	// TeslaV100 is the paper's primary evaluation device (Volta, 80 SMs,
	// 15.7 TFLOP/s FP32, 900 GB/s HBM2).
	TeslaV100 = Spec{
		Name: "Tesla V100", SMs: 80, PeakFLOPs: 15.7e12, MemBandwidth: 900e9,
		BlocksPerSM: 16, WarpsPerSM: 64, WarpsForPeak: 16,
		KernelLaunch: 4e-6, StageSync: 5e-6, ContentionCoef: 0.08,
		MaxConcurrentKernels: 128,
	}
	// TeslaK80 is one GK210 die of the K80 board (Kepler, 13 SMs,
	// 2.8 TFLOP/s FP32, 240 GB/s). Used for device specialization
	// (Table 3).
	TeslaK80 = Spec{
		Name: "Tesla K80", SMs: 13, PeakFLOPs: 2.8e12, MemBandwidth: 240e9,
		BlocksPerSM: 16, WarpsPerSM: 64, WarpsForPeak: 24,
		KernelLaunch: 8e-6, StageSync: 10e-6, ContentionCoef: 0.18,
		MaxConcurrentKernels: 32,
	}
	// RTX2080Ti is the Turing device of Appendix B (68 SMs,
	// 13.4 TFLOP/s FP32, 616 GB/s).
	RTX2080Ti = Spec{
		Name: "RTX 2080Ti", SMs: 68, PeakFLOPs: 13.4e12, MemBandwidth: 616e9,
		BlocksPerSM: 16, WarpsPerSM: 32, WarpsForPeak: 12,
		KernelLaunch: 3.5e-6, StageSync: 5e-6, ContentionCoef: 0.09,
		MaxConcurrentKernels: 128,
	}
	// GTX1080 represents 2015-era hardware in Figure 1 (20 SMs,
	// 8.4 TFLOP/s after the paper's 8425 GFLOP/s, 320 GB/s).
	GTX1080 = Spec{
		Name: "GTX 1080", SMs: 20, PeakFLOPs: 8.425e12, MemBandwidth: 320e9,
		BlocksPerSM: 32, WarpsPerSM: 64, WarpsForPeak: 16,
		KernelLaunch: 5e-6, StageSync: 10e-6, ContentionCoef: 0.08,
		MaxConcurrentKernels: 32,
	}
	// GTX980Ti represents 2013-era hardware in Figure 1 (22 SMs,
	// 5.77 TFLOP/s, 336 GB/s).
	GTX980Ti = Spec{
		Name: "GTX 980Ti", SMs: 22, PeakFLOPs: 5.767e12, MemBandwidth: 336e9,
		BlocksPerSM: 32, WarpsPerSM: 64, WarpsForPeak: 16,
		KernelLaunch: 5e-6, StageSync: 10e-6, ContentionCoef: 0.08,
		MaxConcurrentKernels: 32,
	}
	// TeslaA100 is mentioned in the introduction (108 SMs, 19.5 TFLOP/s,
	// 1555 GB/s); included for forward-looking experiments.
	TeslaA100 = Spec{
		Name: "Tesla A100", SMs: 108, PeakFLOPs: 19.5e12, MemBandwidth: 1555e9,
		BlocksPerSM: 16, WarpsPerSM: 64, WarpsForPeak: 16,
		KernelLaunch: 3.5e-6, StageSync: 7e-6, ContentionCoef: 0.03,
		MaxConcurrentKernels: 128,
	}
)

// SpecByName returns the preset with the given name, matching loosely
// (case-sensitive substring keys "v100", "k80", "2080", "1080", "980",
// "a100"), and false if unknown.
func SpecByName(name string) (Spec, bool) {
	switch name {
	case "v100", "V100", TeslaV100.Name:
		return TeslaV100, true
	case "k80", "K80", TeslaK80.Name:
		return TeslaK80, true
	case "2080ti", "2080Ti", RTX2080Ti.Name:
		return RTX2080Ti, true
	case "1080", "gtx1080", GTX1080.Name:
		return GTX1080, true
	case "980ti", "gtx980ti", GTX980Ti.Name:
		return GTX980Ti, true
	case "a100", "A100", TeslaA100.Name:
		return TeslaA100, true
	}
	return Spec{}, false
}

// PerSMPeak returns the per-SM single-precision peak in FLOP/s.
func (s Spec) PerSMPeak() float64 { return s.PeakFLOPs / float64(s.SMs) }
