package gpusim

import "fmt"

// Kernel is one GPU kernel launch: the unit the simulator executes. The
// profiler lowers each schedule-unit operator to one or more kernels
// (a separable convolution becomes a depthwise kernel plus a pointwise
// kernel; a merged stage becomes a single wider kernel plus an optional
// split copy).
// The fp tags declare which fields enter the measurement cache key
// (measure.AppendStreams): Name is a trace label with no effect on
// simulated latency, so it is fp:"exempt" — two lowerings that differ
// only in kernel names must share a cache entry.
type Kernel struct {
	// Name labels the kernel in traces.
	Name string `fp:"exempt"`
	// FLOPs is the arithmetic work of the launch.
	FLOPs float64 `fp:"include"`
	// Bytes is the DRAM traffic of the launch.
	Bytes float64 `fp:"include"`
	// Blocks is the number of thread blocks in the grid.
	Blocks int `fp:"include"`
	// WarpsPerBlock is the number of warps per thread block.
	WarpsPerBlock int `fp:"include"`
}

// DefaultThreadsPerBlock is the block size assumed when deriving grids
// from operator output sizes (256 threads = 8 warps, a common cuDNN
// configuration).
const DefaultThreadsPerBlock = 256

// DefaultWarpsPerBlock is DefaultThreadsPerBlock / 32.
const DefaultWarpsPerBlock = DefaultThreadsPerBlock / 32

// GridFor returns the number of thread blocks for a kernel producing
// outElems output elements with one element per thread.
func GridFor(outElems int64) int {
	if outElems <= 0 {
		return 1
	}
	b := (outElems + DefaultThreadsPerBlock - 1) / DefaultThreadsPerBlock
	if b < 1 {
		b = 1
	}
	return int(b)
}

// Validate reports whether the kernel's fields are usable by the
// simulator.
func (k Kernel) Validate() error {
	if k.FLOPs < 0 || k.Bytes < 0 {
		return fmt.Errorf("gpusim: kernel %q has negative work (flops=%g bytes=%g)", k.Name, k.FLOPs, k.Bytes)
	}
	if k.Blocks < 1 {
		return fmt.Errorf("gpusim: kernel %q has %d blocks", k.Name, k.Blocks)
	}
	if k.WarpsPerBlock < 1 {
		return fmt.Errorf("gpusim: kernel %q has %d warps/block", k.Name, k.WarpsPerBlock)
	}
	return nil
}

// Stream is an ordered sequence of kernels issued back-to-back on one CUDA
// stream: kernel i+1 starts only after kernel i completes.
type Stream []Kernel

// TotalFLOPs sums the arithmetic work of all kernels in the stream.
func (s Stream) TotalFLOPs() float64 {
	var f float64
	for _, k := range s {
		f += k.FLOPs
	}
	return f
}
