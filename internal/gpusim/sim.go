package gpusim

import (
	"fmt"
	"math"
)

// Result reports one simulated multi-stream execution.
type Result struct {
	// Latency is the wall-clock time from first launch to last
	// completion, in seconds. It does not include the stage barrier;
	// callers that model a stage add Spec.StageSync.
	Latency float64
	// Trace records resident-warp counts over time for profiling
	// (Figure 8). Nil unless Sim.RecordTrace is set.
	Trace *WarpTrace
	// Timeline records per-kernel spans. Nil unless Sim.RecordTimeline
	// is set.
	Timeline Timeline
	// KernelCount is the number of kernel launches simulated.
	KernelCount int
}

// Sim executes stream programs on a device model. A Sim is not safe for
// concurrent use (it reuses internal scratch buffers across runs); create
// one per goroutine. Construct with New. Sim is the reference
// implementation of the profile.Backend measurement substrate (wrapped by
// profile.SimBackend); alternative backends plug into the profiler and
// search without touching this package.
type Sim struct {
	spec Spec
	// RecordTrace enables resident-warp trace collection.
	RecordTrace bool
	// RecordTimeline enables per-kernel span collection.
	RecordTimeline bool

	// Scratch reused across runs to keep the scheduler's millions of
	// stage measurements allocation-free.
	arena   []activeKernel
	active  []int
	running []int
	scratch []int
	next    []int
	// Rate-step scratch (assignRates/waterFill run once per simulated
	// event, the hottest loop of a DP search).
	computeRate []float64
	granted     []float64
	demand      []float64
	unsat       []int
}

// New returns a simulator for the given device.
func New(spec Spec) *Sim {
	if spec.SMs <= 0 || spec.PeakFLOPs <= 0 || spec.MemBandwidth <= 0 {
		panic(fmt.Sprintf("gpusim: invalid spec %+v", spec))
	}
	return &Sim{spec: spec}
}

// Spec returns the device model in use.
func (s *Sim) Spec() Spec { return s.spec }

// kernel execution phases.
const (
	phaseLaunching = iota
	phaseRunning
)

type activeKernel struct {
	stream    int
	k         Kernel
	phase     int
	launchRem float64 // remaining launch overhead, seconds
	workRem   float64 // fraction of the kernel's work remaining, in [0,1]
	launchAt  float64 // time the launch was issued
	startAt   float64 // time execution began

	// Derived each rate step:
	smAlloc float64 // fractional SMs allocated
	warps   float64 // resident warps
	rate    float64 // fraction of total work completed per second
}

// Run simulates the concurrent execution of the given streams and returns
// the makespan. Streams model the paper's groups: kernels within a stream
// are sequential, kernels across streams run concurrently subject to SM
// capacity, shared bandwidth, and contention.
func (s *Sim) Run(streams []Stream) Result {
	var res Result
	// next[si] is stream si's next kernel index (reused scratch).
	if cap(s.next) < len(streams) {
		s.next = make([]int, len(streams))
	}
	next := s.next[:len(streams)]
	for i := range next {
		next[i] = 0
	}
	s.arena = s.arena[:0]
	s.active = s.active[:0]

	// launch enqueues stream si's next kernel at time at, returning its
	// arena index or -1 when the stream is exhausted.
	launch := func(si int, at float64) int {
		if next[si] >= len(streams[si]) {
			return -1
		}
		k := streams[si][next[si]]
		next[si]++
		if err := k.Validate(); err != nil {
			panic(err)
		}
		res.KernelCount++
		ak := activeKernel{stream: si, k: k, phase: phaseLaunching,
			launchRem: s.spec.KernelLaunch, workRem: 1, launchAt: at, startAt: at}
		if k.FLOPs == 0 && k.Bytes == 0 {
			// Free kernels (identity) cost only launch time; model them
			// as launch-only by zeroing work.
			ak.workRem = 0
		}
		s.arena = append(s.arena, ak)
		return len(s.arena) - 1
	}
	for si := range streams {
		if idx := launch(si, 0); idx >= 0 {
			s.active = append(s.active, idx)
		}
	}

	var trace *WarpTrace
	if s.RecordTrace {
		trace = &WarpTrace{}
	}

	t := 0.0
	for len(s.active) > 0 {
		s.assignRates()

		// Find earliest completion across phases.
		dt := math.Inf(1)
		for _, i := range s.active {
			ak := &s.arena[i]
			var rem float64
			switch ak.phase {
			case phaseLaunching:
				rem = ak.launchRem
			case phaseRunning:
				if ak.workRem <= 0 {
					rem = 0
				} else if ak.rate <= 0 {
					continue // starved; another completion frees resources
				} else {
					rem = ak.workRem / ak.rate
				}
			}
			if rem < dt {
				dt = rem
			}
		}
		if math.IsInf(dt, 1) {
			// Every active kernel is starved, which cannot happen since
			// rates are proportional shares of positive capacity.
			panic("gpusim: deadlock: all active kernels starved")
		}

		if trace != nil {
			var warps float64
			for _, i := range s.active {
				if s.arena[i].phase == phaseRunning {
					warps += s.arena[i].warps
				}
			}
			trace.add(t, t+dt, warps)
		}

		// Advance every active kernel by dt, then replace completions
		// with their stream successors (in deterministic stream order).
		t += dt
		still := s.active[:0]
		completed := s.scratch[:0]
		for _, i := range s.active {
			ak := &s.arena[i]
			done := false
			switch ak.phase {
			case phaseLaunching:
				ak.launchRem -= dt
				if ak.launchRem <= 1e-15 {
					ak.startAt = t
					if ak.workRem <= 0 {
						done = true
					} else {
						ak.phase = phaseRunning
					}
				}
			case phaseRunning:
				if ak.rate > 0 {
					ak.workRem -= dt * ak.rate
				}
				if ak.workRem <= 1e-12 {
					done = true
				}
			}
			if done {
				if s.RecordTimeline {
					res.Timeline = append(res.Timeline, KernelSpan{
						Name: ak.k.Name, Stream: ak.stream,
						Launch: ak.launchAt, Start: ak.startAt, End: t,
					})
				}
				completed = append(completed, ak.stream)
				continue
			}
			still = append(still, i)
		}
		s.active = still
		s.scratch = completed[:0]
		for _, si := range completed {
			// launch may grow the arena; indices remain stable.
			if idx := launch(si, t); idx >= 0 {
				s.active = append(s.active, idx)
			}
		}
	}
	res.Latency = t
	res.Trace = trace
	return res
}

// assignRates computes each running kernel's SM allocation, resident
// warps, and work-completion rate under the fluid sharing model.
func (s *Sim) assignRates() {
	spec := s.spec
	// Collect running kernels up to the hardware concurrency limit; the
	// remainder waits (rate 0).
	s.running = s.running[:0]
	for _, i := range s.active {
		ak := &s.arena[i]
		if ak.phase != phaseRunning {
			continue
		}
		if len(s.running) < spec.MaxConcurrentKernels {
			s.running = append(s.running, i)
		} else {
			ak.rate, ak.smAlloc, ak.warps = 0, 0, 0
		}
	}
	if len(s.running) == 0 {
		return
	}

	// SM allocation: each kernel requests enough SMs to host its grid at
	// full residency; oversubscription shares proportionally.
	totalReq := 0.0
	for _, i := range s.running {
		ak := &s.arena[i]
		r := math.Ceil(float64(ak.k.Blocks) / float64(spec.BlocksPerSM))
		if r < 1 {
			r = 1
		}
		if r > float64(spec.SMs) {
			r = float64(spec.SMs)
		}
		ak.smAlloc = r // provisional request; scaled below
		totalReq += r
	}
	scale := 1.0
	if totalReq > float64(spec.SMs) {
		scale = float64(spec.SMs) / totalReq
	}

	// Contention factor: each extra co-running kernel degrades the
	// memory system multiplicatively.
	contention := 1.0 / (1.0 + spec.ContentionCoef*float64(len(s.running)-1))

	// Resident warps determine both bandwidth shares and per-SM compute
	// efficiency (latency hiding).
	for _, i := range s.running {
		ak := &s.arena[i]
		alloc := ak.smAlloc * scale
		residentBlocks := math.Min(float64(ak.k.Blocks), alloc*float64(spec.BlocksPerSM))
		warps := residentBlocks * float64(ak.k.WarpsPerBlock)
		maxWarps := alloc * float64(spec.WarpsPerSM)
		if warps > maxWarps {
			warps = maxWarps
		}
		ak.smAlloc = alloc
		ak.warps = warps
	}

	// Compute rates: device peak scaled by SM share and occupancy
	// efficiency.
	if cap(s.computeRate) < len(s.running) {
		s.computeRate = make([]float64, len(s.running))
	}
	computeRate := s.computeRate[:len(s.running)]
	for idx, i := range s.running {
		ak := &s.arena[i]
		warpsPerSM := 0.0
		if ak.smAlloc > 0 {
			warpsPerSM = ak.warps / ak.smAlloc
		}
		eff := warpsPerSM / float64(spec.WarpsForPeak)
		if eff > 1 {
			eff = 1
		}
		computeRate[idx] = spec.PeakFLOPs * (ak.smAlloc / float64(spec.SMs)) * eff
	}

	// Memory rates: water-filling of the (contention-degraded) bandwidth,
	// weighted by resident warps. A kernel whose compute time already
	// dominates only demands enough bandwidth to keep memory off its
	// critical path; the surplus flows to memory-hungry co-runners, which
	// keeps the model work-conserving.
	memRate := s.waterFill(computeRate, spec.MemBandwidth*contention)

	for idx, i := range s.running {
		ak := &s.arena[i]
		// Fluid completion rate: compute and memory phases overlap; the
		// kernel finishes when the slower dimension finishes.
		dur := 0.0
		if ak.k.FLOPs > 0 && computeRate[idx] > 0 {
			dur = ak.k.FLOPs / computeRate[idx]
		}
		if ak.k.Bytes > 0 {
			if memRate[idx] <= 0 {
				// Starved of bandwidth this step; progress only via any
				// compute-bound slack (none if dur is 0).
				ak.rate = 0
				continue
			}
			if md := ak.k.Bytes / memRate[idx]; md > dur {
				dur = md
			}
		}
		if dur <= 0 {
			// Work declared but no capacity (cannot happen with positive
			// spec); treat as instantaneous.
			ak.rate = math.Inf(1)
			continue
		}
		ak.rate = 1.0 / dur
	}
}

// waterFill distributes memory bandwidth capacity across the running
// kernels by progressive filling: each round splits the remaining
// capacity proportionally to resident warps; kernels whose demand (the
// bandwidth that makes their memory time equal their compute time) is
// met are granted exactly their demand and removed, releasing surplus to
// the rest.
func (s *Sim) waterFill(computeRate []float64, capacity float64) []float64 {
	n := len(s.running)
	if cap(s.granted) < n {
		s.granted = make([]float64, n)
		s.demand = make([]float64, n)
	}
	granted := s.granted[:n]
	demand := s.demand[:n]
	for i := 0; i < n; i++ {
		granted[i], demand[i] = 0, 0
	}
	if cap(s.unsat) < n {
		s.unsat = make([]int, 0, n)
	}
	unsat := s.unsat[:0]
	for idx, i := range s.running {
		ak := &s.arena[i]
		if ak.k.Bytes <= 0 {
			continue
		}
		if ak.k.FLOPs > 0 && computeRate[idx] > 0 {
			demand[idx] = ak.k.Bytes / (ak.k.FLOPs / computeRate[idx])
		} else {
			demand[idx] = math.Inf(1)
		}
		unsat = append(unsat, idx)
	}
	remaining := capacity
	for len(unsat) > 0 && remaining > 0 {
		var weight float64
		for _, idx := range unsat {
			weight += s.arena[s.running[idx]].warps
		}
		if weight <= 0 {
			// Degenerate: split evenly.
			for _, idx := range unsat {
				granted[idx] = remaining / float64(len(unsat))
			}
			return granted
		}
		progressed := false
		var used float64
		next := unsat[:0]
		for _, idx := range unsat {
			share := remaining * s.arena[s.running[idx]].warps / weight
			if demand[idx] <= share {
				granted[idx] = demand[idx]
				used += demand[idx]
				progressed = true
				continue
			}
			next = append(next, idx)
		}
		if !progressed {
			// Everyone wants more than their share: final proportional
			// split.
			for _, idx := range next {
				granted[idx] = remaining * s.arena[s.running[idx]].warps / weight
			}
			return granted
		}
		remaining -= used
		if remaining < 0 {
			remaining = 0
		}
		unsat = next
	}
	return granted
}

// RunSequential is a convenience wrapper that executes all kernels on a
// single stream.
func (s *Sim) RunSequential(kernels []Kernel) Result {
	return s.Run([]Stream{Stream(kernels)})
}
